// Ablations for the design choices DESIGN.md calls out:
//   1. reserve_slots: the literal "freeSlots - 1" of Fig. 2 vs 0.
//   2. protect_top_job: Fig. 2/3's `index > 0` walk (never shrink the
//      highest-priority running job) vs considering all victims.
//   3. Out-of-order allocation: elastic/moldable sizing vs strict
//      rigid-by-priority (rigid max), the paper's motivation for (b) in §3.2.
//   4. Load-balancer strategy inside the runtime: greedy vs refine rescale
//      cost measured on minicharm.

#include <map>

#include "apps/calibration.hpp"
#include "bench/lib/registry.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

using namespace ehpc;
using elastic::PolicyMode;

namespace {

void add_metrics_row(Table& t, const std::string& label,
                     const elastic::RunMetrics& m) {
  t.add_row({label, format_double(m.total_time_s, 1),
             format_double(m.utilization, 4),
             format_double(m.weighted_response_s, 2),
             format_double(m.weighted_completion_s, 2)});
}

void run(bench::Reporter& rep, const Config& cfg) {
  // The "policy_compare" scenario with analytic curves; each ablation
  // variant supplies its own explicit PolicyConfig.
  scenario::ScenarioSpec spec =
      scenario::ScenarioRegistry::instance().require("policy_compare");
  spec.repeats = cfg.get_int("repeats", 40);
  spec.seed = static_cast<unsigned>(cfg.get_int("seed", 2025));
  spec.calibrated = false;
  const int threads = cfg.get_int("threads", 1);
  auto run_averaged = [&](const elastic::PolicyConfig& pc) {
    return scenario::run_repeats(spec, pc, threads);
  };
  const std::vector<std::string> headers{"variant", "total_s", "utilization",
                                         "response_s", "completion_s"};

  Table& t1 = rep.add_table(
      "ablation1_reserve_slots",
      "Ablation 1: reserve_slots (the 'freeSlots - 1' of Fig. 2)", headers);
  for (int reserve : {0, 1, 2}) {
    elastic::PolicyConfig pc;
    pc.mode = PolicyMode::kElastic;
    pc.rescale_gap_s = 180.0;
    pc.reserve_slots = reserve;
    add_metrics_row(t1, "reserve=" + std::to_string(reserve),
                    run_averaged(pc));
  }

  Table& t2 = rep.add_table(
      "ablation2_protect_top_job",
      "Ablation 2: protect_top_job (Fig. 2/3 walks index > 0)", headers);
  for (bool protect : {true, false}) {
    elastic::PolicyConfig pc;
    pc.mode = PolicyMode::kElastic;
    pc.rescale_gap_s = 180.0;
    pc.protect_top_job = protect;
    add_metrics_row(t2, protect ? "protected (paper)" : "all victims",
                    run_averaged(pc));
  }

  Table& t3 = rep.add_table(
      "ablation3_out_of_order",
      "Ablation 3: out-of-order allocation (moldable sizing) vs rigid "
      "priority order",
      headers);
  for (auto mode : {PolicyMode::kMoldable, PolicyMode::kRigidMax}) {
    elastic::PolicyConfig pc;
    pc.mode = mode;
    pc.rescale_gap_s = 180.0;
    add_metrics_row(t3, elastic::to_string(mode),
                    run_averaged(pc));
  }

  Table& t4 = rep.add_table(
      "ablation4_lb_strategy",
      "Ablation 4: runtime LB strategy during a 32->16 shrink (Jacobi 8192^2, "
      "minicharm)",
      {"strategy", "lb_s", "ckpt_s", "restart_s", "restore_s", "total_s",
       "migrated_objects"});
  for (const std::string lb : {"greedy", "refine", "null"}) {
    charm::RuntimeConfig rc;
    rc.load_balancer = lb;
    const auto t = apps::measure_jacobi_rescale(8192, 32, 16, 3, rc);
    t4.add_row({lb, format_double(t.load_balance_s, 4),
                format_double(t.checkpoint_s, 4), format_double(t.restart_s, 4),
                format_double(t.restore_s, 4), format_double(t.total(), 4),
                std::to_string(t.migrated_objects)});
  }
}

const bench::RegisterBench kReg{{
    "ablation_policies",
    "Ablations: reserve_slots, protect_top_job, allocation order, LB strategy",
    {{"repeats", "40", "random job mixes per variant"},
     {"seed", "2025", "base RNG seed"}},
    {{"repeats", "10"}},
    run}};

}  // namespace
