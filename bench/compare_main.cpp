// bench_compare: diff two baseline directories produced by bench_run_all
// (or any driver's out_dir=) and report per-metric deltas.
//
//   bench_compare <baseline_dir> <candidate_dir> [values=true] [rel_tol=0.05]
//                 [abs_tol=1e-9] [compare_wall=false] [wall_rel_tol=0.5]
//
// values=false checks shape only (bench/table presence, row/column counts,
// configs) — the CI mode, immune to timing and floating-point noise.
// Exit codes: 0 = within tolerance, 1 = mismatches, 2 = usage/io error.

#include <iostream>

#include "bench/lib/compare.hpp"
#include "common/config.hpp"

int main(int argc, char** argv) {
  using namespace ehpc;
  const char* const usage =
      "usage: bench_compare <baseline_dir> <candidate_dir> [values=true]\n"
      "       [rel_tol=0.05] [abs_tol=1e-9] [compare_wall=false]\n"
      "       [wall_rel_tol=0.5]\n";

  Config cfg;
  try {
    cfg = Config::from_args(
        argc, argv,
        {"values", "rel_tol", "abs_tol", "compare_wall", "wall_rel_tol"});
  } catch (const ConfigError& err) {
    std::cerr << "error: " << err.what() << "\n\n" << usage;
    return 2;
  }
  if (cfg.positional().size() != 2) {
    std::cerr << usage;
    return 2;
  }

  bench::CompareOptions options;
  options.values = cfg.get_bool("values", true);
  options.rel_tol = cfg.get_double("rel_tol", options.rel_tol);
  options.abs_tol = cfg.get_double("abs_tol", options.abs_tol);
  options.compare_wall = cfg.get_bool("compare_wall", false);
  options.wall_rel_tol = cfg.get_double("wall_rel_tol", options.wall_rel_tol);

  try {
    const bench::CompareReport report =
        bench::compare_dirs(cfg.positional()[0], cfg.positional()[1], options);
    std::cout << report.to_text();
    return report.ok() ? 0 : 1;
  } catch (const std::exception& err) {
    // Corrupt baseline contents (truncated CSV, wrong-schema summary.json)
    // must yield the documented exit code, not std::terminate.
    std::cerr << "error: " << err.what() << "\n";
    return 2;
  }
}
