// Reproduces paper Figure 4: strong scaling of Charm++ applications on the
// (emulated) Kubernetes cluster.
//   Fig 4a: Jacobi2D time per iteration vs replicas, grids 2048/8192/16384.
//   Fig 4b: LeanMD time per step vs replicas, cells 4x4x4 / 4x4x8 / 4x8x8.

#include "apps/calibration.hpp"
#include "bench/lib/registry.hpp"
#include "common/config.hpp"
#include "common/table.hpp"

using namespace ehpc;

namespace {

void run(bench::Reporter& rep, const Config& cfg) {
  const int iters = cfg.get_int("iters", 12);
  const std::vector<int> replicas{4, 8, 16, 32, 64};

  Table& jacobi = rep.add_table(
      "fig4a_jacobi", "Figure 4a: Jacobi2D strong scaling (time per iteration, s)",
      {"replicas", "2048x2048", "8192x8192", "16384x16384"});
  std::vector<std::vector<apps::ScalingPoint>> jcols;
  for (int grid : {2048, 8192, 16384}) {
    jcols.push_back(apps::measure_jacobi_scaling(grid, replicas, iters));
  }
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    jacobi.add_row({std::to_string(replicas[i]),
                    format_double(jcols[0][i].time_per_step_s, 5),
                    format_double(jcols[1][i].time_per_step_s, 5),
                    format_double(jcols[2][i].time_per_step_s, 5)});
  }

  Table& leanmd = rep.add_table(
      "fig4b_leanmd", "Figure 4b: LeanMD strong scaling (time per step, s)",
      {"replicas", "4x4x4", "4x4x8", "4x8x8"});
  std::vector<std::vector<apps::ScalingPoint>> lcols;
  for (auto [cy, cz] : {std::pair{4, 4}, std::pair{4, 8}, std::pair{8, 8}}) {
    apps::LeanMdConfig md;
    md.cells_x = 4;
    md.cells_y = cy;
    md.cells_z = cz;
    md.atoms_per_cell = 400;
    md.real_atoms_per_cell = 8;
    md.max_iterations = iters;
    lcols.push_back(apps::measure_leanmd_scaling(md, replicas));
  }
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    leanmd.add_row({std::to_string(replicas[i]),
                    format_double(lcols[0][i].time_per_step_s, 5),
                    format_double(lcols[1][i].time_per_step_s, 5),
                    format_double(lcols[2][i].time_per_step_s, 5)});
  }

  // Shape check the paper reports: large problems keep scaling; small ones
  // flatten.
  const double speedup_16k =
      jcols[2].front().time_per_step_s / jcols[2].back().time_per_step_s;
  const double speedup_2k =
      jcols[0].front().time_per_step_s / jcols[0].back().time_per_step_s;
  rep.note("Jacobi 4->64 replica speedup: 16384^2 = " +
           format_double(speedup_16k, 2) +
           "x, 2048^2 = " + format_double(speedup_2k, 2) + "x");
}

const bench::RegisterBench kReg{{
    "fig4_scaling",
    "Figure 4: Jacobi2D and LeanMD strong scaling on the emulated cluster",
    {{"iters", "12", "iterations per measurement (>= 3; warmup is discarded)"}},
    {{"iters", "4"}},
    run}};

}  // namespace
