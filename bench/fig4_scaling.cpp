// Reproduces paper Figure 4: strong scaling of Charm++ applications on the
// (emulated) Kubernetes cluster.
//   Fig 4a: Jacobi2D time per iteration vs replicas, grids 2048/8192/16384.
//   Fig 4b: LeanMD time per step vs replicas, cells 4x4x4 / 4x4x8 / 4x8x8.
//
// Usage: fig4_scaling [iters=12] [csv=false]

#include <iostream>

#include "apps/calibration.hpp"
#include "common/config.hpp"
#include "common/table.hpp"

using namespace ehpc;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int iters = cfg.get_int("iters", 12);
  const bool csv = cfg.get_bool("csv", false);
  const std::vector<int> replicas{4, 8, 16, 32, 64};

  std::cout << "== Figure 4a: Jacobi2D strong scaling (time per iteration, s) ==\n";
  Table jacobi({"replicas", "2048x2048", "8192x8192", "16384x16384"});
  std::vector<std::vector<apps::ScalingPoint>> jcols;
  for (int grid : {2048, 8192, 16384}) {
    jcols.push_back(apps::measure_jacobi_scaling(grid, replicas, iters));
  }
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    jacobi.add_row({std::to_string(replicas[i]),
                    format_double(jcols[0][i].time_per_step_s, 5),
                    format_double(jcols[1][i].time_per_step_s, 5),
                    format_double(jcols[2][i].time_per_step_s, 5)});
  }
  std::cout << (csv ? jacobi.to_csv() : jacobi.to_text()) << "\n";

  std::cout << "== Figure 4b: LeanMD strong scaling (time per step, s) ==\n";
  Table leanmd({"replicas", "4x4x4", "4x4x8", "4x8x8"});
  std::vector<std::vector<apps::ScalingPoint>> lcols;
  for (auto [cy, cz] : {std::pair{4, 4}, std::pair{4, 8}, std::pair{8, 8}}) {
    apps::LeanMdConfig md;
    md.cells_x = 4;
    md.cells_y = cy;
    md.cells_z = cz;
    md.atoms_per_cell = 400;
    md.real_atoms_per_cell = 8;
    md.max_iterations = iters;
    lcols.push_back(apps::measure_leanmd_scaling(md, replicas));
  }
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    leanmd.add_row({std::to_string(replicas[i]),
                    format_double(lcols[0][i].time_per_step_s, 5),
                    format_double(lcols[1][i].time_per_step_s, 5),
                    format_double(lcols[2][i].time_per_step_s, 5)});
  }
  std::cout << (csv ? leanmd.to_csv() : leanmd.to_text()) << "\n";

  // Shape check the paper reports: large problems keep scaling; small ones
  // flatten.
  const double speedup_16k =
      jcols[2].front().time_per_step_s / jcols[2].back().time_per_step_s;
  const double speedup_2k =
      jcols[0].front().time_per_step_s / jcols[0].back().time_per_step_s;
  std::cout << "Jacobi 4->64 replica speedup: 16384^2 = "
            << format_double(speedup_16k, 2)
            << "x, 2048^2 = " << format_double(speedup_2k, 2) << "x\n";
  return 0;
}
