// Reproduces paper Figure 5: contribution of the four rescaling stages
// (load balancing, checkpoint, restart, restore) to the total overhead.
//   Fig 5a: shrink to half, replicas 4..60, Jacobi 8192^2.
//   Fig 5b: expand to double, replicas 2..32, Jacobi 8192^2.
//   Fig 5c: shrink 32 -> 16 for grids 512..32768.
//
// Usage: fig5_rescale_overhead [csv=false]

#include <iostream>

#include "apps/calibration.hpp"
#include "common/config.hpp"
#include "common/table.hpp"

using namespace ehpc;

namespace {

void add_timing_row(Table& table, const std::string& label,
                    const charm::RescaleTiming& t) {
  table.add_row({label, format_double(t.load_balance_s, 4),
                 format_double(t.checkpoint_s, 4), format_double(t.restart_s, 4),
                 format_double(t.restore_s, 4), format_double(t.total(), 4)});
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const bool csv = cfg.get_bool("csv", false);
  const std::vector<std::string> headers{
      "x", "load_balance_s", "checkpoint_s", "restart_s", "restore_s", "total_s"};

  std::cout << "== Figure 5a: shrink to half (Jacobi 8192^2); x = replicas before ==\n";
  Table shrink(headers);
  for (int from : {4, 8, 16, 32, 60}) {
    add_timing_row(shrink, std::to_string(from),
                   apps::measure_jacobi_rescale(8192, from, from / 2));
  }
  std::cout << (csv ? shrink.to_csv() : shrink.to_text()) << "\n";

  std::cout << "== Figure 5b: expand to double (Jacobi 8192^2); x = replicas before ==\n";
  Table expand(headers);
  for (int from : {2, 4, 8, 16, 32}) {
    add_timing_row(expand, std::to_string(from),
                   apps::measure_jacobi_rescale(8192, from, from * 2));
  }
  std::cout << (csv ? expand.to_csv() : expand.to_text()) << "\n";

  std::cout << "== Figure 5c: shrink 32 -> 16; x = grid size (one dimension) ==\n";
  Table bysize(headers);
  for (int grid : {512, 2048, 8192, 32768}) {
    add_timing_row(bysize, std::to_string(grid),
                   apps::measure_jacobi_rescale(grid, 32, 16));
  }
  std::cout << (csv ? bysize.to_csv() : bysize.to_text()) << "\n";

  std::cout << "Expected shapes: restart grows with replicas; checkpoint and\n"
               "restore shrink with replicas (fixed problem) and grow with\n"
               "problem size; restart dominates small problems.\n";
  return 0;
}
