// Reproduces paper Figure 5: contribution of the four rescaling stages
// (load balancing, checkpoint, restart, restore) to the total overhead.
//   Fig 5a: shrink to half, replicas 4..60, Jacobi 8192^2.
//   Fig 5b: expand to double, replicas 2..32, Jacobi 8192^2.
//   Fig 5c: shrink 32 -> 16 for grids 512..32768.

#include "apps/calibration.hpp"
#include "bench/lib/registry.hpp"
#include "common/config.hpp"
#include "common/table.hpp"

using namespace ehpc;

namespace {

void add_timing_row(Table& table, const std::string& label,
                    const charm::RescaleTiming& t) {
  table.add_row({label, format_double(t.load_balance_s, 4),
                 format_double(t.checkpoint_s, 4), format_double(t.restart_s, 4),
                 format_double(t.restore_s, 4), format_double(t.total(), 4)});
}

void run(bench::Reporter& rep, const Config& cfg) {
  const int grid = cfg.get_int("grid", 8192);
  const std::vector<std::string> headers{
      "x", "load_balance_s", "checkpoint_s", "restart_s", "restore_s", "total_s"};

  Table& shrink = rep.add_table(
      "fig5a_shrink",
      "Figure 5a: shrink to half (Jacobi " + std::to_string(grid) +
          "^2); x = replicas before",
      headers);
  for (int from : {4, 8, 16, 32, 60}) {
    add_timing_row(shrink, std::to_string(from),
                   apps::measure_jacobi_rescale(grid, from, from / 2));
  }

  Table& expand = rep.add_table(
      "fig5b_expand",
      "Figure 5b: expand to double (Jacobi " + std::to_string(grid) +
          "^2); x = replicas before",
      headers);
  for (int from : {2, 4, 8, 16, 32}) {
    add_timing_row(expand, std::to_string(from),
                   apps::measure_jacobi_rescale(grid, from, from * 2));
  }

  Table& bysize = rep.add_table(
      "fig5c_by_size",
      "Figure 5c: shrink 32 -> 16; x = grid size (one dimension)", headers);
  for (int g : {512, 2048, 8192, 32768}) {
    add_timing_row(bysize, std::to_string(g),
                   apps::measure_jacobi_rescale(g, 32, 16));
  }

  rep.note(
      "Expected shapes: restart grows with replicas; checkpoint and restore\n"
      "shrink with replicas (fixed problem) and grow with problem size;\n"
      "restart dominates small problems.");
}

const bench::RegisterBench kReg{{
    "fig5_rescale_overhead",
    "Figure 5: rescaling stage contributions (LB, checkpoint, restart, restore)",
    {{"grid", "8192", "Jacobi grid dimension for 5a/5b"}},
    {},
    run}};

}  // namespace
