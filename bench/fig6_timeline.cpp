// Reproduces paper Figure 6: Jacobi2D (16384^2) timeline with a shrink from
// 32 to 16 replicas and a later expand back to 32.
//   Fig 6a: time taken by each consecutive 10-iteration window.
//   Fig 6b: timestamp at which every 10th iteration completes (the rescale
//           gaps appear as jumps; the slope change shows the speed change).

#include "apps/calibration.hpp"
#include "apps/jacobi2d.hpp"
#include "bench/lib/registry.hpp"
#include "common/config.hpp"
#include "common/table.hpp"

using namespace ehpc;

namespace {

void run(bench::Reporter& rep, const Config& cfg) {
  const int iters = cfg.get_int("iters", 3000);
  const int shrink_at = cfg.get_int("shrink_at", 1000);
  const int expand_at = cfg.get_int("expand_at", 2000);
  const int sample = cfg.get_int("sample", 10);

  charm::RuntimeConfig rc;
  rc.num_pes = 32;
  charm::Runtime rt(rc);
  apps::Jacobi2D app(rt, apps::jacobi_for_grid(16384, iters));
  app.driver().at_iteration(shrink_at,
                            [](charm::Runtime& r) { r.ccs().request_rescale(16); });
  app.driver().at_iteration(expand_at,
                            [](charm::Runtime& r) { r.ccs().request_rescale(32); });
  app.start();
  rt.run();

  const auto& times = app.driver().iteration_end_times();
  Table& timeline = rep.add_table(
      "fig6_timeline",
      "Figure 6a/6b: per-" + std::to_string(sample) +
          "-iteration window time and completion timestamps",
      {"iteration", "window_time_s", "timestamp_s"});
  for (std::size_t i = static_cast<std::size_t>(sample); i < times.size();
       i += static_cast<std::size_t>(sample)) {
    timeline.add_row(
        {std::to_string(i),
         format_double(times[i] - times[i - static_cast<std::size_t>(sample)], 4),
         format_double(times[i], 2)});
  }

  Table& events = rep.add_table(
      "fig6_rescale_events", "Rescale events",
      {"direction", "old_pes", "new_pes", "load_balance_s", "checkpoint_s",
       "restart_s", "restore_s", "total_s"});
  for (const auto& t : rt.rescale_history()) {
    events.add_row({t.direction == charm::RescaleDirection::kShrink ? "shrink"
                                                                    : "expand",
                    std::to_string(t.old_pes), std::to_string(t.new_pes),
                    format_double(t.load_balance_s, 3),
                    format_double(t.checkpoint_s, 3),
                    format_double(t.restart_s, 3),
                    format_double(t.restore_s, 3),
                    format_double(t.total(), 3)});
  }

  // Steady-state window times in the three regimes.
  auto window_at = [&](int iter) {
    return times[static_cast<std::size_t>(iter)] -
           times[static_cast<std::size_t>(iter - sample)];
  };
  rep.note("Window time before shrink: " +
           format_double(window_at(shrink_at - sample), 4) +
           "s, while shrunk: " + format_double(window_at(expand_at - sample), 4) +
           "s, after expand: " + format_double(window_at(iters - sample), 4) +
           "s");
}

const bench::RegisterBench kReg{{
    "fig6_timeline",
    "Figure 6: Jacobi2D 16384^2 timeline with a 32->16 shrink and 16->32 expand",
    {{"iters", "3000", "total iterations"},
     {"shrink_at", "1000", "iteration of the 32->16 shrink"},
     {"expand_at", "2000", "iteration of the 16->32 expand"},
     {"sample", "10", "window size in iterations"}},
    {{"iters", "600"}, {"shrink_at", "200"}, {"expand_at", "400"}},
    run}};

}  // namespace
