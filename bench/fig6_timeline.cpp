// Reproduces paper Figure 6: Jacobi2D (16384^2) timeline with a shrink from
// 32 to 16 replicas and a later expand back to 32.
//   Fig 6a: time taken by each consecutive 10-iteration window.
//   Fig 6b: timestamp at which every 10th iteration completes (the rescale
//           gaps appear as jumps; the slope change shows the speed change).
//
// Usage: fig6_timeline [iters=3000] [shrink_at=1000] [expand_at=2000]
//                      [sample=10] [csv=false]

#include <iostream>

#include "apps/calibration.hpp"
#include "apps/jacobi2d.hpp"
#include "common/config.hpp"
#include "common/table.hpp"

using namespace ehpc;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int iters = cfg.get_int("iters", 3000);
  const int shrink_at = cfg.get_int("shrink_at", 1000);
  const int expand_at = cfg.get_int("expand_at", 2000);
  const int sample = cfg.get_int("sample", 10);
  const bool csv = cfg.get_bool("csv", false);

  charm::RuntimeConfig rc;
  rc.num_pes = 32;
  charm::Runtime rt(rc);
  apps::Jacobi2D app(rt, apps::jacobi_for_grid(16384, iters));
  app.driver().at_iteration(shrink_at,
                            [](charm::Runtime& r) { r.ccs().request_rescale(16); });
  app.driver().at_iteration(expand_at,
                            [](charm::Runtime& r) { r.ccs().request_rescale(32); });
  app.start();
  rt.run();

  const auto& times = app.driver().iteration_end_times();
  std::cout << "== Figure 6a/6b: per-" << sample
            << "-iteration window time and completion timestamps ==\n";
  Table table({"iteration", "window_time_s", "timestamp_s"});
  for (std::size_t i = static_cast<std::size_t>(sample); i < times.size();
       i += static_cast<std::size_t>(sample)) {
    table.add_row({std::to_string(i),
                   format_double(times[i] - times[i - static_cast<std::size_t>(sample)], 4),
                   format_double(times[i], 2)});
  }
  std::cout << (csv ? table.to_csv() : table.to_text()) << "\n";

  std::cout << "== Rescale events ==\n";
  for (const auto& t : rt.rescale_history()) {
    std::cout << (t.direction == charm::RescaleDirection::kShrink ? "shrink"
                                                                  : "expand")
              << " " << t.old_pes << " -> " << t.new_pes
              << ": lb=" << format_double(t.load_balance_s, 3)
              << "s ckpt=" << format_double(t.checkpoint_s, 3)
              << "s restart=" << format_double(t.restart_s, 3)
              << "s restore=" << format_double(t.restore_s, 3)
              << "s total=" << format_double(t.total(), 3) << "s\n";
  }

  // Steady-state window times in the three regimes.
  auto window_at = [&](int iter) {
    return times[static_cast<std::size_t>(iter)] -
           times[static_cast<std::size_t>(iter - sample)];
  };
  std::cout << "\nWindow time before shrink: "
            << format_double(window_at(shrink_at - sample), 4)
            << "s, while shrunk: " << format_double(window_at(expand_at - sample), 4)
            << "s, after expand: " << format_double(window_at(iters - sample), 4)
            << "s\n";
  return 0;
}
