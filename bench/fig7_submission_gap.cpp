// Reproduces paper Figure 7: scheduler performance vs job submission rate.
// 16 random jobs (4 size classes, priorities 1-5), T_rescale_gap = 180 s,
// submission gap swept 0..300 s; four metrics for the four policies,
// averaged over `repeats` random mixes.
//
// Usage: fig7_submission_gap [repeats=100] [seed=2025] [calibrated=true]
//                            [csv=false]

#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "schedsim/sweeps.hpp"

using namespace ehpc;
using elastic::PolicyMode;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  schedsim::ExperimentParams params;
  params.repeats = cfg.get_int("repeats", 100);
  params.seed = static_cast<unsigned>(cfg.get_int("seed", 2025));
  params.calibrated = cfg.get_bool("calibrated", true);
  params.rescale_gap_s = 180.0;
  const bool csv = cfg.get_bool("csv", false);

  const std::vector<double> gaps{0, 30, 60, 90, 120, 180, 240, 300};
  const auto points = schedsim::sweep_submission_gap(params, gaps);

  const std::vector<std::pair<std::string,
                              double elastic::RunMetrics::*>>
      metrics{{"Figure 7a: cluster utilization", &elastic::RunMetrics::utilization},
              {"Figure 7b: total time (s)", &elastic::RunMetrics::total_time_s},
              {"Figure 7c: weighted mean response time (s)",
               &elastic::RunMetrics::weighted_response_s},
              {"Figure 7d: weighted mean completion time (s)",
               &elastic::RunMetrics::weighted_completion_s}};

  for (const auto& [title, member] : metrics) {
    std::cout << "== " << title << " vs submission gap ==\n";
    Table table({"gap_s", "elastic", "moldable", "min_replicas", "max_replicas"});
    for (const auto& pt : points) {
      table.add_row(
          {format_double(pt.x, 0),
           format_double(pt.metrics.at(PolicyMode::kElastic).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kMoldable).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kRigidMin).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kRigidMax).*member, 3)});
    }
    std::cout << (csv ? table.to_csv() : table.to_text()) << "\n";
  }
  std::cout << "(" << params.repeats << " random mixes per point, seed "
            << params.seed << ", "
            << (params.calibrated ? "minicharm-calibrated" : "analytic")
            << " step-time curves)\n";
  return 0;
}
