// Reproduces paper Figure 7: scheduler performance vs job submission rate.
// 16 random jobs (4 size classes, priorities 1-5), T_rescale_gap = 180 s,
// submission gap swept 0..300 s; four metrics for the four policies,
// averaged over `repeats` random mixes.
//
// The experiment itself is the registered "fig7_submission_gap" scenario;
// this driver only overlays flags and renders tables. `threads=N` (a common
// harness flag) fans the sweep cells out deterministically.

#include <tuple>

#include "bench/lib/registry.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

using namespace ehpc;
using elastic::PolicyMode;

namespace {

void run(bench::Reporter& rep, const Config& cfg) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioRegistry::instance().require("fig7_submission_gap");
  spec.repeats = cfg.get_int("repeats", 100);
  spec.seed = static_cast<unsigned>(cfg.get_int("seed", 2025));
  spec.calibrated = cfg.get_bool("calibrated", true);

  const auto points =
      scenario::run_sweep(spec, cfg.get_int("threads", 1)).points;

  const std::vector<std::tuple<std::string, std::string,
                               double elastic::RunMetrics::*>>
      metrics{{"fig7a_utilization", "Figure 7a: cluster utilization",
               &elastic::RunMetrics::utilization},
              {"fig7b_total_time", "Figure 7b: total time (s)",
               &elastic::RunMetrics::total_time_s},
              {"fig7c_response", "Figure 7c: weighted mean response time (s)",
               &elastic::RunMetrics::weighted_response_s},
              {"fig7d_completion",
               "Figure 7d: weighted mean completion time (s)",
               &elastic::RunMetrics::weighted_completion_s}};

  for (const auto& [id, title, member] : metrics) {
    Table& table = rep.add_table(
        id, title + " vs submission gap",
        {"gap_s", "elastic", "moldable", "min_replicas", "max_replicas"});
    for (const auto& pt : points) {
      table.add_row(
          {format_double(pt.x, 0),
           format_double(pt.metrics.at(PolicyMode::kElastic).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kMoldable).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kRigidMin).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kRigidMax).*member, 3)});
    }
  }
  std::string note = "(";
  note += std::to_string(spec.repeats);
  note += " random mixes per point, seed ";
  note += std::to_string(spec.seed);
  note += ", ";
  note += spec.calibrated ? "minicharm-calibrated" : "analytic";
  note += " step-time curves)";
  rep.note(note);
}

const bench::RegisterBench kReg{{
    "fig7_submission_gap",
    "Figure 7: scheduler metrics vs job submission gap (four policies)",
    {{"repeats", "100", "random job mixes per sweep point"},
     {"seed", "2025", "base RNG seed"},
     {"calibrated", "true", "use minicharm-calibrated step-time curves"}},
    {{"repeats", "10"}},
    run}};

}  // namespace
