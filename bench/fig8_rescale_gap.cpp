// Reproduces paper Figure 8: scheduler performance vs T_rescale_gap at a
// fixed submission gap. As the gap grows, the elastic scheduler converges to
// the moldable scheduler.
//
// The paper fixes the submission gap at 180 s; with this repo's calibrated
// job durations (which match Table 1's totals) 180 s leaves too little
// contention for rescaling to matter, so the default here is 90 s — the Fig 8
// phenomenology (falling utilization, rising total time, convergence to
// moldable) is fully visible there. Pass submission_gap=180 for the paper's
// literal setting.
//
// Usage: fig8_rescale_gap [repeats=100] [seed=2025] [calibrated=true]
//                         [submission_gap=90] [csv=false]

#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "schedsim/sweeps.hpp"

using namespace ehpc;
using elastic::PolicyMode;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  schedsim::ExperimentParams params;
  params.repeats = cfg.get_int("repeats", 100);
  params.seed = static_cast<unsigned>(cfg.get_int("seed", 2025));
  params.calibrated = cfg.get_bool("calibrated", true);
  params.submission_gap_s = cfg.get_double("submission_gap", 90.0);
  const bool csv = cfg.get_bool("csv", false);

  const std::vector<double> gaps{0, 60, 120, 180, 300, 600, 900, 1200};
  const auto points = schedsim::sweep_rescale_gap(params, gaps);

  const std::vector<std::pair<std::string, double elastic::RunMetrics::*>>
      metrics{{"Figure 8a: cluster utilization", &elastic::RunMetrics::utilization},
              {"Figure 8b: total time (s)", &elastic::RunMetrics::total_time_s},
              {"Figure 8c: weighted mean response time (s)",
               &elastic::RunMetrics::weighted_response_s},
              {"Figure 8d: weighted mean completion time (s)",
               &elastic::RunMetrics::weighted_completion_s}};

  for (const auto& [title, member] : metrics) {
    std::cout << "== " << title << " vs T_rescale_gap ==\n";
    Table table({"rescale_gap_s", "elastic", "moldable", "min_replicas",
                 "max_replicas"});
    for (const auto& pt : points) {
      table.add_row(
          {format_double(pt.x, 0),
           format_double(pt.metrics.at(PolicyMode::kElastic).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kMoldable).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kRigidMin).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kRigidMax).*member, 3)});
    }
    std::cout << (csv ? table.to_csv() : table.to_text()) << "\n";
  }
  std::cout << "(" << params.repeats << " random mixes per point, submission gap "
            << params.submission_gap_s << " s; elastic -> moldable as the gap grows)\n";
  return 0;
}
