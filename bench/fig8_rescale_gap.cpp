// Reproduces paper Figure 8: scheduler performance vs T_rescale_gap at a
// fixed submission gap. As the gap grows, the elastic scheduler converges to
// the moldable scheduler.
//
// The paper fixes the submission gap at 180 s; with this repo's calibrated
// job durations (which match Table 1's totals) 180 s leaves too little
// contention for rescaling to matter, so the default here is 90 s — the Fig 8
// phenomenology (falling utilization, rising total time, convergence to
// moldable) is fully visible there. Pass submission_gap=180 for the paper's
// literal setting.
//
// The experiment itself is the registered "fig8_rescale_gap" scenario;
// `threads=N` (a common harness flag) fans the sweep cells out.

#include <tuple>

#include "bench/lib/registry.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

using namespace ehpc;
using elastic::PolicyMode;

namespace {

void run(bench::Reporter& rep, const Config& cfg) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioRegistry::instance().require("fig8_rescale_gap");
  spec.repeats = cfg.get_int("repeats", 100);
  spec.seed = static_cast<unsigned>(cfg.get_int("seed", 2025));
  spec.calibrated = cfg.get_bool("calibrated", true);
  spec.submission_gap_s = cfg.get_double("submission_gap", 90.0);

  const auto points =
      scenario::run_sweep(spec, cfg.get_int("threads", 1)).points;

  const std::vector<std::tuple<std::string, std::string,
                               double elastic::RunMetrics::*>>
      metrics{{"fig8a_utilization", "Figure 8a: cluster utilization",
               &elastic::RunMetrics::utilization},
              {"fig8b_total_time", "Figure 8b: total time (s)",
               &elastic::RunMetrics::total_time_s},
              {"fig8c_response", "Figure 8c: weighted mean response time (s)",
               &elastic::RunMetrics::weighted_response_s},
              {"fig8d_completion",
               "Figure 8d: weighted mean completion time (s)",
               &elastic::RunMetrics::weighted_completion_s}};

  for (const auto& [id, title, member] : metrics) {
    Table& table = rep.add_table(
        id, title + " vs T_rescale_gap",
        {"rescale_gap_s", "elastic", "moldable", "min_replicas",
         "max_replicas"});
    for (const auto& pt : points) {
      table.add_row(
          {format_double(pt.x, 0),
           format_double(pt.metrics.at(PolicyMode::kElastic).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kMoldable).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kRigidMin).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kRigidMax).*member, 3)});
    }
  }
  std::string note = "(";
  note += std::to_string(spec.repeats);
  note += " random mixes per point, submission gap ";
  note += format_double(spec.submission_gap_s, 0);
  note += " s; elastic -> moldable as the gap grows)";
  rep.note(note);
}

const bench::RegisterBench kReg{{
    "fig8_rescale_gap",
    "Figure 8: scheduler metrics vs T_rescale_gap (elastic converges to moldable)",
    {{"repeats", "100", "random job mixes per sweep point"},
     {"seed", "2025", "base RNG seed"},
     {"calibrated", "true", "use minicharm-calibrated step-time curves"},
     {"submission_gap", "90", "fixed submission gap in seconds"}},
    {{"repeats", "10"}},
    run}};

}  // namespace
