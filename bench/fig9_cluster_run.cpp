// Reproduces paper Figure 9: one deterministic job set executed on the
// Kubernetes substrate under all four scheduling policies.
//   Fig 9a: cluster-utilization profile over time per policy.
//   Fig 9b: replica-count evolution of an xlarge job under elastic.
//
// The run includes every operator-level overhead the simulator ignores
// (scheduling latency, pod startup, reconcile latency, the shrink/expand
// handshake), exactly like the paper's EKS experiment. The experiment is
// the registered "fig9_cluster" scenario (substrate=cluster).

#include <algorithm>
#include <map>

#include "bench/lib/registry.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

using namespace ehpc;
using elastic::PolicyMode;

namespace {

void run(bench::Reporter& rep, const Config& cfg) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioRegistry::instance().require("fig9_cluster");
  spec.seed = static_cast<unsigned>(cfg.get_int("seed", 2025));
  spec.submission_gap_s = cfg.get_double("gap", 90.0);
  spec.rescale_gap_s = cfg.get_double("rescale_gap", 180.0);
  spec.calibrated = cfg.get_bool("calibrated", true);
  const double bucket = cfg.get_double("bucket", 60.0);

  const auto mix = scenario::make_mix(spec, spec.seed);
  const auto results = scenario::run_policies(spec, mix);

  double horizon = 0.0;
  for (const auto& [mode, res] : results) {
    horizon = std::max(horizon, res.metrics.total_time_s);
  }
  Table& profile = rep.add_table(
      "fig9a_util_profile",
      "Figure 9a: cluster utilization profiles (bucketed averages)",
      {"t_s", "min_replicas", "max_replicas", "moldable", "elastic"});
  for (double t = 0.0; t < horizon; t += bucket) {
    auto cell = [&](PolicyMode mode) {
      return format_double(
          results.at(mode).trace.average("util", t, t + bucket), 3);
    };
    profile.add_row({format_double(t, 0), cell(PolicyMode::kRigidMin),
                     cell(PolicyMode::kRigidMax), cell(PolicyMode::kMoldable),
                     cell(PolicyMode::kElastic)});
  }

  // Fig 9b: the xlarge job that rescaled the most under elastic; if no
  // xlarge rescaled in this mix, fall back to the most-rescaled job overall.
  const auto& elastic_run = results.at(PolicyMode::kElastic);
  int best_job = -1;
  std::size_t best_changes = 0;
  std::string best_class = "xlarge";
  for (const auto& sj : mix) {
    if (sj.job_class != elastic::JobClass::kXLarge) continue;
    const auto& series = elastic_run.trace.series(
        "job." + std::to_string(sj.spec.id) + ".replicas");
    if (series.size() >= best_changes) {
      best_changes = series.size();
      best_job = sj.spec.id;
    }
  }
  if (best_changes < 3) {
    for (const auto& sj : mix) {
      const auto& series = elastic_run.trace.series(
          "job." + std::to_string(sj.spec.id) + ".replicas");
      if (series.size() > best_changes) {
        best_changes = series.size();
        best_job = sj.spec.id;
        best_class = elastic::to_string(sj.job_class);
      }
    }
  }
  if (best_job >= 0) {
    Table& evolution = rep.add_table(
        "fig9b_replica_evolution",
        "Figure 9b: replica evolution of " + best_class + " job " +
            std::to_string(best_job) + " (elastic)",
        {"timestamp_s", "replicas"});
    for (const auto& [t, v] :
         elastic_run.trace.series("job." + std::to_string(best_job) + ".replicas")) {
      evolution.add_row({format_double(t, 1), format_double(v, 0)});
    }
  } else {
    rep.note("(no xlarge job in this mix; rerun with another seed)");
  }

  Table& metrics = rep.add_table(
      "fig9_policy_metrics",
      "Per-policy metrics for this run (the 'Actual' flavour)",
      {"scheduler", "total_time_s", "utilization", "w_mean_response_s",
       "w_mean_completion_s", "rescales"});
  for (const PolicyMode mode : spec.policies) {
    const auto& m = results.at(mode).metrics;
    metrics.add_row({elastic::to_string(mode), format_double(m.total_time_s, 1),
                     format_double(m.utilization, 4),
                     format_double(m.weighted_response_s, 2),
                     format_double(m.weighted_completion_s, 2),
                     std::to_string(results.at(mode).rescale_count)});
  }
}

const bench::RegisterBench kReg{{
    "fig9_cluster_run",
    "Figure 9: one job set on the k8s substrate under all four policies",
    {{"seed", "2025", "job mix RNG seed"},
     {"gap", "90", "submission gap in seconds"},
     {"rescale_gap", "180", "T_rescale_gap in seconds"},
     {"bucket", "60", "utilization-profile bucket width in seconds"},
     {"calibrated", "true", "use minicharm-calibrated step-time curves"}},
    {},
    run}};

}  // namespace
