// Beyond-paper figure: the AMR irregular workload. Three panels:
//   a) scheduler metrics + LB imbalance vs refinement rate (amr_imbalance);
//   b) rescale stage timings while the mesh is heavily imbalanced, per LB
//      strategy (minicharm, cf. Figure 5 for the regular Jacobi case);
//   c) load-balancer ablation null/greedy/refine (amr_lb_ablation).
//
// The experiments are the registered "amr_imbalance" / "amr_lb_ablation"
// scenarios; this driver overlays flags and renders tables.

#include <tuple>

#include "apps/calibration.hpp"
#include "bench/lib/registry.hpp"
#include "charm/load_balancer.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "schedsim/calibrate.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

using namespace ehpc;
using elastic::PolicyMode;

namespace {

void run(bench::Reporter& rep, const Config& cfg) {
  const int repeats = cfg.get_int("repeats", 20);
  const auto seed = static_cast<unsigned>(cfg.get_int("seed", 2025));
  const int threads = cfg.get_int("threads", 1);

  // ---- panel a: refinement-rate sweep ----
  scenario::ScenarioSpec imbalance =
      scenario::ScenarioRegistry::instance().require("amr_imbalance");
  imbalance.repeats = repeats;
  imbalance.seed = seed;
  const auto imbalance_points = scenario::run_sweep(imbalance, threads).points;

  const std::vector<std::tuple<std::string, std::string,
                               double elastic::RunMetrics::*>>
      metrics{{"fig_amr_a1_utilization", "AMR panel a: cluster utilization",
               &elastic::RunMetrics::utilization},
              {"fig_amr_a2_total_time", "AMR panel a: total time (s)",
               &elastic::RunMetrics::total_time_s},
              {"fig_amr_a3_completion",
               "AMR panel a: weighted mean completion time (s)",
               &elastic::RunMetrics::weighted_completion_s},
              {"fig_amr_a4_lb_ratio",
               "AMR panel a: mean post-LB max/avg load ratio",
               &elastic::RunMetrics::lb_post_ratio}};
  for (const auto& [id, title, member] : metrics) {
    Table& table = rep.add_table(
        id, title + " vs refinement rate",
        {"refine_rate", "elastic", "moldable", "min_replicas", "max_replicas"});
    for (const auto& pt : imbalance_points) {
      table.add_row(
          {format_double(pt.x, 3),
           format_double(pt.metrics.at(PolicyMode::kElastic).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kMoldable).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kRigidMin).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kRigidMax).*member, 3)});
    }
  }

  // ---- panel b: rescale stage timings under imbalance, per LB strategy ----
  Table& stages = rep.add_table(
      "fig_amr_b_rescale_stages",
      "AMR panel b: 32 -> 16 shrink with a developed refinement front "
      "(minicharm, large class)",
      {"strategy", "lb_s", "ckpt_s", "restart_s", "restore_s", "total_s",
       "migrated_objects"});
  for (const std::string& lb : charm::load_balancer_names()) {
    charm::RuntimeConfig rc;
    rc.load_balancer = lb;
    const apps::AmrConfig config =
        schedsim::amr_config_for(elastic::JobClass::kLarge, /*refine_rate=*/0.12);
    const auto t = apps::measure_amr_rescale(config, 32, 16, /*warmup=*/8, rc);
    stages.add_row({lb, format_double(t.load_balance_s, 4),
                    format_double(t.checkpoint_s, 4),
                    format_double(t.restart_s, 4),
                    format_double(t.restore_s, 4), format_double(t.total(), 4),
                    std::to_string(t.migrated_objects)});
  }

  // ---- panel c: LB strategy ablation on the scheduler metrics ----
  scenario::ScenarioSpec ablation =
      scenario::ScenarioRegistry::instance().require("amr_lb_ablation");
  ablation.repeats = repeats;
  ablation.seed = seed;
  const auto ablation_points = scenario::run_sweep(ablation, threads).points;
  Table& lb_table = rep.add_table(
      "fig_amr_c_lb_ablation",
      "AMR panel c: elastic policy per runtime LB strategy",
      {"strategy", "utilization", "total_s", "completion_s", "lb_post_ratio",
       "migrations_per_step"});
  for (const auto& pt : ablation_points) {
    const auto& m = pt.metrics.at(PolicyMode::kElastic);
    lb_table.add_row(
        {charm::load_balancer_names().at(static_cast<std::size_t>(pt.x)),
         format_double(m.utilization, 3), format_double(m.total_time_s, 1),
         format_double(m.weighted_completion_s, 2),
         format_double(m.lb_post_ratio, 3),
         format_double(m.lb_migrations_per_step, 2)});
  }

  std::string note = "(";
  note += std::to_string(repeats);
  note += " random mixes per point, seed ";
  note += std::to_string(seed);
  note += "; AMR workloads are minicharm-calibrated per sweep point)";
  rep.note(note);
}

const bench::RegisterBench kReg{{
    "fig_amr",
    "AMR irregular workload: imbalance sweep, rescale stages, LB ablation",
    {{"repeats", "20", "random job mixes per sweep point"},
     {"seed", "2025", "base RNG seed"}},
    {{"repeats", "5"}},
    run}};

}  // namespace
