// Beyond-paper figure: policies under failure injection. Four panels:
//   a) the fixed crash/eviction schedule (fault_recovery): every §4.3
//      metric plus the recovery accounting, per policy;
//   b) scheduler metrics vs crash MTBF with a fixed checkpoint cadence and
//      a prun-style failure budget (fault_churn);
//   c) the checkpoint-period tradeoff at a fixed MTBF: short periods pay
//      checkpoint overhead, long periods pay lost work;
//   d) load-balancer ablation under a crash chain on the AMR workload
//      (fault_lb_ablation): recovery re-placement quality per LB strategy;
//   e) rack-level correlated loss (fault_correlated): every policy under
//      two domain crashes, with the correlated-failure accounting;
//   e2) amplification: the same policies under an independent single-node
//      loss at the identical instants — the completion ratio says whether
//      elastic re-placement absorbs or amplifies the correlated burst;
//   f) recovery storm (fault_storm): the elastic policy as restore
//      bandwidth shrinks and concurrent restores start queueing.
//
// The experiments are the registered fault scenarios; this driver overlays
// flags and renders tables.

#include <tuple>

#include "bench/lib/registry.hpp"
#include "charm/load_balancer.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

using namespace ehpc;
using elastic::PolicyMode;

namespace {

std::string join_values_text(const std::vector<double>& values) {
  std::string out;
  for (const double v : values) {
    if (!out.empty()) out += '/';
    out += format_double(v, 0);
  }
  return out;
}

/// One row per policy: the §4.3 metrics plus the recovery accounting.
void policy_rows(Table& table, const scenario::PolicyMetrics& metrics,
                 const std::vector<PolicyMode>& policies) {
  for (const auto mode : policies) {
    const auto& m = metrics.at(mode);
    table.add_row({elastic::to_string(mode), format_double(m.utilization, 3),
                   format_double(m.total_time_s, 1),
                   format_double(m.weighted_completion_s, 2),
                   format_double(m.recovery_time_s, 2),
                   format_double(m.lost_work_s, 2),
                   format_double(m.goodput, 4),
                   format_double(m.jobs_failed, 3)});
  }
}

void run(bench::Reporter& rep, const Config& cfg) {
  const int repeats = cfg.get_int("repeats", 20);
  const auto seed = static_cast<unsigned>(cfg.get_int("seed", 2025));
  const int threads = cfg.get_int("threads", 1);

  // ---- panel a: fixed crash/eviction schedule, per policy ----
  scenario::ScenarioSpec recovery =
      scenario::ScenarioRegistry::instance().require("fault_recovery");
  recovery.repeats = repeats;
  recovery.seed = seed;
  const auto recovery_metrics = scenario::compare_policies(recovery, threads);
  Table& recovery_table = rep.add_table(
      "fig_fault_a_recovery",
      "Fault panel a: fixed crash/eviction schedule (" +
          join_values_text(recovery.faults.crash_times) + " s crashes, " +
          join_values_text(recovery.faults.evict_times) +
          " s eviction, checkpoints every " +
          format_double(recovery.faults.checkpoint_period_s, 0) + " s)",
      {"policy", "utilization", "total_s", "completion_s", "recovery_s",
       "lost_work_s", "goodput", "jobs_failed"});
  policy_rows(recovery_table, recovery_metrics, recovery.policies);

  // ---- panel b: MTBF sweep under a failure budget ----
  scenario::ScenarioSpec churn =
      scenario::ScenarioRegistry::instance().require("fault_churn");
  churn.repeats = repeats;
  churn.seed = seed;
  const auto churn_points = scenario::run_sweep(churn, threads).points;
  const std::vector<std::tuple<std::string, std::string,
                               double elastic::RunMetrics::*>>
      churn_metrics{
          {"fig_fault_b1_utilization", "Fault panel b: cluster utilization",
           &elastic::RunMetrics::utilization},
          {"fig_fault_b2_completion",
           "Fault panel b: weighted mean completion time (s)",
           &elastic::RunMetrics::weighted_completion_s},
          {"fig_fault_b3_goodput", "Fault panel b: mean per-job goodput",
           &elastic::RunMetrics::goodput},
          {"fig_fault_b4_jobs_failed",
           "Fault panel b: jobs killed by the failure budget",
           &elastic::RunMetrics::jobs_failed}};
  for (const auto& [id, title, member] : churn_metrics) {
    Table& table = rep.add_table(
        id, title + " vs crash MTBF",
        {"mtbf_s", "elastic", "moldable", "min_replicas", "max_replicas"});
    for (const auto& pt : churn_points) {
      table.add_row(
          {format_double(pt.x, 0),
           format_double(pt.metrics.at(PolicyMode::kElastic).*member, 4),
           format_double(pt.metrics.at(PolicyMode::kMoldable).*member, 4),
           format_double(pt.metrics.at(PolicyMode::kRigidMin).*member, 4),
           format_double(pt.metrics.at(PolicyMode::kRigidMax).*member, 4)});
    }
  }

  // ---- panel c: checkpoint-period tradeoff at fixed MTBF ----
  scenario::ScenarioSpec period = churn;
  period.name = "custom";
  period.faults.crash_mtbf_s = 1200.0;
  period.faults.checkpoint_period_s = 0.0;  // the axis supplies it per point
  period.axis = scenario::SweepAxis::kCheckpointPeriod;
  period.axis_values = {75, 150, 300, 600, 1200};
  const auto period_points = scenario::run_sweep(period, threads).points;
  Table& period_table = rep.add_table(
      "fig_fault_c_checkpoint_period",
      "Fault panel c: elastic policy vs checkpoint period at MTBF " +
          format_double(period.faults.crash_mtbf_s, 0) + " s",
      {"period_s", "utilization", "completion_s", "recovery_s", "lost_work_s",
       "goodput"});
  for (const auto& pt : period_points) {
    const auto& m = pt.metrics.at(PolicyMode::kElastic);
    period_table.add_row({format_double(pt.x, 0),
                          format_double(m.utilization, 3),
                          format_double(m.weighted_completion_s, 2),
                          format_double(m.recovery_time_s, 2),
                          format_double(m.lost_work_s, 2),
                          format_double(m.goodput, 4)});
  }

  // ---- panel d: LB ablation under a crash chain (AMR workload) ----
  scenario::ScenarioSpec ablation =
      scenario::ScenarioRegistry::instance().require("fault_lb_ablation");
  ablation.repeats = repeats;
  ablation.seed = seed;
  const auto ablation_points = scenario::run_sweep(ablation, threads).points;
  Table& lb_table = rep.add_table(
      "fig_fault_d_lb_ablation",
      "Fault panel d: elastic policy per runtime LB strategy, crash MTBF " +
          format_double(ablation.faults.crash_mtbf_s, 0) + " s",
      {"strategy", "utilization", "completion_s", "recovery_s", "lost_work_s",
       "goodput", "lb_post_ratio"});
  for (const auto& pt : ablation_points) {
    const auto& m = pt.metrics.at(PolicyMode::kElastic);
    lb_table.add_row(
        {charm::load_balancer_names().at(static_cast<std::size_t>(pt.x)),
         format_double(m.utilization, 3),
         format_double(m.weighted_completion_s, 2),
         format_double(m.recovery_time_s, 2),
         format_double(m.lost_work_s, 2), format_double(m.goodput, 4),
         format_double(m.lb_post_ratio, 3)});
  }

  // ---- panel e: rack-level correlated loss, per policy ----
  scenario::ScenarioSpec correlated =
      scenario::ScenarioRegistry::instance().require("fault_correlated");
  correlated.repeats = repeats;
  correlated.seed = seed;
  const auto correlated_metrics =
      scenario::compare_policies(correlated, threads);
  Table& correlated_table = rep.add_table(
      "fig_fault_e_correlated",
      "Fault panel e: rack-level correlated loss (domains " +
          std::to_string(correlated.faults.domain_sizes.size()) +
          " x 16 slots, domain crashes at 500/1300 s)",
      {"policy", "utilization", "completion_s", "recovery_s", "lost_work_s",
       "goodput", "correlated_failures", "node_failures"});
  for (const auto mode : correlated.policies) {
    const auto& m = correlated_metrics.at(mode);
    correlated_table.add_row(
        {elastic::to_string(mode), format_double(m.utilization, 3),
         format_double(m.weighted_completion_s, 2),
         format_double(m.recovery_time_s, 2),
         format_double(m.lost_work_s, 2), format_double(m.goodput, 4),
         format_double(m.correlated_failures, 3),
         format_double(m.failures, 3)});
  }

  // ---- panel e2: correlated vs independent loss at the same instants ----
  // The independent plan replaces each domain crash with a single-node
  // crash at the identical timestamp; completion_ratio > 1 means the
  // correlated burst costs more than the sum of its independent parts.
  scenario::ScenarioSpec independent = correlated;
  independent.name = "custom";
  independent.faults.domain_sizes.clear();
  independent.faults.domain_crashes.clear();
  for (const auto& crash : correlated.faults.domain_crashes) {
    independent.faults.crash_times.push_back(crash.time_s);
  }
  const auto independent_metrics =
      scenario::compare_policies(independent, threads);
  Table& amp_table = rep.add_table(
      "fig_fault_e2_amplification",
      "Fault panel e2: correlated domain loss vs independent single-node "
      "loss at the same instants",
      {"policy", "completion_corr_s", "completion_indep_s",
       "completion_ratio", "goodput_corr", "goodput_indep"});
  for (const auto mode : correlated.policies) {
    const auto& corr = correlated_metrics.at(mode);
    const auto& indep = independent_metrics.at(mode);
    amp_table.add_row(
        {elastic::to_string(mode),
         format_double(corr.weighted_completion_s, 2),
         format_double(indep.weighted_completion_s, 2),
         format_double(corr.weighted_completion_s /
                           indep.weighted_completion_s, 4),
         format_double(corr.goodput, 4), format_double(indep.goodput, 4)});
  }

  // ---- panel f: recovery storm vs restore bandwidth ----
  scenario::ScenarioSpec storm =
      scenario::ScenarioRegistry::instance().require("fault_storm");
  storm.name = "custom";
  storm.repeats = repeats;
  storm.seed = seed;
  storm.policies = {PolicyMode::kElastic};
  Table& storm_table = rep.add_table(
      "fig_fault_f_storm",
      "Fault panel f: elastic policy as the restore path saturates (32-slot "
      "domain crash at 600 s; bandwidth 0 = unlimited)",
      {"restore_bw", "completion_s", "recovery_s", "storm_peak_restorers",
       "storm_delay_s", "goodput"});
  for (const double bw : {0.0, 8.0, 4.0, 2.0, 1.0}) {
    storm.faults.restore_bandwidth = bw;
    // By value: compare_policies returns the map by value, so binding a
    // reference through .at() would dangle into the destroyed temporary.
    const elastic::RunMetrics m =
        scenario::compare_policies(storm, threads).at(PolicyMode::kElastic);
    storm_table.add_row({format_double(bw, 0),
                         format_double(m.weighted_completion_s, 2),
                         format_double(m.recovery_time_s, 2),
                         format_double(m.storm_peak_restorers, 2),
                         format_double(m.storm_delay_s, 2),
                         format_double(m.goodput, 4)});
  }

  std::string note = "(";
  note += std::to_string(repeats);
  note += " random mixes per point, seed ";
  note += std::to_string(seed);
  note += "; fault plans are deterministic, so both substrates replay the "
          "identical failure sequence)";
  rep.note(note);
}

const bench::RegisterBench kReg{{
    "fig_fault",
    "Failure injection: recovery accounting, MTBF sweep, checkpoint-period "
    "tradeoff, LB ablation under crashes, correlated domain loss, recovery "
    "storms",
    {{"repeats", "20", "random job mixes per sweep point"},
     {"seed", "2025", "base RNG seed"}},
    {{"repeats", "5"}},
    run}};

}  // namespace
