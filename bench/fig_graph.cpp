// Beyond-paper figure: the power-law graph workload on the topology-aware
// network model. Three panels:
//   a) scheduler metrics vs the skew exponent (graph_superstep): hub
//      concentration grows along the axis and the per-point calibration
//      feeds it into the scheduler-level curves;
//   b) minicharm mean superstep time for greedy vs commrefine while the
//      fat-tree core oversubscription rises — the headline claim: the
//      comm-aware balancer wins on hub-skewed graphs and the gap widens
//      as bisection bandwidth shrinks;
//   c) load-balancer ablation on the scheduler metrics over the
//      4x-oversubscribed fat-tree (graph_lb_ablation).
//
// Panels a/c are the registered scenarios; panel b drives the runtime
// directly so the step-time mechanism is visible without the scheduler on
// top.

#include <string>
#include <tuple>
#include <vector>

#include "apps/graph.hpp"
#include "bench/lib/registry.hpp"
#include "charm/runtime.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "net/network_model.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

using namespace ehpc;
using elastic::PolicyMode;

namespace {

/// Mean virtual-time superstep seconds for the graph config under one
/// (load balancer, network) combination.
double mean_step_seconds(const apps::GraphConfig& config,
                         const std::string& lb, double oversub,
                         int lb_period) {
  charm::RuntimeConfig rc;
  rc.num_pes = 32;
  rc.pes_per_node = 4;
  rc.load_balancer = lb;
  rc.network = net::make_network_model("fattree", oversub);
  charm::Runtime rt(rc);
  apps::Graph app(rt, config);
  app.driver().set_lb_period(lb_period);
  app.start();
  rt.run();
  return app.driver().iteration_end_times().back() / config.max_iterations;
}

void run(bench::Reporter& rep, const Config& cfg) {
  const int repeats = cfg.get_int("repeats", 20);
  const auto seed = static_cast<unsigned>(cfg.get_int("seed", 2025));
  const int threads = cfg.get_int("threads", 1);
  const int vertices = cfg.get_int("vertices", 16384);

  // ---- panel a: skew sweep through the scheduler ----
  scenario::ScenarioSpec superstep =
      scenario::ScenarioRegistry::instance().require("graph_superstep");
  superstep.repeats = repeats;
  superstep.seed = seed;
  const auto skew_points = scenario::run_sweep(superstep, threads).points;

  const std::vector<std::tuple<std::string, std::string,
                               double elastic::RunMetrics::*>>
      metrics{{"fig_graph_a1_utilization",
               "Graph panel a: cluster utilization",
               &elastic::RunMetrics::utilization},
              {"fig_graph_a2_total_time", "Graph panel a: total time (s)",
               &elastic::RunMetrics::total_time_s},
              {"fig_graph_a3_completion",
               "Graph panel a: weighted mean completion time (s)",
               &elastic::RunMetrics::weighted_completion_s}};
  for (const auto& [id, title, member] : metrics) {
    Table& table = rep.add_table(
        id, title + " vs power-law skew",
        {"graph_skew", "elastic", "moldable", "min_replicas", "max_replicas"});
    for (const auto& pt : skew_points) {
      table.add_row(
          {format_double(pt.x, 3),
           format_double(pt.metrics.at(PolicyMode::kElastic).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kMoldable).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kRigidMin).*member, 3),
           format_double(pt.metrics.at(PolicyMode::kRigidMax).*member, 3)});
    }
  }

  // ---- panel b: oversubscription vs LB strategy on the runtime ----
  apps::GraphConfig config;
  config.vertices = vertices;
  config.parts = 64;
  config.skew = 0.9;
  config.max_iterations = 10;
  Table& oversub_table = rep.add_table(
      "fig_graph_b_oversub",
      "Graph panel b: mean superstep time (s), 32 PEs / 4 per node, "
      "skew 0.9 fat-tree, LB every 2 supersteps",
      {"net_oversub", "greedy_step_s", "commrefine_step_s",
       "commrefine_speedup"});
  // Below the switch radix (4) the core is not structurally oversubscribed
  // and the hub access links dominate, so the gap holds steady; past it the
  // per-transfer core penalty scales with oversub and the gap widens.
  for (const double oversub : {1.0, 4.0, 8.0, 16.0}) {
    const double greedy =
        mean_step_seconds(config, "greedy", oversub, /*lb_period=*/2);
    const double comm =
        mean_step_seconds(config, "commrefine", oversub, /*lb_period=*/2);
    oversub_table.add_row({format_double(oversub, 0),
                           format_double(greedy, 6), format_double(comm, 6),
                           format_double(greedy / comm, 3)});
  }

  // ---- panel c: LB ablation through the scheduler ----
  scenario::ScenarioSpec ablation =
      scenario::ScenarioRegistry::instance().require("graph_lb_ablation");
  ablation.repeats = repeats;
  ablation.seed = seed;
  const auto ablation_points = scenario::run_sweep(ablation, threads).points;
  Table& lb_table = rep.add_table(
      "fig_graph_c_lb_ablation",
      "Graph panel c: elastic policy per runtime LB strategy "
      "(fat-tree, oversub 4)",
      {"strategy", "utilization", "total_s", "completion_s",
       "migrations_per_step"});
  for (const auto& pt : ablation_points) {
    const auto& m = pt.metrics.at(PolicyMode::kElastic);
    lb_table.add_row(
        {charm::load_balancer_names().at(static_cast<std::size_t>(pt.x)),
         format_double(m.utilization, 3), format_double(m.total_time_s, 1),
         format_double(m.weighted_completion_s, 2),
         format_double(m.lb_migrations_per_step, 2)});
  }

  std::string note = "(";
  note += std::to_string(repeats);
  note += " random mixes per scenario point, seed ";
  note += std::to_string(seed);
  note += "; panel b runs minicharm directly with ";
  note += std::to_string(vertices);
  note += " vertices)";
  rep.note(note);
}

const bench::RegisterBench kReg{{
    "fig_graph",
    "Power-law graph: skew sweep, oversubscription vs comm-aware LB, "
    "LB ablation",
    {{"repeats", "20", "random job mixes per sweep point"},
     {"seed", "2025", "base RNG seed"},
     {"vertices", "16384", "graph size for the direct runtime panel"}},
    {{"repeats", "5"}},
    run}};

}  // namespace
