// Beyond-paper figure: the cluster substrate at production scale. Each row
// runs the `k8s_scale` scenario (wide rigid jobs, rigid-min policy) at a
// growing (nodes, pods) shape — up to 10k emulated nodes / 100k pods — and
// records the *deterministic* control-plane cost counters maintained by the
// indexed store views:
//
//   bound            pods actually bound by the scheduler (workers+launchers)
//   bind_attempts    try_schedule invocations (binds + failed attempts)
//   retry_sweeps     deduplicated pending-queue sweeps
//   nodes_examined   fit/score evaluations inside placement queries
//   examined_per_bind  the scheduler-tick cost measure: with the indexed
//                      views this stays ~flat as pods grow 60x, i.e. total
//                      tick cost is linear in pods with a small constant
//                      (the historical scan grew as pods x nodes x pods)
//
// Virtual-time metrics (utilization, makespan) pin behavior; wall-clock per
// row goes into a note (not a compared cell — timing is machine-dependent)
// and the bench's total wall_ms is guarded by the perf-gate wall ceiling.
// The throughput floor lives in micro_benchmarks (BM_K8sClusterSchedule).

#include <algorithm>
#include <string>
#include <vector>

#include "bench/lib/registry.hpp"
#include "bench/lib/timer.hpp"
#include "common/table.hpp"
#include "opk/experiment.hpp"
#include "scenario/backend.hpp"
#include "scenario/registry.hpp"

using namespace ehpc;

namespace {

struct ScalePoint {
  int nodes;
  int num_jobs;
  int pods_per_job;
  double submission_gap_s;
};

void run(bench::Reporter& rep, const Config& cfg) {
  const auto seed = static_cast<unsigned>(cfg.get_int("seed", 2025));

  // nodes ∈ {100, 1k, 10k}; total worker pods 1.6k → 10k → 100k.
  const std::vector<ScalePoint> points{
      {100, 100, 16, 10.0},
      {1000, 100, 100, 10.0},
      {10000, 1000, 100, 1.0},
  };

  Table& table = rep.add_table(
      "fig_k8s_scale",
      "Cluster substrate at scale: indexed-view scheduler cost (k8s_scale "
      "scenario, rigid-min policy)",
      {"nodes", "pods", "bound", "bind_attempts", "retry_sweeps",
       "nodes_examined", "examined_per_bind", "utilization", "total_time_s"});

  std::string timing = "wall clock per row:";
  scenario::ScenarioSpec base =
      scenario::ScenarioRegistry::instance().require("k8s_scale");
  for (const ScalePoint& point : points) {
    scenario::ScenarioSpec spec = base;
    spec.nodes = point.nodes;
    spec.num_jobs = point.num_jobs;
    spec.pods_per_job = point.pods_per_job;
    spec.submission_gap_s = point.submission_gap_s;
    spec.seed = seed;
    spec.validate();

    const auto workloads = scenario::workloads_for(spec);
    const auto mix = scenario::make_mix(spec, spec.seed);
    opk::ExperimentConfig config;
    config.nodes = spec.nodes;
    config.cpus_per_node = spec.cpus_per_node;
    config.policy = scenario::policy_for(spec, spec.policies.front());
    opk::ClusterExperiment experiment(config, workloads);

    bench::Timer timer;
    const schedsim::SimResult result = experiment.run(mix);
    const double wall_ms = timer.elapsed_ms();

    const k8s::Cluster& cluster = experiment.cluster();
    const auto& sched = experiment.cluster().scheduler();
    const k8s::ClusterIndex::Stats& index = cluster.index().stats();
    const int pods = point.num_jobs * point.pods_per_job;
    const double per_bind =
        sched.scheduled_count() > 0
            ? static_cast<double>(index.nodes_examined) /
                  static_cast<double>(sched.scheduled_count())
            : 0.0;
    table.add_row({std::to_string(point.nodes), std::to_string(pods),
                   std::to_string(sched.scheduled_count()),
                   std::to_string(sched.stats().bind_attempts),
                   std::to_string(sched.stats().retry_sweeps),
                   std::to_string(index.nodes_examined),
                   format_double(per_bind, 2),
                   format_double(result.metrics.utilization, 3),
                   format_double(result.metrics.total_time_s, 1)});

    timing += " ";
    timing += std::to_string(point.nodes);
    timing += "n/";
    timing += std::to_string(pods);
    timing += "p=";
    timing += format_double(wall_ms, 0);
    timing += "ms (";
    timing += format_double(1000.0 * pods / std::max(wall_ms, 1e-9), 0);
    timing += " pods/s)";
  }
  rep.note(timing);
  std::string note = "(seed ";
  note += std::to_string(seed);
  note += "; counter cells are virtual-time deterministic — wall clock is "
          "reported only in the note above and via the bench wall_ms)";
  rep.note(note);
}

const bench::RegisterBench kReg{{
    "fig_k8s_scale",
    "Cluster substrate at 10k nodes / 100k pods: deterministic scheduler "
    "tick-cost counters from the indexed views",
    {{"seed", "2025", "base RNG seed"}},
    {},
    run}};

}  // namespace
