// Beyond-paper figure: the streaming trace-campaign engine at production
// trace lengths. Each scale row replays a synthetic arrival trace through
// `run_stream` (the `trace_replay` scenario with prun-style queue/task
// timeouts) and records *deterministic* cells:
//
//   peak_live        high-water mark of in-flight JobExec records — the
//                    bounded-memory claim: it tracks concurrency, not trace
//                    length, so 10k -> 1M grows jobs 100x while peak_live
//                    stays flat
//   completed/abandoned/timed_out  per-outcome job counts
//   resp_p50/p99     online P² percentiles of response time, folded as jobs
//                    retire (no per-job records are retained)
//
// Replay throughput (jobs/s wall clock) goes into a note, not a compared
// cell — timing is machine-dependent; the bench's total wall_ms is guarded
// by the perf-gate wall ceiling and the micro floor lives in
// micro_benchmarks (BM_TraceReplay).
//
// The second table compares the four policies on the `trace_replay`
// scenario itself (both tails of the same streamed trace per policy).

#include <algorithm>
#include <string>
#include <vector>

#include "bench/lib/registry.hpp"
#include "bench/lib/timer.hpp"
#include "common/table.hpp"
#include "scenario/backend.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

using namespace ehpc;

namespace {

void run(bench::Reporter& rep, const Config& cfg) {
  const auto seed = static_cast<unsigned>(cfg.get_int("seed", 2025));
  const long max_jobs = cfg.get_int("max_jobs", 1000000);
  const long policy_jobs = cfg.get_int("policy_jobs", 2000);

  const scenario::ScenarioSpec base =
      scenario::ScenarioRegistry::instance().require("trace_replay");

  // ---- scale rows: one streamed replay per trace length ----
  Table& scale = rep.add_table(
      "fig_trace_scale",
      "Streaming replay vs trace length (trace_replay scenario, elastic "
      "policy): memory tracks in-flight jobs, not trace length",
      {"jobs", "peak_live", "completed", "abandoned", "timed_out", "resp_p50",
       "resp_p99", "utilization", "total_time_s"});

  std::string timing = "wall clock per row:";
  for (const long jobs : {10000L, 100000L, 1000000L}) {
    if (jobs > max_jobs) continue;
    scenario::ScenarioSpec spec = base;
    spec.trace_jobs = jobs;
    spec.seed = seed;
    spec.validate();

    bench::Timer timer;
    const schedsim::SimResult result =
        scenario::run_single(spec, elastic::PolicyMode::kElastic, seed);
    const double wall_ms = timer.elapsed_ms();

    const schedsim::StreamStats& stream = result.stream;
    const elastic::RunMetrics& m = result.metrics;
    const long completed = stream.jobs_submitted -
                           static_cast<long>(m.jobs_failed) -
                           static_cast<long>(m.jobs_abandoned) -
                           static_cast<long>(m.jobs_timed_out);
    scale.add_row({std::to_string(stream.jobs_submitted),
                   std::to_string(stream.peak_live_jobs),
                   std::to_string(completed),
                   std::to_string(static_cast<long>(m.jobs_abandoned)),
                   std::to_string(static_cast<long>(m.jobs_timed_out)),
                   format_double(stream.response_p50, 1),
                   format_double(stream.response_p99, 1),
                   format_double(m.utilization, 3),
                   format_double(m.total_time_s, 1)});

    timing += " ";
    timing += std::to_string(jobs);
    timing += "j=";
    timing += format_double(wall_ms, 0);
    timing += "ms (";
    timing += format_double(1000.0 * static_cast<double>(jobs) /
                                std::max(wall_ms, 1e-9),
                            0);
    timing += " jobs/s)";
  }
  rep.note(timing);

  // ---- policy comparison on the registry scenario ----
  scenario::ScenarioSpec policy_spec = base;
  policy_spec.trace_jobs = policy_jobs;
  policy_spec.seed = seed;
  policy_spec.validate();

  Table& policies = rep.add_table(
      "fig_trace_policies",
      "Four policies replaying the identical streamed trace (trace_replay "
      "scenario)",
      {"policy", "peak_live", "abandoned", "timed_out", "resp_p50", "resp_p99",
       "utilization", "goodput", "total_time_s"});
  const auto results = scenario::run_policies_stream(policy_spec, seed);
  for (const auto& [mode, result] : results) {
    const schedsim::StreamStats& stream = result.stream;
    const elastic::RunMetrics& m = result.metrics;
    policies.add_row({elastic::to_string(mode),
                      std::to_string(stream.peak_live_jobs),
                      std::to_string(static_cast<long>(m.jobs_abandoned)),
                      std::to_string(static_cast<long>(m.jobs_timed_out)),
                      format_double(stream.response_p50, 1),
                      format_double(stream.response_p99, 1),
                      format_double(m.utilization, 3),
                      format_double(m.goodput, 3),
                      format_double(m.total_time_s, 1)});
  }

  std::string note = "(seed ";
  note += std::to_string(seed);
  note += "; all cells are virtual-time deterministic — replay throughput is "
          "reported only in the wall-clock note and via the bench wall_ms)";
  rep.note(note);
}

const bench::RegisterBench kReg{{
    "fig_trace",
    "Streaming trace campaigns: bounded-memory replay up to 1M jobs plus a "
    "policy comparison on the trace_replay scenario",
    {{"seed", "2025", "base RNG seed"},
     {"max_jobs", "1000000", "largest scale row to run"},
     {"policy_jobs", "2000", "trace length of the policy-comparison table"}},
    {{"max_jobs", "10000"}, {"policy_jobs", "500"}},
    run}};

}  // namespace
