#include "bench/lib/compare.hpp"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "bench/lib/json.hpp"

namespace ehpc::bench {

namespace {

std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::optional<double> parse_number(const std::string& cell) {
  if (cell.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) return std::nullopt;
  return value;
}

bool within_tolerance(double a, double b, const CompareOptions& options) {
  const double diff = std::fabs(a - b);
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= std::max(options.abs_tol, options.rel_tol * scale);
}

/// Find the summary entry of bench `name` in a summary document.
const Json* find_bench(const Json& summary, const std::string& name) {
  for (const auto& entry : summary.at("benches").elements()) {
    if (entry.at("bench").as_string() == name) return &entry;
  }
  return nullptr;
}

const Json* find_table(const Json& bench_entry, const std::string& table) {
  for (const auto& entry : bench_entry.at("tables").elements()) {
    if (entry.at("table").as_string() == table) return &entry;
  }
  return nullptr;
}

std::string config_to_string(const Json& config) {
  std::string out;
  for (const auto& [key, value] : config.members()) {
    if (!out.empty()) out += ' ';
    out += key + "=" + value.as_string();
  }
  return out.empty() ? "(empty)" : out;
}

}  // namespace

std::string CompareReport::to_text() const {
  std::ostringstream out;
  for (const auto& m : mismatches) {
    out << "MISMATCH " << m.bench;
    if (!m.table.empty()) out << "/" << m.table;
    out << ": " << m.detail << "\n";
  }
  out << (ok() ? "OK" : "FAIL") << ": " << benches_compared << " benches, "
      << tables_compared << " tables, " << cells_compared
      << " cells compared, " << mismatches.size() << " mismatches\n";
  return out.str();
}

std::vector<std::string> compare_tables(const Table& baseline,
                                        const Table& candidate,
                                        const CompareOptions& options) {
  std::vector<std::string> issues;
  if (baseline.header() != candidate.header()) {
    issues.push_back("header changed");
    return issues;
  }
  if (baseline.rows() != candidate.rows()) {
    issues.push_back("row count " + std::to_string(baseline.rows()) + " vs " +
                     std::to_string(candidate.rows()));
    return issues;
  }
  if (!options.values) return issues;

  for (std::size_t r = 0; r < baseline.rows(); ++r) {
    const auto& brow = baseline.row(r);
    const auto& crow = candidate.row(r);
    for (std::size_t c = 0; c < brow.size(); ++c) {
      const auto bnum = parse_number(brow[c]);
      const auto cnum = parse_number(crow[c]);
      bool equal;
      if (bnum && cnum) {
        equal = within_tolerance(*bnum, *cnum, options);
      } else {
        equal = brow[c] == crow[c];
      }
      if (!equal) {
        issues.push_back("row " + std::to_string(r) + " col '" +
                         baseline.header()[c] + "': " + brow[c] + " vs " +
                         crow[c]);
      }
    }
  }
  return issues;
}

CompareReport compare_dirs(const std::string& baseline_dir,
                           const std::string& candidate_dir,
                           const CompareOptions& options) {
  namespace fs = std::filesystem;
  CompareReport report;

  auto load_summary = [&](const std::string& dir) -> std::optional<Json> {
    const auto text = read_file(fs::path(dir) / "summary.json");
    if (!text) {
      report.mismatches.push_back(
          {dir, "", "cannot read " + dir + "/summary.json"});
      return std::nullopt;
    }
    try {
      return Json::parse(*text);
    } catch (const JsonError& err) {
      report.mismatches.push_back({dir, "", err.what()});
      return std::nullopt;
    }
  };

  const auto base = load_summary(baseline_dir);
  const auto cand = load_summary(candidate_dir);
  if (!base || !cand) return report;

  if (base->at("profile").as_string() != cand->at("profile").as_string()) {
    report.mismatches.push_back(
        {"summary", "",
         "profile '" + base->at("profile").as_string() + "' vs '" +
             cand->at("profile").as_string() + "'"});
  }

  for (const auto& bbench : base->at("benches").elements()) {
    const std::string name = bbench.at("bench").as_string();
    const Json* cbench = find_bench(*cand, name);
    if (!cbench) {
      report.mismatches.push_back({name, "", "bench missing from candidate"});
      continue;
    }
    ++report.benches_compared;

    const std::string bcfg = config_to_string(bbench.at("config"));
    const std::string ccfg = config_to_string(cbench->at("config"));
    if (bcfg != ccfg) {
      report.mismatches.push_back(
          {name, "", "config changed: " + bcfg + " vs " + ccfg});
    }

    if (options.compare_wall) {
      const double bwall = bbench.at("wall_ms").as_number();
      const double cwall = cbench->at("wall_ms").as_number();
      const double scale = std::max(std::fabs(bwall), std::fabs(cwall));
      if (std::fabs(bwall - cwall) > options.wall_rel_tol * scale) {
        report.mismatches.push_back(
            {name, "",
             "wall_ms " + std::to_string(bwall) + " vs " +
                 std::to_string(cwall)});
      }
    }

    for (const auto& btable : bbench.at("tables").elements()) {
      const std::string table = btable.at("table").as_string();
      const Json* ctable = find_table(*cbench, table);
      if (!ctable) {
        report.mismatches.push_back({name, table, "table missing from candidate"});
        continue;
      }
      ++report.tables_compared;

      const auto brows = btable.at("rows").as_number();
      const auto crows = ctable->at("rows").as_number();
      const auto bcols = btable.at("cols").as_number();
      const auto ccols = ctable->at("cols").as_number();
      if (brows != crows || bcols != ccols) {
        report.mismatches.push_back(
            {name, table,
             "shape " + format_double(brows, 0) + "x" + format_double(bcols, 0) +
                 " vs " + format_double(crows, 0) + "x" +
                 format_double(ccols, 0)});
        continue;
      }
      if (!options.values) continue;

      const auto bcsv =
          read_file(fs::path(baseline_dir) / btable.at("csv").as_string());
      const auto ccsv =
          read_file(fs::path(candidate_dir) / ctable->at("csv").as_string());
      if (!bcsv || !ccsv) {
        report.mismatches.push_back({name, table, "csv file missing on disk"});
        continue;
      }
      Table btab({"?"}), ctab({"?"});
      try {
        btab = parse_csv(*bcsv);
        ctab = parse_csv(*ccsv);
      } catch (const std::exception& err) {
        report.mismatches.push_back(
            {name, table, std::string("cannot parse csv: ") + err.what()});
        continue;
      }
      report.cells_compared +=
          static_cast<int>(btab.rows() * btab.columns());
      for (const auto& issue : compare_tables(btab, ctab, options)) {
        report.mismatches.push_back({name, table, issue});
      }
    }

    // A table added without regenerating the baseline is drift too.
    for (const auto& ctable : cbench->at("tables").elements()) {
      if (!find_table(bbench, ctable.at("table").as_string())) {
        report.mismatches.push_back({name, ctable.at("table").as_string(),
                                     "table missing from baseline"});
      }
    }
  }

  for (const auto& cbench : cand->at("benches").elements()) {
    if (!find_bench(*base, cbench.at("bench").as_string())) {
      report.mismatches.push_back({cbench.at("bench").as_string(), "",
                                   "bench missing from baseline"});
    }
  }

  return report;
}

}  // namespace ehpc::bench
