#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"

namespace ehpc::bench {

/// Tolerances for diffing two baseline directories.
struct CompareOptions {
  /// When false, only the shape is checked: bench/table presence, row and
  /// column counts, and recorded configs — never cell values. This is the
  /// CI mode: immune to timing and floating-point noise, still catches any
  /// bench that gains/loses tables or rows.
  bool values = true;
  /// A numeric cell passes when |a-b| <= max(abs_tol, rel_tol * max(|a|,|b|)).
  double rel_tol = 0.05;
  double abs_tol = 1e-9;
  /// Wall-clock is noise between machines; opt in to compare it, loosely.
  bool compare_wall = false;
  double wall_rel_tol = 0.5;
};

struct Mismatch {
  std::string bench;
  std::string table;  // empty for bench-level mismatches
  std::string detail;
};

struct CompareReport {
  std::vector<Mismatch> mismatches;
  int benches_compared = 0;
  int tables_compared = 0;
  int cells_compared = 0;

  bool ok() const { return mismatches.empty(); }
  std::string to_text() const;
};

/// Cell-level diff of two tables with the same meaning (baseline vs
/// candidate). Returns human-readable issue strings; empty means equal
/// within tolerance. Cells that parse as numbers use the numeric tolerance;
/// anything else must match exactly.
std::vector<std::string> compare_tables(const Table& baseline,
                                        const Table& candidate,
                                        const CompareOptions& options);

/// Diff two baseline directories produced by write_outputs(): reads both
/// summary.json files, matches benches and tables by name, checks shapes,
/// configs, and (unless options.values is false) every CSV cell.
CompareReport compare_dirs(const std::string& baseline_dir,
                           const std::string& candidate_dir,
                           const CompareOptions& options);

}  // namespace ehpc::bench
