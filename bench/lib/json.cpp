#include "bench/lib/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ehpc::bench {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* kNames[] = {"null", "bool", "number", "string", "array",
                                 "object"};
  throw JsonError(std::string("json: expected ") + want + ", value is " +
                  kNames[static_cast<int>(got)]);
}

void escape_to(const std::string& s, std::string& out) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

std::string number_to_string(double n) {
  if (std::fabs(n) < 1e15 && n == static_cast<long long>(n)) {
    return std::to_string(static_cast<long long>(n));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", n);
  return buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  Json parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char ch = text_[pos_];
    switch (ch) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_word("true"); return Json(true);
      case 'f': expect_word("false"); return Json(false);
      case 'n': expect_word("null"); return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') { ++pos_; return obj; }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      obj[key] = parse_value();
      skip_ws();
      const char next = peek();
      if (next == ',') { ++pos_; continue; }
      if (next == '}') { ++pos_; return obj; }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') { ++pos_; return arr; }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char next = peek();
      if (next == ',') { ++pos_; continue; }
      if (next == ']') { ++pos_; return arr; }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            // Encode the code point as UTF-8 (BMP only; surrogate pairs are
            // not produced by our own dump()).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape sequence");
        }
      } else {
        out += ch;
      }
    }
    fail("unterminated string");
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return Json(value);
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("invalid literal");
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json parse error at offset " + std::to_string(pos_) +
                    ": " + what);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

void Json::push_back(Json value) {
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
}

const std::vector<Json>& Json::elements() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

Json& Json::operator[](const std::string& key) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(key, Json());
  return object_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  if (!found) throw JsonError("json: missing key '" + key + "'");
  return *found;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad(pretty ? static_cast<std::size_t>(indent * (depth + 1))
                               : 0,
                        ' ');
  const std::string close_pad(
      pretty ? static_cast<std::size_t>(indent * depth) : 0, ' ');
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += number_to_string(number_); break;
    case Type::kString: escape_to(string_, out); break;
    case Type::kArray: {
      if (array_.empty()) { out += "[]"; break; }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        if (pretty) { out += '\n'; out += pad; }
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) { out += '\n'; out += close_pad; }
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) { out += "{}"; break; }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        if (pretty) { out += '\n'; out += pad; }
        escape_to(object_[i].first, out);
        out += pretty ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) { out += '\n'; out += close_pad; }
      out += '}';
      break;
    }
  }
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace ehpc::bench
