#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ehpc::bench {

/// Thrown by Json::parse on malformed input and by typed accessors on a
/// type mismatch.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Small self-contained JSON value: null, bool, number, string, array and
/// (insertion-ordered) object. Just enough for the bench summary files —
/// no external dependency, round-trips through dump()/parse().
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int n) : type_(Type::kNumber), number_(n) {}
  Json(double n) : type_(Type::kNumber), number_(n) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Json array() { return Json(Type::kArray); }
  static Json object() { return Json(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access.
  void push_back(Json value);
  const std::vector<Json>& elements() const;

  /// Object access. operator[] inserts a null member if absent.
  Json& operator[](const std::string& key);
  const Json* find(const std::string& key) const;
  const Json& at(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Serialise; indent < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws JsonError with position info.
  static Json parse(const std::string& text);

 private:
  explicit Json(Type type) : type_(type) {}
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace ehpc::bench
