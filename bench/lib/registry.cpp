#include "bench/lib/registry.hpp"

#include "common/error.hpp"

namespace ehpc::bench {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(BenchDef def) {
  EHPC_EXPECTS(!def.name.empty());
  EHPC_EXPECTS(static_cast<bool>(def.fn));
  EHPC_EXPECTS(find(def.name) == nullptr);
  benches_.push_back(std::move(def));
}

const BenchDef* Registry::find(const std::string& name) const {
  for (const auto& def : benches_) {
    if (def.name == name) return &def;
  }
  return nullptr;
}

RegisterBench::RegisterBench(BenchDef def) {
  Registry::instance().add(std::move(def));
}

}  // namespace ehpc::bench
