#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/lib/reporter.hpp"
#include "common/config.hpp"

namespace ehpc::bench {

/// One declared command-line flag of a bench. `default_value` is the single
/// source of truth for the flag's default: the runner materialises it into
/// the Config before the bench body runs, so drivers can read flags with any
/// fallback and still agree with the recorded summary config.
struct FlagSpec {
  std::string key;
  std::string default_value;
  std::string help;
};

/// A registered benchmark: metadata plus the body that fills a Reporter.
struct BenchDef {
  std::string name;
  std::string description;
  std::vector<FlagSpec> flags;
  /// key=value overrides applied (unless the user set the key) when running
  /// with the CI-sized `--quick` profile.
  std::vector<std::pair<std::string, std::string>> quick_overrides;
  std::function<void(Reporter&, const Config&)> fn;
};

/// Process-wide list of benches, populated by RegisterBench static objects
/// in each driver translation unit. A standalone driver binary registers
/// exactly one bench; `bench_run_all` links every driver and sees them all.
class Registry {
 public:
  static Registry& instance();

  /// Add a bench; names must be unique and registration order is kept.
  void add(BenchDef def);

  const std::vector<BenchDef>& benches() const { return benches_; }
  const BenchDef* find(const std::string& name) const;

 private:
  std::vector<BenchDef> benches_;
};

/// Static-initialiser hook: `const RegisterBench reg{{...}};` at namespace
/// scope in a driver .cpp registers the bench before main() runs.
struct RegisterBench {
  explicit RegisterBench(BenchDef def);
};

}  // namespace ehpc::bench
