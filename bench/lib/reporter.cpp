#include "bench/lib/reporter.hpp"

#include <filesystem>
#include <fstream>

#include "common/error.hpp"

namespace ehpc::bench {

namespace {

bool file_safe(const std::string& id) {
  if (id.empty()) return false;
  for (char ch : id) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Reporter::Reporter(std::string bench_name) : name_(std::move(bench_name)) {
  EHPC_EXPECTS(file_safe(name_));
}

Table& Reporter::add_table(const std::string& id, const std::string& title,
                           std::vector<std::string> headers) {
  EHPC_EXPECTS(file_safe(id));
  EHPC_EXPECTS(find(id) == nullptr);
  entries_.push_back(Entry{id, title, Table(std::move(headers))});
  return entries_.back().table;
}

void Reporter::note(std::string text) { notes_.push_back(std::move(text)); }

void Reporter::set_config(std::map<std::string, std::string> config) {
  config_ = std::move(config);
}

const Reporter::Entry* Reporter::find(const std::string& id) const {
  for (const auto& entry : entries_) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

std::string Reporter::to_text() const {
  std::string out;
  for (const auto& entry : entries_) {
    out += "== " + entry.title + " ==\n";
    out += entry.table.to_text();
    out += '\n';
  }
  for (const auto& line : notes_) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string Reporter::to_csv() const {
  std::string out;
  for (const auto& entry : entries_) {
    out += "# table: " + entry.id + "\n";
    out += entry.table.to_csv();
  }
  return out;
}

void Reporter::write_csvs(const std::string& dir) const {
  namespace fs = std::filesystem;
  const fs::path bench_dir = fs::path(dir) / name_;
  // This directory is owned by the bench: clear it so renamed or removed
  // tables don't leave stale CSVs behind when a baseline is regenerated.
  fs::remove_all(bench_dir);
  fs::create_directories(bench_dir);
  for (const auto& entry : entries_) {
    const fs::path path = bench_dir / (entry.id + ".csv");
    std::ofstream out(path);
    EHPC_EXPECTS(out.good());
    out << entry.table.to_csv();
    EHPC_ENSURES(out.good());
  }
}

Json Reporter::summary_json() const {
  Json entry = Json::object();
  entry["bench"] = Json(name_);
  entry["wall_ms"] = Json(wall_ms_);
  Json config = Json::object();
  for (const auto& [key, value] : config_) config[key] = Json(value);
  entry["config"] = std::move(config);
  Json tables = Json::array();
  for (const auto& e : entries_) {
    Json t = Json::object();
    t["table"] = Json(e.id);
    t["rows"] = Json(static_cast<double>(e.table.rows()));
    t["cols"] = Json(static_cast<double>(e.table.columns()));
    t["csv"] = Json(name_ + "/" + e.id + ".csv");
    tables.push_back(std::move(t));
  }
  entry["tables"] = std::move(tables);
  return entry;
}

}  // namespace ehpc::bench
