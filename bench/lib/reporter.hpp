#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "bench/lib/json.hpp"
#include "common/table.hpp"

namespace ehpc::bench {

/// Collects the named result tables, free-form notes, wall-clock timing and
/// effective configuration of one bench run. Drivers build their figures into
/// a Reporter; the harness renders it as text, concatenated CSV, per-table
/// CSV files, or a JSON summary entry — all views of the same data.
class Reporter {
 public:
  explicit Reporter(std::string bench_name);

  const std::string& name() const { return name_; }

  /// Register a result table. `id` must be a file-safe slug (it becomes
  /// `<bench>/<id>.csv`); `title` is the human heading printed in text mode.
  /// The returned reference stays valid for the Reporter's lifetime.
  Table& add_table(const std::string& id, const std::string& title,
                   std::vector<std::string> headers);

  /// Append a free-form line shown after the tables in text mode (shape
  /// commentary, derived speedups, ...). Not part of the CSV/JSON output.
  void note(std::string text);

  void set_wall_ms(double wall_ms) { wall_ms_ = wall_ms; }
  double wall_ms() const { return wall_ms_; }

  /// Record the effective key=value configuration of this run.
  void set_config(std::map<std::string, std::string> config);
  const std::map<std::string, std::string>& config() const { return config_; }

  struct Entry {
    std::string id;
    std::string title;
    Table table;
  };
  // deque: Table references handed out by add_table stay valid as more
  // tables are registered.
  const std::deque<Entry>& entries() const { return entries_; }
  const Entry* find(const std::string& id) const;
  const std::vector<std::string>& notes() const { return notes_; }

  /// Human-readable rendering: "== title ==" headings, aligned tables, notes.
  std::string to_text() const;

  /// All tables as CSV, each preceded by a `# table: <id>` comment line.
  std::string to_csv() const;

  /// Write one `<dir>/<bench>/<id>.csv` per table; creates directories.
  void write_csvs(const std::string& dir) const;

  /// Summary entry: {bench, wall_ms, config, tables:[{table, rows, cols, csv}]}.
  Json summary_json() const;

 private:
  std::string name_;
  double wall_ms_ = 0.0;
  std::map<std::string, std::string> config_;
  std::deque<Entry> entries_;
  std::vector<std::string> notes_;
};

}  // namespace ehpc::bench
