#include "bench/lib/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench/lib/timer.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace ehpc::bench {

namespace {

const char* const kCommonFlagsHelp =
    "  csv=false         print tables as CSV instead of aligned text\n"
    "  out_dir=DIR       also write per-table CSV files and summary.json\n"
    "  quick=false       apply the CI-sized quick profile (--quick works too)\n"
    "  threads=1         worker threads for benches that sweep (0 = auto)\n";

void reject_positional(const Config& cfg) {
  if (cfg.positional().empty()) return;
  throw ConfigError("unexpected positional argument '" +
                    cfg.positional().front() +
                    "'; all options take the form key=value");
}

}  // namespace

std::vector<std::string> allowed_keys(const BenchDef& def) {
  std::vector<std::string> keys;
  keys.reserve(def.flags.size() + 3);
  for (const auto& flag : def.flags) keys.push_back(flag.key);
  keys.push_back("csv");
  keys.push_back("out_dir");
  keys.push_back("quick");
  keys.push_back("threads");
  return keys;
}

std::string usage(const BenchDef& def) {
  std::string out = "usage: " + def.name + " [key=value ...]\n";
  out += def.description + "\n\nflags:\n";
  for (const auto& flag : def.flags) {
    std::string line = "  " + flag.key + "=" + flag.default_value;
    if (line.size() < 20) line.resize(20, ' ');
    out += line + "  " + flag.help + "\n";
  }
  out += "common flags:\n";
  out += kCommonFlagsHelp;
  return out;
}

Config parse_bench_config(const BenchDef& def, int argc,
                          const char* const* argv) {
  Config cfg = Config::from_args(argc, argv, allowed_keys(def));
  reject_positional(cfg);
  return cfg;
}

Reporter run_bench(const BenchDef& def, Config cfg, bool quick) {
  if (quick) {
    for (const auto& [key, value] : def.quick_overrides) {
      if (!cfg.has(key)) cfg.set(key, value);
    }
  }
  for (const auto& flag : def.flags) {
    if (!cfg.has(flag.key)) cfg.set(flag.key, flag.default_value);
  }

  std::map<std::string, std::string> effective;
  for (const auto& flag : def.flags) effective[flag.key] = *cfg.get(flag.key);

  Reporter reporter(def.name);
  Timer timer;
  def.fn(reporter, cfg);
  reporter.set_wall_ms(timer.elapsed_ms());
  reporter.set_config(std::move(effective));
  return reporter;
}

void write_outputs(const std::vector<Reporter>& runs,
                   const std::string& out_dir, const std::string& profile) {
  namespace fs = std::filesystem;
  fs::create_directories(out_dir);

  Json root = Json::object();
  root["schema_version"] = Json(1);
  root["profile"] = Json(profile);
  Json benches = Json::array();
  for (const auto& run : runs) {
    run.write_csvs(out_dir);
    benches.push_back(run.summary_json());
  }
  root["benches"] = std::move(benches);

  std::ofstream out(fs::path(out_dir) / "summary.json");
  EHPC_EXPECTS(out.good());
  out << root.dump(2);
  EHPC_ENSURES(out.good());
}

int standalone_main(int argc, const char* const* argv) {
  const auto& benches = Registry::instance().benches();
  EHPC_EXPECTS(benches.size() == 1);
  const BenchDef& def = benches.front();

  Config cfg;
  try {
    cfg = parse_bench_config(def, argc, argv);
  } catch (const ConfigError& err) {
    std::cerr << "error: " << err.what() << "\n\n" << usage(def);
    return 2;
  }

  const bool quick = cfg.get_bool("quick", false);
  const Reporter reporter = run_bench(def, cfg, quick);
  std::cout << (cfg.get_bool("csv", false) ? reporter.to_csv()
                                           : reporter.to_text());
  if (auto dir = cfg.get("out_dir")) {
    write_outputs({reporter}, *dir, quick ? "quick" : "default");
    std::cout << "wrote " << *dir << "/summary.json\n";
  }
  return 0;
}

int run_all_main(int argc, const char* const* argv, const RunAllHooks* hooks) {
  std::string usage_text =
      "usage: bench_run_all [key=value ...]\n"
      "Run every registered bench and write CSVs + summary.json.\n\nflags:\n"
      "  out_dir=bench_out  output directory for CSVs and summary.json\n"
      "  quick=false        CI-sized quick profile (--quick works too)\n"
      "  only=SUBSTR        run only benches whose name contains SUBSTR\n"
      "  list=false         list registered benches and exit\n"
      "  seed=N             override the seed flag of benches that have one\n"
      "  threads=1          worker threads for benches that sweep (0 = auto)\n";
  std::vector<std::string> keys{"out_dir", "quick", "only",
                                "list",    "seed",  "threads"};
  if (hooks != nullptr) {
    usage_text += hooks->extra_usage;
    keys.insert(keys.end(), hooks->extra_keys.begin(), hooks->extra_keys.end());
  }

  Config cfg;
  try {
    cfg = Config::from_args(argc, argv, keys);
    reject_positional(cfg);
  } catch (const ConfigError& err) {
    std::cerr << "error: " << err.what() << "\n\n" << usage_text;
    return 2;
  }

  if (hooks != nullptr && hooks->handle) {
    const int code = hooks->handle(cfg);
    if (code >= 0) return code;
  }

  const auto& benches = Registry::instance().benches();
  if (cfg.get_bool("list", false)) {
    for (const auto& def : benches) {
      std::cout << def.name << ": " << def.description << "\n";
    }
    return 0;
  }

  const bool quick = cfg.get_bool("quick", false);
  const std::string only = cfg.get_or("only", "");
  const std::string out_dir = cfg.get_or("out_dir", "bench_out");

  std::vector<Reporter> runs;
  Timer total;
  for (const auto& def : benches) {
    if (!only.empty() && def.name.find(only) == std::string::npos) continue;
    Config bench_cfg;
    if (auto seed = cfg.get("seed")) {
      const bool has_seed_flag =
          std::any_of(def.flags.begin(), def.flags.end(),
                      [](const FlagSpec& f) { return f.key == "seed"; });
      if (has_seed_flag) bench_cfg.set("seed", *seed);
    }
    if (auto threads = cfg.get("threads")) bench_cfg.set("threads", *threads);
    std::cout << "[bench] " << def.name << " ..." << std::flush;
    try {
      runs.push_back(run_bench(def, bench_cfg, quick));
    } catch (const std::exception& err) {
      std::cout << " FAILED\n";
      std::cerr << "error: " << def.name << ": " << err.what() << "\n";
      return 1;
    }
    const Reporter& rep = runs.back();
    std::cout << " " << format_double(rep.wall_ms(), 0) << " ms, "
              << rep.entries().size() << " tables\n";
  }

  if (runs.empty()) {
    std::cerr << "error: no bench matches only=" << only << "\n";
    return 1;
  }

  write_outputs(runs, out_dir, quick ? "quick" : "default");
  std::cout << "wrote " << out_dir << "/summary.json (" << runs.size()
            << " benches, " << format_double(total.elapsed_ms(), 0)
            << " ms total)\n";
  return 0;
}

}  // namespace ehpc::bench
