#pragma once

#include <string>
#include <vector>

#include "bench/lib/registry.hpp"
#include "bench/lib/reporter.hpp"

namespace ehpc::bench {

/// Flags every bench accepts on top of its own FlagSpecs: output selection
/// (`csv`, `out_dir`) and the CI-sized `quick` profile.
std::vector<std::string> allowed_keys(const BenchDef& def);

/// Usage text for one bench: description, declared flags with defaults and
/// help, and the common harness flags.
std::string usage(const BenchDef& def);

/// Parse argv strictly against the bench's declared flags; throws
/// ehpc::ConfigError (with the offending key) on anything unknown.
Config parse_bench_config(const BenchDef& def, int argc,
                          const char* const* argv);

/// Run one bench: apply quick-profile overrides and flag defaults for keys
/// the caller didn't set, execute the body, and record wall time plus the
/// effective config into the returned Reporter.
Reporter run_bench(const BenchDef& def, Config cfg, bool quick);

/// Write `summary.json` plus one CSV per table under `out_dir` for a set of
/// completed runs. `profile` is recorded in the summary ("quick"/"default").
void write_outputs(const std::vector<Reporter>& runs,
                   const std::string& out_dir, const std::string& profile);

/// main() body for a single-bench driver binary: runs the sole registered
/// bench with strict flag parsing; `csv=true` prints CSV instead of text and
/// `out_dir=DIR` additionally writes CSV files + summary.json. Returns 2 with
/// a usage message on bad flags.
int standalone_main(int argc, const char* const* argv);

/// main() body for bench_run_all: runs every registered bench (optionally
/// filtered with only=SUBSTR) and writes CSVs + summary.json to out_dir.
int run_all_main(int argc, const char* const* argv);

}  // namespace ehpc::bench
