#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench/lib/registry.hpp"
#include "bench/lib/reporter.hpp"

namespace ehpc::bench {

/// Flags every bench accepts on top of its own FlagSpecs: output selection
/// (`csv`, `out_dir`) and the CI-sized `quick` profile.
std::vector<std::string> allowed_keys(const BenchDef& def);

/// Usage text for one bench: description, declared flags with defaults and
/// help, and the common harness flags.
std::string usage(const BenchDef& def);

/// Parse argv strictly against the bench's declared flags; throws
/// ehpc::ConfigError (with the offending key) on anything unknown.
Config parse_bench_config(const BenchDef& def, int argc,
                          const char* const* argv);

/// Run one bench: apply quick-profile overrides and flag defaults for keys
/// the caller didn't set, execute the body, and record wall time plus the
/// effective config into the returned Reporter.
Reporter run_bench(const BenchDef& def, Config cfg, bool quick);

/// Write `summary.json` plus one CSV per table under `out_dir` for a set of
/// completed runs. `profile` is recorded in the summary ("quick"/"default").
void write_outputs(const std::vector<Reporter>& runs,
                   const std::string& out_dir, const std::string& profile);

/// main() body for a single-bench driver binary: runs the sole registered
/// bench with strict flag parsing; `csv=true` prints CSV instead of text and
/// `out_dir=DIR` additionally writes CSV files + summary.json. Returns 2 with
/// a usage message on bad flags.
int standalone_main(int argc, const char* const* argv);

/// Optional extension point for run_all_main, letting the linking binary
/// accept extra strict keys and intercept the parsed config before the
/// bench loop (bench_run_all uses this for --scenario / --list-scenarios
/// without making the reporting library depend on the scenario layer).
struct RunAllHooks {
  std::vector<std::string> extra_keys;
  std::string extra_usage;  ///< appended to the flags help text
  /// Return an exit code to stop before the bench loop, or -1 to continue.
  std::function<int(const Config&)> handle;
};

/// main() body for bench_run_all: runs every registered bench (optionally
/// filtered with only=SUBSTR) and writes CSVs + summary.json to out_dir.
/// `seed=N` overrides the seed flag of every bench that declares one and
/// `threads=N` is forwarded to every bench (sweep benches fan out with it).
int run_all_main(int argc, const char* const* argv,
                 const RunAllHooks* hooks = nullptr);

}  // namespace ehpc::bench
