// main() for single-bench driver binaries: each bench_<name> executable
// compiles its driver .cpp (which self-registers into the Registry) together
// with this file.

#include "bench/lib/runner.hpp"

int main(int argc, char** argv) {
  return ehpc::bench::standalone_main(argc, argv);
}
