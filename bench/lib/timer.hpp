#pragma once

#include <chrono>

namespace ehpc::bench {

/// Wall-clock stopwatch for bench timings, running from construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ehpc::bench
