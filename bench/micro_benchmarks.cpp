// google-benchmark micro-benchmarks for the substrate hot paths: DES event
// dispatch, minicharm message delivery, load-balancing strategies, PUP
// serialization, and the policy engine itself.

#include <benchmark/benchmark.h>

#include <numeric>

#include "apps/graph.hpp"
#include "charm/load_balancer.hpp"
#include "charm/pup.hpp"
#include "charm/runtime.hpp"
#include "net/network_model.hpp"
#include "common/piecewise_linear.hpp"
#include "common/rng.hpp"
#include "elastic/policy.hpp"
#include "k8s/cluster.hpp"
#include "schedsim/calibrate.hpp"
#include "schedsim/fault.hpp"
#include "schedsim/jobmix.hpp"
#include "schedsim/simulator.hpp"
#include "sim/simulation.hpp"
#include "trace/sources.hpp"

namespace {

using namespace ehpc;

void BM_SimulationEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<double>(i), [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationEventDispatch)->Arg(1000)->Arg(10000)->Arg(100000);

// Cancel-heavy (timeout/retry pattern): schedule a batch at staggered future
// times, cancel 7/8 of it, run the rest. Exercises generation tombstones and
// queue compaction; a persistent kernel pins steady-state slot recycling.
void BM_SimulationScheduleCancel(benchmark::State& state) {
  sim::Simulation sim;
  const int batch = static_cast<int>(state.range(0));
  std::vector<sim::EventId> ids(static_cast<std::size_t>(batch));
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      ids[static_cast<std::size_t>(i)] =
          sim.schedule_at(sim.now() + 1.0 + i, [] {});
    }
    for (int i = 0; i < batch; ++i) {
      if (i % 8 != 0) sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SimulationScheduleCancel)->Arg(1024)->Arg(16384);

// Classic hold model: N pending events in steady state; each operation pops
// the earliest event and schedules a replacement at a random future offset.
// Measures the queue at constant occupancy (no cold-start effects).
void BM_SimulationChurnHold(benchmark::State& state) {
  sim::Simulation sim;
  Rng rng(11);
  const int occupancy = static_cast<int>(state.range(0));
  for (int i = 0; i < occupancy; ++i) {
    sim.schedule_at(rng.uniform(0.0, 2.0), [] {});
  }
  for (auto _ : state) {
    sim.step();
    sim.schedule_at(sim.now() + rng.uniform(0.0, 2.0), [] {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulationChurnHold)->Arg(256)->Arg(4096)->Arg(65536);

// Same-timestamp chains (zero-delay reconcile hops): drain a FIFO of events
// scheduled at exactly now(). Hits the bucket fast path, never the heap.
void BM_SimulationSameTimeChain(benchmark::State& state) {
  sim::Simulation sim;
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) sim.schedule_now([] {});
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulationSameTimeChain)->Arg(1000)->Arg(10000);

// Mixed timestamp distribution: ascending arrivals interleaved with random
// backfill (out-of-order, lands in the heap) and same-time events. The
// realistic blend across the bucket / sorted-run / heap lanes.
void BM_SimulationMixedTimestamps(benchmark::State& state) {
  sim::Simulation sim;
  Rng rng(23);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const double base = sim.now();
    for (int i = 0; i < n; ++i) {
      switch (i % 10) {
        case 3:
        case 7:  // backfill: behind the latest pending timestamp
          sim.schedule_at(base + rng.uniform(0.0, 0.1 * i), [] {});
          break;
        case 5:  // same-time chain
          sim.schedule_now([] {});
          break;
        default:  // in-order arrival
          sim.schedule_at(base + 0.1 * i, [] {});
      }
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulationMixedTimestamps)->Arg(1000)->Arg(10000);

struct NopChare final : charm::Chare {
  void pup(charm::Pup&) override {}
};

void BM_RuntimeMessageDelivery(benchmark::State& state) {
  for (auto _ : state) {
    charm::RuntimeConfig cfg;
    cfg.num_pes = 16;
    charm::Runtime rt(cfg);
    auto array = rt.create_array("a", 64, [](charm::ElementId) {
      return std::make_unique<NopChare>();
    });
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      rt.send(array, i % 64, 64, [](charm::Chare&, charm::Runtime&) {});
    }
    benchmark::DoNotOptimize(rt.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RuntimeMessageDelivery)->Arg(1000)->Arg(10000);

// Same delivery load through a pre-registered entry method: dispatch is
// fully pre-resolved, no per-message callable copy.
void BM_RuntimeEntrySendDelivery(benchmark::State& state) {
  for (auto _ : state) {
    charm::RuntimeConfig cfg;
    cfg.num_pes = 16;
    charm::Runtime rt(cfg);
    auto array = rt.create_array("a", 64, [](charm::ElementId) {
      return std::make_unique<NopChare>();
    });
    const charm::EntryId entry =
        rt.register_entry([](charm::Chare&, charm::Runtime&) {});
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      rt.send(array, i % 64, 64, entry);
    }
    benchmark::DoNotOptimize(rt.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RuntimeEntrySendDelivery)->Arg(1000)->Arg(10000);

void BM_LoadBalancer(benchmark::State& state, const char* name) {
  Rng rng(7);
  std::vector<charm::LbObject> objects;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    charm::LbObject o;
    o.elem = i;
    o.load = rng.uniform(0.1, 2.0);
    o.current_pe = static_cast<charm::PeId>(rng.uniform_int(0, 63));
    objects.push_back(o);
  }
  std::vector<charm::PeId> pes(32);
  std::iota(pes.begin(), pes.end(), 0);
  auto lb = charm::make_load_balancer(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb->assign(objects, pes));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_LoadBalancer, greedy, "greedy")->Arg(256)->Arg(4096);
BENCHMARK_CAPTURE(BM_LoadBalancer, refine, "refine")->Arg(256)->Arg(4096);

// Full graph superstep loop on minicharm: Chung-Lu generation, the scatter /
// inbox messaging, per-superstep reductions and periodic comm-aware LB over
// the fat-tree model. Items = vertex updates (vertices * iterations); the
// perf gate floors items_per_second.
void BM_GraphSuperstep(benchmark::State& state) {
  apps::GraphConfig config;
  config.vertices = static_cast<int>(state.range(0));
  config.parts = 32;
  config.skew = 0.9;
  config.max_iterations = 8;
  for (auto _ : state) {
    charm::RuntimeConfig rc;
    rc.num_pes = 16;
    rc.pes_per_node = 4;
    rc.load_balancer = "commrefine";
    rc.network = net::make_network_model("fattree", /*oversub=*/4.0);
    charm::Runtime rt(rc);
    apps::Graph app(rt, config);
    app.driver().set_lb_period(4);
    app.start();
    rt.run();
    benchmark::DoNotOptimize(app.active_last_iteration());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          config.max_iterations);
}
BENCHMARK(BM_GraphSuperstep)->Arg(1024)->Arg(4096);

// The per-message pricing hot path of the contention model: route lookup,
// per-link window sharing and the additive penalty, cycling through
// same-node / same-rack / cross-rack routes. Items = priced transfers.
void BM_TopologyMessageTime(benchmark::State& state) {
  net::ContentionConfig config{net::presets::pod_network(),
                               net::Topology::fat_tree(8, /*oversub=*/4.0)};
  net::ContentionNetworkModel model(config);
  const std::pair<int, int> routes[] = {{0, 1}, {2, 19}, {5, 5}, {7, 42}};
  double now = 0.0;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [src, dst] = routes[i++ % 4];
    benchmark::DoNotOptimize(model.begin_transfer(4096, src, dst, now));
    now += 1.0e-4;  // ~10 transfers share each 1 ms window
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopologyMessageTime);

struct BigChare final : charm::Chare {
  std::vector<double> data;
  void pup(charm::Pup& p) override { p | data; }
};

void BM_PupPackUnpack(benchmark::State& state) {
  BigChare a;
  a.data.assign(static_cast<std::size_t>(state.range(0)), 1.5);
  for (auto _ : state) {
    std::vector<std::byte> buf;
    charm::Pup packer = charm::Pup::packer(buf);
    a.pup(packer);
    BigChare b;
    charm::Pup unpacker = charm::Pup::unpacker(buf);
    b.pup(unpacker);
    benchmark::DoNotOptimize(b.data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(sizeof(double)) * 2);
}
BENCHMARK(BM_PupPackUnpack)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_PiecewiseLinearEval(benchmark::State& state) {
  std::vector<std::pair<double, double>> pts;
  for (int i = 1; i <= 128; i *= 2) pts.emplace_back(i, 100.0 / i);
  PiecewiseLinear f(pts);
  double x = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.at(x));
    x = x < 120.0 ? x + 0.37 : 1.0;
  }
}
BENCHMARK(BM_PiecewiseLinearEval);

// End-to-end control-plane hot path: create N pending pods with affinity
// labels on a range(0)/16-node cluster and run the simulation until every
// pod is bound and running. Exercises the indexed placement (ClusterIndex
// score buckets + affinity candidates), batched watch delivery and the
// kubelet transitions — the loop that bench_fig_k8s_scale scales to 100k
// pods. Items = pods bound; the perf gate floors items_per_second.
void BM_K8sClusterSchedule(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int pods = nodes * 16;  // exactly fills the cluster at 1 cpu/pod
  for (auto _ : state) {
    k8s::Cluster cluster;
    cluster.add_nodes("node", nodes, {16, 32768});
    for (int i = 0; i < pods; ++i) {
      k8s::Pod pod;
      pod.meta.name = "job-" + std::to_string(i % 64) + "-worker-" +
                      std::to_string(i / 64);
      pod.meta.labels["job"] = "job-" + std::to_string(i % 64);
      pod.affinity_key = "job";
      pod.affinity_value = pod.meta.labels["job"];
      cluster.create_pod(pod);
    }
    cluster.sim().run();
    benchmark::DoNotOptimize(cluster.bound_cpus());
  }
  state.SetItemsProcessed(state.iterations() * pods);
}
BENCHMARK(BM_K8sClusterSchedule)->Arg(64)->Arg(512);

void BM_PolicyEngineSubmitComplete(benchmark::State& state) {
  for (auto _ : state) {
    elastic::PolicyConfig cfg;
    cfg.mode = elastic::PolicyMode::kElastic;
    cfg.rescale_gap_s = 0.0;
    elastic::PolicyEngine eng(64, cfg);
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      elastic::JobSpec spec;
      spec.id = i;
      spec.min_replicas = 4;
      spec.max_replicas = 16;
      spec.priority = 1 + i % 5;
      eng.submit(spec, static_cast<double>(i));
    }
    for (int i = 0; i < n; ++i) {
      if (eng.job(i).running) eng.complete(i, 1000.0 + i);
    }
    benchmark::DoNotOptimize(eng.free_slots());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PolicyEngineSubmitComplete)->Arg(16)->Arg(128);

// End-to-end streaming replay hot path: N synthetic jobs with prun-style
// queue/task timeouts pulled lazily through SchedSimulator::run_stream,
// each finished job retiring to O(1) summaries (the loop bench_fig_trace
// scales to 1M jobs). Items = jobs replayed; the perf gate floors
// items_per_second.
void BM_TraceReplay(benchmark::State& state) {
  const long jobs = state.range(0);
  const auto workloads = schedsim::analytic_workloads();
  elastic::PolicyConfig cfg;
  cfg.mode = elastic::PolicyMode::kElastic;
  cfg.rescale_gap_s = 180.0;
  for (auto _ : state) {
    trace::SyntheticTraceConfig trace_cfg;
    trace_cfg.num_jobs = jobs;
    trace_cfg.submission_gap_s = 60.0;
    trace_cfg.seed = 2025;
    trace_cfg.defaults.queue_timeout_s = 3600.0;
    trace_cfg.defaults.task_timeout_s = 900.0;
    trace::SyntheticTraceSource source(trace_cfg);
    schedsim::SchedSimulator simulator(64, cfg, workloads);
    benchmark::DoNotOptimize(simulator.run_stream(source));
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_TraceReplay)->Arg(1000)->Arg(10000);

// Correlated-recovery hot path: a random mix on 64 slots split into four
// failure domains, with periodic disk checkpoints and a capped restore
// path. Every domain crash walks the slot-ownership map, rolls each
// resident job back to its last durable checkpoint and queues its restore
// through the shared-bandwidth storm model. Items = jobs simulated.
void BM_CorrelatedRecovery(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const auto workloads = schedsim::analytic_workloads();
  elastic::PolicyConfig cfg;
  cfg.mode = elastic::PolicyMode::kElastic;
  cfg.rescale_gap_s = 180.0;
  schedsim::FaultPlan plan;
  plan.domain_sizes = {16, 16, 16, 16};
  for (int i = 0; i < 8; ++i) {
    plan.domain_crashes.push_back({400.0 + 350.0 * i, i % 4});
  }
  plan.checkpoint_period_s = 300.0;
  plan.restore_bandwidth = 2.0;
  for (auto _ : state) {
    schedsim::JobMixGenerator generator(2025);
    const auto mix = generator.generate(jobs, 30.0);
    schedsim::SchedSimulator simulator(64, cfg, workloads);
    simulator.set_fault_plan(plan);
    benchmark::DoNotOptimize(simulator.run(mix));
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_CorrelatedRecovery)->Arg(16)->Arg(64);

}  // namespace
