// bench_run_all: run every registered bench (all eight figure/table drivers
// are linked into this binary) and write CSVs + summary.json to out_dir.
// `--quick` selects the CI-sized profile used for the committed baselines:
//
//   bench_run_all --quick out_dir=bench/baselines/quick
//
// See bench_compare for diffing the output against a committed baseline.

#include "bench/lib/runner.hpp"

int main(int argc, char** argv) {
  return ehpc::bench::run_all_main(argc, argv);
}
