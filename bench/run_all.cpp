// bench_run_all: run every registered bench (all eight figure/table drivers
// are linked into this binary) and write CSVs + summary.json to out_dir.
// `--quick` selects the CI-sized profile used for the committed baselines:
//
//   bench_run_all --quick out_dir=bench/baselines/quick
//
// Scenario mode bypasses the bench registry and runs any scenario from the
// scenario registry (with per-key overrides) through the sweep engine:
//
//   bench_run_all --list-scenarios
//   bench_run_all scenario=fig7_submission_gap repeats=20 threads=8
//
// See bench_compare for diffing the output against a committed baseline.

#include <cmath>
#include <iostream>

#include "bench/lib/runner.hpp"
#include "charm/load_balancer.hpp"
#include "bench/lib/timer.hpp"
#include "common/table.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

using namespace ehpc;

namespace {

/// Render a sweep as one table per §4.3 metric (columns = policies), the
/// same layout the figure benches use.
void report_sweep(bench::Reporter& rep, const scenario::ScenarioSpec& spec,
                  const scenario::SweepResult& sweep) {
  const bool axis_in_seconds =
      spec.axis == scenario::SweepAxis::kSubmissionGap ||
      spec.axis == scenario::SweepAxis::kRescaleGap;
  const std::string x_label =
      spec.axis == scenario::SweepAxis::kNone
          ? "x"
          : to_string(spec.axis) + (axis_in_seconds ? "_s" : "");
  const auto x_cell = [&](double x) {
    if (spec.axis == scenario::SweepAxis::kLbStrategy) {
      return charm::load_balancer_names().at(static_cast<std::size_t>(x));
    }
    return format_double(x, std::floor(x) == x ? 0 : 3);
  };
  std::vector<std::pair<std::string, double elastic::RunMetrics::*>>
      metrics{{"utilization", &elastic::RunMetrics::utilization},
              {"total_time_s", &elastic::RunMetrics::total_time_s},
              {"response_s", &elastic::RunMetrics::weighted_response_s},
              {"completion_s", &elastic::RunMetrics::weighted_completion_s}};
  // LB imbalance health matters exactly when the runtime LB has real work.
  if (spec.app == "amr") {
    metrics.emplace_back("lb_post_ratio", &elastic::RunMetrics::lb_post_ratio);
    metrics.emplace_back("lb_migrations_per_step",
                         &elastic::RunMetrics::lb_migrations_per_step);
  }
  // Recovery accounting matters exactly when the plan injects failures (or
  // the sweep axis does).
  if (!spec.faults.empty() || spec.axis == scenario::SweepAxis::kFaultMtbf ||
      spec.axis == scenario::SweepAxis::kCheckpointPeriod) {
    metrics.emplace_back("recovery_time_s",
                         &elastic::RunMetrics::recovery_time_s);
    metrics.emplace_back("lost_work_s", &elastic::RunMetrics::lost_work_s);
    metrics.emplace_back("goodput", &elastic::RunMetrics::goodput);
    metrics.emplace_back("jobs_failed", &elastic::RunMetrics::jobs_failed);
  }

  for (const auto& [id, member] : metrics) {
    std::vector<std::string> headers{x_label};
    for (const auto mode : spec.policies) {
      headers.push_back(elastic::to_string(mode));
    }
    Table& table =
        rep.add_table(id, id + " per policy (" + spec.name + ")", headers);
    for (const auto& point : sweep.points) {
      std::vector<std::string> row{x_cell(point.x)};
      for (const auto mode : spec.policies) {
        row.push_back(format_double(point.metrics.at(mode).*member, 3));
      }
      table.add_row(row);
    }
  }
  rep.note("scenario " + spec.name + ": " + spec.description);
  rep.note(describe(spec));
}

int run_scenario_mode(const Config& cfg) {
  // Bench-loop flags have no effect on a scenario run; reject them instead
  // of silently ignoring them.
  for (const char* key : {"quick", "only", "list"}) {
    if (cfg.has(key)) {
      std::cerr << "error: '" << key << "' does not apply to scenario mode\n";
      return 2;
    }
  }
  scenario::ScenarioSpec spec;
  try {
    spec = scenario::resolve_scenario(cfg);
  } catch (const ConfigError& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 2;
  }

  const int threads = cfg.get_int("threads", 1);
  std::cout << "[scenario] " << spec.name << " (threads=" << threads << ") ..."
            << std::flush;
  bench::Reporter reporter("scenario_" + spec.name);
  bench::Timer timer;
  scenario::SweepResult sweep;
  try {
    sweep = scenario::run_sweep(spec, threads);
  } catch (const std::exception& err) {
    std::cout << " FAILED\n";
    std::cerr << "error: scenario " << spec.name << ": " << err.what() << "\n";
    return 1;
  }
  reporter.set_wall_ms(timer.elapsed_ms());
  report_sweep(reporter, spec, sweep);

  std::map<std::string, std::string> config;
  for (const auto& key : scenario::spec_config_keys()) {
    if (auto value = cfg.get(key)) config[key] = *value;
  }
  config["scenario"] = spec.name;
  reporter.set_config(std::move(config));

  std::cout << " " << format_double(reporter.wall_ms(), 0) << " ms\n"
            << reporter.to_text();
  if (auto dir = cfg.get("out_dir")) {
    bench::write_outputs({reporter}, *dir, "scenario");
    std::cout << "wrote " << *dir << "/summary.json\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunAllHooks hooks;
  hooks.extra_keys = scenario::scenario_config_keys();
  hooks.extra_keys.push_back("list_scenarios");
  hooks.extra_usage =
      "  list_scenarios=false  list registered scenarios and exit\n"
      "  scenario=NAME         run one registry scenario through the sweep\n"
      "                        engine instead of the bench registry; all\n"
      "                        scenario keys (num_jobs=, sweep_values=, ...)\n"
      "                        become overrides\n";
  hooks.handle = [](const Config& cfg) {
    if (cfg.get_bool("list_scenarios", false)) {
      std::cout << scenario::list_scenarios_text();
      return 0;
    }
    if (cfg.has("scenario")) return run_scenario_mode(cfg);
    // Without scenario=, the spec keys would be parsed but never reach the
    // bench loop (which only forwards seed/threads) — keep unknown-key
    // strictness by rejecting them instead of silently ignoring them.
    for (const auto& key : scenario::spec_config_keys()) {
      if (key != "seed" && cfg.has(key)) {
        std::cerr << "error: '" << key
                  << "' only applies to scenario mode; add scenario=NAME "
                     "(see --list-scenarios)\n";
        return 2;
      }
    }
    return -1;  // fall through to the bench loop
  };
  return ehpc::bench::run_all_main(argc, argv, &hooks);
}
