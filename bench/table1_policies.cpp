// Reproduces paper Table 1: the four scheduling policies compared on four
// metrics, with both the "Simulation" flavour (the pure scheduler-performance
// simulator, ignoring operator/pod overheads) and the "Actual" flavour (the
// same mix executed through the operator on the Kubernetes substrate).
//
// Paper setup: T_rescale_gap = 180 s, submission gap 90 s, one job set
// picked from the random generator.

#include <map>
#include <utility>

#include "bench/lib/registry.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "opk/experiment.hpp"
#include "schedsim/calibrate.hpp"
#include "schedsim/simulator.hpp"

using namespace ehpc;
using elastic::PolicyMode;

namespace {

void run(bench::Reporter& rep, const Config& cfg) {
  const unsigned seed = static_cast<unsigned>(cfg.get_int("seed", 2025));
  const double gap = cfg.get_double("gap", 90.0);
  const double rescale_gap = cfg.get_double("rescale_gap", 180.0);
  const bool calibrated = cfg.get_bool("calibrated", true);

  const auto workloads = calibrated ? schedsim::calibrated_workloads()
                                    : schedsim::analytic_workloads();
  schedsim::JobMixGenerator gen(seed);
  const auto mix = gen.generate(16, gap);

  Table& table = rep.add_table(
      "table1",
      "Table 1: actual (k8s substrate) and simulation results",
      {"scheduler", "total_actual_s", "total_sim_s", "util_actual", "util_sim",
       "response_actual_s", "response_sim_s", "completion_actual_s",
       "completion_sim_s"});

  std::map<PolicyMode, std::pair<elastic::RunMetrics, elastic::RunMetrics>> all;
  for (auto mode : {PolicyMode::kRigidMin, PolicyMode::kRigidMax,
                    PolicyMode::kMoldable, PolicyMode::kElastic}) {
    elastic::PolicyConfig pc;
    pc.mode = mode;
    pc.rescale_gap_s = rescale_gap;

    schedsim::SchedSimulator sim(64, pc, workloads);
    const auto simulated = sim.run(mix).metrics;

    opk::ExperimentConfig ec;
    ec.policy = pc;
    opk::ClusterExperiment exp(ec, workloads);
    const auto actual = exp.run(mix).metrics;

    all.emplace(mode, std::make_pair(actual, simulated));
    table.add_row({elastic::to_string(mode),
                   format_double(actual.total_time_s, 0),
                   format_double(simulated.total_time_s, 0),
                   format_double(actual.utilization, 4),
                   format_double(simulated.utilization, 4),
                   format_double(actual.weighted_response_s, 2),
                   format_double(simulated.weighted_response_s, 2),
                   format_double(actual.weighted_completion_s, 2),
                   format_double(simulated.weighted_completion_s, 2)});
  }

  const auto& [ea, es] = all.at(PolicyMode::kElastic);
  (void)es;
  bool elastic_best = true;
  for (const auto& [mode, pair] : all) {
    if (mode == PolicyMode::kElastic) continue;
    if (ea.total_time_s > pair.first.total_time_s + 1e-9 ||
        ea.utilization < pair.first.utilization - 1e-9) {
      elastic_best = false;
    }
  }
  rep.note(std::string("Elastic best on total time & utilization (actual): ") +
           (elastic_best ? "yes" : "NO — investigate"));
}

const bench::RegisterBench kReg{{
    "table1_policies",
    "Table 1: four policies, simulated and actual (k8s substrate) metrics",
    {{"seed", "2025", "job mix RNG seed"},
     {"gap", "90", "submission gap in seconds"},
     {"rescale_gap", "180", "T_rescale_gap in seconds"},
     {"calibrated", "true", "use minicharm-calibrated step-time curves"}},
    {},
    run}};

}  // namespace
