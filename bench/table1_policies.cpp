// Reproduces paper Table 1: the four scheduling policies compared on four
// metrics, with both the "Simulation" flavour (the pure scheduler-performance
// simulator, ignoring operator/pod overheads) and the "Actual" flavour (the
// same mix executed through the operator on the Kubernetes substrate).
//
// Paper setup: T_rescale_gap = 180 s, submission gap 90 s, one job set
// picked from the random generator.
//
// Usage: table1_policies [seed=2025] [gap=90] [rescale_gap=180]
//                        [calibrated=true] [csv=false]

#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "opk/experiment.hpp"
#include "schedsim/calibrate.hpp"
#include "schedsim/simulator.hpp"

using namespace ehpc;
using elastic::PolicyMode;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const unsigned seed = static_cast<unsigned>(cfg.get_int("seed", 2025));
  const double gap = cfg.get_double("gap", 90.0);
  const double rescale_gap = cfg.get_double("rescale_gap", 180.0);
  const bool calibrated = cfg.get_bool("calibrated", true);
  const bool csv = cfg.get_bool("csv", false);

  const auto workloads = calibrated ? schedsim::calibrated_workloads()
                                    : schedsim::analytic_workloads();
  schedsim::JobMixGenerator gen(seed);
  const auto mix = gen.generate(16, gap);

  Table table({"scheduler", "total_actual_s", "total_sim_s", "util_actual",
               "util_sim", "response_actual_s", "response_sim_s",
               "completion_actual_s", "completion_sim_s"});

  std::map<PolicyMode, std::pair<elastic::RunMetrics, elastic::RunMetrics>> all;
  for (auto mode : {PolicyMode::kRigidMin, PolicyMode::kRigidMax,
                    PolicyMode::kMoldable, PolicyMode::kElastic}) {
    elastic::PolicyConfig pc;
    pc.mode = mode;
    pc.rescale_gap_s = rescale_gap;

    schedsim::SchedSimulator sim(64, pc, workloads);
    const auto simulated = sim.run(mix).metrics;

    opk::ExperimentConfig ec;
    ec.policy = pc;
    opk::ClusterExperiment exp(ec, workloads);
    const auto actual = exp.run(mix).metrics;

    all.emplace(mode, std::make_pair(actual, simulated));
    table.add_row({elastic::to_string(mode),
                   format_double(actual.total_time_s, 0),
                   format_double(simulated.total_time_s, 0),
                   format_double(actual.utilization, 4),
                   format_double(simulated.utilization, 4),
                   format_double(actual.weighted_response_s, 2),
                   format_double(simulated.weighted_response_s, 2),
                   format_double(actual.weighted_completion_s, 2),
                   format_double(simulated.weighted_completion_s, 2)});
  }

  std::cout << "== Table 1: actual (k8s substrate) and simulation results ==\n";
  std::cout << (csv ? table.to_csv() : table.to_text()) << "\n";

  const auto& [ea, es] = all.at(PolicyMode::kElastic);
  bool elastic_best = true;
  for (const auto& [mode, pair] : all) {
    if (mode == PolicyMode::kElastic) continue;
    if (ea.total_time_s > pair.first.total_time_s + 1e-9 ||
        ea.utilization < pair.first.utilization - 1e-9) {
      elastic_best = false;
    }
  }
  std::cout << "Elastic best on total time & utilization (actual): "
            << (elastic_best ? "yes" : "NO — investigate") << "\n";
  return 0;
}
