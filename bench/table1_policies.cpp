// Reproduces paper Table 1: the four scheduling policies compared on four
// metrics, with both the "Simulation" flavour (the pure scheduler-performance
// simulator, ignoring operator/pod overheads) and the "Actual" flavour (the
// same mix executed through the operator on the Kubernetes substrate).
//
// Paper setup: T_rescale_gap = 180 s, submission gap 90 s, one job set
// picked from the random generator. The experiment is the registered
// "table1" scenario, executed once per substrate through the backend seam.

#include <map>
#include <utility>

#include "bench/lib/registry.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

using namespace ehpc;
using elastic::PolicyMode;

namespace {

void run(bench::Reporter& rep, const Config& cfg) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioRegistry::instance().require("table1");
  spec.seed = static_cast<unsigned>(cfg.get_int("seed", 2025));
  spec.submission_gap_s = cfg.get_double("gap", 90.0);
  spec.rescale_gap_s = cfg.get_double("rescale_gap", 180.0);
  spec.calibrated = cfg.get_bool("calibrated", true);

  const auto workloads = scenario::workloads_for(spec);
  const auto mix = scenario::make_mix(spec, spec.seed);

  spec.substrate = scenario::Substrate::kSchedSim;
  const auto simulated = scenario::run_policies(spec, mix, workloads);
  spec.substrate = scenario::Substrate::kCluster;
  const auto actual = scenario::run_policies(spec, mix, workloads);

  Table& table = rep.add_table(
      "table1",
      "Table 1: actual (k8s substrate) and simulation results",
      {"scheduler", "total_actual_s", "total_sim_s", "util_actual", "util_sim",
       "response_actual_s", "response_sim_s", "completion_actual_s",
       "completion_sim_s"});

  std::map<PolicyMode, std::pair<elastic::RunMetrics, elastic::RunMetrics>> all;
  for (const PolicyMode mode : spec.policies) {
    const auto& sim_metrics = simulated.at(mode).metrics;
    const auto& act_metrics = actual.at(mode).metrics;
    all.emplace(mode, std::make_pair(act_metrics, sim_metrics));
    table.add_row({elastic::to_string(mode),
                   format_double(act_metrics.total_time_s, 0),
                   format_double(sim_metrics.total_time_s, 0),
                   format_double(act_metrics.utilization, 4),
                   format_double(sim_metrics.utilization, 4),
                   format_double(act_metrics.weighted_response_s, 2),
                   format_double(sim_metrics.weighted_response_s, 2),
                   format_double(act_metrics.weighted_completion_s, 2),
                   format_double(sim_metrics.weighted_completion_s, 2)});
  }

  const auto& [ea, es] = all.at(PolicyMode::kElastic);
  (void)es;
  bool elastic_best = true;
  for (const auto& [mode, pair] : all) {
    if (mode == PolicyMode::kElastic) continue;
    if (ea.total_time_s > pair.first.total_time_s + 1e-9 ||
        ea.utilization < pair.first.utilization - 1e-9) {
      elastic_best = false;
    }
  }
  rep.note(std::string("Elastic best on total time & utilization (actual): ") +
           (elastic_best ? "yes" : "NO — investigate"));
}

const bench::RegisterBench kReg{{
    "table1_policies",
    "Table 1: four policies, simulated and actual (k8s substrate) metrics",
    {{"seed", "2025", "job mix RNG seed"},
     {"gap", "90", "submission gap in seconds"},
     {"rescale_gap", "180", "T_rescale_gap in seconds"},
     {"calibrated", "true", "use minicharm-calibrated step-time curves"}},
    {},
    run}};

}  // namespace
