# Locate GoogleTest: prefer an installed package, fall back to FetchContent.
#
# Provides the GTest::gtest and GTest::gtest_main imported targets and
# makes `gtest_discover_tests` available to callers.

include(GoogleTest) # for gtest_discover_tests

find_package(GTest CONFIG QUIET)

if(NOT TARGET GTest::gtest_main)
  # Debian-style source-only install (/usr/src/googletest).
  if(EXISTS "/usr/src/googletest/CMakeLists.txt")
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    add_subdirectory(/usr/src/googletest "${CMAKE_BINARY_DIR}/_deps/googletest" EXCLUDE_FROM_ALL)
    if(NOT TARGET GTest::gtest_main)
      add_library(GTest::gtest ALIAS gtest)
      add_library(GTest::gtest_main ALIAS gtest_main)
    endif()
  endif()
endif()

if(NOT TARGET GTest::gtest_main)
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip
    URL_HASH SHA256=1f357c27ca988c3f7c6b4bf68a9395005ac6761f034046e9dde0896e3aba00e4
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()

if(NOT TARGET GTest::gtest_main)
  message(FATAL_ERROR "GoogleTest not found: no installed package, no /usr/src/googletest, and FetchContent failed")
endif()
