// Shrink/expand on a live application: runs the Jacobi2D heat solver on the
// minicharm runtime and rescales it mid-run through the CCS control
// endpoint, exactly the mechanism the paper's operator uses (§2.2, §3.1).
//
// Usage: jacobi_rescale [grid=4096] [pes=16] [iters=60]
//                       [shrink_at=20] [expand_at=40]

#include <iostream>

#include "apps/calibration.hpp"
#include "apps/jacobi2d.hpp"
#include "common/config.hpp"
#include "common/table.hpp"

using namespace ehpc;

int main(int argc, char** argv) {
  Config args;
  try {
    args = Config::from_args(argc, argv,
                             {"grid", "pes", "iters", "shrink_at", "expand_at"});
  } catch (const ConfigError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "usage: jacobi_rescale [grid=4096] [pes=16] [iters=60]\n"
              << "       [shrink_at=20] [expand_at=40]\n";
    return 2;
  }
  const int grid = args.get_int("grid", 4096);
  const int pes = args.get_int("pes", 16);
  const int iters = args.get_int("iters", 60);
  const int shrink_at = args.get_int("shrink_at", 20);
  const int expand_at = args.get_int("expand_at", 40);

  charm::RuntimeConfig rc;
  rc.num_pes = pes;
  charm::Runtime rt(rc);
  apps::Jacobi2D app(rt, apps::jacobi_for_grid(grid, iters));

  // Post CCS rescale commands at iteration boundaries, as the external
  // scheduler would. The application honours them at its next
  // load-balancing step and acknowledges when done.
  app.driver().at_iteration(shrink_at, [pes](charm::Runtime& r) {
    std::cout << "[ccs] requesting shrink to " << pes / 2 << " PEs\n";
    r.ccs().request_rescale(pes / 2, [](const charm::RescaleTiming& t) {
      std::cout << "[ack] shrink done in " << format_double(t.total(), 3)
                << " s\n";
    });
  });
  app.driver().at_iteration(expand_at, [pes](charm::Runtime& r) {
    std::cout << "[ccs] requesting expand back to " << pes << " PEs\n";
    r.ccs().request_rescale(pes, [](const charm::RescaleTiming& t) {
      std::cout << "[ack] expand done in " << format_double(t.total(), 3)
                << " s\n";
    });
  });

  app.start();
  rt.run();

  std::cout << "\nFinished " << app.driver().iterations_done()
            << " iterations, residual " << app.residual() << "\n\n";

  Table table({"stage", "shrink_s", "expand_s"});
  const auto& history = rt.rescale_history();
  if (history.size() == 2) {
    const auto& s = history[0];
    const auto& e = history[1];
    table.add_row({"load balance", format_double(s.load_balance_s, 4),
                   format_double(e.load_balance_s, 4)});
    table.add_row({"checkpoint", format_double(s.checkpoint_s, 4),
                   format_double(e.checkpoint_s, 4)});
    table.add_row({"restart", format_double(s.restart_s, 4),
                   format_double(e.restart_s, 4)});
    table.add_row({"restore", format_double(s.restore_s, 4),
                   format_double(e.restore_s, 4)});
    table.add_row({"total", format_double(s.total(), 4),
                   format_double(e.total(), 4)});
    std::cout << table.to_text();
  }

  // Per-iteration time in the three regimes.
  const auto& times = app.driver().iteration_end_times();
  auto step = [&](int a, int b) {
    return (times[static_cast<std::size_t>(b)] -
            times[static_cast<std::size_t>(a)]) /
           (b - a);
  };
  std::cout << "\ntime/iter at " << pes << " PEs: "
            << format_double(step(2, shrink_at - 1), 4) << " s; at " << pes / 2
            << " PEs: " << format_double(step(shrink_at + 1, expand_at - 1), 4)
            << " s; after expand: "
            << format_double(step(expand_at + 1, iters - 1), 4) << " s\n";
  return 0;
}
