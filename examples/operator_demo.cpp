// Drives the Charm++ operator directly on the Kubernetes substrate — the
// CRD/controller mechanics without any scheduling policy: create a CharmJob,
// watch its worker pods come up, shrink it, expand it, and tear it down,
// printing every pod transition (the equivalent of `kubectl get pods -w`).

#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "k8s/cluster.hpp"
#include "opk/controller.hpp"

using namespace ehpc;

int main(int argc, char** argv) {
  Config cfg;
  try {
    cfg = Config::from_args(
        argc, argv, {"nodes", "cpus_per_node", "workers", "shrink_to",
                     "expand_to"});
  } catch (const ConfigError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "usage: operator_demo [nodes=4] [cpus_per_node=16]\n"
              << "       [workers=8] [shrink_to=4] [expand_to=12]\n";
    return 2;
  }
  const int workers = cfg.get_int("workers", 8);
  const int shrink_to = cfg.get_int("shrink_to", 4);
  const int expand_to = cfg.get_int("expand_to", 12);

  k8s::Cluster cluster;
  cluster.add_nodes("node", cfg.get_int("nodes", 4),
                    {cfg.get_int("cpus_per_node", 16), 32768});
  k8s::ObjectStore<opk::CharmJob> jobs;
  opk::CharmJobController controller(cluster, jobs, {});

  // Watch pod transitions like `kubectl get pods -w`.
  cluster.pods().watch([&](k8s::WatchEvent event, const k8s::Pod& pod) {
    const char* verb = event == k8s::WatchEvent::kAdded      ? "ADDED   "
                       : event == k8s::WatchEvent::kModified ? "MODIFIED"
                                                             : "DELETED ";
    std::cout << "[t=" << format_double(cluster.sim().now(), 2) << "s] " << verb
              << " " << pod.meta.name << "  phase=" << to_string(pod.phase)
              << (pod.node_name.empty() ? "" : "  node=" + pod.node_name)
              << "\n";
  });

  std::cout << "--- kubectl apply -f charmjob.yaml (" << workers
            << " workers) ---\n";
  opk::CharmJob job;
  job.meta.name = "jacobi";
  job.desired_replicas = workers;
  job.phase = opk::CharmJobPhase::kLaunching;
  jobs.add(std::move(job));
  cluster.sim().run();

  std::cout << "\nnodelist: ";
  for (const auto& entry : jobs.get("jacobi").nodelist) std::cout << entry << " ";
  std::cout << "\n\n--- scale down to " << shrink_to
            << " workers (after the app acked) ---\n";
  jobs.mutate("jacobi",
              [shrink_to](opk::CharmJob& j) { j.desired_replicas = shrink_to; });
  cluster.sim().run();

  std::cout << "\n--- scale back up to " << expand_to << " workers ---\n";
  jobs.mutate("jacobi",
              [expand_to](opk::CharmJob& j) { j.desired_replicas = expand_to; });
  cluster.sim().run();

  std::cout << "\nnodelist now has " << jobs.get("jacobi").nodelist.size()
            << " entries; cluster uses " << cluster.used_cpus() << "/"
            << cluster.total_cpus() << " vCPUs\n";

  std::cout << "\n--- job completes: teardown ---\n";
  jobs.mutate("jacobi",
              [](opk::CharmJob& j) { j.phase = opk::CharmJobPhase::kCompleted; });
  cluster.sim().run();
  std::cout << "\ncluster uses " << cluster.used_cpus() << "/"
            << cluster.total_cpus() << " vCPUs; reconciles run: "
            << controller.reconcile_count() << "\n";
  return 0;
}
