// Drives the Charm++ operator directly on the Kubernetes substrate — the
// CRD/controller mechanics without any scheduling policy: create a CharmJob,
// watch its worker pods come up, shrink it, expand it, and tear it down,
// printing every pod transition (the equivalent of `kubectl get pods -w`).

#include <iostream>

#include "common/table.hpp"
#include "k8s/cluster.hpp"
#include "opk/controller.hpp"

using namespace ehpc;

int main() {
  k8s::Cluster cluster;
  cluster.add_nodes("node", 4, {16, 32768});
  k8s::ObjectStore<opk::CharmJob> jobs;
  opk::CharmJobController controller(cluster, jobs, {});

  // Watch pod transitions like `kubectl get pods -w`.
  cluster.pods().watch([&](k8s::WatchEvent event, const k8s::Pod& pod) {
    const char* verb = event == k8s::WatchEvent::kAdded      ? "ADDED   "
                       : event == k8s::WatchEvent::kModified ? "MODIFIED"
                                                             : "DELETED ";
    std::cout << "[t=" << format_double(cluster.sim().now(), 2) << "s] " << verb
              << " " << pod.meta.name << "  phase=" << to_string(pod.phase)
              << (pod.node_name.empty() ? "" : "  node=" + pod.node_name)
              << "\n";
  });

  std::cout << "--- kubectl apply -f charmjob.yaml (8 workers) ---\n";
  opk::CharmJob job;
  job.meta.name = "jacobi";
  job.desired_replicas = 8;
  job.phase = opk::CharmJobPhase::kLaunching;
  jobs.add(std::move(job));
  cluster.sim().run();

  std::cout << "\nnodelist: ";
  for (const auto& entry : jobs.get("jacobi").nodelist) std::cout << entry << " ";
  std::cout << "\n\n--- scale down to 4 workers (after the app acked) ---\n";
  jobs.mutate("jacobi", [](opk::CharmJob& j) { j.desired_replicas = 4; });
  cluster.sim().run();

  std::cout << "\n--- scale back up to 12 workers ---\n";
  jobs.mutate("jacobi", [](opk::CharmJob& j) { j.desired_replicas = 12; });
  cluster.sim().run();

  std::cout << "\nnodelist now has " << jobs.get("jacobi").nodelist.size()
            << " entries; cluster uses " << cluster.used_cpus() << "/"
            << cluster.total_cpus() << " vCPUs\n";

  std::cout << "\n--- job completes: teardown ---\n";
  jobs.mutate("jacobi",
              [](opk::CharmJob& j) { j.phase = opk::CharmJobPhase::kCompleted; });
  cluster.sim().run();
  std::cout << "\ncluster uses " << cluster.used_cpus() << "/"
            << cluster.total_cpus() << " vCPUs; reconciles run: "
            << controller.reconcile_count() << "\n";
  return 0;
}
