// Quickstart: submit three elastic HPC jobs to a 4-node (64 vCPU) emulated
// Kubernetes cluster under the paper's priority-based elastic policy and
// print what the scheduler did.
//
// The cluster shape and policy come from the registered "quickstart"
// scenario; any scenario key overrides it, e.g.:
//
//   ./build/examples/example_quickstart rescale_gap=60 nodes=8
//   ./build/examples/example_quickstart scenario=fig9_cluster
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <algorithm>
#include <iostream>

#include "common/table.hpp"
#include "scenario/backend.hpp"
#include "scenario/registry.hpp"

using namespace ehpc;

int main(int argc, char** argv) {
  // 1. The experiment description: the "quickstart" registry scenario
  //    (Kubernetes substrate, elastic policy) plus command-line overrides.
  //    Only keys that affect this demo are accepted — the job mix below is
  //    fixed, so mix/sweep keys (num_jobs=, seed=, ...) are a hard error
  //    rather than silently inert.
  scenario::ScenarioSpec spec;
  try {
    const Config cfg = Config::from_args(
        argc, argv,
        {"scenario", "substrate", "nodes", "cpus_per_node", "rescale_gap",
         "calibrated", "policies"});
    spec = scenario::resolve_scenario(cfg, "quickstart");
  } catch (const ConfigError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "usage: quickstart [scenario=quickstart] [key=value ...]\n\n"
              << "scenario keys:\n"
              << scenario::spec_config_help();
    return 2;
  }

  // 2. Three jobs: a low-priority hog, a second low-priority job, then a
  //    high-priority arrival that forces the elastic policy to shrink one
  //    of the victims.
  auto make = [](int id, elastic::JobClass cls, int priority, double at) {
    schedsim::SubmittedJob j;
    j.spec = elastic::spec_for_class(cls, id, priority);
    j.job_class = cls;
    j.submit_time = at;
    return j;
  };
  const std::vector<schedsim::SubmittedJob> jobs{
      make(0, elastic::JobClass::kLarge, /*priority=*/1, /*at=*/0.0),
      make(1, elastic::JobClass::kLarge, /*priority=*/1, /*at=*/5.0),
      make(2, elastic::JobClass::kXLarge, /*priority=*/5, /*at=*/60.0),
  };

  // 3. Run them through the scenario's substrate (the operator on the
  //    emulated Kubernetes cluster, unless overridden). The demo narrates a
  //    shrink, so prefer the elastic policy when the scenario lists several.
  const auto elastic_it = std::find(spec.policies.begin(), spec.policies.end(),
                                    elastic::PolicyMode::kElastic);
  const elastic::PolicyMode mode =
      elastic_it != spec.policies.end() ? *elastic_it : spec.policies.front();
  auto backend = scenario::make_backend(spec, scenario::policy_for(spec, mode),
                                        scenario::workloads_for(spec));
  const auto result = backend->run(jobs);

  // 4. Report.
  std::cout << "Ran " << result.jobs.size() << " jobs with "
            << result.rescale_count << " rescale operations on substrate "
            << to_string(spec.substrate) << " under the "
            << elastic::to_string(mode) << " policy\n\n";
  Table table({"job", "priority", "submit_s", "start_s", "complete_s",
               "response_s"});
  for (const auto& rec : result.jobs) {
    table.add_row({std::to_string(rec.id), std::to_string(rec.priority),
                   format_double(rec.submit_time, 1),
                   format_double(rec.start_time, 1),
                   format_double(rec.complete_time, 1),
                   format_double(rec.response_time(), 1)});
  }
  std::cout << table.to_text() << "\n";
  std::cout << "Cluster utilization: "
            << format_double(result.metrics.utilization * 100.0, 1) << "%\n";
  std::cout << "Weighted mean response time: "
            << format_double(result.metrics.weighted_response_s, 1) << " s\n";
  return 0;
}
