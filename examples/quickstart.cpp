// Quickstart: submit three elastic HPC jobs to a 4-node (64 vCPU) emulated
// Kubernetes cluster under the paper's priority-based elastic policy and
// print what the scheduler did.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "common/table.hpp"
#include "opk/experiment.hpp"
#include "schedsim/calibrate.hpp"

using namespace ehpc;

int main() {
  // 1. Workload models: step-time curves measured from the bundled
  //    Charm++-style runtime (minicharm).
  const auto workloads = schedsim::calibrated_workloads();

  // 2. Three jobs: a low-priority hog, a second low-priority job, then a
  //    high-priority arrival that forces the elastic policy to shrink one
  //    of the victims.
  auto make = [](int id, elastic::JobClass cls, int priority, double at) {
    schedsim::SubmittedJob j;
    j.spec = elastic::spec_for_class(cls, id, priority);
    j.job_class = cls;
    j.submit_time = at;
    return j;
  };
  const std::vector<schedsim::SubmittedJob> jobs{
      make(0, elastic::JobClass::kLarge, /*priority=*/1, /*at=*/0.0),
      make(1, elastic::JobClass::kLarge, /*priority=*/1, /*at=*/5.0),
      make(2, elastic::JobClass::kXLarge, /*priority=*/5, /*at=*/60.0),
  };

  // 3. Run them through the operator on the Kubernetes substrate.
  opk::ExperimentConfig config;
  config.policy.mode = elastic::PolicyMode::kElastic;
  config.policy.rescale_gap_s = 30.0;
  opk::ClusterExperiment experiment(config, workloads);
  const auto result = experiment.run(jobs);

  // 4. Report.
  std::cout << "Ran " << result.jobs.size() << " jobs with "
            << result.rescale_count << " rescale operations\n\n";
  Table table({"job", "priority", "submit_s", "start_s", "complete_s",
               "response_s"});
  for (const auto& rec : result.jobs) {
    table.add_row({std::to_string(rec.id), std::to_string(rec.priority),
                   format_double(rec.submit_time, 1),
                   format_double(rec.start_time, 1),
                   format_double(rec.complete_time, 1),
                   format_double(rec.response_time(), 1)});
  }
  std::cout << table.to_text() << "\n";
  std::cout << "Cluster utilization: "
            << format_double(result.metrics.utilization * 100.0, 1) << "%\n";
  std::cout << "Weighted mean response time: "
            << format_double(result.metrics.weighted_response_s, 1) << " s\n";
  return 0;
}
