// Replay a job trace under the scenario's policies and compare the paper's
// four metrics. The trace is either generated from the scenario's job-mix
// parameters or read from a CSV file with lines: id,class,priority,submit_time
// where class is one of small|medium|large|xlarge.
//
// Usage: trace_replay [scenario=NAME] [seed=2025] [num_jobs=16]
//                     [submission_gap=90] [rescale_gap=180]
//                     [substrate=schedsim|cluster] [trace=path.csv] ...
// Any scenario key works as an override (see usage text on bad flags).

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

using namespace ehpc;
using elastic::PolicyMode;

namespace {

elastic::JobClass class_from_string(const std::string& s) {
  if (s == "small") return elastic::JobClass::kSmall;
  if (s == "medium") return elastic::JobClass::kMedium;
  if (s == "large") return elastic::JobClass::kLarge;
  if (s == "xlarge") return elastic::JobClass::kXLarge;
  throw PreconditionError("unknown job class in trace: " + s);
}

std::vector<schedsim::SubmittedJob> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw PreconditionError("cannot open trace file: " + path);
  std::vector<schedsim::SubmittedJob> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string id_s, cls_s, prio_s, t_s;
    if (!std::getline(ls, id_s, ',') || !std::getline(ls, cls_s, ',') ||
        !std::getline(ls, prio_s, ',') || !std::getline(ls, t_s, ',')) {
      throw PreconditionError("malformed trace line: " + line);
    }
    schedsim::SubmittedJob job;
    const auto cls = class_from_string(cls_s);
    job.spec = elastic::spec_for_class(cls, std::atoi(id_s.c_str()),
                                       std::atoi(prio_s.c_str()));
    job.job_class = cls;
    job.submit_time = std::atof(t_s.c_str());
    out.push_back(job);
  }
  if (out.empty()) throw PreconditionError("trace file has no jobs: " + path);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  scenario::ScenarioSpec spec;
  Config cfg;
  try {
    std::vector<std::string> keys = scenario::scenario_config_keys();
    keys.push_back("trace");
    cfg = Config::from_args(argc, argv, keys);
    spec = scenario::resolve_scenario(cfg);
  } catch (const ConfigError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "usage: trace_replay [scenario=NAME] [trace=path.csv] "
              << "[key=value ...]\n\nscenario keys:\n"
              << scenario::spec_config_help();
    return 2;
  }

  std::vector<schedsim::SubmittedJob> mix;
  if (auto trace = cfg.get("trace")) {
    // The file supplies the mix; mix-generation keys would be silently
    // inert, so reject the combination.
    for (const char* key : {"num_jobs", "submission_gap", "seed"}) {
      if (cfg.has(key)) {
        std::cerr << "error: '" << key
                  << "' has no effect when trace= supplies the job mix\n";
        return 2;
      }
    }
    mix = load_trace(*trace);
    std::cout << "Replaying " << mix.size() << " jobs from " << *trace << "\n\n";
  } else {
    mix = scenario::make_mix(spec, spec.seed);
    std::cout << "Replaying a generated mix of " << mix.size() << " jobs\n\n";
  }

  const auto results = scenario::run_policies(spec, mix);
  Table table({"scheduler", "total_s", "utilization", "response_s",
               "completion_s", "rescales"});
  for (const PolicyMode mode : spec.policies) {
    const auto& result = results.at(mode);
    table.add_row({elastic::to_string(mode),
                   format_double(result.metrics.total_time_s, 1),
                   format_double(result.metrics.utilization, 4),
                   format_double(result.metrics.weighted_response_s, 2),
                   format_double(result.metrics.weighted_completion_s, 2),
                   std::to_string(result.rescale_count)});
  }
  std::cout << table.to_text();
  return 0;
}
