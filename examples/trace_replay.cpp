// Replay a job trace under the scenario's policies and compare the paper's
// four metrics. With any trace key set (trace=, trace_jobs=, cron_period=)
// the replay streams through the bounded-memory trace engine: submissions
// are pulled lazily from the TraceSource and finished jobs retire to
// summaries, so a CSV or synthetic trace of any length replays in memory
// proportional to in-flight jobs. Without trace keys the scenario's
// generated job mix runs on the batch path, as before.
//
// Usage: trace_replay [scenario=NAME] [trace=path.csv] [trace_jobs=N]
//                     [cron_period=S] [queue_timeout=S] [task_timeout=S]
//                     [substrate=schedsim|cluster] [key=value ...]
// Any scenario key works as an override (see usage text on bad flags).
// CSV lines are: id,class,priority,submit_time[,queue_timeout[,task_timeout
// [,max_failed_nodes]]] with class one of small|medium|large|xlarge;
// malformed lines are hard errors naming the line number.

#include <iostream>

#include "common/table.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

using namespace ehpc;
using elastic::PolicyMode;

int main(int argc, char** argv) {
  scenario::ScenarioSpec spec;
  try {
    const Config cfg =
        Config::from_args(argc, argv, scenario::scenario_config_keys());
    spec = scenario::resolve_scenario(cfg);
  } catch (const ConfigError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "usage: trace_replay [scenario=NAME] [trace=path.csv] "
              << "[key=value ...]\n\nscenario keys:\n"
              << scenario::spec_config_help();
    return 2;
  }

  try {
    if (spec.is_trace()) {
      std::cout << "Streaming trace replay (" << scenario::describe(spec)
                << ")\n\n";
      const auto results = scenario::run_policies_stream(spec, spec.seed);
      Table table({"scheduler", "jobs", "peak_live", "abandoned", "timed_out",
                   "resp_p50", "resp_p99", "utilization", "total_s"});
      for (const PolicyMode mode : spec.policies) {
        const auto& result = results.at(mode);
        const auto& m = result.metrics;
        table.add_row({elastic::to_string(mode),
                       std::to_string(result.stream.jobs_submitted),
                       std::to_string(result.stream.peak_live_jobs),
                       std::to_string(static_cast<long>(m.jobs_abandoned)),
                       std::to_string(static_cast<long>(m.jobs_timed_out)),
                       format_double(result.stream.response_p50, 1),
                       format_double(result.stream.response_p99, 1),
                       format_double(m.utilization, 4),
                       format_double(m.total_time_s, 1)});
      }
      std::cout << table.to_text();
      return 0;
    }

    const auto mix = scenario::make_mix(spec, spec.seed);
    std::cout << "Replaying a generated mix of " << mix.size() << " jobs\n\n";
    const auto results = scenario::run_policies(spec, mix);
    Table table({"scheduler", "total_s", "utilization", "response_s",
                 "completion_s", "rescales"});
    for (const PolicyMode mode : spec.policies) {
      const auto& result = results.at(mode);
      table.add_row({elastic::to_string(mode),
                     format_double(result.metrics.total_time_s, 1),
                     format_double(result.metrics.utilization, 4),
                     format_double(result.metrics.weighted_response_s, 2),
                     format_double(result.metrics.weighted_completion_s, 2),
                     std::to_string(result.rescale_count)});
    }
    std::cout << table.to_text();
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
  return 0;
}
