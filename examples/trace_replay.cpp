// Replay a job trace under all four scheduling policies and compare the
// paper's four metrics. The trace is either generated (seed=) or read from a
// CSV file with lines: id,class,priority,submit_time
// where class is one of small|medium|large|xlarge.
//
// Usage: trace_replay [seed=7] [jobs=16] [gap=90] [rescale_gap=180]
//                     [trace=path.csv]

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "schedsim/calibrate.hpp"
#include "schedsim/simulator.hpp"

using namespace ehpc;
using elastic::PolicyMode;

namespace {

elastic::JobClass class_from_string(const std::string& s) {
  if (s == "small") return elastic::JobClass::kSmall;
  if (s == "medium") return elastic::JobClass::kMedium;
  if (s == "large") return elastic::JobClass::kLarge;
  if (s == "xlarge") return elastic::JobClass::kXLarge;
  throw PreconditionError("unknown job class in trace: " + s);
}

std::vector<schedsim::SubmittedJob> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw PreconditionError("cannot open trace file: " + path);
  std::vector<schedsim::SubmittedJob> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string id_s, cls_s, prio_s, t_s;
    if (!std::getline(ls, id_s, ',') || !std::getline(ls, cls_s, ',') ||
        !std::getline(ls, prio_s, ',') || !std::getline(ls, t_s, ',')) {
      throw PreconditionError("malformed trace line: " + line);
    }
    schedsim::SubmittedJob job;
    const auto cls = class_from_string(cls_s);
    job.spec = elastic::spec_for_class(cls, std::atoi(id_s.c_str()),
                                       std::atoi(prio_s.c_str()));
    job.job_class = cls;
    job.submit_time = std::atof(t_s.c_str());
    out.push_back(job);
  }
  if (out.empty()) throw PreconditionError("trace file has no jobs: " + path);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  try {
    cfg = Config::from_args(argc, argv,
                            {"seed", "jobs", "gap", "rescale_gap", "trace"});
  } catch (const ConfigError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "usage: trace_replay [seed=7] [jobs=16] [gap=90]\n"
              << "       [rescale_gap=180] [trace=path.csv]\n";
    return 2;
  }
  std::vector<schedsim::SubmittedJob> mix;
  if (auto trace = cfg.get("trace")) {
    mix = load_trace(*trace);
    std::cout << "Replaying " << mix.size() << " jobs from " << *trace << "\n\n";
  } else {
    schedsim::JobMixGenerator gen(static_cast<unsigned>(cfg.get_int("seed", 7)));
    mix = gen.generate(cfg.get_int("jobs", 16), cfg.get_double("gap", 90.0));
    std::cout << "Replaying a generated mix of " << mix.size() << " jobs\n\n";
  }

  const auto workloads = schedsim::calibrated_workloads();
  Table table({"scheduler", "total_s", "utilization", "response_s",
               "completion_s", "rescales"});
  for (auto mode : {PolicyMode::kRigidMin, PolicyMode::kRigidMax,
                    PolicyMode::kMoldable, PolicyMode::kElastic}) {
    elastic::PolicyConfig pc;
    pc.mode = mode;
    pc.rescale_gap_s = cfg.get_double("rescale_gap", 180.0);
    schedsim::SchedSimulator sim(64, pc, workloads);
    const auto result = sim.run(mix);
    table.add_row({elastic::to_string(mode),
                   format_double(result.metrics.total_time_s, 1),
                   format_double(result.metrics.utilization, 4),
                   format_double(result.metrics.weighted_response_s, 2),
                   format_double(result.metrics.weighted_completion_s, 2),
                   std::to_string(result.rescale_count)});
  }
  std::cout << table.to_text();
  return 0;
}
