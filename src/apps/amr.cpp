#include "apps/amr.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "common/error.hpp"

namespace ehpc::apps {

using charm::Chare;
using charm::Pup;
using charm::ReduceOp;
using charm::Runtime;

AmrBlock::AmrBlock(int real_cells, int num_neighbors)
    : num_neighbors_(num_neighbors) {
  EHPC_EXPECTS(real_cells >= 1);
  data_.assign(static_cast<std::size_t>(real_cells), 0.0);
  // A deterministic non-uniform initial profile so relaxation has work.
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] = (i % 2 == 0) ? 1.0 : 0.0;
  }
}

void AmrBlock::pup(Pup& p) {
  p | num_neighbors_;
  p | level_;
  p | iteration_;
  p | recv_count_;
  p | started_;
  p | data_;
  p | ghost_left_;
  p | ghost_right_;
}

std::vector<double> AmrBlock::flux(Dir d) const {
  const std::size_t n =
      std::min<std::size_t>(kFluxDoubles, data_.size());
  std::vector<double> out;
  out.reserve(n);
  if (d == kLeft) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(data_[i]);
  } else {
    for (std::size_t i = data_.size() - n; i < data_.size(); ++i) {
      out.push_back(data_[i]);
    }
  }
  return out;
}

void AmrBlock::apply_flux(Dir d, const std::vector<double>& values) {
  if (d == kLeft) {
    ghost_left_ = values;
  } else {
    ghost_right_ = values;
  }
  ++recv_count_;
}

double AmrBlock::compute() {
  const auto ghost_mean = [](const std::vector<double>& g) {
    if (g.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : g) sum += v;
    return sum / static_cast<double>(g.size());
  };
  const double left = ghost_mean(ghost_left_);
  const double right = ghost_mean(ghost_right_);
  const std::size_t n = data_.size();
  double delta = 0.0;
  std::vector<double> next(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = (i == 0) ? left : data_[i - 1];
    const double hi = (i + 1 == n) ? right : data_[i + 1];
    next[i] = 0.5 * data_[i] + 0.25 * (lo + hi);
    delta = std::max(delta, std::abs(next[i] - data_[i]));
  }
  data_ = std::move(next);
  ++iteration_;
  recv_count_ = 0;
  started_ = false;
  return delta;
}

void AmrBlock::change_level(int delta, int new_real_cells) {
  EHPC_EXPECTS(delta == 1 || delta == -1);
  EHPC_EXPECTS(new_real_cells >= 1);
  const std::size_t n = static_cast<std::size_t>(new_real_cells);
  std::vector<double> next(n);
  if (data_.empty()) {
    std::fill(next.begin(), next.end(), 0.0);
  } else if (delta > 0) {
    // Refine: piecewise-constant prolongation of the existing profile.
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = data_[i * data_.size() / n];
    }
  } else {
    // Coarsen: average the fine cells that land in each coarse cell.
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t lo = i * data_.size() / n;
      const std::size_t hi = std::max(lo + 1, (i + 1) * data_.size() / n);
      double sum = 0.0;
      for (std::size_t j = lo; j < hi && j < data_.size(); ++j) sum += data_[j];
      next[i] = sum / static_cast<double>(hi - lo);
    }
  }
  data_ = std::move(next);
  level_ += delta;
  EHPC_ENSURES(level_ >= 0);
}

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double Amr::event_draw(unsigned seed, int elem, int iteration) {
  std::uint64_t key = static_cast<std::uint64_t>(seed);
  key = splitmix64(key ^ (static_cast<std::uint64_t>(elem) << 32));
  key = splitmix64(key ^ static_cast<std::uint64_t>(iteration));
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(key >> 11) * 0x1.0p-53;
}

Amr::Amr(Runtime& rt, AmrConfig config) : rt_(rt), config_(config) {
  EHPC_EXPECTS(config_.blocks >= 2);
  EHPC_EXPECTS(config_.cells_per_block >= 1);
  EHPC_EXPECTS(config_.max_real_cells >= 1);
  EHPC_EXPECTS(config_.max_depth >= 0);
  EHPC_EXPECTS(config_.refine_rate >= 0.0 && config_.refine_rate <= 1.0);
  EHPC_EXPECTS(config_.coarsen_rate >= 0.0 && config_.coarsen_rate <= 1.0);
  EHPC_EXPECTS(config_.refine_rate + config_.coarsen_rate <= 1.0);
  EHPC_EXPECTS(config_.max_iterations > 0);

  base_edge_ = std::max(
      1, static_cast<int>(std::lround(std::sqrt(config_.cells_per_block))));

  const int real0 = real_cells_at(0);
  array_ = rt_.create_array("amr", config_.blocks, [real0](charm::ElementId) {
    // Fresh patches start on the base mesh; pup overwrites level and data
    // when the factory rebuilds an element after a restart.
    return std::make_unique<AmrBlock>(real0, /*num_neighbors=*/2);
  });

  // Checkpoint/migration costs are charged at model scale (base mesh; the
  // runtime scales actual pup sizes, which already grow with refinement).
  const double model_block_bytes =
      static_cast<double>(config_.cells_per_block) * sizeof(double);
  const double real_block_bytes = static_cast<double>(real0) * sizeof(double);
  rt_.set_bytes_scale(array_,
                      std::max(1.0, model_block_bytes / real_block_bytes));

  driver_ = std::make_unique<IterationDriver>(
      rt_, array_, config_.max_iterations, [this](int iter) { kick(iter); });
}

double Amr::model_cells(int level) const {
  return static_cast<double>(config_.cells_per_block) *
         std::pow(4.0, static_cast<double>(level));
}

int Amr::real_cells_at(int level) const {
  const double model = model_cells(level);
  return static_cast<int>(
      std::min<double>(model, config_.max_real_cells));
}

int Amr::level_of(int e) const {
  return static_cast<const AmrBlock&>(rt_.element(array_, e)).level();
}

double Amr::total_model_cells() const {
  double total = 0.0;
  for (int e = 0; e < config_.blocks; ++e) total += model_cells(level_of(e));
  return total;
}

double Amr::model_bytes() const { return total_model_cells() * sizeof(double); }

void Amr::apply_refinement_event(int elem, AmrBlock& block) {
  // A refinement front sweeps the ring: patches within an eighth of the
  // ring refine at 3x the base rate, everyone else decays towards the base
  // mesh. The draw is counter-based, so the decision for (patch, iteration)
  // is the same whatever PE the patch sits on.
  const int iter = block.iteration();
  const double front = std::fmod(
      config_.front_speed * static_cast<double>(iter),
      static_cast<double>(config_.blocks));
  double dist = std::abs(static_cast<double>(elem) - front);
  dist = std::min(dist, static_cast<double>(config_.blocks) - dist);
  const bool near_front =
      dist <= static_cast<double>(config_.blocks) / 8.0;
  const double refine_p =
      std::min(1.0, config_.refine_rate * (near_front ? 3.0 : 0.5));
  const double coarsen_p =
      std::min(1.0 - refine_p, config_.coarsen_rate * (near_front ? 0.5 : 3.0));

  const double u = event_draw(config_.seed, elem, iter);
  if (u < refine_p && block.level() < config_.max_depth) {
    block.change_level(+1, real_cells_at(block.level() + 1));
  } else if (u >= 1.0 - coarsen_p && block.level() > 0) {
    block.change_level(-1, real_cells_at(block.level() - 1));
  }
}

void Amr::maybe_compute(int elem, AmrBlock& block, Runtime& rt) {
  if (!block.ready_to_compute()) return;
  const double cells = model_cells(block.level());
  rt.charge_flops(config_.flops_per_cell * cells);
  block.compute();
  // The event for iteration i is applied after computing it: it reshapes
  // the mesh the *next* iteration runs on.
  apply_refinement_event(elem, block);
  rt.contribute(array_, cells, ReduceOp::kSum);
}

void Amr::send_flux(int from, AmrBlock::Dir d) {
  const int to = d == AmrBlock::kLeft
                     ? (from + config_.blocks - 1) % config_.blocks
                     : (from + 1) % config_.blocks;
  auto& src = static_cast<AmrBlock&>(rt_.element(array_, from));
  std::vector<double> data = src.flux(d);
  // Declared message cost is the model-scale boundary of the finer side.
  const std::size_t bytes =
      static_cast<std::size_t>(base_edge_ << src.level()) * sizeof(double);
  const AmrBlock::Dir recv_dir =
      d == AmrBlock::kLeft ? AmrBlock::kRight : AmrBlock::kLeft;
  rt_.send(array_, to, bytes,
           [this, to, recv_dir, data = std::move(data)](Chare& c, Runtime& rt) {
             auto& block = static_cast<AmrBlock&>(c);
             block.apply_flux(recv_dir, data);
             maybe_compute(to, block, rt);
           });
}

void Amr::kick(int /*iteration*/) {
  // "Start iteration": every patch publishes its boundary fluxes, then
  // computes once both neighbours' fluxes arrive (started_ gates computing
  // before publishing, exactly like Jacobi2D).
  for (int e = 0; e < config_.blocks; ++e) {
    rt_.send(array_, e, /*bytes=*/16, [this, e](Chare& c, Runtime& rt) {
      auto& block = static_cast<AmrBlock&>(c);
      block.mark_started();
      send_flux(e, AmrBlock::kLeft);
      send_flux(e, AmrBlock::kRight);
      maybe_compute(e, block, rt);
    });
  }
}

}  // namespace ehpc::apps
