#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "apps/driver.hpp"
#include "charm/runtime.hpp"

namespace ehpc::apps {

/// Configuration of the AMR-like adaptive-mesh workload: a ring of `blocks`
/// mesh patches, each at a refinement level in [0, max_depth]. Per-patch
/// cost grows 4x per level (2D refinement), and levels evolve over the run
/// through deterministic refinement/coarsening events drawn from a
/// counter-based RNG stream keyed on (seed, patch, iteration) — the event
/// sequence is independent of placement, migration and rescale history.
///
/// A refinement "front" sweeps the ring (`front_speed` patches per
/// iteration): patches near the front refine aggressively while patches far
/// from it decay back to the base mesh, so the load distribution is both
/// heavily imbalanced and time-varying — the regime that exercises the
/// runtime's load balancer, unlike the near-uniform Jacobi2D/LeanMD apps.
///
/// Resolution scaling mirrors Jacobi2D: each patch executes at most
/// `max_real_cells` real cells while declaring the model-scale flops,
/// message bytes and checkpoint bytes of `cells_per_block * 4^level`.
struct AmrConfig {
  int blocks = 64;             ///< patches in the ring (chare count)
  int cells_per_block = 4096;  ///< model cells of an unrefined patch
  int max_real_cells = 256;    ///< executed cells cap per patch
  int max_depth = 3;           ///< refinement levels above the base mesh
  double refine_rate = 0.12;   ///< base P(refine) per patch per iteration
  double coarsen_rate = 0.06;  ///< base P(coarsen) per patch per iteration
  double front_speed = 1.5;    ///< patches the refinement front advances per iteration
  int max_iterations = 40;
  double flops_per_cell = 8.0;
  unsigned seed = 2025;        ///< refinement event stream seed
};

/// One mesh patch: its refinement level and (reduced-resolution) cell data.
/// Migratable; `pup` carries level, data and iteration state.
class AmrBlock final : public charm::Chare {
 public:
  enum Dir { kLeft = 0, kRight = 1 };

  AmrBlock(int real_cells, int num_neighbors);

  void pup(charm::Pup& p) override;

  int level() const { return level_; }
  int iteration() const { return iteration_; }
  int real_cells() const { return static_cast<int>(data_.size()); }

  /// Boundary flux to send towards `d` (up to `kFluxDoubles` real values).
  std::vector<double> flux(Dir d) const;

  /// Install a neighbour's flux received from direction `d`.
  void apply_flux(Dir d, const std::vector<double>& values);

  void mark_started() { started_ = true; }
  bool started() const { return started_; }
  bool ready_to_compute() const { return started_ && recv_count_ >= num_neighbors_; }

  /// One relaxation sweep over the patch; returns max |delta|. Resets the
  /// per-iteration flux/start gates.
  double compute();

  /// Refine (delta = +1) or coarsen (delta = -1) the patch, resampling the
  /// real data to `new_real_cells` deterministically.
  void change_level(int delta, int new_real_cells);

  /// Real values at each boundary exchanged per iteration.
  static constexpr int kFluxDoubles = 8;

 private:
  int num_neighbors_;
  int level_ = 0;
  int iteration_ = 0;
  int recv_count_ = 0;
  bool started_ = false;
  std::vector<double> data_;
  std::vector<double> ghost_left_;
  std::vector<double> ghost_right_;
};

/// The AMR application: builds the patch ring, wires flux messaging and the
/// per-iteration work reduction, applies refinement events, and drives
/// iterations through an IterationDriver (so CCS rescale commands and
/// periodic load balancing are honoured at iteration boundaries).
class Amr {
 public:
  Amr(charm::Runtime& rt, AmrConfig config);

  /// Kick iteration 0. Call `rt.run()` (or run_until) afterwards.
  void start() { driver_->start(); }

  IterationDriver& driver() { return *driver_; }
  const IterationDriver& driver() const { return *driver_; }

  charm::ArrayId array() const { return array_; }
  const AmrConfig& config() const { return config_; }

  /// Model cells of a patch at `level` (4x per level, 2D refinement).
  double model_cells(int level) const;

  /// Current refinement level of patch `e`.
  int level_of(int e) const;

  /// Sum of model cells over all patches at their current levels.
  double total_model_cells() const;

  /// Model-scale problem footprint in bytes at the current levels.
  double model_bytes() const;

  /// Model cells advanced by the last completed iteration (the kSum
  /// reduction value): varies over the run as the mesh adapts.
  double cells_last_iteration() const { return driver_->last_reduction_value(); }

  /// Deterministic event draw in [0, 1) for (seed, patch, iteration):
  /// a splitmix64 hash, so the stream is placement-independent.
  static double event_draw(unsigned seed, int elem, int iteration);

 private:
  int real_cells_at(int level) const;
  void kick(int iteration);
  void send_flux(int from, AmrBlock::Dir d);
  void maybe_compute(int elem, AmrBlock& block, charm::Runtime& rt);
  void apply_refinement_event(int elem, AmrBlock& block);

  charm::Runtime& rt_;
  AmrConfig config_;
  int base_edge_;  ///< model cells along a patch edge at level 0
  charm::ArrayId array_;
  std::unique_ptr<IterationDriver> driver_;
};

}  // namespace ehpc::apps
