#include "apps/calibration.hpp"

#include <utility>

#include "common/error.hpp"

namespace ehpc::apps {

namespace {

/// Steady-state seconds per iteration from the driver's end-time stamps,
/// discarding the first iteration (startup transient).
double time_per_step(const std::vector<double>& end_times) {
  EHPC_EXPECTS(end_times.size() >= 3);
  const std::size_t first = 1;
  const std::size_t last = end_times.size() - 1;
  return (end_times[last] - end_times[first]) / static_cast<double>(last - first);
}

}  // namespace

JacobiConfig jacobi_for_grid(int grid_n, int max_iterations) {
  JacobiConfig cfg;
  cfg.grid_n = grid_n;
  cfg.blocks_x = 16;
  cfg.blocks_y = 16;
  cfg.max_real_block = 32;
  cfg.max_iterations = max_iterations;
  return cfg;
}

std::vector<ScalingPoint> measure_jacobi_scaling(
    int grid_n, const std::vector<int>& replica_counts, int iterations,
    charm::RuntimeConfig base) {
  std::vector<ScalingPoint> out;
  out.reserve(replica_counts.size());
  for (int replicas : replica_counts) {
    charm::RuntimeConfig rc = base;
    rc.num_pes = replicas;
    charm::Runtime rt(rc);
    Jacobi2D app(rt, jacobi_for_grid(grid_n, iterations));
    app.start();
    rt.run();
    EHPC_ENSURES(app.driver().finished());
    out.push_back({replicas, time_per_step(app.driver().iteration_end_times())});
  }
  return out;
}

std::vector<ScalingPoint> measure_leanmd_scaling(
    LeanMdConfig config, const std::vector<int>& replica_counts,
    charm::RuntimeConfig base) {
  std::vector<ScalingPoint> out;
  out.reserve(replica_counts.size());
  for (int replicas : replica_counts) {
    charm::RuntimeConfig rc = base;
    rc.num_pes = replicas;
    charm::Runtime rt(rc);
    LeanMd app(rt, config);
    app.start();
    rt.run();
    EHPC_ENSURES(app.driver().finished());
    out.push_back({replicas, time_per_step(app.driver().iteration_end_times())});
  }
  return out;
}

charm::RescaleTiming measure_jacobi_rescale(int grid_n, int from_replicas,
                                            int to_replicas,
                                            int warmup_iterations,
                                            charm::RuntimeConfig base) {
  EHPC_EXPECTS(from_replicas > 0 && to_replicas > 0);
  charm::RuntimeConfig rc = base;
  rc.num_pes = from_replicas;
  charm::Runtime rt(rc);
  // Enough iterations to cover warmup + a few post-rescale steps.
  Jacobi2D app(rt, jacobi_for_grid(grid_n, warmup_iterations + 6));
  app.driver().at_iteration(warmup_iterations, [to_replicas](charm::Runtime& r) {
    r.ccs().request_rescale(to_replicas);
  });
  app.start();
  rt.run();
  EHPC_ENSURES(rt.last_rescale().has_value());
  return *rt.last_rescale();
}

std::vector<ScalingPoint> measure_amr_scaling(
    AmrConfig config, const std::vector<int>& replica_counts, int lb_period,
    charm::RuntimeConfig base) {
  std::vector<ScalingPoint> out;
  out.reserve(replica_counts.size());
  for (int replicas : replica_counts) {
    charm::RuntimeConfig rc = base;
    rc.num_pes = replicas;
    charm::Runtime rt(rc);
    Amr app(rt, config);
    app.driver().set_lb_period(lb_period);
    app.start();
    rt.run();
    EHPC_ENSURES(app.driver().finished());
    // Mean over all iterations: an adapting mesh has no steady state.
    const auto& ends = app.driver().iteration_end_times();
    EHPC_EXPECTS(!ends.empty());
    out.push_back(
        {replicas, ends.back() / static_cast<double>(ends.size())});
  }
  return out;
}

charm::RescaleTiming measure_amr_rescale(AmrConfig config, int from_replicas,
                                         int to_replicas,
                                         int warmup_iterations,
                                         charm::RuntimeConfig base) {
  EHPC_EXPECTS(from_replicas > 0 && to_replicas > 0);
  charm::RuntimeConfig rc = base;
  rc.num_pes = from_replicas;
  charm::Runtime rt(rc);
  config.max_iterations = warmup_iterations + 6;
  Amr app(rt, config);
  app.driver().at_iteration(warmup_iterations, [to_replicas](charm::Runtime& r) {
    r.ccs().request_rescale(to_replicas);
  });
  app.start();
  rt.run();
  EHPC_ENSURES(rt.last_rescale().has_value());
  return *rt.last_rescale();
}

LbProfile measure_amr_lb_profile(AmrConfig config, int replicas, int lb_period,
                                 charm::RuntimeConfig base) {
  EHPC_EXPECTS(replicas > 0 && lb_period > 0);
  charm::RuntimeConfig rc = base;
  rc.num_pes = replicas;
  charm::Runtime rt(rc);
  Amr app(rt, config);
  app.driver().set_lb_period(lb_period);
  app.start();
  rt.run();
  EHPC_ENSURES(app.driver().finished());
  LbProfile profile;
  double pre_sum = 0.0;
  double post_sum = 0.0;
  double migrated_sum = 0.0;
  for (const auto& step : rt.lb_history()) {
    pre_sum += step.pre_ratio;
    post_sum += step.post_ratio;
    migrated_sum += static_cast<double>(step.migrated);
    ++profile.lb_steps;
  }
  if (profile.lb_steps > 0) {
    const double n = static_cast<double>(profile.lb_steps);
    profile.pre_ratio = pre_sum / n;
    profile.post_ratio = post_sum / n;
    profile.migrations_per_step = migrated_sum / n;
  }
  return profile;
}

std::vector<ScalingPoint> measure_graph_scaling(
    GraphConfig config, const std::vector<int>& replica_counts, int lb_period,
    charm::RuntimeConfig base) {
  std::vector<ScalingPoint> out;
  out.reserve(replica_counts.size());
  for (int replicas : replica_counts) {
    charm::RuntimeConfig rc = base;
    rc.num_pes = replicas;
    charm::Runtime rt(rc);
    Graph app(rt, config);
    app.driver().set_lb_period(lb_period);
    app.start();
    rt.run();
    EHPC_ENSURES(app.driver().finished());
    // Mean over all supersteps: LB migrations change the per-step time
    // mid-run, so there is no steady state to isolate.
    const auto& ends = app.driver().iteration_end_times();
    EHPC_EXPECTS(!ends.empty());
    out.push_back({replicas, ends.back() / static_cast<double>(ends.size())});
  }
  return out;
}

LbProfile measure_graph_lb_profile(GraphConfig config, int replicas,
                                   int lb_period, charm::RuntimeConfig base) {
  EHPC_EXPECTS(replicas > 0 && lb_period > 0);
  charm::RuntimeConfig rc = base;
  rc.num_pes = replicas;
  charm::Runtime rt(rc);
  Graph app(rt, config);
  app.driver().set_lb_period(lb_period);
  app.start();
  rt.run();
  EHPC_ENSURES(app.driver().finished());
  LbProfile profile;
  double pre_sum = 0.0;
  double post_sum = 0.0;
  double migrated_sum = 0.0;
  for (const auto& step : rt.lb_history()) {
    pre_sum += step.pre_ratio;
    post_sum += step.post_ratio;
    migrated_sum += static_cast<double>(step.migrated);
    ++profile.lb_steps;
  }
  if (profile.lb_steps > 0) {
    const double n = static_cast<double>(profile.lb_steps);
    profile.pre_ratio = pre_sum / n;
    profile.post_ratio = post_sum / n;
    profile.migrations_per_step = migrated_sum / n;
  }
  return profile;
}

PiecewiseLinear scaling_curve(const std::vector<ScalingPoint>& points) {
  EHPC_EXPECTS(!points.empty());
  std::vector<std::pair<double, double>> xy;
  xy.reserve(points.size());
  for (const auto& p : points) {
    xy.emplace_back(static_cast<double>(p.replicas), p.time_per_step_s);
  }
  return PiecewiseLinear(std::move(xy));
}

}  // namespace ehpc::apps
