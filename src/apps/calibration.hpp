#pragma once

#include <vector>

#include "apps/jacobi2d.hpp"
#include "apps/leanmd.hpp"
#include "charm/rescale.hpp"
#include "charm/runtime.hpp"
#include "common/piecewise_linear.hpp"

namespace ehpc::apps {

/// One strong-scaling measurement: steady-state time per step at a replica
/// count. These curves feed the scheduler simulator (paper §4.3.1: "We use
/// strong scaling performance measurements ... to model the runtime of a job
/// for a given number of replicas using a piecewise linear function").
struct ScalingPoint {
  int replicas = 0;
  double time_per_step_s = 0.0;
};

/// Canonical Jacobi configuration for a given model grid size: 16×16 blocks
/// (4× overdecomposition at 64 PEs), suitable for all four paper job sizes.
JacobiConfig jacobi_for_grid(int grid_n, int max_iterations = 12);

/// Run Jacobi2D on the minicharm runtime at each replica count and measure
/// the steady-state time per iteration (first iteration discarded as warmup).
std::vector<ScalingPoint> measure_jacobi_scaling(
    int grid_n, const std::vector<int>& replica_counts, int iterations = 12,
    charm::RuntimeConfig base = {});

/// Same measurement for LeanMD.
std::vector<ScalingPoint> measure_leanmd_scaling(
    LeanMdConfig config, const std::vector<int>& replica_counts,
    charm::RuntimeConfig base = {});

/// Run Jacobi2D at `from_replicas`, post a CCS rescale to `to_replicas`
/// after `warmup_iterations`, and return the per-stage timing (paper §4.2).
charm::RescaleTiming measure_jacobi_rescale(int grid_n, int from_replicas,
                                            int to_replicas,
                                            int warmup_iterations = 3,
                                            charm::RuntimeConfig base = {});

/// Piecewise-linear time-per-step(replicas) curve from scaling points.
PiecewiseLinear scaling_curve(const std::vector<ScalingPoint>& points);

}  // namespace ehpc::apps
