#pragma once

#include <vector>

#include "apps/amr.hpp"
#include "apps/graph.hpp"
#include "apps/jacobi2d.hpp"
#include "apps/leanmd.hpp"
#include "charm/rescale.hpp"
#include "charm/runtime.hpp"
#include "common/piecewise_linear.hpp"

namespace ehpc::apps {

/// One strong-scaling measurement: steady-state time per step at a replica
/// count. These curves feed the scheduler simulator (paper §4.3.1: "We use
/// strong scaling performance measurements ... to model the runtime of a job
/// for a given number of replicas using a piecewise linear function").
struct ScalingPoint {
  int replicas = 0;
  double time_per_step_s = 0.0;
};

/// Canonical Jacobi configuration for a given model grid size: 16×16 blocks
/// (4× overdecomposition at 64 PEs), suitable for all four paper job sizes.
JacobiConfig jacobi_for_grid(int grid_n, int max_iterations = 12);

/// Run Jacobi2D on the minicharm runtime at each replica count and measure
/// the steady-state time per iteration (first iteration discarded as warmup).
std::vector<ScalingPoint> measure_jacobi_scaling(
    int grid_n, const std::vector<int>& replica_counts, int iterations = 12,
    charm::RuntimeConfig base = {});

/// Same measurement for LeanMD.
std::vector<ScalingPoint> measure_leanmd_scaling(
    LeanMdConfig config, const std::vector<int>& replica_counts,
    charm::RuntimeConfig base = {});

/// Run Jacobi2D at `from_replicas`, post a CCS rescale to `to_replicas`
/// after `warmup_iterations`, and return the per-stage timing (paper §4.2).
charm::RescaleTiming measure_jacobi_rescale(int grid_n, int from_replicas,
                                            int to_replicas,
                                            int warmup_iterations = 3,
                                            charm::RuntimeConfig base = {});

/// Same measurement for the AMR workload. Scaling is averaged over the whole
/// run (not just steady state): the adapting mesh has no steady state, so
/// the mean step time is the honest calibration target. `lb_period` > 0 runs
/// the configured load balancer every that many iterations, so the measured
/// step time reflects the strategy's balancing quality *and* its cost —
/// that is what differentiates null/greedy/refine on an irregular app.
std::vector<ScalingPoint> measure_amr_scaling(
    AmrConfig config, const std::vector<int>& replica_counts,
    int lb_period = 0, charm::RuntimeConfig base = {});

/// Run the AMR workload at `from_replicas` with the front well developed,
/// then rescale to `to_replicas` — the rescale's LB stage sees a heavily
/// imbalanced object set, unlike the Jacobi measurement.
charm::RescaleTiming measure_amr_rescale(AmrConfig config, int from_replicas,
                                         int to_replicas,
                                         int warmup_iterations = 8,
                                         charm::RuntimeConfig base = {});

/// Imbalance profile of one AMR run with periodic load balancing: the mean
/// pre/post-LB max/avg load ratios and migrations per LB step reported by
/// the runtime's `lb_history()`.
struct LbProfile {
  double pre_ratio = 1.0;         ///< mean max/avg PE load before an LB step
  double post_ratio = 1.0;        ///< mean max/avg PE load after an LB step
  double migrations_per_step = 0.0;
  int lb_steps = 0;
};

LbProfile measure_amr_lb_profile(AmrConfig config, int replicas,
                                 int lb_period = 5,
                                 charm::RuntimeConfig base = {});

/// Same measurements for the power-law graph workload. The mean step time
/// is taken over the whole run (supersteps slow down as hub parts contend
/// for uplinks, then speed up after LB migrations) — pass a contention
/// NetworkModel in `base` to make placement quality visible in the number.
std::vector<ScalingPoint> measure_graph_scaling(
    GraphConfig config, const std::vector<int>& replica_counts,
    int lb_period = 0, charm::RuntimeConfig base = {});

LbProfile measure_graph_lb_profile(GraphConfig config, int replicas,
                                   int lb_period = 4,
                                   charm::RuntimeConfig base = {});

/// Piecewise-linear time-per-step(replicas) curve from scaling points.
PiecewiseLinear scaling_curve(const std::vector<ScalingPoint>& points);

}  // namespace ehpc::apps
