#include "apps/driver.hpp"

#include <utility>

#include "common/error.hpp"

namespace ehpc::apps {

IterationDriver::IterationDriver(charm::Runtime& rt, charm::ArrayId array,
                                 int max_iterations, Kick kick)
    : rt_(rt), array_(array), max_iterations_(max_iterations),
      kick_(std::move(kick)) {
  EHPC_EXPECTS(max_iterations_ > 0);
  EHPC_EXPECTS(kick_ != nullptr);
}

void IterationDriver::start() {
  rt_.set_reduction_client(
      array_, [this](double value, charm::Runtime&) { on_reduction(value); });
  rt_.set_restart_handler([this](charm::Runtime&) { resume_after_restart(); });
  // The iteration counter must survive failures: carry it in checkpoints.
  rt_.set_app_state_pup([this](charm::Pup& p) { p | iteration_; });
  kick_(0);
}

void IterationDriver::set_disk_checkpoint_period(int period) {
  EHPC_EXPECTS(period >= 0);
  disk_checkpoint_period_ = period;
}

void IterationDriver::at_iteration(int iteration,
                                   std::function<void(charm::Runtime&)> fn) {
  EHPC_EXPECTS(fn != nullptr);
  hooks_[iteration] = std::move(fn);
}

void IterationDriver::on_reduction(double value) {
  last_value_ = value;
  end_times_.push_back(rt_.now());
  ++iteration_;
  if (auto it = hooks_.find(iteration_); it != hooks_.end()) {
    auto fn = std::move(it->second);
    hooks_.erase(it);
    fn(rt_);
  }
  if (iteration_ >= max_iterations_) {
    finished_ = true;
    if (on_complete_) on_complete_();
    return;
  }
  // Iteration boundary = quiescent point: honour a pending rescale command.
  // The restart handler re-kicks the current iteration after restore.
  if (rt_.poll_rescale()) {
    rescale_iterations_.push_back(iteration_);
    return;
  }
  if (disk_checkpoint_period_ > 0 && iteration_ % disk_checkpoint_period_ == 0) {
    rt_.disk_checkpoint_then([this](charm::Runtime&) { kick_(iteration_); });
    return;
  }
  if (lb_period_ > 0 && iteration_ % lb_period_ == 0) {
    rt_.load_balance_then(
        [this](charm::Runtime&) { kick_(iteration_); });
    return;
  }
  kick_(iteration_);
}

void IterationDriver::resume_after_restart() {
  if (finished_) return;
  kick_(iteration_);
}

}  // namespace ehpc::apps
