#pragma once

#include <functional>
#include <map>
#include <vector>

#include "charm/runtime.hpp"

namespace ehpc::apps {

/// Drives an iterative chare-array application: broadcast "start iteration",
/// wait for the array-wide reduction, repeat — polling the CCS mailbox for
/// rescale commands at every iteration boundary (the "next load-balancing
/// step" where Charm++ honours shrink/expand signals).
///
/// Both Jacobi2D and LeanMD use this driver; they differ only in their
/// element logic and in the `kick` they install.
class IterationDriver {
 public:
  /// `kick(iteration)` must broadcast whatever makes every element of
  /// `array` eventually contribute exactly once.
  using Kick = std::function<void(int iteration)>;
  using Completion = std::function<void()>;

  IterationDriver(charm::Runtime& rt, charm::ArrayId array, int max_iterations,
                  Kick kick);

  /// Begin iteration 0. Installs the reduction client and restart handler.
  void start();

  /// Invoked once `max_iterations` have completed.
  void set_on_complete(Completion fn) { on_complete_ = std::move(fn); }

  /// Run the configured load balancer every `period` iterations (0 = never).
  void set_lb_period(int period) { lb_period_ = period; }

  /// Run `fn` when iteration `iteration` completes, before rescale polling.
  /// Benches use this to post CCS rescale requests at exact iterations.
  void at_iteration(int iteration, std::function<void(charm::Runtime&)> fn);

  /// Checkpoint to disk every `period` iterations (paper §3.2.2 fault
  /// tolerance; 0 = never). The driver's iteration counter rides along in
  /// the checkpoint, so a recovery resumes from the checkpointed iteration.
  void set_disk_checkpoint_period(int period);

  int iterations_done() const { return iteration_; }
  bool finished() const { return finished_; }

  /// Virtual time at which each completed iteration's reduction fired.
  const std::vector<double>& iteration_end_times() const { return end_times_; }

  /// Most recent reduction value (e.g. residual or energy).
  double last_reduction_value() const { return last_value_; }

  /// Iterations at whose boundary a rescale was executed.
  const std::vector<int>& rescale_iterations() const { return rescale_iterations_; }

 private:
  void on_reduction(double value);
  void resume_after_restart();

  charm::Runtime& rt_;
  charm::ArrayId array_;
  int max_iterations_;
  Kick kick_;
  Completion on_complete_;
  int lb_period_ = 0;
  int disk_checkpoint_period_ = 0;
  int iteration_ = 0;
  bool finished_ = false;
  double last_value_ = 0.0;
  std::vector<double> end_times_;
  std::vector<int> rescale_iterations_;
  std::map<int, std::function<void(charm::Runtime&)>> hooks_;
};

}  // namespace ehpc::apps
