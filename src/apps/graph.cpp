#include "apps/graph.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace ehpc::apps {

using charm::Chare;
using charm::Pup;
using charm::ReduceOp;
using charm::Runtime;

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double Graph::stub_draw(unsigned seed, int vertex, int k) {
  std::uint64_t key = static_cast<std::uint64_t>(seed);
  key = splitmix64(key ^ (static_cast<std::uint64_t>(vertex) << 32));
  key = splitmix64(key ^ static_cast<std::uint64_t>(k));
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(key >> 11) * 0x1.0p-53;
}

GraphPart::GraphPart(std::shared_ptr<const GraphPartTopo> topo)
    : topo_(std::move(topo)) {
  EHPC_EXPECTS(topo_ != nullptr);
  ranks_.assign(static_cast<std::size_t>(topo_->num_vertices), 1.0);
  inbox_.resize(topo_->in_peers.size());
}

void GraphPart::pup(Pup& p) {
  p | ranks_;
  p | inbox_;
  p | iteration_;
  p | recv_count_;
  p | started_;
}

std::vector<double> GraphPart::scatter_values(
    const GraphPartTopo::OutPeer& peer) const {
  std::vector<double> out;
  out.reserve(peer.src_local.size());
  for (const int src : peer.src_local) {
    const auto i = static_cast<std::size_t>(src);
    out.push_back(ranks_[i] * topo_->inv_outdeg[i]);
  }
  return out;
}

void GraphPart::receive(int slot, std::vector<double> values) {
  auto& box = inbox_[static_cast<std::size_t>(slot)];
  EHPC_EXPECTS(box.empty());  // one message per peer per superstep
  box = std::move(values);
  ++recv_count_;
}

double GraphPart::compute() {
  const auto n = static_cast<std::size_t>(topo_->num_vertices);
  std::vector<double> acc(n, 0.0);
  // Local edges first, then remote contributions in ascending source-part
  // order: the summation order is a function of the graph alone, never of
  // message arrival order, so ranks are bit-identical across placements.
  for (const auto& [src, dst] : topo_->local_edges) {
    const auto s = static_cast<std::size_t>(src);
    acc[static_cast<std::size_t>(dst)] += ranks_[s] * topo_->inv_outdeg[s];
  }
  for (std::size_t i = 0; i < topo_->in_peers.size(); ++i) {
    const auto& peer = topo_->in_peers[i];
    const auto& box = inbox_[i];
    EHPC_ENSURES(box.size() == peer.dst_local.size());
    for (std::size_t j = 0; j < box.size(); ++j) {
      acc[static_cast<std::size_t>(peer.dst_local[j])] += box[j];
    }
    inbox_[i].clear();
  }
  double active = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    const double next = 0.15 + 0.85 * acc[v];
    if (std::abs(next - ranks_[v]) > Graph::kActiveThreshold) active += 1.0;
    ranks_[v] = next;
  }
  ++iteration_;
  recv_count_ = 0;
  started_ = false;
  return active;
}

Graph::Graph(Runtime& rt, GraphConfig config) : rt_(rt), config_(config) {
  EHPC_EXPECTS(config_.vertices >= 2);
  EHPC_EXPECTS(config_.parts >= 1 && config_.parts <= config_.vertices);
  EHPC_EXPECTS(config_.skew >= 0.0);
  EHPC_EXPECTS(config_.avg_degree >= 1.0);
  EHPC_EXPECTS(config_.max_iterations > 0);
  EHPC_EXPECTS(config_.flops_per_edge >= 0.0);

  build_topology();

  auto topos = topos_;
  array_ = rt_.create_array("graph", config_.parts,
                            [topos](charm::ElementId e) {
                              // Ranks restart fresh; pup overwrites them when
                              // the factory rebuilds an element after a
                              // restart. The immutable topology re-attaches.
                              return std::make_unique<GraphPart>(
                                  (*topos)[static_cast<std::size_t>(e)]);
                            });

  driver_ = std::make_unique<IterationDriver>(
      rt_, array_, config_.max_iterations, [this](int iter) { kick(iter); });
}

int Graph::part_of(int vertex) const {
  EHPC_EXPECTS(vertex >= 0 && vertex < config_.vertices);
  const auto it =
      std::upper_bound(part_first_.begin(), part_first_.end(), vertex);
  return static_cast<int>(it - part_first_.begin()) - 1;
}

void Graph::build_topology() {
  const int v_count = config_.vertices;
  const int p_count = config_.parts;

  // Contiguous ranges; the first (vertices % parts) parts take the extra
  // vertex. Hubs (low vertex ids) therefore pile into the low parts.
  part_first_.assign(static_cast<std::size_t>(p_count) + 1, 0);
  const int base = v_count / p_count;
  const int rem = v_count % p_count;
  for (int p = 0; p < p_count; ++p) {
    part_first_[static_cast<std::size_t>(p) + 1] =
        part_first_[static_cast<std::size_t>(p)] + base + (p < rem ? 1 : 0);
  }
  std::vector<int> part_of_vertex(static_cast<std::size_t>(v_count));
  for (int p = 0; p < p_count; ++p) {
    for (int v = part_first_[static_cast<std::size_t>(p)];
         v < part_first_[static_cast<std::size_t>(p) + 1]; ++v) {
      part_of_vertex[static_cast<std::size_t>(v)] = p;
    }
  }

  // Chung-Lu style degrees: vertex u gets weight (u+1)^(-skew); out-degrees
  // split the target edge budget proportionally (at least one stub each).
  const double s = config_.skew;
  double total_weight = 0.0;
  std::vector<double> weight(static_cast<std::size_t>(v_count));
  for (int u = 0; u < v_count; ++u) {
    weight[static_cast<std::size_t>(u)] =
        std::pow(static_cast<double>(u + 1), -s);
    total_weight += weight[static_cast<std::size_t>(u)];
  }
  const double edge_budget =
      static_cast<double>(v_count) * config_.avg_degree;
  out_degree_.assign(static_cast<std::size_t>(v_count), 1);
  for (int u = 0; u < v_count; ++u) {
    out_degree_[static_cast<std::size_t>(u)] = std::max(
        1, static_cast<int>(std::lround(
               edge_budget * weight[static_cast<std::size_t>(u)] /
               total_weight)));
    max_out_degree_ =
        std::max(max_out_degree_, out_degree_[static_cast<std::size_t>(u)]);
  }

  // Inverse-CDF target sampling over the same weights: density ∝ t^(-s) on
  // [1, N+1], so hubs also attract in-edges. The near-1 exponent uses the
  // logarithmic CDF branch to avoid the 1/(1-s) pole.
  const double n1 = static_cast<double>(v_count) + 1.0;
  const auto draw_target = [&](double r) {
    double x;
    if (std::abs(1.0 - s) < 1.0e-9) {
      x = std::pow(n1, r);
    } else {
      x = std::pow(1.0 + r * (std::pow(n1, 1.0 - s) - 1.0), 1.0 / (1.0 - s));
    }
    const int v = static_cast<int>(x) - 1;
    return std::clamp(v, 0, v_count - 1);
  };

  auto topos =
      std::make_shared<std::vector<std::shared_ptr<const GraphPartTopo>>>();
  std::vector<GraphPartTopo> build(static_cast<std::size_t>(p_count));
  // Cross-edge accumulation keyed (src part, dst part); ordered map keeps
  // peer lists in ascending part order.
  std::map<std::pair<int, int>, std::pair<std::vector<int>, std::vector<int>>>
      cross;
  for (int p = 0; p < p_count; ++p) {
    auto& t = build[static_cast<std::size_t>(p)];
    t.first_vertex = part_first_[static_cast<std::size_t>(p)];
    t.num_vertices = part_first_[static_cast<std::size_t>(p) + 1] -
                     part_first_[static_cast<std::size_t>(p)];
    t.inv_outdeg.resize(static_cast<std::size_t>(t.num_vertices));
  }

  // One pass in (vertex ascending, stub ascending) order: the send-side
  // value order and receive-side index order are the same enumeration.
  for (int u = 0; u < v_count; ++u) {
    const int p = part_of_vertex[static_cast<std::size_t>(u)];
    auto& tp = build[static_cast<std::size_t>(p)];
    const int u_local = u - tp.first_vertex;
    const int deg = out_degree_[static_cast<std::size_t>(u)];
    tp.inv_outdeg[static_cast<std::size_t>(u_local)] =
        1.0 / static_cast<double>(deg);
    tp.total_out_edges += deg;
    for (int k = 0; k < deg; ++k) {
      int v = draw_target(stub_draw(config_.seed, u, k));
      if (v == u) v = (v + 1) % v_count;  // no self-loops
      ++total_edges_;
      const int q = part_of_vertex[static_cast<std::size_t>(v)];
      const int v_local = v - build[static_cast<std::size_t>(q)].first_vertex;
      if (q == p) {
        tp.local_edges.push_back({u_local, v_local});
      } else {
        ++cut_edges_;
        auto& lists = cross[{p, q}];
        lists.first.push_back(u_local);
        lists.second.push_back(v_local);
      }
    }
  }

  // Materialize peer lists. in_peers first (ascending source part via a
  // per-destination sweep of the ordered map), recording each receiver
  // slot; out_peers then link to those slots.
  std::map<std::pair<int, int>, int> slot_of;  // (src, dst) -> in_peers index
  for (auto& [key, lists] : cross) {
    const auto [p, q] = key;
    auto& tq = build[static_cast<std::size_t>(q)];
    slot_of[key] = static_cast<int>(tq.in_peers.size());
    GraphPartTopo::InPeer in;
    in.part = p;
    in.dst_local = std::move(lists.second);
    tq.in_peers.push_back(std::move(in));
  }
  for (auto& [key, lists] : cross) {
    const auto [p, q] = key;
    GraphPartTopo::OutPeer out;
    out.part = q;
    out.dst_slot = slot_of[key];
    out.src_local = std::move(lists.first);
    build[static_cast<std::size_t>(p)].out_peers.push_back(std::move(out));
  }
  // The map iterates (p, q) lexicographically, so each part's in_peers are
  // ascending in source part and out_peers ascending in destination part.

  topos->reserve(build.size());
  for (auto& t : build) {
    topos->push_back(std::make_shared<const GraphPartTopo>(std::move(t)));
  }
  topos_ = std::move(topos);
}

std::vector<double> Graph::ranks() const {
  std::vector<double> out(static_cast<std::size_t>(config_.vertices), 0.0);
  for (int p = 0; p < config_.parts; ++p) {
    const auto& part =
        static_cast<const GraphPart&>(rt_.element(array_, p));
    const auto& topo = part.topo();
    for (int v = 0; v < topo.num_vertices; ++v) {
      out[static_cast<std::size_t>(topo.first_vertex + v)] = part.rank(v);
    }
  }
  return out;
}

void Graph::send_updates(int part) {
  auto& src = static_cast<GraphPart&>(rt_.element(array_, part));
  const auto& topo = src.topo();
  for (const auto& peer : topo.out_peers) {
    std::vector<double> values = src.scatter_values(peer);
    // Model message: one (index, value) record per edge, like a real CSR
    // update packet.
    const std::size_t bytes = 16 * values.size();
    const int slot = peer.dst_slot;
    rt_.send(array_, peer.part, bytes,
             [this, slot, values = std::move(values)](Chare& c, Runtime& rt) {
               auto& p = static_cast<GraphPart&>(c);
               // Combine work scales with the incoming edge count.
               rt.charge_flops(config_.flops_per_edge *
                               static_cast<double>(values.size()));
               p.receive(slot, values);
               maybe_compute(p, rt);
             });
  }
}

void Graph::maybe_compute(GraphPart& p, Runtime& rt) {
  if (!p.ready_to_compute()) return;
  const auto& topo = p.topo();
  // Local scatter/gather plus the damped update over the range.
  rt.charge_flops(config_.flops_per_edge *
                      static_cast<double>(topo.local_edges.size()) +
                  4.0 * static_cast<double>(topo.num_vertices));
  const double active = p.compute();
  rt.contribute(array_, active, ReduceOp::kSum);
}

void Graph::kick(int /*iteration*/) {
  // "Start superstep": every part scatters rank/degree along its out-edges,
  // then updates once all expected peer messages arrive.
  for (int e = 0; e < config_.parts; ++e) {
    rt_.send(array_, e, /*bytes=*/16, [this, e](Chare& c, Runtime& rt) {
      auto& part = static_cast<GraphPart&>(c);
      part.mark_started();
      // The scatter evaluation walks every out-edge once.
      rt.charge_flops(config_.flops_per_edge *
                      static_cast<double>(part.topo().total_out_edges));
      send_updates(e);
      maybe_compute(part, rt);
    });
  }
}

}  // namespace ehpc::apps
