#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "apps/driver.hpp"
#include "charm/runtime.hpp"

namespace ehpc::apps {

/// Configuration of the power-law graph workload: pagerank-style supersteps
/// over a deterministic Chung-Lu graph. Vertex u carries weight
/// (u+1)^(-skew); both out-degrees and edge targets follow the weights, so
/// low-numbered vertices are hubs that concentrate message volume. The
/// graph is partitioned into `parts` contiguous vertex ranges (one chare
/// each), which piles the hub traffic into the low parts — the placement
/// problem a comm-aware load balancer exists to solve.
///
/// Everything is counter-based (splitmix64 on (seed, vertex, stub)): the
/// edge set, and therefore every rank value, is a pure function of the
/// config — independent of placement, PE count, or sweep threading.
struct GraphConfig {
  int vertices = 4096;
  int parts = 64;             ///< chare count (contiguous vertex ranges)
  double skew = 0.8;          ///< power-law exponent; 0 = uniform degrees
  double avg_degree = 8.0;    ///< target mean out-degree
  int max_iterations = 16;    ///< supersteps to run
  double flops_per_edge = 8.0;
  unsigned seed = 2025;       ///< edge-generation stream seed
};

/// Immutable per-part graph structure, shared by the element factory (it
/// survives restarts; pup only carries the mutable rank state). All edge
/// lists are in global generation order — (vertex ascending, stub
/// ascending) — so send-side value order and receive-side index order agree
/// by construction, and contributions apply in a placement-independent
/// order.
struct GraphPartTopo {
  int first_vertex = 0;
  int num_vertices = 0;
  /// 1 / out-degree per local vertex (the pagerank scatter factor).
  std::vector<double> inv_outdeg;
  /// Intra-part edges as (src local index, dst local index).
  std::vector<std::pair<int, int>> local_edges;
  struct OutPeer {
    int part = 0;      ///< destination part
    int dst_slot = 0;  ///< index of this sender in the destination's in_peers
    std::vector<int> src_local;  ///< source local index per edge
  };
  struct InPeer {
    int part = 0;                ///< source part
    std::vector<int> dst_local;  ///< destination local index per edge
  };
  std::vector<OutPeer> out_peers;  ///< ascending destination part id
  std::vector<InPeer> in_peers;    ///< ascending source part id
  std::int64_t total_out_edges = 0;  ///< local + cross (sender flops)
};

/// One graph partition: the ranks of its vertex range plus superstep gates.
/// Migratable; the topology is shared immutable state re-attached by the
/// element factory after restarts.
class GraphPart final : public charm::Chare {
 public:
  explicit GraphPart(std::shared_ptr<const GraphPartTopo> topo);

  void pup(charm::Pup& p) override;

  const GraphPartTopo& topo() const { return *topo_; }
  int iteration() const { return iteration_; }
  double rank(int local) const {
    return ranks_[static_cast<std::size_t>(local)];
  }

  void mark_started() { started_ = true; }
  bool ready_to_compute() const {
    return started_ &&
           recv_count_ >= static_cast<int>(topo_->in_peers.size());
  }

  /// Scatter values for one outgoing peer, in that peer's edge order.
  std::vector<double> scatter_values(const GraphPartTopo::OutPeer& peer) const;

  /// Install a neighbour part's contributions (slot = our in_peers index).
  void receive(int slot, std::vector<double> values);

  /// One pagerank update over the local range: apply local edges, then the
  /// inbox in ascending source-part order (fixed FP order regardless of
  /// message arrival order), damp, and return the number of vertices whose
  /// rank moved by more than the convergence threshold. Resets the gates.
  double compute();

 private:
  std::shared_ptr<const GraphPartTopo> topo_;
  std::vector<double> ranks_;
  std::vector<std::vector<double>> inbox_;  ///< aligned with topo_->in_peers
  int iteration_ = 0;
  int recv_count_ = 0;
  bool started_ = false;
};

/// The graph application: generates the Chung-Lu edge set, partitions it,
/// wires the superstep messaging and the active-vertex reduction, and
/// drives supersteps through an IterationDriver (so rescales and periodic
/// load balancing are honoured at superstep boundaries).
class Graph {
 public:
  Graph(charm::Runtime& rt, GraphConfig config);

  /// Kick superstep 0. Call `rt.run()` (or run_until) afterwards.
  void start() { driver_->start(); }

  IterationDriver& driver() { return *driver_; }
  const IterationDriver& driver() const { return *driver_; }

  charm::ArrayId array() const { return array_; }
  const GraphConfig& config() const { return config_; }

  // ---- graph shape (tests and benches) ----
  std::int64_t total_edges() const { return total_edges_; }
  std::int64_t cut_edges() const { return cut_edges_; }
  int max_out_degree() const { return max_out_degree_; }
  int out_degree(int vertex) const {
    return out_degree_[static_cast<std::size_t>(vertex)];
  }
  int part_of(int vertex) const;
  const GraphPartTopo& part_topo(int part) const {
    return *(*topos_)[static_cast<std::size_t>(part)];
  }

  /// Snapshot of every vertex rank in vertex order (driver-side gather;
  /// placement-independence tests compare this across PE counts).
  std::vector<double> ranks() const;

  /// Active vertices reported by the last completed superstep.
  double active_last_iteration() const {
    return driver_->last_reduction_value();
  }

  /// Deterministic draw in [0, 1) for stub `k` of `vertex`: a splitmix64
  /// hash of (seed, vertex, k), so the edge set is placement-independent.
  static double stub_draw(unsigned seed, int vertex, int k);

  /// Rank-update convergence threshold used by the active-vertex count.
  static constexpr double kActiveThreshold = 1.0e-6;

 private:
  void build_topology();
  void kick(int iteration);
  void send_updates(int part);
  void maybe_compute(GraphPart& p, charm::Runtime& rt);

  charm::Runtime& rt_;
  GraphConfig config_;
  std::shared_ptr<std::vector<std::shared_ptr<const GraphPartTopo>>> topos_;
  std::vector<int> part_first_;  ///< first vertex of each part, plus end
  std::vector<int> out_degree_;
  std::int64_t total_edges_ = 0;
  std::int64_t cut_edges_ = 0;
  int max_out_degree_ = 0;
  charm::ArrayId array_ = -1;
  std::unique_ptr<IterationDriver> driver_;
};

}  // namespace ehpc::apps
