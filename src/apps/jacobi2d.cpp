#include "apps/jacobi2d.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace ehpc::apps {

using charm::Chare;
using charm::Pup;
using charm::ReduceOp;
using charm::Runtime;

JacobiBlock::Dir JacobiBlock::opposite(Dir d) {
  switch (d) {
    case kLeft: return kRight;
    case kRight: return kLeft;
    case kUp: return kDown;
    case kDown: return kUp;
  }
  return kLeft;
}

JacobiBlock::JacobiBlock(int real_w, int real_h, int num_neighbors,
                         bool top_boundary)
    : real_w_(real_w), real_h_(real_h), num_neighbors_(num_neighbors) {
  EHPC_EXPECTS(real_w_ >= 1 && real_h_ >= 1);
  grid_.assign(static_cast<std::size_t>((real_w_ + 2) * (real_h_ + 2)), 0.0);
  next_ = grid_;
  if (top_boundary) {
    // Fixed hot boundary drives the steady-state heat solution.
    for (int x = 0; x < real_w_ + 2; ++x) at(x, 0) = 1.0;
  }
}

double& JacobiBlock::at(int gx, int gy) {
  return grid_[static_cast<std::size_t>(gy * (real_w_ + 2) + gx)];
}

double JacobiBlock::at(int gx, int gy) const {
  return grid_[static_cast<std::size_t>(gy * (real_w_ + 2) + gx)];
}

double JacobiBlock::cell(int x, int y) const { return at(x + 1, y + 1); }

void JacobiBlock::pup(Pup& p) {
  p | real_w_;
  p | real_h_;
  p | num_neighbors_;
  p | iteration_;
  p | recv_count_;
  p | started_;
  p | grid_;
  if (p.unpacking()) next_.assign(grid_.size(), 0.0);
}

std::vector<double> JacobiBlock::strip(Dir d) const {
  std::vector<double> out;
  switch (d) {
    case kLeft:
      out.reserve(static_cast<std::size_t>(real_h_));
      for (int y = 1; y <= real_h_; ++y) out.push_back(at(1, y));
      break;
    case kRight:
      out.reserve(static_cast<std::size_t>(real_h_));
      for (int y = 1; y <= real_h_; ++y) out.push_back(at(real_w_, y));
      break;
    case kUp:
      out.reserve(static_cast<std::size_t>(real_w_));
      for (int x = 1; x <= real_w_; ++x) out.push_back(at(x, 1));
      break;
    case kDown:
      out.reserve(static_cast<std::size_t>(real_w_));
      for (int x = 1; x <= real_w_; ++x) out.push_back(at(x, real_h_));
      break;
  }
  return out;
}

void JacobiBlock::apply_ghost(Dir d, const std::vector<double>& values) {
  switch (d) {
    case kLeft:
      EHPC_EXPECTS(values.size() == static_cast<std::size_t>(real_h_));
      for (int y = 1; y <= real_h_; ++y) at(0, y) = values[static_cast<std::size_t>(y - 1)];
      break;
    case kRight:
      EHPC_EXPECTS(values.size() == static_cast<std::size_t>(real_h_));
      for (int y = 1; y <= real_h_; ++y)
        at(real_w_ + 1, y) = values[static_cast<std::size_t>(y - 1)];
      break;
    case kUp:
      EHPC_EXPECTS(values.size() == static_cast<std::size_t>(real_w_));
      for (int x = 1; x <= real_w_; ++x) at(x, 0) = values[static_cast<std::size_t>(x - 1)];
      break;
    case kDown:
      EHPC_EXPECTS(values.size() == static_cast<std::size_t>(real_w_));
      for (int x = 1; x <= real_w_; ++x)
        at(x, real_h_ + 1) = values[static_cast<std::size_t>(x - 1)];
      break;
  }
  ++recv_count_;
}

double JacobiBlock::compute() {
  double residual = 0.0;
  for (int y = 1; y <= real_h_; ++y) {
    for (int x = 1; x <= real_w_; ++x) {
      const double v =
          0.25 * (at(x - 1, y) + at(x + 1, y) + at(x, y - 1) + at(x, y + 1));
      next_[static_cast<std::size_t>(y * (real_w_ + 2) + x)] = v;
      residual = std::max(residual, std::abs(v - at(x, y)));
    }
  }
  // Interior swap only; ghost and boundary rows stay as-is.
  for (int y = 1; y <= real_h_; ++y) {
    for (int x = 1; x <= real_w_; ++x) {
      at(x, y) = next_[static_cast<std::size_t>(y * (real_w_ + 2) + x)];
    }
  }
  ++iteration_;
  recv_count_ = 0;
  started_ = false;
  return residual;
}

Jacobi2D::Jacobi2D(Runtime& rt, JacobiConfig config)
    : rt_(rt), config_(config) {
  EHPC_EXPECTS(config_.grid_n > 0);
  EHPC_EXPECTS(config_.blocks_x > 0 && config_.blocks_y > 0);
  EHPC_EXPECTS(config_.grid_n % config_.blocks_x == 0);
  EHPC_EXPECTS(config_.grid_n % config_.blocks_y == 0);
  EHPC_EXPECTS(config_.max_real_block >= 4);

  model_block_w_ = config_.grid_n / config_.blocks_x;
  model_block_h_ = config_.grid_n / config_.blocks_y;
  real_block_w_ = std::min(model_block_w_, config_.max_real_block);
  real_block_h_ = std::min(model_block_h_, config_.max_real_block);
  flops_per_block_ = config_.flops_per_cell *
                     static_cast<double>(model_block_w_) *
                     static_cast<double>(model_block_h_);
  strip_bytes_x_ = static_cast<std::size_t>(model_block_w_) * sizeof(double);
  strip_bytes_y_ = static_cast<std::size_t>(model_block_h_) * sizeof(double);

  const int bx_count = config_.blocks_x;
  const int n_blocks = config_.blocks_x * config_.blocks_y;
  array_ = rt_.create_array(
      "jacobi", n_blocks, [this, bx_count](charm::ElementId e) {
        const int bx = e % bx_count;
        const int by = e / bx_count;
        const bool top = (by == 0);
        return std::make_unique<JacobiBlock>(real_block_w_, real_block_h_,
                                             neighbor_count(bx, by), top);
      });

  // Checkpoint/migration costs are charged at model scale.
  const double model_block_bytes = static_cast<double>(model_block_w_) *
                                   static_cast<double>(model_block_h_) *
                                   sizeof(double);
  const double real_block_bytes =
      static_cast<double>((real_block_w_ + 2) * (real_block_h_ + 2)) *
      sizeof(double);
  rt_.set_bytes_scale(array_, std::max(1.0, model_block_bytes / real_block_bytes));

  driver_ = std::make_unique<IterationDriver>(
      rt_, array_, config_.max_iterations, [this](int iter) { kick(iter); });
}

int Jacobi2D::neighbor_count(int bx, int by) const {
  int count = 0;
  if (bx > 0) ++count;
  if (bx + 1 < config_.blocks_x) ++count;
  if (by > 0) ++count;
  if (by + 1 < config_.blocks_y) ++count;
  return count;
}

double Jacobi2D::model_bytes() const {
  return static_cast<double>(config_.grid_n) *
         static_cast<double>(config_.grid_n) * sizeof(double);
}

void Jacobi2D::maybe_compute(JacobiBlock& block, Runtime& rt) {
  if (!block.ready_to_compute()) return;
  rt.charge_flops(flops_per_block_);
  const double res = block.compute();
  rt.contribute(array_, res, ReduceOp::kMax);
}

void Jacobi2D::send_strip(int from_bx, int from_by, JacobiBlock::Dir d) {
  int to_bx = from_bx;
  int to_by = from_by;
  switch (d) {
    case JacobiBlock::kLeft: --to_bx; break;
    case JacobiBlock::kRight: ++to_bx; break;
    case JacobiBlock::kUp: --to_by; break;
    case JacobiBlock::kDown: ++to_by; break;
  }
  if (to_bx < 0 || to_bx >= config_.blocks_x || to_by < 0 ||
      to_by >= config_.blocks_y) {
    return;
  }
  auto& from = static_cast<JacobiBlock&>(
      rt_.element(array_, block_index(from_bx, from_by)));
  std::vector<double> data = from.strip(d);
  const std::size_t bytes =
      (d == JacobiBlock::kUp || d == JacobiBlock::kDown) ? strip_bytes_x_
                                                         : strip_bytes_y_;
  const JacobiBlock::Dir recv_dir = JacobiBlock::opposite(d);
  rt_.send(array_, block_index(to_bx, to_by), bytes,
           [this, recv_dir, data = std::move(data)](Chare& c, Runtime& rt) {
             auto& block = static_cast<JacobiBlock&>(c);
             block.apply_ghost(recv_dir, data);
             maybe_compute(block, rt);
           });
}

void Jacobi2D::kick(int /*iteration*/) {
  // "Start iteration": every block publishes its boundary strips, then
  // computes once all its ghosts arrive. A block never computes before it
  // has published (started_ gate), so neighbours always read last
  // iteration's boundary.
  for (int by = 0; by < config_.blocks_y; ++by) {
    for (int bx = 0; bx < config_.blocks_x; ++bx) {
      rt_.send(array_, block_index(bx, by), /*bytes=*/16,
               [this, bx, by](Chare& c, Runtime& rt) {
                 auto& block = static_cast<JacobiBlock&>(c);
                 block.mark_started();
                 send_strip(bx, by, JacobiBlock::kLeft);
                 send_strip(bx, by, JacobiBlock::kRight);
                 send_strip(bx, by, JacobiBlock::kUp);
                 send_strip(bx, by, JacobiBlock::kDown);
                 maybe_compute(block, rt);
               });
    }
  }
}

}  // namespace ehpc::apps
