#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "apps/driver.hpp"
#include "charm/runtime.hpp"

namespace ehpc::apps {

/// Configuration of the 2D Jacobi heat-equation solver (paper §4.1):
/// a `grid_n` × `grid_n` model grid decomposed into `blocks_x` × `blocks_y`
/// chares, iterating a 5-point stencil. Communication-intensive.
///
/// Resolution scaling: each block *executes* a real grid capped at
/// `max_real_block` cells per edge while declaring the model-size flops,
/// message bytes and checkpoint bytes to the machine model. Small problems
/// run at full resolution; a 16384² problem runs its numerics on a reduced
/// grid but is costed (compute, ghosts, checkpoints) at full size.
struct JacobiConfig {
  int grid_n = 2048;
  int blocks_x = 16;
  int blocks_y = 16;
  int max_real_block = 64;
  int max_iterations = 50;
  double flops_per_cell = 6.0;
};

/// One block of the decomposed grid, owning (real_w+2) × (real_h+2) doubles
/// including ghost rows. Migratable: `pup` carries the grid and iteration
/// state through checkpoints and migrations.
class JacobiBlock final : public charm::Chare {
 public:
  /// Ghost directions; `opposite` pairs exchange strips.
  enum Dir { kLeft = 0, kRight = 1, kUp = 2, kDown = 3 };
  static Dir opposite(Dir d);

  JacobiBlock(int real_w, int real_h, int num_neighbors, bool top_boundary);

  void pup(charm::Pup& p) override;

  /// Boundary strip to send towards `d` (real resolution).
  std::vector<double> strip(Dir d) const;

  /// Install a strip received from direction `d` into the ghost layer.
  void apply_ghost(Dir d, const std::vector<double>& values);

  bool all_ghosts_received() const { return recv_count_ >= num_neighbors_; }

  /// The block saw this iteration's "start" message and has published its
  /// strips; computing before that would corrupt neighbours' ghosts.
  void mark_started() { started_ = true; }
  bool started() const { return started_; }
  bool ready_to_compute() const { return started_ && all_ghosts_received(); }

  /// One 5-point Jacobi sweep over the interior; returns max |delta|.
  /// Resets the ghost-receive counter and start flag for the next iteration.
  double compute();

  int iteration() const { return iteration_; }
  int real_w() const { return real_w_; }
  int real_h() const { return real_h_; }
  double cell(int x, int y) const;  ///< interior cell (0-based), for tests

 private:
  double& at(int gx, int gy);        // ghosted coordinates
  double at(int gx, int gy) const;

  int real_w_;
  int real_h_;
  int num_neighbors_;
  int iteration_ = 0;
  int recv_count_ = 0;
  bool started_ = false;
  std::vector<double> grid_;   // (real_w_+2) * (real_h_+2), row-major
  std::vector<double> next_;   // scratch for the sweep
};

/// The Jacobi2D application: builds the chare array, wires ghost-exchange
/// messaging, and drives iterations through an IterationDriver. Rescale
/// commands posted to the runtime's CCS endpoint are honoured at iteration
/// boundaries.
class Jacobi2D {
 public:
  Jacobi2D(charm::Runtime& rt, JacobiConfig config);

  /// Kick iteration 0. Call `rt.run()` (or run_until) afterwards.
  void start() { driver_->start(); }

  IterationDriver& driver() { return *driver_; }
  const IterationDriver& driver() const { return *driver_; }

  charm::ArrayId array() const { return array_; }
  const JacobiConfig& config() const { return config_; }

  /// Model-scale problem footprint in bytes (grid_n² doubles).
  double model_bytes() const;

  /// Max-|delta| residual of the last completed iteration.
  double residual() const { return driver_->last_reduction_value(); }

 private:
  int block_index(int bx, int by) const { return by * config_.blocks_x + bx; }
  int neighbor_count(int bx, int by) const;
  void kick(int iteration);
  void send_strip(int from_bx, int from_by, JacobiBlock::Dir d);
  void maybe_compute(JacobiBlock& block, charm::Runtime& rt);

  charm::Runtime& rt_;
  JacobiConfig config_;
  int model_block_w_;
  int model_block_h_;
  int real_block_w_;
  int real_block_h_;
  double flops_per_block_;
  std::size_t strip_bytes_x_;  // model bytes of a horizontal (up/down) strip
  std::size_t strip_bytes_y_;  // model bytes of a vertical (left/right) strip
  charm::ArrayId array_;
  std::unique_ptr<IterationDriver> driver_;
};

}  // namespace ehpc::apps
