#include "apps/leanmd.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ehpc::apps {

using charm::Chare;
using charm::Pup;
using charm::ReduceOp;
using charm::Runtime;

namespace {
constexpr double kEpsilon = 1.0;    // LJ well depth
constexpr double kSigma = 0.3;      // LJ zero-crossing distance
constexpr double kMinR2 = 0.01;     // softening to avoid singularities
constexpr double kMass = 1.0;

/// LJ force magnitude / r and pair energy for squared distance r2.
struct LjTerm {
  double force_over_r;
  double energy;
};

LjTerm lennard_jones(double r2) {
  const double inv_r2 = 1.0 / std::max(r2, kMinR2);
  const double s2 = kSigma * kSigma * inv_r2;
  const double s6 = s2 * s2 * s2;
  const double s12 = s6 * s6;
  return LjTerm{24.0 * kEpsilon * (2.0 * s12 - s6) * inv_r2,
                4.0 * kEpsilon * (s12 - s6)};
}
}  // namespace

MdCell::MdCell(int num_atoms, int num_neighbors, unsigned seed,
               std::array<double, 3> origin)
    : num_atoms_(num_atoms), num_neighbors_(num_neighbors) {
  EHPC_EXPECTS(num_atoms_ > 0);
  pos_.resize(static_cast<std::size_t>(3 * num_atoms_));
  vel_.assign(static_cast<std::size_t>(3 * num_atoms_), 0.0);
  force_.assign(static_cast<std::size_t>(3 * num_atoms_), 0.0);
  Rng rng(seed);
  for (int a = 0; a < num_atoms_; ++a) {
    for (int d = 0; d < 3; ++d) {
      pos_[static_cast<std::size_t>(3 * a + d)] = origin[static_cast<std::size_t>(d)] + rng.uniform(0.0, 1.0);
    }
  }
}

void MdCell::pup(Pup& p) {
  p | num_atoms_;
  p | num_neighbors_;
  p | iteration_;
  p | recv_count_;
  p | started_;
  p | pos_;
  p | vel_;
  p | force_;
}

double MdCell::interact(const std::vector<double>& other) {
  EHPC_EXPECTS(other.size() % 3 == 0);
  const int m = static_cast<int>(other.size() / 3);
  double energy = 0.0;
  for (int i = 0; i < num_atoms_; ++i) {
    const double xi = pos_[static_cast<std::size_t>(3 * i)];
    const double yi = pos_[static_cast<std::size_t>(3 * i + 1)];
    const double zi = pos_[static_cast<std::size_t>(3 * i + 2)];
    for (int j = 0; j < m; ++j) {
      const double dx = xi - other[static_cast<std::size_t>(3 * j)];
      const double dy = yi - other[static_cast<std::size_t>(3 * j + 1)];
      const double dz = zi - other[static_cast<std::size_t>(3 * j + 2)];
      const double r2 = dx * dx + dy * dy + dz * dz;
      const LjTerm lj = lennard_jones(r2);
      force_[static_cast<std::size_t>(3 * i)] += lj.force_over_r * dx;
      force_[static_cast<std::size_t>(3 * i + 1)] += lj.force_over_r * dy;
      force_[static_cast<std::size_t>(3 * i + 2)] += lj.force_over_r * dz;
      energy += 0.5 * lj.energy;  // half: the pair is counted by both cells
    }
  }
  ++recv_count_;
  return energy;
}

double MdCell::integrate(double dt) {
  // Self-interactions within the cell (each unordered pair once).
  for (int i = 0; i < num_atoms_; ++i) {
    for (int j = i + 1; j < num_atoms_; ++j) {
      const double dx = pos_[static_cast<std::size_t>(3 * i)] - pos_[static_cast<std::size_t>(3 * j)];
      const double dy = pos_[static_cast<std::size_t>(3 * i + 1)] - pos_[static_cast<std::size_t>(3 * j + 1)];
      const double dz = pos_[static_cast<std::size_t>(3 * i + 2)] - pos_[static_cast<std::size_t>(3 * j + 2)];
      const LjTerm lj = lennard_jones(dx * dx + dy * dy + dz * dz);
      force_[static_cast<std::size_t>(3 * i)] += lj.force_over_r * dx;
      force_[static_cast<std::size_t>(3 * i + 1)] += lj.force_over_r * dy;
      force_[static_cast<std::size_t>(3 * i + 2)] += lj.force_over_r * dz;
      force_[static_cast<std::size_t>(3 * j)] -= lj.force_over_r * dx;
      force_[static_cast<std::size_t>(3 * j + 1)] -= lj.force_over_r * dy;
      force_[static_cast<std::size_t>(3 * j + 2)] -= lj.force_over_r * dz;
    }
  }
  for (std::size_t k = 0; k < pos_.size(); ++k) {
    vel_[k] += force_[k] / kMass * dt;
    pos_[k] += vel_[k] * dt;
    force_[k] = 0.0;
  }
  ++iteration_;
  recv_count_ = 0;
  started_ = false;
  return kinetic_energy();
}

double MdCell::kinetic_energy() const {
  double ke = 0.0;
  for (double v : vel_) ke += 0.5 * kMass * v * v;
  return ke;
}

LeanMd::LeanMd(Runtime& rt, LeanMdConfig config) : rt_(rt), config_(config) {
  EHPC_EXPECTS(config_.cells_x > 0 && config_.cells_y > 0 && config_.cells_z > 0);
  EHPC_EXPECTS(config_.atoms_per_cell > 0 && config_.real_atoms_per_cell > 0);

  const double model_atoms = static_cast<double>(config_.atoms_per_cell);
  flops_per_exchange_ = config_.flops_per_pair * model_atoms * model_atoms;
  flops_self_ = config_.flops_per_pair * model_atoms * (model_atoms - 1.0) / 2.0;
  position_bytes_ =
      static_cast<std::size_t>(config_.atoms_per_cell) * 3 * sizeof(double);

  const int nx = config_.cells_x;
  const int ny = config_.cells_y;
  array_ = rt_.create_array(
      "leanmd", num_cells(), [this, nx, ny](charm::ElementId e) {
        const int cx = e % nx;
        const int cy = (e / nx) % ny;
        const int cz = e / (nx * ny);
        return std::make_unique<MdCell>(
            config_.real_atoms_per_cell, neighbor_count(cx, cy, cz),
            config_.seed + static_cast<unsigned>(e),
            std::array<double, 3>{static_cast<double>(cx),
                                  static_cast<double>(cy),
                                  static_cast<double>(cz)});
      });

  const double model_cell_bytes = model_atoms * 9.0 * sizeof(double);
  const double real_cell_bytes =
      static_cast<double>(config_.real_atoms_per_cell) * 9.0 * sizeof(double);
  rt_.set_bytes_scale(array_, std::max(1.0, model_cell_bytes / real_cell_bytes));

  driver_ = std::make_unique<IterationDriver>(
      rt_, array_, config_.max_iterations, [this](int iter) { kick(iter); });
}

int LeanMd::cell_index(int cx, int cy, int cz) const {
  return (cz * config_.cells_y + cy) * config_.cells_x + cx;
}

int LeanMd::neighbor_count(int cx, int cy, int cz) const {
  int count = 0;
  if (cx > 0) ++count;
  if (cx + 1 < config_.cells_x) ++count;
  if (cy > 0) ++count;
  if (cy + 1 < config_.cells_y) ++count;
  if (cz > 0) ++count;
  if (cz + 1 < config_.cells_z) ++count;
  return count;
}

void LeanMd::maybe_integrate(MdCell& cell, Runtime& rt) {
  if (!cell.ready_to_integrate()) return;
  rt.charge_flops(flops_self_);
  const double ke = cell.integrate(config_.dt);
  rt.contribute(array_, ke, ReduceOp::kSum);
}

void LeanMd::send_positions(int cx, int cy, int cz, int dim, int dir) {
  int tx = cx + (dim == 0 ? dir : 0);
  int ty = cy + (dim == 1 ? dir : 0);
  int tz = cz + (dim == 2 ? dir : 0);
  if (tx < 0 || tx >= config_.cells_x || ty < 0 || ty >= config_.cells_y ||
      tz < 0 || tz >= config_.cells_z) {
    return;
  }
  auto& from = static_cast<MdCell&>(rt_.element(array_, cell_index(cx, cy, cz)));
  std::vector<double> data = from.positions();
  rt_.send(array_, cell_index(tx, ty, tz), position_bytes_,
           [this, data = std::move(data)](Chare& c, Runtime& rt) {
             auto& cell = static_cast<MdCell&>(c);
             rt.charge_flops(flops_per_exchange_);
             cell.interact(data);
             maybe_integrate(cell, rt);
           });
}

void LeanMd::kick(int /*iteration*/) {
  for (int cz = 0; cz < config_.cells_z; ++cz) {
    for (int cy = 0; cy < config_.cells_y; ++cy) {
      for (int cx = 0; cx < config_.cells_x; ++cx) {
        rt_.send(array_, cell_index(cx, cy, cz), /*bytes=*/16,
                 [this, cx, cy, cz](Chare& c, Runtime& rt) {
                   auto& cell = static_cast<MdCell&>(c);
                   cell.mark_started();
                   for (int dim = 0; dim < 3; ++dim) {
                     send_positions(cx, cy, cz, dim, -1);
                     send_positions(cx, cy, cz, dim, +1);
                   }
                   maybe_integrate(cell, rt);
                 });
      }
    }
  }
}

}  // namespace ehpc::apps
