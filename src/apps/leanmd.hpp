#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "apps/driver.hpp"
#include "charm/runtime.hpp"

namespace ehpc::apps {

/// Configuration of the LeanMD-style molecular dynamics mini-app (paper
/// §4.1): a 3D grid of cells, each holding atoms interacting through the
/// Lennard-Jones potential with atoms in the 6 face-neighbour cells.
/// Compute-intensive: flops grow with atoms², messages stay small.
///
/// Resolution scaling mirrors Jacobi2D: each cell integrates
/// `real_atoms_per_cell` real atoms while charging the flops and bytes of
/// `atoms_per_cell` model atoms.
struct LeanMdConfig {
  int cells_x = 4;
  int cells_y = 4;
  int cells_z = 4;
  int atoms_per_cell = 400;       ///< model atoms per cell (costing)
  int real_atoms_per_cell = 12;   ///< executed atoms per cell (numerics)
  int max_iterations = 30;
  double flops_per_pair = 45.0;   ///< LJ evaluation cost per atom pair
  double dt = 1.0e-3;             ///< integration step
  unsigned seed = 12345;          ///< initial-condition seed
};

/// One spatial cell: positions/velocities/forces of its atoms. Migratable.
class MdCell final : public charm::Chare {
 public:
  MdCell(int num_atoms, int num_neighbors, unsigned seed,
         std::array<double, 3> origin);

  void pup(charm::Pup& p) override;

  /// Snapshot of atom positions to send to neighbours (x0,y0,z0,x1,...).
  std::vector<double> positions() const { return pos_; }

  /// Accumulate LJ forces between own atoms and a neighbour's atoms; returns
  /// the pair potential energy. Safe to call before this cell's own "start"
  /// (own positions are already this iteration's state).
  double interact(const std::vector<double>& other_positions);

  void mark_started() { started_ = true; }
  bool started() const { return started_; }
  bool all_received() const { return recv_count_ >= num_neighbors_; }
  bool ready_to_integrate() const { return started_ && all_received(); }

  /// Self-interactions plus a velocity-Verlet-style update; returns kinetic
  /// energy. Resets per-iteration counters.
  double integrate(double dt);

  int iteration() const { return iteration_; }
  int num_atoms() const { return num_atoms_; }
  double kinetic_energy() const;

 private:
  int num_atoms_;
  int num_neighbors_;
  int iteration_ = 0;
  int recv_count_ = 0;
  bool started_ = false;
  std::vector<double> pos_;    // 3 * num_atoms_
  std::vector<double> vel_;
  std::vector<double> force_;
};

/// The LeanMD application: builds the cell array, wires position exchange
/// and the energy reduction, drives iterations via IterationDriver.
class LeanMd {
 public:
  LeanMd(charm::Runtime& rt, LeanMdConfig config);

  void start() { driver_->start(); }

  IterationDriver& driver() { return *driver_; }
  const IterationDriver& driver() const { return *driver_; }

  charm::ArrayId array() const { return array_; }
  const LeanMdConfig& config() const { return config_; }
  int num_cells() const { return config_.cells_x * config_.cells_y * config_.cells_z; }

  /// Total energy reported by the last completed step.
  double energy() const { return driver_->last_reduction_value(); }

 private:
  int cell_index(int cx, int cy, int cz) const;
  int neighbor_count(int cx, int cy, int cz) const;
  void kick(int iteration);
  void send_positions(int cx, int cy, int cz, int dim, int dir);
  void maybe_integrate(MdCell& cell, charm::Runtime& rt);

  charm::Runtime& rt_;
  LeanMdConfig config_;
  double flops_per_exchange_;   // model atoms² * flops_per_pair
  double flops_self_;
  std::size_t position_bytes_;  // model atoms * 3 doubles
  charm::ArrayId array_;
  std::unique_ptr<IterationDriver> driver_;
};

}  // namespace ehpc::apps
