#include "charm/ccs.hpp"

#include <utility>

#include "common/error.hpp"

namespace ehpc::charm {

void CcsServer::request_rescale(int target_pes, RescaleAck on_complete) {
  EHPC_EXPECTS(target_pes > 0);
  ++commands_received_;
  if (pending_.has_value() && pending_->on_complete) {
    // A newer command supersedes the old target, but the old caller still
    // deserves an ack when the (coalesced) rescale completes.
    superseded_acks_.push_back(std::move(pending_->on_complete));
  }
  pending_ = CcsCommand{target_pes, std::move(on_complete)};
}

std::optional<CcsCommand> CcsServer::take() {
  if (!pending_.has_value()) return std::nullopt;
  CcsCommand cmd = std::move(*pending_);
  pending_.reset();
  if (!superseded_acks_.empty()) {
    // Chain superseded acks onto the final one so every requester hears back.
    auto acks = std::move(superseded_acks_);
    superseded_acks_.clear();
    RescaleAck final_ack = std::move(cmd.on_complete);
    cmd.on_complete = [acks = std::move(acks),
                       final_ack = std::move(final_ack)](const RescaleTiming& t) {
      for (const auto& ack : acks) {
        if (ack) ack(t);
      }
      if (final_ack) final_ack(t);
    };
  }
  return cmd;
}

}  // namespace ehpc::charm
