#pragma once

#include <deque>
#include <optional>

#include "charm/rescale.hpp"

namespace ehpc::charm {

/// A rescale command delivered through the CCS endpoint.
struct CcsCommand {
  int target_pes = 0;       ///< PE count requested by the external scheduler
  RescaleAck on_complete;   ///< invoked after the rescale finishes (may be empty)
};

/// Converse Client-Server (CCS) stand-in: the control mailbox through which
/// an external program (the operator/scheduler) asks a running application
/// to shrink or expand (paper §2.2). The application polls at load-balancing
/// boundaries, exactly like Charm++ triggers rescale "during the next
/// load-balancing step after receiving the signal".
class CcsServer {
 public:
  /// Queue a rescale-to-target command. Multiple pending commands coalesce:
  /// only the most recent target survives, but every ack fires.
  void request_rescale(int target_pes, RescaleAck on_complete = {});

  bool has_pending() const { return pending_.has_value(); }

  /// Consume the pending command (empty if none).
  std::optional<CcsCommand> take();

  /// Number of commands received over the server's lifetime.
  int commands_received() const { return commands_received_; }

 private:
  std::optional<CcsCommand> pending_;
  std::deque<RescaleAck> superseded_acks_;
  int commands_received_ = 0;
};

}  // namespace ehpc::charm
