#include "charm/checkpoint.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace ehpc::charm {

void MemCheckpoint::add(ElementRecord record) {
  EHPC_EXPECTS(record.pe >= 0);
  total_modeled_bytes_ += record.modeled_bytes;
  total_real_bytes_ += record.payload.size();
  records_.push_back(std::move(record));
}

void MemCheckpoint::clear() {
  records_.clear();
  total_modeled_bytes_ = 0.0;
  total_real_bytes_ = 0;
}

std::vector<double> MemCheckpoint::modeled_bytes_per_pe(int num_pes) const {
  EHPC_EXPECTS(num_pes > 0);
  std::vector<double> out(static_cast<std::size_t>(num_pes), 0.0);
  for (const auto& r : records_) {
    EHPC_EXPECTS(r.pe < num_pes);
    out[static_cast<std::size_t>(r.pe)] += r.modeled_bytes;
  }
  return out;
}

std::vector<std::size_t> MemCheckpoint::records_per_pe(int num_pes) const {
  EHPC_EXPECTS(num_pes > 0);
  std::vector<std::size_t> out(static_cast<std::size_t>(num_pes), 0);
  for (const auto& r : records_) {
    EHPC_EXPECTS(r.pe < num_pes);
    out[static_cast<std::size_t>(r.pe)] += 1;
  }
  return out;
}

}  // namespace ehpc::charm
