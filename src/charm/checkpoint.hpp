#pragma once

#include <cstddef>
#include <vector>

#include "charm/types.hpp"

namespace ehpc::charm {

/// One serialized chare-array element inside a checkpoint.
struct ElementRecord {
  ArrayId array = 0;
  ElementId elem = 0;
  PeId pe = 0;                      ///< PE the element lived on at checkpoint
  std::vector<std::byte> payload;   ///< packed pup bytes (real data)
  double modeled_bytes = 0.0;       ///< bytes charged to the timing model
};

/// An in-memory checkpoint, standing in for the Linux shared-memory segment
/// (/dev/shm) that Charm++ uses so rescaling never touches disk (paper §2.2).
///
/// The payloads are real serialized data; `modeled_bytes` lets an application
/// running a scaled-down grid charge the full-size footprint to the timing
/// model (see apps/ docs).
class MemCheckpoint {
 public:
  void add(ElementRecord record);
  void clear();

  const std::vector<ElementRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }

  /// Sum of modeled bytes across all records.
  double total_modeled_bytes() const { return total_modeled_bytes_; }

  /// Sum of real payload bytes across all records.
  std::size_t total_real_bytes() const { return total_real_bytes_; }

  /// Modeled bytes per PE under the mapping stored in the records
  /// (index = PeId; sized to exactly `num_pes`). Sizing by the caller's PE
  /// count — not the max PE observed in records — keeps idle PEs in the
  /// slowest-PE stage computation and makes an empty checkpoint yield
  /// `num_pes` zero entries rather than an empty vector. Every record's PE
  /// must be < `num_pes`.
  std::vector<double> modeled_bytes_per_pe(int num_pes) const;

  /// Element counts per PE under the stored mapping; same sizing contract
  /// as `modeled_bytes_per_pe`.
  std::vector<std::size_t> records_per_pe(int num_pes) const;

 private:
  std::vector<ElementRecord> records_;
  double total_modeled_bytes_ = 0.0;
  std::size_t total_real_bytes_ = 0;
};

}  // namespace ehpc::charm
