#include "charm/load_balancer.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>

#include "common/error.hpp"

namespace ehpc::charm {

namespace {

// Min-heap of (load, pe) so we can always pick the least-loaded PE.
using PeHeapEntry = std::pair<double, PeId>;
using PeHeap =
    std::priority_queue<PeHeapEntry, std::vector<PeHeapEntry>, std::greater<>>;

bool contains(const std::vector<PeId>& pes, PeId pe) {
  return std::binary_search(pes.begin(), pes.end(), pe);
}

}  // namespace

LbAssignment NullLb::assign(const std::vector<LbObject>& objects,
                            const std::vector<PeId>& available_pes) const {
  EHPC_EXPECTS(!available_pes.empty());
  // Accumulate loads of objects that can stay put.
  std::map<PeId, double> pe_load;
  for (PeId pe : available_pes) pe_load[pe] = 0.0;
  for (const auto& obj : objects) {
    if (contains(available_pes, obj.current_pe)) pe_load[obj.current_pe] += obj.load;
  }
  LbAssignment out;
  out.reserve(objects.size());
  for (const auto& obj : objects) {
    if (contains(available_pes, obj.current_pe)) {
      out.push_back(obj.current_pe);
    } else {
      auto it = std::min_element(
          pe_load.begin(), pe_load.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      it->second += obj.load;
      out.push_back(it->first);
    }
  }
  return out;
}

LbAssignment GreedyLb::assign(const std::vector<LbObject>& objects,
                              const std::vector<PeId>& available_pes) const {
  EHPC_EXPECTS(!available_pes.empty());
  std::vector<std::size_t> order(objects.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return objects[a].load > objects[b].load;
  });
  PeHeap heap;
  for (PeId pe : available_pes) heap.push({0.0, pe});
  LbAssignment out(objects.size(), available_pes.front());
  for (std::size_t idx : order) {
    auto [load, pe] = heap.top();
    heap.pop();
    out[idx] = pe;
    heap.push({load + objects[idx].load, pe});
  }
  return out;
}

LbAssignment RefineLb::assign(const std::vector<LbObject>& objects,
                              const std::vector<PeId>& available_pes) const {
  EHPC_EXPECTS(!available_pes.empty());

  // Start from current placement; objects on unavailable PEs are homeless.
  std::map<PeId, double> pe_load;
  std::map<PeId, std::vector<std::size_t>> pe_objects;
  for (PeId pe : available_pes) {
    pe_load[pe] = 0.0;
    pe_objects[pe] = {};
  }
  LbAssignment out(objects.size(), available_pes.front());
  std::vector<std::size_t> homeless;
  double total_load = 0.0;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    total_load += objects[i].load;
    if (contains(available_pes, objects[i].current_pe)) {
      out[i] = objects[i].current_pe;
      pe_load[objects[i].current_pe] += objects[i].load;
      pe_objects[objects[i].current_pe].push_back(i);
    } else {
      homeless.push_back(i);
    }
  }
  // Place homeless objects (heaviest first) on the least-loaded PE.
  std::stable_sort(homeless.begin(), homeless.end(), [&](std::size_t a, std::size_t b) {
    return objects[a].load > objects[b].load;
  });
  for (std::size_t i : homeless) {
    auto it = std::min_element(
        pe_load.begin(), pe_load.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    out[i] = it->first;
    it->second += objects[i].load;
    pe_objects[it->first].push_back(i);
  }

  const double avg = total_load / static_cast<double>(available_pes.size());
  if (avg <= 0.0) return out;

  // Iteratively move the best-fitting object off the most overloaded PE.
  // Bounded by the object count to guarantee termination.
  for (std::size_t pass = 0; pass < objects.size(); ++pass) {
    auto heaviest = std::max_element(
        pe_load.begin(), pe_load.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    if (heaviest->second <= avg * tolerance_) break;
    auto lightest = std::min_element(
        pe_load.begin(), pe_load.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    if (heaviest->first == lightest->first) break;

    // Pick the largest object on the overloaded PE that fits under the
    // average on the underloaded PE; fall back to the lightest object.
    auto& candidates = pe_objects[heaviest->first];
    if (candidates.empty()) break;
    std::size_t best = candidates.front();
    double best_load = -1.0;
    for (std::size_t i : candidates) {
      const double l = objects[i].load;
      if (lightest->second + l <= avg * tolerance_ && l > best_load) {
        best = i;
        best_load = l;
      }
    }
    if (best_load < 0.0) {
      // Nothing fits cleanly; move the lightest object to make progress.
      best = *std::min_element(candidates.begin(), candidates.end(),
                               [&](std::size_t a, std::size_t b) {
                                 return objects[a].load < objects[b].load;
                               });
      if (lightest->second + objects[best].load >= heaviest->second) break;
    }
    candidates.erase(std::find(candidates.begin(), candidates.end(), best));
    pe_load[heaviest->first] -= objects[best].load;
    pe_load[lightest->first] += objects[best].load;
    pe_objects[lightest->first].push_back(best);
    out[best] = lightest->first;
  }
  return out;
}

LbAssignment CommRefineLb::assign(const std::vector<LbObject>& objects,
                                  const std::vector<PeId>& available_pes) const {
  // No measured communication: behave like RefineLB (migration-averse
  // compute balancing), so the strategy is safe on comm-free apps.
  return RefineLb(tolerance_).assign(objects, available_pes);
}

LbAssignment CommRefineLb::assign(const std::vector<LbObject>& objects,
                                  const LbCommGraph& comm,
                                  const std::vector<PeId>& available_pes) const {
  EHPC_EXPECTS(!available_pes.empty());
  if (comm.empty()) return assign(objects, available_pes);

  // Seed with the best compute balance, then spend the tolerance headroom
  // on traffic locality.
  LbAssignment out = GreedyLb().assign(objects, available_pes);

  std::map<PeId, double> pe_load;
  for (PeId pe : available_pes) pe_load[pe] = 0.0;
  double total_load = 0.0;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    pe_load[out[i]] += objects[i].load;
    total_load += objects[i].load;
  }
  const double cap =
      tolerance_ * total_load / static_cast<double>(available_pes.size());

  // Adjacency lists plus per-object total adjacent traffic.
  std::vector<std::vector<std::pair<int, double>>> adj(objects.size());
  std::vector<double> adjacent_bytes(objects.size(), 0.0);
  for (const auto& e : comm.edges) {
    EHPC_EXPECTS(e.a >= 0 && static_cast<std::size_t>(e.a) < objects.size());
    EHPC_EXPECTS(e.b >= 0 && static_cast<std::size_t>(e.b) < objects.size());
    if (e.a == e.b || e.bytes <= 0.0) continue;
    adj[static_cast<std::size_t>(e.a)].push_back({e.b, e.bytes});
    adj[static_cast<std::size_t>(e.b)].push_back({e.a, e.bytes});
    adjacent_bytes[static_cast<std::size_t>(e.a)] += e.bytes;
    adjacent_bytes[static_cast<std::size_t>(e.b)] += e.bytes;
  }

  // Refine hottest talkers first: hub parts have the most traffic at stake.
  std::vector<std::size_t> order(objects.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return adjacent_bytes[a] > adjacent_bytes[b];
  });

  const auto comm_cost = [&](std::size_t i, PeId pe) {
    double cost = 0.0;
    for (const auto& [j, bytes] : adj[i]) {
      cost += bytes * comm.byte_cost(pe, out[static_cast<std::size_t>(j)]);
    }
    return cost;
  };

  // Each accepted move strictly lowers the total cut cost, so the loop
  // terminates; the pass bound just caps worst-case work.
  constexpr int kMaxPasses = 8;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool moved = false;
    for (std::size_t i : order) {
      if (adj[i].empty()) continue;
      const PeId from = out[i];
      double best_cost = comm_cost(i, from);
      PeId best_pe = from;
      for (PeId pe : available_pes) {
        if (pe == from) continue;
        if (pe_load[pe] + objects[i].load > cap) continue;
        const double cost = comm_cost(i, pe);
        if (cost < best_cost) {
          best_cost = cost;
          best_pe = pe;
        }
      }
      if (best_pe != from) {
        pe_load[from] -= objects[i].load;
        pe_load[best_pe] += objects[i].load;
        out[i] = best_pe;
        moved = true;
      }
    }
    if (!moved) break;
  }
  return out;
}

std::unique_ptr<LoadBalancer> make_load_balancer(const std::string& name) {
  if (name == "null") return std::make_unique<NullLb>();
  if (name == "greedy") return std::make_unique<GreedyLb>();
  if (name == "refine") return std::make_unique<RefineLb>();
  if (name == "commrefine") return std::make_unique<CommRefineLb>();
  throw PreconditionError("unknown load balancer: " + name);
}

const std::vector<std::string>& load_balancer_names() {
  // Appended-only: ablations index into this list, so existing indices are
  // stable across additions.
  static const std::vector<std::string> kNames{"null", "greedy", "refine",
                                               "commrefine"};
  return kNames;
}

LbAssignment run_strategy(const LoadBalancer& strategy,
                          const std::vector<LbObject>& objects,
                          const std::vector<PeId>& available_pes,
                          LbStepStats* stats) {
  return run_strategy(strategy, objects, LbCommGraph{}, available_pes, stats);
}

LbAssignment run_strategy(const LoadBalancer& strategy,
                          const std::vector<LbObject>& objects,
                          const LbCommGraph& comm,
                          const std::vector<PeId>& available_pes,
                          LbStepStats* stats) {
  EHPC_EXPECTS(!available_pes.empty());

  // Current placement and its legality under the available set.
  LbAssignment current;
  current.reserve(objects.size());
  bool current_legal = true;
  std::vector<PeId> hosting;  // sorted unique PEs currently hosting objects
  for (const auto& obj : objects) {
    current.push_back(obj.current_pe);
    hosting.push_back(obj.current_pe);
    if (!contains(available_pes, obj.current_pe)) current_legal = false;
  }
  std::sort(hosting.begin(), hosting.end());
  hosting.erase(std::unique(hosting.begin(), hosting.end()), hosting.end());

  const bool comm_driven = strategy.comm_aware() && !comm.empty();
  LbAssignment proposal = comm_driven
                              ? strategy.assign(objects, comm, available_pes)
                              : strategy.assign(objects, available_pes);
  EHPC_ENSURES(proposal.size() == objects.size());

  // Pre-LB ratio over the available set whenever the current placement is
  // legal there (so pre and post are directly comparable); only during a
  // rescale, where objects sit on vanishing PEs, fall back to the PEs that
  // actually host them.
  const double pre_ratio =
      current_legal
          ? (objects.empty() ? 1.0
                             : load_imbalance(objects, current, available_pes))
          : (hosting.empty() ? 1.0 : load_imbalance(objects, current, hosting));
  // Never-worse guard: compare both placements over the same PE set. A
  // comm-driven proposal is exempt — it intentionally trades (bounded,
  // self-tolerated) compute imbalance for cut-traffic reduction, which the
  // compute-only ratio cannot value.
  if (!comm_driven && current_legal && !objects.empty() &&
      load_imbalance(objects, proposal, available_pes) > pre_ratio) {
    proposal = current;
  }

  if (stats != nullptr) {
    stats->strategy = strategy.name();
    // Clamp: max/avg is mathematically >= 1 but can dip below by an ulp.
    stats->pre_ratio = std::max(1.0, pre_ratio);
    stats->post_ratio =
        objects.empty()
            ? 1.0
            : std::max(1.0, load_imbalance(objects, proposal, available_pes));
    stats->objects = static_cast<int>(objects.size());
    stats->migrated = 0;
    for (std::size_t i = 0; i < objects.size(); ++i) {
      if (proposal[i] != objects[i].current_pe) ++stats->migrated;
    }
  }
  return proposal;
}

double load_imbalance(const std::vector<LbObject>& objects,
                      const LbAssignment& assignment,
                      const std::vector<PeId>& available_pes) {
  EHPC_EXPECTS(assignment.size() == objects.size());
  EHPC_EXPECTS(!available_pes.empty());
  std::map<PeId, double> pe_load;
  for (PeId pe : available_pes) pe_load[pe] = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    pe_load.at(assignment[i]) += objects[i].load;
    total += objects[i].load;
  }
  const double avg = total / static_cast<double>(available_pes.size());
  if (avg <= 0.0) return 1.0;
  double max_load = 0.0;
  for (const auto& [pe, load] : pe_load) max_load = std::max(max_load, load);
  return max_load / avg;
}

}  // namespace ehpc::charm
