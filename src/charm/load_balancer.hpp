#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "charm/types.hpp"

namespace ehpc::charm {

/// Per-object measurement handed to a load-balancing strategy.
struct LbObject {
  ArrayId array = 0;
  ElementId elem = 0;
  double load = 0.0;        ///< accumulated compute seconds since last LB
  std::size_t bytes = 0;    ///< migration payload size (pup size)
  PeId current_pe = 0;
};

/// Result of one strategy invocation: the new PE for each input object, in
/// input order, restricted to the available PEs.
using LbAssignment = std::vector<PeId>;

/// Measured object-communication graph handed to comm-aware strategies.
/// Edge endpoints index into the `objects` vector passed alongside it;
/// `bytes` is the traffic measured between the two objects since the last
/// LB step (both directions summed). `byte_cost(a, b)` prices one byte
/// between two PEs in virtual-time seconds — supplied by the runtime from
/// its NetworkModel so placement cost reflects the actual topology
/// (same-PE traffic is free, cross-rack traffic dearest).
struct LbCommGraph {
  struct Edge {
    int a = 0;
    int b = 0;
    double bytes = 0.0;
  };
  std::vector<Edge> edges;
  std::function<double(PeId, PeId)> byte_cost;

  bool empty() const { return edges.empty() || !byte_cost; }
};

/// Strategy interface. Strategies are centralized (they see all objects),
/// matching Charm++'s central LB family used by shrink/expand.
class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;
  virtual std::string name() const = 0;

  /// Compute a new assignment of `objects` onto `available_pes`.
  /// `available_pes` is non-empty and sorted ascending.
  virtual LbAssignment assign(const std::vector<LbObject>& objects,
                              const std::vector<PeId>& available_pes) const = 0;

  /// True when the strategy consumes the communication graph; the runtime
  /// only pays for per-message comm tracking when its strategy wants it.
  virtual bool comm_aware() const { return false; }

  /// Comm-graph-aware overload. The default ignores the graph and defers
  /// to the compute-only assignment, so existing strategies need no change.
  virtual LbAssignment assign(const std::vector<LbObject>& objects,
                              const LbCommGraph& comm,
                              const std::vector<PeId>& available_pes) const {
    (void)comm;
    return assign(objects, available_pes);
  }
};

/// Keeps every object where it is, unless its PE is unavailable, in which
/// case the object is moved to the least-loaded available PE. The cheapest
/// legal strategy; used as a baseline and by tests.
class NullLb final : public LoadBalancer {
 public:
  std::string name() const override { return "NullLB"; }
  LbAssignment assign(const std::vector<LbObject>& objects,
                      const std::vector<PeId>& available_pes) const override;
};

/// Charm++-style GreedyLB: sorts objects by decreasing load and repeatedly
/// assigns to the currently least-loaded PE. Ignores current placement, so it
/// balances best but migrates most.
class GreedyLb final : public LoadBalancer {
 public:
  std::string name() const override { return "GreedyLB"; }
  LbAssignment assign(const std::vector<LbObject>& objects,
                      const std::vector<PeId>& available_pes) const override;
};

/// Charm++-style RefineLB: starts from current placement (evicting objects on
/// unavailable PEs first) and migrates objects from overloaded PEs to
/// underloaded ones until every PE is within `tolerance` of the average load.
/// Minimizes migration volume; the default for shrink/expand.
class RefineLb final : public LoadBalancer {
 public:
  explicit RefineLb(double tolerance = 1.05) : tolerance_(tolerance) {}
  std::string name() const override { return "RefineLB"; }
  LbAssignment assign(const std::vector<LbObject>& objects,
                      const std::vector<PeId>& available_pes) const override;

 private:
  double tolerance_;
};

/// Comm-aware greedy refinement: seeds with GreedyLB's compute-balanced
/// assignment, then iteratively moves the objects with the heaviest
/// adjacent traffic to the PE minimizing their communication cost over the
/// topology, as long as the destination stays within `tolerance` of the
/// average compute load. Trades a bounded amount of compute imbalance for
/// cut-traffic reduction; with no measured comm graph it degrades to
/// RefineLB (so it is safe as a drop-in strategy on comm-free apps).
class CommRefineLb final : public LoadBalancer {
 public:
  explicit CommRefineLb(double tolerance = 1.15) : tolerance_(tolerance) {}
  std::string name() const override { return "CommRefineLB"; }
  bool comm_aware() const override { return true; }
  LbAssignment assign(const std::vector<LbObject>& objects,
                      const std::vector<PeId>& available_pes) const override;
  LbAssignment assign(const std::vector<LbObject>& objects,
                      const LbCommGraph& comm,
                      const std::vector<PeId>& available_pes) const override;

 private:
  double tolerance_;
};

/// Factory: "null", "greedy", "refine", or "commrefine".
std::unique_ptr<LoadBalancer> make_load_balancer(const std::string& name);

/// The strategy names `make_load_balancer` accepts, in a stable order
/// (ablations index into this list).
const std::vector<std::string>& load_balancer_names();

/// Imbalance accounting of one LB invocation (one "LB step").
struct LbStepStats {
  std::string strategy;     ///< LoadBalancer::name() of the strategy run
  double pre_ratio = 1.0;   ///< max/avg PE load before the step
  double post_ratio = 1.0;  ///< max/avg PE load after the step
  int migrated = 0;         ///< objects whose PE changed
  int objects = 0;          ///< objects considered
};

/// Run `strategy` over `objects` with a never-worse guarantee: when every
/// object's current PE is still available and the proposed assignment would
/// *raise* the max/avg load ratio, the current placement is kept instead
/// (zero migrations). During a rescale the current placement is illegal
/// (objects sit on vanishing PEs), so the strategy's proposal always stands.
/// Fills `stats` (if non-null) with the step's imbalance accounting; the
/// pre-LB ratio is measured over `available_pes` when the current placement
/// is legal there (directly comparable with post_ratio), otherwise over the
/// PEs currently hosting objects (the shrink/evacuation case).
LbAssignment run_strategy(const LoadBalancer& strategy,
                          const std::vector<LbObject>& objects,
                          const std::vector<PeId>& available_pes,
                          LbStepStats* stats = nullptr);

/// Comm-graph-aware overload. When the strategy is comm-aware and the
/// graph is non-empty, the max/avg never-worse guard is *waived*: such a
/// strategy deliberately accepts bounded compute imbalance (its own
/// tolerance) to cut network traffic, which the compute-only ratio cannot
/// see. Compute-only strategies keep the full guard.
LbAssignment run_strategy(const LoadBalancer& strategy,
                          const std::vector<LbObject>& objects,
                          const LbCommGraph& comm,
                          const std::vector<PeId>& available_pes,
                          LbStepStats* stats = nullptr);

/// Maximum PE load divided by average PE load for a given assignment
/// (1.0 = perfectly balanced). Utility shared by strategies and tests.
double load_imbalance(const std::vector<LbObject>& objects,
                      const LbAssignment& assignment,
                      const std::vector<PeId>& available_pes);

}  // namespace ehpc::charm
