#include "charm/location.hpp"

#include <utility>

namespace ehpc::charm {

ArrayId LocationManager::add_array(int num_elements, int num_pes) {
  EHPC_EXPECTS(num_elements > 0);
  EHPC_EXPECTS(num_pes > 0);
  std::vector<PeId> map(static_cast<std::size_t>(num_elements));
  for (int e = 0; e < num_elements; ++e) map[static_cast<std::size_t>(e)] = e % num_pes;
  maps_.push_back(std::move(map));
  return static_cast<ArrayId>(maps_.size()) - 1;
}

void LocationManager::set_pe(ArrayId array, ElementId elem, PeId pe) {
  EHPC_EXPECTS(array >= 0 && array < num_arrays());
  auto& map = maps_[static_cast<std::size_t>(array)];
  EHPC_EXPECTS(elem >= 0 && static_cast<std::size_t>(elem) < map.size());
  EHPC_EXPECTS(pe >= 0);
  map[static_cast<std::size_t>(elem)] = pe;
}

int LocationManager::num_elements(ArrayId array) const {
  EHPC_EXPECTS(array >= 0 && array < num_arrays());
  return static_cast<int>(maps_[static_cast<std::size_t>(array)].size());
}

std::vector<ElementId> LocationManager::elements_on(ArrayId array, PeId pe) const {
  EHPC_EXPECTS(array >= 0 && array < num_arrays());
  std::vector<ElementId> out;
  const auto& map = maps_[static_cast<std::size_t>(array)];
  for (std::size_t e = 0; e < map.size(); ++e) {
    if (map[e] == pe) out.push_back(static_cast<ElementId>(e));
  }
  return out;
}

void LocationManager::remap(ArrayId array, std::vector<PeId> mapping) {
  EHPC_EXPECTS(array >= 0 && array < num_arrays());
  EHPC_EXPECTS(mapping.size() == maps_[static_cast<std::size_t>(array)].size());
  maps_[static_cast<std::size_t>(array)] = std::move(mapping);
}

const std::vector<PeId>& LocationManager::mapping(ArrayId array) const {
  EHPC_EXPECTS(array >= 0 && array < num_arrays());
  return maps_[static_cast<std::size_t>(array)];
}

}  // namespace ehpc::charm
