#pragma once

#include <vector>

#include "charm/types.hpp"
#include "common/error.hpp"

namespace ehpc::charm {

/// Tracks the element-to-PE mapping for every chare array (the runtime's
/// "distributed location manager", centralized here since the emulation runs
/// in one address space).
class LocationManager {
 public:
  /// Register a new array of `num_elements` mapped round-robin over
  /// `num_pes`. Returns the array id.
  ArrayId add_array(int num_elements, int num_pes);

  // Inline: one lookup per delivered message (the runtime's dispatch path).
  PeId pe_of(ArrayId array, ElementId elem) const {
    EHPC_EXPECTS(array >= 0 &&
                 static_cast<std::size_t>(array) < maps_.size());
    const auto& map = maps_[static_cast<std::size_t>(array)];
    EHPC_EXPECTS(elem >= 0 && static_cast<std::size_t>(elem) < map.size());
    return map[static_cast<std::size_t>(elem)];
  }

  void set_pe(ArrayId array, ElementId elem, PeId pe);

  int num_elements(ArrayId array) const;
  int num_arrays() const { return static_cast<int>(maps_.size()); }

  /// Elements currently mapped to `pe` in `array`.
  std::vector<ElementId> elements_on(ArrayId array, PeId pe) const;

  /// Replace the whole mapping of an array (e.g. after load balancing).
  void remap(ArrayId array, std::vector<PeId> mapping);

  const std::vector<PeId>& mapping(ArrayId array) const;

 private:
  std::vector<std::vector<PeId>> maps_;  // maps_[array][elem] = pe
};

}  // namespace ehpc::charm
