#include "charm/pup.hpp"

namespace ehpc::charm {

void Pup::raw(void* data, std::size_t n) {
  if (n == 0) return;
  switch (mode_) {
    case Mode::kSizing:
      break;
    case Mode::kPacking: {
      EHPC_EXPECTS(write_buffer_ != nullptr);
      const auto* bytes = static_cast<const std::byte*>(data);
      write_buffer_->insert(write_buffer_->end(), bytes, bytes + n);
      break;
    }
    case Mode::kUnpacking: {
      EHPC_EXPECTS(read_buffer_ != nullptr);
      EHPC_EXPECTS(cursor_ + n <= read_buffer_->size());
      std::memcpy(data, read_buffer_->data() + cursor_, n);
      break;
    }
  }
  cursor_ += n;
}

Pup& Pup::operator|(std::string& s) {
  std::size_t n = s.size();
  *this | n;
  if (unpacking()) s.resize(n);
  if (n > 0) raw(s.data(), n);
  return *this;
}

std::size_t Chare::pup_size() {
  Pup p = Pup::sizer();
  pup(p);
  return p.size();
}

}  // namespace ehpc::charm
