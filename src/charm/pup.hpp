#pragma once

#include <cstddef>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace ehpc::charm {

/// PUP (Pack/UnPack) serializer in the style of Charm++.
///
/// A chare implements a single `pup(Pup&)` method that is used for sizing,
/// packing and unpacking alike — the mode decides what `operator|` does.
/// This is the mechanism behind migration and in-memory checkpoint/restart.
///
/// Example:
///   struct Block : Chare {
///     int iteration = 0;
///     std::vector<double> grid;
///     void pup(Pup& p) override { p | iteration; p | grid; }
///   };
class Pup {
 public:
  enum class Mode { kSizing, kPacking, kUnpacking };

  /// Sizing pass: counts bytes; no buffer needed.
  static Pup sizer() { return Pup(Mode::kSizing, nullptr); }

  /// Packing pass: appends to `buffer`.
  static Pup packer(std::vector<std::byte>& buffer) {
    return Pup(Mode::kPacking, &buffer);
  }

  /// Unpacking pass: reads from `buffer` starting at offset 0.
  static Pup unpacker(const std::vector<std::byte>& buffer) {
    Pup p(Mode::kUnpacking, nullptr);
    p.read_buffer_ = &buffer;
    return p;
  }

  Mode mode() const { return mode_; }
  bool sizing() const { return mode_ == Mode::kSizing; }
  bool packing() const { return mode_ == Mode::kPacking; }
  bool unpacking() const { return mode_ == Mode::kUnpacking; }

  /// Bytes sized/packed/consumed so far.
  std::size_t size() const { return cursor_; }

  /// Raw bytes. The workhorse for all typed overloads.
  void raw(void* data, std::size_t n);

  /// Trivially copyable values.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Pup& operator|(T& value) {
    raw(&value, sizeof(T));
    return *this;
  }

  Pup& operator|(std::string& s);

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Pup& operator|(std::vector<T>& v) {
    std::size_t n = v.size();
    *this | n;
    if (unpacking()) v.resize(n);
    if (n > 0) raw(v.data(), n * sizeof(T));
    return *this;
  }

  /// Non-trivially-copyable element vectors (element type must itself
  /// support operator| with Pup).
  template <typename T>
    requires(!std::is_trivially_copyable_v<T>)
  Pup& operator|(std::vector<T>& v) {
    std::size_t n = v.size();
    *this | n;
    if (unpacking()) v.resize(n);
    for (auto& item : v) *this | item;
    return *this;
  }

 private:
  Pup(Mode mode, std::vector<std::byte>* buffer)
      : mode_(mode), write_buffer_(buffer) {}

  Mode mode_;
  std::vector<std::byte>* write_buffer_ = nullptr;
  const std::vector<std::byte>* read_buffer_ = nullptr;
  std::size_t cursor_ = 0;
};

/// Base class for migratable objects. Elements of a chare array derive from
/// Chare and implement `pup` so the runtime can checkpoint, restore and
/// migrate them.
class Chare {
 public:
  virtual ~Chare() = default;

  /// Serialize/deserialize all state that must survive migration or
  /// checkpoint/restart.
  virtual void pup(Pup& p) = 0;

  /// Serialized footprint in bytes (sizing pass over `pup`).
  std::size_t pup_size();
};

}  // namespace ehpc::charm
