#pragma once

#include <functional>

namespace ehpc::charm {

/// Whether a rescale shrinks or expands the PE count.
enum class RescaleDirection { kShrink, kExpand };

/// Per-stage timing of one rescale operation, matching the paper's §4.2
/// decomposition: load balance, checkpoint to shared memory, restart with
/// the new process count, restore from shared memory.
struct RescaleTiming {
  RescaleDirection direction = RescaleDirection::kShrink;
  int old_pes = 0;
  int new_pes = 0;
  double load_balance_s = 0.0;
  double checkpoint_s = 0.0;
  double restart_s = 0.0;
  double restore_s = 0.0;
  double checkpoint_modeled_bytes = 0.0;  ///< total data in the checkpoint
  int migrated_objects = 0;               ///< objects moved by the LB stage

  double total() const {
    return load_balance_s + checkpoint_s + restart_s + restore_s;
  }
};

/// Completion callback invoked (in virtual time) once a rescale finishes and
/// the application has resumed. This is the runtime-side half of the operator
/// handshake: the operator treats it as the Charm++ acknowledgment after
/// which extra pods may be removed (shrink) or the expand is complete.
using RescaleAck = std::function<void(const RescaleTiming&)>;

}  // namespace ehpc::charm
