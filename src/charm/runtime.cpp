#include "charm/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "common/log.hpp"

namespace ehpc::charm {

namespace {
double combine(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kMax: return std::max(a, b);
    case ReduceOp::kMin: return std::min(a, b);
  }
  return a;
}

double identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return 0.0;
    case ReduceOp::kMax: return -std::numeric_limits<double>::infinity();
    case ReduceOp::kMin: return std::numeric_limits<double>::infinity();
  }
  return 0.0;
}
}  // namespace

Runtime::Runtime(RuntimeConfig config)
    : config_(std::move(config)),
      lb_(make_load_balancer(config_.load_balancer)),
      num_pes_(config_.num_pes) {
  EHPC_EXPECTS(config_.num_pes > 0);
  EHPC_EXPECTS(config_.pes_per_node > 0);
  EHPC_EXPECTS(config_.flop_rate > 0.0);
  EHPC_EXPECTS(config_.shm_bandwidth_Bps > 0.0);
  EHPC_EXPECTS(config_.network != nullptr);
  // Private clone: the model may carry per-run contention state, which must
  // not be shared between runtimes sweeping in parallel.
  net_ = config_.network->clone();
  // Comm tracking costs a map update per cross-object send; only pay for it
  // when the configured strategy can actually use the graph.
  track_comm_ = lb_->comm_aware();
  pes_.resize(static_cast<std::size_t>(num_pes_));
  rebuild_node_table();
}

void Runtime::rebuild_node_table() {
  node_of_.resize(static_cast<std::size_t>(num_pes_));
  for (int pe = 0; pe < num_pes_; ++pe) {
    node_of_[static_cast<std::size_t>(pe)] = pe / config_.pes_per_node;
  }
}

ArrayId Runtime::create_array(std::string name, int num_elements,
                              ElementFactory factory) {
  EHPC_EXPECTS(num_elements > 0);
  EHPC_EXPECTS(factory != nullptr);
  const ArrayId id = loc_.add_array(num_elements, num_pes_);
  ArrayState state;
  state.name = std::move(name);
  state.factory = std::move(factory);
  state.elements.reserve(static_cast<std::size_t>(num_elements));
  for (ElementId e = 0; e < num_elements; ++e)
    state.elements.push_back(state.factory(e));
  state.load_s.assign(static_cast<std::size_t>(num_elements), 0.0);
  arrays_.push_back(std::move(state));
  return id;
}

Runtime::ArrayState& Runtime::array_state(ArrayId array) {
  EHPC_EXPECTS(array >= 0 && static_cast<std::size_t>(array) < arrays_.size());
  return arrays_[static_cast<std::size_t>(array)];
}

const Runtime::ArrayState& Runtime::array_state(ArrayId array) const {
  EHPC_EXPECTS(array >= 0 && static_cast<std::size_t>(array) < arrays_.size());
  return arrays_[static_cast<std::size_t>(array)];
}

Chare& Runtime::element(ArrayId array, ElementId elem) {
  auto& state = array_state(array);
  EHPC_EXPECTS(elem >= 0 &&
               static_cast<std::size_t>(elem) < state.elements.size());
  EHPC_EXPECTS(state.elements[static_cast<std::size_t>(elem)] != nullptr);
  return *state.elements[static_cast<std::size_t>(elem)];
}

void Runtime::set_bytes_scale(ArrayId array, double scale) {
  EHPC_EXPECTS(scale > 0.0);
  array_state(array).bytes_scale = scale;
}

Runtime::EnvIndex Runtime::alloc_env(ArrayId array, ElementId elem,
                                     std::size_t bytes, EntryId entry,
                                     Handler&& fn) {
  EnvIndex idx;
  if (!env_free_.empty()) {
    idx = env_free_.back();
    env_free_.pop_back();
  } else {
    idx = env_high_water_++;
    if ((idx >> kEnvChunkShift) == env_chunks_.size()) {
      env_chunks_.push_back(std::make_unique<Envelope[]>(kEnvChunkSize));
    }
  }
  Envelope& env = env_at(idx);
  env.array = array;
  env.elem = elem;
  env.bytes = bytes;
  env.entry = entry;
  env.fn = std::move(fn);
  return idx;
}

void Runtime::release_env(EnvIndex idx) {
  env_at(idx).fn = nullptr;
  env_free_.push_back(idx);
}

namespace {
// Packed (src array, src elem, dst array, dst elem) key for the per-pair
// traffic map: 8 bits per array id, 24 bits per element id.
std::uint64_t comm_key(ArrayId src_array, ElementId src_elem, ArrayId dst_array,
                       ElementId dst_elem) {
  return (static_cast<std::uint64_t>(src_array & 0xff) << 56) |
         (static_cast<std::uint64_t>(src_elem & 0xffffff) << 32) |
         (static_cast<std::uint64_t>(dst_array & 0xff) << 24) |
         static_cast<std::uint64_t>(dst_elem & 0xffffff);
}
}  // namespace

void Runtime::enqueue_send(ArrayId array, ElementId elem, std::size_t bytes,
                           EntryId entry, Handler&& fn) {
  const EnvIndex idx = alloc_env(array, elem, bytes, entry, std::move(fn));
  if (in_handler_) {
    // Measured object-communication graph for comm-aware LB: attribute the
    // bytes to the (sender object, receiver object) pair. Driver-context
    // sends have no sender object and are not placement-relevant.
    if (track_comm_ && (ctx_array_ != array || ctx_elem_ != elem)) {
      comm_bytes_[comm_key(ctx_array_, ctx_elem_, array, elem)] +=
          static_cast<double>(bytes);
    }
    // Effects of an entry method take hold at its completion time; buffer
    // until the handler's duration is known.
    ctx_sends_.push_back(idx);
  } else {
    dispatch(idx, /*from_pe=*/0, sim_.now());
  }
}

EntryId Runtime::register_entry(Handler fn) {
  EHPC_EXPECTS(fn != nullptr);
  entries_.push_back(std::move(fn));
  return static_cast<EntryId>(entries_.size()) - 1;
}

void Runtime::send(ArrayId array, ElementId elem, std::size_t bytes, Handler fn) {
  EHPC_EXPECTS(fn != nullptr);
  enqueue_send(array, elem, bytes, kInvalidEntry, std::move(fn));
}

void Runtime::send(ArrayId array, ElementId elem, std::size_t bytes,
                   EntryId entry) {
  EHPC_EXPECTS(entry >= 0 &&
               static_cast<std::size_t>(entry) < entries_.size());
  enqueue_send(array, elem, bytes, entry, nullptr);
}

void Runtime::broadcast(ArrayId array, std::size_t bytes, const Handler& fn) {
  const int n = loc_.num_elements(array);
  for (ElementId e = 0; e < n; ++e) send(array, e, bytes, fn);
}

void Runtime::broadcast(ArrayId array, std::size_t bytes, EntryId entry) {
  const int n = loc_.num_elements(array);
  for (ElementId e = 0; e < n; ++e) send(array, e, bytes, entry);
}

void Runtime::charge_flops(double flops) {
  EHPC_EXPECTS(in_handler_);
  EHPC_EXPECTS(flops >= 0.0);
  ctx_flops_ += flops;
}

void Runtime::contribute(ArrayId array, double value, ReduceOp op) {
  if (in_handler_) {
    ctx_contributes_.push_back({array, value, op});
  } else {
    flush_contribute({array, value, op}, sim_.now());
  }
}

void Runtime::set_reduction_client(ArrayId array, ReductionClient client) {
  array_state(array).client = std::move(client);
}

void Runtime::schedule_external(sim::Time at, ExternalEvent fn) {
  EHPC_EXPECTS(fn != nullptr);
  sim_.schedule_at(at, [this, fn = std::move(fn)] { fn(*this); });
}

void Runtime::set_restart_handler(RestartHandler handler) {
  restart_handler_ = std::move(handler);
}

void Runtime::dispatch(EnvIndex env_idx, PeId from_pe, sim::Time send_time) {
  const Envelope& env = env_at(env_idx);
  const PeId dst = loc_.pe_of(env.array, env.elem);
  const int src_node = node_of(from_pe);
  const int dst_node = node_of(dst);
  double depart = send_time;
  if (from_pe >= 0 && src_node != dst_node) {
    // Inter-node messages serialize through the source node's NIC.
    auto node = static_cast<std::size_t>(src_node);
    if (node_egress_busy_.size() <= node) node_egress_busy_.resize(node + 1, 0.0);
    depart = std::max(send_time, node_egress_busy_[node]);
    node_egress_busy_[node] =
        depart + config_.nic_per_msg_s +
        static_cast<double>(env.bytes) / config_.nic_bandwidth_Bps;
  }
  const double cost =
      net_->begin_transfer(env.bytes, src_node, dst_node, depart);
  // Epoch guard: a message in flight when the PE set is torn down (a
  // non-quiescent fail_and_recover) died with the sender's TCP connection;
  // drop it instead of delivering stale pre-failure state to the restored
  // element. Rescales run at quiescence, so this only fires on failures.
  sim_.schedule_at(depart + cost, [this, dst, env_idx, epoch = pe_epoch_,
                                   bytes = env.bytes, src_node, dst_node] {
    if (epoch != pe_epoch_) {
      release_env(env_idx);
      return;
    }
    net_->end_transfer(bytes, src_node, dst_node, sim_.now());
    on_arrival(dst, env_idx);
  });
}

void Runtime::on_arrival(PeId pe, EnvIndex env_idx) {
  // The destination PE may have disappeared in a shrink that raced with the
  // message; re-resolve so delivery follows the object, like Charm++'s
  // location manager forwarding.
  if (pe >= num_pes_) {
    const Envelope& env = env_at(env_idx);
    pe = loc_.pe_of(env.array, env.elem);
  }
  EHPC_ENSURES(pe >= 0 && pe < num_pes_);
  auto& state = pes_[static_cast<std::size_t>(pe)];
  state.push(env_idx);
  if (!state.busy) start_service(pe);
}

void Runtime::start_service(PeId pe) {
  auto& state = pes_[static_cast<std::size_t>(pe)];
  EHPC_ENSURES(!state.busy && !state.queue_empty());
  state.busy = true;
  const EnvIndex env_idx = state.pop();

  // Unpack the envelope and recycle it before user code runs: handlers may
  // send (growing the pool), and the freed envelope caps pool growth at the
  // in-flight high-water mark.
  Envelope& env = env_at(env_idx);
  const ArrayId array = env.array;
  const ElementId elem = env.elem;
  const EntryId entry = env.entry;
  Handler local_fn;
  if (entry == kInvalidEntry) local_fn = std::move(env.fn);
  release_env(env_idx);

  // Execute the entry method now (virtual service start); its effects are
  // stamped at the completion time derived from the charged flops.
  EHPC_ENSURES(!in_handler_);
  in_handler_ = true;
  ctx_pe_ = pe;
  ctx_flops_ = 0.0;
  ctx_array_ = array;
  ctx_elem_ = elem;
  ctx_sends_.clear();
  ctx_contributes_.clear();

  {
    auto& arr = array_state(array);
    EHPC_EXPECTS(elem >= 0 &&
                 static_cast<std::size_t>(elem) < arr.elements.size());
    // The Chare lives behind a unique_ptr: stable even if the handler
    // creates a new array and arrays_ reallocates (which is why arr is not
    // reused past this block).
    Chare& chare = *arr.elements[static_cast<std::size_t>(elem)];
    // entries_ is a deque: the reference stays valid even if the handler
    // registers more entry methods.
    Handler& fn = entry != kInvalidEntry
                      ? entries_[static_cast<std::size_t>(entry)]
                      : local_fn;
    fn(chare, *this);
  }

  const double duration =
      config_.handler_overhead_s + ctx_flops_ / config_.flop_rate;
  const sim::Time completion = sim_.now() + duration;

  array_state(array).load_s[static_cast<std::size_t>(elem)] +=
      ctx_flops_ / config_.flop_rate;

  in_handler_ = false;
  // The buffered sends/contributes are flushed in place: dispatch and
  // flush_contribute run no user code (they only schedule), so the context
  // buffers cannot be re-entered — they are cleared at the next handler
  // start, keeping their capacity for reuse.
  for (const EnvIndex s : ctx_sends_) dispatch(s, pe, completion);
  for (const auto& c : ctx_contributes_) flush_contribute(c, completion);

  // The epoch guard retires this completion if the PE set is rebuilt first
  // (a non-quiescent fail_and_recover): the old PE died with its process.
  sim_.schedule_at(completion, [this, pe, epoch = pe_epoch_] {
    if (epoch != pe_epoch_) return;
    auto& st = pes_[static_cast<std::size_t>(pe)];
    st.busy = false;
    if (!st.queue_empty()) start_service(pe);
  });
}

double Runtime::tree_latency(int pes, sim::Time at) const {
  return net_->collective_latency(pes, at);
}

void Runtime::flush_contribute(const PendingContribute& c, sim::Time at) {
  auto& arr = array_state(c.array);
  auto& red = arr.reduction;
  if (!red.started) {
    red.started = true;
    red.op = c.op;
    red.acc = identity(c.op);
    red.contributed = 0;
    red.latest_time = at;
  }
  EHPC_EXPECTS(red.op == c.op);
  red.acc = combine(red.op, red.acc, c.value);
  red.latest_time = std::max(red.latest_time, at);
  ++red.contributed;
  const int n = loc_.num_elements(c.array);
  EHPC_ENSURES(red.contributed <= n);
  if (red.contributed == n) {
    const double result = red.acc;
    const sim::Time done =
        red.latest_time + tree_latency(num_pes_, red.latest_time);
    red = ReductionState{};  // ready for the next round
    const ArrayId array = c.array;
    // The epoch guard retires the client callback if a failure tears the
    // PE set down first: the reduction result died with the tree.
    sim_.schedule_at(done, [this, array, result, epoch = pe_epoch_] {
      if (epoch != pe_epoch_) return;
      auto& client = array_state(array).client;
      if (client) client(result, *this);
    });
  }
}

bool Runtime::poll_rescale() {
  EHPC_EXPECTS(!in_handler_);
  auto cmd = ccs_.take();
  if (!cmd) return false;
  const int target = cmd->target_pes;
  if (target == num_pes_) {
    // Nothing to do; acknowledge with a zero-cost timing record.
    if (cmd->on_complete) {
      RescaleTiming timing;
      timing.old_pes = timing.new_pes = num_pes_;
      cmd->on_complete(timing);
    }
    return false;
  }
  execute_rescale(std::move(*cmd));
  return true;
}

void Runtime::assert_quiescent() const {
  for (const auto& pe : pes_) {
    EHPC_EXPECTS(!pe.busy && pe.queue_empty());
  }
  for (const auto& arr : arrays_) {
    EHPC_EXPECTS(!arr.reduction.started);
  }
}

double Runtime::stage_load_balance(const std::vector<PeId>& available_pes,
                                   int* migrated_out) {
  // Gather objects across all arrays (array-major order; `first_index`
  // recovers an object's position from its (array, elem) coordinates when
  // decoding the comm graph below).
  std::vector<LbObject> objects;
  std::vector<double> modeled_bytes;
  std::vector<std::size_t> first_index(arrays_.size() + 1, 0);
  for (ArrayId a = 0; a < static_cast<ArrayId>(arrays_.size()); ++a) {
    auto& arr = arrays_[static_cast<std::size_t>(a)];
    first_index[static_cast<std::size_t>(a)] = objects.size();
    for (ElementId e = 0; e < static_cast<ElementId>(arr.elements.size()); ++e) {
      LbObject obj;
      obj.array = a;
      obj.elem = e;
      obj.load = arr.load_s[static_cast<std::size_t>(e)];
      obj.bytes = arr.elements[static_cast<std::size_t>(e)]->pup_size();
      obj.current_pe = loc_.pe_of(a, e);
      objects.push_back(obj);
      modeled_bytes.push_back(static_cast<double>(obj.bytes) * arr.bytes_scale);
    }
  }
  first_index[arrays_.size()] = objects.size();
  if (objects.empty()) {
    if (migrated_out) *migrated_out = 0;
    return 0.0;
  }

  // Hand the measured per-pair traffic to the strategy, priced over this
  // runtime's topology: same-PE traffic is free, cross-rack traffic pays
  // the contention model's structural penalties.
  LbCommGraph comm;
  if (track_comm_ && !comm_bytes_.empty()) {
    comm.edges.reserve(comm_bytes_.size());
    for (const auto& [key, traffic] : comm_bytes_) {
      const auto src_array = static_cast<std::size_t>((key >> 56) & 0xff);
      const auto src_elem = static_cast<std::size_t>((key >> 32) & 0xffffff);
      const auto dst_array = static_cast<std::size_t>((key >> 24) & 0xff);
      const auto dst_elem = static_cast<std::size_t>(key & 0xffffff);
      LbCommGraph::Edge edge;
      edge.a = static_cast<int>(first_index[src_array] + src_elem);
      edge.b = static_cast<int>(first_index[dst_array] + dst_elem);
      edge.bytes = traffic;
      comm.edges.push_back(edge);
    }
    // Reference-size transfer amortizes the per-message alpha: the graph
    // weights are bulk bytes, so price them at bulk per-byte cost.
    constexpr std::size_t kRefBytes = 65536;
    comm.byte_cost = [this](PeId a, PeId b) {
      if (a == b) return 0.0;
      return net_->message_time(kRefBytes, node_of(a), node_of(b)) /
             static_cast<double>(kRefBytes);
    };
  }

  LbStepStats stats;
  const LbAssignment assignment =
      run_strategy(*lb_, objects, comm, available_pes, &stats);
  lb_history_.push_back(stats);

  // Strategy + stats-gathering cost (central LB): per-object decision work
  // plus a reduction/broadcast over the current PEs.
  double stage = 2.0 * tree_latency(num_pes_, sim_.now()) +
                 static_cast<double>(objects.size()) * config_.lb_decision_per_obj_s;

  // Migration: objects move in parallel; each PE serializes its outgoing and
  // absorbs its incoming bytes over the fabric. Stage extends by the
  // worst-loaded endpoint.
  std::vector<double> pe_cost(static_cast<std::size_t>(
                                  std::max(num_pes_, available_pes.back() + 1)),
                              0.0);
  int migrated = 0;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (assignment[i] == objects[i].current_pe) continue;
    ++migrated;
    const double cost = net_->message_time(
        static_cast<std::size_t>(modeled_bytes[i]),
        node_of(objects[i].current_pe), node_of(assignment[i]));
    pe_cost[static_cast<std::size_t>(objects[i].current_pe)] += cost;
    pe_cost[static_cast<std::size_t>(assignment[i])] += cost;
    loc_.set_pe(objects[i].array, objects[i].elem, assignment[i]);
  }
  stage += *std::max_element(pe_cost.begin(), pe_cost.end());

  // LB period ends: loads and measured traffic reset, as in Charm++
  // central strategies.
  for (auto& arr : arrays_) {
    std::fill(arr.load_s.begin(), arr.load_s.end(), 0.0);
  }
  comm_bytes_.clear();
  if (migrated_out) *migrated_out = migrated;
  return stage;
}

double Runtime::stage_checkpoint(MemCheckpoint& out) {
  for (ArrayId a = 0; a < static_cast<ArrayId>(arrays_.size()); ++a) {
    auto& arr = arrays_[static_cast<std::size_t>(a)];
    for (ElementId e = 0; e < static_cast<ElementId>(arr.elements.size()); ++e) {
      auto& chare = arr.elements[static_cast<std::size_t>(e)];
      EHPC_ENSURES(chare != nullptr);
      ElementRecord rec;
      rec.array = a;
      rec.elem = e;
      rec.pe = loc_.pe_of(a, e);
      Pup packer = Pup::packer(rec.payload);
      chare->pup(packer);
      rec.modeled_bytes = static_cast<double>(rec.payload.size()) * arr.bytes_scale;
      out.add(std::move(rec));
    }
  }
  // Each PE writes its objects to the local shared-memory segment in
  // parallel; the stage lasts as long as the slowest PE.
  double stage = 0.0;
  const auto bytes = out.modeled_bytes_per_pe(num_pes_);
  const auto counts = out.records_per_pe(num_pes_);
  for (std::size_t pe = 0; pe < bytes.size(); ++pe) {
    const double t = bytes[pe] / config_.shm_bandwidth_Bps +
                     static_cast<double>(counts[pe]) * config_.checkpoint_per_obj_s;
    stage = std::max(stage, t);
  }
  return stage;
}

void Runtime::reset_pes(int new_pes) {
  // Queued-but-undelivered envelopes die with their PE queues; return them
  // to the pool so they are not leaked until the next reset.
  for (auto& pe : pes_) {
    for (std::size_t i = pe.head; i < pe.queue.size(); ++i) {
      release_env(pe.queue[i]);
    }
  }
  pes_.assign(static_cast<std::size_t>(new_pes), PeState{});
  ++pe_epoch_;  // retires in-flight completion events of the old PE set
}

double Runtime::stage_restart(int new_pes) {
  // Tear down the old processes: element objects die with them (their state
  // lives in the checkpoint), queues are rebuilt empty.
  for (auto& arr : arrays_) {
    for (auto& chare : arr.elements) chare.reset();
  }
  reset_pes(new_pes);
  num_pes_ = new_pes;
  rebuild_node_table();
  std::fill(node_egress_busy_.begin(), node_egress_busy_.end(), 0.0);
  // mpirun startup cost grows with the number of ranks (paper Fig. 5).
  return config_.startup_alpha_s +
         config_.startup_per_pe_s * static_cast<double>(new_pes);
}

double Runtime::stage_restore(const MemCheckpoint& ckpt) {
  for (const auto& rec : ckpt.records()) {
    auto& arr = array_state(rec.array);
    auto elem = arr.factory(rec.elem);
    Pup unpacker = Pup::unpacker(rec.payload);
    elem->pup(unpacker);
    arr.elements[static_cast<std::size_t>(rec.elem)] = std::move(elem);
    EHPC_ENSURES(loc_.pe_of(rec.array, rec.elem) < num_pes_);
  }
  double stage = 0.0;
  // Reads happen with the *current* mapping (post-LB for shrink; the old
  // mapping for expand, where LB follows the restore).
  std::vector<double> bytes(static_cast<std::size_t>(num_pes_), 0.0);
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_pes_), 0);
  for (const auto& rec : ckpt.records()) {
    const PeId pe = loc_.pe_of(rec.array, rec.elem);
    bytes[static_cast<std::size_t>(pe)] += rec.modeled_bytes;
    counts[static_cast<std::size_t>(pe)] += 1;
  }
  for (std::size_t pe = 0; pe < bytes.size(); ++pe) {
    const double t = bytes[pe] / config_.shm_bandwidth_Bps +
                     static_cast<double>(counts[pe]) * config_.checkpoint_per_obj_s;
    stage = std::max(stage, t);
  }
  return stage;
}

void Runtime::execute_rescale(CcsCommand cmd) {
  assert_quiescent();
  const int old_pes = num_pes_;
  const int new_pes = cmd.target_pes;
  EHPC_EXPECTS(new_pes > 0 && new_pes != old_pes);

  RescaleTiming timing;
  timing.old_pes = old_pes;
  timing.new_pes = new_pes;
  timing.direction = new_pes < old_pes ? RescaleDirection::kShrink
                                       : RescaleDirection::kExpand;

  std::vector<PeId> target_set(static_cast<std::size_t>(new_pes));
  std::iota(target_set.begin(), target_set.end(), 0);

  MemCheckpoint ckpt;
  if (timing.direction == RescaleDirection::kShrink) {
    // Shrink: evacuate dying PEs first, then checkpoint/restart/restore.
    timing.load_balance_s = stage_load_balance(target_set, &timing.migrated_objects);
    timing.checkpoint_s = stage_checkpoint(ckpt);
    timing.restart_s = stage_restart(new_pes);
    timing.restore_s = stage_restore(ckpt);
  } else {
    // Expand: restart with more PEs first, then balance onto them.
    timing.checkpoint_s = stage_checkpoint(ckpt);
    timing.restart_s = stage_restart(new_pes);
    timing.restore_s = stage_restore(ckpt);
    timing.load_balance_s = stage_load_balance(target_set, &timing.migrated_objects);
  }
  timing.checkpoint_modeled_bytes = ckpt.total_modeled_bytes();

  last_rescale_ = timing;
  rescale_history_.push_back(timing);
  EHPC_INFO("charm",
            "rescale %d -> %d pes: lb=%.3fs ckpt=%.3fs restart=%.3fs restore=%.3fs",
            old_pes, new_pes, timing.load_balance_s, timing.checkpoint_s,
            timing.restart_s, timing.restore_s);

  const sim::Time resume_at = sim_.now() + timing.total();
  // Epoch guard: a failure landing inside the rescale's downtime window
  // tears the new PE set down again before this resume fires. The stale
  // resume (and its CCS ack) must retire — recovery schedules its own
  // restart, and running both would re-kick the application twice.
  sim_.schedule_at(resume_at, [this, ack = std::move(cmd.on_complete), timing,
                               epoch = pe_epoch_] {
    if (epoch != pe_epoch_) return;
    if (restart_handler_) restart_handler_(*this);
    if (ack) ack(timing);
  });
}

void Runtime::load_balance_then(ExternalEvent continuation) {
  EHPC_EXPECTS(!in_handler_);
  EHPC_EXPECTS(continuation != nullptr);
  assert_quiescent();
  std::vector<PeId> all(static_cast<std::size_t>(num_pes_));
  std::iota(all.begin(), all.end(), 0);
  int migrated = 0;
  const double cost = stage_load_balance(all, &migrated);
  sim_.schedule_after(cost, [this, fn = std::move(continuation)] { fn(*this); });
}

void Runtime::set_app_state_pup(std::function<void(Pup&)> fn) {
  app_state_pup_ = std::move(fn);
}

void Runtime::disk_checkpoint_then(ExternalEvent continuation) {
  EHPC_EXPECTS(!in_handler_);
  EHPC_EXPECTS(continuation != nullptr);
  assert_quiescent();
  disk_checkpoint_.clear();
  for (ArrayId a = 0; a < static_cast<ArrayId>(arrays_.size()); ++a) {
    auto& arr = arrays_[static_cast<std::size_t>(a)];
    for (ElementId e = 0; e < static_cast<ElementId>(arr.elements.size()); ++e) {
      ElementRecord rec;
      rec.array = a;
      rec.elem = e;
      rec.pe = loc_.pe_of(a, e);
      Pup packer = Pup::packer(rec.payload);
      arr.elements[static_cast<std::size_t>(e)]->pup(packer);
      rec.modeled_bytes =
          static_cast<double>(rec.payload.size()) * arr.bytes_scale;
      disk_checkpoint_.add(std::move(rec));
    }
  }
  disk_app_state_.clear();
  if (app_state_pup_) {
    Pup packer = Pup::packer(disk_app_state_);
    app_state_pup_(packer);
  }
  disk_checkpoint_pes_ = num_pes_;
  ++disk_checkpoints_taken_;
  // PEs stream their objects to disk in parallel; slowest PE bounds the
  // stage, like the shared-memory checkpoint but at disk bandwidth.
  double stage = 0.0;
  const auto bytes = disk_checkpoint_.modeled_bytes_per_pe(num_pes_);
  const auto counts = disk_checkpoint_.records_per_pe(num_pes_);
  for (std::size_t pe = 0; pe < bytes.size(); ++pe) {
    stage = std::max(stage, bytes[pe] / config_.disk_bandwidth_Bps +
                                static_cast<double>(counts[pe]) *
                                    config_.checkpoint_per_obj_s);
  }
  EHPC_INFO("charm", "disk checkpoint: %.1f MB in %.3fs",
            disk_checkpoint_.total_modeled_bytes() / 1.0e6, stage);
  sim_.schedule_after(stage, [this, fn = std::move(continuation)] { fn(*this); });
}

void Runtime::fail_and_recover() { fail_and_recover(disk_checkpoint_pes_); }

void Runtime::fail_and_recover(int surviving_pes) {
  recover_from_disk(surviving_pes, [](PeId pe) { return pe; });
}

void Runtime::fail_and_recover(const std::vector<PeId>& failed_pes) {
  EHPC_EXPECTS(has_disk_checkpoint());
  EHPC_EXPECTS(!failed_pes.empty());
  std::vector<PeId> failed = failed_pes;
  std::sort(failed.begin(), failed.end());
  EHPC_EXPECTS(std::adjacent_find(failed.begin(), failed.end()) ==
               failed.end());  // each PE dies once
  EHPC_EXPECTS(failed.front() >= 0 && failed.back() < disk_checkpoint_pes_);
  const int surviving =
      disk_checkpoint_pes_ - static_cast<int>(failed.size());
  EHPC_EXPECTS(surviving > 0);  // total loss is not recoverable
  // Survivors keep their relative order but are renumbered contiguously:
  // old PE p becomes p minus the failed PEs below it. Failed PEs map to the
  // out-of-range sentinel `surviving`, which the LB seam evicts.
  recover_from_disk(surviving, [failed, surviving](PeId pe) {
    const auto it = std::lower_bound(failed.begin(), failed.end(), pe);
    if (it != failed.end() && *it == pe) return surviving;
    return static_cast<PeId>(pe - (it - failed.begin()));
  });
}

void Runtime::recover_from_disk(int surviving_pes,
                                const std::function<PeId(PeId)>& remap) {
  EHPC_EXPECTS(!in_handler_);
  EHPC_EXPECTS(has_disk_checkpoint());
  EHPC_EXPECTS(surviving_pes > 0);
  ++recoveries_;
  // Volatile state dies with the node; queues are rebuilt empty.
  for (auto& arr : arrays_) {
    for (auto& chare : arr.elements) chare.reset();
    arr.reduction = ReductionState{};
    std::fill(arr.load_s.begin(), arr.load_s.end(), 0.0);
  }
  comm_bytes_.clear();  // measured traffic died with the processes
  reset_pes(surviving_pes);
  num_pes_ = surviving_pes;
  rebuild_node_table();
  std::fill(node_egress_busy_.begin(), node_egress_busy_.end(), 0.0);

  // Restore elements. The checkpoint-time placement is only a *proposal*:
  // a checkpoint-time PE that no longer exists (node loss, or recovery onto
  // fewer PEs than the checkpoint was taken on) must not leak into the
  // location manager, so the placement goes through the LB seam, which
  // evicts illegal placements and keeps legal ones unless rebalancing wins.
  std::vector<LbObject> objects;
  objects.reserve(disk_checkpoint_.size());
  for (const auto& rec : disk_checkpoint_.records()) {
    auto& arr = array_state(rec.array);
    auto elem = arr.factory(rec.elem);
    Pup unpacker = Pup::unpacker(rec.payload);
    elem->pup(unpacker);
    arr.elements[static_cast<std::size_t>(rec.elem)] = std::move(elem);
    LbObject obj;
    obj.array = rec.array;
    obj.elem = rec.elem;
    // No measured compute load survives the failure; the checkpoint
    // footprint is the balance proxy (restore cost ∝ bytes).
    obj.load = rec.modeled_bytes;
    obj.bytes = rec.payload.size();
    obj.current_pe = remap(rec.pe);
    objects.push_back(obj);
  }
  if (!objects.empty()) {
    std::vector<PeId> survivors(static_cast<std::size_t>(num_pes_));
    std::iota(survivors.begin(), survivors.end(), 0);
    LbStepStats stats;
    const LbAssignment assignment =
        run_strategy(*lb_, objects, survivors, &stats);
    lb_history_.push_back(stats);
    for (std::size_t i = 0; i < objects.size(); ++i) {
      EHPC_ENSURES(assignment[i] >= 0 && assignment[i] < num_pes_);
      loc_.set_pe(objects[i].array, objects[i].elem, assignment[i]);
    }
  }
  if (app_state_pup_ && !disk_app_state_.empty()) {
    Pup unpacker = Pup::unpacker(disk_app_state_);
    app_state_pup_(unpacker);
  }

  // Each surviving PE reads its share of the checkpoint from disk; the
  // slowest PE bounds the stage, computed over the recovery placement.
  double read_stage = 0.0;
  std::vector<double> bytes(static_cast<std::size_t>(num_pes_), 0.0);
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_pes_), 0);
  for (const auto& rec : disk_checkpoint_.records()) {
    const PeId pe = loc_.pe_of(rec.array, rec.elem);
    bytes[static_cast<std::size_t>(pe)] += rec.modeled_bytes;
    counts[static_cast<std::size_t>(pe)] += 1;
  }
  for (std::size_t pe = 0; pe < bytes.size(); ++pe) {
    read_stage = std::max(read_stage, bytes[pe] / config_.disk_bandwidth_Bps +
                                          static_cast<double>(counts[pe]) *
                                              config_.checkpoint_per_obj_s);
  }
  const double downtime = config_.failure_detection_s +
                          config_.startup_alpha_s +
                          config_.startup_per_pe_s * num_pes_ + read_stage;
  EHPC_WARN("charm", "node failure: recovering from disk checkpoint (%.2fs downtime)",
            downtime);
  // Epoch guard: a second failure before this restart fires supersedes it;
  // running both would re-kick the application twice.
  sim_.schedule_after(downtime, [this, epoch = pe_epoch_] {
    if (epoch != pe_epoch_) return;
    if (restart_handler_) restart_handler_(*this);
  });
}

std::vector<double> Runtime::element_loads(ArrayId array) const {
  return array_state(array).load_s;
}

std::size_t Runtime::run() { return sim_.run(); }

std::size_t Runtime::run_until(sim::Time until) { return sim_.run_until(until); }

}  // namespace ehpc::charm
