#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "charm/ccs.hpp"
#include "charm/checkpoint.hpp"
#include "charm/load_balancer.hpp"
#include "charm/location.hpp"
#include "charm/pup.hpp"
#include "charm/rescale.hpp"
#include "charm/types.hpp"
#include "net/network_model.hpp"
#include "sim/simulation.hpp"

namespace ehpc::charm {

/// Tunables of the emulated machine and runtime system. Defaults approximate
/// the paper's testbed: c6g.4xlarge nodes (16 vCPUs) in an EKS cluster
/// placement group, OpenMPI startup costs, /dev/shm checkpoint bandwidth.
struct RuntimeConfig {
  int num_pes = 4;               ///< initial PE count (1 PE = 1 worker replica)
  int pes_per_node = 16;         ///< replicas packed per node (c6g.4xlarge: 16)
  double flop_rate = 2.0e9;      ///< sustained flops per PE (c6g Graviton2 core)
  double handler_overhead_s = 25.0e-6;  ///< per-message software cost (scheduler + TCP stack)
  /// Communication model behind the NetworkModel seam. The default is the
  /// flat pod-network alpha-beta model; swap in
  /// `net::make_network_model("fattree", oversub)` for per-link contention.
  /// The runtime clones it at construction, so one config can seed many
  /// concurrently-running runtimes.
  std::shared_ptr<const net::NetworkModel> network = net::default_network_model();
  double shm_bandwidth_Bps = 4.0e9;     ///< /dev/shm checkpoint+restore bandwidth
  double checkpoint_per_obj_s = 50.0e-6;  ///< per-object serialization overhead
  double startup_alpha_s = 0.4;  ///< restart fixed cost (mpirun launch)
  double startup_per_pe_s = 0.03;  ///< restart cost per rank (MPI_Init growth)
  double lb_decision_per_obj_s = 10.0e-6;  ///< central LB strategy cost/object
  std::string load_balancer = "greedy";  ///< "null" | "greedy" | "refine" | "commrefine"
  /// Per-node NIC egress serialization: inter-node messages leaving one node
  /// queue behind each other (TCP/ENA). This is the per-iteration floor that
  /// flattens strong scaling at high replica counts (paper Fig. 4a).
  double nic_per_msg_s = 10.0e-6;
  double nic_bandwidth_Bps = 1.25e9;
  /// Fault tolerance (paper §3.2.2): disk-checkpoint bandwidth (EBS-class,
  /// far slower than /dev/shm) and the failure-detection delay before a
  /// recovery restart begins.
  double disk_bandwidth_Bps = 0.2e9;
  double failure_detection_s = 5.0;
};

/// Reduction combiners available to `contribute`.
enum class ReduceOp { kSum, kMax, kMin };

/// Handle to an entry method pre-registered with `Runtime::register_entry`.
/// Dispatch through an EntryId is fully pre-resolved: delivery copies no
/// callable and performs no hashing — the hot path for per-iteration sends.
using EntryId = int;

inline constexpr EntryId kInvalidEntry = -1;

/// The minicharm runtime: a message-driven, migratable-objects runtime
/// emulated in virtual time (BigSim style).
///
/// Application code really executes — entry methods run real C++, ghost
/// exchanges carry real data, checkpoints serialize real bytes — while
/// *performance* comes from a machine model: declared flops over a per-PE
/// flop rate, alpha-beta message costs, shared-memory checkpoint bandwidth,
/// and an MPI-like startup cost for restarts. This lets 64-PE strong-scaling
/// and shrink/expand experiments (paper §4.1–4.2) run deterministically on
/// any host.
///
/// Threading model: single-threaded; all callbacks run on the caller's
/// thread inside `run()`.
class Runtime {
 public:
  using Handler = std::function<void(Chare&, Runtime&)>;
  using ElementFactory = std::function<std::unique_ptr<Chare>(ElementId)>;
  using ReductionClient = std::function<void(double, Runtime&)>;
  using RestartHandler = std::function<void(Runtime&)>;
  using ExternalEvent = std::function<void(Runtime&)>;

  explicit Runtime(RuntimeConfig config);
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // ---- topology ----
  int num_pes() const { return num_pes_; }
  int node_of(PeId pe) const {
    // Table lookup for live PEs; the division fallback serves out-of-range
    // queries (e.g. historical PE ids after a shrink).
    if (pe < 0) return -1;
    if (static_cast<std::size_t>(pe) < node_of_.size()) {
      return node_of_[static_cast<std::size_t>(pe)];
    }
    return pe / config_.pes_per_node;
  }
  sim::Time now() const { return sim_.now(); }
  const RuntimeConfig& config() const { return config_; }

  /// This runtime's private clone of the configured network model (carries
  /// the run's contention state; tests inspect link stats through it).
  const net::NetworkModel& network_model() const { return *net_; }

  // ---- chare arrays ----

  /// Create a chare array of `num_elements`, initially mapped round-robin
  /// over the PEs. The factory constructs a fresh (un-restored) element and
  /// is reused to rebuild elements after a restart.
  ArrayId create_array(std::string name, int num_elements, ElementFactory factory);

  int num_elements(ArrayId array) const { return loc_.num_elements(array); }

  /// Direct element access (driver/test use; application code should message).
  Chare& element(ArrayId array, ElementId elem);

  /// PE currently hosting an element.
  PeId pe_of(ArrayId array, ElementId elem) const { return loc_.pe_of(array, elem); }

  const std::vector<PeId>& mapping(ArrayId array) const { return loc_.mapping(array); }

  /// Scale factor applied to real pup sizes when charging checkpoint,
  /// restore and migration time. Applications running a reduced-resolution
  /// grid set this to (full bytes / real bytes) so rescaling costs reflect
  /// the full problem (see apps/ docs).
  void set_bytes_scale(ArrayId array, double scale);

  // ---- messaging ----

  /// Register an entry method once; subsequent sends address it by id.
  /// Registered handlers live for the runtime's lifetime.
  EntryId register_entry(Handler fn);

  /// Send a message of `bytes` to an element; `fn` runs on the destination
  /// as the entry method. Callable from inside a handler (cost charged from
  /// the executing PE at handler completion) or from driver/reduction-client
  /// context (charged from PE 0 at the current time).
  void send(ArrayId array, ElementId elem, std::size_t bytes, Handler fn);

  /// Send addressed to a pre-registered entry method: no per-message
  /// callable copy, envelope comes from the pool.
  void send(ArrayId array, ElementId elem, std::size_t bytes, EntryId entry);

  /// Send `fn` to every element of the array. Copies `fn` once per element;
  /// hot-loop broadcasts should register the handler and use the EntryId
  /// overload instead.
  void broadcast(ArrayId array, std::size_t bytes, const Handler& fn);

  /// Broadcast a pre-registered entry method (no callable copies at all).
  void broadcast(ArrayId array, std::size_t bytes, EntryId entry);

  /// Add compute work to the currently executing entry method. Only valid
  /// inside a handler. The work also counts toward the element's LB load.
  void charge_flops(double flops);

  /// Contribute to the array's current reduction round. When every element
  /// has contributed, the reduction client runs (once) with the combined
  /// value at the virtual time the slowest contribution plus a
  /// log2(P)-depth tree latency.
  void contribute(ArrayId array, double value, ReduceOp op);

  void set_reduction_client(ArrayId array, ReductionClient client);

  // ---- control ----

  /// Schedule an external control action (e.g. a CCS rescale request from
  /// the operator) at absolute virtual time `at`.
  void schedule_external(sim::Time at, ExternalEvent fn);

  /// The CCS control endpoint used by external schedulers.
  CcsServer& ccs() { return ccs_; }

  /// Invoked after every restart+restore so the application can resume from
  /// its checkpointed state (typically: re-broadcast "start iteration i").
  void set_restart_handler(RestartHandler handler);

  /// Poll the CCS mailbox; if a rescale is pending, execute it. Must be
  /// called at a quiescent point (no messages in flight), i.e. from a
  /// reduction client — the "next load-balancing step" of the paper.
  /// Returns true when a rescale was started: the caller must stop driving
  /// the application; the restart handler will resume it.
  bool poll_rescale();

  /// Explicit load balancing without a rescale ("AtSync"). Runs the
  /// configured strategy over all arrays, applies the migration, charges its
  /// virtual cost, then invokes `continuation`.
  void load_balance_then(ExternalEvent continuation);

  // ---- fault tolerance (paper §3.2.2) ----

  /// Extra application/driver state (e.g. the iteration counter) carried in
  /// every checkpoint so recovery restores it too.
  void set_app_state_pup(std::function<void(Pup&)> fn);

  /// Write a full checkpoint to (modeled) disk at a quiescent point, then
  /// run `continuation`. Unlike the in-memory rescale checkpoint, this one
  /// survives node failures.
  void disk_checkpoint_then(ExternalEvent continuation);

  /// Simulate a node failure: all volatile state (elements, queues,
  /// in-flight messages, reduction rounds) is lost; the runtime restarts
  /// from the last disk checkpoint with the checkpoint-time PE count,
  /// charges detection + restart + disk-read time, restores the app state,
  /// and invokes the restart handler. Unlike rescales this does not require
  /// quiescence — events belonging to the dead configuration are retired by
  /// the PE epoch guard. Throws PreconditionError without a prior
  /// checkpoint. Not callable from inside an entry method (a dead node
  /// cannot run handlers); inject from a reduction client or a scheduled
  /// external event instead.
  void fail_and_recover();

  /// Node-loss variant: restart on `surviving_pes` PEs (the checkpoint-time
  /// count minus the lost node's PEs). Elements whose checkpoint-time PE no
  /// longer exists are re-placed via the configured LB strategy instead of
  /// restoring an out-of-range placement.
  void fail_and_recover(int surviving_pes);

  /// Correlated-loss variant: `failed_pes` (checkpoint-time PE numbers,
  /// unique, at least one survivor) die together; the runtime restarts on
  /// the survivors, renumbered contiguously with their relative order
  /// preserved. Elements checkpointed on a surviving PE follow it to its
  /// new number; elements on a failed PE are re-placed via the LB strategy.
  void fail_and_recover(const std::vector<PeId>& failed_pes);

  bool has_disk_checkpoint() const { return !disk_checkpoint_.empty(); }
  int disk_checkpoints_taken() const { return disk_checkpoints_taken_; }
  int recoveries() const { return recoveries_; }

  /// Timing of the most recent rescale (empty before the first one).
  const std::optional<RescaleTiming>& last_rescale() const { return last_rescale_; }

  /// All rescale timings observed so far, in order.
  const std::vector<RescaleTiming>& rescale_history() const { return rescale_history_; }

  /// Accumulated LB load (seconds of charged compute) per element.
  std::vector<double> element_loads(ArrayId array) const;

  /// Imbalance accounting of every LB step run so far (AtSync balances and
  /// the LB stage of each rescale), in execution order.
  const std::vector<LbStepStats>& lb_history() const { return lb_history_; }

  // ---- execution ----

  /// Run until quiescence (no pending events). Returns events executed.
  std::size_t run();

  /// Run events up to virtual time `until`.
  std::size_t run_until(sim::Time until);

 private:
  /// In-flight message. Envelopes are pooled (free-list indexed by EnvIndex)
  /// so steady-state messaging recycles storage instead of allocating; the
  /// scheduled arrival event only carries the pool index.
  struct Envelope {
    ArrayId array = -1;
    ElementId elem = -1;
    std::size_t bytes = 0;
    EntryId entry = kInvalidEntry;  // registered dispatch; fn unused if set
    Handler fn;                     // ad hoc dispatch
  };
  using EnvIndex = std::uint32_t;
  static constexpr std::uint32_t kEnvChunkShift = 6;  // 64 envelopes per chunk
  static constexpr std::uint32_t kEnvChunkSize = 1u << kEnvChunkShift;
  static constexpr std::uint32_t kEnvChunkMask = kEnvChunkSize - 1;
  struct PendingContribute {
    ArrayId array;
    double value;
    ReduceOp op;
  };
  struct ReductionState {
    bool started = false;
    int contributed = 0;
    double acc = 0.0;
    ReduceOp op = ReduceOp::kSum;
    double latest_time = 0.0;
  };
  struct ArrayState {
    std::string name;
    ElementFactory factory;
    std::vector<std::unique_ptr<Chare>> elements;
    std::vector<double> load_s;   // charged compute since last LB
    double bytes_scale = 1.0;
    ReductionState reduction;
    ReductionClient client;
  };
  /// Per-PE delivery queue: a FIFO ring of envelope-pool indices. Storage
  /// is reset on drain, and the consumed prefix is reclaimed even while
  /// backlogged (a PE fed as fast as it services would otherwise accrete
  /// one dead index per message for the whole run).
  struct PeState {
    std::vector<EnvIndex> queue;
    std::size_t head = 0;
    bool busy = false;

    bool queue_empty() const { return head == queue.size(); }
    void push(EnvIndex idx) { queue.push_back(idx); }
    EnvIndex pop() {
      const EnvIndex idx = queue[head++];
      if (head == queue.size()) {
        queue.clear();
        head = 0;
      } else if (head >= 64 && 2 * head >= queue.size()) {
        queue.erase(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
      return idx;
    }
  };

  ArrayState& array_state(ArrayId array);
  const ArrayState& array_state(ArrayId array) const;

  Envelope& env_at(EnvIndex idx) {
    return env_chunks_[idx >> kEnvChunkShift][idx & kEnvChunkMask];
  }
  EnvIndex alloc_env(ArrayId array, ElementId elem, std::size_t bytes,
                     EntryId entry, Handler&& fn);
  void release_env(EnvIndex idx);
  void enqueue_send(ArrayId array, ElementId elem, std::size_t bytes,
                    EntryId entry, Handler&& fn);
  /// Drop all queued (undelivered) envelopes and rebuild `new_pes` empty PEs.
  void reset_pes(int new_pes);
  void rebuild_node_table();
  /// Shared recovery path of both fail_and_recover overloads: restart on
  /// `surviving_pes` PEs, proposing `remap(checkpoint_pe)` as each
  /// element's placement (out-of-range proposals are evicted by the LB).
  void recover_from_disk(int surviving_pes,
                         const std::function<PeId(PeId)>& remap);

  // Deliver an envelope to its destination PE at `arrival`.
  void dispatch(EnvIndex env, PeId from_pe, sim::Time send_time);
  void on_arrival(PeId pe, EnvIndex env);
  void start_service(PeId pe);
  void flush_contribute(const PendingContribute& c, sim::Time at);
  /// Modeled latency of a log2(pes)-depth reduction/broadcast tree observed
  /// at virtual time `at` (a contended fabric stretches it).
  double tree_latency(int pes, sim::Time at) const;

  // Rescale stages. Each returns the stage's virtual duration.
  double stage_load_balance(const std::vector<PeId>& available_pes,
                            int* migrated_out);
  double stage_checkpoint(MemCheckpoint& out);
  double stage_restart(int new_pes);
  double stage_restore(const MemCheckpoint& ckpt);
  void execute_rescale(CcsCommand cmd);
  void assert_quiescent() const;

  RuntimeConfig config_;
  sim::Simulation sim_;
  LocationManager loc_;
  std::vector<double> node_egress_busy_;  // per-node NIC availability time
  CcsServer ccs_;
  std::unique_ptr<net::NetworkModel> net_;  // private clone of config_.network
  std::unique_ptr<LoadBalancer> lb_;
  // Per-object-pair traffic since the last LB step, keyed by packed
  // (src array, src elem, dst array, dst elem). Only maintained when the
  // configured strategy is comm-aware; cleared with the LB loads.
  bool track_comm_ = false;
  std::map<std::uint64_t, double> comm_bytes_;
  std::vector<ArrayState> arrays_;
  std::vector<PeState> pes_;
  int num_pes_;
  // Bumped whenever pes_ is rebuilt (rescale restart, failure recovery);
  // pending completion events from the previous PE set compare and retire.
  std::uint32_t pe_epoch_ = 0;

  // Message envelope pool (chunked arena: stable addresses, no moves on
  // growth, free-list recycling) and the registered entry-method table
  // (deque: handler references stay stable while handlers register more).
  std::vector<std::unique_ptr<Envelope[]>> env_chunks_;
  std::uint32_t env_high_water_ = 0;
  std::vector<EnvIndex> env_free_;
  std::deque<Handler> entries_;
  std::vector<int> node_of_;  // node id per live PE (avoids hot-path division)

  // Execution context of the currently running entry method.
  bool in_handler_ = false;
  PeId ctx_pe_ = kExternalPe;
  double ctx_flops_ = 0.0;
  ArrayId ctx_array_ = -1;
  ElementId ctx_elem_ = -1;
  std::vector<EnvIndex> ctx_sends_;
  std::vector<PendingContribute> ctx_contributes_;

  RestartHandler restart_handler_;
  std::optional<RescaleTiming> last_rescale_;
  std::vector<RescaleTiming> rescale_history_;
  std::vector<LbStepStats> lb_history_;

  // Fault tolerance: the durable checkpoint and the app state stored in it.
  std::function<void(Pup&)> app_state_pup_;
  MemCheckpoint disk_checkpoint_;
  std::vector<std::byte> disk_app_state_;
  int disk_checkpoint_pes_ = 0;
  int disk_checkpoints_taken_ = 0;
  int recoveries_ = 0;
};

}  // namespace ehpc::charm
