#pragma once

namespace ehpc::charm {

/// Logical processing element (PE) index, 0-based. The paper's non-SMP build
/// maps one PE per worker replica; we follow the same convention.
using PeId = int;

/// Identifies a chare array registered with the runtime.
using ArrayId = int;

/// Index of an element within a chare array.
using ElementId = int;

inline constexpr PeId kExternalPe = -1;  ///< sender outside the runtime

}  // namespace ehpc::charm
