#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace ehpc {

namespace {

std::string normalize_key(std::string key) {
  std::replace(key.begin(), key.end(), '-', '_');
  return key;
}

}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.size() > 2 && token.compare(0, 2, "--") == 0) {
      token.erase(0, 2);
      if (token.find('=') == std::string::npos) token += "=true";
    }
    auto eq = token.find('=');
    if (eq == std::string::npos) {
      cfg.positional_.push_back(std::move(token));
    } else {
      cfg.values_[normalize_key(token.substr(0, eq))] = token.substr(eq + 1);
    }
  }
  return cfg;
}

Config Config::from_args(int argc, const char* const* argv,
                         const std::vector<std::string>& allowed_keys) {
  Config cfg = from_args(argc, argv);
  cfg.require_known(allowed_keys);
  return cfg;
}

void Config::require_known(const std::vector<std::string>& allowed_keys) const {
  for (const auto& [key, value] : values_) {
    if (std::find(allowed_keys.begin(), allowed_keys.end(), key) !=
        allowed_keys.end()) {
      continue;
    }
    std::string msg = "unknown option '" + key + "'; known options:";
    if (allowed_keys.empty()) {
      msg += " (none)";
    } else {
      for (const auto& k : allowed_keys) msg += " " + k;
    }
    throw ConfigError(msg);
  }
}

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

std::optional<std::string> Config::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(const std::string& key,
                           const std::string& fallback) const {
  return get(key).value_or(fallback);
}

int Config::get_int(const std::string& key, int fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  return std::atoi(v->c_str());
}

double Config::get_double(const std::string& key, double fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  return std::atof(v->c_str());
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower == "1" || lower == "true" || lower == "yes" || lower == "on";
}

}  // namespace ehpc
