#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace ehpc {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    auto eq = token.find('=');
    if (eq == std::string::npos) {
      cfg.positional_.push_back(std::move(token));
    } else {
      cfg.values_[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return cfg;
}

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

std::optional<std::string> Config::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(const std::string& key,
                           const std::string& fallback) const {
  return get(key).value_or(fallback);
}

int Config::get_int(const std::string& key, int fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  return std::atoi(v->c_str());
}

double Config::get_double(const std::string& key, double fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  return std::atof(v->c_str());
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower == "1" || lower == "true" || lower == "yes" || lower == "on";
}

}  // namespace ehpc
