#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ehpc {

/// Thrown by the strict Config parser when the command line contains a key
/// the program does not declare (e.g. a misspelled bench flag).
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Minimal "key=value" configuration map with typed getters, used by bench
/// and example binaries to accept overrides from the command line
/// (e.g. `fig7_submission_gap repeats=20 seed=7`).
///
/// GNU-style spellings are normalised: `--out-dir=x` parses as `out_dir=x`
/// and a bare `--quick` parses as `quick=true`.
class Config {
 public:
  Config() = default;

  /// Parse `argv`-style tokens of the form key=value; tokens without '=' are
  /// collected as positional arguments.
  static Config from_args(int argc, const char* const* argv);

  /// Strict variant: any parsed key not in `allowed_keys` raises ConfigError
  /// naming the offending key, so misspelled flags fail loudly instead of
  /// silently falling back to defaults.
  static Config from_args(int argc, const char* const* argv,
                          const std::vector<std::string>& allowed_keys);

  /// Raise ConfigError if this config holds a key outside `allowed_keys`.
  void require_known(const std::vector<std::string>& allowed_keys) const;

  void set(const std::string& key, std::string value);

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

  /// All key=value pairs, ordered by key.
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ehpc
