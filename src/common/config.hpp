#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ehpc {

/// Minimal "key=value" configuration map with typed getters, used by bench
/// and example binaries to accept overrides from the command line
/// (e.g. `fig7_submission_gap repeats=20 seed=7`).
class Config {
 public:
  Config() = default;

  /// Parse `argv`-style tokens of the form key=value; tokens without '=' are
  /// collected as positional arguments.
  static Config from_args(int argc, const char* const* argv);

  void set(const std::string& key, std::string value);

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ehpc
