#pragma once

#include <stdexcept>
#include <string>

namespace ehpc {

/// Thrown when a precondition on a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant is violated (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void raise_precondition(const char* expr, const char* file,
                                            int line) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line));
}
[[noreturn]] inline void raise_invariant(const char* expr, const char* file,
                                         int line) {
  throw InvariantError(std::string("invariant failed: ") + expr + " at " + file +
                       ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace ehpc

/// Validate a caller-supplied precondition; throws PreconditionError.
#define EHPC_EXPECTS(cond)                                            \
  do {                                                                \
    if (!(cond)) ::ehpc::detail::raise_precondition(#cond, __FILE__, __LINE__); \
  } while (0)

/// Validate an internal invariant; throws InvariantError.
#define EHPC_ENSURES(cond)                                          \
  do {                                                              \
    if (!(cond)) ::ehpc::detail::raise_invariant(#cond, __FILE__, __LINE__); \
  } while (0)
