#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>

namespace ehpc::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::mutex g_write_mutex;

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

bool enabled(Level lvl) { return lvl >= level() && level() != Level::kOff; }

void write(Level lvl, std::string_view component, std::string_view message) {
  std::lock_guard lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(lvl),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

Level parse_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "debug") return Level::kDebug;
  if (lower == "info") return Level::kInfo;
  if (lower == "warn" || lower == "warning") return Level::kWarn;
  if (lower == "error") return Level::kError;
  return Level::kOff;
}

}  // namespace ehpc::log
