#pragma once

#include <mutex>
#include <string>
#include <string_view>

#include "common/format.hpp"

namespace ehpc::log {

/// Severity levels, in increasing order of importance.
enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global minimum level that is emitted. Thread-safe.
void set_level(Level level);

/// Current global minimum level.
Level level();

/// True when messages at `level` would be emitted.
bool enabled(Level level);

/// Emit a single pre-formatted line. Thread-safe; used by the macros below.
void write(Level level, std::string_view component, std::string_view message);

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
Level parse_level(std::string_view text);

}  // namespace ehpc::log

#define EHPC_LOG(lvl, component, ...)                                      \
  do {                                                                     \
    if (::ehpc::log::enabled(lvl))                                         \
      ::ehpc::log::write(lvl, component, ::ehpc::strformat(__VA_ARGS__));  \
  } while (0)

#define EHPC_DEBUG(component, ...) \
  EHPC_LOG(::ehpc::log::Level::kDebug, component, __VA_ARGS__)
#define EHPC_INFO(component, ...) \
  EHPC_LOG(::ehpc::log::Level::kInfo, component, __VA_ARGS__)
#define EHPC_WARN(component, ...) \
  EHPC_LOG(::ehpc::log::Level::kWarn, component, __VA_ARGS__)
#define EHPC_ERROR(component, ...) \
  EHPC_LOG(::ehpc::log::Level::kError, component, __VA_ARGS__)
