#include "common/piecewise_linear.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ehpc {

PiecewiseLinear::PiecewiseLinear(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  EHPC_EXPECTS(!points_.empty());
  std::sort(points_.begin(), points_.end());
  for (std::size_t i = 1; i < points_.size(); ++i) {
    EHPC_EXPECTS(points_[i].first > points_[i - 1].first);
  }
}

std::size_t PiecewiseLinear::segment_for(double x) const {
  // Find the segment whose x-range contains x, clamping to the first/last
  // segment for out-of-range queries (linear extrapolation).
  if (points_.size() == 1) return 0;
  auto it = std::lower_bound(
      points_.begin(), points_.end(), x,
      [](const std::pair<double, double>& p, double v) { return p.first < v; });
  std::size_t hi = static_cast<std::size_t>(it - points_.begin());
  if (hi == 0) hi = 1;
  if (hi >= points_.size()) hi = points_.size() - 1;
  return hi - 1;
}

double PiecewiseLinear::at(double x) const {
  EHPC_EXPECTS(!points_.empty());
  if (points_.size() == 1) return points_.front().second;
  const std::size_t i = segment_for(x);
  const auto& [x0, y0] = points_[i];
  const auto& [x1, y1] = points_[i + 1];
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

double PiecewiseLinear::at_clamped(double x) const {
  EHPC_EXPECTS(!points_.empty());
  if (x <= points_.front().first) return points_.front().second;
  if (x >= points_.back().first) return points_.back().second;
  return at(x);
}

double PiecewiseLinear::at_loglog(double x) const {
  EHPC_EXPECTS(!points_.empty());
  EHPC_EXPECTS(x > 0.0);
  if (points_.size() == 1) return points_.front().second;
  const std::size_t i = segment_for(x);
  const auto& [x0, y0] = points_[i];
  const auto& [x1, y1] = points_[i + 1];
  EHPC_EXPECTS(x0 > 0.0 && y0 > 0.0 && y1 > 0.0);
  const double t = (std::log(x) - std::log(x0)) / (std::log(x1) - std::log(x0));
  return std::exp(std::log(y0) + t * (std::log(y1) - std::log(y0)));
}

}  // namespace ehpc
