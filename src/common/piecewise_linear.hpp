#pragma once

#include <utility>
#include <vector>

namespace ehpc {

/// A piecewise-linear function y(x) over strictly increasing breakpoints.
///
/// The paper's simulator (§4.3.1) models both job runtime as a function of
/// replica count and rescale overhead as a function of problem size with
/// piecewise-linear interpolation of measured data; this is that primitive.
///
/// Queries outside the breakpoint range extrapolate linearly from the first
/// or last segment (clamped extrapolation is available via `at_clamped`).
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// Construct from (x, y) points. Points are sorted by x; duplicate x values
  /// are rejected. Requires at least one point.
  explicit PiecewiseLinear(std::vector<std::pair<double, double>> points);

  /// Interpolated/extrapolated value at x.
  double at(double x) const;

  /// Like `at`, but outside the range returns the boundary y value.
  double at_clamped(double x) const;

  /// Same samples interpolated in log-log space, which matches strong-scaling
  /// curves (power laws appear as straight lines). All x and y must be > 0.
  double at_loglog(double x) const;

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  const std::vector<std::pair<double, double>>& points() const { return points_; }

 private:
  // Index of the segment [points_[i], points_[i+1]] used for query x.
  std::size_t segment_for(double x) const;

  std::vector<std::pair<double, double>> points_;
};

}  // namespace ehpc
