#include "common/rng.hpp"

#include <algorithm>
#include <numeric>

namespace ehpc {

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  EHPC_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    EHPC_EXPECTS(w >= 0.0);
    total += w;
  }
  EHPC_EXPECTS(total > 0.0);
  double r = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace ehpc
