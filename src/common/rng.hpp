#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/error.hpp"

namespace ehpc {

/// Deterministic, seedable random source used everywhere randomness is needed
/// so experiments are reproducible run-to-run.
///
/// Wraps a 64-bit Mersenne Twister with convenience samplers. A `split()`
/// operation derives an independent child stream, which lets parallel
/// components own private generators without sharing state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    EHPC_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) {
    EHPC_EXPECTS(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean) {
    EHPC_EXPECTS(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal with the given mean and non-negative standard deviation.
  double normal(double mean, double stddev) {
    EHPC_EXPECTS(stddev >= 0.0);
    if (stddev == 0.0) return mean;
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with probability p in [0, 1].
  bool chance(double p) {
    EHPC_EXPECTS(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Pick an index in [0, weights.size()) proportionally to `weights`.
  /// All weights must be non-negative and at least one positive.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Derive an independent child generator. The child's stream does not
  /// overlap this one's for practical purposes.
  Rng split() { return Rng(engine_() ^ 0xd1b54a32d192ed03ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ehpc
