#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ehpc {

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void WeightedMean::add(double value, double weight) {
  EHPC_EXPECTS(weight >= 0.0);
  weighted_sum_ += value * weight;
  weight_sum_ += weight;
  ++n_;
}

void WeightedMean::merge(const WeightedMean& other) {
  weighted_sum_ += other.weighted_sum_;
  weight_sum_ += other.weight_sum_;
  n_ += other.n_;
}

double WeightedMean::value() const {
  return weight_sum_ > 0.0 ? weighted_sum_ / weight_sum_ : 0.0;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  EHPC_EXPECTS(q > 0.0 && q < 1.0);
}

double P2Quantile::parabolic(int i, double d) const {
  const double num1 = pos_[i] - pos_[i - 1] + d;
  const double num2 = pos_[i + 1] - pos_[i] - d;
  return heights_[i] +
         d / (pos_[i + 1] - pos_[i - 1]) *
             (num1 * (heights_[i + 1] - heights_[i]) /
                  (pos_[i + 1] - pos_[i]) +
              num2 * (heights_[i] - heights_[i - 1]) /
                  (pos_[i] - pos_[i - 1]));
}

double P2Quantile::linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] +
         d * (heights_[j] - heights_[i]) / (pos_[j] - pos_[i]);
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
      desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
      increment_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
    }
    return;
  }
  ++n_;
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increment_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double step = d >= 0.0 ? 1.0 : -1.0;
      double candidate = parabolic(i, step);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, step);
      }
      pos_[i] += step;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact below five samples: interpolate the sorted prefix.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(n_));
    return percentile(std::span<const double>(sorted.data(), n_), q_);
  }
  return heights_[2];
}

double percentile(std::span<const double> samples, double q) {
  EHPC_EXPECTS(q >= 0.0 && q <= 1.0);
  EHPC_EXPECTS(!samples.empty());
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> samples) {
  EHPC_EXPECTS(!samples.empty());
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double time_weighted_average(const std::vector<std::pair<double, double>>& steps,
                             double end_time) {
  if (steps.empty()) return 0.0;
  EHPC_EXPECTS(end_time >= steps.front().first);
  double weighted = 0.0;
  double span = end_time - steps.front().first;
  if (span <= 0.0) return steps.back().second;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const double t0 = steps[i].first;
    const double t1 = (i + 1 < steps.size()) ? steps[i + 1].first : end_time;
    if (t1 <= t0) continue;
    weighted += steps[i].second * (std::min(t1, end_time) - t0);
  }
  return weighted / span;
}

}  // namespace ehpc
