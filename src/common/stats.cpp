#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ehpc {

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void WeightedMean::add(double value, double weight) {
  EHPC_EXPECTS(weight >= 0.0);
  weighted_sum_ += value * weight;
  weight_sum_ += weight;
  ++n_;
}

void WeightedMean::merge(const WeightedMean& other) {
  weighted_sum_ += other.weighted_sum_;
  weight_sum_ += other.weight_sum_;
  n_ += other.n_;
}

double WeightedMean::value() const {
  return weight_sum_ > 0.0 ? weighted_sum_ / weight_sum_ : 0.0;
}

double percentile(std::vector<double> samples, double q) {
  EHPC_EXPECTS(q >= 0.0 && q <= 1.0);
  EHPC_EXPECTS(!samples.empty());
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double mean_of(const std::vector<double>& samples) {
  EHPC_EXPECTS(!samples.empty());
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double time_weighted_average(const std::vector<std::pair<double, double>>& steps,
                             double end_time) {
  if (steps.empty()) return 0.0;
  EHPC_EXPECTS(end_time >= steps.front().first);
  double weighted = 0.0;
  double span = end_time - steps.front().first;
  if (span <= 0.0) return steps.back().second;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const double t0 = steps[i].first;
    const double t1 = (i + 1 < steps.size()) ? steps[i + 1].first : end_time;
    if (t1 <= t0) continue;
    weighted += steps[i].second * (std::min(t1, end_time) - t0);
  }
  return weighted / span;
}

}  // namespace ehpc
