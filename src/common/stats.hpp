#pragma once

#include <cstddef>
#include <vector>

namespace ehpc {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  /// Merge another accumulator into this one (parallel reduction friendly).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Weighted arithmetic mean accumulator. Used for the paper's
/// priority-weighted mean response/completion time metrics.
class WeightedMean {
 public:
  /// Add a sample with the given non-negative weight.
  void add(double value, double weight);
  void merge(const WeightedMean& other);

  double value() const;
  double total_weight() const { return weight_sum_; }
  std::size_t count() const { return n_; }

 private:
  double weighted_sum_ = 0.0;
  double weight_sum_ = 0.0;
  std::size_t n_ = 0;
};

/// Percentile of a sample set via linear interpolation between order
/// statistics. `q` is in [0, 1]. The input is copied and sorted.
double percentile(std::vector<double> samples, double q);

/// Mean of a sample vector. Like `percentile`, an empty input is a
/// precondition violation: callers that can legitimately see empty sample
/// sets must handle that case explicitly rather than silently folding a
/// spurious 0 into downstream aggregates.
double mean_of(const std::vector<double>& samples);

/// Time-weighted average of a step function given as (timestamp, value)
/// breakpoints: the function holds `value[i]` on [t[i], t[i+1]). The final
/// value extends to `end_time`. Used to compute average cluster utilization
/// from utilization-change events.
double time_weighted_average(const std::vector<std::pair<double, double>>& steps,
                             double end_time);

}  // namespace ehpc
