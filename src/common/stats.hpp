#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace ehpc {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  /// Merge another accumulator into this one (parallel reduction friendly).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Weighted arithmetic mean accumulator. Used for the paper's
/// priority-weighted mean response/completion time metrics.
class WeightedMean {
 public:
  /// Add a sample with the given non-negative weight.
  void add(double value, double weight);
  void merge(const WeightedMean& other);

  double value() const;
  double total_weight() const { return weight_sum_; }
  std::size_t count() const { return n_; }

 private:
  double weighted_sum_ = 0.0;
  double weight_sum_ = 0.0;
  std::size_t n_ = 0;
};

/// Online quantile estimator (Jain & Chlamtac's P² algorithm): tracks a
/// single quantile in O(1) memory with five markers. Exact for the first
/// five samples; after that the marker heights follow the empirical
/// quantile with a piecewise-parabolic adjustment. Accuracy degrades for
/// tail quantiles of heavy-tailed inputs — the trace bench reports both the
/// online and the exact value so the drift stays visible.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.5 for the median, 0.99 for p99.
  explicit P2Quantile(double q);

  void add(double x);
  std::size_t count() const { return n_; }
  /// Current estimate; 0 before any sample arrives.
  double value() const;

 private:
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double q_;
  std::size_t n_ = 0;
  std::array<double, 5> heights_{};   // marker heights (sorted)
  std::array<double, 5> pos_{};       // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increment_{}; // desired-position increments
};

/// Percentile of a sample set via linear interpolation between order
/// statistics. `q` is in [0, 1]. The input is not modified (an internal
/// copy is sorted).
double percentile(std::span<const double> samples, double q);

/// Mean of a sample set. Like `percentile`, an empty input is a
/// precondition violation: callers that can legitimately see empty sample
/// sets must handle that case explicitly rather than silently folding a
/// spurious 0 into downstream aggregates.
double mean_of(std::span<const double> samples);

// Braced-list conveniences (a braced list does not convert to std::span).
inline double percentile(std::initializer_list<double> samples, double q) {
  return percentile(std::span<const double>(samples.begin(), samples.size()),
                    q);
}
inline double mean_of(std::initializer_list<double> samples) {
  return mean_of(std::span<const double>(samples.begin(), samples.size()));
}

/// Time-weighted average of a step function given as (timestamp, value)
/// breakpoints: the function holds `value[i]` on [t[i], t[i+1]). The final
/// value extends to `end_time`. Used to compute average cluster utilization
/// from utilization-change events.
double time_weighted_average(const std::vector<std::pair<double, double>>& steps,
                             double end_time);

}  // namespace ehpc
