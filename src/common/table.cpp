#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/format.hpp"

#include "common/error.hpp"

namespace ehpc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  EHPC_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  EHPC_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
      out << (c + 1 < cells.size() ? "  " : "");
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        out << '"';
        for (char ch : cell) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
      out << (c + 1 < cells.size() ? "," : "");
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_markdown() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    out << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c)
      out << cells[c] << (c + 1 < cells.size() ? " | " : " |");
    out << '\n';
  };
  emit(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out << "---|";
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_text();
}

Table parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&] {
    record.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  auto end_record = [&] {
    if (cell_started || !record.empty()) {
      end_cell();
      records.push_back(std::move(record));
      record.clear();
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
      cell_started = true;
    } else if (ch == ',') {
      end_cell();
      cell_started = true;  // a trailing comma still implies one more cell
    } else if (ch == '\n') {
      end_record();
    } else if (ch == '\r') {
      // swallow CR of CRLF line endings
    } else {
      cell += ch;
      cell_started = true;
    }
  }
  end_record();

  EHPC_EXPECTS(!in_quotes);        // unterminated quoted cell
  EHPC_EXPECTS(!records.empty());  // need at least a header record

  Table table(records.front());
  for (std::size_t r = 1; r < records.size(); ++r)
    table.add_row(std::move(records[r]));
  return table;
}

std::string format_double(double value, int precision) {
  std::string s = strformat("%.*f", precision, value);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace ehpc
