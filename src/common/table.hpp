#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ehpc {

/// Accumulates tabular results and renders them as aligned text, CSV, or
/// GitHub-flavoured markdown. Every bench binary uses this to print the rows
/// or series of the paper table/figure it regenerates.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 3);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }
  const std::vector<std::string>& header() const { return headers_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  std::string to_text() const;
  std::string to_csv() const;
  std::string to_markdown() const;

  /// Write `to_text()` to the stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& table);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double compactly ("12.3", "0.042"), trimming trailing zeros.
std::string format_double(double value, int precision = 3);

/// Parse RFC-4180-style CSV text (as produced by Table::to_csv, including
/// quoted cells) back into a Table. The first record is the header. Throws
/// PreconditionError on empty input or ragged rows.
Table parse_csv(const std::string& text);

}  // namespace ehpc
