#pragma once

#include <limits>
#include <string>
#include <vector>

namespace ehpc::elastic {

using JobId = int;

/// User-facing job specification, mirroring the paper's extended MPIJob CRD
/// fields: worker minReplicas/maxReplicas and a priority (§3.2.1). Larger
/// `priority` values are more important; ties are broken by earlier
/// submission time.
struct JobSpec {
  JobId id = 0;
  std::string name;
  int min_replicas = 1;
  int max_replicas = 1;
  int priority = 1;
};

/// Scheduler bookkeeping for one job.
struct JobState {
  JobSpec spec;
  double submit_time = 0.0;
  int replicas = 0;       ///< current allocation; 0 while queued
  bool running = false;
  bool completed = false;
  /// Time of the last scheduling event affecting this job (creation, shrink,
  /// expand); rescales are suppressed within T_rescale_gap of it.
  double last_action_time = -std::numeric_limits<double>::infinity();
};

/// What the policy asks the executor to do.
enum class ActionType {
  kStart,    ///< launch a queued job with `target_replicas`
  kShrink,   ///< rescale a running job down to `target_replicas`
  kExpand,   ///< rescale a running job up to `target_replicas`
  kEnqueue,  ///< keep the job in the wait queue (informational)
};

struct Action {
  ActionType type = ActionType::kEnqueue;
  JobId job = 0;
  int target_replicas = 0;
};

/// Ordering used everywhere jobs are ranked: decreasing priority, then
/// earlier submission first, then lower id for determinism.
struct PriorityOrder {
  bool operator()(const JobState& a, const JobState& b) const {
    if (a.spec.priority != b.spec.priority) return a.spec.priority > b.spec.priority;
    if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
    return a.spec.id < b.spec.id;
  }
};

}  // namespace ehpc::elastic
