#include "elastic/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace ehpc::elastic {

MetricsCollector::MetricsCollector(int total_slots) : total_slots_(total_slots) {
  EHPC_EXPECTS(total_slots_ > 0);
}

void MetricsCollector::enable_streaming() {
  EHPC_EXPECTS(jobs_.empty() && usage_.empty() && n_jobs_ == 0 && !have_usage_);
  streaming_ = true;
}

void MetricsCollector::note_submit(double t) {
  if (!streaming_) return;
  if (!have_first_submit_ || t < first_submit_) {
    first_submit_ = t;
    have_first_submit_ = true;
  }
}

void MetricsCollector::add_job(const JobRecord& record) {
  EHPC_EXPECTS(record.start_time >= record.submit_time);
  EHPC_EXPECTS(record.complete_time >= record.start_time);
  if (!streaming_) {
    jobs_.push_back(record);
    return;
  }
  note_submit(record.submit_time);
  last_complete_ =
      n_jobs_ == 0 ? record.complete_time
                   : std::max(last_complete_, record.complete_time);
  ++n_jobs_;
  response_.add(record.response_time(), static_cast<double>(record.priority));
  completion_.add(record.completion_time(),
                  static_cast<double>(record.priority));
  if (record.failed) ++failed_count_;
  if (record.abandoned) ++abandoned_count_;
  if (record.timed_out) ++timed_out_count_;
  recovery_sum_ += record.recovery_s;
  lost_sum_ += record.lost_work_s;
  goodput_sum_ += record.goodput();
  // Snapshot the usage integral up to the new last completion. By event
  // ordering every recorded usage step is at t <= this completion time, so
  // extending the current level to `last_complete_` is exact.
  if (have_usage_) {
    const double tail_start = std::max(last_usage_t_, first_submit_);
    window_integral_ =
        integral_ +
        (last_complete_ > tail_start ? last_used_ * (last_complete_ - tail_start)
                                     : 0.0);
  }
}

void MetricsCollector::record_usage(double t, int used) {
  EHPC_EXPECTS(used >= 0 && used <= total_slots_);
  if (!streaming_) {
    EHPC_EXPECTS(usage_.empty() || t >= usage_.back().first);
    usage_.emplace_back(t, static_cast<double>(used));
    return;
  }
  EHPC_EXPECTS(!have_usage_ || t >= last_usage_t_);
  if (have_usage_ && have_first_submit_) {
    const double start = std::max(last_usage_t_, first_submit_);
    if (t > start) integral_ += last_used_ * (t - start);
  }
  last_usage_t_ = t;
  last_used_ = static_cast<double>(used);
  have_usage_ = true;
}

void MetricsCollector::record_lb_step(double post_ratio, double migrations) {
  EHPC_EXPECTS(post_ratio >= 1.0);
  EHPC_EXPECTS(migrations >= 0.0);
  lb_ratio_sum_ += post_ratio;
  lb_migration_sum_ += migrations;
  ++lb_count_;
}

void MetricsCollector::record_crash() { ++crashes_; }

void MetricsCollector::record_eviction() { ++evictions_; }

void MetricsCollector::record_domain_crash() { ++domain_crashes_; }

void MetricsCollector::record_restore(int concurrent, double delay_s) {
  EHPC_EXPECTS(concurrent >= 1);
  EHPC_EXPECTS(delay_s >= 0.0);
  peak_restorers_ = std::max(peak_restorers_, concurrent);
  storm_delay_sum_ += delay_s;
}

RunMetrics MetricsCollector::compute() const {
  RunMetrics m;
  if (lb_count_ > 0) {
    const double n = static_cast<double>(lb_count_);
    m.lb_post_ratio = lb_ratio_sum_ / n;
    m.lb_migrations_per_step = lb_migration_sum_ / n;
    m.lb_steps = n;
  }
  m.failures = static_cast<double>(crashes_);
  m.evictions = static_cast<double>(evictions_);
  m.correlated_failures = static_cast<double>(domain_crashes_);
  m.storm_peak_restorers = static_cast<double>(peak_restorers_);
  m.storm_delay_s = storm_delay_sum_;

  if (streaming_) {
    EHPC_EXPECTS(n_jobs_ > 0);
    m.total_time_s = last_complete_ - first_submit_;
    m.weighted_response_s = response_.value();
    m.weighted_completion_s = completion_.value();
    if (have_usage_ && last_complete_ > first_submit_) {
      m.utilization =
          window_integral_ / (last_complete_ - first_submit_) / total_slots_;
    }
    const double n = static_cast<double>(n_jobs_);
    m.jobs_failed = static_cast<double>(failed_count_);
    m.jobs_abandoned = static_cast<double>(abandoned_count_);
    m.jobs_timed_out = static_cast<double>(timed_out_count_);
    m.recovery_time_s = recovery_sum_ / n;
    m.lost_work_s = lost_sum_ / n;
    m.goodput = goodput_sum_ / n;
    return m;
  }

  EHPC_EXPECTS(!jobs_.empty());
  double first_submit = jobs_.front().submit_time;
  double last_complete = jobs_.front().complete_time;
  WeightedMean response;
  WeightedMean completion;
  for (const auto& j : jobs_) {
    first_submit = std::min(first_submit, j.submit_time);
    last_complete = std::max(last_complete, j.complete_time);
    response.add(j.response_time(), static_cast<double>(j.priority));
    completion.add(j.completion_time(), static_cast<double>(j.priority));
  }
  m.total_time_s = last_complete - first_submit;
  m.weighted_response_s = response.value();
  m.weighted_completion_s = completion.value();

  if (!usage_.empty() && last_complete > first_submit) {
    // Restrict the trace to the experiment window.
    std::vector<std::pair<double, double>> window;
    double current = 0.0;
    for (const auto& [t, used] : usage_) {
      if (t <= first_submit) {
        current = used;
      } else if (t <= last_complete) {
        if (window.empty()) window.emplace_back(first_submit, current);
        window.emplace_back(t, used);
      }
    }
    if (window.empty()) window.emplace_back(first_submit, current);
    m.utilization =
        time_weighted_average(window, last_complete) / total_slots_;
  }

  std::vector<double> recovery;
  std::vector<double> lost;
  std::vector<double> goodput;
  for (const auto& j : jobs_) {
    if (j.failed) m.jobs_failed += 1.0;
    if (j.abandoned) m.jobs_abandoned += 1.0;
    if (j.timed_out) m.jobs_timed_out += 1.0;
    recovery.push_back(j.recovery_s);
    lost.push_back(j.lost_work_s);
    goodput.push_back(j.goodput());
  }
  // jobs_ is non-empty (checked above); mean_of throws on empty input, and
  // keeping these vectors unconditional keeps that contract visible here.
  m.recovery_time_s = mean_of(recovery);
  m.lost_work_s = mean_of(lost);
  m.goodput = mean_of(goodput);
  return m;
}

RunMetrics average_metrics(const std::vector<RunMetrics>& runs) {
  EHPC_EXPECTS(!runs.empty());
  RunMetrics avg;
  avg.lb_post_ratio = 0.0;
  avg.goodput = 0.0;
  for (const auto& r : runs) {
    avg.total_time_s += r.total_time_s;
    avg.utilization += r.utilization;
    avg.weighted_response_s += r.weighted_response_s;
    avg.weighted_completion_s += r.weighted_completion_s;
    avg.lb_post_ratio += r.lb_post_ratio;
    avg.lb_migrations_per_step += r.lb_migrations_per_step;
    avg.lb_steps += r.lb_steps;
    avg.failures += r.failures;
    avg.evictions += r.evictions;
    avg.correlated_failures += r.correlated_failures;
    avg.storm_peak_restorers += r.storm_peak_restorers;
    avg.storm_delay_s += r.storm_delay_s;
    avg.jobs_failed += r.jobs_failed;
    avg.jobs_abandoned += r.jobs_abandoned;
    avg.jobs_timed_out += r.jobs_timed_out;
    avg.recovery_time_s += r.recovery_time_s;
    avg.lost_work_s += r.lost_work_s;
    avg.goodput += r.goodput;
  }
  const double n = static_cast<double>(runs.size());
  avg.total_time_s /= n;
  avg.utilization /= n;
  avg.weighted_response_s /= n;
  avg.weighted_completion_s /= n;
  avg.lb_post_ratio /= n;
  avg.lb_migrations_per_step /= n;
  avg.lb_steps /= n;
  avg.failures /= n;
  avg.evictions /= n;
  avg.correlated_failures /= n;
  avg.storm_peak_restorers /= n;
  avg.storm_delay_s /= n;
  avg.jobs_failed /= n;
  avg.jobs_abandoned /= n;
  avg.jobs_timed_out /= n;
  avg.recovery_time_s /= n;
  avg.lost_work_s /= n;
  avg.goodput /= n;
  return avg;
}

}  // namespace ehpc::elastic
