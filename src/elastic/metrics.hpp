#pragma once

#include <vector>

#include "common/stats.hpp"
#include "elastic/job.hpp"

namespace ehpc::elastic {

/// Lifecycle timestamps of one finished job, plus its fault history.
struct JobRecord {
  JobId id = 0;
  int priority = 1;
  double submit_time = 0.0;
  double start_time = 0.0;
  double complete_time = 0.0;
  /// Killed by the failure budget (complete_time is the kill time, not a
  /// successful completion).
  bool failed = false;
  /// Abandoned unstarted when its queue timeout expired (start_time and
  /// complete_time are both the abandon time).
  bool abandoned = false;
  /// Killed by its task timeout after running `task_timeout_s` of wall
  /// clock (complete_time is the kill time; the spent runtime is charged).
  bool timed_out = false;
  /// Progress rolled back to the last checkpoint across all failures.
  double lost_work_s = 0.0;
  /// Downtime spent on fault tolerance: writing periodic checkpoints plus
  /// detecting failures, restarting and restoring state after them.
  double recovery_s = 0.0;

  double response_time() const { return start_time - submit_time; }
  double completion_time() const { return complete_time - submit_time; }

  /// Fraction of the job's wall-clock span spent making forward progress
  /// (1 = no failures; 0 for a job that produced no result — killed by the
  /// failure budget, abandoned in the queue, or killed by its task
  /// timeout).
  double goodput() const {
    if (failed || abandoned || timed_out) return 0.0;
    const double span = complete_time - start_time;
    if (span <= 0.0) return 1.0;
    const double useful = span - lost_work_s - recovery_s;
    return useful > 0.0 ? useful / span : 0.0;
  }
};

/// The four metrics of paper §4.3, computed over one experiment run, plus
/// runtime load-balancing health observed during it.
struct RunMetrics {
  double total_time_s = 0.0;        ///< first submission to last completion
  double utilization = 0.0;         ///< time-weighted mean used/total slots
  double weighted_response_s = 0.0;   ///< priority-weighted mean response
  double weighted_completion_s = 0.0; ///< priority-weighted mean completion
  /// Load-balancer imbalance surfaced from the runtime layer: the mean
  /// post-LB max/avg PE load ratio (1.0 = perfectly balanced, also the
  /// value when no LB step ran) and mean object migrations per LB step.
  double lb_post_ratio = 1.0;
  double lb_migrations_per_step = 0.0;
  double lb_steps = 0.0;            ///< LB steps observed (mean when averaged)
  /// Fault-injection outcomes (all 0/1-neutral defaults when no faults ran):
  /// injected event counts, jobs killed by the failure budget, mean per-job
  /// recovery downtime and rolled-back work, and the mean per-job goodput
  /// fraction (1.0 = every job spent its whole span progressing).
  double failures = 0.0;            ///< node crashes injected
  double evictions = 0.0;           ///< pod evictions injected
  /// Correlated domain-crash events that hit at least one running job.
  double correlated_failures = 0.0;
  /// Recovery-storm shape: the most restores ever in flight at once, and
  /// the total extra downtime (seconds, summed over jobs) that restore-
  /// bandwidth sharing added on top of isolated restores.
  double storm_peak_restorers = 0.0;
  double storm_delay_s = 0.0;
  double jobs_failed = 0.0;         ///< jobs killed by the failure budget
  double jobs_abandoned = 0.0;      ///< jobs abandoned by their queue timeout
  double jobs_timed_out = 0.0;      ///< jobs killed by their task timeout
  double recovery_time_s = 0.0;     ///< mean per-job recovery downtime
  double lost_work_s = 0.0;         ///< mean per-job rolled-back work
  double goodput = 1.0;             ///< mean per-job useful-time fraction
};

/// Accumulates job records and a used-slots step trace, then computes the
/// run metrics. Used identically by the performance simulator and the
/// Kubernetes-substrate experiment so "Actual" and "Simulation" columns are
/// directly comparable.
///
/// Two accumulation modes:
///  - batch (default): every JobRecord and usage step is retained, so
///    callers can inspect per-job records after the run. Memory grows with
///    trace length.
///  - streaming (`enable_streaming()` before the first record): records are
///    folded into O(1) accumulators on arrival and never retained —
///    required by `ExecHarness::run_stream`, whose memory must stay
///    proportional to in-flight jobs on million-job traces. Streaming
///    consumers must call `note_submit(t)` at each submission so the
///    utilization window opens at the first submit, not the first
///    completion.
class MetricsCollector {
 public:
  explicit MetricsCollector(int total_slots);

  /// Switch to streaming accumulation. Must precede the first record.
  void enable_streaming();
  bool streaming() const { return streaming_; }

  /// Tell the collector a job was submitted at `t` (streaming mode only;
  /// a no-op in batch mode, where submit times come from the records).
  void note_submit(double t);

  void add_job(const JobRecord& record);

  /// Record that `used` slots are busy from time `t` onward.
  void record_usage(double t, int used);

  /// Record one runtime LB step: the post-LB max/avg PE load ratio it
  /// achieved and the object migrations it needed.
  void record_lb_step(double post_ratio, double migrations);

  /// Count one injected node crash / pod eviction.
  void record_crash();
  void record_eviction();

  /// Count one correlated domain-crash event (the per-victim crashes are
  /// still counted individually through record_crash).
  void record_domain_crash();
  /// Record one checkpoint restore beginning with `concurrent` restores in
  /// flight (itself included) and `delay_s` of contention stretch added by
  /// restore-bandwidth sharing.
  void record_restore(int concurrent, double delay_s);

  RunMetrics compute() const;

  /// Retained per-job records; empty in streaming mode.
  const std::vector<JobRecord>& jobs() const { return jobs_; }
  const std::vector<std::pair<double, double>>& usage_steps() const {
    return usage_;
  }

 private:
  int total_slots_;
  bool streaming_ = false;
  std::vector<JobRecord> jobs_;
  std::vector<std::pair<double, double>> usage_;  // (time, used slots)
  // LB steps fold into running sums in both modes (same addition order as
  // the old retained vector, so batch results are bit-identical).
  double lb_ratio_sum_ = 0.0;
  double lb_migration_sum_ = 0.0;
  long lb_count_ = 0;
  int crashes_ = 0;
  int evictions_ = 0;
  int domain_crashes_ = 0;
  int peak_restorers_ = 0;
  double storm_delay_sum_ = 0.0;

  // Streaming accumulators (mirror the batch compute() pass, in the same
  // per-record order, so the two modes agree).
  long n_jobs_ = 0;
  double first_submit_ = 0.0;
  bool have_first_submit_ = false;
  double last_complete_ = 0.0;
  WeightedMean response_;
  WeightedMean completion_;
  double recovery_sum_ = 0.0;
  double lost_sum_ = 0.0;
  double goodput_sum_ = 0.0;
  long failed_count_ = 0;
  long abandoned_count_ = 0;
  long timed_out_count_ = 0;
  // Usage step-function integral over [first_submit_, last event], plus a
  // snapshot truncated at the latest completion: pod/engine events that
  // arrive after the last completion must not leak into utilization (the
  // batch path windows the retained trace the same way).
  bool have_usage_ = false;
  double last_usage_t_ = 0.0;
  double last_used_ = 0.0;
  double integral_ = 0.0;
  double window_integral_ = 0.0;
};

/// Average each metric over several runs (the paper reports means over 100
/// random job mixes).
RunMetrics average_metrics(const std::vector<RunMetrics>& runs);

}  // namespace ehpc::elastic
