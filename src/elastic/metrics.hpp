#pragma once

#include <vector>

#include "elastic/job.hpp"

namespace ehpc::elastic {

/// Lifecycle timestamps of one finished job, plus its fault history.
struct JobRecord {
  JobId id = 0;
  int priority = 1;
  double submit_time = 0.0;
  double start_time = 0.0;
  double complete_time = 0.0;
  /// Killed by the failure budget (complete_time is the kill time, not a
  /// successful completion).
  bool failed = false;
  /// Progress rolled back to the last checkpoint across all failures.
  double lost_work_s = 0.0;
  /// Downtime spent on fault tolerance: writing periodic checkpoints plus
  /// detecting failures, restarting and restoring state after them.
  double recovery_s = 0.0;

  double response_time() const { return start_time - submit_time; }
  double completion_time() const { return complete_time - submit_time; }

  /// Fraction of the job's wall-clock span spent making forward progress
  /// (1 = no failures; 0 for a job killed by the failure budget).
  double goodput() const {
    if (failed) return 0.0;
    const double span = complete_time - start_time;
    if (span <= 0.0) return 1.0;
    const double useful = span - lost_work_s - recovery_s;
    return useful > 0.0 ? useful / span : 0.0;
  }
};

/// The four metrics of paper §4.3, computed over one experiment run, plus
/// runtime load-balancing health observed during it.
struct RunMetrics {
  double total_time_s = 0.0;        ///< first submission to last completion
  double utilization = 0.0;         ///< time-weighted mean used/total slots
  double weighted_response_s = 0.0;   ///< priority-weighted mean response
  double weighted_completion_s = 0.0; ///< priority-weighted mean completion
  /// Load-balancer imbalance surfaced from the runtime layer: the mean
  /// post-LB max/avg PE load ratio (1.0 = perfectly balanced, also the
  /// value when no LB step ran) and mean object migrations per LB step.
  double lb_post_ratio = 1.0;
  double lb_migrations_per_step = 0.0;
  double lb_steps = 0.0;            ///< LB steps observed (mean when averaged)
  /// Fault-injection outcomes (all 0/1-neutral defaults when no faults ran):
  /// injected event counts, jobs killed by the failure budget, mean per-job
  /// recovery downtime and rolled-back work, and the mean per-job goodput
  /// fraction (1.0 = every job spent its whole span progressing).
  double failures = 0.0;            ///< node crashes injected
  double evictions = 0.0;           ///< pod evictions injected
  double jobs_failed = 0.0;         ///< jobs killed by the failure budget
  double recovery_time_s = 0.0;     ///< mean per-job recovery downtime
  double lost_work_s = 0.0;         ///< mean per-job rolled-back work
  double goodput = 1.0;             ///< mean per-job useful-time fraction
};

/// Accumulates job records and a used-slots step trace, then computes the
/// run metrics. Used identically by the performance simulator and the
/// Kubernetes-substrate experiment so "Actual" and "Simulation" columns are
/// directly comparable.
class MetricsCollector {
 public:
  explicit MetricsCollector(int total_slots);

  void add_job(const JobRecord& record);

  /// Record that `used` slots are busy from time `t` onward.
  void record_usage(double t, int used);

  /// Record one runtime LB step: the post-LB max/avg PE load ratio it
  /// achieved and the object migrations it needed.
  void record_lb_step(double post_ratio, double migrations);

  /// Count one injected node crash / pod eviction.
  void record_crash();
  void record_eviction();

  RunMetrics compute() const;

  const std::vector<JobRecord>& jobs() const { return jobs_; }
  const std::vector<std::pair<double, double>>& usage_steps() const {
    return usage_;
  }

 private:
  int total_slots_;
  std::vector<JobRecord> jobs_;
  std::vector<std::pair<double, double>> usage_;  // (time, used slots)
  std::vector<std::pair<double, double>> lb_steps_;  // (post ratio, migrations)
  int crashes_ = 0;
  int evictions_ = 0;
};

/// Average each metric over several runs (the paper reports means over 100
/// random job mixes).
RunMetrics average_metrics(const std::vector<RunMetrics>& runs);

}  // namespace ehpc::elastic
