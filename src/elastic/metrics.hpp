#pragma once

#include <vector>

#include "elastic/job.hpp"

namespace ehpc::elastic {

/// Lifecycle timestamps of one finished job.
struct JobRecord {
  JobId id = 0;
  int priority = 1;
  double submit_time = 0.0;
  double start_time = 0.0;
  double complete_time = 0.0;

  double response_time() const { return start_time - submit_time; }
  double completion_time() const { return complete_time - submit_time; }
};

/// The four metrics of paper §4.3, computed over one experiment run.
struct RunMetrics {
  double total_time_s = 0.0;        ///< first submission to last completion
  double utilization = 0.0;         ///< time-weighted mean used/total slots
  double weighted_response_s = 0.0;   ///< priority-weighted mean response
  double weighted_completion_s = 0.0; ///< priority-weighted mean completion
};

/// Accumulates job records and a used-slots step trace, then computes the
/// run metrics. Used identically by the performance simulator and the
/// Kubernetes-substrate experiment so "Actual" and "Simulation" columns are
/// directly comparable.
class MetricsCollector {
 public:
  explicit MetricsCollector(int total_slots);

  void add_job(const JobRecord& record);

  /// Record that `used` slots are busy from time `t` onward.
  void record_usage(double t, int used);

  RunMetrics compute() const;

  const std::vector<JobRecord>& jobs() const { return jobs_; }
  const std::vector<std::pair<double, double>>& usage_steps() const {
    return usage_;
  }

 private:
  int total_slots_;
  std::vector<JobRecord> jobs_;
  std::vector<std::pair<double, double>> usage_;  // (time, used slots)
};

/// Average each metric over several runs (the paper reports means over 100
/// random job mixes).
RunMetrics average_metrics(const std::vector<RunMetrics>& runs);

}  // namespace ehpc::elastic
