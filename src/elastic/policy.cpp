#include "elastic/policy.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace ehpc::elastic {

std::string to_string(PolicyMode mode) {
  switch (mode) {
    case PolicyMode::kRigidMin: return "min_replicas";
    case PolicyMode::kRigidMax: return "max_replicas";
    case PolicyMode::kMoldable: return "moldable";
    case PolicyMode::kElastic: return "elastic";
  }
  return "?";
}

PolicyMode policy_mode_from_string(const std::string& name) {
  if (name == "min_replicas" || name == "min") return PolicyMode::kRigidMin;
  if (name == "max_replicas" || name == "max") return PolicyMode::kRigidMax;
  if (name == "moldable") return PolicyMode::kMoldable;
  if (name == "elastic") return PolicyMode::kElastic;
  throw PreconditionError("unknown policy mode: " + name);
}

PolicyEngine::PolicyEngine(int total_slots, PolicyConfig config)
    : total_slots_(total_slots), free_slots_(total_slots), config_(config) {
  EHPC_EXPECTS(total_slots_ > 0);
  EHPC_EXPECTS(config_.rescale_gap_s >= 0.0);
  EHPC_EXPECTS(config_.reserve_slots >= 0);
}

const JobState& PolicyEngine::job(JobId id) const {
  auto it = jobs_.find(id);
  EHPC_EXPECTS(it != jobs_.end());
  return it->second;
}

JobState& PolicyEngine::job_mut(JobId id) {
  auto it = jobs_.find(id);
  EHPC_EXPECTS(it != jobs_.end());
  return it->second;
}

JobSpec PolicyEngine::transform_spec(JobSpec spec) const {
  // The paper emulates the rigid schedulers by collapsing min and max.
  switch (config_.mode) {
    case PolicyMode::kRigidMin:
      spec.max_replicas = spec.min_replicas;
      break;
    case PolicyMode::kRigidMax:
      spec.min_replicas = spec.max_replicas;
      break;
    case PolicyMode::kMoldable:
    case PolicyMode::kElastic:
      break;
  }
  return spec;
}

bool PolicyEngine::rescale_allowed(const JobState& j, double now) const {
  return now - j.last_action_time >= config_.rescale_gap_s;
}

void PolicyEngine::set_progress_provider(ProgressProvider provider) {
  progress_ = std::move(provider);
}

double PolicyEngine::effective_priority(const JobState& j, double now) const {
  double priority = static_cast<double>(j.spec.priority);
  if (config_.aging_rate_per_s > 0.0 && !j.running && !j.completed) {
    priority += config_.aging_rate_per_s * std::max(0.0, now - j.submit_time);
  }
  return priority;
}

bool PolicyEngine::expand_worthwhile(const JobState& j, int add) const {
  if (config_.min_expand_gain > 0.0 &&
      static_cast<double>(add) <
          config_.min_expand_gain * static_cast<double>(j.replicas)) {
    return false;
  }
  if (config_.min_remaining_fraction_for_expand > 0.0 && progress_) {
    if (progress_(j.spec.id) < config_.min_remaining_fraction_for_expand) {
      return false;
    }
  }
  return true;
}

std::vector<JobId> PolicyEngine::queued() const {
  std::vector<const JobState*> states;
  for (const auto& [id, st] : jobs_) {
    if (!st.running && !st.completed) states.push_back(&st);
  }
  std::sort(states.begin(), states.end(),
            [](const JobState* a, const JobState* b) { return PriorityOrder{}(*a, *b); });
  std::vector<JobId> out;
  out.reserve(states.size());
  for (const auto* st : states) out.push_back(st->spec.id);
  return out;
}

std::vector<JobId> PolicyEngine::running() const {
  std::vector<const JobState*> states;
  for (const auto& [id, st] : jobs_) {
    if (st.running) states.push_back(&st);
  }
  std::sort(states.begin(), states.end(),
            [](const JobState* a, const JobState* b) { return PriorityOrder{}(*a, *b); });
  std::vector<JobId> out;
  out.reserve(states.size());
  for (const auto* st : states) out.push_back(st->spec.id);
  return out;
}

std::vector<JobId> PolicyEngine::all_jobs() const {
  std::vector<JobId> out;
  out.reserve(jobs_.size());
  for (const auto& [id, st] : jobs_) out.push_back(id);
  return out;
}

std::vector<Action> PolicyEngine::submit(const JobSpec& raw_spec, double now) {
  const JobSpec spec = transform_spec(raw_spec);
  EHPC_EXPECTS(spec.min_replicas >= 1);
  EHPC_EXPECTS(spec.max_replicas >= spec.min_replicas);
  EHPC_EXPECTS(spec.min_replicas <= total_slots_ - config_.reserve_slots);
  EHPC_EXPECTS(jobs_.count(spec.id) == 0);

  JobState st;
  st.spec = spec;
  st.submit_time = now;
  auto [it, inserted] = jobs_.emplace(spec.id, st);
  EHPC_ENSURES(inserted);
  JobState& job = it->second;

  // Fig. 2, first branch: start outright if the free slots allow >= min.
  const int replicas =
      std::min(free_slots_ - config_.reserve_slots, spec.max_replicas);
  if (replicas >= spec.min_replicas) {
    job.replicas = replicas;
    job.running = true;
    job.last_action_time = now;
    free_slots_ -= replicas;
    EHPC_DEBUG("policy", "job %d starts with %d replicas (free now %d)",
               spec.id, replicas, free_slots_);
    return {Action{ActionType::kStart, spec.id, replicas}};
  }

  // Not enough room. Only the elastic policy may evict capacity from
  // lower-priority running jobs; everyone else queues.
  if (config_.mode != PolicyMode::kElastic) {
    return {Action{ActionType::kEnqueue, spec.id, 0}};
  }
  return try_shrink_to_fit(job, now);
}

std::vector<Action> PolicyEngine::try_shrink_to_fit(JobState& job, double now) {
  const std::vector<JobId> order = running();  // decreasing priority

  // Fig. 2 dry-run: can enough slots be freed (respecting T_rescale_gap and
  // priority) to reach the job's min replicas? Walk from the lowest-priority
  // running job; index 0 (the highest-priority job) is never considered.
  const std::size_t stop = config_.protect_top_job ? 1 : 0;
  int num_to_free = job.spec.min_replicas - free_slots_ + config_.reserve_slots;
  const double job_priority = effective_priority(job, now);
  for (std::size_t i = order.size(); num_to_free > 0 && i-- > stop;) {
    const JobState& j = jobs_.at(order[i]);
    if (!rescale_allowed(j, now)) continue;
    if (effective_priority(j, now) > job_priority) break;
    if (j.replicas > j.spec.min_replicas) {
      const int new_replicas =
          std::max(j.spec.min_replicas, j.replicas - num_to_free);
      num_to_free -= j.replicas - new_replicas;
    }
  }
  if (num_to_free > 0) {
    return {Action{ActionType::kEnqueue, job.spec.id, 0}};
  }

  // Commit: shrink until the new job could run at max replicas (or we run
  // out of eligible victims), but only require reaching min.
  std::vector<Action> actions;
  int min_to_free = job.spec.min_replicas - free_slots_ + config_.reserve_slots;
  int max_to_free = job.spec.max_replicas - free_slots_ + config_.reserve_slots;
  for (std::size_t i = order.size(); max_to_free > 0 && i-- > stop;) {
    JobState& j = jobs_.at(order[i]);
    if (!rescale_allowed(j, now)) continue;
    if (effective_priority(j, now) > job_priority) break;
    if (j.replicas > j.spec.min_replicas) {
      const int new_replicas =
          std::max(j.spec.min_replicas, j.replicas - max_to_free);
      const int freed = j.replicas - new_replicas;
      j.replicas = new_replicas;
      j.last_action_time = now;
      free_slots_ += freed;
      min_to_free -= freed;
      max_to_free -= freed;
      actions.push_back(Action{ActionType::kShrink, j.spec.id, new_replicas});
      EHPC_DEBUG("policy", "shrink job %d to %d (freeing %d for job %d)",
                 j.spec.id, new_replicas, freed, job.spec.id);
    }
  }
  EHPC_ENSURES(min_to_free <= 0);  // the dry run guaranteed feasibility

  const int replicas =
      std::min(free_slots_ - config_.reserve_slots, job.spec.max_replicas);
  EHPC_ENSURES(replicas >= job.spec.min_replicas);
  job.replicas = replicas;
  job.running = true;
  job.last_action_time = now;
  free_slots_ -= replicas;
  actions.push_back(Action{ActionType::kStart, job.spec.id, replicas});
  return actions;
}

void PolicyEngine::abandon(JobId id) {
  JobState& st = job_mut(id);
  EHPC_EXPECTS(!st.running && !st.completed);
  EHPC_ENSURES(st.replicas == 0);  // queued jobs hold no slots
  st.completed = true;
}

void PolicyEngine::forget(JobId id) {
  auto it = jobs_.find(id);
  EHPC_EXPECTS(it != jobs_.end());
  EHPC_EXPECTS(it->second.completed);
  jobs_.erase(it);
}

std::vector<Action> PolicyEngine::complete(JobId id, double now) {
  JobState& done = job_mut(id);
  EHPC_EXPECTS(done.running);
  free_slots_ += done.replicas;
  done.replicas = 0;
  done.running = false;
  done.completed = true;

  // Fig. 3: hand the available slots to jobs in decreasing priority order —
  // running jobs below their max (elastic only) and queued jobs that can
  // reach at least their min.
  std::vector<const JobState*> candidates;
  for (const auto& [jid, st] : jobs_) {
    if (!st.completed) candidates.push_back(&st);
  }
  std::sort(candidates.begin(), candidates.end(),
            [this, now](const JobState* a, const JobState* b) {
              const double pa = effective_priority(*a, now);
              const double pb = effective_priority(*b, now);
              if (pa != pb) return pa > pb;
              return PriorityOrder{}(*a, *b);
            });

  const bool can_rescale = config_.mode == PolicyMode::kElastic;
  std::vector<Action> actions;
  int budget = free_slots_;
  for (const JobState* cand : candidates) {
    if (budget <= 0) break;
    JobState& j = job_mut(cand->spec.id);
    if (!rescale_allowed(j, now)) continue;
    if (j.running && !can_rescale) continue;
    if (j.replicas >= j.spec.max_replicas) continue;
    const int add = std::min(budget, j.spec.max_replicas - j.replicas);
    if (j.replicas + add < j.spec.min_replicas) continue;
    const bool was_queued = !j.running;
    if (!was_queued && !expand_worthwhile(j, add)) continue;
    j.replicas += add;
    j.running = true;
    j.last_action_time = now;
    free_slots_ -= add;
    budget -= add;
    actions.push_back(Action{was_queued ? ActionType::kStart : ActionType::kExpand,
                             j.spec.id, j.replicas});
    EHPC_DEBUG("policy", "%s job %d to %d replicas on completion of job %d",
               was_queued ? "start" : "expand", j.spec.id, j.replicas, id);
  }
  return actions;
}

}  // namespace ehpc::elastic
