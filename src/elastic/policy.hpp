#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "elastic/job.hpp"

namespace ehpc::elastic {

/// The four scheduling strategies evaluated in the paper (§4.3). All share
/// the same priority logic; they differ in sizing and in whether running
/// jobs may be rescaled:
///  - kRigidMin / kRigidMax: jobs are forced to min/max replicas (emulated,
///    as in the paper, by collapsing min=max in the spec) and never rescale.
///  - kMoldable: sized at launch to maximize utilization, never rescaled
///    (the elastic policy with rescaling disabled).
///  - kElastic: the paper's priority-based elastic policy (Fig. 2/3).
enum class PolicyMode { kRigidMin, kRigidMax, kMoldable, kElastic };

std::string to_string(PolicyMode mode);
PolicyMode policy_mode_from_string(const std::string& name);

struct PolicyConfig {
  PolicyMode mode = PolicyMode::kElastic;
  double rescale_gap_s = 180.0;  ///< T_rescale_gap between scheduling events
  /// Slots held back when sizing a new job (the "freeSlots - 1" in Fig. 2;
  /// the paper's cluster reserves headroom for the launcher pod). Default 0
  /// so a max_replicas=cluster job can run; see the ablation bench.
  int reserve_slots = 0;
  /// Fig. 2/3 walk victims with `index > 0`, so the highest-priority running
  /// job is never shrunk (and a lone running job cannot be evicted at all).
  /// true = faithful to the paper; false = also consider index 0 (ablation).
  bool protect_top_job = true;

  // ---- extensions beyond the paper's evaluated policy ----

  /// Aging (paper §3.2.2): a queued job's effective priority grows by this
  /// many priority points per second of waiting, preventing starvation of
  /// low-priority jobs under high traffic. 0 disables aging (paper default).
  double aging_rate_per_s = 0.0;

  /// Cost/benefit-aware expansion (paper §6): decline to expand a running
  /// job whose remaining work fraction is below this threshold — "if only a
  /// small fraction of a job remains, scaling up may not provide enough
  /// benefit". Requires a progress provider. 0 disables.
  double min_remaining_fraction_for_expand = 0.0;

  /// Decline expansions that grow a job by less than this fraction of its
  /// current replicas ("a small increase ... may not justify the overhead").
  /// 0 disables.
  double min_expand_gain = 0.0;
};

/// The scheduling-policy engine: owns the scheduler's view of every job and
/// implements the paper's submit/complete algorithms, emitting Actions for
/// an executor (the Kubernetes operator or the performance simulator) to
/// realize. The engine applies its own bookkeeping optimistically, exactly
/// like the in-operator scheduler whose view is authoritative.
class PolicyEngine {
 public:
  /// Reports the fraction of a job's work still remaining (1 = just started,
  /// 0 = done). Wired by the executor when cost/benefit-aware expansion is
  /// enabled; it stands in for the application-side accept/decline hook the
  /// paper sketches in §6.
  using ProgressProvider = std::function<double(JobId)>;

  PolicyEngine(int total_slots, PolicyConfig config);

  void set_progress_provider(ProgressProvider provider);

  /// Handle a job submission at time `now` (paper Fig. 2). The spec is
  /// transformed per the mode (rigid modes collapse min/max). Returns the
  /// actions to execute, in order: any shrinks first, then the start or an
  /// enqueue marker.
  std::vector<Action> submit(const JobSpec& spec, double now);

  /// Handle a job completion at time `now` (paper Fig. 3): free its slots
  /// and hand them to running jobs below max (elastic only) and to queued
  /// jobs, in priority order.
  std::vector<Action> complete(JobId id, double now);

  /// Withdraw a queued job that gave up waiting (its queue timeout fired).
  /// The job must be queued — never started; it holds no slots, so nothing
  /// is redistributed. It is marked completed so later redistribution
  /// passes skip it.
  void abandon(JobId id);

  /// Drop a completed job's state entirely. Streaming replay retires jobs
  /// as they finish so the engine's map — like the harness — holds only
  /// in-flight jobs, keeping million-job traces in bounded memory.
  void forget(JobId id);

  // ---- inspection ----
  int total_slots() const { return total_slots_; }
  int free_slots() const { return free_slots_; }
  int used_slots() const { return total_slots_ - free_slots_; }
  const PolicyConfig& config() const { return config_; }
  bool has_job(JobId id) const { return jobs_.count(id) > 0; }
  const JobState& job(JobId id) const;
  /// Queued (submitted, not yet started, not completed) jobs, priority order.
  std::vector<JobId> queued() const;
  /// Running jobs in decreasing priority order.
  std::vector<JobId> running() const;
  /// All jobs that have been submitted.
  std::vector<JobId> all_jobs() const;

 private:
  JobState& job_mut(JobId id);
  JobSpec transform_spec(JobSpec spec) const;
  bool rescale_allowed(const JobState& j, double now) const;
  /// Priority including aging credit for queued jobs.
  double effective_priority(const JobState& j, double now) const;
  /// Extension hooks: false when an expand of `j` by `add` replicas should
  /// be declined (too little remaining work or too little gain).
  bool expand_worthwhile(const JobState& j, int add) const;
  // Fig. 2 second half: shrink lower-priority running jobs to fit `job`.
  // Returns the actions performed; on failure leaves state untouched and
  // returns only an enqueue marker.
  std::vector<Action> try_shrink_to_fit(JobState& job, double now);

  int total_slots_;
  int free_slots_;
  PolicyConfig config_;
  std::map<JobId, JobState> jobs_;
  ProgressProvider progress_;
};

}  // namespace ehpc::elastic
