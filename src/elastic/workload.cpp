#include "elastic/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ehpc::elastic {

JobClass job_class_from_string(const std::string& name) {
  if (name == "small") return JobClass::kSmall;
  if (name == "medium") return JobClass::kMedium;
  if (name == "large") return JobClass::kLarge;
  if (name == "xlarge") return JobClass::kXLarge;
  throw PreconditionError("unknown job class '" + name +
                          "'; known: small medium large xlarge");
}

std::string to_string(JobClass c) {
  switch (c) {
    case JobClass::kSmall: return "small";
    case JobClass::kMedium: return "medium";
    case JobClass::kLarge: return "large";
    case JobClass::kXLarge: return "xlarge";
  }
  return "?";
}

double RescaleOverheadModel::checkpoint_s(int from) const {
  EHPC_EXPECTS(from > 0);
  const double per_pe_bytes = data_bytes / from;
  const double per_pe_objects =
      std::ceil(static_cast<double>(num_objects) / from);
  return per_pe_bytes / shm_bandwidth_Bps + per_pe_objects * per_object_s;
}

double RescaleOverheadModel::restore_s(int from, int to) const {
  EHPC_EXPECTS(from > 0 && to > 0);
  // Shrink: restore happens after the LB stage moved state onto `to` PEs.
  // Expand: restore uses the old mapping over `from` PEs (LB follows).
  const int pes = std::min(from, to);
  const double per_pe_bytes = data_bytes / pes;
  const double per_pe_objects = std::ceil(static_cast<double>(num_objects) / pes);
  return per_pe_bytes / shm_bandwidth_Bps + per_pe_objects * per_object_s;
}

double RescaleOverheadModel::restart_s(int to) const {
  EHPC_EXPECTS(to > 0);
  return startup_alpha_s + startup_per_pe_s * to;
}

double RescaleOverheadModel::load_balance_s(int from, int to) const {
  EHPC_EXPECTS(from > 0 && to > 0);
  if (from == to) return 0.0;
  // Fraction of state that must move to rebalance; the busiest endpoint
  // bounds the stage.
  const int lo = std::min(from, to);
  const int hi = std::max(from, to);
  const double moved_per_endpoint =
      data_bytes * (1.0 / lo - 1.0 / hi);  // worst sender/receiver volume
  const double decision_s = static_cast<double>(num_objects) * 10.0e-6;
  return decision_s + moved_per_endpoint / fabric_bandwidth_Bps;
}

double RescaleOverheadModel::overhead_s(int from, int to) const {
  if (from == to) return 0.0;
  return checkpoint_s(from) + restore_s(from, to) + restart_s(to) +
         load_balance_s(from, to);
}

namespace {

struct ClassParams {
  int grid_n;
  double steps;
  int min_replicas;
  int max_replicas;
};

ClassParams params_for(JobClass c) {
  // Paper §4.3.1: the four job sizes.
  switch (c) {
    case JobClass::kSmall: return {512, 40000, 2, 8};
    case JobClass::kMedium: return {2048, 40000, 4, 16};
    case JobClass::kLarge: return {8192, 40000, 8, 32};
    case JobClass::kXLarge: return {16384, 10000, 16, 64};
  }
  return {512, 40000, 2, 8};
}

/// Roofline-style Jacobi step-time model matching minicharm's machine
/// parameters: 6 flops/cell at 8 Gflop/s/PE, 256 blocks, alpha-beta ghosts.
double analytic_step_time(int grid_n, int replicas) {
  constexpr double kFlopRate = 2.0e9;
  constexpr double kFlopsPerCell = 6.0;
  constexpr int kBlocks = 256;
  constexpr double kPesPerNode = 16.0;
  constexpr double kHandlerOverhead = 25.0e-6;
  constexpr double kAlphaIntra = 3.0e-6;    // shared-memory transport
  constexpr double kAlphaInter = 302.0e-6;  // TCP over the pod network
  constexpr double kBandwidth = 1.0e9;

  const double cells = static_cast<double>(grid_n) * grid_n;
  const double compute = cells * kFlopsPerCell / (kFlopRate * replicas);
  const double blocks_per_pe =
      std::ceil(static_cast<double>(kBlocks) / replicas);
  const double ghost_bytes = (static_cast<double>(grid_n) / 16.0) * 8.0;
  // Allocations within one node exchange ghosts over shared memory; larger
  // allocations pay pod-network latency for the off-node fraction of
  // neighbours. This is what makes min-replica placements more efficient
  // per core than max-replica ones (paper §4.3.1 discussion of Fig. 7).
  const double frac_inter =
      replicas <= kPesPerNode ? 0.0 : 1.0 - kPesPerNode / replicas;
  const double alpha =
      kAlphaIntra + (kAlphaInter - kAlphaIntra) * frac_inter;
  // Per-PE software occupancy: the runtime overlaps message latencies with
  // other blocks' work, so latency is exposed roughly once per iteration
  // (pipeline fill), not per message.
  const double handlers = blocks_per_pe * 5.0 * kHandlerOverhead;
  const double exposed_latency = 2.0 * alpha + ghost_bytes / kBandwidth;
  // Per-node NIC serialization of inter-node ghosts: the non-scaling floor
  // that flattens strong scaling at high replica counts (paper Fig. 4a).
  const double nodes = std::ceil(replicas / kPesPerNode);
  const double inter_msgs_per_node =
      static_cast<double>(kBlocks) * 4.0 * frac_inter / std::max(nodes, 1.0);
  constexpr double kNicPerMsg = 10.0e-6;
  const double nic = inter_msgs_per_node * (kNicPerMsg + ghost_bytes / 1.25e9);
  const double reduction =
      std::ceil(std::log2(std::max(replicas, 2))) * std::max(alpha, kAlphaIntra);
  return compute + handlers + exposed_latency + nic + reduction;
}

}  // namespace

Workload make_workload(JobClass c) {
  const ClassParams p = params_for(c);
  Workload w;
  w.job_class = c;
  w.grid_n = p.grid_n;
  w.total_steps = p.steps;
  w.min_replicas = p.min_replicas;
  w.max_replicas = p.max_replicas;

  std::vector<std::pair<double, double>> points;
  for (int replicas : {1, 2, 4, 8, 16, 32, 64, 128}) {
    points.emplace_back(static_cast<double>(replicas),
                        analytic_step_time(p.grid_n, replicas));
  }
  w.time_per_step = PiecewiseLinear(std::move(points));

  w.rescale.data_bytes =
      static_cast<double>(p.grid_n) * static_cast<double>(p.grid_n) * 8.0;
  return w;
}

JobSpec spec_for_class(JobClass c, JobId id, int priority) {
  const ClassParams p = params_for(c);
  JobSpec spec;
  spec.id = id;
  spec.name = to_string(c) + "-" + std::to_string(id);
  spec.min_replicas = p.min_replicas;
  spec.max_replicas = p.max_replicas;
  spec.priority = priority;
  return spec;
}

}  // namespace ehpc::elastic
