#pragma once

#include <string>

#include "common/piecewise_linear.hpp"
#include "elastic/job.hpp"

namespace ehpc::elastic {

/// The four problem sizes used throughout the paper's evaluation (§4.3.1).
enum class JobClass { kSmall, kMedium, kLarge, kXLarge };

std::string to_string(JobClass c);

/// Parse "small" / "medium" / "large" / "xlarge"; throws PreconditionError
/// on anything else. Inverse of `to_string(JobClass)`; used by the trace
/// CSV loader and the cron/scenario config keys.
JobClass job_class_from_string(const std::string& name);

/// Physically grounded model of the 4-stage rescale overhead (paper §4.2):
/// checkpoint and restore scale with per-PE data over shared-memory
/// bandwidth, restart grows linearly with the new rank count (MPI startup),
/// and the LB stage moves the migrated fraction over the fabric.
struct RescaleOverheadModel {
  double data_bytes = 0.0;            ///< total application state
  int num_objects = 256;              ///< chares (for per-object costs)
  double shm_bandwidth_Bps = 4.0e9;   ///< /dev/shm effective bandwidth
  double per_object_s = 50.0e-6;      ///< serialization overhead per chare
  double startup_alpha_s = 0.4;       ///< mpirun fixed startup
  double startup_per_pe_s = 0.03;     ///< startup growth per rank
  double fabric_bandwidth_Bps = 1.5e9;  ///< migration path bandwidth

  double checkpoint_s(int from) const;
  double restore_s(int from, int to) const;
  double restart_s(int to) const;
  double load_balance_s(int from, int to) const;

  /// Total pause experienced by the application when rescaling from→to.
  double overhead_s(int from, int to) const;
};

/// Calibrated load-balancing behaviour of one runtime LB step for this
/// workload, as measured on minicharm (`apps::measure_amr_lb_profile`). The
/// default models a regular app: a perfectly balanced step with no
/// migrations. The experiment harness surfaces these through
/// `RunMetrics::lb_*` whenever a job rescales.
struct LbStepModel {
  double post_ratio = 1.0;          ///< max/avg PE load after an LB step
  double migrations_per_step = 0.0; ///< objects migrated per LB step
};

/// Everything the performance simulator needs to model one job's execution:
/// its spec bounds, how long a step takes at a given replica count
/// (piecewise-linear in replicas, as in the paper), and its rescale cost.
struct Workload {
  JobClass job_class = JobClass::kSmall;
  int grid_n = 512;
  double total_steps = 40000;
  int min_replicas = 2;
  int max_replicas = 8;
  PiecewiseLinear time_per_step;  ///< seconds per step vs replicas
  RescaleOverheadModel rescale;
  LbStepModel lb;                 ///< runtime LB behaviour when rescaling

  /// Runtime if executed start-to-finish at a fixed replica count.
  double runtime_at(int replicas) const {
    return total_steps * time_per_step.at_clamped(static_cast<double>(replicas));
  }
};

/// Analytic default workload for a job class: the paper's grid sizes, step
/// counts and min/max replicas, with a step-time curve from a roofline-style
/// model (compute W/P plus per-PE message costs plus a log-depth reduction).
/// The simulator can replace the curve with one calibrated from minicharm
/// runs (see schedsim::calibrate_workloads).
Workload make_workload(JobClass c);

/// Paper parameters for each class (grid, steps, min, max).
JobSpec spec_for_class(JobClass c, JobId id, int priority);

}  // namespace ehpc::elastic
