#include "k8s/api.hpp"

namespace ehpc::k8s {

std::string to_string(PodPhase phase) {
  switch (phase) {
    case PodPhase::kPending: return "Pending";
    case PodPhase::kScheduled: return "Scheduled";
    case PodPhase::kRunning: return "Running";
    case PodPhase::kSucceeded: return "Succeeded";
    case PodPhase::kFailed: return "Failed";
    case PodPhase::kTerminating: return "Terminating";
  }
  return "?";
}

bool matches_labels(const std::map<std::string, std::string>& labels,
                    const std::map<std::string, std::string>& selector) {
  for (const auto& [key, value] : selector) {
    auto it = labels.find(key);
    if (it == labels.end() || it->second != value) return false;
  }
  return true;
}

}  // namespace ehpc::k8s
