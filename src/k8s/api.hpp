#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace ehpc::k8s {

/// Kubernetes-style object metadata: stable name, monotonically increasing
/// resource version (bumped by the store on every write), labels, and the
/// creation timestamp in virtual time.
struct ObjectMeta {
  std::string name;
  std::uint64_t resource_version = 0;
  std::map<std::string, std::string> labels;
  double creation_time = 0.0;
};

/// Requested/allocatable compute resources. CPUs are whole vCPUs ("slots" in
/// the paper's terms: 1 worker replica = 1 vCPU with the non-SMP build);
/// memory in MiB.
struct Resources {
  int cpus = 0;
  int memory_mib = 0;

  Resources operator+(const Resources& o) const {
    return {cpus + o.cpus, memory_mib + o.memory_mib};
  }
  Resources operator-(const Resources& o) const {
    return {cpus - o.cpus, memory_mib - o.memory_mib};
  }
  bool fits_within(const Resources& capacity) const {
    return cpus <= capacity.cpus && memory_mib <= capacity.memory_mib;
  }
  bool operator==(const Resources& o) const = default;
};

/// A worker node (the paper's testbed: 4 × c6g.4xlarge, 16 vCPUs each).
struct Node {
  ObjectMeta meta;
  Resources capacity;
  bool ready = true;
};

enum class PodPhase {
  kPending,      ///< created, not yet bound to a node
  kScheduled,    ///< bound, container starting
  kRunning,
  kSucceeded,
  kFailed,
  kTerminating,  ///< deletion requested, grace period running
};

std::string to_string(PodPhase phase);

/// A pod: one schedulable unit. Worker pods carry the owning job's name in
/// labels["job"], which pod affinity uses for locality-aware placement.
struct Pod {
  ObjectMeta meta;
  Resources request{1, 512};
  /// Soft pod-affinity: prefer nodes already hosting pods whose labels match
  /// this key/value (empty = no affinity). The Charm++ operator sets
  /// affinity_key="job" so a job's workers pack together (paper §3.1).
  std::string affinity_key;
  std::string affinity_value;
  PodPhase phase = PodPhase::kPending;
  std::string node_name;  ///< empty until bound
  double scheduled_time = -1.0;
  double running_time = -1.0;
};

/// Label-selector helper: true when every (key, value) in `selector` appears
/// in `labels`.
bool matches_labels(const std::map<std::string, std::string>& labels,
                    const std::map<std::string, std::string>& selector);

}  // namespace ehpc::k8s
