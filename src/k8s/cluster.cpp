#include "k8s/cluster.hpp"

#include "common/error.hpp"

namespace ehpc::k8s {

Cluster::Cluster(ClusterConfig config) {
  index_ = std::make_unique<ClusterIndex>(nodes_, pods_);
  scheduler_ = std::make_unique<KubeScheduler>(sim_, nodes_, pods_,
                                               config.scheduler, index_.get());
  kubelet_ = std::make_unique<Kubelet>(sim_, pods_, config.kubelet);
  // Batched watch delivery: the first queued event of a window schedules a
  // flush on the current tick's FIFO lane, after the in-flight event chain.
  nodes_.enable_batched_delivery(
      [this] { sim_.schedule_now([this] { nodes_.flush(); }); });
  pods_.enable_batched_delivery(
      [this] { sim_.schedule_now([this] { pods_.flush(); }); });
}

void Cluster::add_nodes(const std::string& prefix, int count,
                        Resources capacity) {
  EHPC_EXPECTS(count > 0);
  for (int i = 0; i < count; ++i) {
    Node node;
    node.meta.name = prefix + "-" + std::to_string(i);
    node.meta.creation_time = sim_.now();
    node.capacity = capacity;
    nodes_.add(std::move(node));
  }
}

const Pod& Cluster::create_pod(Pod pod) {
  pod.meta.creation_time = sim_.now();
  pod.phase = PodPhase::kPending;
  return pods_.add(std::move(pod));
}

void Cluster::delete_pod(const std::string& name) {
  const Pod* pod = pods_.find(name);
  if (pod == nullptr || pod->phase == PodPhase::kTerminating) return;
  pods_.mutate(name, [](Pod& p) { p.phase = PodPhase::kTerminating; });
}

}  // namespace ehpc::k8s
