#include "k8s/cluster.hpp"

#include "common/error.hpp"

namespace ehpc::k8s {

Cluster::Cluster(ClusterConfig config) {
  scheduler_ = std::make_unique<KubeScheduler>(sim_, nodes_, pods_,
                                               config.scheduler);
  kubelet_ = std::make_unique<Kubelet>(sim_, pods_, config.kubelet);
}

void Cluster::add_nodes(const std::string& prefix, int count,
                        Resources capacity) {
  EHPC_EXPECTS(count > 0);
  for (int i = 0; i < count; ++i) {
    Node node;
    node.meta.name = prefix + "-" + std::to_string(i);
    node.meta.creation_time = sim_.now();
    node.capacity = capacity;
    nodes_.add(std::move(node));
  }
}

const Pod& Cluster::create_pod(Pod pod) {
  pod.meta.creation_time = sim_.now();
  pod.phase = PodPhase::kPending;
  return pods_.add(std::move(pod));
}

void Cluster::delete_pod(const std::string& name) {
  const Pod* pod = pods_.find(name);
  if (pod == nullptr || pod->phase == PodPhase::kTerminating) return;
  pods_.mutate(name, [](Pod& p) { p.phase = PodPhase::kTerminating; });
}

int Cluster::total_cpus() const {
  int total = 0;
  for (const Node* node : nodes_.list()) {
    if (node->ready) total += node->capacity.cpus;
  }
  return total;
}

int Cluster::used_cpus() const {
  int used = 0;
  for (const Pod* pod : pods_.list()) {
    if (pod->phase == PodPhase::kSucceeded || pod->phase == PodPhase::kFailed) {
      continue;
    }
    used += pod->request.cpus;
  }
  return used;
}

int Cluster::bound_cpus() const {
  int used = 0;
  for (const Pod* pod : pods_.list()) {
    if (pod->node_name.empty()) continue;
    if (pod->phase == PodPhase::kSucceeded || pod->phase == PodPhase::kFailed) {
      continue;
    }
    used += pod->request.cpus;
  }
  return used;
}

}  // namespace ehpc::k8s
