#pragma once

#include <memory>
#include <string>

#include "k8s/api.hpp"
#include "k8s/kubelet.hpp"
#include "k8s/scheduler.hpp"
#include "k8s/store.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace ehpc::k8s {

struct ClusterConfig {
  SchedulerConfig scheduler;
  KubeletConfig kubelet;
};

/// The assembled control plane: simulation clock, node/pod stores, the
/// scheduler and the node agent, plus convenience helpers mirroring common
/// kubectl verbs. Higher layers (the Charm++ operator) build on this facade.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});

  /// Add `count` ready nodes named `<prefix>-<i>` with the given capacity.
  /// The paper's testbed is `add_nodes("node", 4, {16, 32768})`.
  void add_nodes(const std::string& prefix, int count, Resources capacity);

  /// Create a pending pod; the scheduler will place it.
  const Pod& create_pod(Pod pod);

  /// Request pod deletion (phase -> Terminating; kubelet removes it later).
  void delete_pod(const std::string& name);

  /// Total CPU capacity across ready nodes.
  int total_cpus() const;

  /// CPUs claimed by non-finished pods (including still-pending ones).
  int used_cpus() const;

  /// CPUs claimed by pods actually placed on a node (bound, running or
  /// terminating) — what a utilization monitor would observe.
  int bound_cpus() const;

  sim::Simulation& sim() { return sim_; }
  ObjectStore<Node>& nodes() { return nodes_; }
  ObjectStore<Pod>& pods() { return pods_; }
  KubeScheduler& scheduler() { return *scheduler_; }
  Kubelet& kubelet() { return *kubelet_; }
  sim::TraceRecorder& trace() { return trace_; }

 private:
  sim::Simulation sim_;
  ObjectStore<Node> nodes_;
  ObjectStore<Pod> pods_;
  std::unique_ptr<KubeScheduler> scheduler_;
  std::unique_ptr<Kubelet> kubelet_;
  sim::TraceRecorder trace_;
};

}  // namespace ehpc::k8s
