#pragma once

#include <memory>
#include <string>

#include "k8s/api.hpp"
#include "k8s/kubelet.hpp"
#include "k8s/scheduler.hpp"
#include "k8s/store.hpp"
#include "k8s/views.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace ehpc::k8s {

struct ClusterConfig {
  SchedulerConfig scheduler;
  KubeletConfig kubelet;
};

/// The assembled control plane: simulation clock, node/pod stores, the
/// scheduler and the node agent, plus convenience helpers mirroring common
/// kubectl verbs. Higher layers (the Charm++ operator) build on this facade.
///
/// The cluster maintains one shared `ClusterIndex` over both stores (all
/// capacity/usage queries are O(1) or O(log n)) and switches both stores to
/// batched watch delivery: mutations queue their events and a flush is
/// scheduled at the current virtual time, so a burst of same-tick mutations
/// (a reconcile creating 100 pods, a sweep binding them) costs each watcher
/// one coalesced delivery pass instead of one synchronous fan-out per
/// mutation. Store reads and the index stay exact mid-window; only watcher
/// reaction is deferred to the tick's flush point — and every downstream
/// action is scheduled relative to the same virtual time, so behavior is
/// unchanged.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});

  /// Add `count` ready nodes named `<prefix>-<i>` with the given capacity.
  /// The paper's testbed is `add_nodes("node", 4, {16, 32768})`.
  void add_nodes(const std::string& prefix, int count, Resources capacity);

  /// Create a pending pod; the scheduler will place it.
  const Pod& create_pod(Pod pod);

  /// Request pod deletion (phase -> Terminating; kubelet removes it later).
  void delete_pod(const std::string& name);

  /// Total CPU capacity across ready nodes. O(1) from the index.
  int total_cpus() const { return index_->total_cpus(); }

  /// CPUs claimed by non-finished pods (including still-pending ones). O(1).
  int used_cpus() const { return index_->used_cpus(); }

  /// CPUs claimed by pods actually placed on a node (bound, running or
  /// terminating) — what a utilization monitor would observe. O(1).
  int bound_cpus() const { return index_->bound_cpus(); }

  sim::Simulation& sim() { return sim_; }
  ObjectStore<Node>& nodes() { return nodes_; }
  ObjectStore<Pod>& pods() { return pods_; }
  const ClusterIndex& index() const { return *index_; }
  KubeScheduler& scheduler() { return *scheduler_; }
  Kubelet& kubelet() { return *kubelet_; }
  sim::TraceRecorder& trace() { return trace_; }

 private:
  sim::Simulation sim_;
  ObjectStore<Node> nodes_;
  ObjectStore<Pod> pods_;
  std::unique_ptr<ClusterIndex> index_;
  std::unique_ptr<KubeScheduler> scheduler_;
  std::unique_ptr<Kubelet> kubelet_;
  sim::TraceRecorder trace_;
};

}  // namespace ehpc::k8s
