#include "k8s/kubelet.hpp"

#include "common/log.hpp"

namespace ehpc::k8s {

Kubelet::Kubelet(sim::Simulation& sim, ObjectStore<Pod>& pods,
                 KubeletConfig config)
    : sim_(sim), pods_(pods), config_(config) {
  pods_.watch([this](WatchEvent event, const Pod& pod) {
    if (event == WatchEvent::kDeleted) return;
    const std::string name = pod.meta.name;
    if (pod.phase == PodPhase::kScheduled) {
      sim_.schedule_after(config_.pod_startup_s, [this, name] {
        const Pod* p = pods_.find(name);
        if (p == nullptr || p->phase != PodPhase::kScheduled) return;
        const double now = sim_.now();
        pods_.mutate(name, [now](Pod& pp) {
          pp.phase = PodPhase::kRunning;
          pp.running_time = now;
        });
        ++started_count_;
        EHPC_DEBUG("kubelet", "pod %s running on %s", name.c_str(),
                   p->node_name.c_str());
      });
    } else if (pod.phase == PodPhase::kTerminating) {
      sim_.schedule_after(config_.pod_stop_s, [this, name] {
        const Pod* p = pods_.find(name);
        if (p == nullptr || p->phase != PodPhase::kTerminating) return;
        pods_.remove(name);
        ++stopped_count_;
        EHPC_DEBUG("kubelet", "pod %s removed", name.c_str());
      });
    }
  });
}

}  // namespace ehpc::k8s
