#pragma once

#include "k8s/api.hpp"
#include "k8s/store.hpp"
#include "sim/simulation.hpp"

namespace ehpc::k8s {

struct KubeletConfig {
  double pod_startup_s = 2.0;  ///< image pull + container start
  double pod_stop_s = 1.0;     ///< termination grace handling
};

/// The node-agent role of the substrate (one instance drives all nodes):
/// brings Scheduled pods to Running after the startup latency and removes
/// Terminating pods after the stop latency. These latencies are exactly the
/// operator-level overheads the paper's simulator ignores, which is what
/// separates the "Actual" from the "Simulation" columns of Table 1.
class Kubelet {
 public:
  Kubelet(sim::Simulation& sim, ObjectStore<Pod>& pods, KubeletConfig config);

  int started_count() const { return started_count_; }
  int stopped_count() const { return stopped_count_; }

 private:
  sim::Simulation& sim_;
  ObjectStore<Pod>& pods_;
  KubeletConfig config_;
  int started_count_ = 0;
  int stopped_count_ = 0;
};

}  // namespace ehpc::k8s
