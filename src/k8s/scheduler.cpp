#include "k8s/scheduler.hpp"

#include <vector>

#include "common/log.hpp"

namespace ehpc::k8s {

KubeScheduler::KubeScheduler(sim::Simulation& sim, ObjectStore<Node>& nodes,
                             ObjectStore<Pod>& pods, SchedulerConfig config,
                             const ClusterIndex* index)
    : sim_(sim), nodes_(nodes), pods_(pods), config_(config) {
  if (index == nullptr) {
    owned_index_ = std::make_unique<ClusterIndex>(nodes_, pods_);
    index = owned_index_.get();
  }
  index_ = index;
  // Watch for new pending pods and for capacity freed by departing pods.
  pods_.watch([this](WatchEvent event, const Pod& pod) {
    if (event == WatchEvent::kAdded && pod.phase == PodPhase::kPending) {
      const std::string name = pod.meta.name;
      sim_.schedule_after(config_.schedule_latency_s,
                          [this, name] { try_schedule(name); });
    } else if (event == WatchEvent::kDeleted) {
      // Freed capacity: give unschedulable pods another chance.
      request_retry();
    }
  });
  nodes_.watch([this](WatchEvent, const Node&) { request_retry(); });
}

Resources KubeScheduler::used_on(const std::string& node_name) const {
  return index_->used_on(node_name);
}

std::string KubeScheduler::pick_node(const Pod& pod) const {
  return index_->best_node(pod,
                           config_.strategy == PlacementStrategy::kBinPack,
                           config_.affinity_weight);
}

void KubeScheduler::try_schedule(const std::string& pod_name) {
  const Pod* pod = pods_.find(pod_name);
  if (pod == nullptr || pod->phase != PodPhase::kPending) return;
  ++stats_.bind_attempts;
  const std::string node = pick_node(*pod);
  if (node.empty()) {
    EHPC_DEBUG("kube-scheduler", "pod %s unschedulable, stays pending",
               pod_name.c_str());
    return;  // retried on the next pod/node event
  }
  const double now = sim_.now();
  pods_.mutate(pod_name, [&](Pod& p) {
    p.phase = PodPhase::kScheduled;
    p.node_name = node;
    p.scheduled_time = now;
  });
  ++scheduled_count_;
  EHPC_DEBUG("kube-scheduler", "bound pod %s -> %s", pod_name.c_str(),
             node.c_str());
}

void KubeScheduler::request_retry() {
  const double target = sim_.now() + config_.schedule_latency_s;
  if (target == retry_scheduled_for_) return;  // one sweep per tick
  retry_scheduled_for_ = target;
  sim_.schedule_after(config_.schedule_latency_s, [this] { retry_pending(); });
}

void KubeScheduler::retry_pending() {
  ++stats_.retry_sweeps;
  // Copy the names: a successful bind mutates the pending index mid-sweep.
  const auto& pending = index_->pods_in_phase(PodPhase::kPending);
  const std::vector<std::string> names(pending.begin(), pending.end());
  for (const std::string& name : names) try_schedule(name);
}

}  // namespace ehpc::k8s
