#include "k8s/scheduler.hpp"

#include <limits>

#include "common/log.hpp"

namespace ehpc::k8s {

KubeScheduler::KubeScheduler(sim::Simulation& sim, ObjectStore<Node>& nodes,
                             ObjectStore<Pod>& pods, SchedulerConfig config)
    : sim_(sim), nodes_(nodes), pods_(pods), config_(config) {
  // Watch for new pending pods and for capacity freed by departing pods.
  pods_.watch([this](WatchEvent event, const Pod& pod) {
    if (event == WatchEvent::kAdded && pod.phase == PodPhase::kPending) {
      const std::string name = pod.meta.name;
      sim_.schedule_after(config_.schedule_latency_s,
                          [this, name] { try_schedule(name); });
    } else if (event == WatchEvent::kDeleted) {
      // Freed capacity: give unschedulable pods another chance.
      sim_.schedule_after(config_.schedule_latency_s, [this] { retry_pending(); });
    }
  });
  nodes_.watch([this](WatchEvent, const Node&) {
    sim_.schedule_after(config_.schedule_latency_s, [this] { retry_pending(); });
  });
}

Resources KubeScheduler::used_on(const std::string& node_name) const {
  Resources used;
  for (const Pod* pod : pods_.list()) {
    if (pod->node_name != node_name) continue;
    if (pod->phase == PodPhase::kSucceeded || pod->phase == PodPhase::kFailed) {
      continue;
    }
    used = used + pod->request;
  }
  return used;
}

std::string KubeScheduler::pick_node(const Pod& pod) const {
  std::string best;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const Node* node : nodes_.list()) {
    if (!node->ready) continue;  // filter: node health
    const Resources used = used_on(node->meta.name);
    if (!(used + pod.request).fits_within(node->capacity)) continue;  // filter: fit

    // Score: allocation ratio (binpack prefers fuller nodes) plus soft
    // affinity to pods with the matching label.
    const double alloc_ratio =
        node->capacity.cpus > 0
            ? static_cast<double>(used.cpus) / node->capacity.cpus
            : 0.0;
    double score = config_.strategy == PlacementStrategy::kBinPack
                       ? alloc_ratio
                       : -alloc_ratio;
    if (!pod.affinity_key.empty()) {
      int colocated = 0;
      for (const Pod* other : pods_.list()) {
        if (other->node_name != node->meta.name) continue;
        auto it = other->meta.labels.find(pod.affinity_key);
        if (it != other->meta.labels.end() && it->second == pod.affinity_value) {
          ++colocated;
        }
      }
      score += config_.affinity_weight * colocated /
               std::max(1, node->capacity.cpus);
    }
    if (score > best_score) {
      best_score = score;
      best = node->meta.name;
    }
  }
  return best;
}

void KubeScheduler::try_schedule(const std::string& pod_name) {
  const Pod* pod = pods_.find(pod_name);
  if (pod == nullptr || pod->phase != PodPhase::kPending) return;
  const std::string node = pick_node(*pod);
  if (node.empty()) {
    EHPC_DEBUG("kube-scheduler", "pod %s unschedulable, stays pending",
               pod_name.c_str());
    return;  // retried on the next pod/node event
  }
  const double now = sim_.now();
  pods_.mutate(pod_name, [&](Pod& p) {
    p.phase = PodPhase::kScheduled;
    p.node_name = node;
    p.scheduled_time = now;
  });
  ++scheduled_count_;
  EHPC_DEBUG("kube-scheduler", "bound pod %s -> %s", pod_name.c_str(),
             node.c_str());
}

void KubeScheduler::retry_pending() {
  for (const Pod* pod : pods_.list_where(
           [](const Pod& p) { return p.phase == PodPhase::kPending; })) {
    try_schedule(pod->meta.name);
  }
}

}  // namespace ehpc::k8s
