#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "k8s/api.hpp"
#include "k8s/store.hpp"
#include "k8s/views.hpp"
#include "sim/simulation.hpp"

namespace ehpc::k8s {

/// Placement strategy of the scoring phase.
enum class PlacementStrategy {
  kBinPack,  ///< prefer the most-allocated feasible node (fills gaps)
  kSpread,   ///< prefer the least-allocated feasible node
};

struct SchedulerConfig {
  /// Delay between a pod appearing and its binding (queue + cycle latency).
  double schedule_latency_s = 0.05;
  PlacementStrategy strategy = PlacementStrategy::kBinPack;
  /// Score bonus per co-located pod matching the pod's affinity selector.
  /// The Charm++ operator relies on this for locality-aware placement.
  double affinity_weight = 4.0;
};

/// The kube-scheduler of the substrate: watches for Pending pods, runs a
/// filter phase (node ready, resources fit) and a scoring phase (binpack or
/// spread, plus soft pod-affinity), then binds the pod after the configured
/// scheduling latency. Pods that fit nowhere stay Pending and are retried on
/// every subsequent pod/node change.
///
/// All placement queries are answered from a `ClusterIndex` (incrementally
/// maintained, O(log n) per mutation) instead of rescanning the stores, so a
/// scheduling tick costs O(pending × feasible-node walk) rather than
/// O(pods × nodes × pods). Retry passes triggered by several events landing
/// on the same virtual-time tick are deduplicated: the pass is idempotent at
/// a fixed time, so one sweep per tick is behavior-identical to the
/// historical one-sweep-per-event.
class KubeScheduler {
 public:
  /// Deterministic tick-cost counters (committed-baseline material).
  struct Stats {
    std::int64_t bind_attempts = 0;  ///< try_schedule invocations
    std::int64_t retry_sweeps = 0;   ///< deduplicated pending-queue sweeps
  };

  /// `index` may be null, in which case the scheduler maintains a private
  /// ClusterIndex over the two stores (standalone use in tests). `Cluster`
  /// passes its shared index so the whole control plane maintains one.
  KubeScheduler(sim::Simulation& sim, ObjectStore<Node>& nodes,
                ObjectStore<Pod>& pods, SchedulerConfig config,
                const ClusterIndex* index = nullptr);

  /// Resources currently claimed on a node by bound, non-finished pods
  /// (Terminating pods still hold their request until removed).
  Resources used_on(const std::string& node_name) const;

  /// Feasible-and-best node for `pod`, or empty if none fits right now.
  std::string pick_node(const Pod& pod) const;

  int scheduled_count() const { return scheduled_count_; }
  const Stats& stats() const { return stats_; }
  const ClusterIndex& index() const { return *index_; }

 private:
  void try_schedule(const std::string& pod_name);
  void retry_pending();
  void request_retry();

  sim::Simulation& sim_;
  ObjectStore<Node>& nodes_;
  ObjectStore<Pod>& pods_;
  SchedulerConfig config_;
  std::unique_ptr<ClusterIndex> owned_index_;  ///< standalone mode only
  const ClusterIndex* index_;
  /// Virtual time of the most recently scheduled retry sweep; sweeps are
  /// deduplicated per target tick (events arrive in nondecreasing time).
  double retry_scheduled_for_ = -1.0;
  int scheduled_count_ = 0;
  Stats stats_;
};

}  // namespace ehpc::k8s
