#pragma once

#include <string>

#include "k8s/api.hpp"
#include "k8s/store.hpp"
#include "sim/simulation.hpp"

namespace ehpc::k8s {

/// Placement strategy of the scoring phase.
enum class PlacementStrategy {
  kBinPack,  ///< prefer the most-allocated feasible node (fills gaps)
  kSpread,   ///< prefer the least-allocated feasible node
};

struct SchedulerConfig {
  /// Delay between a pod appearing and its binding (queue + cycle latency).
  double schedule_latency_s = 0.05;
  PlacementStrategy strategy = PlacementStrategy::kBinPack;
  /// Score bonus per co-located pod matching the pod's affinity selector.
  /// The Charm++ operator relies on this for locality-aware placement.
  double affinity_weight = 4.0;
};

/// The kube-scheduler of the substrate: watches for Pending pods, runs a
/// filter phase (node ready, resources fit) and a scoring phase (binpack or
/// spread, plus soft pod-affinity), then binds the pod after the configured
/// scheduling latency. Pods that fit nowhere stay Pending and are retried on
/// every subsequent pod/node change.
class KubeScheduler {
 public:
  KubeScheduler(sim::Simulation& sim, ObjectStore<Node>& nodes,
                ObjectStore<Pod>& pods, SchedulerConfig config);

  /// Resources currently claimed on a node by bound, non-finished pods
  /// (Terminating pods still hold their request until removed).
  Resources used_on(const std::string& node_name) const;

  /// Feasible-and-best node for `pod`, or empty if none fits right now.
  std::string pick_node(const Pod& pod) const;

  int scheduled_count() const { return scheduled_count_; }

 private:
  void try_schedule(const std::string& pod_name);
  void retry_pending();

  sim::Simulation& sim_;
  ObjectStore<Node>& nodes_;
  ObjectStore<Pod>& pods_;
  SchedulerConfig config_;
  int scheduled_count_ = 0;
};

}  // namespace ehpc::k8s
