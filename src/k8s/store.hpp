#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace ehpc::k8s {

/// Kind of change delivered to watchers.
enum class WatchEvent { kAdded, kModified, kDeleted };

/// A typed, versioned object store with synchronous watch delivery — the
/// API-server role of the substrate. Every mutation bumps the object's
/// resourceVersion and notifies registered watchers in registration order,
/// which is how the scheduler, kubelets and the operator's controller react
/// to cluster changes (the "watch" machinery of real Kubernetes, collapsed
/// into an in-process call graph driven by the simulation).
///
/// T must expose an ObjectMeta member named `meta`.
template <typename T>
class ObjectStore {
 public:
  using Watcher = std::function<void(WatchEvent, const T&)>;

  /// Insert a new object; its name must be unused. Returns the stored copy.
  const T& add(T object) {
    EHPC_EXPECTS(!object.meta.name.empty());
    EHPC_EXPECTS(objects_.count(object.meta.name) == 0);
    object.meta.resource_version = ++version_counter_;
    auto [it, ok] = objects_.emplace(object.meta.name, std::move(object));
    EHPC_ENSURES(ok);
    notify(WatchEvent::kAdded, it->second);
    return it->second;
  }

  /// Replace an existing object (matched by name).
  const T& update(T object) {
    auto it = objects_.find(object.meta.name);
    EHPC_EXPECTS(it != objects_.end());
    object.meta.resource_version = ++version_counter_;
    it->second = std::move(object);
    notify(WatchEvent::kModified, it->second);
    return it->second;
  }

  /// Mutate an object in place through `fn`; bumps the version and notifies.
  template <typename Fn>
  const T& mutate(const std::string& name, Fn&& fn) {
    auto it = objects_.find(name);
    EHPC_EXPECTS(it != objects_.end());
    fn(it->second);
    it->second.meta.resource_version = ++version_counter_;
    notify(WatchEvent::kModified, it->second);
    return it->second;
  }

  /// Delete by name. Returns false if absent.
  bool remove(const std::string& name) {
    auto it = objects_.find(name);
    if (it == objects_.end()) return false;
    T object = std::move(it->second);
    objects_.erase(it);
    notify(WatchEvent::kDeleted, object);
    return true;
  }

  bool contains(const std::string& name) const { return objects_.count(name) > 0; }

  const T& get(const std::string& name) const {
    auto it = objects_.find(name);
    EHPC_EXPECTS(it != objects_.end());
    return it->second;
  }

  const T* find(const std::string& name) const {
    auto it = objects_.find(name);
    return it == objects_.end() ? nullptr : &it->second;
  }

  /// All objects in name order (deterministic iteration).
  std::vector<const T*> list() const {
    std::vector<const T*> out;
    out.reserve(objects_.size());
    for (const auto& [name, obj] : objects_) out.push_back(&obj);
    return out;
  }

  /// Objects satisfying a predicate.
  template <typename Pred>
  std::vector<const T*> list_where(Pred&& pred) const {
    std::vector<const T*> out;
    for (const auto& [name, obj] : objects_) {
      if (pred(obj)) out.push_back(&obj);
    }
    return out;
  }

  std::size_t size() const { return objects_.size(); }

  /// Register a watcher; it fires for every subsequent mutation.
  void watch(Watcher watcher) { watchers_.push_back(std::move(watcher)); }

  std::uint64_t latest_version() const { return version_counter_; }

 private:
  void notify(WatchEvent event, const T& object) {
    for (const auto& w : watchers_) w(event, object);
  }

  std::map<std::string, T> objects_;
  std::vector<Watcher> watchers_;
  std::uint64_t version_counter_ = 0;
};

}  // namespace ehpc::k8s
