#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace ehpc::k8s {

/// Kind of change delivered to watchers.
enum class WatchEvent { kAdded, kModified, kDeleted };

/// A typed, versioned object store — the API-server role of the substrate.
/// Every mutation bumps the object's resourceVersion; the scheduler, kubelets
/// and the operator's controller react to cluster changes through watchers
/// (the "watch" machinery of real Kubernetes, collapsed into an in-process
/// call graph driven by the simulation).
///
/// Two observation mechanisms with different consistency contracts:
///
/// **Views** (attach_view) are incrementally-maintained indexes. A view
/// callback runs *synchronously inside every mutation*, receiving the event
/// kind plus the before/after images of the object:
///   - `kAdded`:    before == nullptr, after == stored object
///   - `kModified`: before == pre-image,  after == post-image
///   - `kDeleted`:  before == final image, after == nullptr
/// Invariant: when any mutating call (`add`/`update`/`mutate`/`remove`)
/// returns, every attached view has already observed the change — a view's
/// derived state is never stale with respect to `get`/`list`, regardless of
/// delivery mode. Views must not mutate the store re-entrantly.
///
/// **Watchers** (watch) model the asynchronous watch channel. In the default
/// *immediate* mode they fire synchronously per mutation, in registration
/// order — the historical behavior. After `enable_batched_delivery`, events
/// are instead queued and delivered at an explicit `flush()` (scheduled by
/// the owner at a deterministic point in virtual time), with per-object
/// coalescing so a watcher's reaction cost scales with *distinct changed
/// objects* rather than raw mutation count.
///
/// Batched-delivery guarantees:
///   - Delivery is event-major: queued events are replayed in enqueue order,
///     and each event is handed to all eligible watchers in registration
///     order before the next event — the same interleaving a synchronous
///     store produces for the surviving events.
///   - Coalescing: a run of `kModified` events for one object with no
///     intervening `kAdded`/`kDeleted` of that object collapses into a
///     single event at the run's *first* queue position carrying the run's
///     *final* state. `kAdded` and `kDeleted` are never coalesced or
///     elided — an add+delete inside one window delivers both, so watchers
///     keyed on lifecycle edges (e.g. the scheduler's retry-on-delete) see
///     every edge.
///   - Snapshots: watchers receive the object state captured at coalescing
///     time, so a `kDeleted` event delivers the object's final image even
///     though it has left the store.
///   - A watcher registered mid-window sees only events enqueued after its
///     registration; a Modified run that began earlier stays folded into
///     its pre-registration queue position and is not replayed to it.
///   - Events enqueued *during* a flush (a watcher mutating the store) are
///     appended and drained by the same flush, after the already-queued
///     events; they are not coalesced into earlier positions.
///
/// T must expose an ObjectMeta member named `meta`.
template <typename T>
class ObjectStore {
 public:
  using Watcher = std::function<void(WatchEvent, const T&)>;
  using View = std::function<void(WatchEvent, const T* before, const T* after)>;
  using FlushRequester = std::function<void()>;

  /// Insert a new object; its name must be unused. Returns the stored copy.
  const T& add(T object) {
    EHPC_EXPECTS(!object.meta.name.empty());
    EHPC_EXPECTS(objects_.count(object.meta.name) == 0);
    object.meta.resource_version = ++version_counter_;
    auto [it, ok] = objects_.emplace(object.meta.name, std::move(object));
    EHPC_ENSURES(ok);
    notify_views(WatchEvent::kAdded, nullptr, &it->second);
    dispatch(WatchEvent::kAdded, it->second);
    return it->second;
  }

  /// Replace an existing object (matched by name).
  const T& update(T object) {
    auto it = objects_.find(object.meta.name);
    EHPC_EXPECTS(it != objects_.end());
    object.meta.resource_version = ++version_counter_;
    T before = std::move(it->second);
    it->second = std::move(object);
    notify_views(WatchEvent::kModified, &before, &it->second);
    dispatch(WatchEvent::kModified, it->second);
    return it->second;
  }

  /// Mutate an object in place through `fn`; bumps the version and notifies.
  template <typename Fn>
  const T& mutate(const std::string& name, Fn&& fn) {
    auto it = objects_.find(name);
    EHPC_EXPECTS(it != objects_.end());
    if (views_.empty()) {
      fn(it->second);
      it->second.meta.resource_version = ++version_counter_;
    } else {
      T before = it->second;  // pre-image for the views
      fn(it->second);
      it->second.meta.resource_version = ++version_counter_;
      notify_views(WatchEvent::kModified, &before, &it->second);
    }
    dispatch(WatchEvent::kModified, it->second);
    return it->second;
  }

  /// Delete by name. Returns false if absent.
  bool remove(const std::string& name) {
    auto it = objects_.find(name);
    if (it == objects_.end()) return false;
    T object = std::move(it->second);
    objects_.erase(it);
    notify_views(WatchEvent::kDeleted, &object, nullptr);
    dispatch(WatchEvent::kDeleted, object);
    return true;
  }

  bool contains(const std::string& name) const { return objects_.count(name) > 0; }

  const T& get(const std::string& name) const {
    auto it = objects_.find(name);
    EHPC_EXPECTS(it != objects_.end());
    return it->second;
  }

  const T* find(const std::string& name) const {
    auto it = objects_.find(name);
    return it == objects_.end() ? nullptr : &it->second;
  }

  /// All objects in name order (deterministic iteration).
  std::vector<const T*> list() const {
    std::vector<const T*> out;
    out.reserve(objects_.size());
    for (const auto& [name, obj] : objects_) out.push_back(&obj);
    return out;
  }

  /// Objects satisfying a predicate.
  template <typename Pred>
  std::vector<const T*> list_where(Pred&& pred) const {
    std::vector<const T*> out;
    for (const auto& [name, obj] : objects_) {
      if (pred(obj)) out.push_back(&obj);
    }
    return out;
  }

  std::size_t size() const { return objects_.size(); }

  /// Register a watcher. Immediate mode: fires synchronously for every
  /// subsequent mutation. Batched mode: receives events enqueued from now
  /// on, at the next flush.
  void watch(Watcher watcher) {
    watchers_.push_back({std::move(watcher), batched_ ? log_.size() : 0});
  }

  /// Attach an incrementally-maintained view; immediately and synchronously
  /// invoked on every subsequent mutation (see class comment for the
  /// before/after contract). Views are not replayed for existing objects —
  /// a view that must bootstrap walks `list()` itself before attaching.
  void attach_view(View view) { views_.push_back(std::move(view)); }

  /// Register a batch observer: called once after each delivered batch — in
  /// immediate mode after every mutation's watcher fan-out, in batched mode
  /// once per flush. Use for per-window sampling (e.g. one utilization
  /// sample per flush instead of one per mutation).
  void observe_batches(std::function<void()> fn) {
    batch_observers_.push_back(std::move(fn));
  }

  /// Switch watcher delivery to batched mode. `request_flush` is invoked at
  /// most once per window (on the first queued event since the last flush)
  /// and must arrange for `flush()` to be called at the desired point —
  /// typically `sim.schedule_now([&store]{ store.flush(); })`, which drains
  /// the window at the current virtual time after the in-flight event chain.
  void enable_batched_delivery(FlushRequester request_flush) {
    EHPC_EXPECTS(request_flush != nullptr);
    batched_ = true;
    request_flush_ = std::move(request_flush);
  }

  bool batched_delivery() const { return batched_; }

  /// Queued-but-undelivered events (0 in immediate mode).
  std::size_t pending_events() const { return log_.size(); }

  /// Deliver all queued events (see class comment for ordering guarantees).
  /// No-op when the queue is empty. Immediate-mode stores never queue, so
  /// calling flush() is always safe.
  void flush() {
    flush_requested_ = false;
    if (log_.empty()) return;
    flushing_ = true;
    // Index loops: watchers may register more watchers or enqueue more
    // events mid-flush; both vectors can grow (and reallocate) under us.
    for (std::size_t i = 0; i < log_.size(); ++i) {
      const WatchEvent event = log_[i].event;
      const T snapshot = std::move(log_[i].snapshot);
      for (std::size_t w = 0; w < watchers_.size(); ++w) {
        if (i >= watchers_[w].registered_at) watchers_[w].fn(event, snapshot);
      }
    }
    log_.clear();
    coalesce_.clear();
    for (auto& w : watchers_) w.registered_at = 0;
    flushing_ = false;
    for (std::size_t i = 0; i < batch_observers_.size(); ++i) {
      batch_observers_[i]();
    }
  }

  std::uint64_t latest_version() const { return version_counter_; }

 private:
  struct WatcherEntry {
    Watcher fn;
    std::size_t registered_at;  ///< first queue index this watcher receives
  };
  struct LogEntry {
    WatchEvent event;
    T snapshot;
  };

  void notify_views(WatchEvent event, const T* before, const T* after) {
    for (std::size_t i = 0; i < views_.size(); ++i) {
      views_[i](event, before, after);
    }
  }

  void dispatch(WatchEvent event, const T& object) {
    if (!batched_) {
      for (std::size_t w = 0; w < watchers_.size(); ++w) {
        watchers_[w].fn(event, object);
      }
      for (std::size_t i = 0; i < batch_observers_.size(); ++i) {
        batch_observers_[i]();
      }
      return;
    }
    const std::string& name = object.meta.name;
    if (event == WatchEvent::kModified && !flushing_) {
      if (auto it = coalesce_.find(name); it != coalesce_.end()) {
        log_[it->second].snapshot = object;  // fold the run: final state wins
        return;
      }
      coalesce_[name] = log_.size();
    } else {
      // An Added/Deleted edge ends any coalescible Modified run for this
      // object; mid-flush events append without coalescing (earlier queue
      // positions may already be delivered).
      coalesce_.erase(name);
    }
    log_.push_back({event, object});
    if (!flush_requested_ && !flushing_) {
      flush_requested_ = true;
      request_flush_();
    }
  }

  std::map<std::string, T> objects_;
  std::vector<WatcherEntry> watchers_;
  std::vector<View> views_;
  std::vector<std::function<void()>> batch_observers_;
  std::vector<LogEntry> log_;
  std::map<std::string, std::size_t> coalesce_;  ///< open Modified runs
  FlushRequester request_flush_;
  bool batched_ = false;
  bool flush_requested_ = false;
  bool flushing_ = false;
  std::uint64_t version_counter_ = 0;
};

}  // namespace ehpc::k8s
