#include "k8s/views.hpp"

#include <algorithm>
#include <limits>

namespace ehpc::k8s {

namespace {

/// Finished pods release their resource claim (but keep their labels
/// counted for affinity while bound — the historical colocation scan had no
/// phase filter).
bool claims_resources(const Pod& pod) {
  return pod.phase != PodPhase::kSucceeded && pod.phase != PodPhase::kFailed;
}

const std::set<std::string> kEmptySet;

}  // namespace

ClusterIndex::ClusterIndex(ObjectStore<Node>& nodes, ObjectStore<Pod>& pods) {
  // Bootstrap from current contents, then track every later mutation.
  for (const Node* node : nodes.list()) {
    on_node_event(WatchEvent::kAdded, nullptr, node);
  }
  for (const Pod* pod : pods.list()) {
    on_pod_event(WatchEvent::kAdded, nullptr, pod);
  }
  nodes.attach_view([this](WatchEvent event, const Node* before,
                           const Node* after) {
    on_node_event(event, before, after);
  });
  pods.attach_view(
      [this](WatchEvent event, const Pod* before, const Pod* after) {
        on_pod_event(event, before, after);
      });
}

double ClusterIndex::alloc_ratio(const NodeEntry& entry) {
  return entry.capacity.cpus > 0
             ? static_cast<double>(entry.used.cpus) / entry.capacity.cpus
             : 0.0;
}

ClusterIndex::NodeEntry& ClusterIndex::entry_for(const std::string& node) {
  return nodes_[node];  // placeholder (exists=false) for orphan bindings
}

void ClusterIndex::bucket_erase(const std::string& node,
                                const NodeEntry& entry) {
  if (!entry.exists || !entry.ready) return;
  auto it = by_ratio_.find(alloc_ratio(entry));
  EHPC_EXPECTS(it != by_ratio_.end());
  it->second.erase(node);
  if (it->second.empty()) by_ratio_.erase(it);
}

void ClusterIndex::bucket_insert(const std::string& node,
                                 const NodeEntry& entry) {
  if (!entry.exists || !entry.ready) return;
  by_ratio_[alloc_ratio(entry)].insert(node);
}

void ClusterIndex::on_node_event(WatchEvent event, const Node* before,
                                 const Node* after) {
  if (before != nullptr) {
    NodeEntry& entry = entry_for(before->meta.name);
    bucket_erase(before->meta.name, entry);
    if (entry.exists && entry.ready) total_cpus_ -= entry.capacity.cpus;
    entry.exists = false;
    entry.ready = false;
  }
  if (after != nullptr) {
    NodeEntry& entry = entry_for(after->meta.name);
    entry.exists = true;
    entry.capacity = after->capacity;
    entry.ready = after->ready;
    if (entry.ready) total_cpus_ += entry.capacity.cpus;
    bucket_insert(after->meta.name, entry);
  } else {
    // Deleted: drop the entry once no bound pod still references it.
    auto it = nodes_.find(before->meta.name);
    if (it != nodes_.end() && it->second.used == Resources{} &&
        it->second.label_counts.empty()) {
      nodes_.erase(it);
    }
  }
  (void)event;
}

void ClusterIndex::add_pod_contribution(const Pod& pod) {
  by_phase_[pod.phase].insert(pod.meta.name);
  for (const auto& [key, value] : pod.meta.labels) {
    by_label_[{key, value}].insert(pod.meta.name);
  }
  if (claims_resources(pod)) used_cpus_ += pod.request.cpus;
  if (pod.node_name.empty()) return;
  NodeEntry& entry = entry_for(pod.node_name);
  bucket_erase(pod.node_name, entry);
  if (claims_resources(pod)) {
    entry.used = entry.used + pod.request;
    bound_cpus_ += pod.request.cpus;
  }
  for (const auto& [key, value] : pod.meta.labels) {
    ++entry.label_counts[{key, value}];
    ++label_nodes_[{key, value}][pod.node_name];
  }
  bucket_insert(pod.node_name, entry);
}

void ClusterIndex::remove_pod_contribution(const Pod& pod) {
  by_phase_[pod.phase].erase(pod.meta.name);
  for (const auto& [key, value] : pod.meta.labels) {
    auto it = by_label_.find({key, value});
    it->second.erase(pod.meta.name);
    if (it->second.empty()) by_label_.erase(it);
  }
  if (claims_resources(pod)) used_cpus_ -= pod.request.cpus;
  if (pod.node_name.empty()) return;
  NodeEntry& entry = entry_for(pod.node_name);
  bucket_erase(pod.node_name, entry);
  if (claims_resources(pod)) {
    entry.used = entry.used - pod.request;
    bound_cpus_ -= pod.request.cpus;
  }
  for (const auto& [key, value] : pod.meta.labels) {
    auto lc = entry.label_counts.find({key, value});
    if (--lc->second == 0) entry.label_counts.erase(lc);
    auto ln = label_nodes_.find({key, value});
    auto node_it = ln->second.find(pod.node_name);
    if (--node_it->second == 0) ln->second.erase(node_it);
    if (ln->second.empty()) label_nodes_.erase(ln);
  }
  bucket_insert(pod.node_name, entry);
}

void ClusterIndex::on_pod_event(WatchEvent event, const Pod* before,
                                const Pod* after) {
  (void)event;
  if (before != nullptr) remove_pod_contribution(*before);
  if (after != nullptr) add_pod_contribution(*after);
}

Resources ClusterIndex::used_on(const std::string& node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? Resources{} : it->second.used;
}

int ClusterIndex::colocated(const std::string& node, const std::string& key,
                            const std::string& value) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return 0;
  auto lc = it->second.label_counts.find({key, value});
  return lc == it->second.label_counts.end() ? 0 : lc->second;
}

const std::set<std::string>& ClusterIndex::pods_in_phase(PodPhase phase) const {
  auto it = by_phase_.find(phase);
  return it == by_phase_.end() ? kEmptySet : it->second;
}

const std::set<std::string>& ClusterIndex::pods_with_label(
    const std::string& key, const std::string& value) const {
  auto it = by_label_.find({key, value});
  return it == by_label_.end() ? kEmptySet : it->second;
}

std::string ClusterIndex::best_node(const Pod& pod, bool prefer_packed,
                                    double affinity_weight) const {
  ++stats_.placement_queries;
  std::string best;
  double best_score = -std::numeric_limits<double>::infinity();

  // Affinity candidates carry a score bonus, so they are evaluated
  // individually (name order, matching the historical scan's tie-break).
  const std::map<std::string, int>* affinity_nodes = nullptr;
  if (!pod.affinity_key.empty()) {
    auto it = label_nodes_.find({pod.affinity_key, pod.affinity_value});
    if (it != label_nodes_.end()) affinity_nodes = &it->second;
  }
  if (affinity_nodes != nullptr) {
    for (const auto& [name, count] : *affinity_nodes) {
      auto nit = nodes_.find(name);
      const NodeEntry& entry = nit->second;
      if (!entry.exists || !entry.ready) continue;
      ++stats_.nodes_examined;
      if (!(entry.used + pod.request).fits_within(entry.capacity)) continue;
      double score = prefer_packed ? alloc_ratio(entry) : -alloc_ratio(entry);
      score += affinity_weight * count / std::max(1, entry.capacity.cpus);
      if (score > best_score) {
        best_score = score;
        best = name;
      }
    }
  }

  // Plain candidates share a score within a ratio bucket, so the first
  // fitting node of the best feasible bucket is the plain optimum. Walk
  // buckets in score order and stop as soon as no later bucket can win.
  const auto scan_bucket = [&](double ratio,
                               const std::set<std::string>& names) {
    const double score = prefer_packed ? ratio : -ratio;
    if (!best.empty() && score < best_score) return true;  // done
    const bool tie = !best.empty() && score == best_score;
    for (const auto& name : names) {
      if (affinity_nodes != nullptr && affinity_nodes->count(name) > 0) {
        continue;  // scored above, with the bonus
      }
      const NodeEntry& entry = nodes_.find(name)->second;
      ++stats_.nodes_examined;
      if (!(entry.used + pod.request).fits_within(entry.capacity)) continue;
      if (tie) {
        // Equal scores resolve to the first node in global name order
        // (the historical scan kept the first strict maximum).
        if (name < best) best = name;
      } else {
        best_score = score;
        best = name;
      }
      return true;  // later nodes in this bucket can only have larger names
    }
    return false;  // nothing fits here, try the next bucket
  };

  if (prefer_packed) {
    for (auto it = by_ratio_.rbegin(); it != by_ratio_.rend(); ++it) {
      // A CPU-saturated bucket cannot fit a CPU-requesting pod; skip it
      // without touching its (possibly many) nodes.
      if (pod.request.cpus > 0 && it->first >= 1.0) continue;
      if (scan_bucket(it->first, it->second)) break;
    }
  } else {
    for (const auto& [ratio, names] : by_ratio_) {
      if (pod.request.cpus > 0 && ratio >= 1.0) continue;
      if (scan_bucket(ratio, names)) break;
    }
  }
  return best;
}

}  // namespace ehpc::k8s
