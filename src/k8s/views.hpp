#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "k8s/api.hpp"
#include "k8s/store.hpp"

namespace ehpc::k8s {

/// Incrementally-maintained indexed views over the node/pod stores — the
/// FileSystemView pattern: a flat object store stays the source of truth,
/// and every query the hot paths need is answered from an index that each
/// mutation updates in O(log n), never from a linear rescan.
///
/// Maintained views:
///   - per-node allocated resources (`used_on`) and per-node counts of bound
///     pods by label pair (the scheduler's soft-affinity term);
///   - a phase-keyed pod index; its kPending set doubles as the pending-pod
///     queue in name order (the scheduler's retry order);
///   - a pods-by-label index over *all* pods (the controller's
///     pods-of-this-job lookup);
///   - cluster aggregates: total ready CPUs, CPUs claimed by non-finished
///     pods, CPUs claimed by bound non-finished pods — all O(1) reads;
///   - placement buckets: ready nodes grouped by CPU allocation ratio in a
///     sorted map, so binpack/spread pick the best feasible node by walking
///     buckets in score order instead of scoring every node.
///
/// Consistency: the index attaches `ObjectStore` views, which run
/// synchronously inside every mutation — so all queries here are exact with
/// respect to the stores at all times, including mid-window while watch
/// delivery is batched. Construction bootstraps from the stores' current
/// contents, so the index may be attached to non-empty stores.
///
/// Semantics match the historical scan-based queries bit for bit:
///   - a pod claims node resources iff it is bound (`node_name` set) and not
///     Succeeded/Failed (Terminating pods hold their request until removed);
///   - the affinity count includes bound pods of *any* phase (the historical
///     colocation scan had no phase filter);
///   - `used_on` of an unknown node name is zero resources.
class ClusterIndex {
 public:
  /// Deterministic query-cost counters (virtual-time invariant), used by the
  /// scale bench to pin scheduler tick cost in a committed baseline.
  struct Stats {
    std::int64_t placement_queries = 0;  ///< best_node calls
    std::int64_t nodes_examined = 0;     ///< fit/score evaluations inside them
  };

  ClusterIndex(ObjectStore<Node>& nodes, ObjectStore<Pod>& pods);

  ClusterIndex(const ClusterIndex&) = delete;
  ClusterIndex& operator=(const ClusterIndex&) = delete;

  /// Resources claimed on `node` by bound, non-finished pods.
  Resources used_on(const std::string& node) const;

  /// Bound pods on `node` whose labels carry `key`=`value` (any phase).
  int colocated(const std::string& node, const std::string& key,
                const std::string& value) const;

  /// Total CPU capacity across ready nodes.
  int total_cpus() const { return total_cpus_; }
  /// CPUs claimed by non-finished pods (including still-pending ones).
  int used_cpus() const { return used_cpus_; }
  /// CPUs claimed by bound non-finished pods (what a monitor observes).
  int bound_cpus() const { return bound_cpus_; }

  /// Pod names in `phase`, in name order. The kPending set is the pending
  /// queue: iterating it reproduces the historical name-ordered retry scan.
  const std::set<std::string>& pods_in_phase(PodPhase phase) const;

  /// Names of pods (any phase, bound or not) carrying `key`=`value`.
  const std::set<std::string>& pods_with_label(const std::string& key,
                                               const std::string& value) const;

  /// Best feasible node for `pod` under the given scoring parameters, or
  /// empty if nothing fits. Exactly the historical all-nodes scan semantics:
  /// score = ±allocation ratio (+ affinity bonus), winner = first node in
  /// name order with a strictly greater score. Implemented as an
  /// O(affinity candidates + buckets-until-fit) walk instead of O(nodes ×
  /// pods).
  std::string best_node(const Pod& pod, bool prefer_packed,
                        double affinity_weight) const;

  const Stats& stats() const { return stats_; }

 private:
  struct NodeEntry {
    Resources capacity;
    Resources used;
    bool ready = false;
    bool exists = false;  ///< false: placeholder created by an orphan binding
    /// Bound pods on this node by label pair (any phase) — the affinity term.
    std::map<std::pair<std::string, std::string>, int> label_counts;
  };

  void on_node_event(WatchEvent event, const Node* before, const Node* after);
  void on_pod_event(WatchEvent event, const Pod* before, const Pod* after);
  void add_pod_contribution(const Pod& pod);
  void remove_pod_contribution(const Pod& pod);
  NodeEntry& entry_for(const std::string& node);
  void bucket_erase(const std::string& node, const NodeEntry& entry);
  void bucket_insert(const std::string& node, const NodeEntry& entry);
  static double alloc_ratio(const NodeEntry& entry);

  std::map<std::string, NodeEntry> nodes_;
  /// Ready nodes by CPU allocation ratio (name-ordered within a bucket).
  std::map<double, std::set<std::string>> by_ratio_;
  /// Pod names by phase (indexed by static_cast<size_t>(PodPhase)).
  std::map<PodPhase, std::set<std::string>> by_phase_;
  /// All pods by label pair; bound pods per node live in NodeEntry.
  std::map<std::pair<std::string, std::string>, std::set<std::string>>
      by_label_;
  /// Nodes hosting bound pods with a given label pair -> count (the
  /// scheduler's affinity candidate set).
  std::map<std::pair<std::string, std::string>, std::map<std::string, int>>
      label_nodes_;
  int total_cpus_ = 0;
  int used_cpus_ = 0;
  int bound_cpus_ = 0;
  mutable Stats stats_;
};

}  // namespace ehpc::k8s
