#include "net/cost_model.hpp"

#include "common/error.hpp"

namespace ehpc::net::presets {

CostModel eks_placement_group() {
  // Intra-node: shared-memory transport. Inter-node: EFA-like fabric in a
  // placement group. Bandwidths are effective per-stream, not line rate.
  return CostModel(LinkModel{0.5e-6, 8.0e9}, LinkModel{20.0e-6, 1.5e9}, 1.0e-6);
}

CostModel pod_network() {
  // kube-proxy + TCP over ENA: high per-message latency, decent bandwidth.
  return CostModel(LinkModel{0.5e-6, 8.0e9}, LinkModel{300.0e-6, 1.0e9}, 2.0e-6);
}

CostModel generic_cloud() {
  return CostModel(LinkModel{0.5e-6, 8.0e9}, LinkModel{100.0e-6, 0.25e9}, 1.0e-6);
}

CostModel infiniband() {
  return CostModel(LinkModel{0.3e-6, 12.0e9}, LinkModel{2.0e-6, 12.0e9}, 0.5e-6);
}

CostModel by_name(const std::string& name) {
  if (name == "eks") return eks_placement_group();
  if (name == "pod") return pod_network();
  if (name == "cloud") return generic_cloud();
  if (name == "ib") return infiniband();
  throw PreconditionError("unknown network preset: " + name);
}

}  // namespace ehpc::net::presets
