#pragma once

#include <cstddef>
#include <string>

namespace ehpc::net {

/// Alpha-beta (latency-bandwidth) point-to-point message cost model.
///
/// transfer_time(n bytes) = alpha + n / bandwidth. Costs differ for
/// intra-node (shared memory) and inter-node (fabric) transfers, which is
/// how pod placement/affinity affects application performance in the
/// Kubernetes substrate.
struct LinkModel {
  double alpha_s = 0.0;           ///< per-message latency, seconds
  double bandwidth_Bps = 1.0e9;   ///< bytes per second

  double transfer_time(std::size_t bytes) const {
    return alpha_s + static_cast<double>(bytes) / bandwidth_Bps;
  }
};

/// Cluster-level communication model: intra-node vs inter-node links plus
/// a small fixed software overhead per message (serialization, scheduling).
class CostModel {
 public:
  CostModel(LinkModel intra_node, LinkModel inter_node, double per_msg_sw_s)
      : intra_(intra_node), inter_(inter_node), software_s_(per_msg_sw_s) {}

  /// Time for a message of `bytes` between two PEs given their node ids.
  double message_time(std::size_t bytes, int src_node, int dst_node) const {
    const LinkModel& link = (src_node == dst_node) ? intra_ : inter_;
    return software_s_ + link.transfer_time(bytes);
  }

  /// Latency floor for a zero-byte message between distinct nodes. Used by
  /// collective models.
  double inter_alpha() const { return software_s_ + inter_.alpha_s; }

  const LinkModel& intra_node() const { return intra_; }
  const LinkModel& inter_node() const { return inter_; }

 private:
  LinkModel intra_;
  LinkModel inter_;
  double software_s_;
};

/// Presets calibrated to the environments the paper discusses.
namespace presets {

/// AWS EKS, c6g.4xlarge in a cluster placement group (paper §4): ~20 us
/// fabric latency, ~12.5 Gbit/s effective per-stream bandwidth.
CostModel eks_placement_group();

/// The paper's actual transport: OpenMPI over TCP on the pod network (ENA,
/// no EFA) — per-message latency in the hundreds of microseconds even
/// inside a placement group. This is what makes multi-node allocations
/// markedly less efficient than single-node ones in the evaluation.
CostModel pod_network();

/// Generic cloud networking without placement groups: ~100 us latency,
/// ~2 Gbit/s effective.
CostModel generic_cloud();

/// On-prem InfiniBand-class interconnect (for contrast experiments):
/// ~2 us latency, ~100 Gbit/s.
CostModel infiniband();

/// Look up a preset by name ("eks", "pod", "cloud", "ib"); throws on unknown names.
CostModel by_name(const std::string& name);

}  // namespace presets

}  // namespace ehpc::net
