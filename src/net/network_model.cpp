#include "net/network_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace ehpc::net {

double NetworkModel::collective_latency(int pes, double now) const {
  (void)now;
  const int depth = static_cast<int>(std::ceil(std::log2(std::max(pes, 2))));
  return static_cast<double>(depth) * inter_alpha();
}

std::string FlatNetworkModel::describe() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "flat(alpha=%gus,bw=%gGB/s)",
                base_.inter_node().alpha_s * 1e6,
                base_.inter_node().bandwidth_Bps / 1e9);
  return buf;
}

ContentionNetworkModel::ContentionNetworkModel(ContentionConfig config)
    : config_(std::move(config)) {
  EHPC_EXPECTS(config_.window_s >= 0.0);
}

std::string ContentionNetworkModel::name() const {
  return config_.topology.shape() == Topology::Shape::kFatTree ? "fattree"
                                                               : "dragonfly";
}

std::int64_t ContentionNetworkModel::window_index(double now) const {
  if (config_.window_s <= 0.0) return 0;
  return static_cast<std::int64_t>(std::floor(now / config_.window_s));
}

double ContentionNetworkModel::message_time(std::size_t bytes, int src_node,
                                            int dst_node) const {
  if (src_node == dst_node) {
    return config_.base.message_time(bytes, src_node, dst_node);
  }
  config_.topology.path(src_node, dst_node, &path_buf_);
  double bottleneck = 1.0;
  for (const LinkId link : path_buf_) {
    bottleneck =
        std::max(bottleneck, 1.0 / config_.topology.bandwidth_share(link));
  }
  double t = config_.base.message_time(bytes, src_node, dst_node) +
             config_.topology.per_hop_alpha_s() *
                 static_cast<double>(path_buf_.size());
  if (bottleneck > 1.0) {
    t += (bottleneck - 1.0) * (static_cast<double>(bytes) /
                               config_.base.inter_node().bandwidth_Bps);
  }
  return t;
}

double ContentionNetworkModel::begin_transfer(std::size_t bytes, int src_node,
                                              int dst_node, double now) {
  if (src_node == dst_node) {
    return config_.base.message_time(bytes, src_node, dst_node);
  }
  config_.topology.path(src_node, dst_node, &path_buf_);
  const std::int64_t window = window_index(now);
  const bool share = config_.window_s > 0.0;
  double bottleneck = 1.0;
  for (const LinkId link : path_buf_) {
    int k = 1;
    if (share) {
      LinkWindow& lw = live_[link];
      if (lw.window != window) {
        lw.window = window;
        lw.count = 0;
      }
      k = ++lw.count;
    }
    LinkStats& st = stats_[link];
    st.demand_bytes += static_cast<double>(bytes);
    st.transfers += 1;
    st.peak_sharing = std::max(st.peak_sharing, k);
    bottleneck = std::max(bottleneck, static_cast<double>(k) /
                                          config_.topology.bandwidth_share(link));
  }
  double t = config_.base.message_time(bytes, src_node, dst_node) +
             config_.topology.per_hop_alpha_s() *
                 static_cast<double>(path_buf_.size());
  if (bottleneck > 1.0) {
    // Additive stretch over the base price: the (k-1) extra "bandwidth
    // slices" this transfer waits for, each worth bytes/access_bw. Leaves
    // the base term untouched so the uncontended case stays bit-identical
    // to FlatNetworkModel.
    t += (bottleneck - 1.0) * (static_cast<double>(bytes) /
                               config_.base.inter_node().bandwidth_Bps);
  }
  return t;
}

double ContentionNetworkModel::sharing_at(double now) const {
  if (config_.window_s <= 0.0) return 1.0;
  const std::int64_t window = window_index(now);
  double sharing = 1.0;
  for (const auto& [link, lw] : live_) {
    if (lw.window != window) continue;
    sharing = std::max(sharing, static_cast<double>(lw.count) /
                                    config_.topology.bandwidth_share(link));
  }
  return sharing;
}

double ContentionNetworkModel::collective_latency(int pes, double now) const {
  // A saturated fabric also slows the tree's point-to-point hops: stretch
  // the contention-free estimate by the worst link sharing this window.
  return NetworkModel::collective_latency(pes, now) * sharing_at(now);
}

std::shared_ptr<const NetworkModel> default_network_model() {
  static const std::shared_ptr<const NetworkModel> kDefault =
      std::make_shared<FlatNetworkModel>(presets::pod_network());
  return kDefault;
}

std::unique_ptr<NetworkModel> make_network_model(const std::string& kind,
                                                 double oversub,
                                                 const CostModel& base) {
  EHPC_EXPECTS(oversub > 0.0);
  // 2us per extra switch hop: small against pod-network alpha (300us) but
  // enough that cross-rack paths are strictly dearer than same-rack ones.
  constexpr double kPerHopAlphaS = 2.0e-6;
  constexpr int kRadix = 4;
  if (kind == "flat") return std::make_unique<FlatNetworkModel>(base);
  if (kind == "fattree") {
    return std::make_unique<ContentionNetworkModel>(ContentionConfig{
        base, Topology::fat_tree(kRadix, oversub, kPerHopAlphaS)});
  }
  if (kind == "dragonfly") {
    return std::make_unique<ContentionNetworkModel>(ContentionConfig{
        base, Topology::dragonfly(kRadix, oversub, kPerHopAlphaS)});
  }
  throw PreconditionError("unknown network model: " + kind +
                          " (known: flat fattree dragonfly)");
}

}  // namespace ehpc::net
