#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/cost_model.hpp"
#include "net/topology.hpp"

namespace ehpc::net {

/// Abstract communication-cost seam between the runtime and the network.
///
/// The runtime never asks "what is the alpha/beta" anymore; it reports
/// transfer lifecycles (`begin_transfer` at NIC departure, `end_transfer`
/// at delivery) and receives virtual-time durations back. Stateless models
/// (FlatNetworkModel) answer from closed-form alpha-beta math; stateful
/// models (ContentionNetworkModel) additionally track per-link sharing so
/// concurrent transfers over an oversubscribed uplink stretch each other.
///
/// Contract:
///  - All methods are deterministic functions of the call sequence — no
///    wall clock, no RNG — so parallel sweeps stay bit-identical to serial
///    runs as long as each Runtime owns its own clone().
///  - `message_time` is a side-effect-free estimate (used by planners such
///    as the load balancer's migration-cost model); `begin_transfer` is the
///    accounting call that may mutate contention state.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  /// Short machine-readable kind, e.g. "flat", "fattree", "dragonfly".
  virtual std::string name() const = 0;

  /// Human-readable one-line description for logs and scenario configs.
  virtual std::string describe() const = 0;

  /// Side-effect-free cost estimate for one message. Contention models
  /// answer as if the message were alone in the current window (they still
  /// charge structural penalties such as an oversubscribed core).
  virtual double message_time(std::size_t bytes, int src_node,
                              int dst_node) const = 0;

  /// Account a transfer departing at virtual time `now` and return its
  /// duration. Default: stateless models just price it.
  virtual double begin_transfer(std::size_t bytes, int src_node, int dst_node,
                                double now) {
    (void)now;
    return message_time(bytes, src_node, dst_node);
  }

  /// Notification that the transfer priced by begin_transfer was delivered
  /// at virtual time `at`. Default: nothing to release.
  virtual void end_transfer(std::size_t bytes, int src_node, int dst_node,
                            double at) {
    (void)bytes;
    (void)src_node;
    (void)dst_node;
    (void)at;
  }

  /// Latency floor for a zero-byte inter-node message (collective models
  /// build their per-hop estimate from this).
  virtual double inter_alpha() const = 0;

  /// Modeled completion latency of a binary-tree collective spanning `pes`
  /// PEs, observed at virtual time `now`. The default reproduces the
  /// classic contention-free estimate: ceil(log2(pes)) * inter_alpha().
  /// Contention models stretch it by the current fabric sharing level.
  virtual double collective_latency(int pes, double now) const;

  /// Deep copy with *fresh* contention state. Each Runtime clones the
  /// configured model so concurrently-sweeping runtimes never share
  /// mutable link accounting.
  virtual std::unique_ptr<NetworkModel> clone() const = 0;
};

/// The pre-existing alpha-beta scalar model behind the new interface.
/// Delegates every query verbatim to net::CostModel, so simulations that
/// use it are bit-identical to the old concrete-class code path.
class FlatNetworkModel final : public NetworkModel {
 public:
  explicit FlatNetworkModel(CostModel base) : base_(base) {}

  std::string name() const override { return "flat"; }
  std::string describe() const override;
  double message_time(std::size_t bytes, int src_node,
                      int dst_node) const override {
    return base_.message_time(bytes, src_node, dst_node);
  }
  double inter_alpha() const override { return base_.inter_alpha(); }
  std::unique_ptr<NetworkModel> clone() const override {
    return std::make_unique<FlatNetworkModel>(base_);
  }

  const CostModel& base() const { return base_; }

 private:
  CostModel base_;
};

/// Per-link accounting kept by ContentionNetworkModel, exposed for tests
/// and diagnostics.
struct LinkStats {
  double demand_bytes = 0.0;   ///< total bytes ever routed over this link
  std::int64_t transfers = 0;  ///< number of transfers that crossed it
  int peak_sharing = 0;        ///< max concurrent transfers in any window
};

struct ContentionConfig {
  CostModel base;     ///< per-message alpha-beta floor (access-link price)
  Topology topology;  ///< node->path mapping and per-link bandwidth shares
  /// Virtual-time bucketing for "concurrent": transfers departing within
  /// the same window of this length share link bandwidth. 0 disables
  /// sharing (structural penalties still apply).
  double window_s = 1.0e-3;
};

/// Topology-aware model with per-virtual-time-window bandwidth sharing.
///
/// A transfer departing at `now` is routed over topology.path(src, dst);
/// within the window floor(now / window_s), the k-th transfer to cross a
/// link sees that link's bandwidth divided k ways. The duration is
///
///   base.message_time(bytes, src, dst)            (alpha-beta floor)
///   + per_hop_alpha * |path|                      (distance penalty)
///   + (bottleneck - 1) * bytes / access_bw        (sharing penalty)
///
/// where bottleneck = max over path links of k_link / bandwidth_share(link)
/// and the penalty term is only charged when bottleneck > 1. Computing the
/// penalty as an *additive* stretch on top of the untouched base price —
/// rather than recomputing bytes/(bw/k) — keeps an uncontended transfer on
/// a non-oversubscribed path bit-identical to FlatNetworkModel.
class ContentionNetworkModel final : public NetworkModel {
 public:
  explicit ContentionNetworkModel(ContentionConfig config);

  std::string name() const override;
  std::string describe() const override { return config_.topology.describe(); }
  double message_time(std::size_t bytes, int src_node,
                      int dst_node) const override;
  double begin_transfer(std::size_t bytes, int src_node, int dst_node,
                        double now) override;
  double inter_alpha() const override { return config_.base.inter_alpha(); }
  double collective_latency(int pes, double now) const override;
  std::unique_ptr<NetworkModel> clone() const override {
    return std::make_unique<ContentionNetworkModel>(config_);
  }

  const ContentionConfig& config() const { return config_; }

  /// Cumulative per-link accounting since construction (conservation
  /// checks: summing demand_bytes per kind recovers injected traffic).
  const std::map<LinkId, LinkStats>& link_stats() const { return stats_; }

  /// Highest k_link / share_link across links active in the window
  /// containing `now`; 1.0 when the fabric is quiet. This is the factor
  /// collective_latency stretches by.
  double sharing_at(double now) const;

 private:
  struct LinkWindow {
    std::int64_t window = -1;  ///< window index of `count`'s last reset
    int count = 0;             ///< transfers begun in that window
  };

  std::int64_t window_index(double now) const;

  ContentionConfig config_;
  std::map<LinkId, LinkWindow> live_;
  std::map<LinkId, LinkStats> stats_;
  mutable std::vector<LinkId> path_buf_;
};

/// Process-wide default: a FlatNetworkModel over presets::pod_network(),
/// matching the cost model every pre-existing baseline was recorded with.
std::shared_ptr<const NetworkModel> default_network_model();

/// Build a model by scenario-facing kind name. "flat" wraps `base`
/// unchanged; "fattree" / "dragonfly" wrap it in a ContentionNetworkModel
/// over a radix-4 topology with the given oversubscription ratio.
/// Throws PreconditionError on unknown kinds.
std::unique_ptr<NetworkModel> make_network_model(
    const std::string& kind, double oversub = 1.0,
    const CostModel& base = presets::pod_network());

}  // namespace ehpc::net
