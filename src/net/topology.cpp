#include "net/topology.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace ehpc::net {

Topology::Topology(Shape shape, int radix, double oversub,
                   double per_hop_alpha_s)
    : shape_(shape),
      radix_(radix),
      oversub_(oversub),
      per_hop_alpha_s_(per_hop_alpha_s) {
  EHPC_EXPECTS(radix_ >= 1);
  EHPC_EXPECTS(oversub_ > 0.0);
  EHPC_EXPECTS(per_hop_alpha_s_ >= 0.0);
}

Topology Topology::fat_tree(int radix, double oversub, double per_hop_alpha_s) {
  return Topology(Shape::kFatTree, radix, oversub, per_hop_alpha_s);
}

Topology Topology::dragonfly(int radix, double oversub,
                             double per_hop_alpha_s) {
  return Topology(Shape::kDragonfly, radix, oversub, per_hop_alpha_s);
}

void Topology::path(int src_node, int dst_node,
                    std::vector<LinkId>* out) const {
  EHPC_EXPECTS(out != nullptr);
  EHPC_EXPECTS(src_node >= 0 && dst_node >= 0);
  out->clear();
  if (src_node == dst_node) return;
  const int src_group = group_of(src_node);
  const int dst_group = group_of(dst_node);
  out->push_back(make_link(kNodeUp, src_node));
  if (src_group != dst_group) {
    out->push_back(make_link(kCoreUp, src_group));
    out->push_back(make_link(kCoreDown, dst_group));
  } else if (shape_ == Shape::kDragonfly) {
    // Dragonfly routes same-group traffic over the group's local
    // all-to-all channel; a fat-tree rack turns around at the ToR switch.
    out->push_back(make_link(kGroupLocal, src_group));
  }
  out->push_back(make_link(kNodeDown, dst_node));
}

double Topology::bandwidth_share(LinkId link) const {
  switch (kind_of(link)) {
    case kNodeUp:
    case kNodeDown:
      return 1.0;
    case kCoreUp:
    case kCoreDown:
      // The aggregated core/global capacity of a radix-node group, divided
      // by the oversubscription ratio.
      return static_cast<double>(radix_) / oversub_;
    case kGroupLocal:
      return static_cast<double>(radix_);
  }
  return 1.0;
}

std::string Topology::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s(radix=%d,oversub=%g)",
                shape_ == Shape::kFatTree ? "fattree" : "dragonfly", radix_,
                oversub_);
  return buf;
}

}  // namespace ehpc::net
