#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ehpc::net {

/// Identifier of one directed link in a Topology. Links are materialized
/// lazily (the encoding is structural), so a topology serves any node id —
/// the emulated cluster can grow across rescales without reconfiguration.
using LinkId = std::int64_t;

/// Maps node pairs to the directed link path a message crosses, and each
/// link to its bandwidth share relative to the access (node-to-switch)
/// link. Two shapes:
///
///  - fat-tree: nodes grouped into racks of `radix`; same-rack traffic
///    crosses {node-up, node-down}; cross-rack traffic additionally crosses
///    the racks' core uplink/downlink, whose bandwidth is
///    radix / oversub times the access link — `oversub` is the classic
///    fat-tree oversubscription ratio and the knob that makes rack-locality
///    matter.
///  - dragonfly: nodes grouped into groups of `radix`; same-group traffic
///    crosses a cheap local all-to-all channel (share = radix), cross-group
///    traffic crosses the groups' global links (share = radix / oversub).
///
/// Purely combinatorial and stateless: path() writes link ids into a
/// caller-owned buffer and allocates nothing, so the contention model can
/// resolve paths on the per-message hot path.
class Topology {
 public:
  enum class Shape { kFatTree, kDragonfly };

  static Topology fat_tree(int radix, double oversub,
                           double per_hop_alpha_s = 0.0);
  static Topology dragonfly(int radix, double oversub,
                            double per_hop_alpha_s = 0.0);

  Shape shape() const { return shape_; }
  int radix() const { return radix_; }
  double oversub() const { return oversub_; }
  /// Extra per-link latency added on top of the base inter-node alpha, so
  /// longer paths (cross-rack, cross-group) cost more even uncontended.
  double per_hop_alpha_s() const { return per_hop_alpha_s_; }

  int group_of(int node) const { return node / radix_; }

  /// Append the directed link ids crossed by a src->dst message (cleared
  /// first; empty when src == dst — intra-node traffic never touches the
  /// fabric). Deterministic, allocation-free after the buffer warms up.
  void path(int src_node, int dst_node, std::vector<LinkId>* out) const;

  /// Bandwidth of `link` as a multiple of the access-link bandwidth
  /// (1.0 for node up/down links; radix/oversub for core/global links).
  double bandwidth_share(LinkId link) const;

  /// Compact "fattree(radix=4,oversub=2)" rendering for logs and configs.
  std::string describe() const;

 private:
  Topology(Shape shape, int radix, double oversub, double per_hop_alpha_s);

  // Link kinds packed into the id's high bits; the low bits carry the node
  // or group index the link belongs to.
  enum Kind : std::int64_t {
    kNodeUp = 0,
    kNodeDown = 1,
    kCoreUp = 2,
    kCoreDown = 3,
    kGroupLocal = 4,
  };
  static LinkId make_link(Kind kind, int index) {
    return (static_cast<LinkId>(kind) << 32) | static_cast<LinkId>(index);
  }
  static Kind kind_of(LinkId link) { return static_cast<Kind>(link >> 32); }

  Shape shape_;
  int radix_;
  double oversub_;
  double per_hop_alpha_s_;
};

}  // namespace ehpc::net
