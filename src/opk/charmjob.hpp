#pragma once

#include <string>
#include <vector>

#include "elastic/job.hpp"
#include "elastic/workload.hpp"
#include "k8s/api.hpp"

namespace ehpc::opk {

/// Lifecycle of a CharmJob custom resource.
enum class CharmJobPhase {
  kQueued,     ///< submitted, waiting for capacity
  kLaunching,  ///< pods being created/scheduled/started
  kRunning,
  kResizing,   ///< shrink/expand handshake in flight
  kCompleted,
};

std::string to_string(CharmJobPhase phase);

/// The operator's custom resource (paper §3.2.1: the MPIJob CRD extended
/// with minReplicas, maxReplicas and priority). `desired_replicas` is what
/// the elastic scheduling policy currently wants; the controller reconciles
/// worker pods toward it.
struct CharmJob {
  k8s::ObjectMeta meta;
  elastic::JobSpec job;                 ///< min/max replicas, priority
  elastic::JobClass job_class = elastic::JobClass::kSmall;
  int desired_replicas = 0;
  CharmJobPhase phase = CharmJobPhase::kQueued;
  int ready_replicas = 0;
  /// The "nodelist file" the controller maintains for the Charm++ launcher:
  /// worker pod names in rank order.
  std::vector<std::string> nodelist;
};

}  // namespace ehpc::opk
