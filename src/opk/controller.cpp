#include "opk/controller.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"

namespace ehpc::opk {

std::string to_string(CharmJobPhase phase) {
  switch (phase) {
    case CharmJobPhase::kQueued: return "Queued";
    case CharmJobPhase::kLaunching: return "Launching";
    case CharmJobPhase::kRunning: return "Running";
    case CharmJobPhase::kResizing: return "Resizing";
    case CharmJobPhase::kCompleted: return "Completed";
  }
  return "?";
}

CharmJobController::CharmJobController(k8s::Cluster& cluster,
                                       k8s::ObjectStore<CharmJob>& jobs,
                                       ControllerConfig config)
    : cluster_(cluster), jobs_(jobs), config_(config) {
  // CharmJob changes enqueue a reconcile after the controller latency.
  jobs_.watch([this](k8s::WatchEvent event, const CharmJob& job) {
    if (event == k8s::WatchEvent::kDeleted) return;
    request_reconcile(job.meta.name);
  });
  // Pod phase changes update the owning job's readiness. One check per job
  // per tick: the check reads current state, so several pod events landing
  // on the same tick need only the first to schedule it.
  cluster_.pods().watch([this](k8s::WatchEvent event, const k8s::Pod& pod) {
    auto it = pod.meta.labels.find("job");
    if (it == pod.meta.labels.end()) return;
    const std::string job_name = it->second;
    if (event == k8s::WatchEvent::kDeleted) {
      // A worker rank the job still wants disappeared — an involuntary
      // deletion (node-group kill), not one of ours: shrink only removes
      // ranks >= desired and completion teardown runs with the job already
      // Completed. Heal by re-reconciling so the rank is recreated.
      auto role = pod.meta.labels.find("role");
      if (role != pod.meta.labels.end() && role->second == "worker" &&
          jobs_.contains(job_name)) {
        const CharmJob& job = jobs_.get(job_name);
        const auto dash = pod.meta.name.rfind('-');
        const int rank = std::atoi(pod.meta.name.substr(dash + 1).c_str());
        if (job.phase != CharmJobPhase::kCompleted &&
            job.desired_replicas > 0 && rank < job.desired_replicas) {
          request_reconcile(job_name);
        }
      }
    }
    if (!readiness_check_pending_.insert(job_name).second) return;
    cluster_.sim().schedule_after(0.0, [this, job_name] {
      readiness_check_pending_.erase(job_name);
      if (jobs_.contains(job_name)) update_readiness(job_name);
    });
  });
}

std::string CharmJobController::pod_name(const std::string& job_name,
                                         int rank) const {
  return job_name + "-worker-" + std::to_string(rank);
}

void CharmJobController::request_reconcile(const std::string& job_name) {
  cluster_.sim().schedule_after(config_.reconcile_latency_s, [this, job_name] {
    if (jobs_.contains(job_name)) reconcile(job_name);
  });
}

void CharmJobController::reconcile(const std::string& job_name) {
  ++reconcile_count_;
  const CharmJob& job = jobs_.get(job_name);
  const auto& owned = cluster_.index().pods_with_label("job", job_name);
  if (job.phase == CharmJobPhase::kCompleted) {
    // Tear down every pod of the job (workers and launcher). Copy the
    // names: delete_pod mutates the store, which rewrites the index sets.
    const std::vector<std::string> names(owned.begin(), owned.end());
    for (const std::string& name : names) cluster_.delete_pod(name);
    return;
  }
  if (job.desired_replicas <= 0) return;

  // The launcher pod (mpirun home) requests no CPU so it never competes
  // with worker slots, mirroring the paper's testbed where the launcher
  // does not occupy a worker vCPU.
  const std::string launcher = job_name + "-launcher";
  if (cluster_.pods().find(launcher) == nullptr) {
    k8s::Pod pod;
    pod.meta.name = launcher;
    pod.meta.labels["job"] = job_name;
    pod.meta.labels["role"] = "launcher";
    pod.request = {0, 256};
    cluster_.create_pod(std::move(pod));
  }

  // Worker pods are rank-addressed; ranks >= desired are surplus.
  for (int rank = 0; rank < job.desired_replicas; ++rank) {
    const std::string name = pod_name(job_name, rank);
    const k8s::Pod* existing = cluster_.pods().find(name);
    if (existing != nullptr && existing->phase != k8s::PodPhase::kTerminating) {
      continue;
    }
    if (existing != nullptr) continue;  // terminating: wait for removal
    k8s::Pod pod;
    pod.meta.name = name;
    pod.meta.labels["job"] = job_name;
    pod.meta.labels["role"] = "worker";
    pod.request = {1, 512};  // one vCPU per worker (non-SMP: 1 PE/replica)
    pod.affinity_key = "job";
    pod.affinity_value = job_name;
    cluster_.create_pod(std::move(pod));
  }
  // Delete surplus ranks (highest first, matching shrink semantics: the
  // runtime has already evacuated those PEs before we get here).
  {
    const std::vector<std::string> names(owned.begin(), owned.end());
    for (const std::string& name : names) {
      const k8s::Pod* pod = cluster_.pods().find(name);
      if (pod == nullptr) continue;
      auto rt = pod->meta.labels.find("role");
      if (rt == pod->meta.labels.end() || rt->second != "worker") continue;
      // Rank = suffix after last '-'.
      const auto dash = name.rfind('-');
      const int rank = std::atoi(name.substr(dash + 1).c_str());
      if (rank >= job.desired_replicas) cluster_.delete_pod(name);
    }
  }
  update_readiness(job_name);
}

void CharmJobController::update_readiness(const std::string& job_name) {
  const CharmJob& job = jobs_.get(job_name);
  if (job.phase == CharmJobPhase::kCompleted) return;
  int running = 0;
  std::vector<std::string> nodelist;
  // The label index is name-ordered, so the nodelist comes out sorted.
  // Reads only — pod mutations cannot happen under us here.
  for (const std::string& name :
       cluster_.index().pods_with_label("job", job_name)) {
    const k8s::Pod* pod = cluster_.pods().find(name);
    auto rt = pod->meta.labels.find("role");
    if (rt == pod->meta.labels.end() || rt->second != "worker") continue;
    if (pod->phase == k8s::PodPhase::kRunning) {
      ++running;
      nodelist.push_back(name);
    }
  }
  const int desired = job.desired_replicas;
  if (running != job.ready_replicas || nodelist != job.nodelist) {
    jobs_.mutate(job_name, [&](CharmJob& j) {
      j.ready_replicas = running;
      j.nodelist = std::move(nodelist);
    });
  }
  if (desired > 0 && running >= desired) {
    auto it = ready_waiters_.find(job_name);
    if (it != ready_waiters_.end()) {
      // Detach before firing: a waiter may register a new waiter.
      auto fns = std::move(it->second);
      ready_waiters_.erase(it);
      EHPC_DEBUG("opk", "job %s ready with %d replicas", job_name.c_str(),
                 running);
      for (auto& fn : fns) fn(job_name);
    }
  }
}

void CharmJobController::when_ready(const std::string& job_name,
                                    ReadyCallback fn) {
  EHPC_EXPECTS(fn != nullptr);
  ready_waiters_[job_name].push_back(std::move(fn));
  cluster_.sim().schedule_after(0.0, [this, job_name] {
    if (jobs_.contains(job_name)) update_readiness(job_name);
  });
}

}  // namespace ehpc::opk
