#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>

#include "k8s/cluster.hpp"
#include "k8s/store.hpp"
#include "opk/charmjob.hpp"

namespace ehpc::opk {

struct ControllerConfig {
  /// Delay between a watch event and the reconcile that reacts to it
  /// (work-queue + API round-trips of a real controller).
  double reconcile_latency_s = 0.2;
};

/// The operator's controller: a reconcile loop that drives worker pods
/// toward each CharmJob's `desired_replicas` (paper §3.1). It creates pods
/// `<job>-worker-<rank>` with the job label and soft pod-affinity to their
/// siblings, deletes the highest ranks when shrinking, maintains the
/// nodelist, and reports readiness transitions upward.
class CharmJobController {
 public:
  using ReadyCallback = std::function<void(const std::string& job_name)>;

  CharmJobController(k8s::Cluster& cluster, k8s::ObjectStore<CharmJob>& jobs,
                     ControllerConfig config);

  /// One-shot: invoke `fn` once the job's ready replicas equal its desired
  /// count. Fires immediately (via a zero-latency event) if already true.
  /// Multiple waiters may be pending per job (overlapping rescale
  /// handshakes); they fire in registration order.
  void when_ready(const std::string& job_name, ReadyCallback fn);

  /// Force a reconcile pass for a job (used after desired_replicas changes).
  void request_reconcile(const std::string& job_name);

  int reconcile_count() const { return reconcile_count_; }

 private:
  void reconcile(const std::string& job_name);
  void update_readiness(const std::string& job_name);
  std::string pod_name(const std::string& job_name, int rank) const;

  k8s::Cluster& cluster_;
  k8s::ObjectStore<CharmJob>& jobs_;
  ControllerConfig config_;
  std::map<std::string, std::vector<ReadyCallback>> ready_waiters_;
  /// Jobs with a readiness check already queued for the current tick — pod
  /// events arriving on one tick fold into a single check (idempotent at a
  /// fixed virtual time, so this is behavior-identical and O(distinct jobs)).
  std::set<std::string> readiness_check_pending_;
  int reconcile_count_ = 0;
};

}  // namespace ehpc::opk
