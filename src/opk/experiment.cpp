#include "opk/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"

namespace ehpc::opk {

using elastic::Action;
using elastic::ActionType;
using elastic::JobId;

ClusterExperiment::ClusterExperiment(
    ExperimentConfig config,
    std::map<elastic::JobClass, elastic::Workload> workloads)
    : config_(config),
      workloads_(std::move(workloads)),
      cluster_(config.cluster) {
  EHPC_EXPECTS(!workloads_.empty());
  cluster_.add_nodes("node", config_.nodes,
                     k8s::Resources{config_.cpus_per_node, 32768});
  controller_ = std::make_unique<CharmJobController>(cluster_, jobs_,
                                                     config_.controller);
  engine_ = std::make_unique<elastic::PolicyEngine>(
      config_.nodes * config_.cpus_per_node, config_.policy);
  collector_ = std::make_unique<elastic::MetricsCollector>(
      config_.nodes * config_.cpus_per_node);

  // Physical utilization trace: every pod transition updates the profile.
  cluster_.pods().watch([this](k8s::WatchEvent, const k8s::Pod&) {
    const int used = cluster_.bound_cpus();
    const double total = static_cast<double>(cluster_.total_cpus());
    collector_->record_usage(cluster_.sim().now(),
                             std::min(used, cluster_.total_cpus()));
    trace_.record("util", cluster_.sim().now(),
                  static_cast<double>(used) / total);
  });
}

schedsim::SimResult ClusterExperiment::run(
    const std::vector<schedsim::SubmittedJob>& mix) {
  EHPC_EXPECTS(!used_);
  EHPC_EXPECTS(!mix.empty());
  used_ = true;

  for (const auto& job : mix) {
    auto it = workloads_.find(job.job_class);
    EHPC_EXPECTS(it != workloads_.end());
    Exec exec;
    exec.workload = it->second;
    exec.job_name = job.spec.name.empty()
                        ? "job-" + std::to_string(job.spec.id)
                        : job.spec.name;
    exec.remaining_steps = exec.workload.total_steps;
    exec.record.id = job.spec.id;
    exec.record.priority = job.spec.priority;
    exec.record.submit_time = job.submit_time;
    execs_.emplace(job.spec.id, std::move(exec));
    cluster_.sim().schedule_at(job.submit_time, [this, job] { submit(job); });
  }
  cluster_.sim().run();

  schedsim::SimResult result;
  for (auto& [id, exec] : execs_) {
    EHPC_ENSURES(exec.done);
    collector_->add_job(exec.record);
    result.jobs.push_back(exec.record);
  }
  result.metrics = collector_->compute();
  result.trace = std::move(trace_);
  result.rescale_count = rescale_count_;
  return result;
}

void ClusterExperiment::submit(const schedsim::SubmittedJob& job) {
  auto actions = engine_->submit(job.spec, cluster_.sim().now());
  apply_actions(actions);
}

void ClusterExperiment::apply_actions(const std::vector<Action>& actions) {
  for (const Action& a : actions) {
    switch (a.type) {
      case ActionType::kStart:
        start_job(a.job, a.target_replicas);
        break;
      case ActionType::kShrink:
        shrink_job(a.job, a.target_replicas);
        break;
      case ActionType::kExpand:
        expand_job(a.job, a.target_replicas);
        break;
      case ActionType::kEnqueue:
        break;
    }
  }
}

void ClusterExperiment::record_replicas(JobId id, int replicas) {
  trace_.record("job." + std::to_string(id) + ".replicas",
                cluster_.sim().now(), static_cast<double>(replicas));
}

void ClusterExperiment::start_job(JobId id, int replicas) {
  Exec& exec = execs_.at(id);
  EHPC_EXPECTS(!exec.started);
  CharmJob job;
  job.meta.name = exec.job_name;
  job.job = engine_->job(id).spec;
  job.desired_replicas = replicas;
  job.phase = CharmJobPhase::kLaunching;
  controller_->when_ready(exec.job_name,
                          [this, id, replicas](const std::string&) {
                            on_pods_ready(id, replicas);
                          });
  jobs_.add(std::move(job));
}

void ClusterExperiment::on_pods_ready(JobId id, int replicas) {
  Exec& exec = execs_.at(id);
  if (exec.started) return;
  exec.started = true;
  exec.active_replicas = replicas;
  const double now = cluster_.sim().now();
  exec.record.start_time = now;
  exec.accrue_from = now;
  jobs_.mutate(exec.job_name,
               [](CharmJob& j) { j.phase = CharmJobPhase::kRunning; });
  schedule_completion(id);
  record_replicas(id, replicas);
  EHPC_DEBUG("opk", "job %d started with %d replicas at t=%.1f", id, replicas,
             now);
}

void ClusterExperiment::schedule_completion(JobId id) {
  Exec& exec = execs_.at(id);
  if (exec.completion_event != sim::kInvalidEvent) {
    cluster_.sim().cancel(exec.completion_event);
  }
  const double step = exec.workload.time_per_step.at_clamped(
      static_cast<double>(exec.active_replicas));
  const double finish = exec.accrue_from + exec.remaining_steps * step;
  exec.completion_event = cluster_.sim().schedule_at(
      std::max(finish, cluster_.sim().now()), [this, id] { complete_job(id); });
}

void ClusterExperiment::rescale_at_boundary(JobId id, int target,
                                            std::function<void()> after_ack) {
  // Signal delivery, then wait for the application's next iteration
  // boundary (Charm++ rescales at the next load-balancing step).
  cluster_.sim().schedule_after(config_.signal_latency_s, [this, id, target,
                                                           after_ack] {
    Exec& exec = execs_.at(id);
    if (exec.done) return;
    const double now = cluster_.sim().now();
    const double step = exec.workload.time_per_step.at_clamped(
        static_cast<double>(exec.active_replicas));
    double boundary = now;
    if (now >= exec.accrue_from) {
      const double into_step = std::fmod(now - exec.accrue_from, step);
      boundary = now + (step - into_step);
    } else {
      boundary = exec.accrue_from;  // paused: honour the signal at resume
    }
    cluster_.sim().schedule_at(boundary, [this, id, target, boundary,
                                          after_ack] {
      Exec& exec = execs_.at(id);
      if (exec.done) return;
      const int old_replicas = exec.active_replicas;
      const double step_old = exec.workload.time_per_step.at_clamped(
          static_cast<double>(old_replicas));
      if (boundary > exec.accrue_from) {
        exec.remaining_steps = std::max(
            0.0, exec.remaining_steps - (boundary - exec.accrue_from) / step_old);
      }
      const double overhead =
          exec.workload.rescale.overhead_s(old_replicas, target);
      exec.active_replicas = target;
      exec.accrue_from = boundary + overhead;
      ++rescale_count_;
      jobs_.mutate(exec.job_name,
                   [](CharmJob& j) { j.phase = CharmJobPhase::kResizing; });
      schedule_completion(id);
      record_replicas(id, target);
      // Ack fires once the rescale completes inside the application.
      cluster_.sim().schedule_at(exec.accrue_from, [this, id, after_ack] {
        Exec& exec2 = execs_.at(id);
        if (exec2.done) return;
        jobs_.mutate(exec2.job_name,
                     [](CharmJob& j) { j.phase = CharmJobPhase::kRunning; });
        after_ack();
      });
    });
  });
}

void ClusterExperiment::shrink_job(JobId id, int target) {
  Exec& exec = execs_.at(id);
  EHPC_EXPECTS(exec.started && !exec.done);
  const std::string job_name = exec.job_name;
  // Paper §3.1 shrink: signal first; only after the acknowledgment are the
  // surplus pods removed (desired_replicas drop triggers the controller).
  rescale_at_boundary(id, target, [this, job_name, target] {
    if (!jobs_.contains(job_name)) return;
    jobs_.mutate(job_name,
                 [target](CharmJob& j) { j.desired_replicas = target; });
  });
}

void ClusterExperiment::expand_job(JobId id, int target) {
  Exec& exec = execs_.at(id);
  EHPC_EXPECTS(exec.started && !exec.done);
  const std::string job_name = exec.job_name;
  // Paper §3.1 expand: add pods, update the nodelist, then signal.
  jobs_.mutate(job_name,
               [target](CharmJob& j) { j.desired_replicas = target; });
  controller_->when_ready(job_name, [this, id, target](const std::string&) {
    Exec& exec2 = execs_.at(id);
    if (exec2.done) return;
    rescale_at_boundary(id, target, [] {});
  });
}

void ClusterExperiment::complete_job(JobId id) {
  Exec& exec = execs_.at(id);
  EHPC_ENSURES(!exec.done);
  exec.done = true;
  exec.remaining_steps = 0.0;
  exec.completion_event = sim::kInvalidEvent;
  exec.record.complete_time = cluster_.sim().now();
  record_replicas(id, 0);
  jobs_.mutate(exec.job_name,
               [](CharmJob& j) { j.phase = CharmJobPhase::kCompleted; });
  auto actions = engine_->complete(id, cluster_.sim().now());
  apply_actions(actions);
  EHPC_DEBUG("opk", "job %d completed at t=%.1f", id, cluster_.sim().now());
}

}  // namespace ehpc::opk
