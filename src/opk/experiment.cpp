#include "opk/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"

namespace ehpc::opk {

using elastic::JobId;

/// ExecHarness specialisation for the Kubernetes substrate: starts wait for
/// pods to schedule and run, and every rescale goes through the paper's
/// signal → iteration-boundary → rescale → ack handshake (§3.1).
class ClusterExperiment::Harness final : public schedsim::ExecHarness {
 public:
  explicit Harness(ClusterExperiment& owner)
      : schedsim::ExecHarness(owner.cluster_.sim(),
                              owner.config_.nodes * owner.config_.cpus_per_node,
                              owner.config_.policy, owner.workloads_),
        owner_(owner) {}

  /// Physical utilization sample from the cluster's pod watch.
  void record_physical_usage() {
    k8s::Cluster& cluster = owner_.cluster_;
    const int used = cluster.bound_cpus();
    const double total = static_cast<double>(cluster.total_cpus());
    collector().record_usage(cluster.sim().now(),
                             std::min(used, cluster.total_cpus()));
    if (streaming()) return;  // the step trace grows with the trace length
    trace().record("util", cluster.sim().now(),
                   static_cast<double>(used) / total);
  }

 private:
  /// Staged rescale/ack callbacks may dereference a job's exec after it
  /// completes (guarded by `exec.done`), so streaming replay must not erase
  /// retired execs on this substrate.
  bool retire_completed_execs() const override { return false; }

  void init_exec(schedsim::JobExec& exec,
                 const schedsim::SubmittedJob& job) override {
    exec.job_name = job.spec.name.empty()
                        ? "job-" + std::to_string(job.spec.id)
                        : job.spec.name;
  }

  void start_job(JobId id, int replicas) override {
    schedsim::JobExec& exec = this->exec(id);
    EHPC_EXPECTS(!exec.started);
    CharmJob job;
    job.meta.name = exec.job_name;
    job.job = engine().job(id).spec;
    job.desired_replicas = replicas;
    job.phase = CharmJobPhase::kLaunching;
    owner_.controller_->when_ready(exec.job_name,
                                   [this, id, replicas](const std::string&) {
                                     on_pods_ready(id, replicas);
                                   });
    owner_.jobs_.add(std::move(job));
  }

  /// A rescale issued while the job's pods are still scheduling. The job's
  /// single start ready-waiter is pending, so park the target until
  /// on_pods_ready (last one wins — the policy's final word is the state
  /// its bookkeeping assumes) — but update the pod demand *now*: the
  /// policy already re-budgeted those slots, and holding surplus demand
  /// could wedge two launching jobs against each other (per-pod binding,
  /// no gang scheduling).
  void defer_rescale(JobId id, int target) {
    schedsim::JobExec& exec = this->exec(id);
    deferred_rescales_[id] = target;
    owner_.jobs_.mutate(exec.job_name, [target](CharmJob& j) {
      j.desired_replicas = target;
    });
  }

  void on_pods_ready(JobId id, int replicas) {
    schedsim::JobExec& exec = this->exec(id);
    if (exec.started) return;
    if (auto it = deferred_rescales_.find(id); it != deferred_rescales_.end()) {
      // The policy reshaped the job while its pods were still scheduling
      // (possible with small T_rescale_gap under contention). The
      // controller already reconciled the pods to the final target, so the
      // job simply starts at that width — the application never ran at the
      // originally granted size, so no checkpoint/restart handshake.
      replicas = it->second;
      deferred_rescales_.erase(it);
    }
    exec.started = true;
    exec.replicas = replicas;
    const double now = sim().now();
    exec.record.start_time = now;
    exec.accrue_from = now;
    owner_.jobs_.mutate(exec.job_name,
                        [](CharmJob& j) { j.phase = CharmJobPhase::kRunning; });
    schedule_completion(id);
    record_replicas(id, replicas);
    EHPC_DEBUG("opk", "job %d started with %d replicas at t=%.1f", id,
               replicas, now);
  }

  /// Wait until the app's next iteration boundary, apply the rescale pause,
  /// then run `after_ack` at ack time.
  void rescale_at_boundary(JobId id, int target,
                           std::function<void()> after_ack) {
    // Signal delivery, then wait for the application's next iteration
    // boundary (Charm++ rescales at the next load-balancing step).
    sim().schedule_after(owner_.config_.signal_latency_s, [this, id, target,
                                                           after_ack] {
      schedsim::JobExec& exec = this->exec(id);
      if (exec.done) return;
      const double now = sim().now();
      const double step = exec.step_time();
      double boundary = now;
      if (now >= exec.accrue_from) {
        const double into_step = std::fmod(now - exec.accrue_from, step);
        boundary = now + (step - into_step);
      } else {
        boundary = exec.accrue_from;  // paused: honour the signal at resume
      }
      sim().schedule_at(boundary, [this, id, target, boundary, after_ack] {
        schedsim::JobExec& exec = this->exec(id);
        if (exec.done) return;
        const int old_replicas = exec.replicas;
        exec.accrue_until(boundary);  // progress at the old rate
        const double overhead =
            exec.workload.rescale.overhead_s(old_replicas, target);
        exec.replicas = target;
        exec.accrue_from = boundary + overhead;
        note_rescale(id);
        owner_.jobs_.mutate(exec.job_name, [](CharmJob& j) {
          j.phase = CharmJobPhase::kResizing;
        });
        schedule_completion(id);
        record_replicas(id, target);
        // Ack fires once the rescale completes inside the application.
        sim().schedule_at(exec.accrue_from, [this, id, after_ack] {
          schedsim::JobExec& exec2 = this->exec(id);
          if (exec2.done) return;
          owner_.jobs_.mutate(exec2.job_name, [](CharmJob& j) {
            j.phase = CharmJobPhase::kRunning;
          });
          after_ack();
        });
      });
    });
  }

  void shrink_job(JobId id, int target) override {
    schedsim::JobExec& exec = this->exec(id);
    EHPC_EXPECTS(!exec.done);
    if (!exec.started) {
      defer_rescale(id, target);
      return;
    }
    const std::string job_name = exec.job_name;
    // Paper §3.1 shrink: signal first; only after the acknowledgment are the
    // surplus pods removed (desired_replicas drop triggers the controller).
    rescale_at_boundary(id, target, [this, job_name, target] {
      if (!owner_.jobs_.contains(job_name)) return;
      owner_.jobs_.mutate(job_name,
                          [target](CharmJob& j) { j.desired_replicas = target; });
    });
  }

  void expand_job(JobId id, int target) override {
    schedsim::JobExec& exec = this->exec(id);
    EHPC_EXPECTS(!exec.done);
    if (!exec.started) {
      defer_rescale(id, target);
      return;
    }
    const std::string job_name = exec.job_name;
    // Paper §3.1 expand: add pods, update the nodelist, then signal.
    owner_.jobs_.mutate(job_name,
                        [target](CharmJob& j) { j.desired_replicas = target; });
    owner_.controller_->when_ready(
        job_name, [this, id, target, job_name](const std::string&) {
          if (this->exec(id).done) return;
          // A later rescale may have superseded this expand while its pods
          // were coming up (it rewrites desired_replicas); drop the stale
          // handshake — the superseding rescale realizes the final state.
          if (owner_.jobs_.get(job_name).desired_replicas != target) return;
          rescale_at_boundary(id, target, [] {});
        });
  }

  void on_job_completed(schedsim::JobExec& exec) override {
    owner_.jobs_.mutate(exec.job_name, [](CharmJob& j) {
      j.phase = CharmJobPhase::kCompleted;
    });
    EHPC_DEBUG("opk", "job %d completed at t=%.1f", exec.record.id,
               sim().now());
  }

  /// Correlated node-group kill: delete every victim job's worker pods
  /// through the k8s store, so the indexed views and batched watchers see
  /// the burst of deletions and the controller's heal path recreates the
  /// ranks (the virtual-time recovery charge itself is applied by the
  /// shared harness, identically to the pure simulator).
  void on_domain_crash(int domain,
                       const std::vector<JobId>& victims) override {
    for (JobId id : victims) {
      schedsim::JobExec& exec = this->exec(id);
      const auto& owned =
          owner_.cluster_.index().pods_with_label("job", exec.job_name);
      // Copy the names: delete_pod mutates the store, which rewrites the
      // index sets.
      const std::vector<std::string> names(owned.begin(), owned.end());
      for (const std::string& name : names) {
        const k8s::Pod* pod = owner_.cluster_.pods().find(name);
        if (pod == nullptr || pod->phase == k8s::PodPhase::kTerminating) {
          continue;
        }
        auto role = pod->meta.labels.find("role");
        if (role == pod->meta.labels.end() || role->second != "worker") {
          continue;
        }
        owner_.cluster_.delete_pod(name);
      }
    }
    EHPC_DEBUG("opk", "domain %d crash deleted the pods of %zu jobs at t=%.1f",
               domain, victims.size(), sim().now());
  }

  ClusterExperiment& owner_;
  /// Rescale targets issued before a job's pods came up, by job id.
  std::map<elastic::JobId, int> deferred_rescales_;
};

ClusterExperiment::ClusterExperiment(
    ExperimentConfig config,
    std::map<elastic::JobClass, elastic::Workload> workloads)
    : config_(config),
      workloads_(std::move(workloads)),
      cluster_(config.cluster) {
  cluster_.add_nodes("node", config_.nodes,
                     k8s::Resources{config_.cpus_per_node, 32768});
  // CharmJobs ride the same batched watch channel as the cluster stores:
  // several same-tick mutations of one job (readiness + rescale) coalesce
  // into a single delivered event, so the controller reconciles once.
  jobs_.enable_batched_delivery([this] {
    cluster_.sim().schedule_now([this] { jobs_.flush(); });
  });
  controller_ = std::make_unique<CharmJobController>(cluster_, jobs_,
                                                     config_.controller);
  harness_ = std::make_unique<Harness>(*this);
  harness_->set_fault_plan(config_.faults);

  // Physical utilization trace: one sample per delivered pod-event batch
  // (per mutation before batching was enabled, per flush after). Samples
  // within a tick are zero-width in the time-weighted integral, so one
  // end-of-batch sample is metric-identical to one per mutation.
  cluster_.pods().observe_batches([this] {
    harness_->record_physical_usage();
  });
}

ClusterExperiment::~ClusterExperiment() = default;

schedsim::SimResult ClusterExperiment::run(
    const std::vector<schedsim::SubmittedJob>& mix) {
  return harness_->run(mix);
}

schedsim::SimResult ClusterExperiment::run_stream(trace::TraceSource& source) {
  return harness_->run_stream(source);
}

}  // namespace ehpc::opk
