#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "elastic/metrics.hpp"
#include "elastic/policy.hpp"
#include "elastic/workload.hpp"
#include "k8s/cluster.hpp"
#include "opk/charmjob.hpp"
#include "opk/controller.hpp"
#include "schedsim/jobmix.hpp"
#include "schedsim/simulator.hpp"

namespace ehpc::opk {

struct ExperimentConfig {
  int nodes = 4;
  int cpus_per_node = 16;  ///< c6g.4xlarge
  elastic::PolicyConfig policy;
  /// CCS signal delivery latency from operator to application.
  double signal_latency_s = 0.1;
  k8s::ClusterConfig cluster;
  ControllerConfig controller;
};

/// The paper's §4.3.2 experimental run, on the Kubernetes substrate instead
/// of EKS: jobs are CharmJob custom resources; the shared PolicyEngine makes
/// the same decisions as in the simulator, but every action is realized
/// through the operator — pods must schedule and start before a job runs,
/// shrink frees capacity only after the signal→iteration-boundary→rescale→
/// ack→pod-deletion handshake, and expand waits for new pods to run before
/// signalling. The resulting metrics are the "Actual" column of Table 1.
class ClusterExperiment {
 public:
  ClusterExperiment(ExperimentConfig config,
                    std::map<elastic::JobClass, elastic::Workload> workloads);

  /// Execute one job mix to completion. Single-shot per instance.
  schedsim::SimResult run(const std::vector<schedsim::SubmittedJob>& mix);

  k8s::Cluster& cluster() { return cluster_; }
  CharmJobController& controller() { return *controller_; }

 private:
  struct Exec {
    elastic::Workload workload;
    std::string job_name;
    double remaining_steps = 0.0;
    int active_replicas = 0;  ///< replicas the application is running at
    double accrue_from = 0.0;
    sim::EventId completion_event = sim::kInvalidEvent;
    elastic::JobRecord record;
    bool started = false;
    bool done = false;
  };

  void submit(const schedsim::SubmittedJob& job);
  void apply_actions(const std::vector<elastic::Action>& actions);
  void start_job(elastic::JobId id, int replicas);
  void on_pods_ready(elastic::JobId id, int replicas);
  void shrink_job(elastic::JobId id, int target);
  void expand_job(elastic::JobId id, int target);
  /// Wait until the app's next iteration boundary, apply the rescale pause,
  /// then run `after_ack` at ack time.
  void rescale_at_boundary(elastic::JobId id, int target,
                           std::function<void()> after_ack);
  void complete_job(elastic::JobId id);
  void schedule_completion(elastic::JobId id);
  void record_replicas(elastic::JobId id, int replicas);

  ExperimentConfig config_;
  std::map<elastic::JobClass, elastic::Workload> workloads_;
  k8s::Cluster cluster_;
  k8s::ObjectStore<CharmJob> jobs_;
  std::unique_ptr<CharmJobController> controller_;
  std::unique_ptr<elastic::PolicyEngine> engine_;
  std::map<elastic::JobId, Exec> execs_;
  std::unique_ptr<elastic::MetricsCollector> collector_;
  sim::TraceRecorder trace_;
  int rescale_count_ = 0;
  bool used_ = false;
};

}  // namespace ehpc::opk
