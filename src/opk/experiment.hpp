#pragma once

#include <map>
#include <memory>
#include <vector>

#include "elastic/policy.hpp"
#include "elastic/workload.hpp"
#include "k8s/cluster.hpp"
#include "opk/charmjob.hpp"
#include "opk/controller.hpp"
#include "schedsim/exec.hpp"
#include "schedsim/jobmix.hpp"

namespace ehpc::opk {

struct ExperimentConfig {
  int nodes = 4;
  int cpus_per_node = 16;  ///< c6g.4xlarge
  elastic::PolicyConfig policy;
  /// CCS signal delivery latency from operator to application.
  double signal_latency_s = 0.1;
  k8s::ClusterConfig cluster;
  ControllerConfig controller;
  /// Failure-injection plan, executed by the shared harness so the cluster
  /// substrate sees the exact fault sequence the simulator sees.
  schedsim::FaultPlan faults;
};

/// The paper's §4.3.2 experimental run, on the Kubernetes substrate instead
/// of EKS: jobs are CharmJob custom resources; the shared PolicyEngine makes
/// the same decisions as in the simulator, but every action is realized
/// through the operator — pods must schedule and start before a job runs,
/// shrink frees capacity only after the signal→iteration-boundary→rescale→
/// ack→pod-deletion handshake, and expand waits for new pods to run before
/// signalling. The resulting metrics are the "Actual" column of Table 1.
///
/// Job bookkeeping and the policy-driven run loop live in the shared
/// `schedsim::ExecHarness`; this class supplies the operator-level
/// realisation of every action.
class ClusterExperiment {
 public:
  ClusterExperiment(ExperimentConfig config,
                    std::map<elastic::JobClass, elastic::Workload> workloads);
  ~ClusterExperiment();

  /// Execute one job mix to completion. Single-shot per instance.
  schedsim::SimResult run(const std::vector<schedsim::SubmittedJob>& mix);

  /// Replay a streaming trace through the operator machinery. Metrics are
  /// folded online; unlike the pure simulator, finished jobs keep their
  /// (small) bookkeeping entries because staged handshake callbacks may
  /// still inspect them. Single-shot per instance.
  schedsim::SimResult run_stream(trace::TraceSource& source);

  k8s::Cluster& cluster() { return cluster_; }
  CharmJobController& controller() { return *controller_; }

 private:
  class Harness;

  ExperimentConfig config_;
  std::map<elastic::JobClass, elastic::Workload> workloads_;
  k8s::Cluster cluster_;
  k8s::ObjectStore<CharmJob> jobs_;
  std::unique_ptr<CharmJobController> controller_;
  std::unique_ptr<Harness> harness_;
};

}  // namespace ehpc::opk
