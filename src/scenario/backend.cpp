#include "scenario/backend.hpp"

#include <utility>

#include "common/error.hpp"
#include "elastic/workload.hpp"
#include "opk/experiment.hpp"
#include "schedsim/calibrate.hpp"
#include "schedsim/simulator.hpp"
#include "trace/failures.hpp"
#include "trace/sources.hpp"

namespace ehpc::scenario {

SchedSimBackend::SchedSimBackend(
    const ScenarioSpec& spec, elastic::PolicyConfig policy,
    std::map<elastic::JobClass, elastic::Workload> workloads)
    : simulator_(spec.total_slots(), policy, std::move(workloads)) {
  // Load any failure trace into explicit events here, so both substrates
  // hand the harness the identical resolved plan.
  simulator_.set_fault_plan(trace::resolve_failure_trace(spec.faults));
}

schedsim::SimResult SchedSimBackend::run(
    const std::vector<schedsim::SubmittedJob>& mix) {
  return simulator_.run(mix);
}

schedsim::SimResult SchedSimBackend::run_stream(trace::TraceSource& source) {
  return simulator_.run_stream(source);
}

ClusterBackend::ClusterBackend(
    const ScenarioSpec& spec, elastic::PolicyConfig policy,
    std::map<elastic::JobClass, elastic::Workload> workloads)
    : spec_(spec), policy_(policy), workloads_(std::move(workloads)) {}

schedsim::SimResult ClusterBackend::run(
    const std::vector<schedsim::SubmittedJob>& mix) {
  opk::ExperimentConfig config;
  config.nodes = spec_.nodes;
  config.cpus_per_node = spec_.cpus_per_node;
  config.policy = policy_;
  config.faults = trace::resolve_failure_trace(spec_.faults);
  opk::ClusterExperiment experiment(config, workloads_);
  return experiment.run(mix);
}

schedsim::SimResult ClusterBackend::run_stream(trace::TraceSource& source) {
  opk::ExperimentConfig config;
  config.nodes = spec_.nodes;
  config.cpus_per_node = spec_.cpus_per_node;
  config.policy = policy_;
  config.faults = trace::resolve_failure_trace(spec_.faults);
  opk::ClusterExperiment experiment(config, workloads_);
  return experiment.run_stream(source);
}

elastic::PolicyConfig policy_for(const ScenarioSpec& spec,
                                 elastic::PolicyMode mode) {
  elastic::PolicyConfig config;
  config.mode = mode;
  config.rescale_gap_s = spec.rescale_gap_s;
  return config;
}

std::map<elastic::JobClass, elastic::Workload> workloads_for(
    const ScenarioSpec& spec) {
  if (spec.app == "amr") {
    // The irregular workload is always measured: its cost profile (and the
    // point of running it) comes from the refinement dynamics.
    return schedsim::amr_calibrated_workloads(spec.refine_rate,
                                              spec.lb_strategy);
  }
  if (spec.app == "graph") {
    // Also always measured: hub-concentrated traffic over the configured
    // network model is what the calibration exists to capture.
    return schedsim::graph_calibrated_workloads(
        spec.graph_vertices, spec.graph_skew, spec.lb_strategy, spec.net_model,
        spec.net_oversub);
  }
  return spec.calibrated ? schedsim::calibrated_workloads()
                         : schedsim::analytic_workloads();
}

std::vector<schedsim::SubmittedJob> make_mix(const ScenarioSpec& spec,
                                             unsigned seed) {
  schedsim::JobMixGenerator generator(seed);
  auto mix = generator.generate(spec.num_jobs, spec.submission_gap_s);
  if (spec.pods_per_job > 0) {
    // Scale mode: force every job rigid at the requested width. Classes and
    // priorities keep their generated draws (same RNG stream), only the
    // replica range is overridden — total pods = num_jobs × pods_per_job.
    for (auto& job : mix) {
      job.spec.min_replicas = spec.pods_per_job;
      job.spec.max_replicas = spec.pods_per_job;
    }
  }
  if (spec.queue_timeout_s >= 0.0 || spec.task_timeout_s >= 0.0) {
    for (auto& job : mix) {
      job.queue_timeout_s = spec.queue_timeout_s;
      job.task_timeout_s = spec.task_timeout_s;
    }
  }
  return mix;
}

std::unique_ptr<trace::TraceSource> make_trace_source(const ScenarioSpec& spec,
                                                      unsigned seed) {
  EHPC_EXPECTS(spec.is_trace());
  trace::JobDefaults defaults;
  defaults.queue_timeout_s = spec.queue_timeout_s;
  defaults.task_timeout_s = spec.task_timeout_s;
  defaults.max_failed_nodes = spec.faults.max_failed_nodes;

  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  if (!spec.trace_path.empty()) {
    sources.push_back(
        std::make_unique<trace::CsvTraceSource>(spec.trace_path, defaults));
  }
  if (spec.trace_jobs > 0) {
    trace::SyntheticTraceConfig config;
    config.num_jobs = spec.trace_jobs;
    config.submission_gap_s = spec.submission_gap_s;
    config.seed = seed;
    config.defaults = defaults;
    sources.push_back(std::make_unique<trace::SyntheticTraceSource>(config));
  }
  if (spec.cron_period_s > 0.0) {
    trace::CronTraceConfig config;
    config.period_s = spec.cron_period_s;
    config.phase_s = spec.cron_phase_s;
    config.end_s = spec.cron_end_s;
    config.job_class = elastic::job_class_from_string(spec.cron_class);
    config.priority = spec.cron_priority;
    config.defaults = defaults;
    sources.push_back(std::make_unique<trace::CronTraceSource>(config));
  }
  if (sources.size() == 1) return std::move(sources.front());
  return std::make_unique<trace::CompositeTraceSource>(std::move(sources));
}

std::unique_ptr<ExperimentBackend> make_backend(
    const ScenarioSpec& spec, const elastic::PolicyConfig& policy,
    const std::map<elastic::JobClass, elastic::Workload>& workloads) {
  if (spec.substrate == Substrate::kCluster) {
    return std::make_unique<ClusterBackend>(spec, policy, workloads);
  }
  return std::make_unique<SchedSimBackend>(spec, policy, workloads);
}

}  // namespace ehpc::scenario
