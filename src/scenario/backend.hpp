#pragma once

#include <map>
#include <memory>
#include <vector>

#include "elastic/policy.hpp"
#include "elastic/workload.hpp"
#include "scenario/spec.hpp"
#include "schedsim/exec.hpp"
#include "schedsim/jobmix.hpp"
#include "schedsim/simulator.hpp"
#include "trace/source.hpp"

namespace ehpc::scenario {

/// Substrate-agnostic executor of one experiment: hand it a job mix, get the
/// run's metrics/traces back. The two implementations wrap the paper's two
/// substrates, which share all policy and bookkeeping code through
/// `schedsim::ExecHarness` — the backend seam only picks how actions are
/// realised.
class ExperimentBackend {
 public:
  virtual ~ExperimentBackend() = default;

  /// Execute one job mix to completion. May be called repeatedly; each call
  /// is an independent run.
  virtual schedsim::SimResult run(
      const std::vector<schedsim::SubmittedJob>& mix) = 0;

  /// Replay a streaming trace to completion (see ExecHarness::run_stream).
  /// May be called repeatedly with a fresh source per call.
  virtual schedsim::SimResult run_stream(trace::TraceSource& source) = 0;
};

/// Pure scheduler-performance simulator (§4.3.1): operator and pod startup
/// overheads are ignored.
class SchedSimBackend final : public ExperimentBackend {
 public:
  SchedSimBackend(const ScenarioSpec& spec, elastic::PolicyConfig policy,
                  std::map<elastic::JobClass, elastic::Workload> workloads);

  schedsim::SimResult run(
      const std::vector<schedsim::SubmittedJob>& mix) override;
  schedsim::SimResult run_stream(trace::TraceSource& source) override;

 private:
  schedsim::SchedSimulator simulator_;
};

/// Emulated-Kubernetes substrate (§4.3.2): every action goes through the
/// operator; a fresh cluster is stood up per run (the substrate is
/// single-shot by design).
class ClusterBackend final : public ExperimentBackend {
 public:
  ClusterBackend(const ScenarioSpec& spec, elastic::PolicyConfig policy,
                 std::map<elastic::JobClass, elastic::Workload> workloads);

  schedsim::SimResult run(
      const std::vector<schedsim::SubmittedJob>& mix) override;
  schedsim::SimResult run_stream(trace::TraceSource& source) override;

 private:
  ScenarioSpec spec_;
  elastic::PolicyConfig policy_;
  std::map<elastic::JobClass, elastic::Workload> workloads_;
};

/// PolicyConfig for running `mode` under `spec`.
elastic::PolicyConfig policy_for(const ScenarioSpec& spec,
                                 elastic::PolicyMode mode);

/// The spec's workload models (minicharm-calibrated or analytic curves).
std::map<elastic::JobClass, elastic::Workload> workloads_for(
    const ScenarioSpec& spec);

/// The spec's random job mix for one RNG seed (repeat r of a sweep cell
/// uses `spec.seed + r`). The spec's queue/task timeouts are stamped onto
/// every generated job.
std::vector<schedsim::SubmittedJob> make_mix(const ScenarioSpec& spec,
                                             unsigned seed);

/// Build the spec's trace source for one RNG seed: the merge of every
/// configured source (CSV file, synthetic stream, cron schedule), each
/// stamped with the spec's per-job limits. Requires `spec.is_trace()`.
std::unique_ptr<trace::TraceSource> make_trace_source(const ScenarioSpec& spec,
                                                      unsigned seed);

/// Instantiate the spec's substrate.
std::unique_ptr<ExperimentBackend> make_backend(
    const ScenarioSpec& spec, const elastic::PolicyConfig& policy,
    const std::map<elastic::JobClass, elastic::Workload>& workloads);

}  // namespace ehpc::scenario
