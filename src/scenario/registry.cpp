#include "scenario/registry.hpp"

#include <utility>

#include "common/error.hpp"

namespace ehpc::scenario {

using elastic::PolicyMode;

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  EHPC_EXPECTS(!spec.name.empty());
  spec.validate();
  if (find(spec.name) != nullptr) {
    throw ConfigError("scenario '" + spec.name + "' already registered");
  }
  scenarios_.push_back(std::move(spec));
}

const ScenarioSpec* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& spec : scenarios_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const ScenarioSpec& ScenarioRegistry::require(const std::string& name) const {
  if (const ScenarioSpec* spec = find(name)) return *spec;
  std::string msg = "unknown scenario '" + name + "'; known scenarios:";
  for (const auto& spec : scenarios_) msg += " " + spec.name;
  throw ConfigError(msg);
}

ScenarioRegistry::ScenarioRegistry() {
  // The paper's experiments. Sweep values match the figures; benches may
  // override repeats/seed from their flags.
  ScenarioSpec policy_compare;
  policy_compare.name = "policy_compare";
  policy_compare.description =
      "Four policies averaged over random mixes on the performance simulator "
      "(paper §4.3.1 setup)";
  add(policy_compare);

  ScenarioSpec fig7;
  fig7.name = "fig7_submission_gap";
  fig7.description =
      "Figure 7: scheduler metrics vs job submission gap, T_rescale_gap 180 s";
  fig7.rescale_gap_s = 180.0;
  fig7.axis = SweepAxis::kSubmissionGap;
  fig7.axis_values = {0, 30, 60, 90, 120, 180, 240, 300};
  add(fig7);

  ScenarioSpec fig8;
  fig8.name = "fig8_rescale_gap";
  fig8.description =
      "Figure 8: scheduler metrics vs T_rescale_gap at a fixed submission gap "
      "(elastic converges to moldable)";
  fig8.submission_gap_s = 90.0;
  fig8.axis = SweepAxis::kRescaleGap;
  fig8.axis_values = {0, 60, 120, 180, 300, 600, 900, 1200};
  add(fig8);

  ScenarioSpec table1;
  table1.name = "table1";
  table1.description =
      "Table 1: one deterministic mix; the bench runs it on both substrates "
      "for the Simulation and Actual columns";
  table1.submission_gap_s = 90.0;
  table1.rescale_gap_s = 180.0;
  table1.repeats = 1;
  add(table1);

  ScenarioSpec fig9;
  fig9.name = "fig9_cluster";
  fig9.description =
      "Figure 9: one job set on the Kubernetes substrate under all four "
      "policies, with every operator-level overhead";
  fig9.substrate = Substrate::kCluster;
  fig9.submission_gap_s = 90.0;
  fig9.rescale_gap_s = 180.0;
  fig9.repeats = 1;
  add(fig9);

  ScenarioSpec quickstart;
  quickstart.name = "quickstart";
  quickstart.description =
      "Three-job shrink demo on the Kubernetes substrate under the elastic "
      "policy (examples/quickstart)";
  quickstart.substrate = Substrate::kCluster;
  quickstart.num_jobs = 3;
  quickstart.rescale_gap_s = 30.0;
  quickstart.policies = {PolicyMode::kElastic};
  quickstart.repeats = 1;
  add(quickstart);

  ScenarioSpec burst;
  burst.name = "burst_arrival";
  burst.description =
      "Stress scenario beyond the paper: 32 jobs submitted back-to-back "
      "(gap 0) to maximise contention and rescale churn";
  burst.num_jobs = 32;
  burst.submission_gap_s = 0.0;
  burst.repeats = 20;
  add(burst);

  // Irregular-workload scenarios: jobs modeled from the AMR app, whose
  // refinement front produces heavy, time-varying load imbalance (ROADMAP
  // "Scenario diversity"). Each runs on either substrate via substrate=.
  ScenarioSpec amr_imbalance;
  amr_imbalance.name = "amr_imbalance";
  amr_imbalance.description =
      "Scheduler metrics vs AMR refinement rate: workload models are "
      "re-calibrated per point, so imbalance grows along the axis";
  amr_imbalance.app = "amr";
  amr_imbalance.axis = SweepAxis::kRefineRate;
  amr_imbalance.axis_values = {0.0, 0.06, 0.12, 0.24};
  amr_imbalance.repeats = 20;
  add(amr_imbalance);

  ScenarioSpec amr_rescale;
  amr_rescale.name = "amr_rescale";
  amr_rescale.description =
      "Shrink/expand churn under AMR imbalance: tight submissions and a "
      "T_rescale_gap sweep force rescales while the mesh is adapting";
  amr_rescale.app = "amr";
  amr_rescale.submission_gap_s = 30.0;
  amr_rescale.axis = SweepAxis::kRescaleGap;
  amr_rescale.axis_values = {0, 60, 180, 600};
  amr_rescale.repeats = 20;
  add(amr_rescale);

  ScenarioSpec amr_lb;
  amr_lb.name = "amr_lb_ablation";
  amr_lb.description =
      "Load-balancer ablation on the AMR workload: null vs greedy vs refine "
      "(sweep values index charm::load_balancer_names())";
  amr_lb.app = "amr";
  amr_lb.axis = SweepAxis::kLbStrategy;
  amr_lb.axis_values = {0, 1, 2};
  amr_lb.policies = {PolicyMode::kElastic};
  amr_lb.repeats = 20;
  add(amr_lb);

  // Communication-skewed graph scenarios: jobs modeled from the power-law
  // graph app, whose hub parts concentrate message volume. graph_superstep
  // sweeps the skew exponent under the flat network; graph_lb_ablation puts
  // the workload on an oversubscribed fat-tree, where the comm-aware
  // balancer's rack-locality actually pays.
  ScenarioSpec graph_superstep;
  graph_superstep.name = "graph_superstep";
  graph_superstep.description =
      "Scheduler metrics vs power-law skew: graph workload models are "
      "re-calibrated per point, so hub concentration grows along the axis";
  graph_superstep.app = "graph";
  graph_superstep.axis = SweepAxis::kGraphSkew;
  graph_superstep.axis_values = {0.0, 0.5, 0.9};
  graph_superstep.repeats = 20;
  add(graph_superstep);

  ScenarioSpec graph_lb;
  graph_lb.name = "graph_lb_ablation";
  graph_lb.description =
      "Load-balancer ablation on the graph workload over a 4x-oversubscribed "
      "fat-tree: greedy vs commrefine (sweep values index "
      "charm::load_balancer_names())";
  graph_lb.app = "graph";
  graph_lb.graph_skew = 0.9;
  graph_lb.net_model = "fattree";
  graph_lb.net_oversub = 4.0;
  graph_lb.axis = SweepAxis::kLbStrategy;
  graph_lb.axis_values = {1, 3};
  graph_lb.policies = {PolicyMode::kElastic};
  graph_lb.repeats = 20;
  add(graph_lb);

  // Fault-injection scenarios (ROADMAP "Fault tolerance"): deterministic
  // crash/eviction plans executed by the shared harness, so both substrates
  // replay the identical failure sequence.
  ScenarioSpec fault_recovery;
  fault_recovery.name = "fault_recovery";
  fault_recovery.description =
      "All four policies under a fixed crash/eviction schedule with periodic "
      "disk checkpoints: recovery time, lost work and goodput per policy";
  fault_recovery.faults.crash_times = {400.0, 1100.0};
  fault_recovery.faults.evict_times = {700.0};
  fault_recovery.faults.checkpoint_period_s = 300.0;
  fault_recovery.repeats = 20;
  add(fault_recovery);

  ScenarioSpec fault_churn;
  fault_churn.name = "fault_churn";
  fault_churn.description =
      "Scheduler metrics vs crash MTBF under a fixed checkpoint cadence and "
      "a prun-style per-job failure budget";
  fault_churn.faults.checkpoint_period_s = 300.0;
  fault_churn.faults.max_failed_nodes = 2;
  fault_churn.axis = SweepAxis::kFaultMtbf;
  fault_churn.axis_values = {600, 1200, 2400, 4800};
  fault_churn.repeats = 20;
  add(fault_churn);

  ScenarioSpec fault_lb;
  fault_lb.name = "fault_lb_ablation";
  fault_lb.description =
      "Load-balancer ablation on the AMR workload under a crash chain: how "
      "much recovery re-placement quality matters when nodes keep failing";
  fault_lb.app = "amr";
  fault_lb.faults.crash_mtbf_s = 900.0;
  fault_lb.faults.checkpoint_period_s = 300.0;
  fault_lb.axis = SweepAxis::kLbStrategy;
  fault_lb.axis_values = {0, 1, 2};
  fault_lb.policies = {PolicyMode::kElastic};
  fault_lb.repeats = 20;
  add(fault_lb);

  // Correlated-failure scenarios (ROADMAP "Correlated failures"): the 64
  // slots split into consecutive failure domains (racks), and domain
  // crashes kill every PE of a domain atomically at one virtual timestamp.
  ScenarioSpec fault_correlated;
  fault_correlated.name = "fault_correlated";
  fault_correlated.description =
      "Rack-level correlated loss: four 16-slot failure domains, two domain "
      "crashes, periodic disk checkpoints — does elastic re-placement absorb "
      "or amplify the correlated burst?";
  fault_correlated.faults.domain_sizes = {16, 16, 16, 16};
  fault_correlated.faults.domain_crashes = {{500.0, 1}, {1300.0, 3}};
  fault_correlated.faults.checkpoint_period_s = 300.0;
  fault_correlated.repeats = 20;
  add(fault_correlated);

  ScenarioSpec fault_storm;
  fault_storm.name = "fault_storm";
  fault_storm.description =
      "Recovery storm: a 32-slot domain crash sends every resident job into "
      "restore at once while restore_bandwidth caps how many restores the "
      "storage path sustains concurrently";
  fault_storm.faults.domain_sizes = {32, 32};
  fault_storm.faults.domain_crashes = {{600.0, 0}};
  fault_storm.faults.checkpoint_period_s = 200.0;
  fault_storm.faults.restore_bandwidth = 2.0;
  fault_storm.num_jobs = 24;
  fault_storm.submission_gap_s = 30.0;
  fault_storm.repeats = 20;
  add(fault_storm);

  // Beyond-paper: the cluster substrate at production scale. Wide rigid
  // jobs (pods_per_job forces min=max) on an O(1000)-node emulated cluster
  // exercise the indexed store/scheduler path; nodes= and pods_per_job= are
  // the scale knobs (bench_fig_k8s_scale sweeps them to 10k nodes / 100k
  // pods). Analytic workloads: the point is control-plane cost, not
  // application calibration, and scale runs must not depend on minicharm.
  ScenarioSpec scale;
  scale.name = "k8s_scale";
  scale.description =
      "Cluster substrate at scale: wide rigid jobs on a large emulated "
      "cluster (scale knobs: nodes=, pods_per_job=, num_jobs=)";
  scale.substrate = Substrate::kCluster;
  scale.nodes = 1000;
  scale.cpus_per_node = 16;
  scale.num_jobs = 100;
  scale.pods_per_job = 100;
  scale.submission_gap_s = 10.0;
  scale.calibrated = false;
  scale.rescale_gap_s = 300.0;
  scale.policies = {PolicyMode::kRigidMin};
  scale.repeats = 1;
  add(scale);

  // Production trace campaign (ROADMAP "Trace campaigns"): a streaming
  // synthetic arrival trace replayed through run_stream with prun-style
  // per-job limits, so queued jobs abandon and runaway jobs are killed.
  // trace_jobs= is the length knob (bench_fig_trace sweeps it to 1M jobs —
  // memory stays proportional to in-flight jobs, not trace length);
  // substrate= picks the substrate.
  ScenarioSpec trace_replay;
  trace_replay.name = "trace_replay";
  trace_replay.description =
      "Streaming trace campaign: synthetic arrivals replayed through the "
      "bounded-memory streaming path with queue/task timeouts (length knob: "
      "trace_jobs=)";
  trace_replay.trace_jobs = 2000;
  // ~1.5x the sustainable arrival rate at 64 slots: enough pressure that
  // queue timeouts fire steadily, while most jobs still complete.
  trace_replay.submission_gap_s = 60.0;
  trace_replay.calibrated = false;
  trace_replay.queue_timeout_s = 3600.0;
  trace_replay.task_timeout_s = 900.0;
  trace_replay.repeats = 3;
  add(trace_replay);
}

std::vector<std::string> scenario_config_keys() {
  std::vector<std::string> keys = spec_config_keys();
  keys.insert(keys.begin(), "scenario");
  return keys;
}

ScenarioSpec resolve_scenario(const Config& cfg,
                              const std::string& default_name) {
  const std::string name = cfg.get_or("scenario", default_name);
  ScenarioSpec base;
  if (!name.empty()) base = ScenarioRegistry::instance().require(name);
  return spec_from_config(cfg, std::move(base));
}

std::string list_scenarios_text() {
  std::string out;
  for (const auto& spec : ScenarioRegistry::instance().scenarios()) {
    out += spec.name + "\n    " + spec.description + "\n    " +
           describe(spec) + "\n";
  }
  out += "\nconfig keys (override any scenario field):\n" + spec_config_help();
  return out;
}

}  // namespace ehpc::scenario
