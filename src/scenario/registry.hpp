#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "scenario/spec.hpp"

namespace ehpc::scenario {

/// Process-wide catalogue of named scenarios. Ships with the paper's
/// experiments pre-registered (see registry.cpp); benches, examples and
/// tests look scenarios up by name instead of hand-wiring parameters, and
/// user code may `add()` its own.
class ScenarioRegistry {
 public:
  /// The singleton, with built-in scenarios already registered.
  static ScenarioRegistry& instance();

  /// Register a scenario; names must be unique and non-empty.
  void add(ScenarioSpec spec);

  /// nullptr when `name` is not registered.
  const ScenarioSpec* find(const std::string& name) const;

  /// Like find(), but raises ConfigError listing the known names.
  const ScenarioSpec& require(const std::string& name) const;

  /// All scenarios, in registration order.
  const std::vector<ScenarioSpec>& scenarios() const { return scenarios_; }

 private:
  ScenarioRegistry();

  std::vector<ScenarioSpec> scenarios_;
};

/// `spec_config_keys()` plus the "scenario" selector key — the allow-list
/// for binaries that accept a full scenario description on the command line.
std::vector<std::string> scenario_config_keys();

/// Build a spec from strict command-line config: start from the registry
/// entry named by `scenario=` (or `default_name`, or paper defaults when
/// both are empty) and overlay any per-key overrides.
ScenarioSpec resolve_scenario(const Config& cfg,
                              const std::string& default_name = "");

/// Human-readable registry listing: one block per scenario with its
/// description and effective spec, followed by the known config keys.
std::string list_scenarios_text();

}  // namespace ehpc::scenario
