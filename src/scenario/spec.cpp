#include "scenario/spec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "charm/load_balancer.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "elastic/workload.hpp"

namespace ehpc::scenario {

using elastic::PolicyMode;

std::string to_string(Substrate s) {
  switch (s) {
    case Substrate::kSchedSim: return "schedsim";
    case Substrate::kCluster: return "cluster";
  }
  return "?";
}

Substrate substrate_from_string(const std::string& name) {
  if (name == "schedsim" || name == "sim") return Substrate::kSchedSim;
  if (name == "cluster" || name == "k8s") return Substrate::kCluster;
  throw ConfigError("unknown substrate '" + name +
                    "'; known: schedsim cluster");
}

std::string to_string(SweepAxis a) {
  switch (a) {
    case SweepAxis::kNone: return "none";
    case SweepAxis::kSubmissionGap: return "submission_gap";
    case SweepAxis::kRescaleGap: return "rescale_gap";
    case SweepAxis::kRefineRate: return "refine_rate";
    case SweepAxis::kLbStrategy: return "lb_strategy";
    case SweepAxis::kFaultMtbf: return "fault_mtbf";
    case SweepAxis::kCheckpointPeriod: return "checkpoint_period";
    case SweepAxis::kGraphSkew: return "graph_skew";
    case SweepAxis::kNetOversub: return "net_oversub";
  }
  return "?";
}

SweepAxis sweep_axis_from_string(const std::string& name) {
  if (name == "none") return SweepAxis::kNone;
  if (name == "submission_gap") return SweepAxis::kSubmissionGap;
  if (name == "rescale_gap") return SweepAxis::kRescaleGap;
  if (name == "refine_rate") return SweepAxis::kRefineRate;
  if (name == "lb_strategy") return SweepAxis::kLbStrategy;
  if (name == "fault_mtbf") return SweepAxis::kFaultMtbf;
  if (name == "checkpoint_period") return SweepAxis::kCheckpointPeriod;
  if (name == "graph_skew") return SweepAxis::kGraphSkew;
  if (name == "net_oversub") return SweepAxis::kNetOversub;
  throw ConfigError(
      "unknown sweep axis '" + name +
      "'; known: none submission_gap rescale_gap refine_rate lb_strategy "
      "fault_mtbf checkpoint_period graph_skew net_oversub");
}

bool axis_affects_workloads(SweepAxis a) {
  return a == SweepAxis::kRefineRate || a == SweepAxis::kLbStrategy ||
         a == SweepAxis::kGraphSkew || a == SweepAxis::kNetOversub;
}

namespace {

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<PolicyMode> parse_policies(const std::string& text) {
  if (text == "all") {
    return {PolicyMode::kRigidMin, PolicyMode::kRigidMax, PolicyMode::kMoldable,
            PolicyMode::kElastic};
  }
  std::vector<PolicyMode> out;
  for (const auto& item : split_list(text)) {
    try {
      out.push_back(elastic::policy_mode_from_string(item));
    } catch (const std::exception&) {
      throw ConfigError("unknown policy '" + item +
                        "'; known: min_replicas max_replicas moldable elastic "
                        "(or 'all')");
    }
  }
  if (out.empty()) throw ConfigError("policies list is empty: '" + text + "'");
  return out;
}

std::vector<double> parse_values(const std::string& text) {
  std::vector<double> out;
  for (const auto& item : split_list(text)) {
    char* end = nullptr;
    const double value = std::strtod(item.c_str(), &end);
    if (end != item.c_str() + item.size()) {
      throw ConfigError("bad sweep value '" + item + "' in '" + text + "'");
    }
    out.push_back(value);
  }
  return out;
}

std::vector<int> parse_domain_sizes(const std::string& text) {
  std::vector<int> out;
  for (const auto& item : split_list(text)) {
    char* end = nullptr;
    const long value = std::strtol(item.c_str(), &end, 10);
    if (end != item.c_str() + item.size() || value <= 0) {
      throw ConfigError("bad fault_domains entry '" + item + "' in '" + text +
                        "' (expected positive slot counts)");
    }
    out.push_back(static_cast<int>(value));
  }
  if (out.empty()) {
    throw ConfigError("fault_domains list is empty: '" + text + "'");
  }
  return out;
}

std::vector<schedsim::DomainCrash> parse_domain_crashes(
    const std::string& text) {
  std::vector<schedsim::DomainCrash> out;
  for (const auto& item : split_list(text)) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) {
      throw ConfigError("bad fault_domain_crash_times entry '" + item +
                        "' in '" + text + "' (expected time:domain)");
    }
    const std::string time_part = item.substr(0, colon);
    const std::string domain_part = item.substr(colon + 1);
    char* end = nullptr;
    const double time = std::strtod(time_part.c_str(), &end);
    if (time_part.empty() || end != time_part.c_str() + time_part.size()) {
      throw ConfigError("bad crash time '" + time_part +
                        "' in fault_domain_crash_times entry '" + item + "'");
    }
    const long domain = std::strtol(domain_part.c_str(), &end, 10);
    if (domain_part.empty() ||
        end != domain_part.c_str() + domain_part.size() || domain < 0) {
      throw ConfigError("bad domain index '" + domain_part +
                        "' in fault_domain_crash_times entry '" + item + "'");
    }
    out.push_back({time, static_cast<int>(domain)});
  }
  if (out.empty()) {
    throw ConfigError("fault_domain_crash_times list is empty: '" + text +
                      "'");
  }
  return out;
}

std::string join_domain_sizes(const std::vector<int>& sizes) {
  std::string out;
  for (const int s : sizes) {
    if (!out.empty()) out += ',';
    out += std::to_string(s);
  }
  return out;
}

std::string join_domain_crashes(
    const std::vector<schedsim::DomainCrash>& crashes) {
  std::string out;
  for (const auto& crash : crashes) {
    if (!out.empty()) out += ',';
    out += format_double(crash.time_s,
                         std::floor(crash.time_s) == crash.time_s ? 0 : 3);
    out += ':' + std::to_string(crash.domain);
  }
  return out;
}

std::string join_policies(const std::vector<PolicyMode>& policies) {
  std::string out;
  for (const auto mode : policies) {
    if (!out.empty()) out += ',';
    out += elastic::to_string(mode);
  }
  return out;
}

std::string join_values(const std::vector<double>& values) {
  std::string out;
  for (const double v : values) {
    if (!out.empty()) out += ',';
    // No int cast: arbitrary user-supplied values may exceed int range.
    out += format_double(v, std::floor(v) == v ? 0 : 3);
  }
  return out;
}

}  // namespace

void ScenarioSpec::validate() const {
  auto fail = [this](const std::string& what) {
    throw ConfigError("scenario '" + name + "': " + what);
  };
  if (nodes <= 0) fail("nodes must be positive");
  if (cpus_per_node <= 0) fail("cpus_per_node must be positive");
  if (num_jobs <= 0) fail("num_jobs must be positive");
  if (pods_per_job < 0) fail("pods_per_job must be non-negative");
  if (submission_gap_s < 0.0) fail("submission_gap must be non-negative");
  if (rescale_gap_s < 0.0) fail("rescale_gap must be non-negative");
  if (repeats <= 0) fail("repeats must be positive");
  if (policies.empty()) fail("policies must not be empty");
  if (axis != SweepAxis::kNone && axis_values.empty()) {
    fail("sweep axis '" + to_string(axis) + "' needs sweep_values");
  }
  if (axis == SweepAxis::kNone && !axis_values.empty()) {
    fail("sweep_values given but sweep_axis is 'none'");
  }
  if (app != "jacobi" && app != "amr" && app != "graph") {
    fail("unknown app '" + app + "'; known: jacobi amr graph");
  }
  if (refine_rate < 0.0 || refine_rate > 0.5) {
    fail("refine_rate must be in [0, 0.5]");
  }
  if (net_model != "flat" && net_model != "fattree" &&
      net_model != "dragonfly") {
    fail("unknown net_model '" + net_model +
         "'; known: flat fattree dragonfly");
  }
  if (net_model != "flat" && app != "graph") {
    fail("net_model '" + net_model + "' requires app=graph (only the graph "
         "calibration routes through the topology seam)");
  }
  if (net_oversub != 1.0 && net_model == "flat") {
    fail("net_oversub needs a topology: set net_model=fattree or dragonfly");
  }
  if (net_oversub < 1.0 || net_oversub > 64.0) {
    fail("net_oversub must be in [1, 64]");
  }
  if (graph_vertices < 256 || graph_vertices > (1 << 22)) {
    fail("graph_vertices must be in [256, 4194304]");
  }
  if (graph_skew < 0.0 || graph_skew > 1.5) {
    fail("graph_skew must be in [0, 1.5]");
  }
  if (app != "graph" && (graph_vertices != 4096 || graph_skew != 0.8)) {
    fail("graph_vertices/graph_skew require app=graph");
  }
  const auto& lb_names = charm::load_balancer_names();
  if (std::find(lb_names.begin(), lb_names.end(), lb_strategy) ==
      lb_names.end()) {
    fail("unknown lb_strategy '" + lb_strategy +
         "'; known: null greedy refine commrefine");
  }
  if (axis == SweepAxis::kLbStrategy) {
    for (const double v : axis_values) {
      if (std::floor(v) != v || v < 0.0 ||
          v >= static_cast<double>(lb_names.size())) {
        fail("lb_strategy sweep values index load_balancer_names(): integers "
             "in [0, " + std::to_string(lb_names.size()) + ")");
      }
    }
  }
  if (axis == SweepAxis::kRefineRate) {
    for (const double v : axis_values) {
      if (v < 0.0 || v > 0.5) {
        fail("refine_rate sweep values must be in [0, 0.5]");
      }
    }
  }
  if (axis == SweepAxis::kRefineRate) {
    if (app != "amr") fail("axis '" + to_string(axis) + "' requires app=amr");
  }
  if (axis == SweepAxis::kLbStrategy) {
    if (app != "amr" && app != "graph") {
      fail("axis '" + to_string(axis) + "' requires app=amr or app=graph");
    }
  }
  if (axis == SweepAxis::kGraphSkew) {
    if (app != "graph") {
      fail("axis '" + to_string(axis) + "' requires app=graph");
    }
    for (const double v : axis_values) {
      if (v < 0.0 || v > 1.5) {
        fail("graph_skew sweep values must be in [0, 1.5]");
      }
    }
  }
  if (axis == SweepAxis::kNetOversub) {
    if (app != "graph") {
      fail("axis '" + to_string(axis) + "' requires app=graph");
    }
    if (net_model == "flat") {
      fail("axis 'net_oversub' needs a topology: set net_model=fattree or "
           "dragonfly");
    }
    for (const double v : axis_values) {
      if (v < 1.0 || v > 64.0) {
        fail("net_oversub sweep values must be in [1, 64]");
      }
    }
  }
  if (axis == SweepAxis::kFaultMtbf || axis == SweepAxis::kCheckpointPeriod) {
    for (const double v : axis_values) {
      if (v <= 0.0) {
        fail("axis '" + to_string(axis) + "' sweep values must be positive");
      }
    }
  }
  if (trace_jobs < 0) fail("trace_jobs must be non-negative");
  if (cron_period_s < 0.0) fail("cron_period must be non-negative");
  if (cron_period_s > 0.0) {
    if (cron_phase_s < 0.0) fail("cron_phase must be non-negative");
    if (cron_end_s < cron_phase_s) {
      fail("cron_end must be >= cron_phase (the cron window is "
           "[cron_phase, cron_end])");
    }
    try {
      elastic::job_class_from_string(cron_class);
    } catch (const std::exception& e) {
      fail(e.what());
    }
    if (cron_priority < 1) fail("cron_priority must be >= 1");
  }
  try {
    faults.validate();
  } catch (const std::exception& e) {
    fail(std::string("bad fault plan: ") + e.what());
  }
  if (!faults.domain_sizes.empty()) {
    int covered = 0;
    for (const int s : faults.domain_sizes) covered += s;
    if (covered > total_slots()) {
      fail("fault_domains cover " + std::to_string(covered) +
           " slots but the cluster has only " +
           std::to_string(total_slots()));
    }
  }
}

const std::vector<std::string>& spec_config_keys() {
  static const std::vector<std::string> kKeys{
      "substrate",      "nodes",      "cpus_per_node", "num_jobs",
      "pods_per_job",
      "submission_gap", "rescale_gap", "calibrated",   "policies",
      "app",            "refine_rate", "lb_strategy",
      "net_model",      "net_oversub", "graph_vertices", "graph_skew",
      "fault_times",    "fault_mtbf", "evict_times",   "straggler_at",
      "straggler_factor", "checkpoint_period", "fault_detection",
      "max_failed_nodes",
      "fault_domains",  "fault_domain_crash_times", "failure_trace_path",
      "restore_bandwidth",
      "trace",          "trace_jobs", "cron_period",   "cron_phase",
      "cron_end",       "cron_class", "cron_priority", "queue_timeout",
      "task_timeout",
      "sweep_axis",     "sweep_values", "repeats",     "seed"};
  return kKeys;
}

std::string spec_config_help() {
  return
      "  substrate=schedsim      schedsim | cluster (k8s emulation)\n"
      "  nodes=4                 emulated cluster nodes\n"
      "  cpus_per_node=16        vCPUs per node\n"
      "  num_jobs=16             jobs per random mix\n"
      "  pods_per_job=0          force rigid job width (min=max replicas);\n"
      "                          0 keeps class-driven widths\n"
      "  submission_gap=90       seconds between submissions\n"
      "  rescale_gap=180         T_rescale_gap in seconds\n"
      "  calibrated=true         minicharm-calibrated step-time curves\n"
      "  policies=all            comma list: min_replicas,max_replicas,"
      "moldable,elastic\n"
      "  app=jacobi              jacobi | amr (adaptive mesh) | graph\n"
      "                          (power-law graph supersteps)\n"
      "  refine_rate=0.12        AMR refinement-event rate per patch/iter\n"
      "  lb_strategy=greedy      runtime LB: null | greedy | refine |\n"
      "                          commrefine (communication-aware)\n"
      "  net_model=flat          flat | fattree | dragonfly (graph only;\n"
      "                          topology models add link contention)\n"
      "  net_oversub=1           core-level oversubscription factor\n"
      "                          (needs net_model=fattree|dragonfly)\n"
      "  graph_vertices=4096     graph app vertex count (medium class)\n"
      "  graph_skew=0.8          power-law exponent of the degree law\n"
      "  fault_times=            comma list of node-crash virtual times (s)\n"
      "  fault_mtbf=0            deterministic crash chain period (s); 0 off\n"
      "  evict_times=            comma list of pod-eviction virtual times (s)\n"
      "  straggler_at=-1         time a straggler PE appears (s); <0 off\n"
      "  straggler_factor=1      step-time multiplier of the straggler job\n"
      "  checkpoint_period=0     disk checkpoint cadence (s); 0 = none\n"
      "  fault_detection=5       crash detection delay before recovery (s)\n"
      "  max_failed_nodes=-1     per-job crash budget (prun); <0 unlimited\n"
      "  fault_domains=          comma list of failure-domain slot counts\n"
      "                          (consecutive slot groups, e.g. racks)\n"
      "  fault_domain_crash_times=  comma list of time:domain correlated\n"
      "                          crashes (kill every PE of the domain)\n"
      "  failure_trace_path=     CSV failure trace (time_s,kind[,domain])\n"
      "  restore_bandwidth=0     concurrent restores sharing the restore\n"
      "                          path before it saturates; 0 = unlimited\n"
      "  trace=                  CSV job trace to stream (replaces num_jobs)\n"
      "  trace_jobs=0            synthetic streaming trace length; 0 off\n"
      "  cron_period=0           recurring-job submission period (s); 0 off\n"
      "  cron_phase=0            first cron submission time (s)\n"
      "  cron_end=0              last eligible cron submission (s, inclusive)\n"
      "  cron_class=medium       cron job class: small|medium|large|xlarge\n"
      "  cron_priority=3         cron job priority\n"
      "  queue_timeout=-1        abandon jobs queued this long (s); <0 off\n"
      "  task_timeout=-1         kill jobs running this long (s); <0 off\n"
      "  sweep_axis=none         none | submission_gap | rescale_gap |\n"
      "                          refine_rate | lb_strategy | fault_mtbf |\n"
      "                          checkpoint_period\n"
      "  sweep_values=...        comma list of swept parameter values\n"
      "  repeats=100             random mixes averaged per point\n"
      "  seed=2025               base RNG seed (repeat r uses seed + r)\n";
}

ScenarioSpec spec_from_config(const Config& cfg, ScenarioSpec base) {
  ScenarioSpec spec = std::move(base);
  if (auto v = cfg.get("substrate")) spec.substrate = substrate_from_string(*v);
  spec.nodes = cfg.get_int("nodes", spec.nodes);
  spec.cpus_per_node = cfg.get_int("cpus_per_node", spec.cpus_per_node);
  spec.num_jobs = cfg.get_int("num_jobs", spec.num_jobs);
  spec.pods_per_job = cfg.get_int("pods_per_job", spec.pods_per_job);
  spec.submission_gap_s = cfg.get_double("submission_gap", spec.submission_gap_s);
  spec.rescale_gap_s = cfg.get_double("rescale_gap", spec.rescale_gap_s);
  spec.calibrated = cfg.get_bool("calibrated", spec.calibrated);
  if (auto v = cfg.get("app")) spec.app = *v;
  spec.refine_rate = cfg.get_double("refine_rate", spec.refine_rate);
  if (auto v = cfg.get("lb_strategy")) spec.lb_strategy = *v;
  if (auto v = cfg.get("net_model")) spec.net_model = *v;
  spec.net_oversub = cfg.get_double("net_oversub", spec.net_oversub);
  spec.graph_vertices = cfg.get_int("graph_vertices", spec.graph_vertices);
  spec.graph_skew = cfg.get_double("graph_skew", spec.graph_skew);
  if (auto v = cfg.get("fault_times")) spec.faults.crash_times = parse_values(*v);
  spec.faults.crash_mtbf_s =
      cfg.get_double("fault_mtbf", spec.faults.crash_mtbf_s);
  if (auto v = cfg.get("evict_times")) spec.faults.evict_times = parse_values(*v);
  spec.faults.straggler_at_s =
      cfg.get_double("straggler_at", spec.faults.straggler_at_s);
  spec.faults.straggler_factor =
      cfg.get_double("straggler_factor", spec.faults.straggler_factor);
  spec.faults.checkpoint_period_s =
      cfg.get_double("checkpoint_period", spec.faults.checkpoint_period_s);
  spec.faults.detection_s =
      cfg.get_double("fault_detection", spec.faults.detection_s);
  spec.faults.max_failed_nodes =
      cfg.get_int("max_failed_nodes", spec.faults.max_failed_nodes);
  if (auto v = cfg.get("fault_domains")) {
    spec.faults.domain_sizes = parse_domain_sizes(*v);
  }
  if (auto v = cfg.get("fault_domain_crash_times")) {
    spec.faults.domain_crashes = parse_domain_crashes(*v);
  }
  if (auto v = cfg.get("failure_trace_path")) {
    spec.faults.failure_trace_path = *v;
  }
  spec.faults.restore_bandwidth =
      cfg.get_double("restore_bandwidth", spec.faults.restore_bandwidth);
  if (auto v = cfg.get("trace")) spec.trace_path = *v;
  spec.trace_jobs = cfg.get_int("trace_jobs", static_cast<int>(spec.trace_jobs));
  spec.cron_period_s = cfg.get_double("cron_period", spec.cron_period_s);
  spec.cron_phase_s = cfg.get_double("cron_phase", spec.cron_phase_s);
  spec.cron_end_s = cfg.get_double("cron_end", spec.cron_end_s);
  if (auto v = cfg.get("cron_class")) spec.cron_class = *v;
  spec.cron_priority = cfg.get_int("cron_priority", spec.cron_priority);
  spec.queue_timeout_s = cfg.get_double("queue_timeout", spec.queue_timeout_s);
  spec.task_timeout_s = cfg.get_double("task_timeout", spec.task_timeout_s);
  if (auto v = cfg.get("policies")) spec.policies = parse_policies(*v);
  if (auto v = cfg.get("sweep_axis")) spec.axis = sweep_axis_from_string(*v);
  if (auto v = cfg.get("sweep_values")) spec.axis_values = parse_values(*v);
  spec.seed = static_cast<unsigned>(
      cfg.get_int("seed", static_cast<int>(spec.seed)));
  spec.repeats = cfg.get_int("repeats", spec.repeats);
  spec.validate();
  return spec;
}

std::string describe(const ScenarioSpec& spec) {
  std::string out = "substrate=" + to_string(spec.substrate);
  out += " nodes=" + std::to_string(spec.nodes);
  out += " cpus_per_node=" + std::to_string(spec.cpus_per_node);
  out += " num_jobs=" + std::to_string(spec.num_jobs);
  if (spec.pods_per_job > 0) {
    out += " pods_per_job=" + std::to_string(spec.pods_per_job);
  }
  out += " submission_gap=" + format_double(spec.submission_gap_s, 0);
  out += " rescale_gap=" + format_double(spec.rescale_gap_s, 0);
  out += std::string(" calibrated=") + (spec.calibrated ? "true" : "false");
  out += " app=" + spec.app;
  if (spec.app == "amr") {
    out += " refine_rate=" + format_double(spec.refine_rate, 3);
    out += " lb_strategy=" + spec.lb_strategy;
  }
  // Graph/network keys render only when set, so specs predating the graph
  // app and the topology seam describe() byte-identically (recorded bench
  // configs).
  if (spec.app == "graph") {
    out += " graph_vertices=" + std::to_string(spec.graph_vertices);
    out += " graph_skew=" + format_double(spec.graph_skew, 3);
    out += " lb_strategy=" + spec.lb_strategy;
  }
  if (spec.net_model != "flat") {
    out += " net_model=" + spec.net_model;
    out += " net_oversub=" +
           format_double(spec.net_oversub,
                         std::floor(spec.net_oversub) == spec.net_oversub ? 0
                                                                          : 3);
  }
  if (!spec.faults.empty()) {
    if (!spec.faults.crash_times.empty()) {
      out += " fault_times=" + join_values(spec.faults.crash_times);
    }
    if (spec.faults.crash_mtbf_s > 0.0) {
      out += " fault_mtbf=" + format_double(spec.faults.crash_mtbf_s, 0);
    }
    if (!spec.faults.evict_times.empty()) {
      out += " evict_times=" + join_values(spec.faults.evict_times);
    }
    if (spec.faults.straggler_at_s >= 0.0) {
      out += " straggler_at=" + format_double(spec.faults.straggler_at_s, 0);
      out += " straggler_factor=" +
             format_double(spec.faults.straggler_factor, 2);
    }
    if (spec.faults.checkpoint_period_s > 0.0) {
      out += " checkpoint_period=" +
             format_double(spec.faults.checkpoint_period_s, 0);
    }
    if (spec.faults.max_failed_nodes >= 0) {
      out += " max_failed_nodes=" +
             std::to_string(spec.faults.max_failed_nodes);
    }
    // Correlated-failure keys render only when set, so specs predating
    // failure domains describe() byte-identically (recorded bench configs).
    if (!spec.faults.domain_sizes.empty()) {
      out += " fault_domains=" + join_domain_sizes(spec.faults.domain_sizes);
    }
    if (!spec.faults.domain_crashes.empty()) {
      out += " fault_domain_crash_times=" +
             join_domain_crashes(spec.faults.domain_crashes);
    }
    if (!spec.faults.failure_trace_path.empty()) {
      out += " failure_trace_path=" + spec.faults.failure_trace_path;
    }
    if (spec.faults.restore_bandwidth > 0.0) {
      out += " restore_bandwidth=" +
             format_double(spec.faults.restore_bandwidth,
                           std::floor(spec.faults.restore_bandwidth) ==
                                   spec.faults.restore_bandwidth
                               ? 0
                               : 3);
    }
  }
  // Trace keys render only when set, so specs predating the trace
  // subsystem describe() byte-identically (recorded bench configs).
  if (!spec.trace_path.empty()) out += " trace=" + spec.trace_path;
  if (spec.trace_jobs > 0) {
    out += " trace_jobs=" + std::to_string(spec.trace_jobs);
  }
  if (spec.cron_period_s > 0.0) {
    out += " cron_period=" + format_double(spec.cron_period_s, 0);
    out += " cron_phase=" + format_double(spec.cron_phase_s, 0);
    out += " cron_end=" + format_double(spec.cron_end_s, 0);
    out += " cron_class=" + spec.cron_class;
    out += " cron_priority=" + std::to_string(spec.cron_priority);
  }
  if (spec.queue_timeout_s >= 0.0) {
    out += " queue_timeout=" + format_double(spec.queue_timeout_s, 0);
  }
  if (spec.task_timeout_s >= 0.0) {
    out += " task_timeout=" + format_double(spec.task_timeout_s, 0);
  }
  out += " policies=" + join_policies(spec.policies);
  out += " sweep_axis=" + to_string(spec.axis);
  if (!spec.axis_values.empty()) {
    out += " sweep_values=" + join_values(spec.axis_values);
  }
  out += " repeats=" + std::to_string(spec.repeats);
  out += " seed=" + std::to_string(spec.seed);
  return out;
}

}  // namespace ehpc::scenario
