#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "elastic/policy.hpp"
#include "schedsim/fault.hpp"

namespace ehpc::scenario {

/// Which execution substrate realises the policy's decisions (§4.3): the
/// pure scheduler-performance simulator, or the emulated Kubernetes cluster
/// with the full operator/pod/handshake machinery.
enum class Substrate { kSchedSim, kCluster };

std::string to_string(Substrate s);
/// Parse "schedsim" / "cluster"; throws ConfigError on anything else.
Substrate substrate_from_string(const std::string& name);

/// The parameter an experiment sweeps, one point per value. kRefineRate,
/// kLbStrategy, kGraphSkew and kNetOversub re-calibrate the workload models
/// per point: kRefineRate sweeps the AMR refinement-event rate, kLbStrategy
/// sweeps the runtime load balancer (values index
/// `charm::load_balancer_names()`), kGraphSkew sweeps the graph app's
/// power-law exponent and kNetOversub the topology oversubscription factor.
/// kFaultMtbf and kCheckpointPeriod sweep the failure plan (crash MTBF and
/// checkpoint cadence in seconds); they change injection, not calibration.
enum class SweepAxis {
  kNone,
  kSubmissionGap,
  kRescaleGap,
  kRefineRate,
  kLbStrategy,
  kFaultMtbf,
  kCheckpointPeriod,
  kGraphSkew,
  kNetOversub,
};

std::string to_string(SweepAxis a);
/// Parse "none" / "submission_gap" / "rescale_gap" / "refine_rate" /
/// "lb_strategy" / "fault_mtbf" / "checkpoint_period" / "graph_skew" /
/// "net_oversub"; throws ConfigError on anything else.
SweepAxis sweep_axis_from_string(const std::string& name);

/// True for axes whose value changes the workload calibration itself (the
/// sweep engine then calibrates per point instead of once per sweep).
bool axis_affects_workloads(SweepAxis a);

/// Declarative description of one experiment: cluster shape, job-mix
/// generation, policy configuration, substrate choice, sweep axis and
/// repeat/seed bookkeeping. Every bench, example and test describes its
/// experiment as a ScenarioSpec (usually starting from a named registry
/// entry) and hands it to the scenario runner; nothing below this layer
/// hand-wires experiment loops anymore.
struct ScenarioSpec {
  std::string name = "custom";  ///< registry key; "custom" when ad hoc
  std::string description;
  Substrate substrate = Substrate::kSchedSim;

  // Cluster shape (paper §4.1: 4 × c6g.4xlarge = 64 vCPUs).
  int nodes = 4;
  int cpus_per_node = 16;

  // Job-mix generation (§4.3.1): `num_jobs` random jobs submitted
  // `submission_gap_s` apart, step-time curves either minicharm-calibrated
  // or analytic.
  int num_jobs = 16;
  double submission_gap_s = 90.0;
  bool calibrated = true;
  /// When positive, every generated job is forced rigid at this width
  /// (min_replicas = max_replicas = pods_per_job). The scale knob of the
  /// `k8s_scale` scenario: total pod count = num_jobs × pods_per_job,
  /// independent of the class-driven widths. 0 keeps the class widths.
  int pods_per_job = 0;

  // Which application the workload models are calibrated from: "jacobi"
  // (the paper's regular stencil), "amr" (the irregular adaptive-mesh
  // workload, always minicharm-calibrated) or "graph" (the power-law graph
  // superstep workload). For "amr", `refine_rate` sets the refinement-event
  // rate; `lb_strategy` picks the runtime load balancer used during the
  // calibration runs for both irregular apps.
  std::string app = "jacobi";
  double refine_rate = 0.12;
  std::string lb_strategy = "greedy";

  // Network model the graph calibration runs under ("flat" keeps the
  // classic alpha-beta cost model; "fattree"/"dragonfly" add per-link
  // contention) and its topology parameters. Graph-only: jacobi/amr
  // calibrations predate the topology seam and keep the flat model.
  std::string net_model = "flat";
  double net_oversub = 1.0;
  int graph_vertices = 4096;
  double graph_skew = 0.8;

  // Policy configuration shared by every policy in `policies`.
  double rescale_gap_s = 180.0;
  std::vector<elastic::PolicyMode> policies{
      elastic::PolicyMode::kRigidMin, elastic::PolicyMode::kRigidMax,
      elastic::PolicyMode::kMoldable, elastic::PolicyMode::kElastic};

  // Failure injection (executed by the shared harness, so both substrates
  // see the identical fault sequence). Empty by default: no faults, no
  // checkpointing, behaviour identical to a spec without the field.
  schedsim::FaultPlan faults;

  // ---- trace campaign (streaming TraceSource replay) ----
  // When any trace source below is configured the runner switches from
  // generated mixes to `run_stream`: submissions are pulled lazily and
  // finished jobs retire to summaries, so trace length no longer bounds
  // memory. Multiple configured sources merge in submit-time order.
  std::string trace_path;   ///< CSV trace file; empty = no CSV source
  long trace_jobs = 0;      ///< synthetic stream length; 0 = no synthetic
  double cron_period_s = 0.0;  ///< recurring-job period; 0 = no cron source
  double cron_phase_s = 0.0;   ///< first cron submission time
  double cron_end_s = 0.0;     ///< last eligible cron submission (inclusive)
  std::string cron_class = "medium";
  int cron_priority = 3;
  // Per-job prun-style limits stamped onto every job — trace-sourced and
  // generated mixes alike. Negative = off.
  double queue_timeout_s = -1.0;  ///< abandon a job queued this long
  double task_timeout_s = -1.0;   ///< kill a job running this long

  /// True when any trace source is configured (the runner streams).
  bool is_trace() const {
    return !trace_path.empty() || trace_jobs > 0 || cron_period_s > 0.0;
  }

  // Sweep: one point per `axis_values` entry, overriding the swept
  // parameter; kNone runs a single point at the spec's own values.
  SweepAxis axis = SweepAxis::kNone;
  std::vector<double> axis_values;

  int repeats = 100;    ///< random mixes averaged per point
  unsigned seed = 2025; ///< base RNG seed; repeat r uses seed + r

  int total_slots() const { return nodes * cpus_per_node; }

  /// Throw ConfigError on inconsistent parameters (non-positive counts, a
  /// sweep axis without values, an empty policy list, ...).
  void validate() const;
};

/// The strict `Config` keys `apply_config` understands, for
/// `Config::from_args` allow-lists and `--list-scenarios` output.
const std::vector<std::string>& spec_config_keys();

/// One help line per config key ("key=default  description").
std::string spec_config_help();

/// Overlay `cfg`'s scenario keys onto `base` and validate the result.
/// Unknown keys are the caller's concern (strict parsing); bad values
/// (unparseable substrate/axis/policy names) raise ConfigError.
ScenarioSpec spec_from_config(const Config& cfg, ScenarioSpec base = {});

/// Compact "key=value ..." rendering of a spec (for --list-scenarios and
/// recorded bench configs).
std::string describe(const ScenarioSpec& spec);

}  // namespace ehpc::scenario
