#include "scenario/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "charm/load_balancer.hpp"
#include "common/error.hpp"

namespace ehpc::scenario {

using elastic::PolicyMode;
using elastic::RunMetrics;

namespace {

/// Run body(0..n-1) across `threads` workers pulling indices from a shared
/// counter. Each index is executed exactly once; the first exception is
/// rethrown on the caller thread after all workers drain.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& body) {
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const std::size_t pool_size =
      std::min<std::size_t>(static_cast<std::size_t>(threads), n);
  std::vector<std::thread> pool;
  pool.reserve(pool_size);
  for (std::size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Overlay one sweep-axis value onto a spec.
ScenarioSpec at_axis_value(const ScenarioSpec& spec, double value) {
  ScenarioSpec point = spec;
  switch (spec.axis) {
    case SweepAxis::kNone:
      break;
    case SweepAxis::kSubmissionGap:
      point.submission_gap_s = value;
      break;
    case SweepAxis::kRescaleGap:
      point.rescale_gap_s = value;
      break;
    case SweepAxis::kRefineRate:
      point.refine_rate = value;
      break;
    case SweepAxis::kLbStrategy:
      point.lb_strategy =
          charm::load_balancer_names().at(static_cast<std::size_t>(value));
      break;
    case SweepAxis::kFaultMtbf:
      point.faults.crash_mtbf_s = value;
      break;
    case SweepAxis::kCheckpointPeriod:
      point.faults.checkpoint_period_s = value;
      break;
    case SweepAxis::kGraphSkew:
      point.graph_skew = value;
      break;
    case SweepAxis::kNetOversub:
      point.net_oversub = value;
      break;
  }
  return point;
}

}  // namespace

SweepResult run_sweep(const ScenarioSpec& spec, int threads) {
  spec.validate();
  const std::vector<double> xs =
      spec.axis == SweepAxis::kNone ? std::vector<double>{0.0}
                                    : spec.axis_values;

  const std::size_t num_points = xs.size();
  const std::size_t repeats = static_cast<std::size_t>(spec.repeats);
  const std::size_t num_policies = spec.policies.size();

  // Calibrate workload models before fanning out, so the parallel cells
  // only read shared immutable state. Axes that change the calibration
  // itself (refine_rate, lb_strategy, graph_skew, net_oversub) get one
  // model set per point; everything else shares a single set.
  std::vector<std::map<elastic::JobClass, elastic::Workload>> workloads;
  if (axis_affects_workloads(spec.axis)) {
    workloads.reserve(num_points);
    for (const double x : xs) {
      workloads.push_back(workloads_for(at_axis_value(spec, x)));
    }
  } else {
    workloads.push_back(workloads_for(spec));
  }

  // One cell per (sweep point × repeat): the repeat's random mix is shared
  // across policies, exactly like the paper's averaging procedure. Cells are
  // fully independent — each builds its own mix and substrate instances.
  std::vector<std::vector<RunMetrics>> cells(num_points * repeats);
  parallel_for(cells.size(), threads, [&](std::size_t i) {
    const std::size_t p = i / repeats;
    const std::size_t r = i % repeats;
    const ScenarioSpec point = at_axis_value(spec, xs[p]);
    const auto& point_workloads = workloads[workloads.size() == 1 ? 0 : p];
    const unsigned cell_seed = spec.seed + static_cast<unsigned>(r);
    auto& cell = cells[i];
    cell.resize(num_policies);
    if (point.is_trace()) {
      // Trace cells stream instead of materializing a mix: every policy
      // pulls a fresh source built from the same (spec, seed), so all
      // policies replay the identical submission sequence.
      for (std::size_t k = 0; k < num_policies; ++k) {
        auto backend = make_backend(point, policy_for(point, spec.policies[k]),
                                    point_workloads);
        auto source = make_trace_source(point, cell_seed);
        cell[k] = backend->run_stream(*source).metrics;
      }
      return;
    }
    const auto mix = make_mix(point, cell_seed);
    for (std::size_t k = 0; k < num_policies; ++k) {
      auto backend = make_backend(point, policy_for(point, spec.policies[k]),
                                  point_workloads);
      cell[k] = backend->run(mix).metrics;
    }
  });

  // Merge in serial (point, policy, repeat) order so the averaged result is
  // bit-identical no matter how the cells were scheduled.
  SweepResult out;
  out.points.reserve(num_points);
  for (std::size_t p = 0; p < num_points; ++p) {
    SweepPoint point;
    point.x = xs[p];
    for (std::size_t k = 0; k < num_policies; ++k) {
      std::vector<RunMetrics> runs;
      runs.reserve(repeats);
      for (std::size_t r = 0; r < repeats; ++r) {
        runs.push_back(cells[p * repeats + r][k]);
      }
      point.metrics.emplace(spec.policies[k], elastic::average_metrics(runs));
    }
    out.points.push_back(std::move(point));
  }
  return out;
}

PolicyMetrics compare_policies(const ScenarioSpec& spec, int threads) {
  ScenarioSpec single = spec;
  single.axis = SweepAxis::kNone;
  single.axis_values.clear();
  return run_sweep(single, threads).points.front().metrics;
}

RunMetrics run_repeats(const ScenarioSpec& spec,
                       const elastic::PolicyConfig& policy, int threads) {
  spec.validate();
  const auto workloads = workloads_for(spec);
  const std::size_t repeats = static_cast<std::size_t>(spec.repeats);
  std::vector<RunMetrics> runs(repeats);
  parallel_for(repeats, threads, [&](std::size_t r) {
    const unsigned seed = spec.seed + static_cast<unsigned>(r);
    auto backend = make_backend(spec, policy, workloads);
    if (spec.is_trace()) {
      auto source = make_trace_source(spec, seed);
      runs[r] = backend->run_stream(*source).metrics;
      return;
    }
    const auto mix = make_mix(spec, seed);
    runs[r] = backend->run(mix).metrics;
  });
  return elastic::average_metrics(runs);
}

schedsim::SimResult run_single(const ScenarioSpec& spec, PolicyMode mode,
                               unsigned mix_seed) {
  spec.validate();
  const auto workloads = workloads_for(spec);
  auto backend = make_backend(spec, policy_for(spec, mode), workloads);
  if (spec.is_trace()) {
    auto source = make_trace_source(spec, mix_seed);
    return backend->run_stream(*source);
  }
  const auto mix = make_mix(spec, mix_seed);
  return backend->run(mix);
}

std::map<PolicyMode, schedsim::SimResult> run_policies(
    const ScenarioSpec& spec, const std::vector<schedsim::SubmittedJob>& mix) {
  return run_policies(spec, mix, workloads_for(spec));
}

std::map<PolicyMode, schedsim::SimResult> run_policies(
    const ScenarioSpec& spec, const std::vector<schedsim::SubmittedJob>& mix,
    const std::map<elastic::JobClass, elastic::Workload>& workloads) {
  spec.validate();
  EHPC_EXPECTS(!mix.empty());
  std::map<PolicyMode, schedsim::SimResult> out;
  for (const PolicyMode mode : spec.policies) {
    auto backend = make_backend(spec, policy_for(spec, mode), workloads);
    out.emplace(mode, backend->run(mix));
  }
  return out;
}

std::map<PolicyMode, schedsim::SimResult> run_policies_stream(
    const ScenarioSpec& spec, unsigned seed) {
  spec.validate();
  const auto workloads = workloads_for(spec);
  std::map<PolicyMode, schedsim::SimResult> out;
  for (const PolicyMode mode : spec.policies) {
    auto backend = make_backend(spec, policy_for(spec, mode), workloads);
    auto source = make_trace_source(spec, seed);
    out.emplace(mode, backend->run_stream(*source));
  }
  return out;
}

}  // namespace ehpc::scenario
