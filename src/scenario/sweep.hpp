#pragma once

#include <map>
#include <vector>

#include "elastic/metrics.hpp"
#include "scenario/backend.hpp"
#include "scenario/spec.hpp"

namespace ehpc::scenario {

/// Averaged metrics of every policy a scenario ran.
using PolicyMetrics = std::map<elastic::PolicyMode, elastic::RunMetrics>;

/// One point of a sweep: the swept parameter value and the per-policy
/// metrics averaged over the scenario's repeats.
struct SweepPoint {
  double x = 0.0;
  PolicyMetrics metrics;
};

struct SweepResult {
  std::vector<SweepPoint> points;
};

/// Run the scenario's full sweep: one point per axis value (a single point
/// for SweepAxis::kNone), each the average over `spec.repeats` random mixes
/// shared across the spec's policies.
///
/// `threads` > 1 fans the (point × repeat) cells out across a thread pool;
/// 0 picks the hardware concurrency. Every cell derives a private RNG
/// stream from the spec seed (repeat r uses seed + r) and owns all mutable
/// state, and cell results are merged in serial order — the outcome is
/// bit-identical to `threads=1` regardless of scheduling.
SweepResult run_sweep(const ScenarioSpec& spec, int threads = 1);

/// Single-point convenience: the scenario's policies averaged over its
/// repeats at its own (un-swept) parameters.
PolicyMetrics compare_policies(const ScenarioSpec& spec, int threads = 1);

/// Average one explicit policy configuration over the scenario's repeats —
/// the ablation entry point, where the interesting knobs live outside
/// PolicyMode. Deterministic under threading like run_sweep.
elastic::RunMetrics run_repeats(const ScenarioSpec& spec,
                                const elastic::PolicyConfig& policy,
                                int threads = 1);

/// One full run of a single policy on one deterministic mix, returning
/// traces for Fig. 9-style plots (utilization profile, per-job replicas).
schedsim::SimResult run_single(const ScenarioSpec& spec,
                               elastic::PolicyMode mode, unsigned mix_seed);

/// Run every policy of the scenario on one shared mix, keeping full results
/// (traces, job records, rescale counts). Serial; used by Table 1 / Fig. 9
/// style benches that need more than averaged metrics.
std::map<elastic::PolicyMode, schedsim::SimResult> run_policies(
    const ScenarioSpec& spec, const std::vector<schedsim::SubmittedJob>& mix);

/// As above with precomputed workload models (avoids re-calibration when a
/// caller runs the same spec on several substrates).
std::map<elastic::PolicyMode, schedsim::SimResult> run_policies(
    const ScenarioSpec& spec, const std::vector<schedsim::SubmittedJob>& mix,
    const std::map<elastic::JobClass, elastic::Workload>& workloads);

/// Streaming analogue of run_policies for trace specs: every policy replays
/// a fresh source built from the same (spec, seed), so all policies see the
/// identical submission sequence. Requires `spec.is_trace()`. Full results
/// carry `SimResult::stream` stats; per-job records are retired, not kept.
std::map<elastic::PolicyMode, schedsim::SimResult> run_policies_stream(
    const ScenarioSpec& spec, unsigned seed);

}  // namespace ehpc::scenario
