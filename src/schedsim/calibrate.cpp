#include "schedsim/calibrate.hpp"

#include <algorithm>
#include <mutex>
#include <tuple>
#include <utility>

#include "apps/calibration.hpp"
#include "net/network_model.hpp"

namespace ehpc::schedsim {

using elastic::JobClass;
using elastic::Workload;

std::map<JobClass, Workload> analytic_workloads() {
  std::map<JobClass, Workload> out;
  for (auto c : {JobClass::kSmall, JobClass::kMedium, JobClass::kLarge,
                 JobClass::kXLarge}) {
    out.emplace(c, elastic::make_workload(c));
  }
  return out;
}

std::map<JobClass, Workload> calibrated_workloads() {
  std::map<JobClass, Workload> out = analytic_workloads();
  const std::vector<int> replicas{1, 2, 4, 8, 16, 32, 64};
  for (auto& [cls, workload] : out) {
    const auto points =
        apps::measure_jacobi_scaling(workload.grid_n, replicas, /*iterations=*/8);
    workload.time_per_step = apps::scaling_curve(points);
  }
  return out;
}

apps::AmrConfig amr_config_for(JobClass c, double refine_rate) {
  apps::AmrConfig config;
  // Sized so class runtimes land in the same regime as the Jacobi classes
  // (tens of seconds to ~10 minutes per job): compute dominates the
  // per-message handler cost, so refinement genuinely moves step time.
  switch (c) {
    case JobClass::kSmall:
      config.blocks = 64;
      config.cells_per_block = 8192;
      break;
    case JobClass::kMedium:
      config.blocks = 96;
      config.cells_per_block = 16384;
      break;
    case JobClass::kLarge:
      config.blocks = 128;
      config.cells_per_block = 32768;
      break;
    case JobClass::kXLarge:
      config.blocks = 192;
      config.cells_per_block = 131072;
      break;
  }
  config.max_real_cells = 64;
  config.max_depth = 2;
  config.max_iterations = 12;
  config.refine_rate = refine_rate;
  config.coarsen_rate = std::min(1.0 - refine_rate, refine_rate * 0.5);
  return config;
}

std::map<JobClass, Workload> amr_calibrated_workloads(
    double refine_rate, const std::string& lb_strategy) {
  // Memoized: sweeps and tests re-request the same (rate, strategy) pairs,
  // and the measurement is deterministic, so cache process-wide. The mutex
  // is held across the measurement — concurrent callers of the same key
  // wait instead of measuring twice.
  static std::mutex mutex;
  static std::map<std::pair<double, std::string>, std::map<JobClass, Workload>>
      cache;
  const std::lock_guard<std::mutex> lock(mutex);
  const auto key = std::make_pair(refine_rate, lb_strategy);
  if (auto it = cache.find(key); it != cache.end()) return it->second;

  std::map<JobClass, Workload> out = analytic_workloads();
  const std::vector<int> replicas{1, 4, 16, 64};
  charm::RuntimeConfig rc;
  rc.load_balancer = lb_strategy;
  for (auto& [cls, workload] : out) {
    const apps::AmrConfig config = amr_config_for(cls, refine_rate);
    workload.time_per_step = apps::scaling_curve(
        apps::measure_amr_scaling(config, replicas, /*lb_period=*/4, rc));
    // LB behaviour per rescale: measured at a mid-size PE count where the
    // front-driven imbalance is pronounced.
    const apps::LbProfile profile =
        apps::measure_amr_lb_profile(config, /*replicas=*/16, /*lb_period=*/4, rc);
    workload.lb.post_ratio = profile.post_ratio;
    workload.lb.migrations_per_step = profile.migrations_per_step;
  }
  return cache.emplace(key, std::move(out)).first->second;
}

apps::GraphConfig graph_config_for(JobClass c, int vertices, double skew) {
  apps::GraphConfig config;
  // Vertex counts scale with the class around the scenario's base size;
  // parts grow more slowly (heavier parts per chare on big classes), and
  // are capped so a tiny configured graph still partitions legally.
  switch (c) {
    case JobClass::kSmall:
      config.vertices = std::max(2, vertices / 2);
      config.parts = 48;
      break;
    case JobClass::kMedium:
      config.vertices = vertices;
      config.parts = 64;
      break;
    case JobClass::kLarge:
      config.vertices = vertices * 2;
      config.parts = 96;
      break;
    case JobClass::kXLarge:
      config.vertices = vertices * 4;
      config.parts = 128;
      break;
  }
  config.parts = std::min(config.parts, config.vertices);
  config.skew = skew;
  config.max_iterations = 10;
  return config;
}

std::map<JobClass, Workload> graph_calibrated_workloads(
    int vertices, double skew, const std::string& lb_strategy,
    const std::string& net_model, double net_oversub) {
  // Memoized like the AMR calibration: the measurement is deterministic in
  // the key, and sweeps re-request the same point many times.
  static std::mutex mutex;
  static std::map<
      std::tuple<int, double, std::string, std::string, double>,
      std::map<JobClass, Workload>>
      cache;
  const std::lock_guard<std::mutex> lock(mutex);
  const auto key =
      std::make_tuple(vertices, skew, lb_strategy, net_model, net_oversub);
  if (auto it = cache.find(key); it != cache.end()) return it->second;

  std::map<JobClass, Workload> out = analytic_workloads();
  const std::vector<int> replicas{1, 4, 16, 64};
  charm::RuntimeConfig rc;
  rc.load_balancer = lb_strategy;
  // 4 PEs per node so 64 replicas span 16 nodes (4 racks of the radix-4
  // topology): rack locality actually varies with placement.
  rc.pes_per_node = 4;
  rc.network = net::make_network_model(net_model, net_oversub);
  for (auto& [cls, workload] : out) {
    const apps::GraphConfig config = graph_config_for(cls, vertices, skew);
    workload.time_per_step = apps::scaling_curve(
        apps::measure_graph_scaling(config, replicas, /*lb_period=*/4, rc));
    // LB behaviour per rescale: measured where the hub parts are spread
    // over multiple racks.
    const apps::LbProfile profile = apps::measure_graph_lb_profile(
        config, /*replicas=*/16, /*lb_period=*/4, rc);
    workload.lb.post_ratio = profile.post_ratio;
    workload.lb.migrations_per_step = profile.migrations_per_step;
  }
  return cache.emplace(key, std::move(out)).first->second;
}

}  // namespace ehpc::schedsim
