#include "schedsim/calibrate.hpp"

#include "apps/calibration.hpp"

namespace ehpc::schedsim {

using elastic::JobClass;
using elastic::Workload;

std::map<JobClass, Workload> analytic_workloads() {
  std::map<JobClass, Workload> out;
  for (auto c : {JobClass::kSmall, JobClass::kMedium, JobClass::kLarge,
                 JobClass::kXLarge}) {
    out.emplace(c, elastic::make_workload(c));
  }
  return out;
}

std::map<JobClass, Workload> calibrated_workloads() {
  std::map<JobClass, Workload> out = analytic_workloads();
  const std::vector<int> replicas{1, 2, 4, 8, 16, 32, 64};
  for (auto& [cls, workload] : out) {
    const auto points =
        apps::measure_jacobi_scaling(workload.grid_n, replicas, /*iterations=*/8);
    workload.time_per_step = apps::scaling_curve(points);
  }
  return out;
}

}  // namespace ehpc::schedsim
