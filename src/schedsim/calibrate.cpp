#include "schedsim/calibrate.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "apps/calibration.hpp"

namespace ehpc::schedsim {

using elastic::JobClass;
using elastic::Workload;

std::map<JobClass, Workload> analytic_workloads() {
  std::map<JobClass, Workload> out;
  for (auto c : {JobClass::kSmall, JobClass::kMedium, JobClass::kLarge,
                 JobClass::kXLarge}) {
    out.emplace(c, elastic::make_workload(c));
  }
  return out;
}

std::map<JobClass, Workload> calibrated_workloads() {
  std::map<JobClass, Workload> out = analytic_workloads();
  const std::vector<int> replicas{1, 2, 4, 8, 16, 32, 64};
  for (auto& [cls, workload] : out) {
    const auto points =
        apps::measure_jacobi_scaling(workload.grid_n, replicas, /*iterations=*/8);
    workload.time_per_step = apps::scaling_curve(points);
  }
  return out;
}

apps::AmrConfig amr_config_for(JobClass c, double refine_rate) {
  apps::AmrConfig config;
  // Sized so class runtimes land in the same regime as the Jacobi classes
  // (tens of seconds to ~10 minutes per job): compute dominates the
  // per-message handler cost, so refinement genuinely moves step time.
  switch (c) {
    case JobClass::kSmall:
      config.blocks = 64;
      config.cells_per_block = 8192;
      break;
    case JobClass::kMedium:
      config.blocks = 96;
      config.cells_per_block = 16384;
      break;
    case JobClass::kLarge:
      config.blocks = 128;
      config.cells_per_block = 32768;
      break;
    case JobClass::kXLarge:
      config.blocks = 192;
      config.cells_per_block = 131072;
      break;
  }
  config.max_real_cells = 64;
  config.max_depth = 2;
  config.max_iterations = 12;
  config.refine_rate = refine_rate;
  config.coarsen_rate = std::min(1.0 - refine_rate, refine_rate * 0.5);
  return config;
}

std::map<JobClass, Workload> amr_calibrated_workloads(
    double refine_rate, const std::string& lb_strategy) {
  // Memoized: sweeps and tests re-request the same (rate, strategy) pairs,
  // and the measurement is deterministic, so cache process-wide. The mutex
  // is held across the measurement — concurrent callers of the same key
  // wait instead of measuring twice.
  static std::mutex mutex;
  static std::map<std::pair<double, std::string>, std::map<JobClass, Workload>>
      cache;
  const std::lock_guard<std::mutex> lock(mutex);
  const auto key = std::make_pair(refine_rate, lb_strategy);
  if (auto it = cache.find(key); it != cache.end()) return it->second;

  std::map<JobClass, Workload> out = analytic_workloads();
  const std::vector<int> replicas{1, 4, 16, 64};
  charm::RuntimeConfig rc;
  rc.load_balancer = lb_strategy;
  for (auto& [cls, workload] : out) {
    const apps::AmrConfig config = amr_config_for(cls, refine_rate);
    workload.time_per_step = apps::scaling_curve(
        apps::measure_amr_scaling(config, replicas, /*lb_period=*/4, rc));
    // LB behaviour per rescale: measured at a mid-size PE count where the
    // front-driven imbalance is pronounced.
    const apps::LbProfile profile =
        apps::measure_amr_lb_profile(config, /*replicas=*/16, /*lb_period=*/4, rc);
    workload.lb.post_ratio = profile.post_ratio;
    workload.lb.migrations_per_step = profile.migrations_per_step;
  }
  return cache.emplace(key, std::move(out)).first->second;
}

}  // namespace ehpc::schedsim
