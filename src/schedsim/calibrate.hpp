#pragma once

#include <map>
#include <string>

#include "apps/amr.hpp"
#include "apps/graph.hpp"
#include "elastic/workload.hpp"

namespace ehpc::schedsim {

/// Workloads with analytic step-time curves (no minicharm runs needed).
std::map<elastic::JobClass, elastic::Workload> analytic_workloads();

/// Workloads whose step-time curves are *measured* by running Jacobi2D on
/// the minicharm runtime at each replica count — the repo-internal analogue
/// of the paper's "strong scaling performance measurements" feeding its
/// simulator. Deterministic; takes a fraction of a second.
std::map<elastic::JobClass, elastic::Workload> calibrated_workloads();

/// The per-class AMR configuration the irregular-workload calibration runs
/// use (patch count and model cells grow with the class).
apps::AmrConfig amr_config_for(elastic::JobClass c, double refine_rate);

/// Irregular AMR-like workloads: step-time curves and the per-rescale LB
/// imbalance profile (`Workload::lb`) are measured by running the AMR app
/// on minicharm with `lb_strategy` ("null" | "greedy" | "refine") at each
/// replica count. Deterministic, like `calibrated_workloads`.
std::map<elastic::JobClass, elastic::Workload> amr_calibrated_workloads(
    double refine_rate, const std::string& lb_strategy);

/// The per-class graph configuration the comm-skewed calibration runs use
/// (vertex count and part count grow with the class).
apps::GraphConfig graph_config_for(elastic::JobClass c, int vertices,
                                   double skew);

/// Communication-skewed power-law graph workloads: step-time curves and the
/// LB profile are measured by running the graph app on minicharm with
/// `lb_strategy` under the `net_model` network ("flat" | "fattree" |
/// "dragonfly", oversubscribed by `net_oversub`). Hub traffic over a
/// contended topology is what separates "commrefine" from compute-only
/// strategies here. Deterministic and memoized like the AMR variant.
std::map<elastic::JobClass, elastic::Workload> graph_calibrated_workloads(
    int vertices, double skew, const std::string& lb_strategy,
    const std::string& net_model, double net_oversub);

}  // namespace ehpc::schedsim
