#pragma once

#include <map>
#include <string>

#include "apps/amr.hpp"
#include "elastic/workload.hpp"

namespace ehpc::schedsim {

/// Workloads with analytic step-time curves (no minicharm runs needed).
std::map<elastic::JobClass, elastic::Workload> analytic_workloads();

/// Workloads whose step-time curves are *measured* by running Jacobi2D on
/// the minicharm runtime at each replica count — the repo-internal analogue
/// of the paper's "strong scaling performance measurements" feeding its
/// simulator. Deterministic; takes a fraction of a second.
std::map<elastic::JobClass, elastic::Workload> calibrated_workloads();

/// The per-class AMR configuration the irregular-workload calibration runs
/// use (patch count and model cells grow with the class).
apps::AmrConfig amr_config_for(elastic::JobClass c, double refine_rate);

/// Irregular AMR-like workloads: step-time curves and the per-rescale LB
/// imbalance profile (`Workload::lb`) are measured by running the AMR app
/// on minicharm with `lb_strategy` ("null" | "greedy" | "refine") at each
/// replica count. Deterministic, like `calibrated_workloads`.
std::map<elastic::JobClass, elastic::Workload> amr_calibrated_workloads(
    double refine_rate, const std::string& lb_strategy);

}  // namespace ehpc::schedsim
