#pragma once

#include <map>

#include "elastic/workload.hpp"

namespace ehpc::schedsim {

/// Workloads with analytic step-time curves (no minicharm runs needed).
std::map<elastic::JobClass, elastic::Workload> analytic_workloads();

/// Workloads whose step-time curves are *measured* by running Jacobi2D on
/// the minicharm runtime at each replica count — the repo-internal analogue
/// of the paper's "strong scaling performance measurements" feeding its
/// simulator. Deterministic; takes a fraction of a second.
std::map<elastic::JobClass, elastic::Workload> calibrated_workloads();

}  // namespace ehpc::schedsim
