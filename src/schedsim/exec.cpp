#include "schedsim/exec.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"

namespace ehpc::schedsim {

using elastic::Action;
using elastic::ActionType;
using elastic::JobId;

void JobExec::accrue_until(double now) {
  if (now > accrue_from) {
    remaining_steps =
        std::max(0.0, remaining_steps - (now - accrue_from) / step_time());
  }
}

double JobExec::remaining_fraction(double now) const {
  if (done || workload.total_steps <= 0.0) return 0.0;
  double remaining = remaining_steps;
  if (started && now > accrue_from) {
    remaining = std::max(0.0, remaining - (now - accrue_from) / step_time());
  }
  return remaining / workload.total_steps;
}

ExecHarness::ExecHarness(
    sim::Simulation& sim, int total_slots, const elastic::PolicyConfig& policy,
    const std::map<elastic::JobClass, elastic::Workload>& workloads)
    : sim_(sim), total_slots_(total_slots), workloads_(workloads) {
  EHPC_EXPECTS(total_slots_ > 0);
  EHPC_EXPECTS(!workloads_.empty());
  engine_ = std::make_unique<elastic::PolicyEngine>(total_slots_, policy);
  // Remaining work fraction for cost/benefit-aware expansion (paper §6).
  engine_->set_progress_provider([this](JobId id) {
    return execs_.at(id).remaining_fraction(sim_.now());
  });
  collector_ = std::make_unique<elastic::MetricsCollector>(total_slots_);
}

ExecHarness::~ExecHarness() = default;

void ExecHarness::init_exec(JobExec&, const SubmittedJob&) {}

void ExecHarness::on_actions_applied() {}

void ExecHarness::on_job_completed(JobExec&) {}

SimResult ExecHarness::run(const std::vector<SubmittedJob>& mix) {
  EHPC_EXPECTS(!used_);  // single-shot per harness instance
  EHPC_EXPECTS(!mix.empty());
  used_ = true;

  for (const SubmittedJob& job : mix) {
    auto it = workloads_.find(job.job_class);
    EHPC_EXPECTS(it != workloads_.end());
    JobExec exec;
    exec.workload = it->second;
    exec.remaining_steps = exec.workload.total_steps;
    exec.ckpt_remaining_steps = exec.workload.total_steps;
    exec.record.id = job.spec.id;
    exec.record.priority = job.spec.priority;
    exec.record.submit_time = job.submit_time;
    init_exec(exec, job);
    execs_.emplace(job.spec.id, std::move(exec));
    sim_.schedule_at(job.submit_time, [this, job] { submit(job); });
  }
  schedule_faults();
  sim_.run();

  SimResult result;
  for (auto& [id, exec] : execs_) {
    EHPC_ENSURES(exec.done);  // every job must finish (or be failed)
    collector_->add_job(exec.record);
    result.jobs.push_back(exec.record);
  }
  result.metrics = collector_->compute();
  result.trace = std::move(trace_);
  result.rescale_count = rescale_count_;
  return result;
}

void ExecHarness::submit(const SubmittedJob& job) {
  auto actions = engine_->submit(job.spec, sim_.now());
  apply_actions(actions);
  on_actions_applied();
}

void ExecHarness::apply_actions(const std::vector<Action>& actions) {
  for (const Action& a : actions) {
    switch (a.type) {
      case ActionType::kStart:
        start_job(a.job, a.target_replicas);
        break;
      case ActionType::kShrink:
        shrink_job(a.job, a.target_replicas);
        break;
      case ActionType::kExpand:
        expand_job(a.job, a.target_replicas);
        break;
      case ActionType::kEnqueue:
        break;  // nothing to execute
    }
  }
}

void ExecHarness::note_rescale(elastic::JobId id) {
  ++rescale_count_;
  JobExec& exec = execs_.at(id);
  // A rescale restarts the job's processes, replacing any straggler PE.
  // Substrates call note_rescale after accruing progress at the old (slow)
  // rate, so clearing here takes effect exactly at the rescale boundary.
  exec.slowdown = 1.0;
  const auto& lb = exec.workload.lb;
  collector_->record_lb_step(lb.post_ratio, lb.migrations_per_step);
}

void ExecHarness::schedule_completion(JobId id) {
  JobExec& exec = execs_.at(id);
  if (exec.completion_event != sim::kInvalidEvent) {
    sim_.cancel(exec.completion_event);
  }
  const double finish = exec.accrue_from + exec.remaining_steps * exec.step_time();
  exec.completion_event = sim_.schedule_at(std::max(finish, sim_.now()),
                                           [this, id] { complete_job(id); });
}

void ExecHarness::complete_job(JobId id) {
  // Invoked by the (already firing) completion event; forget it before the
  // shared tail so finish_job does not cancel a spent event id.
  execs_.at(id).completion_event = sim::kInvalidEvent;
  execs_.at(id).remaining_steps = 0.0;
  finish_job(id, /*failed=*/false);
}

void ExecHarness::finish_job(JobId id, bool failed) {
  JobExec& exec = execs_.at(id);
  EHPC_ENSURES(!exec.done);
  if (exec.completion_event != sim::kInvalidEvent) {
    sim_.cancel(exec.completion_event);
    exec.completion_event = sim::kInvalidEvent;
  }
  exec.done = true;
  exec.record.failed = failed;
  exec.record.complete_time = sim_.now();
  record_replicas(id, 0);
  on_job_completed(exec);
  auto actions = engine_->complete(id, sim_.now());
  apply_actions(actions);
  on_actions_applied();
}

void ExecHarness::record_replicas(JobId id, int replicas) {
  trace_.record("job." + std::to_string(id) + ".replicas", sim_.now(),
                static_cast<double>(replicas));
}

void ExecHarness::record_engine_usage() {
  const int used = engine_->used_slots();
  collector_->record_usage(sim_.now(), used);
  trace_.record("util", sim_.now(),
                static_cast<double>(used) / static_cast<double>(total_slots_));
}

// ---- fault injection ----

void ExecHarness::set_fault_plan(FaultPlan plan) {
  EHPC_EXPECTS(!used_);  // install before run()
  plan.validate();
  fault_plan_ = std::move(plan);
}

void ExecHarness::schedule_faults() {
  const FaultPlan& plan = fault_plan_;
  if (plan.empty()) return;
  for (double t : plan.crash_times) {
    sim_.schedule_at(t, [this] { inject_crash(); });
  }
  for (double t : plan.evict_times) {
    sim_.schedule_at(t, [this] { inject_evict(); });
  }
  if (plan.straggler_at_s >= 0.0) {
    sim_.schedule_at(plan.straggler_at_s, [this] { inject_straggler(); });
  }
  if (plan.crash_mtbf_s > 0.0) {
    sim_.schedule_at(plan.crash_mtbf_s, [this] { crash_chain(); });
  }
  if (plan.checkpoint_period_s > 0.0) {
    sim_.schedule_at(plan.checkpoint_period_s, [this] { checkpoint_tick(); });
  }
}

JobExec* ExecHarness::pick_victim() {
  // Deterministic: widest running job, ties broken by lowest id (execs_ is
  // an ordered map, so iteration order is the id order).
  JobExec* victim = nullptr;
  for (auto& [id, exec] : execs_) {
    if (!exec.started || exec.done) continue;
    if (victim == nullptr || exec.replicas > victim->replicas) victim = &exec;
  }
  return victim;
}

bool ExecHarness::any_job_unfinished() const {
  for (const auto& [id, exec] : execs_) {
    if (!exec.done) return true;
  }
  return false;
}

void ExecHarness::inject_crash() {
  JobExec* victim = pick_victim();
  if (victim == nullptr) return;
  collector_->record_crash();
  apply_fault(*victim, /*is_crash=*/true);
}

void ExecHarness::crash_chain() {
  // Deterministic MTBF chain: one crash per period, re-armed only while
  // work remains so the chain terminates with the run instead of needing
  // an end-time estimate up front.
  inject_crash();
  if (any_job_unfinished()) {
    sim_.schedule_at(sim_.now() + fault_plan_.crash_mtbf_s,
                     [this] { crash_chain(); });
  }
}

void ExecHarness::inject_evict() {
  JobExec* victim = pick_victim();
  if (victim == nullptr) return;
  collector_->record_eviction();
  apply_fault(*victim, /*is_crash=*/false);
}

void ExecHarness::apply_fault(JobExec& exec, bool is_crash) {
  const JobId id = exec.record.id;
  const double now = sim_.now();
  // Fold in progress at the pre-failure rate, then roll back to the last
  // checkpoint. For a job paused by an in-flight rescale the pause stacks,
  // exactly like a second rescale would.
  exec.accrue_until(now);
  const double lost_steps = exec.ckpt_remaining_steps - exec.remaining_steps;
  EHPC_ENSURES(lost_steps >= 0.0);
  exec.record.lost_work_s += lost_steps * exec.step_time();
  exec.remaining_steps = exec.ckpt_remaining_steps;

  if (is_crash) {
    ++exec.failed_nodes;
    if (fault_plan_.max_failed_nodes >= 0 &&
        exec.failed_nodes > fault_plan_.max_failed_nodes) {
      // prun-style failure budget exhausted: the job is failed for good;
      // its slots go back to the scheduler.
      EHPC_INFO("schedsim", "job %d exceeded max_failed_nodes=%d, failing",
                id, fault_plan_.max_failed_nodes);
      finish_job(id, /*failed=*/true);
      return;
    }
  }

  // Downtime: detection (crashes only; an eviction is reported
  // synchronously), process restart, and a state restore from disk rather
  // than /dev/shm.
  const auto& rescale = exec.workload.rescale;
  const double downtime =
      (is_crash ? fault_plan_.detection_s : 0.0) +
      rescale.restart_s(exec.replicas) +
      rescale.restore_s(exec.replicas, exec.replicas) * fault_plan_.disk_factor;
  exec.record.recovery_s += downtime;
  exec.accrue_from = std::max(exec.accrue_from, now) + downtime;
  schedule_completion(id);
  EHPC_DEBUG("schedsim", "%s hit job %d at t=%.1f: %.1f steps lost, %.2fs down",
             is_crash ? "crash" : "eviction", id, now, lost_steps, downtime);
}

void ExecHarness::inject_straggler() {
  JobExec* victim = pick_victim();
  if (victim == nullptr) return;
  // Progress so far accrued at full speed; from now on the slow PE drags
  // every step until a rescale replaces the process.
  victim->accrue_until(sim_.now());
  if (sim_.now() > victim->accrue_from) victim->accrue_from = sim_.now();
  victim->slowdown = fault_plan_.straggler_factor;
  schedule_completion(victim->record.id);
}

void ExecHarness::checkpoint_tick() {
  const double now = sim_.now();
  for (auto& [id, exec] : execs_) {
    if (!exec.started || exec.done) continue;
    // A job paused by a rescale or recovery cannot reach a checkpoint
    // boundary this tick; it keeps its previous snapshot.
    if (exec.accrue_from > now) continue;
    exec.accrue_until(now);
    exec.accrue_from = now;
    exec.ckpt_remaining_steps = exec.remaining_steps;
    // Writing the checkpoint pauses the job for its modeled checkpoint
    // stage at disk (not /dev/shm) bandwidth.
    exec.accrue_from +=
        exec.workload.rescale.checkpoint_s(exec.replicas) * fault_plan_.disk_factor;
    exec.record.recovery_s += exec.accrue_from - now;
    schedule_completion(id);
  }
  if (any_job_unfinished()) {
    sim_.schedule_at(now + fault_plan_.checkpoint_period_s,
                     [this] { checkpoint_tick(); });
  }
}

}  // namespace ehpc::schedsim
