#include "schedsim/exec.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "trace/source.hpp"

namespace ehpc::schedsim {

using elastic::Action;
using elastic::ActionType;
using elastic::JobId;

void JobExec::accrue_until(double now) {
  if (now > accrue_from) {
    remaining_steps =
        std::max(0.0, remaining_steps - (now - accrue_from) / step_time());
  }
}

double JobExec::remaining_fraction(double now) const {
  if (done || workload.total_steps <= 0.0) return 0.0;
  double remaining = remaining_steps;
  if (started && now > accrue_from) {
    remaining = std::max(0.0, remaining - (now - accrue_from) / step_time());
  }
  return remaining / workload.total_steps;
}

ExecHarness::ExecHarness(
    sim::Simulation& sim, int total_slots, const elastic::PolicyConfig& policy,
    const std::map<elastic::JobClass, elastic::Workload>& workloads)
    : sim_(sim), total_slots_(total_slots), workloads_(workloads) {
  EHPC_EXPECTS(total_slots_ > 0);
  EHPC_EXPECTS(!workloads_.empty());
  engine_ = std::make_unique<elastic::PolicyEngine>(total_slots_, policy);
  // Remaining work fraction for cost/benefit-aware expansion (paper §6).
  engine_->set_progress_provider([this](JobId id) {
    return execs_.at(id).remaining_fraction(sim_.now());
  });
  collector_ = std::make_unique<elastic::MetricsCollector>(total_slots_);
}

ExecHarness::~ExecHarness() = default;

void ExecHarness::init_exec(JobExec&, const SubmittedJob&) {}

void ExecHarness::on_actions_applied() {}

void ExecHarness::on_job_completed(JobExec&) {}

void ExecHarness::set_retire_observer(RetireObserver observer) {
  retire_observer_ = std::move(observer);
}

JobExec ExecHarness::make_exec(const SubmittedJob& job) {
  auto it = workloads_.find(job.job_class);
  EHPC_EXPECTS(it != workloads_.end());
  JobExec exec;
  exec.workload = it->second;
  exec.remaining_steps = exec.workload.total_steps;
  exec.ckpt_remaining_steps = exec.workload.total_steps;
  exec.record.id = job.spec.id;
  exec.record.priority = job.spec.priority;
  exec.record.submit_time = job.submit_time;
  exec.queue_timeout_s = job.queue_timeout_s;
  exec.task_timeout_s = job.task_timeout_s;
  exec.max_failed_nodes = job.max_failed_nodes;
  init_exec(exec, job);
  return exec;
}

SimResult ExecHarness::run(const std::vector<SubmittedJob>& mix) {
  EHPC_EXPECTS(!used_);  // single-shot per harness instance
  EHPC_EXPECTS(!mix.empty());
  used_ = true;

  for (const SubmittedJob& job : mix) {
    execs_.emplace(job.spec.id, make_exec(job));
    sim_.schedule_at(job.submit_time, [this, job] { submit(job); });
  }
  schedule_faults();
  sim_.run();

  SimResult result;
  for (auto& [id, exec] : execs_) {
    EHPC_ENSURES(exec.done);  // every job must finish (or be failed)
    collector_->add_job(exec.record);
    result.jobs.push_back(exec.record);
  }
  result.metrics = collector_->compute();
  result.trace = std::move(trace_);
  result.rescale_count = rescale_count_;
  result.stream.jobs_submitted = static_cast<long>(mix.size());
  result.stream.peak_live_jobs = static_cast<long>(mix.size());
  return result;
}

SimResult ExecHarness::run_stream(trace::TraceSource& source) {
  EHPC_EXPECTS(!used_);  // single-shot per harness instance
  used_ = true;
  streaming_ = true;
  collector_->enable_streaming();
  source_ = &source;

  std::optional<SubmittedJob> first = source.next();
  EHPC_EXPECTS(first.has_value());  // an empty trace is a caller error
  stream_pending_ = true;
  const SubmittedJob job = *first;
  sim_.schedule_at(job.submit_time, [this, job] { pump_submit(job); });
  schedule_faults();
  sim_.run();

  EHPC_ENSURES(!stream_pending_);  // the whole source was consumed
  for (const auto& [id, exec] : execs_) {
    EHPC_ENSURES(exec.done);
  }
  SimResult result;
  result.metrics = collector_->compute();
  result.rescale_count = rescale_count_;
  result.stream = stream_stats_;
  result.stream.response_p50 = response_p50_.value();
  result.stream.response_p99 = response_p99_.value();
  result.stream.completion_p50 = completion_p50_.value();
  result.stream.completion_p99 = completion_p99_.value();
  return result;
}

void ExecHarness::pump_submit(const SubmittedJob& job) {
  // Trace contract: ids unique among jobs tracked simultaneously.
  EHPC_EXPECTS(execs_.count(job.spec.id) == 0);
  execs_.emplace(job.spec.id, make_exec(job));
  ++stream_stats_.jobs_submitted;
  stream_stats_.peak_live_jobs = std::max(
      stream_stats_.peak_live_jobs, static_cast<long>(execs_.size()));
  submit(job);
  std::optional<SubmittedJob> next = source_->next();
  if (next.has_value()) {
    EHPC_EXPECTS(next->submit_time >= job.submit_time);  // sorted stream
    const SubmittedJob pending = *next;
    sim_.schedule_at(pending.submit_time,
                     [this, pending] { pump_submit(pending); });
  } else {
    stream_pending_ = false;
  }
}

void ExecHarness::submit(const SubmittedJob& job) {
  collector_->note_submit(job.submit_time);
  auto actions = engine_->submit(job.spec, sim_.now());
  apply_actions(actions);
  on_actions_applied();
  JobExec& exec = execs_.at(job.spec.id);
  if (exec.queue_timeout_s >= 0.0 && !exec.done) {
    const elastic::JobState& st = engine_->job(job.spec.id);
    if (!st.running && !st.completed) {
      const JobId id = job.spec.id;
      exec.queue_timeout_event =
          sim_.schedule_at(sim_.now() + exec.queue_timeout_s,
                           [this, id] { queue_timeout(id); });
    }
  }
}

void ExecHarness::apply_actions(const std::vector<Action>& actions) {
  for (const Action& a : actions) {
    switch (a.type) {
      case ActionType::kStart: {
        JobExec& exec = execs_.at(a.job);
        // A granted start ends the abandonment window even if the
        // substrate's pods are not ready yet; cancelling here also keeps
        // stale timeout events from piling up in million-job replays.
        if (exec.queue_timeout_event != sim::kInvalidEvent) {
          sim_.cancel(exec.queue_timeout_event);
          exec.queue_timeout_event = sim::kInvalidEvent;
        }
        set_slot_count(exec, a.target_replicas);
        start_job(a.job, a.target_replicas);
        if (exec.task_timeout_s >= 0.0 && !exec.done) {
          const JobId id = a.job;
          exec.task_timeout_event =
              sim_.schedule_at(sim_.now() + exec.task_timeout_s,
                               [this, id] { task_timeout(id); });
        }
        break;
      }
      case ActionType::kShrink:
        set_slot_count(execs_.at(a.job), a.target_replicas);
        shrink_job(a.job, a.target_replicas);
        break;
      case ActionType::kExpand:
        set_slot_count(execs_.at(a.job), a.target_replicas);
        expand_job(a.job, a.target_replicas);
        break;
      case ActionType::kEnqueue:
        break;  // nothing to execute
    }
  }
}

void ExecHarness::note_rescale(elastic::JobId id) {
  ++rescale_count_;
  JobExec& exec = execs_.at(id);
  // A rescale restarts the job's processes, replacing any straggler PE.
  // Substrates call note_rescale after accruing progress at the old (slow)
  // rate, so clearing here takes effect exactly at the rescale boundary.
  exec.slowdown = 1.0;
  const auto& lb = exec.workload.lb;
  collector_->record_lb_step(lb.post_ratio, lb.migrations_per_step);
}

void ExecHarness::schedule_completion(JobId id) {
  JobExec& exec = execs_.at(id);
  if (exec.completion_event != sim::kInvalidEvent) {
    sim_.cancel(exec.completion_event);
  }
  const double finish = exec.accrue_from + exec.remaining_steps * exec.step_time();
  exec.completion_event = sim_.schedule_at(std::max(finish, sim_.now()),
                                           [this, id] { complete_job(id); });
}

void ExecHarness::complete_job(JobId id) {
  // Invoked by the (already firing) completion event; forget it before the
  // shared tail so finish_job does not cancel a spent event id.
  execs_.at(id).completion_event = sim::kInvalidEvent;
  execs_.at(id).remaining_steps = 0.0;
  finish_job(id, JobOutcome::kCompleted);
}

void ExecHarness::finish_job(JobId id, JobOutcome outcome) {
  JobExec& exec = execs_.at(id);
  EHPC_ENSURES(!exec.done);
  if (exec.completion_event != sim::kInvalidEvent) {
    sim_.cancel(exec.completion_event);
    exec.completion_event = sim::kInvalidEvent;
  }
  if (exec.task_timeout_event != sim::kInvalidEvent) {
    sim_.cancel(exec.task_timeout_event);
    exec.task_timeout_event = sim::kInvalidEvent;
  }
  if (exec.queue_timeout_event != sim::kInvalidEvent) {
    sim_.cancel(exec.queue_timeout_event);
    exec.queue_timeout_event = sim::kInvalidEvent;
  }
  exec.done = true;
  exec.record.failed = outcome == JobOutcome::kFailed;
  exec.record.timed_out = outcome == JobOutcome::kTimedOut;
  exec.record.complete_time = sim_.now();
  if (!exec.started && exec.record.start_time < exec.record.submit_time) {
    // Killed before the substrate reported it started (cluster pods still
    // pending): pin the record's start to the submit so timestamps stay
    // ordered.
    exec.record.start_time = exec.record.submit_time;
  }
  record_replicas(id, 0);
  on_job_completed(exec);
  // Free the job's slots before the engine's follow-up actions, which may
  // start queued jobs into them.
  set_slot_count(exec, 0);
  auto actions = engine_->complete(id, sim_.now());
  apply_actions(actions);
  on_actions_applied();
  retire_job(id);
}

void ExecHarness::queue_timeout(JobId id) {
  auto it = execs_.find(id);
  if (it == execs_.end()) return;
  JobExec& exec = it->second;
  exec.queue_timeout_event = sim::kInvalidEvent;
  if (exec.done) return;
  const elastic::JobState& st = engine_->job(id);
  // Engine state, not exec.started: a cluster job granted a start still has
  // started=false until its pods are ready, but it is no longer queued.
  if (st.running || st.completed) return;
  engine_->abandon(id);
  exec.done = true;
  exec.record.abandoned = true;
  exec.record.start_time = sim_.now();
  exec.record.complete_time = sim_.now();
  EHPC_DEBUG("schedsim", "job %d abandoned after %.1fs in the queue", id,
             exec.queue_timeout_s);
  retire_job(id);
}

void ExecHarness::task_timeout(JobId id) {
  auto it = execs_.find(id);
  if (it == execs_.end()) return;
  JobExec& exec = it->second;
  exec.task_timeout_event = sim::kInvalidEvent;
  if (exec.done) return;
  EHPC_DEBUG("schedsim", "job %d killed by its %.1fs task timeout", id,
             exec.task_timeout_s);
  finish_job(id, JobOutcome::kTimedOut);
}

void ExecHarness::retire_job(JobId id) {
  if (!streaming_) return;
  auto it = execs_.find(id);
  EHPC_ENSURES(it != execs_.end() && it->second.done);
  const elastic::JobRecord& record = it->second.record;
  collector_->add_job(record);
  response_p50_.add(record.response_time());
  response_p99_.add(record.response_time());
  completion_p50_.add(record.completion_time());
  completion_p99_.add(record.completion_time());
  if (retire_observer_) retire_observer_(record);
  engine_->forget(id);
  if (retire_completed_execs()) execs_.erase(it);
}

void ExecHarness::record_replicas(JobId id, int replicas) {
  if (streaming_) return;  // step traces grow with the trace length
  trace_.record("job." + std::to_string(id) + ".replicas", sim_.now(),
                static_cast<double>(replicas));
}

void ExecHarness::record_engine_usage() {
  const int used = engine_->used_slots();
  collector_->record_usage(sim_.now(), used);
  if (streaming_) return;
  trace_.record("util", sim_.now(),
                static_cast<double>(used) / static_cast<double>(total_slots_));
}

// ---- fault injection ----

void ExecHarness::set_fault_plan(FaultPlan plan) {
  EHPC_EXPECTS(!used_);  // install before run()
  // Failure traces are resolved into explicit events by the scenario layer
  // (trace::resolve_failure_trace) before a plan reaches a harness.
  EHPC_EXPECTS(plan.failure_trace_path.empty());
  plan.validate();
  if (!plan.domain_crashes.empty()) {
    int mapped = 0;
    for (int size : plan.domain_sizes) mapped += size;
    EHPC_EXPECTS(mapped <= total_slots_);  // domains partition the slots
  }
  fault_plan_ = std::move(plan);
  track_slots_ = !fault_plan_.domain_crashes.empty();
  if (track_slots_) {
    slot_owner_.assign(static_cast<size_t>(total_slots_), -1);
  }
}

void ExecHarness::schedule_faults() {
  const FaultPlan& plan = fault_plan_;
  if (plan.empty()) return;
  for (double t : plan.crash_times) {
    sim_.schedule_at(t, [this] { inject_crash(); });
  }
  // Scheduled after single-node crashes: at a shared timestamp, explicit
  // crashes fire first, then domain kills, then evictions (plan order).
  for (const DomainCrash& crash : plan.domain_crashes) {
    sim_.schedule_at(crash.time_s, [this, crash] { inject_domain_crash(crash); });
  }
  for (double t : plan.evict_times) {
    sim_.schedule_at(t, [this] { inject_evict(); });
  }
  if (plan.straggler_at_s >= 0.0) {
    sim_.schedule_at(plan.straggler_at_s, [this] { inject_straggler(); });
  }
  if (plan.crash_mtbf_s > 0.0) {
    sim_.schedule_at(plan.crash_mtbf_s, [this] { crash_chain(); });
  }
  if (plan.checkpoint_period_s > 0.0) {
    sim_.schedule_at(plan.checkpoint_period_s, [this] { checkpoint_tick(); });
  }
}

JobExec* ExecHarness::pick_victim() {
  // Deterministic: widest running job, ties broken by lowest id (execs_ is
  // an ordered map, so iteration order is the id order).
  JobExec* victim = nullptr;
  for (auto& [id, exec] : execs_) {
    if (!exec.started || exec.done) continue;
    if (victim == nullptr || exec.replicas > victim->replicas) victim = &exec;
  }
  return victim;
}

bool ExecHarness::any_job_unfinished() const {
  // A streaming source that has not been exhausted counts as unfinished
  // work: the MTBF/checkpoint chains must survive the gap between the
  // current in-flight jobs draining and the next submission arriving.
  if (stream_pending_) return true;
  for (const auto& [id, exec] : execs_) {
    if (!exec.done) return true;
  }
  return false;
}

void ExecHarness::inject_crash() {
  JobExec* victim = pick_victim();
  if (victim == nullptr) return;
  collector_->record_crash();
  apply_fault(*victim, /*is_crash=*/true);
}

void ExecHarness::crash_chain() {
  // Deterministic MTBF chain: one crash per period, re-armed only while
  // work remains so the chain terminates with the run instead of needing
  // an end-time estimate up front.
  inject_crash();
  if (any_job_unfinished()) {
    sim_.schedule_at(sim_.now() + fault_plan_.crash_mtbf_s,
                     [this] { crash_chain(); });
  }
}

void ExecHarness::inject_evict() {
  JobExec* victim = pick_victim();
  if (victim == nullptr) return;
  collector_->record_eviction();
  apply_fault(*victim, /*is_crash=*/false);
}

void ExecHarness::on_domain_crash(int, const std::vector<JobId>&) {}

void ExecHarness::set_slot_count(JobExec& exec, int target) {
  if (!track_slots_) return;
  std::vector<int>& slots = exec.slots;
  while (static_cast<int>(slots.size()) > target) {
    slot_owner_[static_cast<size_t>(slots.back())] = -1;
    slots.pop_back();
  }
  int next = 0;
  while (static_cast<int>(slots.size()) < target) {
    while (next < total_slots_ && slot_owner_[static_cast<size_t>(next)] >= 0) {
      ++next;
    }
    EHPC_ENSURES(next < total_slots_);  // the engine never oversubscribes
    slot_owner_[static_cast<size_t>(next)] = exec.record.id;
    slots.push_back(next);
  }
}

void ExecHarness::inject_domain_crash(const DomainCrash& crash) {
  int lo = 0;
  for (int d = 0; d < crash.domain; ++d) lo += fault_plan_.domain_sizes[d];
  const int hi = lo + fault_plan_.domain_sizes[crash.domain];
  // Victims: running jobs owning a slot in [lo, hi), ascending id order
  // (slots are scanned in order and ids deduplicated on insert).
  std::vector<JobId> victims;
  for (int s = lo; s < hi; ++s) {
    const JobId owner = slot_owner_[static_cast<size_t>(s)];
    if (owner < 0) continue;
    const JobExec& exec = execs_.at(owner);
    if (!exec.started || exec.done) continue;
    if (std::find(victims.begin(), victims.end(), owner) == victims.end()) {
      victims.push_back(owner);
    }
  }
  std::sort(victims.begin(), victims.end());
  if (victims.empty()) return;
  collector_->record_domain_crash();
  on_domain_crash(crash.domain, victims);
  EHPC_DEBUG("schedsim", "domain %d crash at t=%.1f takes down %zu jobs",
             crash.domain, sim_.now(), victims.size());
  for (JobId id : victims) {
    JobExec& exec = execs_.at(id);
    if (exec.done) continue;  // killed by an earlier victim's budget cascade
    collector_->record_crash();
    apply_fault(exec, /*is_crash=*/true);
  }
}

void ExecHarness::apply_fault(JobExec& exec, bool is_crash) {
  const JobId id = exec.record.id;
  const double now = sim_.now();
  // Fold in progress at the pre-failure rate, then roll back to the last
  // checkpoint. For a job paused by an in-flight rescale the pause stacks,
  // exactly like a second rescale would.
  exec.accrue_until(now);
  // A staged checkpoint whose write completed by now (inclusive: a crash at
  // exactly the completion instant reads the fresh file) is durable and
  // becomes the rollback target; one still mid-write died with the process
  // and is discarded, rolling back to the previous completed checkpoint.
  if (exec.pending_ckpt_steps >= 0.0) {
    if (now >= exec.pending_ckpt_done_s) {
      exec.ckpt_remaining_steps = exec.pending_ckpt_steps;
    }
    exec.pending_ckpt_steps = -1.0;
  }
  const double lost_steps = exec.ckpt_remaining_steps - exec.remaining_steps;
  EHPC_ENSURES(lost_steps >= 0.0);
  exec.record.lost_work_s += lost_steps * exec.step_time();
  exec.remaining_steps = exec.ckpt_remaining_steps;
  // The fault restarts every process of the job, so a straggler PE dies
  // with it; the lost work above was charged at the slowed rate, and the
  // budget-kill path below must also see a clean exec.
  exec.slowdown = 1.0;

  if (is_crash) {
    ++exec.failed_nodes;
    // A per-job budget (prun's -retries) overrides the plan-wide one.
    const int budget = exec.max_failed_nodes >= 0 ? exec.max_failed_nodes
                                                  : fault_plan_.max_failed_nodes;
    if (budget >= 0 && exec.failed_nodes > budget) {
      // prun-style failure budget exhausted: the job is failed for good;
      // its slots go back to the scheduler.
      EHPC_INFO("schedsim", "job %d exceeded max_failed_nodes=%d, failing",
                id, budget);
      finish_job(id, JobOutcome::kFailed);
      return;
    }
  }

  // Downtime: detection (crashes only; an eviction is reported
  // synchronously), process restart, and a state restore from disk rather
  // than /dev/shm.
  const auto& rescale = exec.workload.rescale;
  const double lead = (is_crash ? fault_plan_.detection_s : 0.0) +
                      rescale.restart_s(exec.replicas);
  double restore =
      rescale.restore_s(exec.replicas, exec.replicas) * fault_plan_.disk_factor;
  // Recovery-storm contention: this job's restore window opens once its
  // detection + restart lead time has elapsed; restores still in flight at
  // that instant share the disk array, stretching every newcomer by
  // concurrent / restore_bandwidth (0 = unlimited, no contention).
  const double restore_begin = std::max(exec.accrue_from, now) + lead;
  restore_ends_.erase(
      std::remove_if(restore_ends_.begin(), restore_ends_.end(),
                     [restore_begin](double end) { return end <= restore_begin; }),
      restore_ends_.end());
  const int concurrent = static_cast<int>(restore_ends_.size()) + 1;
  double storm_delay = 0.0;
  if (fault_plan_.restore_bandwidth > 0.0 &&
      static_cast<double>(concurrent) > fault_plan_.restore_bandwidth) {
    const double stretched =
        restore * static_cast<double>(concurrent) / fault_plan_.restore_bandwidth;
    storm_delay = stretched - restore;
    restore = stretched;
  }
  collector_->record_restore(concurrent, storm_delay);
  const double downtime = lead + restore;
  exec.record.recovery_s += downtime;
  exec.accrue_from = std::max(exec.accrue_from, now) + downtime;
  restore_ends_.push_back(exec.accrue_from);
  schedule_completion(id);
  EHPC_DEBUG("schedsim", "%s hit job %d at t=%.1f: %.1f steps lost, %.2fs down",
             is_crash ? "crash" : "eviction", id, now, lost_steps, downtime);
}

void ExecHarness::inject_straggler() {
  JobExec* victim = pick_victim();
  if (victim == nullptr) return;
  // Progress so far accrued at full speed; from now on the slow PE drags
  // every step until a rescale replaces the process.
  victim->accrue_until(sim_.now());
  if (sim_.now() > victim->accrue_from) victim->accrue_from = sim_.now();
  victim->slowdown = fault_plan_.straggler_factor;
  schedule_completion(victim->record.id);
}

void ExecHarness::checkpoint_tick() {
  const double now = sim_.now();
  for (auto& [id, exec] : execs_) {
    if (!exec.started || exec.done) continue;
    // A job paused by a rescale or recovery cannot reach a checkpoint
    // boundary this tick; it keeps its previous snapshot.
    if (exec.accrue_from > now) continue;
    exec.accrue_until(now);
    exec.accrue_from = now;
    // A snapshot staged by an earlier tick has finished writing by now (the
    // write pause keeps accrue_from in the future until it completes, and
    // paused jobs are skipped above): commit it as the rollback target.
    if (exec.pending_ckpt_steps >= 0.0) {
      exec.ckpt_remaining_steps = exec.pending_ckpt_steps;
    }
    // Stage this tick's snapshot; writing it pauses the job for its modeled
    // checkpoint stage at disk (not /dev/shm) bandwidth, and it only
    // becomes the rollback target once that write completes.
    exec.pending_ckpt_steps = exec.remaining_steps;
    exec.accrue_from +=
        exec.workload.rescale.checkpoint_s(exec.replicas) * fault_plan_.disk_factor;
    exec.pending_ckpt_done_s = exec.accrue_from;
    exec.record.recovery_s += exec.accrue_from - now;
    schedule_completion(id);
  }
  if (any_job_unfinished()) {
    sim_.schedule_at(now + fault_plan_.checkpoint_period_s,
                     [this] { checkpoint_tick(); });
  }
}

}  // namespace ehpc::schedsim
