#include "schedsim/exec.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace ehpc::schedsim {

using elastic::Action;
using elastic::ActionType;
using elastic::JobId;

void JobExec::accrue_until(double now) {
  if (now > accrue_from) {
    remaining_steps =
        std::max(0.0, remaining_steps - (now - accrue_from) / step_time());
  }
}

double JobExec::remaining_fraction(double now) const {
  if (done || workload.total_steps <= 0.0) return 0.0;
  double remaining = remaining_steps;
  if (started && now > accrue_from) {
    remaining = std::max(0.0, remaining - (now - accrue_from) / step_time());
  }
  return remaining / workload.total_steps;
}

ExecHarness::ExecHarness(
    sim::Simulation& sim, int total_slots, const elastic::PolicyConfig& policy,
    const std::map<elastic::JobClass, elastic::Workload>& workloads)
    : sim_(sim), total_slots_(total_slots), workloads_(workloads) {
  EHPC_EXPECTS(total_slots_ > 0);
  EHPC_EXPECTS(!workloads_.empty());
  engine_ = std::make_unique<elastic::PolicyEngine>(total_slots_, policy);
  // Remaining work fraction for cost/benefit-aware expansion (paper §6).
  engine_->set_progress_provider([this](JobId id) {
    return execs_.at(id).remaining_fraction(sim_.now());
  });
  collector_ = std::make_unique<elastic::MetricsCollector>(total_slots_);
}

ExecHarness::~ExecHarness() = default;

void ExecHarness::init_exec(JobExec&, const SubmittedJob&) {}

void ExecHarness::on_actions_applied() {}

void ExecHarness::on_job_completed(JobExec&) {}

SimResult ExecHarness::run(const std::vector<SubmittedJob>& mix) {
  EHPC_EXPECTS(!used_);  // single-shot per harness instance
  EHPC_EXPECTS(!mix.empty());
  used_ = true;

  for (const SubmittedJob& job : mix) {
    auto it = workloads_.find(job.job_class);
    EHPC_EXPECTS(it != workloads_.end());
    JobExec exec;
    exec.workload = it->second;
    exec.remaining_steps = exec.workload.total_steps;
    exec.record.id = job.spec.id;
    exec.record.priority = job.spec.priority;
    exec.record.submit_time = job.submit_time;
    init_exec(exec, job);
    execs_.emplace(job.spec.id, std::move(exec));
    sim_.schedule_at(job.submit_time, [this, job] { submit(job); });
  }
  sim_.run();

  SimResult result;
  for (auto& [id, exec] : execs_) {
    EHPC_ENSURES(exec.done);  // every job must finish
    collector_->add_job(exec.record);
    result.jobs.push_back(exec.record);
  }
  result.metrics = collector_->compute();
  result.trace = std::move(trace_);
  result.rescale_count = rescale_count_;
  return result;
}

void ExecHarness::submit(const SubmittedJob& job) {
  auto actions = engine_->submit(job.spec, sim_.now());
  apply_actions(actions);
  on_actions_applied();
}

void ExecHarness::apply_actions(const std::vector<Action>& actions) {
  for (const Action& a : actions) {
    switch (a.type) {
      case ActionType::kStart:
        start_job(a.job, a.target_replicas);
        break;
      case ActionType::kShrink:
        shrink_job(a.job, a.target_replicas);
        break;
      case ActionType::kExpand:
        expand_job(a.job, a.target_replicas);
        break;
      case ActionType::kEnqueue:
        break;  // nothing to execute
    }
  }
}

void ExecHarness::note_rescale(elastic::JobId id) {
  ++rescale_count_;
  const auto& lb = execs_.at(id).workload.lb;
  collector_->record_lb_step(lb.post_ratio, lb.migrations_per_step);
}

void ExecHarness::schedule_completion(JobId id) {
  JobExec& exec = execs_.at(id);
  if (exec.completion_event != sim::kInvalidEvent) {
    sim_.cancel(exec.completion_event);
  }
  const double finish = exec.accrue_from + exec.remaining_steps * exec.step_time();
  exec.completion_event = sim_.schedule_at(std::max(finish, sim_.now()),
                                           [this, id] { complete_job(id); });
}

void ExecHarness::complete_job(JobId id) {
  JobExec& exec = execs_.at(id);
  EHPC_ENSURES(!exec.done);
  exec.done = true;
  exec.remaining_steps = 0.0;
  exec.completion_event = sim::kInvalidEvent;
  exec.record.complete_time = sim_.now();
  record_replicas(id, 0);
  on_job_completed(exec);
  auto actions = engine_->complete(id, sim_.now());
  apply_actions(actions);
  on_actions_applied();
}

void ExecHarness::record_replicas(JobId id, int replicas) {
  trace_.record("job." + std::to_string(id) + ".replicas", sim_.now(),
                static_cast<double>(replicas));
}

void ExecHarness::record_engine_usage() {
  const int used = engine_->used_slots();
  collector_->record_usage(sim_.now(), used);
  trace_.record("util", sim_.now(),
                static_cast<double>(used) / static_cast<double>(total_slots_));
}

}  // namespace ehpc::schedsim
