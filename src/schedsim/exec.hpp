#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "elastic/metrics.hpp"
#include "elastic/policy.hpp"
#include "elastic/workload.hpp"
#include "schedsim/fault.hpp"
#include "schedsim/jobmix.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace ehpc::trace {
class TraceSource;
}

namespace ehpc::schedsim {

/// Compact summary of a streaming replay: counters plus online (P²)
/// percentiles maintained as jobs retire, since per-job records are not
/// retained. All zero for batch `run()`.
struct StreamStats {
  long jobs_submitted = 0;
  /// High-water mark of simultaneously tracked JobExec entries — the
  /// bounded-memory claim of streaming replay is `peak_live_jobs` staying
  /// proportional to in-flight jobs, independent of trace length.
  long peak_live_jobs = 0;
  double response_p50 = 0.0;
  double response_p99 = 0.0;
  double completion_p50 = 0.0;
  double completion_p99 = 0.0;
};

/// Output of one experiment run, produced identically by both substrates
/// (the pure performance simulator and the Kubernetes emulation) so their
/// metrics are directly comparable.
struct SimResult {
  elastic::RunMetrics metrics;
  /// Per-job records; empty after `run_stream` (jobs retire to summaries).
  std::vector<elastic::JobRecord> jobs;
  /// Step traces: "util" (used slots / total) and "job.<id>.replicas".
  /// Empty after `run_stream` — step traces grow with the trace length.
  sim::TraceRecorder trace;
  int rescale_count = 0;  ///< shrink+expand operations executed
  StreamStats stream;
};

/// Per-job execution bookkeeping shared by every experiment substrate: the
/// workload model, progress accounting in virtual time, and the lifecycle
/// record. Replaces the formerly duplicated `Exec` structs of
/// `SchedSimulator` and `ClusterExperiment`.
struct JobExec {
  elastic::Workload workload;
  std::string job_name;  ///< CharmJob CR name on the cluster substrate
  double remaining_steps = 0.0;
  int replicas = 0;  ///< replicas progress accrues at; 0 before start
  /// Virtual time from which progress accrues at the current rate; during a
  /// rescale pause this sits in the future.
  double accrue_from = 0.0;
  sim::EventId completion_event = sim::kInvalidEvent;
  elastic::JobRecord record;
  bool started = false;
  bool done = false;

  // ---- prun-style per-job limits (negative = unset; see SubmittedJob) ----
  double queue_timeout_s = -1.0;
  double task_timeout_s = -1.0;
  /// Per-job crash budget; falls back to `FaultPlan::max_failed_nodes`.
  int max_failed_nodes = -1;
  sim::EventId queue_timeout_event = sim::kInvalidEvent;
  sim::EventId task_timeout_event = sim::kInvalidEvent;

  // ---- fault state (driven by the harness's FaultPlan) ----
  /// Step-time multiplier while a straggler PE drags the job (1 = none);
  /// cleared by the next rescale, which replaces the slow process.
  double slowdown = 1.0;
  /// Node crashes absorbed so far, charged against the failure budget.
  int failed_nodes = 0;
  /// `remaining_steps` snapshot at the last *completed* disk checkpoint; a
  /// failure rolls the job back to this (the initial snapshot is the full
  /// job: without checkpoints a failure restarts from scratch).
  double ckpt_remaining_steps = 0.0;
  /// Snapshot staged by an in-flight checkpoint write (-1 = none). It
  /// becomes the rollback target only once the write completes at
  /// `pending_ckpt_done_s`: a fault strictly inside the write window
  /// discards it (the half-written file died with the process), while a
  /// fault at exactly the completion instant keeps it (inclusive).
  double pending_ckpt_steps = -1.0;
  double pending_ckpt_done_s = 0.0;
  /// Slots (PEs) this job occupies in the harness's deterministic slot
  /// model; maintained only when the plan defines failure domains.
  std::vector<int> slots;

  /// Seconds per step at the current replica count (and straggler state).
  double step_time() const {
    return workload.time_per_step.at_clamped(static_cast<double>(replicas)) *
           slowdown;
  }

  /// Fold progress accrued up to `now` into `remaining_steps`. Must be
  /// called before `replicas` changes, since the rate is the current one.
  void accrue_until(double now);

  /// Fraction of work still remaining as of `now` (1 = just started,
  /// 0 = done), without mutating state. Feeds the policy engine's
  /// cost/benefit-aware expansion hook.
  double remaining_fraction(double now) const;
};

/// Substrate-agnostic experiment harness: owns the PolicyEngine, the shared
/// per-job `JobExec` table, metrics collection and tracing, and drives one
/// job mix to completion over a virtual-time Simulation. Substrates
/// specialise only how policy actions are *realised* (instantly in the pure
/// simulator; through the operator's pod/handshake machinery on the
/// Kubernetes substrate) by overriding the protected hooks.
///
/// Two drive modes, single-shot either way (one run per harness instance):
///  - `run(mix)`: materialized job list; retains per-job records and step
///    traces in the result.
///  - `run_stream(source)`: pulls submissions one at a time from a
///    TraceSource (at most one pending submission event at any moment) and
///    retires each finished job to O(1) summaries, so arbitrarily long
///    traces replay in memory proportional to in-flight jobs.
class ExecHarness {
 public:
  /// `workloads` is borrowed and must outlive the harness (both substrate
  /// shells keep it as a member).
  ExecHarness(sim::Simulation& sim, int total_slots,
              const elastic::PolicyConfig& policy,
              const std::map<elastic::JobClass, elastic::Workload>& workloads);
  virtual ~ExecHarness();

  ExecHarness(const ExecHarness&) = delete;
  ExecHarness& operator=(const ExecHarness&) = delete;

  /// Execute one job mix to completion and collect metrics/traces.
  SimResult run(const std::vector<SubmittedJob>& mix);

  /// Execute a streaming trace to completion in bounded memory. The source
  /// must yield at least one job; submissions are pulled lazily in
  /// submit-time order.
  SimResult run_stream(trace::TraceSource& source);

  /// Install a failure-injection plan. Must be called before `run()`; the
  /// plan's events are scheduled alongside the mix's submissions, so both
  /// substrates execute an identical fault sequence.
  void set_fault_plan(FaultPlan plan);
  const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Observer invoked with each retired job's record during `run_stream`
  /// (records are otherwise dropped after folding into summaries). Lets
  /// benchmarks/tests compare online percentiles against exact ones without
  /// the harness retaining anything.
  using RetireObserver = std::function<void(const elastic::JobRecord&)>;
  void set_retire_observer(RetireObserver observer);

  elastic::PolicyEngine& engine() { return *engine_; }
  elastic::MetricsCollector& collector() { return *collector_; }
  int total_slots() const { return total_slots_; }

 protected:
  // ---- substrate hooks ----
  /// Launch a queued job with `replicas` workers.
  virtual void start_job(elastic::JobId id, int replicas) = 0;
  /// Rescale a running job down to `target` replicas.
  virtual void shrink_job(elastic::JobId id, int target) = 0;
  /// Rescale a running job up to `target` replicas.
  virtual void expand_job(elastic::JobId id, int target) = 0;
  /// Populate substrate-specific JobExec fields (e.g. the CR name).
  virtual void init_exec(JobExec& exec, const SubmittedJob& job);
  /// Called whenever a batch of policy actions has been applied (after each
  /// submit and completion). The pure simulator records the engine's
  /// utilization view here; the cluster substrate records physical pod
  /// usage through its own watch instead.
  virtual void on_actions_applied();
  /// Called when a started job finishes (completes, fails, or times out),
  /// after its record/trace updates but before the policy engine reacts.
  /// Not called for jobs abandoned in the queue — they never reached the
  /// substrate.
  virtual void on_job_completed(JobExec& exec);
  /// Whether streaming replay may erase a finished job's JobExec when it
  /// retires. The pure simulator says yes (this is what bounds memory); the
  /// cluster substrate says no, because its staged rescale callbacks may
  /// still dereference the exec after completion.
  virtual bool retire_completed_execs() const { return true; }
  /// Called when a correlated domain crash is about to fault `victims`
  /// (running jobs with a worker in `domain`, ascending id order), before
  /// any of them is rolled back. The cluster substrate kills the victims'
  /// worker pods through the k8s store here so the indexed views and
  /// batched watchers observe the burst of deletions.
  virtual void on_domain_crash(int domain,
                               const std::vector<elastic::JobId>& victims);

  // ---- shared machinery available to substrates ----
  void apply_actions(const std::vector<elastic::Action>& actions);
  /// (Re)schedule the completion event from remaining work and pause state.
  void schedule_completion(elastic::JobId id);
  void complete_job(elastic::JobId id);
  /// Append to the "job.<id>.replicas" step trace at the current time.
  /// No-op while streaming (step traces grow with trace length).
  void record_replicas(elastic::JobId id, int replicas);
  /// Record the policy engine's used-slot count into metrics + "util" trace
  /// (the trace write is skipped while streaming).
  void record_engine_usage();
  /// Count a *realized* rescale of job `id` and record the runtime LB step
  /// it implies (the job's calibrated imbalance profile) — call from the
  /// substrate at the point the rescale actually executes, so decisions a
  /// substrate drops or supersedes (e.g. superseded pre-start rescales on
  /// the cluster) are not counted.
  void note_rescale(elastic::JobId id);

  sim::Simulation& sim() { return sim_; }
  JobExec& exec(elastic::JobId id) { return execs_.at(id); }
  std::map<elastic::JobId, JobExec>& execs() { return execs_; }
  sim::TraceRecorder& trace() { return trace_; }
  /// True inside `run_stream` — substrates gate their own O(events) trace
  /// recording on this.
  bool streaming() const { return streaming_; }

 private:
  /// Build the JobExec for one submission (shared by both drive modes).
  JobExec make_exec(const SubmittedJob& job);
  void submit(const SubmittedJob& job);
  /// Streaming pump: admit `job` now, then pull and schedule the next
  /// submission — at most one submission event is pending at any time.
  void pump_submit(const SubmittedJob& job);
  /// How a job's execution ended; drives the record flags in finish_job.
  enum class JobOutcome { kCompleted, kFailed, kTimedOut };
  /// Shared tail of completion, budget-kill and task timeout: cancel
  /// pending work, stamp the record, notify the substrate, release the
  /// job's slots.
  void finish_job(elastic::JobId id, JobOutcome outcome);
  /// Queue-timeout event: abandon the job iff the engine still has it
  /// queued. The guard checks engine state, not `exec.started` — on the
  /// cluster substrate a job granted a start stays `started=false` until
  /// its pods are ready, but it is no longer abandonable.
  void queue_timeout(elastic::JobId id);
  /// Task-timeout event: kill a still-running job and charge its runtime.
  void task_timeout(elastic::JobId id);
  /// Streaming only: fold the finished job's record into the collector and
  /// online percentiles, drop its engine state, and (if the substrate
  /// allows) erase its JobExec.
  void retire_job(elastic::JobId id);

  // ---- fault injection (no-ops when the plan is empty) ----
  void schedule_faults();
  /// Resize `exec`'s slot set to `target` in the deterministic slot model:
  /// growth takes the lowest free slots, shrinking releases the
  /// highest-numbered ones. Driven by policy *actions* (not substrate
  /// completion of them), so both substrates agree on slot ownership at
  /// every virtual instant. No-op unless the plan defines domains.
  void set_slot_count(JobExec& exec, int target);
  /// Correlated event: crash every running job with a slot in the domain.
  void inject_domain_crash(const DomainCrash& crash);
  /// The widest running job (ties: lowest id); nullptr when none is running.
  JobExec* pick_victim();
  /// Roll the victim back to its last checkpoint and charge recovery
  /// downtime; a crash also counts against the failure budget and kills the
  /// job once the budget is exhausted.
  void inject_crash();
  /// MTBF chain step: crash now, re-arm while any job is unfinished.
  void crash_chain();
  void inject_evict();
  void inject_straggler();
  /// Snapshot every running job's progress and charge the checkpoint pause.
  void checkpoint_tick();
  void apply_fault(JobExec& exec, bool is_crash);
  /// True while work remains: an unfinished exec, or (streaming) a source
  /// that has not been exhausted — fault chains must survive the gap
  /// between the current in-flight jobs draining and the next submission.
  bool any_job_unfinished() const;

  sim::Simulation& sim_;
  int total_slots_;
  const std::map<elastic::JobClass, elastic::Workload>& workloads_;
  std::unique_ptr<elastic::PolicyEngine> engine_;
  std::map<elastic::JobId, JobExec> execs_;
  std::unique_ptr<elastic::MetricsCollector> collector_;
  sim::TraceRecorder trace_;
  int rescale_count_ = 0;
  bool used_ = false;
  FaultPlan fault_plan_;
  /// Slot → owning job id (-1 = free); sized and maintained only when the
  /// plan defines failure domains (`track_slots_`).
  std::vector<elastic::JobId> slot_owner_;
  bool track_slots_ = false;
  /// End times of restores currently in flight (recovery-storm model);
  /// entries ending before a new restore begins are pruned as it starts.
  std::vector<double> restore_ends_;

  // ---- streaming state ----
  bool streaming_ = false;
  trace::TraceSource* source_ = nullptr;
  /// True until the source returns nullopt.
  bool stream_pending_ = false;
  StreamStats stream_stats_;
  P2Quantile response_p50_{0.5};
  P2Quantile response_p99_{0.99};
  P2Quantile completion_p50_{0.5};
  P2Quantile completion_p99_{0.99};
  RetireObserver retire_observer_;
};

}  // namespace ehpc::schedsim
