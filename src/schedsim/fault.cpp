#include "schedsim/fault.hpp"

#include "common/error.hpp"

namespace ehpc::schedsim {

bool FaultPlan::empty() const {
  return crash_times.empty() && crash_mtbf_s <= 0.0 && evict_times.empty() &&
         straggler_at_s < 0.0 && checkpoint_period_s <= 0.0 &&
         domain_crashes.empty() && failure_trace_path.empty();
}

void FaultPlan::validate() const {
  for (double t : crash_times) EHPC_EXPECTS(t >= 0.0);
  for (double t : evict_times) EHPC_EXPECTS(t >= 0.0);
  EHPC_EXPECTS(crash_mtbf_s >= 0.0);
  EHPC_EXPECTS(checkpoint_period_s >= 0.0);
  EHPC_EXPECTS(detection_s >= 0.0);
  EHPC_EXPECTS(disk_factor > 0.0);
  EHPC_EXPECTS(restore_bandwidth >= 0.0);
  if (straggler_at_s >= 0.0) EHPC_EXPECTS(straggler_factor >= 1.0);
  for (int size : domain_sizes) EHPC_EXPECTS(size > 0);
  for (const DomainCrash& dc : domain_crashes) {
    EHPC_EXPECTS(!domain_sizes.empty());  // crashes need a domain map
    EHPC_EXPECTS(dc.time_s >= 0.0);
    EHPC_EXPECTS(dc.domain >= 0 &&
                 dc.domain < static_cast<int>(domain_sizes.size()));
  }
}

}  // namespace ehpc::schedsim
