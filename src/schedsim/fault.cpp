#include "schedsim/fault.hpp"

#include "common/error.hpp"

namespace ehpc::schedsim {

bool FaultPlan::empty() const {
  return crash_times.empty() && crash_mtbf_s <= 0.0 && evict_times.empty() &&
         straggler_at_s < 0.0 && checkpoint_period_s <= 0.0;
}

void FaultPlan::validate() const {
  for (double t : crash_times) EHPC_EXPECTS(t >= 0.0);
  for (double t : evict_times) EHPC_EXPECTS(t >= 0.0);
  EHPC_EXPECTS(crash_mtbf_s >= 0.0);
  EHPC_EXPECTS(checkpoint_period_s >= 0.0);
  EHPC_EXPECTS(detection_s >= 0.0);
  EHPC_EXPECTS(disk_factor > 0.0);
  if (straggler_at_s >= 0.0) EHPC_EXPECTS(straggler_factor >= 1.0);
}

}  // namespace ehpc::schedsim
