#pragma once

#include <string>
#include <vector>

namespace ehpc::schedsim {

/// One correlated failure: every slot (PE) of failure domain `domain` dies
/// at virtual time `time_s`, crashing all jobs with a worker in the domain
/// atomically at that instant.
struct DomainCrash {
  double time_s = 0.0;
  int domain = 0;
};

/// Deterministic failure-injection plan, executed identically by both
/// substrates through the shared `ExecHarness`: the pure performance
/// simulator and the Kubernetes emulation see the same crashes, evictions
/// and stragglers at the same virtual times, so policies can be compared
/// under failure the way the paper compares them under load.
///
/// Everything is deterministic by construction — crash times are explicit
/// or derived from a fixed MTBF chain (one crash every `crash_mtbf_s`
/// seconds), never drawn from a clock or RNG — which keeps threads=N sweep
/// results bit-identical to threads=1.
struct FaultPlan {
  /// Node crashes at these absolute virtual times. Each crash hits the
  /// widest running job (ties broken by lowest job id), rolls it back to
  /// its last checkpoint, and charges detection + restart + disk-restore
  /// downtime. Multiple crashes at the *same* timestamp are applied in plan
  /// order and each re-picks its victim under that rule; since a rollback
  /// does not change a job's width, same-instant crashes land on the same
  /// widest job — deterministically, on both substrates.
  std::vector<double> crash_times;

  /// Failure-domain map: slot (PE) space is partitioned into consecutive
  /// groups — domain d covers `domain_sizes[d]` slots starting where domain
  /// d-1 ended (a rack/zone of `domain_sizes[d] / cpus_per_node` nodes on
  /// the cluster substrate). Empty = no domains defined.
  std::vector<int> domain_sizes;

  /// Correlated crash events: at each entry's time every slot of its domain
  /// dies at once. Every job with a worker in the domain takes a node crash
  /// (rollback + detection + restart + disk restore, charged against the
  /// failure budget); victims are the affected jobs in ascending id order.
  /// Requires a non-empty `domain_sizes`.
  std::vector<DomainCrash> domain_crashes;

  /// Optional CSV failure trace (see trace::CsvFailureTraceSource): loaded
  /// by the scenario backends via trace::resolve_failure_trace, which
  /// appends the trace's events to the vectors above and clears this path.
  /// The ExecHarness itself refuses plans with an unresolved path.
  std::string failure_trace_path;

  /// Deterministic crash chain: one crash every `crash_mtbf_s` seconds
  /// (starting at that time) while any job is unfinished. 0 disables.
  /// Beware pairing a chain with `checkpoint_period_s == 0`: a job that
  /// needs longer than the MTBF is rolled back to its start on every crash
  /// and never finishes (as it would in reality) — give such plans
  /// checkpoints or a `max_failed_nodes` budget so the run terminates.
  double crash_mtbf_s = 0.0;

  /// Pod evictions at these absolute virtual times: same rollback and
  /// restart as a crash but no detection delay (the kubelet reports the
  /// eviction synchronously) and no charge against the failure budget.
  std::vector<double> evict_times;

  /// At this virtual time the widest running job gains a straggler PE:
  /// its step time is multiplied by `straggler_factor` until its next
  /// rescale replaces the slow process. Negative disables.
  double straggler_at_s = -1.0;
  double straggler_factor = 1.0;

  /// Periodic disk checkpoints every `checkpoint_period_s` seconds of
  /// virtual time for every running job (0 = no checkpoints: a failure
  /// rolls the job back to the start). Each checkpoint pauses the job for
  /// its modeled checkpoint stage scaled by `disk_factor`.
  double checkpoint_period_s = 0.0;

  /// Failure-detection delay charged before a crash recovery begins.
  double detection_s = 5.0;

  /// Disk-vs-/dev/shm bandwidth ratio: disk checkpoint/restore stages cost
  /// this multiple of the in-memory rescale stages (the charm runtime's
  /// default config ratio, 4 GB/s shm over 0.2 GB/s disk).
  double disk_factor = 20.0;

  /// Recovery-storm contention: how many jobs can restore from disk at full
  /// speed concurrently. When more than this many jobs are restoring in
  /// overlapping windows, each restore in flight is stretched by
  /// `concurrent / restore_bandwidth` (the shared disk array serves them
  /// round-robin). 0 = unlimited (no contention, the pre-storm model).
  double restore_bandwidth = 0.0;

  /// prun-style per-job failure budget (maxFailedNodes): once a job has
  /// absorbed more than this many node crashes it is failed permanently —
  /// its slots are released and it never completes. Negative = unlimited.
  int max_failed_nodes = -1;

  /// True when the plan injects nothing (the default): the harness skips
  /// all fault machinery and runs exactly as before.
  bool empty() const;

  /// Throws PreconditionError on inconsistent settings (negative times,
  /// slowdown factor below 1, non-positive MTBF period...).
  void validate() const;
};

}  // namespace ehpc::schedsim
