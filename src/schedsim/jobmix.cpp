#include "schedsim/jobmix.hpp"

#include "common/error.hpp"

namespace ehpc::schedsim {

std::vector<SubmittedJob> JobMixGenerator::generate(int num_jobs,
                                                    double submission_gap) {
  EHPC_EXPECTS(num_jobs > 0);
  EHPC_EXPECTS(submission_gap >= 0.0);
  std::vector<SubmittedJob> out;
  out.reserve(static_cast<std::size_t>(num_jobs));
  for (int i = 0; i < num_jobs; ++i) {
    const auto cls = static_cast<elastic::JobClass>(rng_.uniform_int(0, 3));
    const int priority = static_cast<int>(rng_.uniform_int(1, 5));
    SubmittedJob job;
    job.spec = elastic::spec_for_class(cls, /*id=*/i, priority);
    job.job_class = cls;
    job.submit_time = submission_gap * static_cast<double>(i);
    out.push_back(job);
  }
  return out;
}

}  // namespace ehpc::schedsim
