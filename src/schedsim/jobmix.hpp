#pragma once

#include <vector>

#include "common/rng.hpp"
#include "elastic/job.hpp"
#include "elastic/workload.hpp"

namespace ehpc::schedsim {

/// One job of an experiment: its spec, size class, and submission time.
struct SubmittedJob {
  elastic::JobSpec spec;
  elastic::JobClass job_class = elastic::JobClass::kSmall;
  double submit_time = 0.0;
};

/// Generates the paper's random experiment mixes (§4.3.1): `num_jobs` jobs
/// drawn uniformly from the four size classes with priorities uniform in
/// [1, 5], submitted `submission_gap` seconds apart.
class JobMixGenerator {
 public:
  explicit JobMixGenerator(unsigned seed) : rng_(seed) {}

  std::vector<SubmittedJob> generate(int num_jobs, double submission_gap);

 private:
  Rng rng_;
};

}  // namespace ehpc::schedsim
