#pragma once

#include <vector>

#include "common/rng.hpp"
#include "elastic/job.hpp"
#include "elastic/workload.hpp"

namespace ehpc::schedsim {

/// One job of an experiment: its spec, size class, and submission time,
/// plus the prun-style per-job limits executed by the shared harness.
/// Negative limits mean "unset": no queue/runtime timeout, and the failure
/// budget falls back to the run's `FaultPlan::max_failed_nodes`.
struct SubmittedJob {
  elastic::JobSpec spec;
  elastic::JobClass job_class = elastic::JobClass::kSmall;
  double submit_time = 0.0;
  /// Seconds the job waits in the queue before abandoning it unstarted.
  double queue_timeout_s = -1.0;
  /// Seconds of runtime after which a started job is killed (and charged).
  double task_timeout_s = -1.0;
  /// Per-job crash budget overriding `FaultPlan::max_failed_nodes`.
  int max_failed_nodes = -1;
};

/// Generates the paper's random experiment mixes (§4.3.1): `num_jobs` jobs
/// drawn uniformly from the four size classes with priorities uniform in
/// [1, 5], submitted `submission_gap` seconds apart.
class JobMixGenerator {
 public:
  explicit JobMixGenerator(unsigned seed) : rng_(seed) {}

  std::vector<SubmittedJob> generate(int num_jobs, double submission_gap);

 private:
  Rng rng_;
};

}  // namespace ehpc::schedsim
