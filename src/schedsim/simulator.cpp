#include "schedsim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"

namespace ehpc::schedsim {

using elastic::Action;
using elastic::ActionType;
using elastic::JobId;

SchedSimulator::SchedSimulator(
    int total_slots, elastic::PolicyConfig policy,
    std::map<elastic::JobClass, elastic::Workload> workloads)
    : total_slots_(total_slots),
      policy_config_(policy),
      workloads_(std::move(workloads)) {
  EHPC_EXPECTS(total_slots_ > 0);
  EHPC_EXPECTS(!workloads_.empty());
}

SimResult SchedSimulator::run(const std::vector<SubmittedJob>& mix) {
  EHPC_EXPECTS(!mix.empty());
  // Fresh state per run: the simulator object is reusable.
  sim_ = std::make_unique<sim::Simulation>();
  engine_ = std::make_unique<elastic::PolicyEngine>(total_slots_, policy_config_);
  engine_->set_progress_provider([this](JobId id) {
    // Remaining work fraction for cost/benefit-aware expansion (paper §6).
    const Exec& e = execs_.at(id);
    if (e.done || e.workload.total_steps <= 0.0) return 0.0;
    double remaining = e.remaining_steps;
    const double now = sim_->now();
    if (e.started && now > e.accrue_from) {
      const double step = e.workload.time_per_step.at_clamped(
          static_cast<double>(e.replicas));
      remaining = std::max(0.0, remaining - (now - e.accrue_from) / step);
    }
    return remaining / e.workload.total_steps;
  });
  execs_.clear();
  collector_ = std::make_unique<elastic::MetricsCollector>(total_slots_);
  trace_ = sim::TraceRecorder{};
  rescale_count_ = 0;

  for (const SubmittedJob& job : mix) {
    auto it = workloads_.find(job.job_class);
    EHPC_EXPECTS(it != workloads_.end());
    Exec exec;
    exec.workload = it->second;
    exec.remaining_steps = exec.workload.total_steps;
    exec.record.id = job.spec.id;
    exec.record.priority = job.spec.priority;
    exec.record.submit_time = job.submit_time;
    execs_.emplace(job.spec.id, std::move(exec));
    sim_->schedule_at(job.submit_time, [this, job] { submit(job); });
  }
  sim_->run();

  SimResult result;
  for (auto& [id, exec] : execs_) {
    EHPC_ENSURES(exec.done);  // every job must finish
    collector_->add_job(exec.record);
    result.jobs.push_back(exec.record);
  }
  result.metrics = collector_->compute();
  result.trace = std::move(trace_);
  result.rescale_count = rescale_count_;
  return result;
}

void SchedSimulator::submit(const SubmittedJob& job) {
  auto actions = engine_->submit(job.spec, sim_->now());
  apply_actions(actions);
  record_usage();
}

void SchedSimulator::apply_actions(const std::vector<Action>& actions) {
  for (const Action& a : actions) {
    switch (a.type) {
      case ActionType::kStart:
        start_job(a.job, a.target_replicas);
        break;
      case ActionType::kShrink:
      case ActionType::kExpand:
        resize_job(a.job, a.target_replicas);
        break;
      case ActionType::kEnqueue:
        break;  // nothing to execute
    }
  }
}

void SchedSimulator::schedule_completion(JobId id) {
  Exec& exec = execs_.at(id);
  if (exec.completion_event != sim::kInvalidEvent) {
    sim_->cancel(exec.completion_event);
  }
  const double step =
      exec.workload.time_per_step.at_clamped(static_cast<double>(exec.replicas));
  const double finish = exec.accrue_from + exec.remaining_steps * step;
  exec.completion_event =
      sim_->schedule_at(std::max(finish, sim_->now()), [this, id] { complete_job(id); });
}

void SchedSimulator::start_job(JobId id, int replicas) {
  Exec& exec = execs_.at(id);
  EHPC_EXPECTS(!exec.started);
  exec.started = true;
  exec.replicas = replicas;
  exec.record.start_time = sim_->now();
  // The paper's simulator ignores pod/operator startup: progress accrues
  // immediately.
  exec.accrue_from = sim_->now();
  schedule_completion(id);
  trace_.record("job." + std::to_string(id) + ".replicas", sim_->now(),
                static_cast<double>(replicas));
}

void SchedSimulator::resize_job(JobId id, int new_replicas) {
  Exec& exec = execs_.at(id);
  EHPC_EXPECTS(exec.started && !exec.done);
  const int old_replicas = exec.replicas;
  if (new_replicas == old_replicas) return;

  const double now = sim_->now();
  const double old_step = exec.workload.time_per_step.at_clamped(
      static_cast<double>(old_replicas));
  double pause_base = now;
  if (now > exec.accrue_from) {
    // Progress accrued since the last change.
    exec.remaining_steps =
        std::max(0.0, exec.remaining_steps - (now - exec.accrue_from) / old_step);
  } else {
    // Still paused by a previous rescale: the new overhead stacks.
    pause_base = exec.accrue_from;
  }
  const double overhead =
      exec.workload.rescale.overhead_s(old_replicas, new_replicas);
  exec.replicas = new_replicas;
  exec.accrue_from = pause_base + overhead;
  ++rescale_count_;
  schedule_completion(id);
  trace_.record("job." + std::to_string(id) + ".replicas", now,
                static_cast<double>(new_replicas));
  EHPC_DEBUG("schedsim", "job %d resized %d -> %d (overhead %.2fs)", id,
             old_replicas, new_replicas, overhead);
}

void SchedSimulator::complete_job(JobId id) {
  Exec& exec = execs_.at(id);
  EHPC_ENSURES(!exec.done);
  exec.done = true;
  exec.remaining_steps = 0.0;
  exec.completion_event = sim::kInvalidEvent;
  exec.record.complete_time = sim_->now();
  trace_.record("job." + std::to_string(id) + ".replicas", sim_->now(), 0.0);
  auto actions = engine_->complete(id, sim_->now());
  apply_actions(actions);
  record_usage();
}

void SchedSimulator::record_usage() {
  const int used = engine_->used_slots();
  collector_->record_usage(sim_->now(), used);
  trace_.record("util", sim_->now(),
                static_cast<double>(used) / static_cast<double>(total_slots_));
}

}  // namespace ehpc::schedsim
