#include "schedsim/simulator.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"

namespace ehpc::schedsim {

using elastic::JobId;

namespace {

/// ExecHarness specialisation for the pure performance simulator: actions
/// take effect instantly — starts accrue progress immediately and rescales
/// pause the job only for the modeled 4-stage overhead.
class SimHarness final : public ExecHarness {
 public:
  using ExecHarness::ExecHarness;

 private:
  void start_job(JobId id, int replicas) override {
    JobExec& e = exec(id);
    EHPC_EXPECTS(!e.started);
    e.started = true;
    e.replicas = replicas;
    e.record.start_time = sim().now();
    // The paper's simulator ignores pod/operator startup: progress accrues
    // immediately.
    e.accrue_from = sim().now();
    schedule_completion(id);
    record_replicas(id, replicas);
  }

  void shrink_job(JobId id, int target) override { resize_job(id, target); }
  void expand_job(JobId id, int target) override { resize_job(id, target); }

  void on_actions_applied() override { record_engine_usage(); }

  void resize_job(JobId id, int new_replicas) {
    JobExec& e = exec(id);
    EHPC_EXPECTS(e.started && !e.done);
    const int old_replicas = e.replicas;
    if (new_replicas == old_replicas) return;

    const double now = sim().now();
    double pause_base = now;
    if (now > e.accrue_from) {
      // Progress accrued since the last change (at the old rate).
      e.accrue_until(now);
    } else {
      // Still paused by a previous rescale: the new overhead stacks.
      pause_base = e.accrue_from;
    }
    const double overhead =
        e.workload.rescale.overhead_s(old_replicas, new_replicas);
    e.replicas = new_replicas;
    e.accrue_from = pause_base + overhead;
    note_rescale(id);
    schedule_completion(id);
    record_replicas(id, new_replicas);
    EHPC_DEBUG("schedsim", "job %d resized %d -> %d (overhead %.2fs)", id,
               old_replicas, new_replicas, overhead);
  }
};

}  // namespace

SchedSimulator::SchedSimulator(
    int total_slots, elastic::PolicyConfig policy,
    std::map<elastic::JobClass, elastic::Workload> workloads)
    : total_slots_(total_slots),
      policy_config_(policy),
      workloads_(std::move(workloads)) {
  EHPC_EXPECTS(total_slots_ > 0);
  EHPC_EXPECTS(!workloads_.empty());
}

SimResult SchedSimulator::run(const std::vector<SubmittedJob>& mix) {
  // Fresh state per run: the simulator object is reusable.
  sim::Simulation sim;
  SimHarness harness(sim, total_slots_, policy_config_, workloads_);
  harness.set_fault_plan(fault_plan_);
  return harness.run(mix);
}

SimResult SchedSimulator::run_stream(trace::TraceSource& source,
                                     ExecHarness::RetireObserver observer) {
  sim::Simulation sim;
  SimHarness harness(sim, total_slots_, policy_config_, workloads_);
  harness.set_fault_plan(fault_plan_);
  if (observer) harness.set_retire_observer(std::move(observer));
  return harness.run_stream(source);
}

}  // namespace ehpc::schedsim
