#pragma once

#include <map>
#include <vector>

#include "elastic/policy.hpp"
#include "elastic/workload.hpp"
#include "schedsim/exec.hpp"
#include "schedsim/fault.hpp"
#include "schedsim/jobmix.hpp"

namespace ehpc::schedsim {

/// The paper's scheduler-performance simulator (artifact A2 equivalent,
/// §4.3.1): jobs are modeled by their piecewise-linear step-time curves and
/// the 4-stage rescale overhead model; operator and pod startup overheads
/// are deliberately ignored ("We do not consider the overhead added by the
/// operator or by Kubernetes to start up the pods"). Scheduling decisions
/// come from the shared PolicyEngine, so the simulator and the Kubernetes
/// substrate exercise identical policy code.
///
/// A thin shell over the shared `ExecHarness` bookkeeping: every `run()`
/// spins up a fresh virtual-time simulation, so the object is reusable.
class SchedSimulator {
 public:
  SchedSimulator(int total_slots, elastic::PolicyConfig policy,
                 std::map<elastic::JobClass, elastic::Workload> workloads);

  /// Simulate one job mix to completion.
  SimResult run(const std::vector<SubmittedJob>& mix);

  /// Replay a streaming trace to completion in memory proportional to
  /// in-flight jobs (see ExecHarness::run_stream). `observer`, if set, sees
  /// each job's record as it retires.
  SimResult run_stream(trace::TraceSource& source,
                       ExecHarness::RetireObserver observer = nullptr);

  /// Failure-injection plan applied to every subsequent `run()`.
  void set_fault_plan(FaultPlan plan) { fault_plan_ = std::move(plan); }

 private:
  int total_slots_;
  elastic::PolicyConfig policy_config_;
  std::map<elastic::JobClass, elastic::Workload> workloads_;
  FaultPlan fault_plan_;
};

}  // namespace ehpc::schedsim
