#pragma once

#include <map>
#include <memory>
#include <vector>

#include "elastic/metrics.hpp"
#include "elastic/policy.hpp"
#include "elastic/workload.hpp"
#include "schedsim/jobmix.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace ehpc::schedsim {

/// Output of one simulated experiment run.
struct SimResult {
  elastic::RunMetrics metrics;
  std::vector<elastic::JobRecord> jobs;
  /// Step traces: "util" (used slots / total) and "job.<id>.replicas".
  sim::TraceRecorder trace;
  int rescale_count = 0;  ///< shrink+expand operations executed
};

/// The paper's scheduler-performance simulator (artifact A2 equivalent,
/// §4.3.1): jobs are modeled by their piecewise-linear step-time curves and
/// the 4-stage rescale overhead model; operator and pod startup overheads
/// are deliberately ignored ("We do not consider the overhead added by the
/// operator or by Kubernetes to start up the pods"). Scheduling decisions
/// come from the shared PolicyEngine, so the simulator and the Kubernetes
/// substrate exercise identical policy code.
class SchedSimulator {
 public:
  SchedSimulator(int total_slots, elastic::PolicyConfig policy,
                 std::map<elastic::JobClass, elastic::Workload> workloads);

  /// Simulate one job mix to completion.
  SimResult run(const std::vector<SubmittedJob>& mix);

 private:
  struct Exec {
    elastic::Workload workload;
    double remaining_steps = 0.0;
    int replicas = 0;
    /// Virtual time from which progress accrues at the current rate; during
    /// a rescale pause this sits in the future.
    double accrue_from = 0.0;
    sim::EventId completion_event = sim::kInvalidEvent;
    elastic::JobRecord record;
    bool started = false;
    bool done = false;
  };

  void submit(const SubmittedJob& job);
  void apply_actions(const std::vector<elastic::Action>& actions);
  void start_job(elastic::JobId id, int replicas);
  void resize_job(elastic::JobId id, int new_replicas);
  void complete_job(elastic::JobId id);
  void schedule_completion(elastic::JobId id);
  void record_usage();

  int total_slots_;
  elastic::PolicyConfig policy_config_;
  std::map<elastic::JobClass, elastic::Workload> workloads_;

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<elastic::PolicyEngine> engine_;
  std::map<elastic::JobId, Exec> execs_;
  std::unique_ptr<elastic::MetricsCollector> collector_;
  sim::TraceRecorder trace_;
  int rescale_count_ = 0;
};

}  // namespace ehpc::schedsim
