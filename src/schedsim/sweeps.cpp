#include "schedsim/sweeps.hpp"

#include "common/error.hpp"
#include "schedsim/calibrate.hpp"

namespace ehpc::schedsim {

using elastic::PolicyMode;

namespace {

const std::vector<PolicyMode> kAllModes{
    PolicyMode::kRigidMin, PolicyMode::kRigidMax, PolicyMode::kMoldable,
    PolicyMode::kElastic};

std::map<elastic::JobClass, elastic::Workload> workloads_for(
    const ExperimentParams& params) {
  return params.calibrated ? calibrated_workloads() : analytic_workloads();
}

PolicyMetrics compare_with_workloads(
    const ExperimentParams& params,
    const std::map<elastic::JobClass, elastic::Workload>& workloads) {
  std::map<PolicyMode, std::vector<elastic::RunMetrics>> runs;
  for (int rep = 0; rep < params.repeats; ++rep) {
    JobMixGenerator gen(params.seed + static_cast<unsigned>(rep));
    const auto mix = gen.generate(params.num_jobs, params.submission_gap_s);
    for (PolicyMode mode : kAllModes) {
      elastic::PolicyConfig cfg;
      cfg.mode = mode;
      cfg.rescale_gap_s = params.rescale_gap_s;
      SchedSimulator sim(params.total_slots, cfg, workloads);
      runs[mode].push_back(sim.run(mix).metrics);
    }
  }
  PolicyMetrics out;
  for (PolicyMode mode : kAllModes) {
    out.emplace(mode, elastic::average_metrics(runs.at(mode)));
  }
  return out;
}

}  // namespace

PolicyMetrics compare_policies(const ExperimentParams& params) {
  return compare_with_workloads(params, workloads_for(params));
}

std::vector<SweepPoint> sweep_submission_gap(const ExperimentParams& params,
                                             const std::vector<double>& gaps) {
  EHPC_EXPECTS(!gaps.empty());
  const auto workloads = workloads_for(params);
  std::vector<SweepPoint> out;
  for (double gap : gaps) {
    ExperimentParams p = params;
    p.submission_gap_s = gap;
    out.push_back(SweepPoint{gap, compare_with_workloads(p, workloads)});
  }
  return out;
}

std::vector<SweepPoint> sweep_rescale_gap(const ExperimentParams& params,
                                          const std::vector<double>& gaps) {
  EHPC_EXPECTS(!gaps.empty());
  const auto workloads = workloads_for(params);
  std::vector<SweepPoint> out;
  for (double gap : gaps) {
    ExperimentParams p = params;
    p.rescale_gap_s = gap;
    out.push_back(SweepPoint{gap, compare_with_workloads(p, workloads)});
  }
  return out;
}

SimResult run_single(const ExperimentParams& params, PolicyMode mode,
                     unsigned mix_seed) {
  const auto workloads = workloads_for(params);
  JobMixGenerator gen(mix_seed);
  const auto mix = gen.generate(params.num_jobs, params.submission_gap_s);
  elastic::PolicyConfig cfg;
  cfg.mode = mode;
  cfg.rescale_gap_s = params.rescale_gap_s;
  SchedSimulator sim(params.total_slots, cfg, workloads);
  return sim.run(mix);
}

}  // namespace ehpc::schedsim
