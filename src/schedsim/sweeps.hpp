#pragma once

#include <map>
#include <vector>

#include "elastic/metrics.hpp"
#include "elastic/policy.hpp"
#include "schedsim/simulator.hpp"

namespace ehpc::schedsim {

/// Parameters shared by the paper's simulation experiments (§4.3.1).
struct ExperimentParams {
  int total_slots = 64;     ///< 4 nodes × 16 vCPUs
  int num_jobs = 16;
  double submission_gap_s = 90.0;
  double rescale_gap_s = 180.0;
  int repeats = 100;        ///< random mixes averaged per data point
  unsigned seed = 2025;
  bool calibrated = true;   ///< measure step-time curves from minicharm
};

/// Metrics of all four policies on one shared set of random mixes.
using PolicyMetrics = std::map<elastic::PolicyMode, elastic::RunMetrics>;

/// Run every policy over `repeats` random mixes (each mix shared across
/// policies) and average the metrics.
PolicyMetrics compare_policies(const ExperimentParams& params);

/// One point of a sweep.
struct SweepPoint {
  double x = 0.0;  ///< the swept parameter value
  PolicyMetrics metrics;
};

/// Paper Fig. 7: vary the gap between consecutive submissions.
std::vector<SweepPoint> sweep_submission_gap(const ExperimentParams& params,
                                             const std::vector<double>& gaps);

/// Paper Fig. 8: vary T_rescale_gap at a fixed submission gap.
std::vector<SweepPoint> sweep_rescale_gap(const ExperimentParams& params,
                                          const std::vector<double>& gaps);

/// One full run of a single policy on a single deterministic mix, returning
/// traces for Fig. 9-style plots (utilization profile, per-job replicas).
SimResult run_single(const ExperimentParams& params, elastic::PolicyMode mode,
                     unsigned mix_seed);

}  // namespace ehpc::schedsim
