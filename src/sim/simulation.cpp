#include "sim/simulation.hpp"

#include <algorithm>
#include <utility>

namespace ehpc::sim {

std::uint32_t Simulation::acquire_slot(Callback&& fn) {
  std::uint32_t idx;
  if (free_head_ != kNoSlot) {
    idx = free_head_;
    free_head_ = slot(idx).next_free;
  } else {
    idx = slot_high_water_++;
    EHPC_ENSURES(idx != kNoSlot);
    if ((idx >> kChunkShift) == chunks_.size()) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
  }
  Slot& cell = slot(idx);
  cell.fn = std::move(fn);
  cell.armed = true;
  return idx;
}

void Simulation::release_slot(std::uint32_t idx) {
  Slot& cell = slot(idx);
  cell.fn = nullptr;
  cell.armed = false;
  ++cell.gen;  // retires the EventId and tombstones any queued Item
  cell.next_free = free_head_;
  free_head_ = idx;
  --live_;
}

EventId Simulation::schedule_at(Time at, Callback fn) {
  EHPC_EXPECTS(at >= now_);
  EHPC_EXPECTS(fn != nullptr);
  const std::uint32_t idx = acquire_slot(std::move(fn));
  const std::uint32_t gen = slot(idx).gen;
  const Item item{at, next_seq_++, idx, gen};
  if (at == now_) {
    // Same-timestamp chain. Any heap/run entry with this timestamp was
    // scheduled before the clock reached it, so it has a smaller seq and
    // still runs first (next_live compares seq).
    bucket_.push_back(item);
  } else if (run_head_ == run_.size() || at >= run_.back().time) {
    // In-order arrival (the dominant pattern): O(1) append keeps the run
    // sorted because seq grows monotonically.
    if (run_.capacity() == run_.size()) {
      run_.reserve(std::max<std::size_t>(4 * kChunkSize, 2 * run_.size()));
    }
    run_.push_back(item);
  } else {
    heap_push(item);
  }
  ++live_;
  return make_id(idx, gen);
}

EventId Simulation::schedule_after(Time delay, Callback fn) {
  EHPC_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventId id) {
  const auto low = static_cast<std::uint32_t>(id);
  if (low == 0) return false;
  const std::uint32_t idx = low - 1;
  if (idx >= slot_high_water_) return false;
  Slot& cell = slot(idx);
  if (!cell.armed || cell.gen != static_cast<std::uint32_t>(id >> 32)) {
    return false;
  }
  // The queued Item stays behind as a tombstone; compaction keeps the
  // tombstone population below the live one.
  release_slot(idx);
  maybe_compact();
  return true;
}

void Simulation::heap_push(const Item& it) {
  heap_.push_back(it);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulation::heap_pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Simulation::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    if (l < n && before(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && before(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

// Slow path of the consumed-prefix reclamation (see next_live): erase the
// dead prefix once it reaches half the vector. Amortized O(1) per event.
void Simulation::erase_prefix(std::vector<Item>& lane, std::size_t& head) {
  lane.erase(lane.begin(), lane.begin() + static_cast<std::ptrdiff_t>(head));
  head = 0;
}

bool Simulation::next_live(Item& out, Lane& lane) {
  while (bucket_head_ < bucket_.size() && !item_live(bucket_[bucket_head_])) {
    ++bucket_head_;
  }
  // Reclaim each lane's consumed prefix. Waiting only for a full drain is
  // not enough: a simulation that always has at least one pending event (a
  // self-rescheduling chain — the dominant pattern) would otherwise accrete
  // one dead Item per event forever.
  if (bucket_head_ == bucket_.size()) {
    if (!bucket_.empty()) {
      bucket_.clear();
      bucket_head_ = 0;
    }
  } else if (bucket_head_ >= kPrefixReclaimMin &&
             2 * bucket_head_ >= bucket_.size()) {
    erase_prefix(bucket_, bucket_head_);
  }
  while (run_head_ < run_.size() && !item_live(run_[run_head_])) ++run_head_;
  if (run_head_ == run_.size()) {
    if (!run_.empty()) {
      run_.clear();
      run_head_ = 0;
    }
  } else if (run_head_ >= kPrefixReclaimMin && 2 * run_head_ >= run_.size()) {
    erase_prefix(run_, run_head_);
  }
  while (!heap_.empty() && !item_live(heap_.front())) heap_pop_top();

  const Item* best = nullptr;
  if (bucket_head_ < bucket_.size()) {
    best = &bucket_[bucket_head_];
    lane = Lane::kBucket;
  }
  if (run_head_ < run_.size() &&
      (best == nullptr || before(run_[run_head_], *best))) {
    best = &run_[run_head_];
    lane = Lane::kRun;
  }
  if (!heap_.empty() && (best == nullptr || before(heap_.front(), *best))) {
    best = &heap_.front();
    lane = Lane::kHeap;
  }
  if (best == nullptr) return false;
  out = *best;
  return true;
}

void Simulation::execute_item(const Item& it, Lane lane) {
  switch (lane) {
    case Lane::kBucket: ++bucket_head_; break;
    case Lane::kRun: ++run_head_; break;
    case Lane::kHeap: heap_pop_top(); break;
  }
  // Move the callback out before running it: the callback may schedule new
  // events, acquiring (and re-arming) arena slots.
  Callback fn = std::move(slot(it.slot).fn);
  release_slot(it.slot);
  now_ = it.time;
  ++executed_;
  fn();
}

bool Simulation::step() {
  Item item;
  Lane lane;
  if (!next_live(item, lane)) return false;
  execute_item(item, lane);
  return true;
}

std::size_t Simulation::run() {
  std::size_t count = 0;
  while (step()) ++count;
  return count;
}

std::size_t Simulation::run_until(Time until) {
  EHPC_EXPECTS(until >= now_);
  std::size_t count = 0;
  Item item;
  Lane lane;
  while (next_live(item, lane) && item.time <= until) {
    execute_item(item, lane);
    ++count;
  }
  now_ = std::max(now_, until);
  return count;
}

void Simulation::maybe_compact() {
  const std::size_t entries = queue_size();
  if (entries >= kCompactMinEntries && entries > 2 * live_) compact();
}

void Simulation::compact() {
  std::erase_if(heap_, [this](const Item& it) { return !item_live(it); });
  for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
  const auto compact_fifo = [this](std::vector<Item>& lane,
                                   std::size_t& head) {
    if (lane.empty()) return;
    std::size_t write = 0;
    for (std::size_t read = head; read < lane.size(); ++read) {
      if (item_live(lane[read])) lane[write++] = lane[read];
    }
    lane.resize(write);
    head = 0;
  };
  compact_fifo(run_, run_head_);  // filtering preserves sortedness
  compact_fifo(bucket_, bucket_head_);
}

}  // namespace ehpc::sim
