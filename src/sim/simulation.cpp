#include "sim/simulation.hpp"

#include <algorithm>
#include <utility>

namespace ehpc::sim {

EventId Simulation::schedule_at(Time at, Callback fn) {
  EHPC_EXPECTS(at >= now_);
  EHPC_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Simulation::schedule_after(Time delay, Callback fn) {
  EHPC_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventId id) {
  // The heap entry stays behind as a tombstone; pop_next skips it.
  return callbacks_.erase(id) > 0;
}

bool Simulation::pop_next(Entry& out) {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    heap_.pop();
    if (callbacks_.count(top.id) > 0) {
      out = top;
      return true;
    }
  }
  return false;
}

bool Simulation::step() {
  Entry entry;
  if (!pop_next(entry)) return false;
  auto node = callbacks_.extract(entry.id);
  now_ = entry.time;
  ++executed_;
  node.mapped()();
  return true;
}

std::size_t Simulation::run() {
  std::size_t count = 0;
  while (step()) ++count;
  return count;
}

std::size_t Simulation::run_until(Time until) {
  EHPC_EXPECTS(until >= now_);
  std::size_t count = 0;
  for (;;) {
    Entry entry;
    // Peek: pop, and if it is beyond the horizon push it back untouched.
    if (!pop_next(entry)) break;
    if (entry.time > until) {
      heap_.push(entry);
      break;
    }
    auto node = callbacks_.extract(entry.id);
    now_ = entry.time;
    ++executed_;
    node.mapped()();
    ++count;
  }
  now_ = std::max(now_, until);
  return count;
}

}  // namespace ehpc::sim
