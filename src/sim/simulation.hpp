#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "sim/small_function.hpp"

namespace ehpc::sim {

/// Virtual time in seconds since simulation start.
using Time = double;

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// A single-threaded discrete-event simulation kernel.
///
/// Events are callbacks scheduled at absolute virtual times. Ties are broken
/// by scheduling order (FIFO among equal timestamps), which makes runs fully
/// deterministic. The kernel underpins both the Kubernetes substrate (pod
/// startup, reconcile latencies) and the scheduler-performance simulator.
///
/// Storage model (the inner loop of every bench driver):
///  - Callbacks live inline in a chunked arena of generation-stamped slots
///    (SmallFunction, 64-byte small buffer). Slots are recycled through a
///    free list and never move, so steady-state scheduling touches no
///    allocator and no callback is ever copied.
///  - Pending events are 24-byte (time, seq, slot, gen) items spread over
///    three lanes, popped globally in (time, seq) order:
///      * a FIFO bucket for events at exactly now() (same-timestamp chains,
///        zero-delay reconcile hops),
///      * a sorted append-run for the dominant in-order pattern (each event
///        scheduled no earlier than the latest pending one),
///      * a binary min-heap for genuinely out-of-order arrivals.
///  - cancel() retires the slot's generation; the queued item becomes a
///    tombstone that pops lazily and is compacted away once tombstones
///    outnumber live events, so cancel-heavy workloads stay bounded.
class Simulation {
 public:
  using Callback = SmallFunction<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (must be >= now()). Returns an id
  /// usable with `cancel`.
  EventId schedule_at(Time at, Callback fn);

  /// Schedule `fn` after a non-negative delay relative to now().
  EventId schedule_after(Time delay, Callback fn);

  /// Schedule `fn` at the current virtual time (the same-timestamp FIFO
  /// fast path; equivalent to schedule_at(now(), fn)).
  EventId schedule_now(Callback fn) { return schedule_at(now_, std::move(fn)); }

  /// Cancel a pending event. Returns false if the event already ran, was
  /// already cancelled, or never existed.
  bool cancel(EventId id);

  /// Run events until the queue is empty. Returns the number of events run.
  std::size_t run();

  /// Run events with time <= `until`, then advance the clock to `until`
  /// (if the queue empties earlier). Returns the number of events run.
  std::size_t run_until(Time until);

  /// Execute at most one event. Returns false if the queue is empty.
  bool step();

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_; }

  bool empty() const { return live_ == 0; }

  /// Total events executed since construction.
  std::uint64_t executed() const { return executed_; }

  /// Entries currently held by the internal queues, *including* cancelled
  /// tombstones awaiting compaction. Instrumentation/test hook: pins that
  /// schedule/cancel churn cannot grow the queues unboundedly.
  std::size_t queue_size() const {
    return heap_.size() + (run_.size() - run_head_) +
           (bucket_.size() - bucket_head_);
  }

  /// Total Item storage (capacity) of the internal queues, consumed prefixes
  /// included. Instrumentation/test hook: pins that long-lived event chains
  /// reclaim the storage behind their queue heads (see reclaim_prefix).
  std::size_t queue_capacity() const {
    return heap_.capacity() + run_.capacity() + bucket_.capacity();
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::uint32_t kChunkShift = 8;  // 256 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;
  // Compaction only kicks in past this size so small queues never pay it.
  static constexpr std::size_t kCompactMinEntries = 64;
  // FIFO lanes reclaim their consumed prefix once it reaches this length
  // and at least half the vector (amortized O(1) per event).
  static constexpr std::size_t kPrefixReclaimMin = 1024;

  /// Arena cell owning one scheduled callback. `gen` increments every time
  /// the slot is released (run or cancelled), which simultaneously retires
  /// the outstanding EventId and turns any queued Item into a tombstone.
  struct Slot {
    Callback fn;
    std::uint32_t gen = 0;
    bool armed = false;
    std::uint32_t next_free = kNoSlot;
  };

  /// Queue entry: 24 bytes, trivially copyable. `gen` must match the slot's
  /// current generation to be live.
  struct Item {
    Time time;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    std::uint32_t slot;
    std::uint32_t gen;
  };

  enum class Lane : std::uint8_t { kBucket, kRun, kHeap };

  static bool before(const Item& a, const Item& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    // Low word is slot+1 so kInvalidEvent (0) is never produced; the high
    // word's generation makes ids single-use even when slots are recycled.
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  Slot& slot(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }
  const Slot& slot(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }

  bool item_live(const Item& it) const { return slot(it.slot).gen == it.gen; }

  std::uint32_t acquire_slot(Callback&& fn);
  void release_slot(std::uint32_t idx);

  void heap_push(const Item& it);
  void heap_pop_top();
  void sift_down(std::size_t i);

  static void erase_prefix(std::vector<Item>& lane, std::size_t& head);

  // Peek the next live event across the lanes, pruning tombstones.
  bool next_live(Item& out, Lane& lane);
  // Pop the peeked item, run its callback, advance the clock.
  void execute_item(const Item& it, Lane lane);

  void maybe_compact();
  void compact();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_high_water_ = 0;  // slots handed out at least once
  std::uint32_t free_head_ = kNoSlot;

  std::vector<Item> heap_;    // binary min-heap on (time, seq)
  std::vector<Item> run_;     // sorted ascending by (time, seq)
  std::size_t run_head_ = 0;
  std::vector<Item> bucket_;  // FIFO ring of events at time == now()
  std::size_t bucket_head_ = 0;
};

}  // namespace ehpc::sim
