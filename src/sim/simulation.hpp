#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"

namespace ehpc::sim {

/// Virtual time in seconds since simulation start.
using Time = double;

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// A single-threaded discrete-event simulation kernel.
///
/// Events are callbacks scheduled at absolute virtual times. Ties are broken
/// by scheduling order (FIFO among equal timestamps), which makes runs fully
/// deterministic. The kernel underpins both the Kubernetes substrate (pod
/// startup, reconcile latencies) and the scheduler-performance simulator.
class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (must be >= now()). Returns an id
  /// usable with `cancel`.
  EventId schedule_at(Time at, Callback fn);

  /// Schedule `fn` after a non-negative delay relative to now().
  EventId schedule_after(Time delay, Callback fn);

  /// Cancel a pending event. Returns false if the event already ran, was
  /// already cancelled, or never existed.
  bool cancel(EventId id);

  /// Run events until the queue is empty. Returns the number of events run.
  std::size_t run();

  /// Run events with time <= `until`, then advance the clock to `until`
  /// (if the queue empties earlier). Returns the number of events run.
  std::size_t run_until(Time until);

  /// Execute at most one event. Returns false if the queue is empty.
  bool step();

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return callbacks_.size(); }

  bool empty() const { return pending() == 0; }

  /// Total events executed since construction.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    EventId id;
    // Ordered as a min-heap: smallest (time, seq) first.
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // Pop the next live entry, skipping cancelled ones. Returns false if none.
  bool pop_next(Entry& out);

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace ehpc::sim
