#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ehpc::sim {

template <typename Signature>
class SmallFunction;

/// A move-only callable with a 64-byte inline buffer.
///
/// The event kernel stores one callback per scheduled event; with
/// std::function every capturing lambda beyond ~2 words costs a heap
/// allocation on the schedule path. SmallFunction keeps callables of up to
/// kInlineBytes (that are nothrow-move-constructible) inside the object, so
/// arena-resident events never touch the allocator. Larger or throwing-move
/// callables transparently fall back to a heap box.
///
/// Callables that are trivially copyable and trivially destructible (the
/// overwhelming majority of event lambdas: captures of pointers, ids and
/// doubles) skip the manage indirection entirely — relocation is a raw
/// 64-byte copy and destruction is a no-op (`manage_ == nullptr`).
template <typename R, typename... Args>
class SmallFunction<R(Args...)> {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  SmallFunction() noexcept = default;
  SmallFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunction(F&& fn) {  // NOLINT(runtime/explicit)
    if constexpr (trivial_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      invoke_ = [](void* obj, Args... args) -> R {
        return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
      };
    } else if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      invoke_ = [](void* obj, Args... args) -> R {
        return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* self, void* dst) {
        D* fn_self = static_cast<D*>(self);
        if (op == Op::kRelocate) ::new (dst) D(std::move(*fn_self));
        fn_self->~D();
      };
    } else {
      *reinterpret_cast<void**>(buf_) = new D(std::forward<F>(fn));
      invoke_ = [](void* obj, Args... args) -> R {
        return (**static_cast<D**>(obj))(std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* self, void* dst) {
        if (op == Op::kRelocate) {
          *static_cast<D**>(dst) = *static_cast<D**>(self);
        } else {
          delete *static_cast<D**>(self);
        }
      };
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  friend bool operator==(const SmallFunction& fn, std::nullptr_t) noexcept {
    return !fn;
  }

 private:
  enum class Op { kRelocate, kDestroy };
  using Invoke = R (*)(void*, Args...);
  using Manage = void (*)(Op, void* self, void* dst);

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr bool trivial_inline =
      fits_inline<D> && std::is_trivially_copyable_v<D> &&
      std::is_trivially_destructible_v<D>;

  void move_from(SmallFunction& other) noexcept {
    if (other.invoke_ != nullptr) {
      if (other.manage_ != nullptr) {
        other.manage_(Op::kRelocate, other.buf_, buf_);
        manage_ = other.manage_;
        other.manage_ = nullptr;
      } else {
        // Whole-buffer copy: the callable may occupy any prefix of buf_;
        // the indeterminate tail is copied but never read.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
        std::memcpy(buf_, other.buf_, kInlineBytes);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
      }
      invoke_ = other.invoke_;
      other.invoke_ = nullptr;
    }
  }

  void reset() noexcept {
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) {
        manage_(Op::kDestroy, buf_, nullptr);
        manage_ = nullptr;
      }
      invoke_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace ehpc::sim
