#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace ehpc::sim {

const TraceRecorder::Series TraceRecorder::kEmpty;

void TraceRecorder::record(const std::string& name, Time t, double value) {
  auto& s = series_[name];
  EHPC_EXPECTS(s.empty() || t >= s.back().first);
  s.emplace_back(t, value);
}

const TraceRecorder::Series& TraceRecorder::series(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? kEmpty : it->second;
}

std::vector<std::string> TraceRecorder::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, _] : series_) out.push_back(name);
  return out;
}

double TraceRecorder::value_at(const std::string& name, Time t,
                               double fallback) const {
  const Series& s = series(name);
  if (s.empty() || t < s.front().first) return fallback;
  auto it = std::upper_bound(
      s.begin(), s.end(), t,
      [](Time v, const std::pair<Time, double>& p) { return v < p.first; });
  return std::prev(it)->second;
}

double TraceRecorder::average(const std::string& name, Time start, Time end) const {
  EHPC_EXPECTS(end >= start);
  const Series& s = series(name);
  if (s.empty() || end == start) return value_at(name, start);
  std::vector<std::pair<double, double>> steps;
  steps.emplace_back(start, value_at(name, start));
  for (const auto& [t, v] : s) {
    if (t > start && t <= end) steps.emplace_back(t, v);
  }
  return time_weighted_average(steps, end);
}

std::string TraceRecorder::to_csv(const std::string& name,
                                  const std::string& value_header) const {
  std::ostringstream out;
  out << "time," << value_header << '\n';
  for (const auto& [t, v] : series(name)) out << t << ',' << v << '\n';
  return out.str();
}

}  // namespace ehpc::sim
