#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"

namespace ehpc::sim {

/// Records named time series of (time, value) samples during a simulation.
///
/// Used to capture the cluster-utilization profiles of Figure 9a and the
/// per-job replica evolution of Figure 9b. Series are step functions: a
/// sample means "the value changed to v at time t".
class TraceRecorder {
 public:
  using Series = std::vector<std::pair<Time, double>>;

  /// Append a sample to the named series. Times must be non-decreasing
  /// within a series.
  void record(const std::string& series, Time t, double value);

  /// The samples of one series (empty if never recorded).
  const Series& series(const std::string& name) const;

  /// All series names in lexicographic order.
  std::vector<std::string> names() const;

  bool has(const std::string& name) const { return series_.count(name) > 0; }

  /// Value of the step function at time t (last sample at or before t);
  /// `fallback` if the series is empty or t precedes the first sample.
  double value_at(const std::string& name, Time t, double fallback = 0.0) const;

  /// Time-weighted average of the series over [start, end].
  double average(const std::string& name, Time start, Time end) const;

  /// Render one series as CSV with the given column header.
  std::string to_csv(const std::string& name, const std::string& value_header) const;

 private:
  std::map<std::string, Series> series_;
  static const Series kEmpty;
};

}  // namespace ehpc::sim
