#include "trace/failures.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace ehpc::trace {

namespace {

/// Strict field parsers (the CsvTraceSource discipline): the whole field
/// must be consumed, so "12x" or an empty field is an error.
long parse_long(const std::string& field, const std::string& what,
                const std::string& path, long line) {
  char* end = nullptr;
  const long value = std::strtol(field.c_str(), &end, 10);
  if (field.empty() || end != field.c_str() + field.size()) {
    throw PreconditionError(path + ":" + std::to_string(line) + ": bad " +
                            what + " '" + field + "'");
  }
  return value;
}

double parse_double(const std::string& field, const std::string& what,
                    const std::string& path, long line) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (field.empty() || end != field.c_str() + field.size()) {
    throw PreconditionError(path + ":" + std::to_string(line) + ": bad " +
                            what + " '" + field + "'");
  }
  return value;
}

}  // namespace

CsvFailureTraceSource::CsvFailureTraceSource(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw PreconditionError("cannot open failure trace file: " + path);

  std::string line;
  long line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;

    std::istringstream ls(line);
    std::vector<std::string> fields;
    std::string field;
    while (std::getline(ls, field, ',')) fields.push_back(field);
    if (fields.size() < 2 || fields.size() > 3) {
      throw PreconditionError(
          path + ":" + std::to_string(line_number) + ": expected 2-3 fields "
          "(time_s,kind[,domain]), got " + std::to_string(fields.size()) +
          " in '" + line + "'");
    }

    FailureEvent event;
    event.time_s = parse_double(fields[0], "event time", path, line_number);
    if (event.time_s < 0.0) {
      throw PreconditionError(path + ":" + std::to_string(line_number) +
                              ": negative event time '" + fields[0] + "'");
    }
    if (fields[1] == "crash") {
      event.kind = FailureEvent::Kind::kCrash;
    } else if (fields[1] == "evict") {
      event.kind = FailureEvent::Kind::kEvict;
    } else if (fields[1] == "domain") {
      event.kind = FailureEvent::Kind::kDomain;
    } else {
      throw PreconditionError(path + ":" + std::to_string(line_number) +
                              ": unknown event kind '" + fields[1] +
                              "' (expected crash, evict or domain)");
    }
    if (event.kind == FailureEvent::Kind::kDomain) {
      if (fields.size() != 3) {
        throw PreconditionError(path + ":" + std::to_string(line_number) +
                                ": kind=domain requires a domain field");
      }
      event.domain = static_cast<int>(
          parse_long(fields[2], "domain index", path, line_number));
      if (event.domain < 0) {
        throw PreconditionError(path + ":" + std::to_string(line_number) +
                                ": negative domain index '" + fields[2] + "'");
      }
    } else if (fields.size() == 3) {
      throw PreconditionError(path + ":" + std::to_string(line_number) +
                              ": a domain field is only allowed with "
                              "kind=domain");
    }

    if (!events_.empty() && event.time_s < events_.back().time_s) {
      throw PreconditionError(
          path + ":" + std::to_string(line_number) +
          ": event time goes backwards (" + std::to_string(event.time_s) +
          " after " + std::to_string(events_.back().time_s) +
          "); failure traces must be sorted by time");
    }
    events_.push_back(event);
  }
  // An outage log with no events is a misconfiguration, not a quiet run.
  if (events_.empty()) {
    throw PreconditionError("failure trace file has no events: " + path);
  }
}

schedsim::FaultPlan resolve_failure_trace(schedsim::FaultPlan plan) {
  if (plan.failure_trace_path.empty()) return plan;
  const CsvFailureTraceSource source(plan.failure_trace_path);
  for (const FailureEvent& event : source.events()) {
    switch (event.kind) {
      case FailureEvent::Kind::kCrash:
        plan.crash_times.push_back(event.time_s);
        break;
      case FailureEvent::Kind::kEvict:
        plan.evict_times.push_back(event.time_s);
        break;
      case FailureEvent::Kind::kDomain:
        plan.domain_crashes.push_back({event.time_s, event.domain});
        break;
    }
  }
  plan.failure_trace_path.clear();
  // Re-check the merged plan: a trace may reference a domain the plan's
  // domain map does not define, which validate() rejects with context.
  plan.validate();
  return plan;
}

}  // namespace ehpc::trace
