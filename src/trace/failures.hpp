#pragma once

#include <string>
#include <vector>

#include "schedsim/fault.hpp"

namespace ehpc::trace {

/// One line of a failure trace: a single-node crash, a pod eviction, or a
/// correlated domain kill at an absolute virtual time.
struct FailureEvent {
  enum class Kind { kCrash, kEvict, kDomain };
  double time_s = 0.0;
  Kind kind = Kind::kCrash;
  /// Failure-domain index; meaningful only for Kind::kDomain.
  int domain = 0;
};

/// Strict CSV loader for recorded outage logs, with the same line-numbered
/// validation discipline as `CsvTraceSource`: every parse error names
/// `path:line` and the offending field.
///
/// Format, one event per line (`#` comments and blank lines skipped):
///
///   time_s,kind[,domain]
///
/// where `kind` is `crash`, `evict` or `domain`; the `domain` field is
/// required for (and only allowed with) `kind=domain`. Events must be
/// sorted by non-decreasing time and the file must contain at least one —
/// replaying an empty outage log is a misconfiguration, not a quiet run.
class CsvFailureTraceSource {
 public:
  explicit CsvFailureTraceSource(const std::string& path);

  /// Parse the whole file eagerly (outage logs are small, unlike job
  /// traces) and return the events in file order.
  const std::vector<FailureEvent>& events() const { return events_; }

 private:
  std::vector<FailureEvent> events_;
};

/// Resolve `plan.failure_trace_path` into explicit fault events: load the
/// trace, append its crashes/evictions/domain kills to the plan's event
/// vectors, and clear the path (the ExecHarness refuses unresolved plans).
/// A plan with no trace path passes through untouched. Called by the
/// scenario backends once per run, so both substrates replay the identical
/// resolved plan.
schedsim::FaultPlan resolve_failure_trace(schedsim::FaultPlan plan);

}  // namespace ehpc::trace
