#pragma once

#include <optional>

#include "schedsim/jobmix.hpp"

namespace ehpc::trace {

/// Pull-based stream of job submissions: the front door for every large
/// workload. `next()` yields jobs in non-decreasing `submit_time` order and
/// returns nullopt once the stream is exhausted; implementations never
/// materialize the whole trace, so a consumer that retires finished jobs
/// (ExecHarness::run_stream) keeps memory proportional to in-flight jobs
/// regardless of trace length.
///
/// This header is intentionally interface-only (no link dependency):
/// `schedsim` consumes the stream through it while the concrete sources in
/// `trace/sources.hpp` live in the higher `ehk_trace` module.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// The next job in submit-time order, or nullopt at end of stream. Job
  /// ids must be unique among jobs that are in flight simultaneously.
  virtual std::optional<schedsim::SubmittedJob> next() = 0;
};

}  // namespace ehpc::trace
