#include "trace/sources.hpp"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "elastic/workload.hpp"

namespace ehpc::trace {

namespace {

/// Strict field parsers: the whole field must be consumed, so "12x" or an
/// empty field is an error instead of atoi's silent 0/12.
long parse_long(const std::string& field, const std::string& what,
                const std::string& path, long line) {
  char* end = nullptr;
  const long value = std::strtol(field.c_str(), &end, 10);
  if (field.empty() || end != field.c_str() + field.size()) {
    throw PreconditionError(path + ":" + std::to_string(line) + ": bad " +
                            what + " '" + field + "'");
  }
  return value;
}

double parse_double(const std::string& field, const std::string& what,
                    const std::string& path, long line) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (field.empty() || end != field.c_str() + field.size()) {
    throw PreconditionError(path + ":" + std::to_string(line) + ": bad " +
                            what + " '" + field + "'");
  }
  return value;
}

}  // namespace

std::uint64_t trace_hash(std::uint64_t seed, std::uint64_t index,
                         std::uint64_t lane) {
  // splitmix64 finalizer over the mixed key: cheap, stateless, and the draw
  // for (seed, index, lane) never depends on any other draw.
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + index * 0xbf58476d1ce4e5b9ull +
                    lane * 0x94d049bb133111ebull + 0x2545f4914f6cdd1dull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

CsvTraceSource::CsvTraceSource(const std::string& path, JobDefaults defaults)
    : path_(path), in_(path), defaults_(defaults) {
  if (!in_) throw PreconditionError("cannot open trace file: " + path);
}

std::optional<schedsim::SubmittedJob> CsvTraceSource::next() {
  std::string line;
  while (std::getline(in_, line)) {
    ++line_number_;
    if (line.empty() || line[0] == '#') continue;

    std::istringstream ls(line);
    std::vector<std::string> fields;
    std::string field;
    while (std::getline(ls, field, ',')) fields.push_back(field);
    if (fields.size() < 4 || fields.size() > 7) {
      throw PreconditionError(
          path_ + ":" + std::to_string(line_number_) + ": expected 4-7 fields "
          "(id,class,priority,submit_time[,queue_timeout[,task_timeout"
          "[,max_failed_nodes]]]), got " + std::to_string(fields.size()) +
          " in '" + line + "'");
    }

    schedsim::SubmittedJob job;
    const long id = parse_long(fields[0], "job id", path_, line_number_);
    elastic::JobClass cls;
    try {
      cls = elastic::job_class_from_string(fields[1]);
    } catch (const PreconditionError& err) {
      throw PreconditionError(path_ + ":" + std::to_string(line_number_) +
                              ": " + err.what());
    }
    const long priority = parse_long(fields[2], "priority", path_, line_number_);
    job.spec = elastic::spec_for_class(cls, static_cast<elastic::JobId>(id),
                                       static_cast<int>(priority));
    job.job_class = cls;
    job.submit_time =
        parse_double(fields[3], "submit time", path_, line_number_);
    job.queue_timeout_s =
        fields.size() > 4
            ? parse_double(fields[4], "queue timeout", path_, line_number_)
            : defaults_.queue_timeout_s;
    job.task_timeout_s =
        fields.size() > 5
            ? parse_double(fields[5], "task timeout", path_, line_number_)
            : defaults_.task_timeout_s;
    job.max_failed_nodes =
        fields.size() > 6
            ? static_cast<int>(parse_long(fields[6], "max failed nodes", path_,
                                          line_number_))
            : defaults_.max_failed_nodes;

    if (any_yielded_ && job.submit_time < last_submit_time_) {
      throw PreconditionError(
          path_ + ":" + std::to_string(line_number_) +
          ": submit time goes backwards (" + std::to_string(job.submit_time) +
          " after " + std::to_string(last_submit_time_) +
          "); traces must be sorted by submit time");
    }
    last_submit_time_ = job.submit_time;
    any_yielded_ = true;
    return job;
  }
  // A trace with no jobs is a misconfiguration, not an empty campaign (the
  // streaming harness requires at least one submission).
  if (!any_yielded_) {
    throw PreconditionError("trace file has no jobs: " + path_);
  }
  return std::nullopt;
}

SyntheticTraceSource::SyntheticTraceSource(SyntheticTraceConfig config)
    : config_(config) {
  EHPC_EXPECTS(config_.num_jobs > 0);
  EHPC_EXPECTS(config_.submission_gap_s >= 0.0);
}

std::optional<schedsim::SubmittedJob> SyntheticTraceSource::next() {
  if (index_ >= config_.num_jobs) return std::nullopt;
  const auto i = static_cast<std::uint64_t>(index_);
  const auto cls = static_cast<elastic::JobClass>(
      trace_hash(config_.seed, i, /*lane=*/0) % 4);
  const int priority =
      1 + static_cast<int>(trace_hash(config_.seed, i, /*lane=*/1) % 5);
  schedsim::SubmittedJob job;
  job.spec = elastic::spec_for_class(
      cls, static_cast<elastic::JobId>(index_), priority);
  job.job_class = cls;
  job.submit_time = config_.submission_gap_s * static_cast<double>(index_);
  job.queue_timeout_s = config_.defaults.queue_timeout_s;
  job.task_timeout_s = config_.defaults.task_timeout_s;
  job.max_failed_nodes = config_.defaults.max_failed_nodes;
  ++index_;
  return job;
}

CronTraceSource::CronTraceSource(CronTraceConfig config) : config_(config) {
  EHPC_EXPECTS(config_.period_s > 0.0);
  EHPC_EXPECTS(config_.phase_s >= 0.0);
  EHPC_EXPECTS(config_.end_s >= config_.phase_s);
  EHPC_EXPECTS(config_.priority >= 1);
}

std::optional<schedsim::SubmittedJob> CronTraceSource::next() {
  const double submit =
      config_.phase_s + config_.period_s * static_cast<double>(occurrence_);
  if (submit > config_.end_s) return std::nullopt;
  schedsim::SubmittedJob job;
  job.spec = elastic::spec_for_class(
      config_.job_class,
      config_.id_base + static_cast<elastic::JobId>(occurrence_),
      config_.priority);
  job.job_class = config_.job_class;
  job.submit_time = submit;
  job.queue_timeout_s = config_.defaults.queue_timeout_s;
  job.task_timeout_s = config_.defaults.task_timeout_s;
  job.max_failed_nodes = config_.defaults.max_failed_nodes;
  ++occurrence_;
  return job;
}

CompositeTraceSource::CompositeTraceSource(
    std::vector<std::unique_ptr<TraceSource>> children)
    : children_(std::move(children)) {
  EHPC_EXPECTS(!children_.empty());
  heads_.reserve(children_.size());
  for (auto& child : children_) {
    EHPC_EXPECTS(child != nullptr);
    heads_.push_back(child->next());
  }
}

std::optional<schedsim::SubmittedJob> CompositeTraceSource::next() {
  std::size_t best = heads_.size();
  for (std::size_t i = 0; i < heads_.size(); ++i) {
    if (!heads_[i]) continue;
    if (best == heads_.size() ||
        heads_[i]->submit_time < heads_[best]->submit_time ||
        (heads_[i]->submit_time == heads_[best]->submit_time &&
         heads_[i]->spec.id < heads_[best]->spec.id)) {
      best = i;
    }
  }
  if (best == heads_.size()) return std::nullopt;
  std::optional<schedsim::SubmittedJob> out = std::move(heads_[best]);
  heads_[best] = children_[best]->next();
  return out;
}

}  // namespace ehpc::trace
