#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "trace/source.hpp"

namespace ehpc::trace {

/// Per-job limits stamped onto every yielded job unless the trace itself
/// carries a value (CSV rows may override per job). Negative = unset.
struct JobDefaults {
  double queue_timeout_s = -1.0;
  double task_timeout_s = -1.0;
  int max_failed_nodes = -1;
};

/// Streams a CSV job trace without materializing it. Line format:
///
///   id,class,priority,submit_time[,queue_timeout[,task_timeout[,max_failed_nodes]]]
///
/// where class is small|medium|large|xlarge. Blank lines and lines starting
/// with '#' are skipped. Parsing is strict: a malformed numeric field, an
/// unknown class, a missing column or a submit time that goes backwards is a
/// hard error naming the offending line number — never a silent 0 (the bug
/// the ad-hoc atoi/atof loader in examples/trace_replay.cpp used to have).
class CsvTraceSource final : public TraceSource {
 public:
  explicit CsvTraceSource(const std::string& path, JobDefaults defaults = {});

  std::optional<schedsim::SubmittedJob> next() override;

 private:
  std::string path_;
  std::ifstream in_;
  JobDefaults defaults_;
  long line_number_ = 0;
  double last_submit_time_ = 0.0;
  bool any_yielded_ = false;
};

/// Deterministic synthetic arrival stream of arbitrary length. Class and
/// priority draws come from a counter-based splitmix64 hash of (seed, index)
/// rather than a sequential RNG, so job i's identity is a pure function of
/// the config — independent of how much of the stream any consumer pulled.
struct SyntheticTraceConfig {
  long num_jobs = 1000;
  double submission_gap_s = 1.0;
  unsigned seed = 2025;
  JobDefaults defaults;
};

class SyntheticTraceSource final : public TraceSource {
 public:
  explicit SyntheticTraceSource(SyntheticTraceConfig config);

  std::optional<schedsim::SubmittedJob> next() override;

 private:
  SyntheticTraceConfig config_;
  long index_ = 0;
};

/// Recurring submissions of one template job, prun cron-manager style: one
/// copy at phase, phase + period, ... up to and including end. Each copy is
/// a fresh job id (base + k) so resubmissions are independent jobs.
struct CronTraceConfig {
  double period_s = 600.0;
  double phase_s = 0.0;  ///< first submission time
  double end_s = 3600.0; ///< last eligible submission time (inclusive)
  elastic::JobClass job_class = elastic::JobClass::kMedium;
  int priority = 3;
  /// Id of occurrence k is `id_base + k`; the default keeps cron ids out of
  /// the way of CSV/synthetic ids, which count from 0.
  elastic::JobId id_base = 1 << 28;
  JobDefaults defaults;
};

class CronTraceSource final : public TraceSource {
 public:
  explicit CronTraceSource(CronTraceConfig config);

  std::optional<schedsim::SubmittedJob> next() override;

 private:
  CronTraceConfig config_;
  long occurrence_ = 0;
};

/// Merges child streams into one submit-time-ordered stream (ties broken by
/// job id for determinism). Buffers exactly one pending job per child, so
/// composition preserves the O(1)-per-source memory of its parts.
class CompositeTraceSource final : public TraceSource {
 public:
  explicit CompositeTraceSource(
      std::vector<std::unique_ptr<TraceSource>> children);

  std::optional<schedsim::SubmittedJob> next() override;

 private:
  std::vector<std::unique_ptr<TraceSource>> children_;
  std::vector<std::optional<schedsim::SubmittedJob>> heads_;
};

/// Counter-based hash used by SyntheticTraceSource (splitmix64 over a
/// mixed-in lane), exposed for tests that pin the draw function.
std::uint64_t trace_hash(std::uint64_t seed, std::uint64_t index,
                         std::uint64_t lane);

}  // namespace ehpc::trace
