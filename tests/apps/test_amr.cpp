#include "apps/amr.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "apps/calibration.hpp"
#include "charm/runtime.hpp"

namespace ehpc::apps {
namespace {

AmrConfig small_config() {
  AmrConfig config;
  config.blocks = 16;
  config.cells_per_block = 256;
  config.max_real_cells = 32;
  config.max_depth = 2;
  config.refine_rate = 0.25;
  config.coarsen_rate = 0.1;
  config.max_iterations = 12;
  return config;
}

charm::RuntimeConfig runtime_config(int pes) {
  charm::RuntimeConfig rc;
  rc.num_pes = pes;
  return rc;
}

TEST(AmrBlock, FluxAndComputeRelaxTowardsNeighbours) {
  AmrBlock block(8, 2);
  block.mark_started();
  block.apply_flux(AmrBlock::kLeft, {2.0, 2.0});
  block.apply_flux(AmrBlock::kRight, {2.0, 2.0});
  ASSERT_TRUE(block.ready_to_compute());
  const double delta = block.compute();
  EXPECT_GT(delta, 0.0);
  EXPECT_EQ(block.iteration(), 1);
  EXPECT_FALSE(block.ready_to_compute());  // gates reset
}

TEST(AmrBlock, ChangeLevelResamplesDeterministically) {
  AmrBlock a(8, 2);
  AmrBlock b(8, 2);
  a.change_level(+1, 32);
  b.change_level(+1, 32);
  EXPECT_EQ(a.level(), 1);
  EXPECT_EQ(a.real_cells(), 32);
  EXPECT_EQ(b.real_cells(), 32);
  a.change_level(-1, 8);
  EXPECT_EQ(a.level(), 0);
  EXPECT_EQ(a.real_cells(), 8);
}

TEST(AmrBlock, PupRoundTripsAllState) {
  AmrBlock block(8, 2);
  block.mark_started();
  block.apply_flux(AmrBlock::kLeft, {1.0, 2.0});
  block.change_level(+1, 16);
  std::vector<std::byte> buffer;
  charm::Pup packer = charm::Pup::packer(buffer);
  block.pup(packer);

  AmrBlock restored(1, 2);
  charm::Pup unpacker = charm::Pup::unpacker(buffer);
  restored.pup(unpacker);
  EXPECT_EQ(restored.level(), 1);
  EXPECT_EQ(restored.real_cells(), 16);
  EXPECT_TRUE(restored.started());
}

TEST(Amr, EventDrawIsDeterministicAndUniformish) {
  // Same key -> same draw; different keys decorrelate.
  EXPECT_DOUBLE_EQ(Amr::event_draw(7, 3, 11), Amr::event_draw(7, 3, 11));
  EXPECT_NE(Amr::event_draw(7, 3, 11), Amr::event_draw(7, 3, 12));
  EXPECT_NE(Amr::event_draw(7, 3, 11), Amr::event_draw(7, 4, 11));
  EXPECT_NE(Amr::event_draw(8, 3, 11), Amr::event_draw(7, 3, 11));
  double sum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double u = Amr::event_draw(2025, i, i * 7);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(Amr, RunsToCompletionAndAdaptsTheMesh) {
  charm::Runtime rt(runtime_config(4));
  Amr app(rt, small_config());
  app.start();
  rt.run();
  ASSERT_TRUE(app.driver().finished());
  EXPECT_EQ(app.driver().iterations_done(), 12);

  // With refine_rate 0.25 over 12 iterations some patches must have left
  // the base mesh, producing a spread of levels (= imbalance).
  std::set<int> levels;
  for (int e = 0; e < app.config().blocks; ++e) levels.insert(app.level_of(e));
  EXPECT_GT(*levels.rbegin(), 0);
  EXPECT_GT(app.total_model_cells(),
            16.0 * 256.0);  // refined above the base mesh
}

TEST(Amr, ZeroRefineRateKeepsTheBaseMesh) {
  AmrConfig config = small_config();
  config.refine_rate = 0.0;
  config.coarsen_rate = 0.0;
  charm::Runtime rt(runtime_config(4));
  Amr app(rt, config);
  app.start();
  rt.run();
  ASSERT_TRUE(app.driver().finished());
  for (int e = 0; e < config.blocks; ++e) EXPECT_EQ(app.level_of(e), 0);
  EXPECT_DOUBLE_EQ(app.total_model_cells(), 16.0 * 256.0);
}

TEST(Amr, RefinementProducesLoadImbalance) {
  charm::Runtime rt(runtime_config(4));
  Amr app(rt, small_config());
  app.start();
  rt.run();
  const auto loads = rt.element_loads(app.array());
  double lo = loads.front(), hi = loads.front();
  for (const double l : loads) {
    lo = std::min(lo, l);
    hi = std::max(hi, l);
  }
  // Refined patches cost 4x/16x the base level: heavy spread expected.
  EXPECT_GT(hi, 2.0 * std::max(lo, 1e-12));
}

TEST(Amr, DeterministicAcrossRuns) {
  auto run_once = [] {
    charm::Runtime rt(runtime_config(4));
    Amr app(rt, small_config());
    app.start();
    rt.run();
    return std::pair<double, double>(app.total_model_cells(),
                                     app.cells_last_iteration());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Amr, MeshEvolutionIsIndependentOfPeCount) {
  // Placement changes event *order*, never the refinement decisions: the
  // final mesh must be identical on 2 and 8 PEs.
  auto final_levels = [](int pes) {
    charm::Runtime rt(runtime_config(pes));
    Amr app(rt, small_config());
    app.start();
    rt.run();
    std::vector<int> levels;
    for (int e = 0; e < app.config().blocks; ++e) {
      levels.push_back(app.level_of(e));
    }
    return levels;
  };
  EXPECT_EQ(final_levels(2), final_levels(8));
}

TEST(Amr, SurvivesRescaleMidRun) {
  charm::Runtime rt(runtime_config(8));
  Amr app(rt, small_config());
  app.driver().at_iteration(
      4, [](charm::Runtime& r) { r.ccs().request_rescale(4); });
  app.start();
  rt.run();
  ASSERT_TRUE(app.driver().finished());
  ASSERT_TRUE(rt.last_rescale().has_value());
  EXPECT_EQ(rt.num_pes(), 4);

  // The mesh (and therefore total model cells) must match an undisturbed
  // run: refinement decisions are placement- and rescale-independent.
  charm::Runtime ref_rt(runtime_config(8));
  Amr ref(ref_rt, small_config());
  ref.start();
  ref_rt.run();
  EXPECT_DOUBLE_EQ(app.total_model_cells(), ref.total_model_cells());
}

TEST(Amr, PeriodicLbRecordsImbalanceMetrics) {
  charm::Runtime rt(runtime_config(4));
  Amr app(rt, small_config());
  app.driver().set_lb_period(3);
  app.start();
  rt.run();
  ASSERT_TRUE(app.driver().finished());
  ASSERT_FALSE(rt.lb_history().empty());
  for (const auto& step : rt.lb_history()) {
    EXPECT_GE(step.pre_ratio, 1.0);
    EXPECT_GE(step.post_ratio, 1.0);
    EXPECT_EQ(step.objects, 16);
    // AtSync LB with all PEs available: the guard forbids regressions.
    EXPECT_LE(step.post_ratio, step.pre_ratio + 1e-12);
  }
}

TEST(AmrCalibration, ScalingCurveDecreasesWithReplicas) {
  // Compute-dominated sizing (the tiny small_config() is latency-bound and
  // legitimately does not strong-scale).
  AmrConfig config = small_config();
  config.blocks = 32;
  config.cells_per_block = 65536;
  const auto points = measure_amr_scaling(config, {1, 4, 16}, /*lb_period=*/4);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[0].time_per_step_s, points[2].time_per_step_s);
}

TEST(AmrCalibration, RescaleUnderImbalanceMigratesObjects) {
  const auto timing = measure_amr_rescale(small_config(), 8, 4, /*warmup=*/6);
  EXPECT_EQ(timing.old_pes, 8);
  EXPECT_EQ(timing.new_pes, 4);
  EXPECT_GT(timing.migrated_objects, 0);
  EXPECT_GT(timing.total(), 0.0);
}

TEST(AmrCalibration, LbProfileReportsImbalance) {
  const LbProfile profile =
      measure_amr_lb_profile(small_config(), /*replicas=*/4, /*lb_period=*/3);
  EXPECT_GT(profile.lb_steps, 0);
  EXPECT_GE(profile.pre_ratio, 1.0);
  EXPECT_GE(profile.post_ratio, 1.0);
  EXPECT_LE(profile.post_ratio, profile.pre_ratio + 1e-12);
}

}  // namespace
}  // namespace ehpc::apps
