#include "apps/calibration.hpp"

#include <gtest/gtest.h>

namespace ehpc::apps {
namespace {

TEST(Calibration, JacobiScalingMonotoneForLargeProblem) {
  auto points = measure_jacobi_scaling(8192, {4, 16, 64}, 8);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[0].time_per_step_s, points[1].time_per_step_s);
  EXPECT_GT(points[1].time_per_step_s, points[2].time_per_step_s);
}

TEST(Calibration, SmallProblemScalesWorseThanLarge) {
  auto small = measure_jacobi_scaling(512, {4, 64}, 8);
  auto large = measure_jacobi_scaling(16384, {4, 64}, 8);
  const double speedup_small = small[0].time_per_step_s / small[1].time_per_step_s;
  const double speedup_large = large[0].time_per_step_s / large[1].time_per_step_s;
  EXPECT_GT(speedup_large, speedup_small);
}

TEST(Calibration, LeanMdScalingMonotone) {
  LeanMdConfig cfg;
  cfg.cells_x = cfg.cells_y = 4;
  cfg.cells_z = 4;
  cfg.max_iterations = 8;
  cfg.atoms_per_cell = 400;
  cfg.real_atoms_per_cell = 4;
  auto points = measure_leanmd_scaling(cfg, {4, 16, 64});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[0].time_per_step_s, points[1].time_per_step_s);
  EXPECT_GT(points[1].time_per_step_s, points[2].time_per_step_s);
}

TEST(Calibration, RescaleTimingHasAllStages) {
  auto timing = measure_jacobi_rescale(2048, 8, 4);
  EXPECT_EQ(timing.old_pes, 8);
  EXPECT_EQ(timing.new_pes, 4);
  EXPECT_GT(timing.load_balance_s, 0.0);
  EXPECT_GT(timing.checkpoint_s, 0.0);
  EXPECT_GT(timing.restart_s, 0.0);
  EXPECT_GT(timing.restore_s, 0.0);
}

TEST(Calibration, RestartGrowsWithReplicas) {
  auto small = measure_jacobi_rescale(2048, 4, 2);
  auto large = measure_jacobi_rescale(2048, 32, 16);
  EXPECT_LT(small.restart_s, large.restart_s);
}

TEST(Calibration, CheckpointGrowsWithProblemSize) {
  auto small = measure_jacobi_rescale(512, 8, 4);
  auto large = measure_jacobi_rescale(8192, 8, 4);
  EXPECT_LT(small.checkpoint_s, large.checkpoint_s);
}

TEST(Calibration, ScalingCurveInterpolates) {
  std::vector<ScalingPoint> pts{{4, 1.0}, {8, 0.5}, {16, 0.25}};
  auto curve = scaling_curve(pts);
  EXPECT_DOUBLE_EQ(curve.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(curve.at(6.0), 0.75);
  EXPECT_DOUBLE_EQ(curve.at(16.0), 0.25);
}

TEST(Calibration, JacobiForGridConfig) {
  auto cfg = jacobi_for_grid(4096);
  EXPECT_EQ(cfg.grid_n, 4096);
  EXPECT_EQ(cfg.blocks_x * cfg.blocks_y, 256);
  EXPECT_EQ(cfg.grid_n % cfg.blocks_x, 0);
}

}  // namespace
}  // namespace ehpc::apps
