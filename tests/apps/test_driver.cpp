#include "apps/driver.hpp"

#include <gtest/gtest.h>

#include "apps/jacobi2d.hpp"

namespace ehpc::apps {
namespace {

charm::RuntimeConfig pes(int n) {
  charm::RuntimeConfig cfg;
  cfg.num_pes = n;
  cfg.pes_per_node = 4;
  return cfg;
}

JacobiConfig tiny(int iters) {
  JacobiConfig cfg;
  cfg.grid_n = 64;
  cfg.blocks_x = 4;
  cfg.blocks_y = 4;
  cfg.max_real_block = 16;
  cfg.max_iterations = iters;
  return cfg;
}

TEST(IterationDriver, CompletionCallbackFiresOnce) {
  charm::Runtime rt(pes(2));
  Jacobi2D app(rt, tiny(5));
  int completions = 0;
  app.driver().set_on_complete([&] { ++completions; });
  app.start();
  rt.run();
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(app.driver().finished());
}

TEST(IterationDriver, HooksFireAtExactIteration) {
  charm::Runtime rt(pes(2));
  Jacobi2D app(rt, tiny(8));
  std::vector<int> fired;
  app.driver().at_iteration(3, [&](charm::Runtime&) { fired.push_back(3); });
  app.driver().at_iteration(6, [&](charm::Runtime&) { fired.push_back(6); });
  app.start();
  rt.run();
  EXPECT_EQ(fired, (std::vector<int>{3, 6}));
}

TEST(IterationDriver, HookFiresOnlyOnce) {
  // Even when the iteration re-runs after a failure rollback, a hook does
  // not fire twice.
  charm::Runtime rt(pes(2));
  Jacobi2D app(rt, tiny(10));
  int fired = 0;
  app.driver().set_disk_checkpoint_period(3);
  app.driver().at_iteration(4, [&](charm::Runtime& r) {
    ++fired;
    r.fail_and_recover();  // rolls back to iteration 3; 4 re-runs
  });
  app.start();
  rt.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(app.driver().finished());
}

TEST(IterationDriver, EndTimesMonotone) {
  charm::Runtime rt(pes(2));
  Jacobi2D app(rt, tiny(10));
  app.start();
  rt.run();
  const auto& times = app.driver().iteration_end_times();
  ASSERT_EQ(times.size(), 10u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
}

TEST(IterationDriver, RescaleIterationsRecorded) {
  charm::Runtime rt(pes(4));
  Jacobi2D app(rt, tiny(10));
  app.driver().at_iteration(4, [](charm::Runtime& r) { r.ccs().request_rescale(2); });
  app.start();
  rt.run();
  ASSERT_EQ(app.driver().rescale_iterations().size(), 1u);
  EXPECT_EQ(app.driver().rescale_iterations()[0], 4);
}

TEST(IterationDriver, LbPeriodPausesButCompletes) {
  charm::Runtime rt(pes(4));
  Jacobi2D with_lb(rt, tiny(9));
  with_lb.driver().set_lb_period(3);
  with_lb.start();
  rt.run();
  EXPECT_TRUE(with_lb.driver().finished());

  charm::Runtime rt2(pes(4));
  Jacobi2D without(rt2, tiny(9));
  without.start();
  rt2.run();
  EXPECT_GT(rt.now(), rt2.now());  // LB steps cost virtual time
}

TEST(IterationDriver, RejectsBadArguments) {
  charm::Runtime rt(pes(2));
  JacobiConfig cfg = tiny(5);
  cfg.max_iterations = 5;
  Jacobi2D app(rt, cfg);
  EXPECT_THROW(app.driver().at_iteration(2, nullptr), PreconditionError);
  EXPECT_THROW(app.driver().set_disk_checkpoint_period(-1), PreconditionError);
}

}  // namespace
}  // namespace ehpc::apps
