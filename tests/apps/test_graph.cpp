// The power-law graph workload: deterministic Chung-Lu edge generation,
// hub-skewed degree structure, and the placement-independence discipline —
// every rank value must be a pure function of the config, bit-identical
// across PE counts, load balancing, and rescales.

#include "apps/graph.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "charm/runtime.hpp"
#include "common/error.hpp"

namespace ehpc::apps {
namespace {

GraphConfig small_config() {
  GraphConfig config;
  config.vertices = 256;
  config.parts = 16;
  config.skew = 0.9;
  config.max_iterations = 6;
  return config;
}

std::vector<double> run_ranks(const GraphConfig& config,
                              charm::RuntimeConfig rc, int lb_period = 0) {
  charm::Runtime rt(rc);
  Graph app(rt, config);
  if (lb_period > 0) app.driver().set_lb_period(lb_period);
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  return app.ranks();
}

TEST(Graph, BuildsTheConfiguredShape) {
  charm::RuntimeConfig rc;
  rc.num_pes = 2;
  charm::Runtime rt(rc);
  const GraphConfig config = small_config();
  Graph app(rt, config);
  // Every vertex has at least one out-edge; the total tracks the degree
  // budget (vertices * avg_degree) within rounding slack.
  EXPECT_GE(app.total_edges(), config.vertices);
  EXPECT_LE(app.total_edges(),
            2 * static_cast<std::int64_t>(config.vertices * config.avg_degree));
  EXPECT_GT(app.cut_edges(), 0);
  EXPECT_LT(app.cut_edges(), app.total_edges());
  EXPECT_EQ(app.part_of(0), 0);
  EXPECT_EQ(app.part_of(config.vertices - 1), config.parts - 1);
  // Per-part vertex counts tile the range exactly.
  int covered = 0;
  for (int p = 0; p < config.parts; ++p) {
    covered += app.part_topo(p).num_vertices;
  }
  EXPECT_EQ(covered, config.vertices);
}

TEST(Graph, SkewConcentratesOutDegreesOnHubs) {
  charm::RuntimeConfig rc;
  rc.num_pes = 1;
  charm::Runtime rt_uniform(rc);
  charm::Runtime rt_skewed(rc);
  GraphConfig uniform = small_config();
  uniform.skew = 0.0;
  GraphConfig skewed = small_config();
  skewed.skew = 0.9;
  const Graph flat_app(rt_uniform, uniform);
  const Graph hub_app(rt_skewed, skewed);
  // skew 0: every vertex gets the same (rounded) degree.
  EXPECT_EQ(flat_app.max_out_degree(),
            static_cast<int>(std::lround(uniform.avg_degree)));
  // skew 0.9: vertex 0 is a hub far above the mean.
  EXPECT_GT(hub_app.max_out_degree(), 4 * flat_app.max_out_degree());
  EXPECT_EQ(hub_app.out_degree(0), hub_app.max_out_degree());
}

TEST(Graph, StubDrawIsDeterministicAndInRange) {
  for (int v = 0; v < 64; ++v) {
    for (int k = 0; k < 4; ++k) {
      const double r = Graph::stub_draw(2025, v, k);
      EXPECT_GE(r, 0.0);
      EXPECT_LT(r, 1.0);
      EXPECT_EQ(r, Graph::stub_draw(2025, v, k));
    }
  }
  EXPECT_NE(Graph::stub_draw(2025, 1, 0), Graph::stub_draw(2025, 2, 0));
  EXPECT_NE(Graph::stub_draw(2025, 1, 0), Graph::stub_draw(2026, 1, 0));
}

TEST(Graph, RanksAreDeterministicAcrossRuns) {
  charm::RuntimeConfig rc;
  rc.num_pes = 4;
  const auto a = run_ranks(small_config(), rc);
  const auto b = run_ranks(small_config(), rc);
  EXPECT_EQ(a, b);
}

TEST(Graph, RanksArePlacementIndependentAcrossPeCounts) {
  // The acceptance discipline for every new workload: identical results on
  // 1 PE and many PEs, with and without periodic load balancing. Bitwise —
  // the fixed inbox application order makes FP summation order a function
  // of the graph alone.
  charm::RuntimeConfig rc1;
  rc1.num_pes = 1;
  const auto serial = run_ranks(small_config(), rc1);

  charm::RuntimeConfig rc8;
  rc8.num_pes = 8;
  EXPECT_EQ(serial, run_ranks(small_config(), rc8));

  charm::RuntimeConfig lb;
  lb.num_pes = 8;
  lb.load_balancer = "greedy";
  EXPECT_EQ(serial, run_ranks(small_config(), lb, /*lb_period=*/2));

  charm::RuntimeConfig comm;
  comm.num_pes = 8;
  comm.pes_per_node = 2;
  comm.load_balancer = "commrefine";
  comm.network = net::make_network_model("fattree", /*oversub=*/4.0);
  EXPECT_EQ(serial, run_ranks(small_config(), comm, /*lb_period=*/2));
}

TEST(Graph, HubsAccumulateRank) {
  charm::RuntimeConfig rc;
  rc.num_pes = 2;
  const auto ranks = run_ranks(small_config(), rc);
  ASSERT_EQ(ranks.size(), 256u);
  // Edge targets follow the same power law as the degrees, so vertex 0
  // receives far more probability mass than the tail.
  EXPECT_GT(ranks[0], 4.0 * ranks[255]);
  for (const double r : ranks) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GT(r, 0.0);
  }
}

TEST(Graph, RanksSurviveARescaleBitForBit) {
  const GraphConfig config = small_config();
  charm::RuntimeConfig rc;
  rc.num_pes = 2;
  const auto undisturbed = run_ranks(config, rc);

  charm::Runtime rt(rc);
  Graph app(rt, config);
  app.driver().at_iteration(2, [](charm::Runtime& r) {
    r.ccs().request_rescale(6);
  });
  app.start();
  rt.run();
  ASSERT_TRUE(app.driver().finished());
  ASSERT_TRUE(rt.last_rescale().has_value());
  EXPECT_EQ(rt.num_pes(), 6);
  EXPECT_EQ(app.ranks(), undisturbed);
}

TEST(Graph, ActiveVertexReductionStaysInRange) {
  charm::RuntimeConfig rc;
  rc.num_pes = 4;
  charm::Runtime rt(rc);
  const GraphConfig config = small_config();
  Graph app(rt, config);
  app.start();
  rt.run();
  ASSERT_TRUE(app.driver().finished());
  const double active = app.active_last_iteration();
  EXPECT_GE(active, 0.0);
  EXPECT_LE(active, static_cast<double>(config.vertices));
  // Integer-valued by construction (counts contribute exactly).
  EXPECT_EQ(active, std::floor(active));
}

TEST(Graph, RejectsDegenerateConfigs) {
  charm::RuntimeConfig rc;
  rc.num_pes = 1;
  charm::Runtime rt(rc);
  GraphConfig config = small_config();
  config.parts = config.vertices + 1;  // more parts than vertices
  EXPECT_THROW(Graph(rt, config), PreconditionError);
  config = small_config();
  config.vertices = 0;
  EXPECT_THROW(Graph(rt, config), PreconditionError);
  config = small_config();
  config.skew = -0.5;
  EXPECT_THROW(Graph(rt, config), PreconditionError);
}

}  // namespace
}  // namespace ehpc::apps
