#include "apps/jacobi2d.hpp"

#include <gtest/gtest.h>

namespace ehpc::apps {
namespace {

charm::RuntimeConfig pes(int n) {
  charm::RuntimeConfig cfg;
  cfg.num_pes = n;
  cfg.pes_per_node = 4;
  return cfg;
}

JacobiConfig tiny(int iters = 5) {
  JacobiConfig cfg;
  cfg.grid_n = 64;
  cfg.blocks_x = 4;
  cfg.blocks_y = 4;
  cfg.max_real_block = 16;  // full resolution for 64/4
  cfg.max_iterations = iters;
  return cfg;
}

TEST(JacobiBlock, StripAndGhostRoundTrip) {
  JacobiBlock a(4, 4, 1, false);
  JacobiBlock b(4, 4, 1, false);
  // Give block a a recognizable right edge via its hot top boundary trick:
  // instead, write through apply_ghost and read back via strip.
  std::vector<double> left(4, 2.5);
  a.apply_ghost(JacobiBlock::kLeft, left);
  EXPECT_TRUE(a.all_ghosts_received());
  // b's strip toward a is its right column; with zero init it is zero.
  auto strip = b.strip(JacobiBlock::kRight);
  EXPECT_EQ(strip.size(), 4u);
  for (double v : strip) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(JacobiBlock, ComputeAveragesNeighbors) {
  // 1x1 block surrounded by ghosts: new value = mean of 4 ghosts.
  JacobiBlock blk(1, 1, 4, false);
  blk.mark_started();
  blk.apply_ghost(JacobiBlock::kLeft, {1.0});
  blk.apply_ghost(JacobiBlock::kRight, {2.0});
  blk.apply_ghost(JacobiBlock::kUp, {3.0});
  blk.apply_ghost(JacobiBlock::kDown, {4.0});
  ASSERT_TRUE(blk.ready_to_compute());
  const double residual = blk.compute();
  EXPECT_DOUBLE_EQ(blk.cell(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(residual, 2.5);
  EXPECT_EQ(blk.iteration(), 1);
  EXPECT_FALSE(blk.started());
}

TEST(JacobiBlock, TopBoundaryIsHot) {
  JacobiBlock blk(2, 2, 0, true);
  blk.mark_started();
  const double r1 = blk.compute();
  EXPECT_GT(r1, 0.0);
  // Heat flows down from the fixed boundary.
  EXPECT_GT(blk.cell(0, 0), 0.0);
}

TEST(Jacobi2D, RunsToCompletion) {
  charm::Runtime rt(pes(4));
  Jacobi2D app(rt, tiny());
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  EXPECT_EQ(app.driver().iterations_done(), 5);
  EXPECT_EQ(app.driver().iteration_end_times().size(), 5u);
}

TEST(Jacobi2D, ResidualDecreasesOverIterations) {
  charm::Runtime rt(pes(4));
  JacobiConfig cfg = tiny(2);
  Jacobi2D app2(rt, cfg);
  app2.start();
  rt.run();
  const double early = app2.residual();

  charm::Runtime rt2(pes(4));
  cfg.max_iterations = 30;
  Jacobi2D app30(rt2, cfg);
  app30.start();
  rt2.run();
  EXPECT_LT(app30.residual(), early);
  EXPECT_GT(app30.residual(), 0.0);
}

TEST(Jacobi2D, DeterministicAcrossRuns) {
  auto run_once = [] {
    charm::Runtime rt(pes(4));
    Jacobi2D app(rt, tiny(8));
    app.start();
    rt.run();
    return std::make_pair(app.residual(), rt.now());
  };
  auto [r1, t1] = run_once();
  auto [r2, t2] = run_once();
  EXPECT_DOUBLE_EQ(r1, r2);
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(Jacobi2D, ResidualIndependentOfPeCount) {
  // Numerics must not depend on the machine model.
  auto residual_with = [](int n_pes) {
    charm::Runtime rt(pes(n_pes));
    Jacobi2D app(rt, tiny(10));
    app.start();
    rt.run();
    return app.residual();
  };
  EXPECT_DOUBLE_EQ(residual_with(1), residual_with(4));
  EXPECT_DOUBLE_EQ(residual_with(4), residual_with(8));
}

TEST(Jacobi2D, MorePesRunFaster) {
  auto elapsed_with = [](int n_pes) {
    charm::Runtime rt(pes(n_pes));
    JacobiConfig cfg = tiny(8);
    cfg.grid_n = 2048;  // compute-heavy enough to scale
    cfg.blocks_x = cfg.blocks_y = 8;
    cfg.max_real_block = 16;
    Jacobi2D app(rt, cfg);
    app.start();
    rt.run();
    return rt.now();
  };
  const double t1 = elapsed_with(1);
  const double t4 = elapsed_with(4);
  const double t16 = elapsed_with(16);
  EXPECT_GT(t1, t4);
  EXPECT_GT(t4, t16);
}

TEST(Jacobi2D, ScaledResolutionKeepsModelBytes) {
  charm::Runtime rt(pes(4));
  JacobiConfig cfg;
  cfg.grid_n = 1024;          // model block 256x256
  cfg.blocks_x = cfg.blocks_y = 4;
  cfg.max_real_block = 32;    // real block 32x32 (divisor 8)
  cfg.max_iterations = 3;
  Jacobi2D app(rt, cfg);
  EXPECT_DOUBLE_EQ(app.model_bytes(), 1024.0 * 1024.0 * 8.0);
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
}

TEST(Jacobi2D, RejectsIndivisibleGrid) {
  charm::Runtime rt(pes(2));
  JacobiConfig cfg = tiny();
  cfg.grid_n = 100;
  cfg.blocks_x = 3;
  EXPECT_THROW(Jacobi2D(rt, cfg), PreconditionError);
}

TEST(Jacobi2D, LbPeriodDoesNotChangeNumerics) {
  auto residual_with_lb = [](int period) {
    charm::Runtime rt(pes(4));
    Jacobi2D app(rt, tiny(9));
    app.driver().set_lb_period(period);
    app.start();
    rt.run();
    return app.residual();
  };
  EXPECT_DOUBLE_EQ(residual_with_lb(0), residual_with_lb(3));
}

}  // namespace
}  // namespace ehpc::apps
