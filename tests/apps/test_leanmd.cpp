#include "apps/leanmd.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ehpc::apps {
namespace {

charm::RuntimeConfig pes(int n) {
  charm::RuntimeConfig cfg;
  cfg.num_pes = n;
  cfg.pes_per_node = 4;
  return cfg;
}

LeanMdConfig tiny(int iters = 5) {
  LeanMdConfig cfg;
  cfg.cells_x = cfg.cells_y = cfg.cells_z = 2;
  cfg.atoms_per_cell = 50;
  cfg.real_atoms_per_cell = 4;
  cfg.max_iterations = iters;
  return cfg;
}

TEST(MdCell, InitialAtomsInsideCellBox) {
  MdCell cell(8, 6, 7, {2.0, 3.0, 4.0});
  auto pos = cell.positions();
  ASSERT_EQ(pos.size(), 24u);
  for (int a = 0; a < 8; ++a) {
    EXPECT_GE(pos[3 * a + 0], 2.0);
    EXPECT_LT(pos[3 * a + 0], 3.0);
    EXPECT_GE(pos[3 * a + 1], 3.0);
    EXPECT_LT(pos[3 * a + 1], 4.0);
    EXPECT_GE(pos[3 * a + 2], 4.0);
    EXPECT_LT(pos[3 * a + 2], 5.0);
  }
}

TEST(MdCell, InteractAccumulatesAndCounts) {
  MdCell cell(4, 2, 1, {0.0, 0.0, 0.0});
  MdCell other(4, 2, 2, {1.0, 0.0, 0.0});
  EXPECT_FALSE(cell.all_received());
  cell.interact(other.positions());
  EXPECT_FALSE(cell.all_received());
  cell.interact(other.positions());
  EXPECT_TRUE(cell.all_received());
}

TEST(MdCell, IntegrateAdvancesStateAndResets) {
  MdCell cell(4, 0, 1, {0.0, 0.0, 0.0});
  cell.mark_started();
  ASSERT_TRUE(cell.ready_to_integrate());
  const double ke = cell.integrate(1e-3);
  EXPECT_GE(ke, 0.0);
  EXPECT_EQ(cell.iteration(), 1);
  EXPECT_FALSE(cell.started());
}

TEST(MdCell, ForcesMoveAtoms) {
  MdCell cell(4, 0, 3, {0.0, 0.0, 0.0});
  auto before = cell.positions();
  cell.mark_started();
  cell.integrate(1e-3);
  auto after = cell.positions();
  bool any_moved = false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST(MdCell, PupRoundTrip) {
  MdCell a(4, 3, 11, {1.0, 1.0, 1.0});
  a.mark_started();
  std::vector<std::byte> buf;
  charm::Pup packer = charm::Pup::packer(buf);
  a.pup(packer);
  MdCell b(1, 0, 0, {0.0, 0.0, 0.0});
  charm::Pup unpacker = charm::Pup::unpacker(buf);
  b.pup(unpacker);
  EXPECT_EQ(b.num_atoms(), 4);
  EXPECT_TRUE(b.started());
  EXPECT_EQ(b.positions(), a.positions());
}

TEST(LeanMd, RunsToCompletion) {
  charm::Runtime rt(pes(4));
  LeanMd app(rt, tiny());
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  EXPECT_EQ(app.driver().iterations_done(), 5);
}

TEST(LeanMd, EnergyIsFiniteAndPositive) {
  charm::Runtime rt(pes(4));
  LeanMd app(rt, tiny(8));
  app.start();
  rt.run();
  EXPECT_TRUE(std::isfinite(app.energy()));
  EXPECT_GT(app.energy(), 0.0);  // LJ repulsion injects kinetic energy
}

TEST(LeanMd, DeterministicAcrossRuns) {
  auto run_once = [] {
    charm::Runtime rt(pes(2));
    LeanMd app(rt, tiny(6));
    app.start();
    rt.run();
    return std::make_pair(app.energy(), rt.now());
  };
  auto [e1, t1] = run_once();
  auto [e2, t2] = run_once();
  EXPECT_DOUBLE_EQ(e1, e2);
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(LeanMd, EnergyIndependentOfPeCount) {
  auto energy_with = [](int n_pes) {
    charm::Runtime rt(pes(n_pes));
    LeanMd app(rt, tiny(6));
    app.start();
    rt.run();
    return app.energy();
  };
  EXPECT_DOUBLE_EQ(energy_with(1), energy_with(4));
}

TEST(LeanMd, ComputeBoundScalesWell) {
  auto elapsed_with = [](int n_pes) {
    charm::RuntimeConfig rc = pes(n_pes);
    charm::Runtime rt(rc);
    LeanMdConfig cfg = tiny(6);
    cfg.cells_x = cfg.cells_y = 4;
    cfg.cells_z = 4;
    cfg.atoms_per_cell = 400;
    LeanMd app(rt, cfg);
    app.start();
    rt.run();
    return rt.now();
  };
  const double t2 = elapsed_with(2);
  const double t8 = elapsed_with(8);
  // Compute-intensive: near-linear speedup expected, at least 2.5x for 4x PEs.
  EXPECT_GT(t2 / t8, 2.5);
}

TEST(LeanMd, SurvivesRescale) {
  charm::Runtime rt(pes(8));
  LeanMd app(rt, tiny(10));
  app.driver().at_iteration(3, [](charm::Runtime& r) { r.ccs().request_rescale(4); });
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  EXPECT_EQ(rt.num_pes(), 4);
  EXPECT_TRUE(std::isfinite(app.energy()));
}

TEST(LeanMd, RescalePreservesNumerics) {
  auto energy_with_rescale = [](bool rescale) {
    charm::Runtime rt(pes(8));
    LeanMd app(rt, tiny(10));
    if (rescale) {
      app.driver().at_iteration(3,
                                [](charm::Runtime& r) { r.ccs().request_rescale(4); });
    }
    app.start();
    rt.run();
    return app.energy();
  };
  EXPECT_DOUBLE_EQ(energy_with_rescale(true), energy_with_rescale(false));
}

}  // namespace
}  // namespace ehpc::apps
