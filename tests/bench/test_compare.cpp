#include "bench/lib/compare.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench/lib/runner.hpp"

namespace ehpc::bench {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& leaf) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("ehk_cmp_") + info->name() + "_" + leaf);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
};

Reporter make_run(double value, int extra_rows = 0) {
  Reporter rep("demo");
  Table& t = rep.add_table("metrics", "Metrics", {"x", "util"});
  t.add_row({"1", format_double(value, 6)});
  t.add_row({"2", "0.5"});
  for (int i = 0; i < extra_rows; ++i) t.add_row({"9", "9"});
  rep.set_wall_ms(100.0);
  rep.set_config({{"repeats", "10"}});
  return rep;
}

void write_run(const fs::path& dir, const Reporter& rep,
               const std::string& profile = "quick") {
  write_outputs({rep}, dir.string(), profile);
}

TEST(CompareTables, ExactMatchPasses) {
  Table a({"x", "y"});
  a.add_row({"1", "2.0"});
  Table b({"x", "y"});
  b.add_row({"1", "2.00000001"});
  EXPECT_TRUE(compare_tables(a, b, CompareOptions{}).empty());
}

TEST(CompareTables, RelativeToleranceBoundsNumericDrift) {
  Table a({"v"});
  a.add_row({"100"});
  Table b({"v"});
  b.add_row({"104"});
  CompareOptions opts;
  opts.rel_tol = 0.05;
  EXPECT_TRUE(compare_tables(a, b, opts).empty());
  opts.rel_tol = 0.01;
  const auto issues = compare_tables(a, b, opts);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("col 'v'"), std::string::npos);
}

TEST(CompareTables, NonNumericCellsCompareExactly) {
  Table a({"policy"});
  a.add_row({"elastic"});
  Table b({"policy"});
  b.add_row({"moldable"});
  EXPECT_EQ(compare_tables(a, b, CompareOptions{}).size(), 1u);
}

TEST(CompareTables, HeaderAndRowCountMismatchReported) {
  Table a({"x", "y"});
  Table renamed({"x", "z"});
  EXPECT_EQ(compare_tables(a, renamed, CompareOptions{}).size(), 1u);

  Table b({"x", "y"});
  b.add_row({"1", "2"});
  const auto issues = compare_tables(a, b, CompareOptions{});
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("row count"), std::string::npos);
}

TEST(CompareDirs, IdenticalRunsPass) {
  TempDir base("base"), cand("cand");
  write_run(base.path, make_run(0.9));
  write_run(cand.path, make_run(0.9));
  const auto report = compare_dirs(base.path.string(), cand.path.string(),
                                   CompareOptions{});
  EXPECT_TRUE(report.ok()) << report.to_text();
  EXPECT_EQ(report.benches_compared, 1);
  EXPECT_EQ(report.tables_compared, 1);
  EXPECT_GT(report.cells_compared, 0);
}

TEST(CompareDirs, ValueDriftBeyondToleranceFails) {
  TempDir base("base"), cand("cand");
  write_run(base.path, make_run(0.9));
  write_run(cand.path, make_run(0.7));
  const auto report = compare_dirs(base.path.string(), cand.path.string(),
                                   CompareOptions{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.mismatches[0].bench, "demo");
  EXPECT_EQ(report.mismatches[0].table, "metrics");
}

TEST(CompareDirs, ShapeOnlyModeIgnoresValueDrift) {
  TempDir base("base"), cand("cand");
  write_run(base.path, make_run(0.9));
  write_run(cand.path, make_run(0.7));
  CompareOptions opts;
  opts.values = false;
  const auto report =
      compare_dirs(base.path.string(), cand.path.string(), opts);
  EXPECT_TRUE(report.ok()) << report.to_text();
  EXPECT_EQ(report.cells_compared, 0);
}

TEST(CompareDirs, ShapeOnlyModeStillCatchesRowCountChange) {
  TempDir base("base"), cand("cand");
  write_run(base.path, make_run(0.9));
  write_run(cand.path, make_run(0.9, /*extra_rows=*/2));
  CompareOptions opts;
  opts.values = false;
  const auto report =
      compare_dirs(base.path.string(), cand.path.string(), opts);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.mismatches[0].detail.find("shape"), std::string::npos);
}

TEST(CompareDirs, MissingTableFails) {
  TempDir base("base"), cand("cand");
  write_run(base.path, make_run(0.9));
  Reporter other("demo");
  other.add_table("renamed", "Renamed", {"x", "util"});
  other.set_config({{"repeats", "10"}});
  write_run(cand.path, other);
  const auto report = compare_dirs(base.path.string(), cand.path.string(),
                                   CompareOptions{});
  ASSERT_FALSE(report.ok());
  bool missing_from_cand = false, missing_from_base = false;
  for (const auto& m : report.mismatches) {
    if (m.detail == "table missing from candidate") missing_from_cand = true;
    if (m.detail == "table missing from baseline") missing_from_base = true;
  }
  EXPECT_TRUE(missing_from_cand);
  EXPECT_TRUE(missing_from_base);
}

TEST(CompareDirs, MissingBenchAndProfileMismatchFail) {
  TempDir base("base"), cand("cand");
  write_run(base.path, make_run(0.9), "quick");
  Reporter other("another_bench");
  other.add_table("t", "t", {"a"});
  write_run(cand.path, other, "default");
  const auto report = compare_dirs(base.path.string(), cand.path.string(),
                                   CompareOptions{});
  ASSERT_FALSE(report.ok());
  bool profile = false, bench_missing = false;
  for (const auto& m : report.mismatches) {
    if (m.detail.find("profile") != std::string::npos) profile = true;
    if (m.bench == "demo" && m.detail == "bench missing from candidate")
      bench_missing = true;
  }
  EXPECT_TRUE(profile);
  EXPECT_TRUE(bench_missing);
}

TEST(CompareDirs, ConfigDriftFails) {
  TempDir base("base"), cand("cand");
  write_run(base.path, make_run(0.9));
  Reporter drifted = make_run(0.9);
  drifted.set_config({{"repeats", "40"}});
  write_run(cand.path, drifted);
  const auto report = compare_dirs(base.path.string(), cand.path.string(),
                                   CompareOptions{});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.mismatches[0].detail.find("config changed"),
            std::string::npos);
}

TEST(CompareDirs, WallClockComparedOnlyOnRequest) {
  TempDir base("base"), cand("cand");
  Reporter slow = make_run(0.9);
  slow.set_wall_ms(1000.0);
  write_run(base.path, make_run(0.9));  // wall_ms = 100
  write_run(cand.path, slow);
  EXPECT_TRUE(compare_dirs(base.path.string(), cand.path.string(),
                           CompareOptions{})
                  .ok());
  CompareOptions opts;
  opts.compare_wall = true;
  EXPECT_FALSE(
      compare_dirs(base.path.string(), cand.path.string(), opts).ok());
}

TEST(CompareDirs, CorruptCsvReportsMismatchInsteadOfThrowing) {
  TempDir base("base"), cand("cand");
  write_run(base.path, make_run(0.9));
  write_run(cand.path, make_run(0.9));
  std::ofstream(cand.path / "demo" / "metrics.csv")
      << "x,util\n\"truncated";  // unterminated quoted cell
  const auto report = compare_dirs(base.path.string(), cand.path.string(),
                                   CompareOptions{});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.mismatches[0].detail.find("cannot parse csv"),
            std::string::npos);
}

TEST(CompareDirs, UnreadableDirectoryReportsMismatch) {
  TempDir base("base");
  write_run(base.path, make_run(0.9));
  const auto report = compare_dirs(base.path.string(), "/nonexistent_dir_xyz",
                                   CompareOptions{});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.mismatches[0].detail.find("summary.json"),
            std::string::npos);
}

}  // namespace
}  // namespace ehpc::bench
