#include "bench/lib/json.hpp"

#include <gtest/gtest.h>

namespace ehpc::bench {
namespace {

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(Json::parse("null").type(), Json::Type::kNull);
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, NumbersDumpCompactly) {
  EXPECT_EQ(Json(5).dump(), "5");
  EXPECT_EQ(Json(5.0).dump(), "5");
  EXPECT_EQ(Json(0.25).dump(), "0.25");
  EXPECT_EQ(Json(-3).dump(), "-3");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json obj = Json::object();
  obj["zebra"] = Json(1);
  obj["apple"] = Json(2);
  obj["mid"] = Json(3);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":2,\"mid\":3}");
}

TEST(Json, NestedRoundTrip) {
  Json root = Json::object();
  root["name"] = Json("bench \"quoted\"\nline");
  root["ok"] = Json(true);
  Json arr = Json::array();
  arr.push_back(Json(1));
  arr.push_back(Json::object());
  root["items"] = std::move(arr);

  const std::string compact = root.dump();
  const Json back = Json::parse(compact);
  EXPECT_EQ(back.at("name").as_string(), "bench \"quoted\"\nline");
  EXPECT_TRUE(back.at("ok").as_bool());
  ASSERT_EQ(back.at("items").elements().size(), 2u);
  EXPECT_DOUBLE_EQ(back.at("items").elements()[0].as_number(), 1.0);
  // Pretty output parses back to the same document too.
  EXPECT_EQ(Json::parse(root.dump(2)).dump(), compact);
}

TEST(Json, ParseErrorsCarryPosition) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":}"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("{} trailing"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(Json(1).as_string(), JsonError);
  EXPECT_THROW(Json("x").as_number(), JsonError);
  EXPECT_THROW(Json().at("k"), JsonError);
  Json obj = Json::object();
  EXPECT_THROW(obj.at("absent"), JsonError);
  EXPECT_EQ(obj.find("absent"), nullptr);
}

TEST(Json, UnicodeEscapeParses) {
  EXPECT_EQ(Json::parse("\"a\\u0041b\"").as_string(), "aAb");
  // Control characters escape on dump and survive the round trip.
  const Json s(std::string("\x01tab\t"));
  EXPECT_EQ(Json::parse(s.dump()).as_string(), "\x01tab\t");
}

}  // namespace
}  // namespace ehpc::bench
