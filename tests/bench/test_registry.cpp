#include "bench/lib/registry.hpp"

#include <gtest/gtest.h>

#include "bench/lib/runner.hpp"
#include "common/error.hpp"

namespace ehpc::bench {
namespace {

BenchDef fake_bench() {
  BenchDef def;
  def.name = "fake_bench";
  def.description = "records its effective flags";
  def.flags = {{"iters", "100", "iteration count"},
               {"seed", "7", "rng seed"}};
  def.quick_overrides = {{"iters", "5"}};
  def.fn = [](Reporter& rep, const Config& cfg) {
    Table& t = rep.add_table("seen", "Effective flags", {"key", "value"});
    t.add_row({"iters", cfg.get_or("iters", "?")});
    t.add_row({"seed", cfg.get_or("seed", "?")});
  };
  return def;
}

// The production registry is registered-into by driver TUs; tests register a
// throwaway bench through the same static-init path to prove it works.
const RegisterBench kTestRegistration{fake_bench()};

TEST(Registry, StaticRegistrationIsVisible) {
  const BenchDef* def = Registry::instance().find("fake_bench");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->description, "records its effective flags");
  EXPECT_EQ(Registry::instance().find("no_such_bench"), nullptr);
}

TEST(Registry, DuplicateNameRejected) {
  EXPECT_THROW(Registry::instance().add(fake_bench()), PreconditionError);
}

TEST(Runner, DefaultsMaterialisedIntoConfig) {
  const Reporter rep = run_bench(fake_bench(), Config(), /*quick=*/false);
  const Table& seen = rep.find("seen")->table;
  EXPECT_EQ(seen.row(0), (std::vector<std::string>{"iters", "100"}));
  EXPECT_EQ(seen.row(1), (std::vector<std::string>{"seed", "7"}));
  EXPECT_EQ(rep.config().at("iters"), "100");
  EXPECT_GE(rep.wall_ms(), 0.0);
}

TEST(Runner, QuickProfileOverridesDefaultsButNotUserValues) {
  const Reporter quick = run_bench(fake_bench(), Config(), /*quick=*/true);
  EXPECT_EQ(quick.config().at("iters"), "5");
  EXPECT_EQ(quick.config().at("seed"), "7");

  Config user;
  user.set("iters", "42");
  const Reporter pinned = run_bench(fake_bench(), user, /*quick=*/true);
  EXPECT_EQ(pinned.config().at("iters"), "42");
}

TEST(Runner, UnknownFlagIsAHardError) {
  const BenchDef def = fake_bench();
  const char* argv[] = {"fake_bench", "itres=5"};  // misspelled
  EXPECT_THROW(parse_bench_config(def, 2, argv), ConfigError);
  try {
    parse_bench_config(def, 2, argv);
  } catch (const ConfigError& err) {
    EXPECT_NE(std::string(err.what()).find("itres"), std::string::npos);
  }
}

TEST(Runner, CommonHarnessFlagsAccepted) {
  const BenchDef def = fake_bench();
  const char* argv[] = {"fake_bench", "--quick", "csv=true", "out_dir=/tmp/x"};
  const Config cfg = parse_bench_config(def, 4, argv);
  EXPECT_TRUE(cfg.get_bool("quick", false));
  EXPECT_TRUE(cfg.get_bool("csv", false));
}

TEST(Runner, PositionalArgumentsRejected) {
  const BenchDef def = fake_bench();
  const char* argv[] = {"fake_bench", "stray"};
  EXPECT_THROW(parse_bench_config(def, 2, argv), ConfigError);
}

TEST(Runner, UsageListsFlagsAndDefaults) {
  const std::string text = usage(fake_bench());
  EXPECT_NE(text.find("iters=100"), std::string::npos);
  EXPECT_NE(text.find("iteration count"), std::string::npos);
  EXPECT_NE(text.find("out_dir"), std::string::npos);
}

}  // namespace
}  // namespace ehpc::bench
