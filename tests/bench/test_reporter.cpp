#include "bench/lib/reporter.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench/lib/runner.hpp"
#include "common/error.hpp"

namespace ehpc::bench {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Temp directory unique to the current test, removed on destruction.
struct TempDir {
  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("ehk_bench_") + info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
};

Reporter sample_reporter() {
  Reporter rep("demo_bench");
  Table& t = rep.add_table("alpha", "Alpha title", {"x", "y"});
  t.add_row({"1", "0.5"});
  t.add_row({"2", "0.25"});
  Table& u = rep.add_table("beta", "Beta, with commas", {"label", "value"});
  u.add_row({"needs,quoting", "3"});
  rep.note("a closing note");
  rep.set_wall_ms(12.5);
  rep.set_config({{"iters", "4"}, {"seed", "7"}});
  return rep;
}

TEST(Reporter, TextModeRendersTitlesTablesAndNotes) {
  const Reporter rep = sample_reporter();
  const std::string text = rep.to_text();
  EXPECT_NE(text.find("== Alpha title =="), std::string::npos);
  EXPECT_NE(text.find("== Beta, with commas =="), std::string::npos);
  EXPECT_NE(text.find("a closing note"), std::string::npos);
  EXPECT_LT(text.find("Alpha"), text.find("Beta"));
}

TEST(Reporter, CsvModeTagsEachTable) {
  const std::string csv = sample_reporter().to_csv();
  EXPECT_NE(csv.find("# table: alpha"), std::string::npos);
  EXPECT_NE(csv.find("# table: beta"), std::string::npos);
  EXPECT_NE(csv.find("\"needs,quoting\""), std::string::npos);
}

TEST(Reporter, TableReferencesStayValidAcrossAdds) {
  Reporter rep("ref_stability");
  Table& first = rep.add_table("t0", "t0", {"a"});
  for (int i = 1; i < 50; ++i) {
    rep.add_table("t" + std::to_string(i), "title", {"a"});
  }
  first.add_row({"still valid"});
  EXPECT_EQ(rep.find("t0")->table.rows(), 1u);
}

TEST(Reporter, RejectsDuplicateAndUnsafeIds) {
  Reporter rep("demo");
  rep.add_table("dup", "t", {"a"});
  EXPECT_THROW(rep.add_table("dup", "t", {"a"}), PreconditionError);
  EXPECT_THROW(rep.add_table("bad/slash", "t", {"a"}), PreconditionError);
  EXPECT_THROW(rep.add_table("", "t", {"a"}), PreconditionError);
  EXPECT_THROW(Reporter("spaces in name"), PreconditionError);
}

TEST(Reporter, CsvFilesRoundTripThroughParseCsv) {
  TempDir tmp;
  const Reporter rep = sample_reporter();
  rep.write_csvs(tmp.path.string());

  const Table alpha =
      parse_csv(read_file(tmp.path / "demo_bench" / "alpha.csv"));
  EXPECT_EQ(alpha.header(), rep.find("alpha")->table.header());
  ASSERT_EQ(alpha.rows(), 2u);
  EXPECT_EQ(alpha.row(1), rep.find("alpha")->table.row(1));

  const Table beta = parse_csv(read_file(tmp.path / "demo_bench" / "beta.csv"));
  EXPECT_EQ(beta.row(0)[0], "needs,quoting");
}

TEST(Reporter, SummaryJsonRoundTrip) {
  const Json entry = sample_reporter().summary_json();
  const Json back = Json::parse(entry.dump(2));
  EXPECT_EQ(back.at("bench").as_string(), "demo_bench");
  EXPECT_DOUBLE_EQ(back.at("wall_ms").as_number(), 12.5);
  EXPECT_EQ(back.at("config").at("iters").as_string(), "4");
  ASSERT_EQ(back.at("tables").elements().size(), 2u);
  const Json& alpha = back.at("tables").elements()[0];
  EXPECT_EQ(alpha.at("table").as_string(), "alpha");
  EXPECT_DOUBLE_EQ(alpha.at("rows").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(alpha.at("cols").as_number(), 2.0);
  EXPECT_EQ(alpha.at("csv").as_string(), "demo_bench/alpha.csv");
}

TEST(Reporter, WriteCsvsClearsStaleTables) {
  TempDir tmp;
  sample_reporter().write_csvs(tmp.path.string());
  ASSERT_TRUE(fs::exists(tmp.path / "demo_bench" / "beta.csv"));

  Reporter regenerated("demo_bench");
  regenerated.add_table("alpha", "Alpha title", {"x", "y"});
  regenerated.write_csvs(tmp.path.string());
  EXPECT_TRUE(fs::exists(tmp.path / "demo_bench" / "alpha.csv"));
  EXPECT_FALSE(fs::exists(tmp.path / "demo_bench" / "beta.csv"));
}

TEST(WriteOutputs, ProducesSummaryAndCsvs) {
  TempDir tmp;
  write_outputs({sample_reporter()}, tmp.path.string(), "quick");

  const Json summary = Json::parse(read_file(tmp.path / "summary.json"));
  EXPECT_DOUBLE_EQ(summary.at("schema_version").as_number(), 1.0);
  EXPECT_EQ(summary.at("profile").as_string(), "quick");
  ASSERT_EQ(summary.at("benches").elements().size(), 1u);
  EXPECT_TRUE(fs::exists(tmp.path / "demo_bench" / "alpha.csv"));
  EXPECT_TRUE(fs::exists(tmp.path / "demo_bench" / "beta.csv"));
}

}  // namespace
}  // namespace ehpc::bench
