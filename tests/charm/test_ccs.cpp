#include "charm/ccs.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ehpc::charm {
namespace {

TEST(CcsServer, EmptyByDefault) {
  CcsServer ccs;
  EXPECT_FALSE(ccs.has_pending());
  EXPECT_FALSE(ccs.take().has_value());
  EXPECT_EQ(ccs.commands_received(), 0);
}

TEST(CcsServer, TakeConsumesCommand) {
  CcsServer ccs;
  ccs.request_rescale(8);
  EXPECT_TRUE(ccs.has_pending());
  auto cmd = ccs.take();
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->target_pes, 8);
  EXPECT_FALSE(ccs.has_pending());
  EXPECT_FALSE(ccs.take().has_value());
}

TEST(CcsServer, NewerCommandSupersedesTarget) {
  CcsServer ccs;
  ccs.request_rescale(8);
  ccs.request_rescale(4);
  auto cmd = ccs.take();
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->target_pes, 4);
  EXPECT_EQ(ccs.commands_received(), 2);
}

TEST(CcsServer, SupersededAcksAllFire) {
  CcsServer ccs;
  int acks = 0;
  ccs.request_rescale(8, [&](const RescaleTiming&) { ++acks; });
  ccs.request_rescale(4, [&](const RescaleTiming&) { ++acks; });
  ccs.request_rescale(2, [&](const RescaleTiming&) { ++acks; });
  auto cmd = ccs.take();
  ASSERT_TRUE(cmd.has_value());
  RescaleTiming t;
  cmd->on_complete(t);
  EXPECT_EQ(acks, 3);
}

TEST(CcsServer, RejectsNonPositiveTarget) {
  CcsServer ccs;
  EXPECT_THROW(ccs.request_rescale(0), PreconditionError);
  EXPECT_THROW(ccs.request_rescale(-3), PreconditionError);
}

TEST(CcsServer, AckOptional) {
  CcsServer ccs;
  ccs.request_rescale(2);
  auto cmd = ccs.take();
  ASSERT_TRUE(cmd.has_value());
  EXPECT_FALSE(static_cast<bool>(cmd->on_complete));
}

}  // namespace
}  // namespace ehpc::charm
