#include "charm/checkpoint.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ehpc::charm {
namespace {

ElementRecord record(PeId pe, double modeled_bytes, std::size_t payload = 8) {
  ElementRecord rec;
  rec.array = 0;
  rec.elem = 0;
  rec.pe = pe;
  rec.payload.resize(payload);
  rec.modeled_bytes = modeled_bytes;
  return rec;
}

TEST(MemCheckpoint, PerPeVectorsSizedByRuntimePeCountNotMaxRecordPe) {
  // Records only on PEs 0 and 1 of a 4-PE runtime: the per-PE vectors used
  // to be sized by max observed PE + 1 (here 2), so the idle PEs 2 and 3
  // vanished from the slowest-PE stage computation. They must appear as
  // explicit zero entries.
  MemCheckpoint ckpt;
  ckpt.add(record(0, 100.0));
  ckpt.add(record(1, 50.0));
  ckpt.add(record(1, 25.0));

  const auto bytes = ckpt.modeled_bytes_per_pe(4);
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_DOUBLE_EQ(bytes[0], 100.0);
  EXPECT_DOUBLE_EQ(bytes[1], 75.0);
  EXPECT_DOUBLE_EQ(bytes[2], 0.0);
  EXPECT_DOUBLE_EQ(bytes[3], 0.0);

  const auto counts = ckpt.records_per_pe(4);
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 0u);
}

TEST(MemCheckpoint, EmptyCheckpointYieldsAllZeroEntries) {
  // An empty checkpoint used to produce empty vectors (a zero-cost stage
  // with no per-PE entries at all); now it yields num_pes explicit zeros.
  MemCheckpoint ckpt;
  EXPECT_TRUE(ckpt.empty());
  EXPECT_EQ(ckpt.modeled_bytes_per_pe(3).size(), 3u);
  EXPECT_EQ(ckpt.records_per_pe(3).size(), 3u);
  for (double b : ckpt.modeled_bytes_per_pe(3)) EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(MemCheckpoint, RecordOnNonexistentPeIsAPreconditionViolation) {
  // A record placed beyond the runtime PE count means the caller passed a
  // stale PE count (or the checkpoint holds a stale placement) — exactly
  // the recovery bug this guard exists to catch.
  MemCheckpoint ckpt;
  ckpt.add(record(5, 10.0));
  EXPECT_THROW(ckpt.modeled_bytes_per_pe(4), PreconditionError);
  EXPECT_THROW(ckpt.records_per_pe(4), PreconditionError);
  EXPECT_NO_THROW(ckpt.modeled_bytes_per_pe(6));
}

TEST(MemCheckpoint, NonPositivePeCountThrows) {
  MemCheckpoint ckpt;
  EXPECT_THROW(ckpt.modeled_bytes_per_pe(0), PreconditionError);
  EXPECT_THROW(ckpt.records_per_pe(-1), PreconditionError);
}

TEST(MemCheckpoint, TotalsTrackAddAndClear) {
  MemCheckpoint ckpt;
  ckpt.add(record(0, 100.0, 16));
  ckpt.add(record(1, 50.0, 8));
  EXPECT_DOUBLE_EQ(ckpt.total_modeled_bytes(), 150.0);
  EXPECT_EQ(ckpt.total_real_bytes(), 24u);
  ckpt.clear();
  EXPECT_TRUE(ckpt.empty());
  EXPECT_DOUBLE_EQ(ckpt.total_modeled_bytes(), 0.0);
  EXPECT_EQ(ckpt.total_real_bytes(), 0u);
}

}  // namespace
}  // namespace ehpc::charm
