// The comm-aware load-balancing seam: CommRefineLB's traffic-locality
// refinement, the guard waiver for comm-driven proposals, and the runtime
// plumbing that measures the object-communication graph and routes
// collective latencies through the NetworkModel interface.

#include "charm/load_balancer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "apps/graph.hpp"
#include "charm/runtime.hpp"
#include "net/network_model.hpp"

namespace ehpc::charm {
namespace {

LbObject object(int elem, double load, PeId pe) {
  LbObject o;
  o.elem = elem;
  o.load = load;
  o.current_pe = pe;
  return o;
}

TEST(CommRefineLb, RegisteredAsTheFourthStrategy) {
  const auto& names = load_balancer_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names.back(), "commrefine");
  const auto lb = make_load_balancer("commrefine");
  EXPECT_EQ(lb->name(), "CommRefineLB");
  EXPECT_TRUE(lb->comm_aware());
  // The pre-existing strategies stay compute-only.
  for (const char* name : {"null", "greedy", "refine"}) {
    EXPECT_FALSE(make_load_balancer(name)->comm_aware()) << name;
  }
}

TEST(CommRefineLb, WithoutMeasuredTrafficBehavesLikeRefine) {
  std::vector<LbObject> objects;
  for (int i = 0; i < 12; ++i) {
    objects.push_back(object(i, 0.5 + 0.25 * (i % 3), i % 2));
  }
  const std::vector<PeId> pes{0, 1, 2};
  const CommRefineLb comm_lb(1.15);
  EXPECT_EQ(comm_lb.assign(objects, pes),
            RefineLb(1.15).assign(objects, pes));
  // An empty comm graph routed through the comm overload degrades the same
  // way.
  EXPECT_EQ(comm_lb.assign(objects, LbCommGraph{}, pes),
            RefineLb(1.15).assign(objects, pes));
}

TEST(CommRefineLb, ColocatesHeavyTalkersWithinTheLoadCap) {
  // Two heavy compute objects pin one per PE; two light objects exchange
  // nearly all the traffic. The comm-aware pass must pull the talkers onto
  // one PE (the cap leaves room), eliminating their cut traffic.
  std::vector<LbObject> objects{
      object(0, 1.0, 0), object(1, 1.0, 1),   // anchors
      object(2, 0.05, 0), object(3, 0.05, 1)  // talkers
  };
  LbCommGraph comm;
  comm.edges.push_back({2, 3, 1.0e6});
  comm.byte_cost = [](PeId a, PeId b) { return a == b ? 0.0 : 1.0e-9; };
  const std::vector<PeId> pes{0, 1};
  const LbAssignment out = CommRefineLb(1.15).assign(objects, comm, pes);
  EXPECT_EQ(out[2], out[3]);
  // The anchors still sit on distinct PEs (the cap blocks stacking them).
  EXPECT_NE(out[0], out[1]);
}

TEST(CommRefineLb, RespectsTheComputeLoadCap) {
  // All four objects talk heavily, but stacking everything on one PE would
  // blow the tolerance cap: the proposal must stay within it.
  std::vector<LbObject> objects{object(0, 1.0, 0), object(1, 1.0, 1),
                                object(2, 1.0, 2), object(3, 1.0, 3)};
  LbCommGraph comm;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) comm.edges.push_back({a, b, 1.0e6});
  }
  comm.byte_cost = [](PeId a, PeId b) { return a == b ? 0.0 : 1.0e-9; };
  const std::vector<PeId> pes{0, 1, 2, 3};
  const LbAssignment out = CommRefineLb(1.15).assign(objects, comm, pes);
  const double ratio = load_imbalance(objects, out, pes);
  EXPECT_LE(ratio, 1.15 + 1e-12);
}

TEST(RunStrategy, CommDrivenProposalsWaiveTheNeverWorseGuard) {
  // Current placement is perfectly compute-balanced, so the guard would
  // veto any migration; a comm-driven proposal trades a little imbalance
  // for locality and must stand anyway.
  std::vector<LbObject> objects{
      object(0, 1.0, 0), object(1, 1.0, 1),   // anchors
      object(2, 0.05, 0), object(3, 0.05, 1)  // talkers
  };
  LbCommGraph comm;
  comm.edges.push_back({2, 3, 1.0e6});
  comm.byte_cost = [](PeId a, PeId b) { return a == b ? 0.0 : 1.0e-9; };
  const std::vector<PeId> pes{0, 1};
  const CommRefineLb lb(1.15);
  LbStepStats stats;
  const LbAssignment out = run_strategy(lb, objects, comm, pes, &stats);
  EXPECT_EQ(out[2], out[3]);
  EXPECT_GT(stats.migrated, 0);
  EXPECT_EQ(stats.strategy, "CommRefineLB");

  // The same strategy without a graph keeps the full guard: the balanced
  // placement survives untouched.
  LbStepStats no_comm_stats;
  const LbAssignment kept = run_strategy(lb, objects, pes, &no_comm_stats);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    EXPECT_EQ(kept[i], objects[i].current_pe);
  }
  EXPECT_EQ(no_comm_stats.migrated, 0);
}

/// Mock model that prices point-to-point messages like the flat model but
/// reports a fixed, large collective latency — detects whether the runtime
/// actually asks the NetworkModel for collective costs (the historical bug:
/// reductions were priced from a hard-coded contention-free floor).
class FixedCollectiveModel final : public net::NetworkModel {
 public:
  FixedCollectiveModel(net::CostModel base, double collective_s)
      : base_(base), collective_s_(collective_s) {}

  std::string name() const override { return "fixed-collective"; }
  std::string describe() const override { return "fixed-collective"; }
  double message_time(std::size_t bytes, int src_node,
                      int dst_node) const override {
    return base_.message_time(bytes, src_node, dst_node);
  }
  double inter_alpha() const override { return base_.inter_alpha(); }
  double collective_latency(int pes, double now) const override {
    (void)pes;
    (void)now;
    return collective_s_;
  }
  std::unique_ptr<net::NetworkModel> clone() const override {
    return std::make_unique<FixedCollectiveModel>(base_, collective_s_);
  }

 private:
  net::CostModel base_;
  double collective_s_;
};

double graph_run_seconds(std::shared_ptr<const net::NetworkModel> network) {
  RuntimeConfig rc;
  rc.num_pes = 4;
  rc.pes_per_node = 2;
  rc.network = std::move(network);
  Runtime rt(rc);
  apps::GraphConfig gc;
  gc.vertices = 128;
  gc.parts = 8;
  gc.max_iterations = 4;
  apps::Graph app(rt, gc);
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  return app.driver().iteration_end_times().back();
}

TEST(RuntimeCollectives, ReductionsArePricedByTheNetworkModel) {
  // Regression: the runtime used to compute its own ceil(log2(pes)) *
  // inter_alpha tree floor for every reduction, so a contended (or here,
  // artificially slow) fabric never slowed collectives. With the seam in
  // place, each of the 4 supersteps pays the model's 1-second collective.
  const net::CostModel pod = net::presets::pod_network();
  const double flat_total = graph_run_seconds(
      std::make_shared<net::FlatNetworkModel>(pod));
  const double stretched_total = graph_run_seconds(
      std::make_shared<FixedCollectiveModel>(pod, /*collective_s=*/1.0));
  EXPECT_GT(stretched_total, flat_total + 3.0);
}

TEST(RuntimeCollectives, SaturatedTopologySlowsTheRunEndToEnd) {
  // A heavily oversubscribed fat-tree must make the same workload strictly
  // slower than the flat fabric — contention now reaches both point-to-point
  // messages and the per-superstep reductions.
  const net::CostModel pod = net::presets::pod_network();
  const double flat_total = graph_run_seconds(
      std::make_shared<net::FlatNetworkModel>(pod));
  const double contended_total = graph_run_seconds(
      net::make_network_model("fattree", /*oversub=*/16.0));
  EXPECT_GT(contended_total, flat_total);
}

TEST(RuntimeCommTracking, CommAwareStrategyReceivesTheMeasuredGraph) {
  // With commrefine configured, the runtime tracks cross-chare traffic and
  // the periodic LB step runs the comm-aware path (visible through
  // lb_history's strategy stamp).
  RuntimeConfig rc;
  rc.num_pes = 4;
  rc.pes_per_node = 2;
  rc.load_balancer = "commrefine";
  Runtime rt(rc);
  apps::GraphConfig gc;
  gc.vertices = 256;
  gc.parts = 16;
  gc.max_iterations = 6;
  apps::Graph app(rt, gc);
  app.driver().set_lb_period(2);
  app.start();
  rt.run();
  ASSERT_TRUE(app.driver().finished());
  ASSERT_FALSE(rt.lb_history().empty());
  for (const auto& step : rt.lb_history()) {
    EXPECT_EQ(step.strategy, "CommRefineLB");
    EXPECT_GT(step.objects, 0);
  }
}

}  // namespace
}  // namespace ehpc::charm
