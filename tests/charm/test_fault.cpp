#include <gtest/gtest.h>

#include "apps/jacobi2d.hpp"
#include "charm/runtime.hpp"

namespace ehpc::charm {
namespace {

apps::JacobiConfig small_jacobi(int iters) {
  apps::JacobiConfig cfg;
  cfg.grid_n = 256;
  cfg.blocks_x = 4;
  cfg.blocks_y = 4;
  cfg.max_real_block = 32;
  cfg.max_iterations = iters;
  return cfg;
}

RuntimeConfig pes(int n) {
  RuntimeConfig cfg;
  cfg.num_pes = n;
  cfg.pes_per_node = 4;
  return cfg;
}

TEST(FaultTolerance, DiskCheckpointsTakenPeriodically) {
  Runtime rt(pes(4));
  apps::Jacobi2D app(rt, small_jacobi(12));
  app.driver().set_disk_checkpoint_period(4);
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  // Checkpoints after iterations 4 and 8 (12 ends the run before another).
  EXPECT_EQ(rt.disk_checkpoints_taken(), 2);
  EXPECT_TRUE(rt.has_disk_checkpoint());
}

TEST(FaultTolerance, DiskCheckpointAddsDowntime) {
  auto elapsed = [](int period) {
    Runtime rt(pes(4));
    apps::Jacobi2D app(rt, small_jacobi(12));
    app.driver().set_disk_checkpoint_period(period);
    app.start();
    rt.run();
    return rt.now();
  };
  EXPECT_GT(elapsed(4), elapsed(0));
}

TEST(FaultTolerance, RecoveryPreservesNumerics) {
  auto final_residual = [](bool fail) {
    Runtime rt(pes(4));
    apps::Jacobi2D app(rt, small_jacobi(12));
    app.driver().set_disk_checkpoint_period(4);
    if (fail) {
      app.driver().at_iteration(10, [](Runtime& r) { r.fail_and_recover(); });
    }
    app.start();
    rt.run();
    EXPECT_TRUE(app.driver().finished());
    return app.residual();
  };
  EXPECT_DOUBLE_EQ(final_residual(true), final_residual(false));
}

TEST(FaultTolerance, RecoveryRollsBackToCheckpoint) {
  Runtime rt(pes(4));
  apps::Jacobi2D app(rt, small_jacobi(12));
  app.driver().set_disk_checkpoint_period(4);
  app.driver().at_iteration(10, [](Runtime& r) { r.fail_and_recover(); });
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  EXPECT_EQ(rt.recoveries(), 1);
  // Iterations 9..10 re-executed after rolling back to iteration 8: the
  // reduction fires more times than the iteration count.
  EXPECT_GT(app.driver().iteration_end_times().size(), 12u);
}

TEST(FaultTolerance, RecoveryChargesDowntime) {
  auto elapsed = [](bool fail) {
    Runtime rt(pes(4));
    apps::Jacobi2D app(rt, small_jacobi(12));
    app.driver().set_disk_checkpoint_period(4);
    if (fail) {
      app.driver().at_iteration(10, [](Runtime& r) { r.fail_and_recover(); });
    }
    app.start();
    rt.run();
    return rt.now();
  };
  const double with = elapsed(true);
  const double without = elapsed(false);
  // At least the failure-detection delay plus restart must be added.
  EXPECT_GT(with, without + 5.0);
}

TEST(FaultTolerance, FailureWithoutCheckpointThrows) {
  Runtime rt(pes(4));
  apps::Jacobi2D app(rt, small_jacobi(6));
  app.driver().at_iteration(2, [](Runtime& r) {
    EXPECT_THROW(r.fail_and_recover(), PreconditionError);
  });
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
}

TEST(FaultTolerance, RecoveryAfterRescaleUsesCheckpointPeCount) {
  Runtime rt(pes(8));
  apps::Jacobi2D app(rt, small_jacobi(14));
  app.driver().set_disk_checkpoint_period(4);
  // Checkpoint at 4 and 8 (at 8 PEs), shrink at 9, fail at 12: recovery
  // restores the PE count in force at the last checkpoint (8).
  app.driver().at_iteration(9, [](Runtime& r) { r.ccs().request_rescale(4); });
  app.driver().at_iteration(12, [](Runtime& r) { r.fail_and_recover(); });
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  EXPECT_EQ(rt.num_pes(), 8);
  EXPECT_EQ(rt.recoveries(), 1);
}

TEST(FaultTolerance, NodeLossRecoveryRemapsOntoSurvivingPes) {
  // Checkpoint at 8 PEs, then lose a whole node (4 PEs with pes_per_node=4):
  // recovery restarts on the 4 survivors. Every element checkpointed on PEs
  // 4..7 must be re-placed onto a surviving PE — the recovery path used to
  // restore the checkpoint-time placement unconditionally, leaving elements
  // on PEs that no longer exist.
  Runtime rt(pes(8));
  apps::Jacobi2D app(rt, small_jacobi(12));
  app.driver().set_disk_checkpoint_period(4);
  app.driver().at_iteration(6, [](Runtime& r) { r.fail_and_recover(4); });
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  EXPECT_EQ(rt.num_pes(), 4);
  EXPECT_EQ(rt.recoveries(), 1);
  for (ElementId e = 0; e < rt.num_elements(0); ++e) {
    EXPECT_LT(rt.pe_of(0, e), rt.num_pes()) << "element " << e;
    EXPECT_GE(rt.pe_of(0, e), 0) << "element " << e;
  }
}

TEST(FaultTolerance, NodeLossRecoveryBalancesSurvivors) {
  // The re-placement goes through the LB seam, not a modulo fold: with 16
  // equal-footprint blocks on 4 survivors, no survivor ends up hosting more
  // than half the array.
  Runtime rt(pes(8));
  apps::Jacobi2D app(rt, small_jacobi(12));
  app.driver().set_disk_checkpoint_period(4);
  app.driver().at_iteration(6, [](Runtime& r) { r.fail_and_recover(4); });
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  std::vector<int> per_pe(4, 0);
  for (ElementId e = 0; e < rt.num_elements(0); ++e) {
    per_pe[static_cast<std::size_t>(rt.pe_of(0, e))]++;
  }
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_GT(per_pe[static_cast<std::size_t>(pe)], 0) << "pe " << pe;
    EXPECT_LE(per_pe[static_cast<std::size_t>(pe)], 8) << "pe " << pe;
  }
}

TEST(FaultTolerance, NodeLossRecoveryPreservesNumerics) {
  auto final_residual = [](bool fail) {
    Runtime rt(pes(8));
    apps::Jacobi2D app(rt, small_jacobi(12));
    app.driver().set_disk_checkpoint_period(4);
    if (fail) {
      app.driver().at_iteration(6, [](Runtime& r) { r.fail_and_recover(4); });
    }
    app.start();
    rt.run();
    EXPECT_TRUE(app.driver().finished());
    return app.residual();
  };
  EXPECT_DOUBLE_EQ(final_residual(true), final_residual(false));
}

TEST(FaultRaces, FailureWithMessagesInFlightRetiresDeadEvents) {
  // Inject the failure shortly *after* an iteration boundary, while the next
  // iteration's broadcasts and halo exchanges are still in flight. Recovery
  // must retire those dead-configuration arrival events through the PE epoch
  // guard instead of delivering them into the restarted configuration, and
  // the re-executed iterations must reproduce the failure-free numerics.
  auto final_residual = [](bool fail) {
    Runtime rt(pes(4));
    apps::Jacobi2D app(rt, small_jacobi(12));
    app.driver().set_disk_checkpoint_period(4);
    if (fail) {
      app.driver().at_iteration(6, [](Runtime& r) {
        r.schedule_external(r.now() + 1e-5,
                            [](Runtime& r2) { r2.fail_and_recover(); });
      });
    }
    app.start();
    rt.run();
    EXPECT_TRUE(app.driver().finished());
    EXPECT_EQ(rt.recoveries(), fail ? 1 : 0);
    return app.residual();
  };
  EXPECT_DOUBLE_EQ(final_residual(true), final_residual(false));
}

TEST(FaultRaces, SecondFailureBeforeRestartCompletes) {
  // The second failure lands inside the first recovery's downtime window
  // (failure detection alone is 5 s), before its restart event has fired.
  // The stale restart must be retired by the epoch guard — only the second
  // recovery's restart may resume the application, exactly once.
  auto final_residual = [](bool fail) {
    Runtime rt(pes(4));
    apps::Jacobi2D app(rt, small_jacobi(12));
    app.driver().set_disk_checkpoint_period(4);
    if (fail) {
      app.driver().at_iteration(6, [](Runtime& r) {
        r.fail_and_recover();
        r.schedule_external(r.now() + 1.0,
                            [](Runtime& r2) { r2.fail_and_recover(); });
      });
    }
    app.start();
    rt.run();
    EXPECT_TRUE(app.driver().finished());
    EXPECT_EQ(rt.recoveries(), fail ? 2 : 0);
    return app.residual();
  };
  EXPECT_DOUBLE_EQ(final_residual(true), final_residual(false));
}

TEST(FaultRaces, FailureDuringRescaleDowntimeSupersedesTheRescale) {
  // A node dies while a 8 -> 4 rescale is mid-flight (inside its modeled
  // checkpoint/restart/restore window). The recovery resets to the disk
  // checkpoint's PE count and the rescale's stale resume event is retired;
  // the run must still finish with correct numerics.
  auto final_residual = [](bool fail) {
    Runtime rt(pes(8));
    apps::Jacobi2D app(rt, small_jacobi(14));
    app.driver().set_disk_checkpoint_period(4);
    if (fail) {
      app.driver().at_iteration(9, [](Runtime& r) {
        r.ccs().request_rescale(4);
        // The rescale starts at this same boundary; its downtime is far
        // longer than 1e-5 s, so the failure lands inside the window.
        r.schedule_external(r.now() + 1e-5,
                            [](Runtime& r2) { r2.fail_and_recover(); });
      });
    }
    app.start();
    rt.run();
    EXPECT_TRUE(app.driver().finished());
    if (fail) {
      EXPECT_EQ(rt.recoveries(), 1);
      EXPECT_EQ(rt.num_pes(), 8);  // checkpoint-time PE count, not the target
    }
    return app.residual();
  };
  EXPECT_DOUBLE_EQ(final_residual(true), final_residual(false));
}

TEST(FaultRaces, FailureInsideEntryMethodIsAContractViolation) {
  // fail_and_recover destroys the executing element under its own feet; the
  // runtime forbids calling it from inside an entry method even when a disk
  // checkpoint exists.
  Runtime rt(pes(4));
  apps::Jacobi2D app(rt, small_jacobi(12));
  app.driver().set_disk_checkpoint_period(4);
  bool checked = false;
  app.driver().at_iteration(6, [&checked](Runtime& r) {
    r.send(0, 0, 8, [&checked](Chare&, Runtime& r2) {
      EXPECT_THROW(r2.fail_and_recover(), PreconditionError);
      checked = true;
    });
  });
  app.start();
  rt.run();
  EXPECT_TRUE(checked);
  EXPECT_TRUE(app.driver().finished());
}

TEST(FaultTolerance, CorrelatedLossRemapsSurvivorsPreservingOrder) {
  // Lose PEs {1, 2} of 4 together (one failure domain): survivors {0, 3}
  // renumber to {0, 1} with their relative order preserved, and every
  // element must land on a surviving PE.
  Runtime rt(pes(4));
  apps::Jacobi2D app(rt, small_jacobi(12));
  app.driver().set_disk_checkpoint_period(4);
  app.driver().at_iteration(6, [](Runtime& r) {
    r.fail_and_recover(std::vector<PeId>{1, 2});
  });
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  EXPECT_EQ(rt.num_pes(), 2);
  EXPECT_EQ(rt.recoveries(), 1);
  for (ElementId e = 0; e < rt.num_elements(0); ++e) {
    EXPECT_GE(rt.pe_of(0, e), 0) << "element " << e;
    EXPECT_LT(rt.pe_of(0, e), 2) << "element " << e;
  }
}

TEST(FaultTolerance, CorrelatedLossRecoveryPreservesNumerics) {
  auto final_residual = [](bool fail) {
    Runtime rt(pes(8));
    apps::Jacobi2D app(rt, small_jacobi(12));
    app.driver().set_disk_checkpoint_period(4);
    if (fail) {
      // A non-contiguous failed set: the remap must renumber around holes.
      app.driver().at_iteration(6, [](Runtime& r) {
        r.fail_and_recover(std::vector<PeId>{0, 2, 5});
      });
    }
    app.start();
    rt.run();
    EXPECT_TRUE(app.driver().finished());
    if (fail) {
      EXPECT_EQ(rt.num_pes(), 5);
    }
    return app.residual();
  };
  EXPECT_DOUBLE_EQ(final_residual(true), final_residual(false));
}

TEST(FaultTolerance, CorrelatedLossValidatesTheFailedSet) {
  Runtime rt(pes(4));
  apps::Jacobi2D app(rt, small_jacobi(12));
  app.driver().set_disk_checkpoint_period(4);
  bool checked = false;
  app.driver().at_iteration(6, [&checked](Runtime& r) {
    // Duplicates, out-of-range PEs, an empty set and a set with no
    // survivor are all contract violations.
    EXPECT_THROW(r.fail_and_recover(std::vector<PeId>{1, 1}),
                 PreconditionError);
    EXPECT_THROW(r.fail_and_recover(std::vector<PeId>{4}),
                 PreconditionError);
    EXPECT_THROW(r.fail_and_recover(std::vector<PeId>{-1}),
                 PreconditionError);
    EXPECT_THROW(r.fail_and_recover(std::vector<PeId>{}),
                 PreconditionError);
    EXPECT_THROW(r.fail_and_recover(std::vector<PeId>{0, 1, 2, 3}),
                 PreconditionError);
    checked = true;
  });
  app.start();
  rt.run();
  EXPECT_TRUE(checked);
  EXPECT_TRUE(app.driver().finished());
  EXPECT_EQ(rt.recoveries(), 0);
}

TEST(FaultTolerance, DiskSlowerThanSharedMemory) {
  // The disk checkpoint of the same state must cost more virtual time than
  // the in-memory rescale checkpoint stage.
  RuntimeConfig cfg = pes(4);
  EXPECT_LT(cfg.disk_bandwidth_Bps, cfg.shm_bandwidth_Bps);
}

}  // namespace
}  // namespace ehpc::charm
