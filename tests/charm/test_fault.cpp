#include <gtest/gtest.h>

#include "apps/jacobi2d.hpp"
#include "charm/runtime.hpp"

namespace ehpc::charm {
namespace {

apps::JacobiConfig small_jacobi(int iters) {
  apps::JacobiConfig cfg;
  cfg.grid_n = 256;
  cfg.blocks_x = 4;
  cfg.blocks_y = 4;
  cfg.max_real_block = 32;
  cfg.max_iterations = iters;
  return cfg;
}

RuntimeConfig pes(int n) {
  RuntimeConfig cfg;
  cfg.num_pes = n;
  cfg.pes_per_node = 4;
  return cfg;
}

TEST(FaultTolerance, DiskCheckpointsTakenPeriodically) {
  Runtime rt(pes(4));
  apps::Jacobi2D app(rt, small_jacobi(12));
  app.driver().set_disk_checkpoint_period(4);
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  // Checkpoints after iterations 4 and 8 (12 ends the run before another).
  EXPECT_EQ(rt.disk_checkpoints_taken(), 2);
  EXPECT_TRUE(rt.has_disk_checkpoint());
}

TEST(FaultTolerance, DiskCheckpointAddsDowntime) {
  auto elapsed = [](int period) {
    Runtime rt(pes(4));
    apps::Jacobi2D app(rt, small_jacobi(12));
    app.driver().set_disk_checkpoint_period(period);
    app.start();
    rt.run();
    return rt.now();
  };
  EXPECT_GT(elapsed(4), elapsed(0));
}

TEST(FaultTolerance, RecoveryPreservesNumerics) {
  auto final_residual = [](bool fail) {
    Runtime rt(pes(4));
    apps::Jacobi2D app(rt, small_jacobi(12));
    app.driver().set_disk_checkpoint_period(4);
    if (fail) {
      app.driver().at_iteration(10, [](Runtime& r) { r.fail_and_recover(); });
    }
    app.start();
    rt.run();
    EXPECT_TRUE(app.driver().finished());
    return app.residual();
  };
  EXPECT_DOUBLE_EQ(final_residual(true), final_residual(false));
}

TEST(FaultTolerance, RecoveryRollsBackToCheckpoint) {
  Runtime rt(pes(4));
  apps::Jacobi2D app(rt, small_jacobi(12));
  app.driver().set_disk_checkpoint_period(4);
  app.driver().at_iteration(10, [](Runtime& r) { r.fail_and_recover(); });
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  EXPECT_EQ(rt.recoveries(), 1);
  // Iterations 9..10 re-executed after rolling back to iteration 8: the
  // reduction fires more times than the iteration count.
  EXPECT_GT(app.driver().iteration_end_times().size(), 12u);
}

TEST(FaultTolerance, RecoveryChargesDowntime) {
  auto elapsed = [](bool fail) {
    Runtime rt(pes(4));
    apps::Jacobi2D app(rt, small_jacobi(12));
    app.driver().set_disk_checkpoint_period(4);
    if (fail) {
      app.driver().at_iteration(10, [](Runtime& r) { r.fail_and_recover(); });
    }
    app.start();
    rt.run();
    return rt.now();
  };
  const double with = elapsed(true);
  const double without = elapsed(false);
  // At least the failure-detection delay plus restart must be added.
  EXPECT_GT(with, without + 5.0);
}

TEST(FaultTolerance, FailureWithoutCheckpointThrows) {
  Runtime rt(pes(4));
  apps::Jacobi2D app(rt, small_jacobi(6));
  app.driver().at_iteration(2, [](Runtime& r) {
    EXPECT_THROW(r.fail_and_recover(), PreconditionError);
  });
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
}

TEST(FaultTolerance, RecoveryAfterRescaleUsesCheckpointPeCount) {
  Runtime rt(pes(8));
  apps::Jacobi2D app(rt, small_jacobi(14));
  app.driver().set_disk_checkpoint_period(4);
  // Checkpoint at 4 and 8 (at 8 PEs), shrink at 9, fail at 12: recovery
  // restores the PE count in force at the last checkpoint (8).
  app.driver().at_iteration(9, [](Runtime& r) { r.ccs().request_rescale(4); });
  app.driver().at_iteration(12, [](Runtime& r) { r.fail_and_recover(); });
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  EXPECT_EQ(rt.num_pes(), 8);
  EXPECT_EQ(rt.recoveries(), 1);
}

TEST(FaultTolerance, DiskSlowerThanSharedMemory) {
  // The disk checkpoint of the same state must cost more virtual time than
  // the in-memory rescale checkpoint stage.
  RuntimeConfig cfg = pes(4);
  EXPECT_LT(cfg.disk_bandwidth_Bps, cfg.shm_bandwidth_Bps);
}

}  // namespace
}  // namespace ehpc::charm
