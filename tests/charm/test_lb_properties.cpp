// Property-style battery over the load-balancing seam: for randomized load
// vectors, every strategy (raw and through the run_strategy guard) must
// uphold the placement invariants, and the guarded path must never worsen
// the max/avg load ratio when the current placement is still legal.

#include "charm/load_balancer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace ehpc::charm {
namespace {

std::vector<PeId> pes_upto(int n) {
  std::vector<PeId> out(static_cast<std::size_t>(n));
  std::iota(out.begin(), out.end(), 0);
  return out;
}

/// Random objects: loads log-uniform-ish in (0, 4], sizes random, current
/// placement random over `from_pes`. Occasionally zero-load objects, which
/// strategies must also place.
std::vector<LbObject> random_objects(Rng& rng, int n, int from_pes) {
  std::vector<LbObject> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    LbObject o;
    o.elem = i;
    o.load = rng.chance(0.1) ? 0.0 : rng.uniform(0.05, 4.0);
    o.bytes = static_cast<std::size_t>(rng.uniform_int(64, 1 << 16));
    o.current_pe = static_cast<PeId>(rng.uniform_int(0, from_pes - 1));
    out.push_back(o);
  }
  return out;
}

/// Sum of loads each PE would carry under `assignment`.
std::map<PeId, double> pe_loads(const std::vector<LbObject>& objects,
                                const LbAssignment& assignment) {
  std::map<PeId, double> out;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    out[assignment[i]] += objects[i].load;
  }
  return out;
}

struct PropertyCase {
  int objects;
  int from_pes;
  int to_pes;
};

// (objects, from_pes, to_pes) shapes: steady state, shrink, expand, tiny
// and object-starved corners, plus the paper's 64-slot scale.
const std::vector<PropertyCase> kShapes{
    {64, 8, 8},  {64, 8, 4},   {64, 4, 8},  {7, 4, 2},   {3, 2, 8},
    {1, 1, 4},   {128, 16, 7}, {256, 60, 30}, {256, 16, 64}, {32, 64, 64}};

class LbStrategyProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(LbStrategyProperty, InvariantsHoldForRandomizedLoads) {
  auto lb = make_load_balancer(GetParam());
  Rng rng(20250726);
  for (const auto& shape : kShapes) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto objects = random_objects(rng, shape.objects, shape.from_pes);
      const auto avail = pes_upto(shape.to_pes);
      const LbAssignment assignment = lb->assign(objects, avail);

      // Every object is placed exactly once, on an available PE.
      ASSERT_EQ(assignment.size(), objects.size());
      for (const PeId pe : assignment) {
        ASSERT_GE(pe, 0);
        ASSERT_LT(pe, shape.to_pes);
      }

      // Total load is conserved: the per-PE loads sum to the input loads.
      double total_in = 0.0;
      for (const auto& o : objects) total_in += o.load;
      double total_out = 0.0;
      for (const auto& [pe, load] : pe_loads(objects, assignment)) {
        total_out += load;
      }
      ASSERT_NEAR(total_in, total_out, 1e-9 * std::max(1.0, total_in));
    }
  }
}

TEST_P(LbStrategyProperty, GuardedStepNeverWorsensTheRatio) {
  auto lb = make_load_balancer(GetParam());
  Rng rng(424242);
  for (const auto& shape : kShapes) {
    if (shape.to_pes < shape.from_pes) continue;  // current placement illegal
    for (int trial = 0; trial < 20; ++trial) {
      const auto objects = random_objects(rng, shape.objects, shape.from_pes);
      const auto avail = pes_upto(shape.to_pes);

      LbAssignment current;
      for (const auto& o : objects) current.push_back(o.current_pe);
      const double pre = load_imbalance(objects, current, avail);

      LbStepStats stats;
      const LbAssignment assignment =
          run_strategy(*lb, objects, avail, &stats);
      const double post = load_imbalance(objects, assignment, avail);
      ASSERT_LE(post, pre + 1e-12)
          << GetParam() << " worsened " << pre << " -> " << post << " at "
          << shape.objects << " objs " << shape.from_pes << "->"
          << shape.to_pes;
      ASSERT_DOUBLE_EQ(stats.post_ratio, post);
      ASSERT_EQ(stats.objects, shape.objects);
    }
  }
}

TEST_P(LbStrategyProperty, GuardedStepCountsMigrationsCorrectly) {
  auto lb = make_load_balancer(GetParam());
  Rng rng(77);
  const auto objects = random_objects(rng, 48, 6);
  const auto avail = pes_upto(6);
  LbStepStats stats;
  const LbAssignment assignment = run_strategy(*lb, objects, avail, &stats);
  int moved = 0;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (assignment[i] != objects[i].current_pe) ++moved;
  }
  EXPECT_EQ(stats.migrated, moved);
  EXPECT_EQ(stats.strategy, lb->name());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, LbStrategyProperty,
                         ::testing::ValuesIn(load_balancer_names()),
                         [](const auto& info) { return info.param; });

TEST(RunStrategy, KeepsPlacementWhenProposalIsWorse) {
  // Perfectly balanced start that greedy's LPT order would break: loads
  // {3,3,2,2,2} on 2 PEs placed optimally (3+3 | 2+2+2).
  std::vector<LbObject> objects;
  const double loads[] = {3.0, 3.0, 2.0, 2.0, 2.0};
  const PeId pes[] = {0, 0, 1, 1, 1};
  for (int i = 0; i < 5; ++i) {
    LbObject o;
    o.elem = i;
    o.load = loads[i];
    o.current_pe = pes[i];
    objects.push_back(o);
  }
  const auto avail = pes_upto(2);
  GreedyLb greedy;
  // Raw greedy worsens this placement (LPT gives 7 | 5)...
  EXPECT_GT(load_imbalance(objects, greedy.assign(objects, avail), avail),
            1.0 + 1e-9);
  // ...so the guard must keep everything where it is.
  LbStepStats stats;
  const LbAssignment guarded = run_strategy(greedy, objects, avail, &stats);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(guarded[static_cast<std::size_t>(i)], pes[i]);
  EXPECT_EQ(stats.migrated, 0);
  EXPECT_DOUBLE_EQ(stats.post_ratio, 1.0);
}

TEST(RunStrategy, EvacuatesUnavailablePesEvenIfRatioWorsens) {
  // All load on PE 2, which vanishes: the guard must not block the move.
  std::vector<LbObject> objects;
  for (int i = 0; i < 4; ++i) {
    LbObject o;
    o.elem = i;
    o.load = 1.0;
    o.current_pe = 2;
    objects.push_back(o);
  }
  LbStepStats stats;
  const auto assignment =
      run_strategy(NullLb{}, objects, pes_upto(2), &stats);
  for (const PeId pe : assignment) EXPECT_LT(pe, 2);
  EXPECT_EQ(stats.migrated, 4);
}

TEST(RunStrategy, ZeroLoadObjectsYieldRatioOne) {
  std::vector<LbObject> objects(3);
  for (int i = 0; i < 3; ++i) {
    objects[static_cast<std::size_t>(i)].elem = i;
    objects[static_cast<std::size_t>(i)].current_pe = 0;
  }
  LbStepStats stats;
  run_strategy(GreedyLb{}, objects, pes_upto(4), &stats);
  EXPECT_DOUBLE_EQ(stats.pre_ratio, 1.0);
  EXPECT_DOUBLE_EQ(stats.post_ratio, 1.0);
}

}  // namespace
}  // namespace ehpc::charm
