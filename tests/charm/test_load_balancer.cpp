#include "charm/load_balancer.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

namespace ehpc::charm {
namespace {

std::vector<LbObject> uniform_objects(int n, double load, int pes) {
  std::vector<LbObject> out;
  for (int i = 0; i < n; ++i) {
    LbObject o;
    o.elem = i;
    o.load = load;
    o.bytes = 1024;
    o.current_pe = i % pes;
    out.push_back(o);
  }
  return out;
}

std::vector<PeId> pes_upto(int n) {
  std::vector<PeId> out(static_cast<std::size_t>(n));
  std::iota(out.begin(), out.end(), 0);
  return out;
}

TEST(NullLb, KeepsObjectsInPlaceWhenPossible) {
  NullLb lb;
  auto objs = uniform_objects(8, 1.0, 4);
  auto assign = lb.assign(objs, pes_upto(4));
  for (std::size_t i = 0; i < objs.size(); ++i) {
    EXPECT_EQ(assign[i], objs[i].current_pe);
  }
}

TEST(NullLb, EvictsFromUnavailablePes) {
  NullLb lb;
  auto objs = uniform_objects(8, 1.0, 4);  // pes 0..3
  auto assign = lb.assign(objs, pes_upto(2));  // pes 2,3 vanish
  for (std::size_t i = 0; i < objs.size(); ++i) {
    EXPECT_LT(assign[i], 2);
  }
}

TEST(GreedyLb, BalancesUniformLoadEvenly) {
  GreedyLb lb;
  auto objs = uniform_objects(16, 1.0, 4);
  auto assign = lb.assign(objs, pes_upto(4));
  EXPECT_NEAR(load_imbalance(objs, assign, pes_upto(4)), 1.0, 1e-9);
}

TEST(GreedyLb, HandlesSkewedLoads) {
  GreedyLb lb;
  std::vector<LbObject> objs;
  for (int i = 0; i < 12; ++i) {
    LbObject o;
    o.elem = i;
    o.load = (i == 0) ? 10.0 : 1.0;  // one heavy object
    o.current_pe = 0;
    objs.push_back(o);
  }
  auto assign = lb.assign(objs, pes_upto(4));
  // The heavy object's PE should host nothing else (or very little).
  const PeId heavy_pe = assign[0];
  double heavy_pe_load = 0.0;
  for (std::size_t i = 0; i < objs.size(); ++i) {
    if (assign[i] == heavy_pe) heavy_pe_load += objs[i].load;
  }
  EXPECT_LE(heavy_pe_load, 11.0);
  EXPECT_LE(load_imbalance(objs, assign, pes_upto(4)), 2.0);
}

TEST(RefineLb, NoMigrationWhenAlreadyBalanced) {
  RefineLb lb;
  auto objs = uniform_objects(8, 1.0, 4);
  auto assign = lb.assign(objs, pes_upto(4));
  int moved = 0;
  for (std::size_t i = 0; i < objs.size(); ++i) {
    if (assign[i] != objs[i].current_pe) ++moved;
  }
  EXPECT_EQ(moved, 0);
}

TEST(RefineLb, MovesLoadOffOverloadedPe) {
  RefineLb lb(1.05);
  std::vector<LbObject> objs;
  for (int i = 0; i < 8; ++i) {
    LbObject o;
    o.elem = i;
    o.load = 1.0;
    o.current_pe = 0;  // everything on PE 0
    objs.push_back(o);
  }
  auto assign = lb.assign(objs, pes_upto(4));
  EXPECT_LE(load_imbalance(objs, assign, pes_upto(4)), 1.5 + 1e-9);
}

TEST(RefineLb, MigratesLessThanGreedy) {
  // Mildly imbalanced start: refine should fix it with fewer moves.
  Rng rng(5);
  std::vector<LbObject> objs;
  for (int i = 0; i < 32; ++i) {
    LbObject o;
    o.elem = i;
    o.load = rng.uniform(0.8, 1.2);
    o.current_pe = i % 8;
    objs.push_back(o);
  }
  GreedyLb greedy;
  RefineLb refine;
  auto count_moves = [&](const LbAssignment& a) {
    int moved = 0;
    for (std::size_t i = 0; i < objs.size(); ++i) {
      if (a[i] != objs[i].current_pe) ++moved;
    }
    return moved;
  };
  EXPECT_LT(count_moves(refine.assign(objs, pes_upto(8))),
            count_moves(greedy.assign(objs, pes_upto(8))));
}

TEST(LoadBalancerFactory, ResolvesNames) {
  EXPECT_EQ(make_load_balancer("null")->name(), "NullLB");
  EXPECT_EQ(make_load_balancer("greedy")->name(), "GreedyLB");
  EXPECT_EQ(make_load_balancer("refine")->name(), "RefineLB");
  EXPECT_THROW(make_load_balancer("bogus"), PreconditionError);
}

TEST(LoadImbalance, PerfectBalanceIsOne) {
  auto objs = uniform_objects(4, 1.0, 4);
  LbAssignment a{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(load_imbalance(objs, a, pes_upto(4)), 1.0);
}

TEST(LoadImbalance, AllOnOnePe) {
  auto objs = uniform_objects(4, 1.0, 4);
  LbAssignment a{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(load_imbalance(objs, a, pes_upto(4)), 4.0);
}

// Property sweep: every strategy must produce a legal assignment (all PEs in
// the available set) and tolerable imbalance for random inputs.
struct LbCase {
  const char* strategy;
  int objects;
  int from_pes;
  int to_pes;
  unsigned seed;
};

class LbProperty : public ::testing::TestWithParam<LbCase> {};

TEST_P(LbProperty, LegalAndReasonablyBalanced) {
  const LbCase& c = GetParam();
  Rng rng(c.seed);
  std::vector<LbObject> objs;
  for (int i = 0; i < c.objects; ++i) {
    LbObject o;
    o.elem = i;
    o.load = rng.uniform(0.1, 2.0);
    o.bytes = static_cast<std::size_t>(rng.uniform_int(64, 1 << 16));
    o.current_pe = static_cast<PeId>(rng.uniform_int(0, c.from_pes - 1));
    objs.push_back(o);
  }
  auto lb = make_load_balancer(c.strategy);
  auto avail = pes_upto(c.to_pes);
  auto assign = lb->assign(objs, avail);
  ASSERT_EQ(assign.size(), objs.size());
  for (PeId pe : assign) {
    EXPECT_GE(pe, 0);
    EXPECT_LT(pe, c.to_pes);
  }
  // With >= 4 objects per PE, no strategy should be worse than 4x imbalance.
  if (c.objects >= 4 * c.to_pes && std::string(c.strategy) != "null") {
    EXPECT_LE(load_imbalance(objs, assign, avail), 4.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LbProperty,
    ::testing::Values(LbCase{"greedy", 64, 8, 8, 1}, LbCase{"greedy", 64, 8, 4, 2},
                      LbCase{"greedy", 64, 4, 8, 3}, LbCase{"greedy", 7, 4, 2, 4},
                      LbCase{"refine", 64, 8, 8, 5}, LbCase{"refine", 64, 8, 4, 6},
                      LbCase{"refine", 64, 4, 8, 7}, LbCase{"refine", 7, 4, 2, 8},
                      LbCase{"null", 64, 8, 4, 9}, LbCase{"null", 16, 4, 4, 10},
                      LbCase{"greedy", 256, 60, 30, 11},
                      LbCase{"refine", 256, 16, 64, 12}));

}  // namespace
}  // namespace ehpc::charm
