#include "charm/location.hpp"

#include <gtest/gtest.h>

namespace ehpc::charm {
namespace {

TEST(LocationManager, RoundRobinInitialMapping) {
  LocationManager loc;
  ArrayId a = loc.add_array(10, 4);
  for (ElementId e = 0; e < 10; ++e) {
    EXPECT_EQ(loc.pe_of(a, e), e % 4);
  }
  EXPECT_EQ(loc.num_elements(a), 10);
}

TEST(LocationManager, SetPeUpdatesLookup) {
  LocationManager loc;
  ArrayId a = loc.add_array(4, 2);
  loc.set_pe(a, 3, 0);
  EXPECT_EQ(loc.pe_of(a, 3), 0);
}

TEST(LocationManager, ElementsOnCollectsCorrectly) {
  LocationManager loc;
  ArrayId a = loc.add_array(6, 3);
  EXPECT_EQ(loc.elements_on(a, 0), (std::vector<ElementId>{0, 3}));
  EXPECT_EQ(loc.elements_on(a, 2), (std::vector<ElementId>{2, 5}));
  EXPECT_TRUE(loc.elements_on(a, 9).empty());
}

TEST(LocationManager, MultipleArraysIndependent) {
  LocationManager loc;
  ArrayId a = loc.add_array(4, 2);
  ArrayId b = loc.add_array(4, 4);
  loc.set_pe(a, 0, 1);
  EXPECT_EQ(loc.pe_of(a, 0), 1);
  EXPECT_EQ(loc.pe_of(b, 0), 0);
  EXPECT_EQ(loc.num_arrays(), 2);
}

TEST(LocationManager, RemapReplacesWholeMapping) {
  LocationManager loc;
  ArrayId a = loc.add_array(3, 3);
  loc.remap(a, {2, 2, 2});
  for (ElementId e = 0; e < 3; ++e) EXPECT_EQ(loc.pe_of(a, e), 2);
}

TEST(LocationManager, RemapRejectsWrongSize) {
  LocationManager loc;
  ArrayId a = loc.add_array(3, 3);
  EXPECT_THROW(loc.remap(a, {0, 1}), PreconditionError);
}

TEST(LocationManager, BoundsChecking) {
  LocationManager loc;
  ArrayId a = loc.add_array(3, 2);
  EXPECT_THROW(loc.pe_of(a, 3), PreconditionError);
  EXPECT_THROW(loc.pe_of(a, -1), PreconditionError);
  EXPECT_THROW(loc.pe_of(a + 1, 0), PreconditionError);
  EXPECT_THROW(loc.set_pe(a, 0, -2), PreconditionError);
}

TEST(LocationManager, RejectsEmptyArray) {
  LocationManager loc;
  EXPECT_THROW(loc.add_array(0, 2), PreconditionError);
  EXPECT_THROW(loc.add_array(2, 0), PreconditionError);
}

}  // namespace
}  // namespace ehpc::charm
