#include "charm/pup.hpp"

#include <gtest/gtest.h>

namespace ehpc::charm {
namespace {

struct Sample final : Chare {
  int i = 0;
  double d = 0.0;
  std::string name;
  std::vector<double> values;
  std::vector<std::string> tags;

  void pup(Pup& p) override {
    p | i;
    p | d;
    p | name;
    p | values;
    p | tags;
  }
};

TEST(Pup, RoundTripPreservesState) {
  Sample a;
  a.i = 42;
  a.d = 3.14;
  a.name = "hello world";
  a.values = {1.0, 2.0, 3.0};
  a.tags = {"x", "longer string"};

  std::vector<std::byte> buf;
  Pup packer = Pup::packer(buf);
  a.pup(packer);

  Sample b;
  Pup unpacker = Pup::unpacker(buf);
  b.pup(unpacker);

  EXPECT_EQ(b.i, 42);
  EXPECT_DOUBLE_EQ(b.d, 3.14);
  EXPECT_EQ(b.name, "hello world");
  EXPECT_EQ(b.values, a.values);
  EXPECT_EQ(b.tags, a.tags);
}

TEST(Pup, SizingMatchesPacking) {
  Sample a;
  a.values.assign(100, 1.5);
  a.name = "abc";

  Pup sizer = Pup::sizer();
  a.pup(sizer);

  std::vector<std::byte> buf;
  Pup packer = Pup::packer(buf);
  a.pup(packer);

  EXPECT_EQ(sizer.size(), buf.size());
  EXPECT_EQ(packer.size(), buf.size());
}

TEST(Pup, EmptyContainersRoundTrip) {
  Sample a;  // all containers empty
  std::vector<std::byte> buf;
  Pup packer = Pup::packer(buf);
  a.pup(packer);

  Sample b;
  b.values = {9.0};  // must be cleared by unpack
  Pup unpacker = Pup::unpacker(buf);
  b.pup(unpacker);
  EXPECT_TRUE(b.values.empty());
  EXPECT_TRUE(b.name.empty());
}

TEST(Pup, UnpackBeyondBufferThrows) {
  std::vector<std::byte> buf(4);
  Pup p = Pup::unpacker(buf);
  double d = 0.0;
  EXPECT_THROW(p | d, PreconditionError);  // needs 8 bytes
}

TEST(Pup, ChareSizeHelper) {
  Sample a;
  a.values.assign(10, 0.0);
  // 3 size_t prefixes + int + double + 10 doubles.
  EXPECT_EQ(a.pup_size(),
            3 * sizeof(std::size_t) + sizeof(int) + sizeof(double) +
                10 * sizeof(double));
}

TEST(Pup, ModesReportCorrectly) {
  std::vector<std::byte> buf;
  EXPECT_TRUE(Pup::sizer().sizing());
  EXPECT_TRUE(Pup::packer(buf).packing());
  EXPECT_TRUE(Pup::unpacker(buf).unpacking());
}

TEST(Pup, DoubleRoundTripIdentical) {
  // Repeated pack/unpack cycles are lossless.
  Sample a;
  a.d = 1.0 / 3.0;
  a.values = {1e-300, 1e300, -0.0};
  for (int cycle = 0; cycle < 3; ++cycle) {
    std::vector<std::byte> buf;
    Pup packer = Pup::packer(buf);
    a.pup(packer);
    Sample b;
    Pup unpacker = Pup::unpacker(buf);
    b.pup(unpacker);
    a = b;
  }
  EXPECT_DOUBLE_EQ(a.d, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(a.values[1], 1e300);
}

}  // namespace
}  // namespace ehpc::charm
