#include <gtest/gtest.h>

#include "apps/jacobi2d.hpp"
#include "charm/runtime.hpp"

namespace ehpc::charm {
namespace {

apps::JacobiConfig small_jacobi(int iters = 10) {
  apps::JacobiConfig cfg;
  cfg.grid_n = 256;
  cfg.blocks_x = 4;
  cfg.blocks_y = 4;
  cfg.max_real_block = 32;
  cfg.max_iterations = iters;
  return cfg;
}

RuntimeConfig pes(int n) {
  RuntimeConfig cfg;
  cfg.num_pes = n;
  cfg.pes_per_node = 4;
  return cfg;
}

TEST(Rescale, ShrinkMovesAllElementsOffDyingPes) {
  Runtime rt(pes(8));
  apps::Jacobi2D app(rt, small_jacobi());
  app.driver().at_iteration(2, [](Runtime& r) { r.ccs().request_rescale(4); });
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  EXPECT_EQ(rt.num_pes(), 4);
  for (ElementId e = 0; e < rt.num_elements(app.array()); ++e) {
    EXPECT_LT(rt.pe_of(app.array(), e), 4);
  }
}

TEST(Rescale, ShrinkRecordsFourStages) {
  Runtime rt(pes(8));
  apps::Jacobi2D app(rt, small_jacobi());
  app.driver().at_iteration(2, [](Runtime& r) { r.ccs().request_rescale(4); });
  app.start();
  rt.run();
  ASSERT_TRUE(rt.last_rescale().has_value());
  const RescaleTiming& t = *rt.last_rescale();
  EXPECT_EQ(t.direction, RescaleDirection::kShrink);
  EXPECT_EQ(t.old_pes, 8);
  EXPECT_EQ(t.new_pes, 4);
  EXPECT_GT(t.load_balance_s, 0.0);
  EXPECT_GT(t.checkpoint_s, 0.0);
  EXPECT_GT(t.restart_s, 0.0);
  EXPECT_GT(t.restore_s, 0.0);
  EXPECT_GT(t.migrated_objects, 0);
  EXPECT_GT(t.checkpoint_modeled_bytes, 0.0);
}

TEST(Rescale, ExpandBalancesOntoNewPes) {
  Runtime rt(pes(4));
  apps::Jacobi2D app(rt, small_jacobi());
  app.driver().at_iteration(2, [](Runtime& r) { r.ccs().request_rescale(8); });
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  EXPECT_EQ(rt.num_pes(), 8);
  // After the expand's LB stage, the new PEs must actually host elements.
  bool any_on_new = false;
  for (ElementId e = 0; e < rt.num_elements(app.array()); ++e) {
    if (rt.pe_of(app.array(), e) >= 4) any_on_new = true;
  }
  EXPECT_TRUE(any_on_new);
}

TEST(Rescale, ApplicationStateSurvivesShrink) {
  // Run the same problem with and without a mid-run shrink; the final
  // residual must be identical (checkpoint/restore preserves numerics).
  auto run_residual = [](bool rescale) {
    Runtime rt(pes(8));
    apps::Jacobi2D app(rt, small_jacobi(12));
    if (rescale) {
      app.driver().at_iteration(4, [](Runtime& r) { r.ccs().request_rescale(4); });
    }
    app.start();
    rt.run();
    EXPECT_TRUE(app.driver().finished());
    return app.residual();
  };
  const double with = run_residual(true);
  const double without = run_residual(false);
  EXPECT_DOUBLE_EQ(with, without);
}

TEST(Rescale, AckFiresAfterResume) {
  Runtime rt(pes(8));
  apps::Jacobi2D app(rt, small_jacobi());
  bool acked = false;
  RescaleTiming acked_timing;
  app.driver().at_iteration(2, [&](Runtime& r) {
    r.ccs().request_rescale(4, [&](const RescaleTiming& t) {
      acked = true;
      acked_timing = t;
    });
  });
  app.start();
  rt.run();
  EXPECT_TRUE(acked);
  EXPECT_EQ(acked_timing.new_pes, 4);
  EXPECT_GT(acked_timing.total(), 0.0);
}

TEST(Rescale, RescaleToSameSizeIsNoOpWithAck) {
  Runtime rt(pes(4));
  apps::Jacobi2D app(rt, small_jacobi());
  bool acked = false;
  app.driver().at_iteration(2, [&](Runtime& r) {
    r.ccs().request_rescale(4, [&](const RescaleTiming& t) {
      acked = true;
      EXPECT_EQ(t.total(), 0.0);
    });
  });
  app.start();
  rt.run();
  EXPECT_TRUE(acked);
  EXPECT_FALSE(rt.last_rescale().has_value());
}

TEST(Rescale, IterationGapAppearsInTimeline) {
  Runtime rt(pes(8));
  apps::Jacobi2D app(rt, small_jacobi(12));
  app.driver().at_iteration(4, [](Runtime& r) { r.ccs().request_rescale(4); });
  app.start();
  rt.run();
  const auto& times = app.driver().iteration_end_times();
  ASSERT_EQ(times.size(), 12u);
  // Gap between iterations 4 and 5 must include the rescale pause and be
  // the largest inter-iteration gap.
  const double rescale_gap = times[4] - times[3];
  double max_other = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (i == 4) continue;
    max_other = std::max(max_other, times[i] - times[i - 1]);
  }
  EXPECT_GT(rescale_gap, max_other);
  EXPECT_GE(rescale_gap, rt.last_rescale()->total());
}

TEST(Rescale, ShrinkThenExpandRoundTrip) {
  Runtime rt(pes(8));
  apps::Jacobi2D app(rt, small_jacobi(16));
  app.driver().at_iteration(4, [](Runtime& r) { r.ccs().request_rescale(4); });
  app.driver().at_iteration(10, [](Runtime& r) { r.ccs().request_rescale(8); });
  app.start();
  rt.run();
  EXPECT_TRUE(app.driver().finished());
  EXPECT_EQ(rt.num_pes(), 8);
  ASSERT_EQ(rt.rescale_history().size(), 2u);
  EXPECT_EQ(rt.rescale_history()[0].direction, RescaleDirection::kShrink);
  EXPECT_EQ(rt.rescale_history()[1].direction, RescaleDirection::kExpand);
}

TEST(Rescale, SlowerAfterShrinkFasterAfterExpand) {
  Runtime rt(pes(8));
  // Compute-bound problem: per-iteration time must track PE count.
  apps::JacobiConfig cfg = small_jacobi(18);
  cfg.grid_n = 4096;
  apps::Jacobi2D app(rt, cfg);
  app.driver().at_iteration(6, [](Runtime& r) { r.ccs().request_rescale(4); });
  app.driver().at_iteration(12, [](Runtime& r) { r.ccs().request_rescale(8); });
  app.start();
  rt.run();
  const auto& times = app.driver().iteration_end_times();
  ASSERT_EQ(times.size(), 18u);
  // Steady-state per-iteration times in each regime (skip boundary iters).
  const double t8 = times[5] - times[4];
  const double t4 = times[10] - times[9];
  const double t8b = times[17] - times[16];
  EXPECT_GT(t4, t8);
  EXPECT_LT(t8b, t4);
}

}  // namespace
}  // namespace ehpc::charm
