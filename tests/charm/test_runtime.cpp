#include "charm/runtime.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace ehpc::charm {
namespace {

/// Minimal chare: an integer accumulator.
struct Counter final : Chare {
  int value = 0;
  void pup(Pup& p) override { p | value; }
};

RuntimeConfig small_config(int pes) {
  RuntimeConfig cfg;
  cfg.num_pes = pes;
  cfg.pes_per_node = 2;
  return cfg;
}

Runtime::ElementFactory counter_factory() {
  return [](ElementId) { return std::make_unique<Counter>(); };
}

TEST(Runtime, CreatesArrayRoundRobin) {
  Runtime rt(small_config(4));
  ArrayId a = rt.create_array("c", 8, counter_factory());
  EXPECT_EQ(rt.num_elements(a), 8);
  for (ElementId e = 0; e < 8; ++e) {
    EXPECT_EQ(rt.pe_of(a, e), e % 4);
  }
}

TEST(Runtime, DeliversMessageAndAdvancesTime) {
  Runtime rt(small_config(2));
  ArrayId a = rt.create_array("c", 2, counter_factory());
  rt.send(a, 1, 1024, [](Chare& c, Runtime&) {
    static_cast<Counter&>(c).value = 42;
  });
  rt.run();
  EXPECT_EQ(static_cast<Counter&>(rt.element(a, 1)).value, 42);
  EXPECT_GT(rt.now(), 0.0);
}

TEST(Runtime, ChargedFlopsExtendVirtualTime) {
  Runtime rt(small_config(1));
  ArrayId a = rt.create_array("c", 1, counter_factory());
  const double rate = rt.config().flop_rate;
  rt.send(a, 0, 8, [rate](Chare&, Runtime& r) { r.charge_flops(rate); });
  rt.run();
  // `rate` flops at `rate` flops/s = 1 second of compute.
  EXPECT_GE(rt.now(), 1.0);
  EXPECT_LT(rt.now(), 1.1);
}

TEST(Runtime, SerializesHandlersOnSamePe) {
  Runtime rt(small_config(1));
  ArrayId a = rt.create_array("c", 1, counter_factory());
  const double flops = rt.config().flop_rate / 8.0;  // 0.125 s each
  for (int i = 0; i < 4; ++i) {
    rt.send(a, 0, 8, [flops](Chare& c, Runtime& r) {
      r.charge_flops(flops);
      static_cast<Counter&>(c).value += 1;
    });
  }
  rt.run();
  EXPECT_EQ(static_cast<Counter&>(rt.element(a, 0)).value, 4);
  EXPECT_GE(rt.now(), 4 * 0.125);  // serialized, not parallel
}

TEST(Runtime, ParallelPesOverlap) {
  Runtime rt(small_config(4));
  ArrayId a = rt.create_array("c", 4, counter_factory());
  for (ElementId e = 0; e < 4; ++e) {
    const double eighth = rt.config().flop_rate / 8.0;  // 0.125 s
    rt.send(a, e, 8, [eighth](Chare&, Runtime& r) { r.charge_flops(eighth); });
  }
  rt.run();
  // Four PEs work concurrently: total stays near one handler's duration.
  EXPECT_LT(rt.now(), 2 * 0.125 + 0.01);
}

TEST(Runtime, IntraNodeCheaperThanInterNode) {
  // Two elements on PEs 0 and 1 (same node with pes_per_node=2); compare a
  // same-node message against a cross-node one (pes 0 and 2).
  Runtime rt(small_config(4));
  ArrayId a = rt.create_array("c", 4, counter_factory());
  rt.send(a, 1, 1 << 20, [](Chare&, Runtime&) {});
  rt.run();
  const double same_node = rt.now();

  Runtime rt2(small_config(4));
  ArrayId b = rt2.create_array("c", 4, counter_factory());
  rt2.send(b, 2, 1 << 20, [](Chare&, Runtime&) {});
  rt2.run();
  EXPECT_LT(same_node, rt2.now());
}

TEST(Runtime, ReductionFiresOnceAfterAllContribute) {
  Runtime rt(small_config(2));
  ArrayId a = rt.create_array("c", 4, counter_factory());
  int fired = 0;
  double result = 0.0;
  rt.set_reduction_client(a, [&](double v, Runtime&) {
    ++fired;
    result = v;
  });
  rt.broadcast(a, 8, [a](Chare&, Runtime& r) { r.contribute(a, 2.5, ReduceOp::kSum); });
  rt.run();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(result, 10.0);
}

TEST(Runtime, ReductionMaxAndMin) {
  for (auto op : {ReduceOp::kMax, ReduceOp::kMin}) {
    Runtime rt(small_config(2));
    ArrayId a = rt.create_array("c", 3, counter_factory());
    double result = 0.0;
    rt.set_reduction_client(a, [&](double v, Runtime&) { result = v; });
    for (ElementId e = 0; e < 3; ++e) {
      rt.send(a, e, 8, [a, e, op](Chare&, Runtime& r) {
        r.contribute(a, static_cast<double>(e), op);
      });
    }
    rt.run();
    EXPECT_DOUBLE_EQ(result, op == ReduceOp::kMax ? 2.0 : 0.0);
  }
}

TEST(Runtime, ReductionSupportsConsecutiveRounds) {
  Runtime rt(small_config(2));
  ArrayId a = rt.create_array("c", 2, counter_factory());
  int rounds = 0;
  rt.set_reduction_client(a, [&](double, Runtime& r) {
    ++rounds;
    if (rounds < 3) {
      r.broadcast(a, 8, [a](Chare&, Runtime& rr) {
        rr.contribute(a, 1.0, ReduceOp::kSum);
      });
    }
  });
  rt.broadcast(a, 8, [a](Chare&, Runtime& r) { r.contribute(a, 1.0, ReduceOp::kSum); });
  rt.run();
  EXPECT_EQ(rounds, 3);
}

TEST(Runtime, LoadTrackingAccumulatesPerElement) {
  Runtime rt(small_config(2));
  ArrayId a = rt.create_array("c", 2, counter_factory());
  const double rate = rt.config().flop_rate;
  rt.send(a, 0, 8, [rate](Chare&, Runtime& r) { r.charge_flops(rate); });
  rt.send(a, 1, 8, [rate](Chare&, Runtime& r) { r.charge_flops(rate / 2.0); });
  rt.run();
  auto loads = rt.element_loads(a);
  EXPECT_NEAR(loads[0], 1.0, 1e-9);
  EXPECT_NEAR(loads[1], 0.5, 1e-9);
}

TEST(Runtime, LoadBalanceMovesWorkOffHotPe) {
  RuntimeConfig cfg = small_config(2);
  cfg.load_balancer = "greedy";
  Runtime rt(cfg);
  ArrayId a = rt.create_array("c", 4, counter_factory());
  // Pin all elements to PE 0 and give them load.
  // Round-robin start: elements 0,2 on PE 0 and 1,3 on PE 1; load them
  // unevenly so greedy must move something.
  for (ElementId e = 0; e < 4; ++e) {
    rt.send(a, e, 8, [](Chare&, Runtime& r) { r.charge_flops(1.0e9); });
  }
  rt.run();
  bool continued = false;
  rt.load_balance_then([&](Runtime&) { continued = true; });
  rt.run();
  EXPECT_TRUE(continued);
  // Mapping remains a permutation over available PEs.
  for (ElementId e = 0; e < 4; ++e) {
    EXPECT_GE(rt.pe_of(a, e), 0);
    EXPECT_LT(rt.pe_of(a, e), 2);
  }
}

TEST(Runtime, ExternalEventRunsAtRequestedTime) {
  Runtime rt(small_config(1));
  double seen = -1.0;
  rt.schedule_external(5.0, [&](Runtime& r) { seen = r.now(); });
  rt.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Runtime, RejectsBadConfig) {
  RuntimeConfig cfg;
  cfg.num_pes = 0;
  EXPECT_THROW(Runtime rt(cfg), PreconditionError);
}

TEST(Runtime, ChargeFlopsOutsideHandlerThrows) {
  Runtime rt(small_config(1));
  EXPECT_THROW(rt.charge_flops(1.0), PreconditionError);
}

// ---- pre-registered entry methods (the pooled fast path) ----

TEST(Runtime, RegisteredEntryDeliversLikeAdHocHandler) {
  // Same workload through both dispatch paths must produce identical state
  // and identical virtual time.
  const auto drive = [](bool registered) {
    Runtime rt(small_config(2));
    ArrayId a = rt.create_array("c", 4, counter_factory());
    const auto bump = [](Chare& c, Runtime& r) {
      static_cast<Counter&>(c).value += 1;
      r.charge_flops(1.0e6);
    };
    const EntryId entry = rt.register_entry(bump);
    for (int round = 0; round < 3; ++round) {
      for (ElementId e = 0; e < 4; ++e) {
        if (registered) {
          rt.send(a, e, 128, entry);
        } else {
          rt.send(a, e, 128, bump);
        }
      }
    }
    rt.run();
    std::vector<int> values;
    for (ElementId e = 0; e < 4; ++e) {
      values.push_back(static_cast<Counter&>(rt.element(a, e)).value);
    }
    return std::pair{values, rt.now()};
  };
  const auto [ad_hoc_values, ad_hoc_now] = drive(false);
  const auto [entry_values, entry_now] = drive(true);
  EXPECT_EQ(ad_hoc_values, (std::vector<int>{3, 3, 3, 3}));
  EXPECT_EQ(entry_values, ad_hoc_values);
  EXPECT_DOUBLE_EQ(entry_now, ad_hoc_now);
}

TEST(Runtime, RegisteredEntryBroadcastReachesEveryElement) {
  Runtime rt(small_config(2));
  ArrayId a = rt.create_array("c", 6, counter_factory());
  const EntryId entry = rt.register_entry([](Chare& c, Runtime&) {
    static_cast<Counter&>(c).value = 7;
  });
  rt.broadcast(a, 64, entry);
  rt.run();
  for (ElementId e = 0; e < 6; ++e) {
    EXPECT_EQ(static_cast<Counter&>(rt.element(a, e)).value, 7);
  }
}

TEST(Runtime, EntrySendFromInsideHandlerChains) {
  Runtime rt(small_config(2));
  ArrayId a = rt.create_array("c", 2, counter_factory());
  // Entry methods registered during execution must be addressable from
  // handlers (entries_ stays stable while growing).
  const EntryId sink = rt.register_entry([](Chare& c, Runtime&) {
    static_cast<Counter&>(c).value += 10;
  });
  const EntryId relay = rt.register_entry([sink, a](Chare&, Runtime& r) {
    r.send(a, 1, 32, sink);
  });
  rt.send(a, 0, 32, relay);
  rt.run();
  EXPECT_EQ(static_cast<Counter&>(rt.element(a, 0)).value, 0);
  EXPECT_EQ(static_cast<Counter&>(rt.element(a, 1)).value, 10);
}

TEST(Runtime, SendRejectsUnknownEntryId) {
  Runtime rt(small_config(1));
  ArrayId a = rt.create_array("c", 1, counter_factory());
  EXPECT_THROW(rt.send(a, 0, 8, EntryId{0}), PreconditionError);
  EXPECT_THROW(rt.send(a, 0, 8, kInvalidEntry), PreconditionError);
  rt.register_entry([](Chare&, Runtime&) {});
  rt.send(a, 0, 8, EntryId{0});  // now registered
  rt.run();
}

// Messaging stress through the envelope pool: fan-out chains with nested
// sends must deliver exactly once each and stay deterministic.
TEST(Runtime, EnvelopePoolRecyclingPreservesDelivery) {
  Runtime rt(small_config(4));
  ArrayId a = rt.create_array("c", 8, counter_factory());
  int delivered = 0;
  const EntryId leaf = rt.register_entry([&delivered](Chare& c, Runtime&) {
    static_cast<Counter&>(c).value += 1;
    ++delivered;
  });
  const EntryId fan = rt.register_entry([&, a](Chare&, Runtime& r) {
    for (ElementId e = 0; e < 8; ++e) r.send(a, e, 16, leaf);
  });
  for (int wave = 0; wave < 50; ++wave) {
    rt.send(a, wave % 8, 16, fan);
  }
  rt.run();
  EXPECT_EQ(delivered, 50 * 8);
  int total = 0;
  for (ElementId e = 0; e < 8; ++e) {
    total += static_cast<Counter&>(rt.element(a, e)).value;
  }
  EXPECT_EQ(total, 50 * 8);
}

}  // namespace
}  // namespace ehpc::charm
