#include "common/config.hpp"

#include <gtest/gtest.h>

namespace ehpc {
namespace {

Config parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Config::from_args(static_cast<int>(argv.size()), argv.data());
}

TEST(Config, ParsesKeyValues) {
  Config c = parse({"repeats=20", "seed=7"});
  EXPECT_EQ(c.get_int("repeats", 0), 20);
  EXPECT_EQ(c.get_int("seed", 0), 7);
}

TEST(Config, PositionalArgsCollected) {
  Config c = parse({"elastic", "gap=90", "run"});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "elastic");
  EXPECT_EQ(c.positional()[1], "run");
}

TEST(Config, FallbacksWhenMissing) {
  Config c = parse({});
  EXPECT_EQ(c.get_int("x", 42), 42);
  EXPECT_DOUBLE_EQ(c.get_double("y", 1.5), 1.5);
  EXPECT_EQ(c.get_or("z", "dflt"), "dflt");
  EXPECT_TRUE(c.get_bool("flag", true));
  EXPECT_FALSE(c.get("missing").has_value());
}

TEST(Config, BoolParsing) {
  Config c = parse({"a=true", "b=0", "c=YES", "d=off"});
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
}

TEST(Config, DoubleParsing) {
  Config c = parse({"rate=2.5"});
  EXPECT_DOUBLE_EQ(c.get_double("rate", 0.0), 2.5);
}

TEST(Config, LastValueWins) {
  Config c = parse({"k=1", "k=2"});
  EXPECT_EQ(c.get_int("k", 0), 2);
}

TEST(Config, SetOverrides) {
  Config c = parse({"k=1"});
  c.set("k", "9");
  EXPECT_EQ(c.get_int("k", 0), 9);
  EXPECT_TRUE(c.has("k"));
}

TEST(Config, ValueWithEqualsSign) {
  Config c = parse({"expr=a=b"});
  EXPECT_EQ(c.get_or("expr", ""), "a=b");
}

TEST(Config, DashedFlagsNormalised) {
  Config c = parse({"--quick", "--out-dir=/tmp/x", "--rel-tol=0.1"});
  EXPECT_TRUE(c.get_bool("quick", false));
  EXPECT_EQ(c.get_or("out_dir", ""), "/tmp/x");
  EXPECT_DOUBLE_EQ(c.get_double("rel_tol", 0.0), 0.1);
  EXPECT_TRUE(c.positional().empty());
}

TEST(Config, BareDoubleDashStaysPositional) {
  Config c = parse({"--", "-x"});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "--");
  EXPECT_EQ(c.positional()[1], "-x");
}

TEST(Config, StrictParseRejectsUnknownKey) {
  std::vector<const char*> argv{"prog", "seed=7", "repeets=3"};
  EXPECT_THROW(Config::from_args(static_cast<int>(argv.size()), argv.data(),
                                 {"seed", "repeats"}),
               ConfigError);
  try {
    Config::from_args(static_cast<int>(argv.size()), argv.data(),
                      {"seed", "repeats"});
  } catch (const ConfigError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("repeets"), std::string::npos);
    EXPECT_NE(what.find("repeats"), std::string::npos);
  }
}

TEST(Config, StrictParseAcceptsKnownKeys) {
  std::vector<const char*> argv{"prog", "seed=7", "positional_ok"};
  const Config c = Config::from_args(static_cast<int>(argv.size()),
                                     argv.data(), {"seed"});
  EXPECT_EQ(c.get_int("seed", 0), 7);
  ASSERT_EQ(c.positional().size(), 1u);
}

TEST(Config, RequireKnownOnEmptyAllowedList) {
  Config c = parse({"k=1"});
  EXPECT_THROW(c.require_known({}), ConfigError);
  EXPECT_NO_THROW(parse({}).require_known({}));
}

TEST(Config, ValuesExposesOrderedMap) {
  Config c = parse({"b=2", "a=1"});
  ASSERT_EQ(c.values().size(), 2u);
  EXPECT_EQ(c.values().begin()->first, "a");
}

}  // namespace
}  // namespace ehpc
