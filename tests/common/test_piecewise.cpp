#include "common/piecewise_linear.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ehpc {
namespace {

TEST(PiecewiseLinear, ExactAtBreakpoints) {
  PiecewiseLinear f({{1.0, 10.0}, {2.0, 20.0}, {4.0, 10.0}});
  EXPECT_DOUBLE_EQ(f.at(1.0), 10.0);
  EXPECT_DOUBLE_EQ(f.at(2.0), 20.0);
  EXPECT_DOUBLE_EQ(f.at(4.0), 10.0);
}

TEST(PiecewiseLinear, InterpolatesBetween) {
  PiecewiseLinear f({{0.0, 0.0}, {10.0, 100.0}});
  EXPECT_DOUBLE_EQ(f.at(2.5), 25.0);
  EXPECT_DOUBLE_EQ(f.at(7.5), 75.0);
}

TEST(PiecewiseLinear, ExtrapolatesLinearly) {
  PiecewiseLinear f({{1.0, 1.0}, {2.0, 2.0}});
  EXPECT_DOUBLE_EQ(f.at(3.0), 3.0);
  EXPECT_DOUBLE_EQ(f.at(0.0), 0.0);
}

TEST(PiecewiseLinear, ClampedStopsAtBoundary) {
  PiecewiseLinear f({{1.0, 1.0}, {2.0, 2.0}});
  EXPECT_DOUBLE_EQ(f.at_clamped(10.0), 2.0);
  EXPECT_DOUBLE_EQ(f.at_clamped(-10.0), 1.0);
  EXPECT_DOUBLE_EQ(f.at_clamped(1.5), 1.5);
}

TEST(PiecewiseLinear, SinglePointIsConstant) {
  PiecewiseLinear f({{3.0, 7.0}});
  EXPECT_DOUBLE_EQ(f.at(0.0), 7.0);
  EXPECT_DOUBLE_EQ(f.at(100.0), 7.0);
}

TEST(PiecewiseLinear, SortsUnorderedInput) {
  PiecewiseLinear f({{2.0, 20.0}, {1.0, 10.0}});
  EXPECT_DOUBLE_EQ(f.at(1.5), 15.0);
}

TEST(PiecewiseLinear, RejectsDuplicateX) {
  EXPECT_THROW(PiecewiseLinear({{1.0, 1.0}, {1.0, 2.0}}), PreconditionError);
}

TEST(PiecewiseLinear, RejectsEmpty) {
  EXPECT_THROW(PiecewiseLinear(std::vector<std::pair<double, double>>{}),
               PreconditionError);
}

TEST(PiecewiseLinear, LogLogReproducesPowerLaw) {
  // y = 16/x sampled at x = 1 and 16; log-log interpolation must recover the
  // power law exactly at intermediate points.
  PiecewiseLinear f({{1.0, 16.0}, {16.0, 1.0}});
  EXPECT_NEAR(f.at_loglog(4.0), 4.0, 1e-12);
  EXPECT_NEAR(f.at_loglog(2.0), 8.0, 1e-12);
}

TEST(PiecewiseLinear, LogLogRejectsNonPositive) {
  PiecewiseLinear f({{1.0, 1.0}, {2.0, 2.0}});
  EXPECT_THROW(f.at_loglog(0.0), PreconditionError);
}

TEST(PiecewiseLinear, DefaultConstructedIsEmptyAndRejectsQueries) {
  PiecewiseLinear f;
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_THROW(f.at(1.0), PreconditionError);
  EXPECT_THROW(f.at_clamped(1.0), PreconditionError);
  EXPECT_THROW(f.at_loglog(1.0), PreconditionError);
}

TEST(PiecewiseLinear, SingleKnotAllQueryModesAreConstant) {
  PiecewiseLinear f({{3.0, 7.0}});
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f.at_clamped(-100.0), 7.0);
  EXPECT_DOUBLE_EQ(f.at_clamped(100.0), 7.0);
  EXPECT_DOUBLE_EQ(f.at_loglog(0.5), 7.0);
  EXPECT_DOUBLE_EQ(f.at_loglog(50.0), 7.0);
}

TEST(PiecewiseLinear, FarOutOfRangeExtrapolationFollowsEdgeSegments) {
  // Left segment has slope 2, right segment has slope -1; extrapolation must
  // continue those slopes arbitrarily far out, even past y = 0.
  PiecewiseLinear f({{0.0, 0.0}, {1.0, 2.0}, {3.0, 0.0}});
  EXPECT_DOUBLE_EQ(f.at(-10.0), -20.0);
  EXPECT_DOUBLE_EQ(f.at(103.0), -100.0);
}

TEST(PiecewiseLinear, ExtrapolationAndClampAgreeAtBoundary) {
  PiecewiseLinear f({{1.0, 4.0}, {2.0, 8.0}});
  EXPECT_DOUBLE_EQ(f.at(1.0), f.at_clamped(1.0));
  EXPECT_DOUBLE_EQ(f.at(2.0), f.at_clamped(2.0));
}

TEST(PiecewiseLinear, PointsAccessorReturnsSortedKnots) {
  PiecewiseLinear f({{2.0, 20.0}, {1.0, 10.0}, {3.0, 30.0}});
  const auto& pts = f.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts.front().first, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().first, 3.0);
}

// Property sweep: interpolation is monotone within a monotone segment and
// bounded by segment endpoints.
class PiecewiseProperty : public ::testing::TestWithParam<double> {};

TEST_P(PiecewiseProperty, BoundedBySegmentEndpoints) {
  PiecewiseLinear f({{0.0, 3.0}, {1.0, 9.0}, {2.0, 5.0}, {5.0, 6.0}});
  const double x = GetParam();
  const double y = f.at(x);
  EXPECT_GE(y, 3.0 - 1e-12);
  EXPECT_LE(y, 9.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(InsideDomain, PiecewiseProperty,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0,
                                           2.5, 3.0, 4.0, 4.99, 5.0));

}  // namespace
}  // namespace ehpc
