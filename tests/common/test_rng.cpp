#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ehpc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(Rng, NormalZeroStddevReturnsMean) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, 0.0), 3.5);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedIndexHonoursWeights) {
  Rng rng(17);
  std::vector<double> weights{0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(Rng, WeightedIndexDistribution) {
  Rng rng(19);
  std::vector<double> weights{1.0, 3.0};
  int counts[2] = {0, 0};
  const int n = 10000;
  for (int i = 0; i < n; ++i) counts[rng.weighted_index(weights)]++;
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.03);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(1);
  std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), PreconditionError);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(42);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform_int(0, 1'000'000) == child.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5};
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, InvalidBoundsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), PreconditionError);
  EXPECT_THROW(rng.uniform(5.0, 4.0), PreconditionError);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.chance(1.5), PreconditionError);
}

}  // namespace
}  // namespace ehpc
