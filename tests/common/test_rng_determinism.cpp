// Pins exact RNG output sequences for fixed seeds. Every figure reproduction
// (job mixes, arrival processes, calibration noise) depends on run-to-run and
// machine-to-machine reproducibility, so a silent change to the engine, the
// default seed, or `split()` must fail loudly here.
//
// The raw std::mt19937_64 sequence is mandated by the C++ standard
// ([rand.eng.mers]), so the engine-level pins are portable across compilers
// and architectures. Distribution-level output is implementation-defined, so
// those pins are guarded to libstdc++ (the toolchain CI runs).

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

namespace ehpc {
namespace {

TEST(RngDeterminism, RawEngineSequencePinnedForFixedSeed) {
  Rng rng(12345);
  const std::array<std::uint64_t, 5> expected{
      6597103971274460346ull, 7386862472818278521ull, 12716877617435052285ull,
      10325298820568433954ull, 10596756003076376996ull};
  for (std::uint64_t want : expected) {
    EXPECT_EQ(rng.engine()(), want);
  }
}

TEST(RngDeterminism, DefaultSeedSequencePinned) {
  Rng rng;
  const std::array<std::uint64_t, 3> expected{
      18166583390611423225ull, 13118201317593763316ull,
      10726798203296004101ull};
  for (std::uint64_t want : expected) {
    EXPECT_EQ(rng.engine()(), want);
  }
}

TEST(RngDeterminism, TenThousandthOutputMatchesStandard) {
  // [rand.predef]: the 10000th consecutive invocation of a default-constructed
  // std::mt19937_64 must produce 9981545732273789042.
  std::mt19937_64 engine;
  std::uint64_t v = 0;
  for (int i = 0; i < 10000; ++i) v = engine();
  EXPECT_EQ(v, 9981545732273789042ull);
}

TEST(RngDeterminism, SplitChildSequencePinned) {
  Rng parent(42);
  Rng child = parent.split();
  const std::array<std::uint64_t, 3> expected{
      3009440112552327892ull, 2854967155236198443ull, 17242943986237568742ull};
  for (std::uint64_t want : expected) {
    EXPECT_EQ(child.engine()(), want);
  }
}

TEST(RngDeterminism, SplitIsDeterministic) {
  Rng a(99), b(99);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ca.engine()(), cb.engine()());
  }
}

#ifdef __GLIBCXX__
// Distribution algorithms are implementation-defined; these pins document the
// libstdc++ behavior the figure pipelines were calibrated against.
TEST(RngDeterminism, UniformIntSequencePinnedOnLibstdcxx) {
  Rng rng(2026);
  const std::array<std::int64_t, 8> expected{317, 654, 484, 759,
                                             255, 691, 290, 924};
  for (std::int64_t want : expected) {
    EXPECT_EQ(rng.uniform_int(0, 999), want);
  }
}

TEST(RngDeterminism, UniformRealSequencePinnedOnLibstdcxx) {
  Rng rng(7);
  const std::array<double, 4> expected{
      0.75438530415285798, 0.94930120289264419, 0.11741428103451812,
      0.89191317671247639};
  for (double want : expected) {
    EXPECT_DOUBLE_EQ(rng.uniform(0.0, 1.0), want);
  }
}
#endif

}  // namespace
}  // namespace ehpc
