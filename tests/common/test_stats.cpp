#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ehpc {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(WeightedMean, MatchesHandComputation) {
  WeightedMean wm;
  wm.add(10.0, 1.0);
  wm.add(20.0, 3.0);
  EXPECT_DOUBLE_EQ(wm.value(), (10.0 + 60.0) / 4.0);
  EXPECT_DOUBLE_EQ(wm.total_weight(), 4.0);
}

TEST(WeightedMean, ZeroWeightSamplesIgnoredInValue) {
  WeightedMean wm;
  wm.add(100.0, 0.0);
  EXPECT_DOUBLE_EQ(wm.value(), 0.0);
  wm.add(10.0, 2.0);
  EXPECT_DOUBLE_EQ(wm.value(), 10.0);
}

TEST(WeightedMean, NegativeWeightThrows) {
  WeightedMean wm;
  EXPECT_THROW(wm.add(1.0, -0.5), PreconditionError);
}

TEST(WeightedMean, MergeCombines) {
  WeightedMean a, b;
  a.add(1.0, 1.0);
  b.add(3.0, 1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value(), 2.0);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  // Sorted: 0, 10. p75 = 7.5.
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.75), 7.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({4.2}, 0.9), 4.2);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), PreconditionError);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(mean_of({5.0}), 5.0);
}

TEST(MeanOf, EmptyThrowsLikePercentile) {
  // mean_of used to return 0.0 on empty input while percentile threw; the
  // goodput metrics hit the empty case on jobs killed before their first
  // iteration, and a silent 0 would poison averaged results.
  EXPECT_THROW(mean_of({}), PreconditionError);
}

TEST(TimeWeightedAverage, ConstantFunction) {
  EXPECT_DOUBLE_EQ(time_weighted_average({{0.0, 5.0}}, 10.0), 5.0);
}

TEST(TimeWeightedAverage, StepFunction) {
  // 1.0 on [0,2), 3.0 on [2,4): average = (2*1 + 2*3)/4 = 2.
  EXPECT_DOUBLE_EQ(time_weighted_average({{0.0, 1.0}, {2.0, 3.0}}, 4.0), 2.0);
}

TEST(TimeWeightedAverage, UnevenSegments) {
  // 0 on [0,9), 10 on [9,10): average = 1.
  EXPECT_DOUBLE_EQ(time_weighted_average({{0.0, 0.0}, {9.0, 10.0}}, 10.0), 1.0);
}

TEST(TimeWeightedAverage, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(time_weighted_average({}, 5.0), 0.0);
}

TEST(TimeWeightedAverage, ZeroSpanReturnsLastValue) {
  EXPECT_DOUBLE_EQ(time_weighted_average({{2.0, 7.0}}, 2.0), 7.0);
}

TEST(TimeWeightedAverage, EndTimeBeforeStartThrows) {
  EXPECT_THROW(time_weighted_average({{2.0, 7.0}}, 1.0), PreconditionError);
}

TEST(RunningStats, NegativeSamplesTrackMinMax) {
  RunningStats s;
  for (double x : {-3.0, -1.0, -7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -7.0);
  EXPECT_DOUBLE_EQ(s.max(), -1.0);
  EXPECT_DOUBLE_EQ(s.mean(), -11.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), -11.0);
}

TEST(RunningStats, StddevIsSqrtOfVariance) {
  RunningStats s;
  for (double x : {1.0, 3.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.stddev() * s.stddev(), s.variance());
}

TEST(RunningStats, ConstantSamplesHaveZeroVariance) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.add(4.25);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(WeightedMean, MergeWithEmptyIsIdentity) {
  WeightedMean a, empty;
  a.add(5.0, 2.0);
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.value(), 5.0);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.value(), 5.0);
}

TEST(Percentile, OutOfRangeQuantileThrows) {
  EXPECT_THROW(percentile({1.0, 2.0}, -0.1), PreconditionError);
  EXPECT_THROW(percentile({1.0, 2.0}, 1.1), PreconditionError);
}

TEST(Percentile, DuplicateValuesInterpolateFlat) {
  EXPECT_DOUBLE_EQ(percentile({2.0, 2.0, 2.0, 9.0}, 0.5), 2.0);
}

}  // namespace
}  // namespace ehpc
