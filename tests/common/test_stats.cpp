#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace ehpc {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(WeightedMean, MatchesHandComputation) {
  WeightedMean wm;
  wm.add(10.0, 1.0);
  wm.add(20.0, 3.0);
  EXPECT_DOUBLE_EQ(wm.value(), (10.0 + 60.0) / 4.0);
  EXPECT_DOUBLE_EQ(wm.total_weight(), 4.0);
}

TEST(WeightedMean, ZeroWeightSamplesIgnoredInValue) {
  WeightedMean wm;
  wm.add(100.0, 0.0);
  EXPECT_DOUBLE_EQ(wm.value(), 0.0);
  wm.add(10.0, 2.0);
  EXPECT_DOUBLE_EQ(wm.value(), 10.0);
}

TEST(WeightedMean, NegativeWeightThrows) {
  WeightedMean wm;
  EXPECT_THROW(wm.add(1.0, -0.5), PreconditionError);
}

TEST(WeightedMean, MergeCombines) {
  WeightedMean a, b;
  a.add(1.0, 1.0);
  b.add(3.0, 1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value(), 2.0);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, InterpolatesBetweenOrderStats) {
  // Sorted: 0, 10. p75 = 7.5.
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.75), 7.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({4.2}, 0.9), 4.2);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), PreconditionError);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(mean_of({5.0}), 5.0);
}

TEST(MeanOf, EmptyThrowsLikePercentile) {
  // mean_of used to return 0.0 on empty input while percentile threw; the
  // goodput metrics hit the empty case on jobs killed before their first
  // iteration, and a silent 0 would poison averaged results.
  EXPECT_THROW(mean_of({}), PreconditionError);
}

TEST(TimeWeightedAverage, ConstantFunction) {
  EXPECT_DOUBLE_EQ(time_weighted_average({{0.0, 5.0}}, 10.0), 5.0);
}

TEST(TimeWeightedAverage, StepFunction) {
  // 1.0 on [0,2), 3.0 on [2,4): average = (2*1 + 2*3)/4 = 2.
  EXPECT_DOUBLE_EQ(time_weighted_average({{0.0, 1.0}, {2.0, 3.0}}, 4.0), 2.0);
}

TEST(TimeWeightedAverage, UnevenSegments) {
  // 0 on [0,9), 10 on [9,10): average = 1.
  EXPECT_DOUBLE_EQ(time_weighted_average({{0.0, 0.0}, {9.0, 10.0}}, 10.0), 1.0);
}

TEST(TimeWeightedAverage, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(time_weighted_average({}, 5.0), 0.0);
}

TEST(TimeWeightedAverage, ZeroSpanReturnsLastValue) {
  EXPECT_DOUBLE_EQ(time_weighted_average({{2.0, 7.0}}, 2.0), 7.0);
}

TEST(TimeWeightedAverage, EndTimeBeforeStartThrows) {
  EXPECT_THROW(time_weighted_average({{2.0, 7.0}}, 1.0), PreconditionError);
}

TEST(RunningStats, NegativeSamplesTrackMinMax) {
  RunningStats s;
  for (double x : {-3.0, -1.0, -7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -7.0);
  EXPECT_DOUBLE_EQ(s.max(), -1.0);
  EXPECT_DOUBLE_EQ(s.mean(), -11.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), -11.0);
}

TEST(RunningStats, StddevIsSqrtOfVariance) {
  RunningStats s;
  for (double x : {1.0, 3.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.stddev() * s.stddev(), s.variance());
}

TEST(RunningStats, ConstantSamplesHaveZeroVariance) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.add(4.25);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(WeightedMean, MergeWithEmptyIsIdentity) {
  WeightedMean a, empty;
  a.add(5.0, 2.0);
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.value(), 5.0);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.value(), 5.0);
}

TEST(Percentile, OutOfRangeQuantileThrows) {
  EXPECT_THROW(percentile({1.0, 2.0}, -0.1), PreconditionError);
  EXPECT_THROW(percentile({1.0, 2.0}, 1.1), PreconditionError);
}

TEST(Percentile, DuplicateValuesInterpolateFlat) {
  EXPECT_DOUBLE_EQ(percentile({2.0, 2.0, 2.0, 9.0}, 0.5), 2.0);
}

// ---- P² online quantiles ----

/// splitmix64-style generator so the accuracy tests are deterministic and
/// independent of libstdc++'s distribution implementations.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a counter.
double u01(std::uint64_t seed, std::uint64_t i) {
  return static_cast<double>(mix64(seed ^ mix64(i)) >> 11) * 0x1.0p-53;
}

/// Feeds `samples` to a fresh P2Quantile and checks the estimate against the
/// exact percentile of the same data, tolerance scaled by the data spread.
void expect_p2_close(const std::vector<double>& samples, double q,
                     double rel_tol) {
  P2Quantile est(q);
  for (double x : samples) est.add(x);
  std::vector<double> sorted = samples;
  const double exact = percentile(sorted, q);
  const double lo = percentile(sorted, 0.0);
  const double hi = percentile(sorted, 1.0);
  const double spread = hi - lo;
  EXPECT_EQ(est.count(), samples.size());
  EXPECT_NEAR(est.value(), exact, rel_tol * spread)
      << "q=" << q << " n=" << samples.size();
}

TEST(P2Quantile, ExactForFirstFiveSamples) {
  P2Quantile median(0.5);
  const std::vector<double> xs{9.0, 1.0, 7.0, 3.0, 5.0};
  std::vector<double> seen;
  for (double x : xs) {
    median.add(x);
    seen.push_back(x);
    EXPECT_DOUBLE_EQ(median.value(), percentile(seen, 0.5))
        << "after " << seen.size() << " samples";
  }
}

TEST(P2Quantile, NoSamplesReadsZeroAndBadQuantileThrows) {
  EXPECT_DOUBLE_EQ(P2Quantile(0.9).value(), 0.0);
  EXPECT_THROW(P2Quantile(0.0), PreconditionError);
  EXPECT_THROW(P2Quantile(1.0), PreconditionError);
  EXPECT_THROW(P2Quantile(-0.5), PreconditionError);
}

TEST(P2Quantile, UniformAccuracy) {
  std::vector<double> samples;
  for (std::uint64_t i = 0; i < 20000; ++i)
    samples.push_back(u01(1234, i) * 100.0);
  for (double q : {0.5, 0.9, 0.99}) expect_p2_close(samples, q, 0.01);
}

TEST(P2Quantile, BimodalAccuracy) {
  // Two well-separated modes (around 10 and around 1000) — the estimator
  // must not settle between them for quantiles inside either mode.
  std::vector<double> samples;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const double u = u01(99, i);
    const double v = u01(77, i);
    samples.push_back(u < 0.7 ? 10.0 + v : 1000.0 + 10.0 * v);
  }
  expect_p2_close(samples, 0.5, 0.01);   // deep inside the low mode
  expect_p2_close(samples, 0.9, 0.01);   // inside the high mode
  expect_p2_close(samples, 0.99, 0.01);  // upper tail of the high mode
}

TEST(P2Quantile, HeavyTailAccuracy) {
  // Pareto(alpha=1.5): infinite variance, the documented worst case for P².
  // Mid quantiles stay tight; the p99 tolerance is looser by design.
  std::vector<double> samples;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const double u = 1.0 - u01(2025, i);  // (0, 1]
    samples.push_back(std::pow(u, -1.0 / 1.5));
  }
  std::vector<double> sorted = samples;
  const double exact_p50 = percentile(sorted, 0.5);
  const double exact_p99 = percentile(sorted, 0.99);
  P2Quantile p50(0.5);
  P2Quantile p99(0.99);
  for (double x : samples) {
    p50.add(x);
    p99.add(x);
  }
  EXPECT_NEAR(p50.value(), exact_p50, 0.02 * exact_p50);
  EXPECT_NEAR(p99.value(), exact_p99, 0.25 * exact_p99);
}

}  // namespace
}  // namespace ehpc
