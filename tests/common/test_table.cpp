#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ehpc {
namespace {

TEST(Table, RejectsWrongCellCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), PreconditionError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), PreconditionError);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, CsvRoundTripSimple) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, ParseCsvRoundTripsEscapedCells) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  t.add_row({"multi\nline", ""});
  const Table back = parse_csv(t.to_csv());
  EXPECT_EQ(back.header(), t.header());
  ASSERT_EQ(back.rows(), t.rows());
  EXPECT_EQ(back.row(0), t.row(0));
  EXPECT_EQ(back.row(1), t.row(1));
}

TEST(Table, ParseCsvHandlesCrlfAndTrailingCell) {
  const Table t = parse_csv("a,b\r\n1,\r\n");
  EXPECT_EQ(t.header(), (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.row(0), (std::vector<std::string>{"1", ""}));
}

TEST(Table, ParseCsvRejectsBadInput) {
  EXPECT_THROW(parse_csv(""), PreconditionError);
  EXPECT_THROW(parse_csv("a,b\n1,2,3\n"), PreconditionError);
  EXPECT_THROW(parse_csv("a\n\"unterminated"), PreconditionError);
}

TEST(Table, MarkdownHasSeparatorRow) {
  Table t({"col"});
  t.add_row({"v"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| col |"), std::string::npos);
  EXPECT_NE(md.find("|---|"), std::string::npos);
  EXPECT_NE(md.find("| v |"), std::string::npos);
}

TEST(Table, TextAlignsColumns) {
  Table t({"long_header", "b"});
  t.add_row({"x", "y"});
  const std::string text = t.to_text();
  // Row cell "x" must be padded to the header width.
  EXPECT_NE(text.find("x          "), std::string::npos);
}

TEST(Table, AddRowValuesFormats) {
  Table t({"a", "b"});
  t.add_row_values({1.5, 2.0});
  EXPECT_EQ(t.row(0)[0], "1.5");
  EXPECT_EQ(t.row(0)[1], "2");
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.5000, 4), "1.5");
  EXPECT_EQ(format_double(2.0, 3), "2");
  EXPECT_EQ(format_double(0.042, 3), "0.042");
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.23456, 4), "1.2346");
}

}  // namespace
}  // namespace ehpc
