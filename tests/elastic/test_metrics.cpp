#include "elastic/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ehpc::elastic {
namespace {

JobRecord rec(JobId id, int prio, double submit, double start, double complete) {
  JobRecord r;
  r.id = id;
  r.priority = prio;
  r.submit_time = submit;
  r.start_time = start;
  r.complete_time = complete;
  return r;
}

TEST(JobRecord, DerivedTimes) {
  const JobRecord r = rec(0, 1, 10.0, 25.0, 100.0);
  EXPECT_DOUBLE_EQ(r.response_time(), 15.0);
  EXPECT_DOUBLE_EQ(r.completion_time(), 90.0);
}

TEST(MetricsCollector, TotalTimeSpansSubmitToLastComplete) {
  MetricsCollector mc(64);
  mc.add_job(rec(0, 1, 0.0, 0.0, 50.0));
  mc.add_job(rec(1, 1, 10.0, 20.0, 200.0));
  const RunMetrics m = mc.compute();
  EXPECT_DOUBLE_EQ(m.total_time_s, 200.0);
}

TEST(MetricsCollector, WeightedMeansUsePriority) {
  MetricsCollector mc(64);
  // Response times 10 (prio 1) and 40 (prio 3): weighted mean 32.5.
  mc.add_job(rec(0, 1, 0.0, 10.0, 100.0));
  mc.add_job(rec(1, 3, 0.0, 40.0, 100.0));
  const RunMetrics m = mc.compute();
  EXPECT_DOUBLE_EQ(m.weighted_response_s, (10.0 * 1 + 40.0 * 3) / 4.0);
  EXPECT_DOUBLE_EQ(m.weighted_completion_s, 100.0);
}

TEST(MetricsCollector, UtilizationFromStepTrace) {
  MetricsCollector mc(64);
  mc.add_job(rec(0, 1, 0.0, 0.0, 100.0));
  mc.record_usage(0.0, 64);   // full for the first half
  mc.record_usage(50.0, 0);   // idle for the second half
  const RunMetrics m = mc.compute();
  EXPECT_NEAR(m.utilization, 0.5, 1e-12);
}

TEST(MetricsCollector, UtilizationClampedToWindow) {
  MetricsCollector mc(64);
  mc.add_job(rec(0, 1, 100.0, 100.0, 200.0));
  mc.record_usage(0.0, 0);     // before the window: sets the initial level
  mc.record_usage(100.0, 32);  // half-busy throughout the window
  const RunMetrics m = mc.compute();
  EXPECT_NEAR(m.utilization, 0.5, 1e-12);
}

TEST(MetricsCollector, RejectsInvalidInput) {
  MetricsCollector mc(64);
  EXPECT_THROW(mc.add_job(rec(0, 1, 10.0, 5.0, 20.0)), PreconditionError);
  EXPECT_THROW(mc.record_usage(0.0, 65), PreconditionError);
  EXPECT_THROW(mc.record_usage(0.0, -1), PreconditionError);
  EXPECT_THROW(mc.compute(), PreconditionError);  // no jobs
}

TEST(MetricsCollector, LbStepsAveragedIntoRunMetrics) {
  MetricsCollector mc(64);
  mc.add_job(rec(0, 1, 0.0, 0.0, 50.0));
  mc.record_lb_step(2.0, 10.0);
  mc.record_lb_step(1.5, 20.0);
  const RunMetrics m = mc.compute();
  EXPECT_DOUBLE_EQ(m.lb_post_ratio, 1.75);
  EXPECT_DOUBLE_EQ(m.lb_migrations_per_step, 15.0);
  EXPECT_DOUBLE_EQ(m.lb_steps, 2.0);
}

TEST(MetricsCollector, NoLbStepsYieldBalancedDefaults) {
  MetricsCollector mc(64);
  mc.add_job(rec(0, 1, 0.0, 0.0, 50.0));
  const RunMetrics m = mc.compute();
  EXPECT_DOUBLE_EQ(m.lb_post_ratio, 1.0);
  EXPECT_DOUBLE_EQ(m.lb_migrations_per_step, 0.0);
  EXPECT_DOUBLE_EQ(m.lb_steps, 0.0);
}

TEST(MetricsCollector, RejectsInvalidLbStep) {
  MetricsCollector mc(64);
  EXPECT_THROW(mc.record_lb_step(0.5, 1.0), PreconditionError);
  EXPECT_THROW(mc.record_lb_step(1.5, -1.0), PreconditionError);
}

TEST(AverageMetrics, ComponentwiseMean) {
  RunMetrics a{100.0, 0.8, 10.0, 50.0, 1.2, 4.0, 2.0};
  RunMetrics b{200.0, 0.6, 30.0, 70.0, 1.8, 8.0, 4.0};
  const RunMetrics avg = average_metrics({a, b});
  EXPECT_DOUBLE_EQ(avg.total_time_s, 150.0);
  EXPECT_DOUBLE_EQ(avg.utilization, 0.7);
  EXPECT_DOUBLE_EQ(avg.weighted_response_s, 20.0);
  EXPECT_DOUBLE_EQ(avg.weighted_completion_s, 60.0);
  EXPECT_DOUBLE_EQ(avg.lb_post_ratio, 1.5);
  EXPECT_DOUBLE_EQ(avg.lb_migrations_per_step, 6.0);
  EXPECT_DOUBLE_EQ(avg.lb_steps, 3.0);
}

TEST(AverageMetrics, EmptyThrows) {
  EXPECT_THROW(average_metrics({}), PreconditionError);
}

TEST(AverageMetrics, IncludesAbandonedAndTimedOutCounts) {
  RunMetrics a;
  a.jobs_abandoned = 2.0;
  a.jobs_timed_out = 4.0;
  RunMetrics b;
  b.jobs_abandoned = 4.0;
  b.jobs_timed_out = 0.0;
  const RunMetrics avg = average_metrics({a, b});
  EXPECT_DOUBLE_EQ(avg.jobs_abandoned, 3.0);
  EXPECT_DOUBLE_EQ(avg.jobs_timed_out, 2.0);
}

// Latent bug (pre-fix): an abandoned job has start_time == complete_time,
// so goodput() took the `span <= 0` branch and returned 1.0 — a job that
// produced nothing was credited with perfect goodput.
TEST(JobRecord, AbandonedJobHasZeroGoodput) {
  JobRecord r = rec(0, 1, 10.0, 50.0, 50.0);
  r.abandoned = true;
  EXPECT_EQ(r.goodput(), 0.0);
}

// Latent bug (pre-fix): a task-timeout kill looked like a normal (early)
// completion, so the killed job's goodput was ~1 even though its output was
// discarded and its runtime charged.
TEST(JobRecord, TimedOutJobHasZeroGoodput) {
  JobRecord r = rec(0, 1, 0.0, 5.0, 905.0);
  r.timed_out = true;
  EXPECT_EQ(r.goodput(), 0.0);
}

TEST(JobRecord, InstantCompletionWithoutFlagsKeepsFullGoodput) {
  // The span <= 0 branch still means "no failures, no lost work" for a
  // genuinely instant job.
  EXPECT_EQ(rec(0, 1, 10.0, 50.0, 50.0).goodput(), 1.0);
}

TEST(MetricsCollector, CountsAbandonedAndTimedOutJobs) {
  MetricsCollector mc(64);
  mc.add_job(rec(0, 1, 0.0, 0.0, 100.0));
  JobRecord ab = rec(1, 2, 0.0, 60.0, 60.0);
  ab.abandoned = true;
  mc.add_job(ab);
  JobRecord to = rec(2, 3, 0.0, 10.0, 90.0);
  to.timed_out = true;
  mc.add_job(to);
  const RunMetrics m = mc.compute();
  EXPECT_DOUBLE_EQ(m.jobs_abandoned, 1.0);
  EXPECT_DOUBLE_EQ(m.jobs_timed_out, 1.0);
  EXPECT_DOUBLE_EQ(m.jobs_failed, 0.0);
  // Mean goodput over {1, 0, 0}.
  EXPECT_NEAR(m.goodput, 1.0 / 3.0, 1e-12);
}

// Streaming accumulation must agree with batch accumulation on the same
// event sequence: exact for every sum-ordered metric, and to rounding for
// the utilization integral (the summation order differs).
TEST(MetricsCollector, StreamingMatchesBatch) {
  MetricsCollector batch(64);
  MetricsCollector streaming(64);
  streaming.enable_streaming();
  EXPECT_TRUE(streaming.streaming());
  EXPECT_FALSE(batch.streaming());

  struct Usage {
    double t;
    int used;
  };
  const std::vector<Usage> usage{{0.0, 16}, {40.0, 48}, {110.0, 64},
                                 {180.0, 32}, {260.0, 0}};
  // Records arrive in completion order, as they do from the harness.
  std::vector<JobRecord> records;
  JobRecord ab = rec(2, 1, 50.0, 95.0, 95.0);
  ab.abandoned = true;
  records.push_back(ab);
  records.push_back(rec(0, 2, 0.0, 5.0, 120.0));
  JobRecord fl = rec(3, 3, 60.0, 70.0, 210.0);
  fl.failed = true;
  fl.lost_work_s = 30.0;
  fl.recovery_s = 12.0;
  records.push_back(fl);
  records.push_back(rec(1, 5, 30.0, 31.0, 260.0));

  for (const auto& r : records) streaming.note_submit(r.submit_time);
  std::size_t next_usage = 0;
  for (const auto& r : records) {
    while (next_usage < usage.size() && usage[next_usage].t <= r.complete_time) {
      batch.record_usage(usage[next_usage].t, usage[next_usage].used);
      streaming.record_usage(usage[next_usage].t, usage[next_usage].used);
      ++next_usage;
    }
    batch.add_job(r);
    streaming.add_job(r);
  }
  batch.record_lb_step(1.4, 10.0);
  streaming.record_lb_step(1.4, 10.0);

  const RunMetrics b = batch.compute();
  const RunMetrics s = streaming.compute();
  EXPECT_EQ(b.total_time_s, s.total_time_s);
  EXPECT_EQ(b.weighted_response_s, s.weighted_response_s);
  EXPECT_EQ(b.weighted_completion_s, s.weighted_completion_s);
  EXPECT_EQ(b.jobs_failed, s.jobs_failed);
  EXPECT_EQ(b.jobs_abandoned, s.jobs_abandoned);
  EXPECT_EQ(b.jobs_timed_out, s.jobs_timed_out);
  EXPECT_EQ(b.recovery_time_s, s.recovery_time_s);
  EXPECT_EQ(b.lost_work_s, s.lost_work_s);
  EXPECT_EQ(b.goodput, s.goodput);
  EXPECT_EQ(b.lb_post_ratio, s.lb_post_ratio);
  EXPECT_NEAR(b.utilization, s.utilization, 1e-12);

  // Streaming retains nothing.
  EXPECT_TRUE(streaming.jobs().empty());
  EXPECT_TRUE(streaming.usage_steps().empty());
  EXPECT_EQ(batch.jobs().size(), records.size());
}

TEST(MetricsCollector, StreamingUsageAfterLastCompletionDoesNotLeak) {
  MetricsCollector mc(64);
  mc.enable_streaming();
  mc.note_submit(0.0);
  mc.record_usage(0.0, 64);
  mc.add_job(rec(0, 1, 0.0, 0.0, 100.0));
  // Pod teardown events after the last completion must not extend the
  // utilization window (the batch path truncates the retained trace the
  // same way).
  mc.record_usage(150.0, 0);
  const RunMetrics m = mc.compute();
  EXPECT_NEAR(m.utilization, 1.0, 1e-12);
}

TEST(MetricsCollector, EnableStreamingAfterRecordsThrows) {
  MetricsCollector mc(64);
  mc.add_job(rec(0, 1, 0.0, 0.0, 10.0));
  EXPECT_THROW(mc.enable_streaming(), PreconditionError);
}

}  // namespace
}  // namespace ehpc::elastic
