#include "elastic/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ehpc::elastic {
namespace {

JobRecord rec(JobId id, int prio, double submit, double start, double complete) {
  JobRecord r;
  r.id = id;
  r.priority = prio;
  r.submit_time = submit;
  r.start_time = start;
  r.complete_time = complete;
  return r;
}

TEST(JobRecord, DerivedTimes) {
  const JobRecord r = rec(0, 1, 10.0, 25.0, 100.0);
  EXPECT_DOUBLE_EQ(r.response_time(), 15.0);
  EXPECT_DOUBLE_EQ(r.completion_time(), 90.0);
}

TEST(MetricsCollector, TotalTimeSpansSubmitToLastComplete) {
  MetricsCollector mc(64);
  mc.add_job(rec(0, 1, 0.0, 0.0, 50.0));
  mc.add_job(rec(1, 1, 10.0, 20.0, 200.0));
  const RunMetrics m = mc.compute();
  EXPECT_DOUBLE_EQ(m.total_time_s, 200.0);
}

TEST(MetricsCollector, WeightedMeansUsePriority) {
  MetricsCollector mc(64);
  // Response times 10 (prio 1) and 40 (prio 3): weighted mean 32.5.
  mc.add_job(rec(0, 1, 0.0, 10.0, 100.0));
  mc.add_job(rec(1, 3, 0.0, 40.0, 100.0));
  const RunMetrics m = mc.compute();
  EXPECT_DOUBLE_EQ(m.weighted_response_s, (10.0 * 1 + 40.0 * 3) / 4.0);
  EXPECT_DOUBLE_EQ(m.weighted_completion_s, 100.0);
}

TEST(MetricsCollector, UtilizationFromStepTrace) {
  MetricsCollector mc(64);
  mc.add_job(rec(0, 1, 0.0, 0.0, 100.0));
  mc.record_usage(0.0, 64);   // full for the first half
  mc.record_usage(50.0, 0);   // idle for the second half
  const RunMetrics m = mc.compute();
  EXPECT_NEAR(m.utilization, 0.5, 1e-12);
}

TEST(MetricsCollector, UtilizationClampedToWindow) {
  MetricsCollector mc(64);
  mc.add_job(rec(0, 1, 100.0, 100.0, 200.0));
  mc.record_usage(0.0, 0);     // before the window: sets the initial level
  mc.record_usage(100.0, 32);  // half-busy throughout the window
  const RunMetrics m = mc.compute();
  EXPECT_NEAR(m.utilization, 0.5, 1e-12);
}

TEST(MetricsCollector, RejectsInvalidInput) {
  MetricsCollector mc(64);
  EXPECT_THROW(mc.add_job(rec(0, 1, 10.0, 5.0, 20.0)), PreconditionError);
  EXPECT_THROW(mc.record_usage(0.0, 65), PreconditionError);
  EXPECT_THROW(mc.record_usage(0.0, -1), PreconditionError);
  EXPECT_THROW(mc.compute(), PreconditionError);  // no jobs
}

TEST(MetricsCollector, LbStepsAveragedIntoRunMetrics) {
  MetricsCollector mc(64);
  mc.add_job(rec(0, 1, 0.0, 0.0, 50.0));
  mc.record_lb_step(2.0, 10.0);
  mc.record_lb_step(1.5, 20.0);
  const RunMetrics m = mc.compute();
  EXPECT_DOUBLE_EQ(m.lb_post_ratio, 1.75);
  EXPECT_DOUBLE_EQ(m.lb_migrations_per_step, 15.0);
  EXPECT_DOUBLE_EQ(m.lb_steps, 2.0);
}

TEST(MetricsCollector, NoLbStepsYieldBalancedDefaults) {
  MetricsCollector mc(64);
  mc.add_job(rec(0, 1, 0.0, 0.0, 50.0));
  const RunMetrics m = mc.compute();
  EXPECT_DOUBLE_EQ(m.lb_post_ratio, 1.0);
  EXPECT_DOUBLE_EQ(m.lb_migrations_per_step, 0.0);
  EXPECT_DOUBLE_EQ(m.lb_steps, 0.0);
}

TEST(MetricsCollector, RejectsInvalidLbStep) {
  MetricsCollector mc(64);
  EXPECT_THROW(mc.record_lb_step(0.5, 1.0), PreconditionError);
  EXPECT_THROW(mc.record_lb_step(1.5, -1.0), PreconditionError);
}

TEST(AverageMetrics, ComponentwiseMean) {
  RunMetrics a{100.0, 0.8, 10.0, 50.0, 1.2, 4.0, 2.0};
  RunMetrics b{200.0, 0.6, 30.0, 70.0, 1.8, 8.0, 4.0};
  const RunMetrics avg = average_metrics({a, b});
  EXPECT_DOUBLE_EQ(avg.total_time_s, 150.0);
  EXPECT_DOUBLE_EQ(avg.utilization, 0.7);
  EXPECT_DOUBLE_EQ(avg.weighted_response_s, 20.0);
  EXPECT_DOUBLE_EQ(avg.weighted_completion_s, 60.0);
  EXPECT_DOUBLE_EQ(avg.lb_post_ratio, 1.5);
  EXPECT_DOUBLE_EQ(avg.lb_migrations_per_step, 6.0);
  EXPECT_DOUBLE_EQ(avg.lb_steps, 3.0);
}

TEST(AverageMetrics, EmptyThrows) {
  EXPECT_THROW(average_metrics({}), PreconditionError);
}

}  // namespace
}  // namespace ehpc::elastic
