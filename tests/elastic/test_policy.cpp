#include "elastic/policy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ehpc::elastic {
namespace {

JobSpec spec(JobId id, int min_r, int max_r, int priority) {
  JobSpec s;
  s.id = id;
  s.name = "job-" + std::to_string(id);
  s.min_replicas = min_r;
  s.max_replicas = max_r;
  s.priority = priority;
  return s;
}

PolicyConfig elastic_cfg(double gap = 0.0) {
  PolicyConfig cfg;
  cfg.mode = PolicyMode::kElastic;
  cfg.rescale_gap_s = gap;
  return cfg;
}

// Pull the single action of a given type out of an action list.
const Action* find_action(const std::vector<Action>& actions, ActionType type) {
  for (const auto& a : actions) {
    if (a.type == type) return &a;
  }
  return nullptr;
}

TEST(PolicyEngine, EmptyClusterStartsAtMax) {
  PolicyEngine eng(64, elastic_cfg());
  auto actions = eng.submit(spec(0, 8, 32, 3), 0.0);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].type, ActionType::kStart);
  EXPECT_EQ(actions[0].target_replicas, 32);
  EXPECT_EQ(eng.free_slots(), 32);
  EXPECT_TRUE(eng.job(0).running);
}

TEST(PolicyEngine, MoldableSizingFillsGap) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 8, 48, 3), 0.0);  // uses 48, 16 free
  auto actions = eng.submit(spec(1, 8, 32, 3), 1.0);
  const Action* start = find_action(actions, ActionType::kStart);
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->target_replicas, 16);  // sized to the gap, not enqueued
  EXPECT_EQ(eng.free_slots(), 0);
}

TEST(PolicyEngine, ReserveSlotsHoldsHeadroom) {
  PolicyConfig cfg = elastic_cfg();
  cfg.reserve_slots = 1;  // the paper's "freeSlots - 1"
  PolicyEngine eng(64, cfg);
  auto actions = eng.submit(spec(0, 8, 64, 3), 0.0);
  const Action* start = find_action(actions, ActionType::kStart);
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->target_replicas, 63);
}

TEST(PolicyEngine, EnqueuesWhenNothingShrinkable) {
  PolicyEngine eng(64, elastic_cfg());
  // One job at its min occupying everything: nothing can shrink.
  eng.submit(spec(0, 64, 64, 3), 0.0);
  auto actions = eng.submit(spec(1, 8, 16, 5), 1.0);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].type, ActionType::kEnqueue);
  EXPECT_FALSE(eng.job(1).running);
  EXPECT_EQ(eng.queued().size(), 1u);
}

TEST(PolicyEngine, ShrinksLowerPriorityToFitHigherPriority) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 8, 32, 1), 0.0);   // low priority, 32 replicas
  eng.submit(spec(1, 8, 32, 1), 1.0);   // low priority, 32 replicas
  EXPECT_EQ(eng.free_slots(), 0);

  auto actions = eng.submit(spec(2, 16, 32, 5), 2.0);
  const Action* shrink = find_action(actions, ActionType::kShrink);
  const Action* start = find_action(actions, ActionType::kStart);
  ASSERT_NE(shrink, nullptr);
  ASSERT_NE(start, nullptr);
  // Fig. 2 protects runningJobs[0] (job 0, the earlier submission): only
  // job 1 is shrunk, down to its min, freeing 24 slots.
  EXPECT_EQ(shrink->job, 1);
  EXPECT_EQ(eng.job(1).replicas, 8);
  EXPECT_EQ(start->target_replicas, 24);
  EXPECT_TRUE(eng.job(2).running);
}

TEST(PolicyEngine, NeverShrinksHigherPriorityJobs) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 8, 32, 5), 0.0);
  eng.submit(spec(1, 8, 32, 5), 1.0);
  // Low-priority arrival cannot evict high-priority jobs.
  auto actions = eng.submit(spec(2, 16, 32, 1), 2.0);
  EXPECT_EQ(find_action(actions, ActionType::kShrink), nullptr);
  EXPECT_EQ(actions.back().type, ActionType::kEnqueue);
}

TEST(PolicyEngine, RescaleGapBlocksShrink) {
  PolicyEngine eng(64, elastic_cfg(/*gap=*/180.0));
  eng.submit(spec(0, 8, 32, 1), 0.0);
  eng.submit(spec(1, 8, 32, 1), 10.0);
  // 20s after job 1's start: the victim is within the gap.
  auto actions = eng.submit(spec(2, 16, 32, 5), 30.0);
  EXPECT_EQ(find_action(actions, ActionType::kShrink), nullptr);
  EXPECT_EQ(actions.back().type, ActionType::kEnqueue);

  // Well past the gap, the shrink goes through.
  auto later = eng.submit(spec(3, 16, 32, 5), 500.0);
  EXPECT_NE(find_action(later, ActionType::kShrink), nullptr);
  EXPECT_NE(find_action(later, ActionType::kStart), nullptr);
}

TEST(PolicyEngine, NeverShrinksBelowMin) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 16, 32, 1), 0.0);  // min 16, runs at 32
  eng.submit(spec(1, 16, 32, 1), 1.0);  // min 16, runs at 32
  // Needs 48: even shrinking job 1 fully (to 16) frees only 16 -> enqueue.
  auto actions = eng.submit(spec(2, 48, 64, 5), 2.0);
  EXPECT_EQ(actions.back().type, ActionType::kEnqueue);
  // Needs 16: shrinking job 1 to its min exactly suffices; never below min.
  auto ok = eng.submit(spec(3, 16, 16, 5), 3.0);
  EXPECT_NE(find_action(ok, ActionType::kStart), nullptr);
  EXPECT_EQ(eng.job(1).replicas, 16);
  EXPECT_GE(eng.job(1).replicas, eng.job(1).spec.min_replicas);
}

TEST(PolicyEngine, ShrinkFreesUpToMaxOfNewJob) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 8, 32, 1), 0.0);
  eng.submit(spec(1, 8, 32, 1), 1.0);
  auto actions = eng.submit(spec(2, 8, 16, 5), 2.0);
  const Action* shrink = find_action(actions, ActionType::kShrink);
  const Action* start = find_action(actions, ActionType::kStart);
  ASSERT_NE(shrink, nullptr);
  ASSERT_NE(start, nullptr);
  // Victim (job 1) shrinks enough for the new job's max (16), not just its
  // min (8): 32 -> 16.
  EXPECT_EQ(start->target_replicas, 16);
  EXPECT_EQ(eng.job(1).replicas, 16);
}

TEST(PolicyEngine, TopPriorityRunningJobNeverConsidered) {
  // The pseudocode walks index > 0: the single highest-priority running job
  // is never shrunk, even when eligible by priority.
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 8, 64, 1), 0.0);  // only running job -> index 0
  auto actions = eng.submit(spec(1, 16, 32, 5), 1.0);
  EXPECT_EQ(find_action(actions, ActionType::kShrink), nullptr);
  EXPECT_EQ(actions.back().type, ActionType::kEnqueue);
}

TEST(PolicyEngine, EqualPriorityVictimEligible) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 8, 32, 3), 0.0);
  eng.submit(spec(1, 8, 32, 3), 1.0);
  auto actions = eng.submit(spec(2, 16, 32, 3), 2.0);
  // Equal priority: Fig. 2 breaks only on strictly greater priority.
  EXPECT_NE(find_action(actions, ActionType::kShrink), nullptr);
  EXPECT_TRUE(eng.job(2).running);
}

TEST(PolicyEngine, CompleteExpandsRunningJobsElastic) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 32, 32, 5), 0.0);  // rigid-shaped: 32 used
  eng.submit(spec(1, 8, 64, 3), 1.0);   // sized to the 32-slot gap: below max
  EXPECT_EQ(eng.job(1).replicas, 32);
  auto actions = eng.complete(0, 100.0);
  const Action* expand = find_action(actions, ActionType::kExpand);
  ASSERT_NE(expand, nullptr);
  EXPECT_EQ(expand->job, 1);
  EXPECT_EQ(eng.job(1).replicas, 64);  // freed slots flow to the running job
  EXPECT_EQ(eng.free_slots() + eng.used_slots(), 64);
}

TEST(PolicyEngine, CompleteStartsQueuedJobsInPriorityOrder) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 64, 64, 5), 0.0);  // fills cluster, min=max
  eng.submit(spec(1, 16, 16, 2), 1.0);  // queued
  eng.submit(spec(2, 16, 16, 4), 2.0);  // queued, higher priority
  eng.submit(spec(3, 16, 16, 3), 3.0);  // queued
  auto actions = eng.complete(0, 100.0);
  // All three fit (48 <= 64); starts must come in priority order 2, 3, 1.
  std::vector<JobId> started;
  for (const auto& a : actions) {
    if (a.type == ActionType::kStart) started.push_back(a.job);
  }
  EXPECT_EQ(started, (std::vector<JobId>{2, 3, 1}));
}

TEST(PolicyEngine, CompleteMoldableDoesNotTouchRunningJobs) {
  PolicyConfig cfg;
  cfg.mode = PolicyMode::kMoldable;
  cfg.rescale_gap_s = 0.0;
  PolicyEngine eng(64, cfg);
  eng.submit(spec(0, 8, 64, 3), 0.0);    // starts at 64
  eng.submit(spec(1, 8, 32, 3), 1.0);    // queued (no shrink in moldable)
  EXPECT_FALSE(eng.job(1).running);
  // Make room: complete nothing yet; shrink impossible. Add a second
  // running job by completing job 0.
  auto actions = eng.complete(0, 2.0);
  const Action* start = find_action(actions, ActionType::kStart);
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->job, 1);
  EXPECT_EQ(find_action(actions, ActionType::kExpand), nullptr);
}

TEST(PolicyEngine, RigidMinForcesMinReplicas) {
  PolicyConfig cfg;
  cfg.mode = PolicyMode::kRigidMin;
  PolicyEngine eng(64, cfg);
  auto actions = eng.submit(spec(0, 8, 32, 3), 0.0);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].target_replicas, 8);
  // Completion never expands a rigid job.
  eng.submit(spec(1, 8, 32, 3), 1.0);
  auto done = eng.complete(0, 100.0);
  EXPECT_EQ(find_action(done, ActionType::kExpand), nullptr);
  EXPECT_EQ(eng.job(1).replicas, 8);
}

TEST(PolicyEngine, RigidMaxForcesMaxReplicas) {
  PolicyConfig cfg;
  cfg.mode = PolicyMode::kRigidMax;
  PolicyEngine eng(64, cfg);
  auto actions = eng.submit(spec(0, 8, 32, 3), 0.0);
  EXPECT_EQ(actions[0].target_replicas, 32);
  // A job that no longer fits waits even if min would fit.
  eng.submit(spec(1, 8, 48, 3), 1.0);
  EXPECT_FALSE(eng.job(1).running);
}

TEST(PolicyEngine, QueuedJobNotStartedBelowMin) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 48, 48, 5), 0.0);  // 48 used, 16 free
  eng.submit(spec(1, 32, 64, 1), 1.0);  // needs >= 32: queued
  EXPECT_FALSE(eng.job(1).running);
  // Completing a tiny job frees 48: now job 1 can start.
  auto actions = eng.complete(0, 100.0);
  const Action* start = find_action(actions, ActionType::kStart);
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->job, 1);
  EXPECT_EQ(start->target_replicas, 64);
}

TEST(PolicyEngine, SubmissionTimeBreaksPriorityTies) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 64, 64, 3), 0.0);
  eng.submit(spec(1, 32, 32, 3), 2.0);  // queued, later
  eng.submit(spec(2, 32, 32, 3), 1.0);  // queued, earlier
  auto actions = eng.complete(0, 100.0);
  std::vector<JobId> started;
  for (const auto& a : actions) {
    if (a.type == ActionType::kStart) started.push_back(a.job);
  }
  // Earlier submission (job 2) wins the tie.
  EXPECT_EQ(started, (std::vector<JobId>{2, 1}));
}

TEST(PolicyEngine, RejectsInvalidSpecs) {
  PolicyEngine eng(64, elastic_cfg());
  EXPECT_THROW(eng.submit(spec(0, 0, 4, 1), 0.0), PreconditionError);
  EXPECT_THROW(eng.submit(spec(1, 8, 4, 1), 0.0), PreconditionError);
  EXPECT_THROW(eng.submit(spec(2, 128, 256, 1), 0.0), PreconditionError);
}

TEST(PolicyEngine, RejectsDuplicateAndUnknownIds) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 4, 8, 1), 0.0);
  EXPECT_THROW(eng.submit(spec(0, 4, 8, 1), 1.0), PreconditionError);
  EXPECT_THROW(eng.complete(99, 2.0), PreconditionError);
}

TEST(PolicyEngine, ModeNames) {
  EXPECT_EQ(to_string(PolicyMode::kElastic), "elastic");
  EXPECT_EQ(policy_mode_from_string("moldable"), PolicyMode::kMoldable);
  EXPECT_EQ(policy_mode_from_string("min"), PolicyMode::kRigidMin);
  EXPECT_THROW(policy_mode_from_string("nope"), PreconditionError);
}

// Property test: under random submit/complete sequences, slot accounting
// stays consistent and allocations stay within [min, max] and capacity.
class PolicyInvariants : public ::testing::TestWithParam<unsigned> {};

TEST_P(PolicyInvariants, SlotAccountingAlwaysConsistent) {
  Rng rng(GetParam());
  for (PolicyMode mode : {PolicyMode::kRigidMin, PolicyMode::kRigidMax,
                          PolicyMode::kMoldable, PolicyMode::kElastic}) {
    PolicyConfig cfg;
    cfg.mode = mode;
    cfg.rescale_gap_s = rng.uniform(0.0, 200.0);
    PolicyEngine eng(64, cfg);
    std::vector<JobId> active;
    double now = 0.0;
    int next_id = 0;
    for (int step = 0; step < 200; ++step) {
      now += rng.uniform(1.0, 120.0);
      const bool do_submit = active.empty() || rng.chance(0.55);
      if (do_submit) {
        const int min_r = static_cast<int>(rng.uniform_int(1, 16));
        const int max_r =
            min_r + static_cast<int>(rng.uniform_int(0, 48 - min_r));
        eng.submit(spec(next_id, min_r, max_r, static_cast<int>(rng.uniform_int(1, 5))),
                   now);
        active.push_back(next_id++);
      } else {
        // Complete a random running job.
        std::vector<JobId> running = eng.running();
        if (running.empty()) continue;
        const JobId victim = running[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(running.size()) - 1))];
        eng.complete(victim, now);
        active.erase(std::find(active.begin(), active.end(), victim));
      }
      // Invariants after every operation.
      int used = 0;
      for (JobId id : eng.all_jobs()) {
        const JobState& j = eng.job(id);
        if (j.running) {
          EXPECT_GE(j.replicas, j.spec.min_replicas);
          EXPECT_LE(j.replicas, j.spec.max_replicas);
          used += j.replicas;
        } else {
          EXPECT_EQ(j.replicas, 0);
        }
      }
      EXPECT_EQ(used, eng.used_slots());
      EXPECT_EQ(eng.used_slots() + eng.free_slots(), 64);
      EXPECT_GE(eng.free_slots(), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PolicyInvariants,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace ehpc::elastic
namespace ehpc::elastic {
namespace {

TEST(PolicyExtensions, AgingPromotesStarvedJob) {
  PolicyConfig cfg;
  cfg.mode = PolicyMode::kElastic;
  cfg.rescale_gap_s = 0.0;
  cfg.aging_rate_per_s = 0.01;  // +1 priority point per 100 s waiting
  PolicyEngine eng(64, cfg);
  JobSpec hog;
  hog.id = 0;
  hog.min_replicas = hog.max_replicas = 64;
  hog.priority = 5;
  eng.submit(hog, 0.0);
  // Low-priority job queued early; high-priority job queued much later.
  JobSpec starved;
  starved.id = 1;
  starved.min_replicas = starved.max_replicas = 32;
  starved.priority = 1;
  eng.submit(starved, 10.0);
  JobSpec fresh;
  fresh.id = 2;
  fresh.min_replicas = fresh.max_replicas = 32;
  fresh.priority = 3;
  eng.submit(fresh, 990.0);
  // At t=1000 the starved job has aged 990 s -> effective 1 + 9.9 = 10.9,
  // beating the fresh job's 3 + 0.1.
  auto actions = eng.complete(0, 1000.0);
  ASSERT_GE(actions.size(), 2u);
  EXPECT_EQ(actions[0].type, ActionType::kStart);
  EXPECT_EQ(actions[0].job, 1);

  // Without aging, the fresh higher-priority job would start first.
  PolicyConfig plain = cfg;
  plain.aging_rate_per_s = 0.0;
  PolicyEngine eng2(64, plain);
  eng2.submit(hog, 0.0);
  eng2.submit(starved, 10.0);
  eng2.submit(fresh, 990.0);
  auto plain_actions = eng2.complete(0, 1000.0);
  EXPECT_EQ(plain_actions[0].job, 2);
}

TEST(PolicyExtensions, ExpandDeclinedWhenAlmostDone) {
  PolicyConfig cfg;
  cfg.mode = PolicyMode::kElastic;
  cfg.rescale_gap_s = 0.0;
  cfg.min_remaining_fraction_for_expand = 0.2;
  PolicyEngine eng(64, cfg);
  eng.set_progress_provider([](JobId) { return 0.05; });  // 5% remaining
  eng.submit(spec(0, 32, 32, 5), 0.0);
  eng.submit(spec(1, 8, 64, 3), 1.0);  // sized to 32, below max
  auto actions = eng.complete(0, 100.0);
  EXPECT_EQ(find_action(actions, ActionType::kExpand), nullptr);
  EXPECT_EQ(eng.job(1).replicas, 32);
}

TEST(PolicyExtensions, ExpandProceedsWhenEnoughRemains) {
  PolicyConfig cfg;
  cfg.mode = PolicyMode::kElastic;
  cfg.rescale_gap_s = 0.0;
  cfg.min_remaining_fraction_for_expand = 0.2;
  PolicyEngine eng(64, cfg);
  eng.set_progress_provider([](JobId) { return 0.8; });
  eng.submit(spec(0, 32, 32, 5), 0.0);
  eng.submit(spec(1, 8, 64, 3), 1.0);
  auto actions = eng.complete(0, 100.0);
  EXPECT_NE(find_action(actions, ActionType::kExpand), nullptr);
  EXPECT_EQ(eng.job(1).replicas, 64);
}

TEST(PolicyExtensions, ExpandDeclinedWhenGainTooSmall) {
  PolicyConfig cfg;
  cfg.mode = PolicyMode::kElastic;
  cfg.rescale_gap_s = 0.0;
  cfg.min_expand_gain = 0.5;  // require +50% replicas
  PolicyEngine eng(64, cfg);
  eng.submit(spec(0, 8, 8, 5), 0.0);     // 8 used
  eng.submit(spec(1, 8, 64, 3), 1.0);    // sized to 56, below max
  // Completing job 0 frees 8: only a 14% gain for job 1 -> declined.
  auto actions = eng.complete(0, 100.0);
  EXPECT_EQ(find_action(actions, ActionType::kExpand), nullptr);
  EXPECT_EQ(eng.job(1).replicas, 56);
}

TEST(PolicyExtensions, QueuedJobsExemptFromCostBenefit) {
  // Cost/benefit gates only expansions; queued jobs always start.
  PolicyConfig cfg;
  cfg.mode = PolicyMode::kElastic;
  cfg.rescale_gap_s = 0.0;
  cfg.min_remaining_fraction_for_expand = 0.9;
  PolicyEngine eng(64, cfg);
  eng.set_progress_provider([](JobId) { return 0.0; });
  eng.submit(spec(0, 64, 64, 5), 0.0);
  eng.submit(spec(1, 16, 16, 3), 1.0);  // queued
  auto actions = eng.complete(0, 100.0);
  const Action* start = find_action(actions, ActionType::kStart);
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->job, 1);
}

TEST(PolicyEngine, AbandonWithdrawsQueuedJob) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 64, 64, 5), 0.0);
  eng.submit(spec(1, 32, 32, 1), 1.0);  // queued behind job 0
  ASSERT_FALSE(eng.job(1).running);
  eng.abandon(1);
  EXPECT_TRUE(eng.job(1).completed);
  EXPECT_EQ(eng.job(1).replicas, 0);
  // The abandoned job never held slots, so accounting is untouched and a
  // later completion must not try to start it.
  EXPECT_EQ(eng.free_slots(), 0);
  auto actions = eng.complete(0, 100.0);
  EXPECT_EQ(find_action(actions, ActionType::kStart), nullptr);
}

TEST(PolicyEngine, AbandonRejectsRunningOrCompletedJobs) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 8, 8, 3), 0.0);
  EXPECT_THROW(eng.abandon(0), PreconditionError);  // running
  eng.complete(0, 10.0);
  EXPECT_THROW(eng.abandon(0), PreconditionError);  // completed
  EXPECT_THROW(eng.abandon(42), PreconditionError);  // unknown
}

TEST(PolicyEngine, ForgetDropsCompletedJobState) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 8, 8, 3), 0.0);
  EXPECT_THROW(eng.forget(0), PreconditionError);  // still running
  eng.complete(0, 10.0);
  EXPECT_TRUE(eng.has_job(0));
  eng.forget(0);
  EXPECT_FALSE(eng.has_job(0));
  EXPECT_THROW(eng.forget(0), PreconditionError);  // already forgotten
  // The id is reusable afterwards — streaming traces recycle nothing, but
  // the engine must not treat the retired id as a duplicate.
  EXPECT_NO_THROW(eng.submit(spec(0, 8, 8, 3), 20.0));
}

TEST(PolicyEngine, EqualPriorityAndTimeTiesBreakByJobId) {
  PolicyEngine eng(64, elastic_cfg());
  eng.submit(spec(0, 64, 64, 3), 0.0);
  // Identical priority AND submission time: the queue order must still be
  // deterministic — lower job id first.
  eng.submit(spec(2, 16, 16, 3), 5.0);
  eng.submit(spec(1, 16, 16, 3), 5.0);
  auto actions = eng.complete(0, 100.0);
  std::vector<JobId> started;
  for (const auto& a : actions) {
    if (a.type == ActionType::kStart) started.push_back(a.job);
  }
  EXPECT_EQ(started, (std::vector<JobId>{1, 2}));
}

}  // namespace
}  // namespace ehpc::elastic
