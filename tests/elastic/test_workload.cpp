#include "elastic/workload.hpp"

#include <gtest/gtest.h>

namespace ehpc::elastic {
namespace {

TEST(RescaleOverheadModel, CheckpointShrinksWithMoreReplicas) {
  RescaleOverheadModel m;
  m.data_bytes = 1e9;
  EXPECT_GT(m.checkpoint_s(4), m.checkpoint_s(32));
}

TEST(RescaleOverheadModel, CheckpointGrowsWithData) {
  RescaleOverheadModel a, b;
  a.data_bytes = 1e8;
  b.data_bytes = 4e9;
  EXPECT_LT(a.checkpoint_s(8), b.checkpoint_s(8));
}

TEST(RescaleOverheadModel, RestartGrowsWithRanks) {
  RescaleOverheadModel m;
  EXPECT_LT(m.restart_s(4), m.restart_s(64));
  EXPECT_DOUBLE_EQ(m.restart_s(10), m.startup_alpha_s + 10 * m.startup_per_pe_s);
}

TEST(RescaleOverheadModel, SameSizeIsFree) {
  RescaleOverheadModel m;
  m.data_bytes = 1e9;
  EXPECT_DOUBLE_EQ(m.overhead_s(16, 16), 0.0);
  EXPECT_DOUBLE_EQ(m.load_balance_s(16, 16), 0.0);
}

TEST(RescaleOverheadModel, OverheadPositiveBothDirections) {
  RescaleOverheadModel m;
  m.data_bytes = 1e9;
  EXPECT_GT(m.overhead_s(32, 16), 0.0);
  EXPECT_GT(m.overhead_s(16, 32), 0.0);
}

TEST(RescaleOverheadModel, LbMovesMoreWhenRatioLarger) {
  RescaleOverheadModel m;
  m.data_bytes = 1e9;
  EXPECT_GT(m.load_balance_s(64, 8), m.load_balance_s(64, 32));
}

TEST(Workload, PaperClassParameters) {
  const Workload s = make_workload(JobClass::kSmall);
  EXPECT_EQ(s.grid_n, 512);
  EXPECT_EQ(s.min_replicas, 2);
  EXPECT_EQ(s.max_replicas, 8);
  EXPECT_DOUBLE_EQ(s.total_steps, 40000);

  const Workload x = make_workload(JobClass::kXLarge);
  EXPECT_EQ(x.grid_n, 16384);
  EXPECT_EQ(x.min_replicas, 16);
  EXPECT_EQ(x.max_replicas, 64);
  EXPECT_DOUBLE_EQ(x.total_steps, 10000);
}

TEST(Workload, StepTimeDecreasesWithReplicasForLarge) {
  const Workload w = make_workload(JobClass::kXLarge);
  EXPECT_GT(w.time_per_step.at(4), w.time_per_step.at(16));
  EXPECT_GT(w.time_per_step.at(16), w.time_per_step.at(64));
}

TEST(Workload, RuntimeAtUsesTotalSteps) {
  const Workload w = make_workload(JobClass::kMedium);
  const double t16 = w.runtime_at(16);
  EXPECT_NEAR(t16, w.total_steps * w.time_per_step.at(16), 1e-9);
  EXPECT_LT(t16, w.runtime_at(4));
}

TEST(Workload, LargerClassesRunLongerAtSameReplicas) {
  EXPECT_LT(make_workload(JobClass::kSmall).time_per_step.at(8),
            make_workload(JobClass::kLarge).time_per_step.at(8));
}

TEST(Workload, RescaleDataMatchesGrid) {
  const Workload w = make_workload(JobClass::kLarge);
  EXPECT_DOUBLE_EQ(w.rescale.data_bytes, 8192.0 * 8192.0 * 8.0);
}

TEST(Workload, SpecForClassMatchesParameters) {
  const JobSpec s = spec_for_class(JobClass::kLarge, 7, 4);
  EXPECT_EQ(s.id, 7);
  EXPECT_EQ(s.min_replicas, 8);
  EXPECT_EQ(s.max_replicas, 32);
  EXPECT_EQ(s.priority, 4);
  EXPECT_EQ(s.name, "large-7");
}

TEST(Workload, ClassNames) {
  EXPECT_EQ(to_string(JobClass::kSmall), "small");
  EXPECT_EQ(to_string(JobClass::kXLarge), "xlarge");
}

// Parameterized sanity sweep over every (class, replica) combination the
// scheduler can produce.
class WorkloadSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WorkloadSweep, StepTimesPositiveAndFinite) {
  const auto cls = static_cast<JobClass>(std::get<0>(GetParam()));
  const int replicas = std::get<1>(GetParam());
  const Workload w = make_workload(cls);
  const double t = w.time_per_step.at_clamped(replicas);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 60.0);  // one step never takes a minute
  const double o = w.rescale.overhead_s(replicas, std::max(1, replicas / 2));
  EXPECT_GE(o, 0.0);
  EXPECT_LT(o, 120.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllClassesAndReplicas, WorkloadSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 2, 4, 8, 16, 32, 64)));

}  // namespace
}  // namespace ehpc::elastic
