#include "k8s/cluster.hpp"

#include <gtest/gtest.h>

namespace ehpc::k8s {
namespace {

Pod worker(const std::string& name, int cpus = 1) {
  Pod p;
  p.meta.name = name;
  p.request = {cpus, 512};
  return p;
}

TEST(Cluster, AddNodesCreatesCapacity) {
  Cluster c;
  c.add_nodes("node", 4, {16, 32768});
  EXPECT_EQ(c.total_cpus(), 64);
  EXPECT_EQ(c.nodes().size(), 4u);
}

TEST(Cluster, PodLifecycleReachesRunning) {
  Cluster c;
  c.add_nodes("node", 1, {16, 32768});
  c.create_pod(worker("p0"));
  EXPECT_EQ(c.pods().get("p0").phase, PodPhase::kPending);
  c.sim().run();
  const Pod& p = c.pods().get("p0");
  EXPECT_EQ(p.phase, PodPhase::kRunning);
  EXPECT_EQ(p.node_name, "node-0");
  EXPECT_GT(p.running_time, p.scheduled_time);
}

TEST(Cluster, StartupLatencyIsModeled) {
  ClusterConfig cfg;
  cfg.kubelet.pod_startup_s = 5.0;
  cfg.scheduler.schedule_latency_s = 1.0;
  Cluster c(cfg);
  c.add_nodes("node", 1, {16, 32768});
  c.create_pod(worker("p0"));
  c.sim().run();
  EXPECT_GE(c.sim().now(), 6.0);
  EXPECT_EQ(c.pods().get("p0").phase, PodPhase::kRunning);
}

TEST(Cluster, DeleteGoesThroughTerminating) {
  Cluster c;
  c.add_nodes("node", 1, {16, 32768});
  c.create_pod(worker("p0"));
  c.sim().run();
  c.delete_pod("p0");
  EXPECT_EQ(c.pods().get("p0").phase, PodPhase::kTerminating);
  c.sim().run();
  EXPECT_FALSE(c.pods().contains("p0"));
}

TEST(Cluster, UsedCpusTracksNonFinishedPods) {
  Cluster c;
  c.add_nodes("node", 1, {16, 32768});
  c.create_pod(worker("p0", 3));
  c.create_pod(worker("p1", 2));
  EXPECT_EQ(c.used_cpus(), 5);  // pending pods still claim their request
  c.sim().run();
  c.delete_pod("p0");
  c.sim().run();
  EXPECT_EQ(c.used_cpus(), 2);
}

TEST(Cluster, PodWaitsWhenClusterFull) {
  Cluster c;
  c.add_nodes("node", 1, {2, 32768});
  c.create_pod(worker("p0"));
  c.create_pod(worker("p1"));
  c.create_pod(worker("p2"));  // no room
  c.sim().run();
  EXPECT_EQ(c.pods().get("p2").phase, PodPhase::kPending);
  // Freeing capacity lets the waiter in.
  c.delete_pod("p0");
  c.sim().run();
  EXPECT_EQ(c.pods().get("p2").phase, PodPhase::kRunning);
}

TEST(Cluster, ZeroCpuPodAlwaysFits) {
  Cluster c;
  c.add_nodes("node", 1, {1, 32768});
  c.create_pod(worker("w0", 1));
  Pod launcher;
  launcher.meta.name = "launcher";
  launcher.request = {0, 256};
  c.create_pod(std::move(launcher));
  c.sim().run();
  EXPECT_EQ(c.pods().get("launcher").phase, PodPhase::kRunning);
}

}  // namespace
}  // namespace ehpc::k8s
