#include "k8s/scheduler.hpp"

#include <gtest/gtest.h>

#include "k8s/cluster.hpp"

namespace ehpc::k8s {
namespace {

Pod worker(const std::string& name, int cpus = 1) {
  Pod p;
  p.meta.name = name;
  p.request = {cpus, 512};
  return p;
}

TEST(KubeScheduler, FiltersNodesWithoutCapacity) {
  Cluster c;
  c.add_nodes("small", 1, {1, 32768});
  c.add_nodes("big", 1, {16, 32768});
  c.create_pod(worker("p0", 8));
  c.sim().run();
  EXPECT_EQ(c.pods().get("p0").node_name, "big-0");
}

TEST(KubeScheduler, FiltersNotReadyNodes) {
  Cluster c;
  c.add_nodes("node", 2, {16, 32768});
  c.nodes().mutate("node-0", [](Node& n) { n.ready = false; });
  c.create_pod(worker("p0"));
  c.sim().run();
  EXPECT_EQ(c.pods().get("p0").node_name, "node-1");
}

TEST(KubeScheduler, BinPackFillsOneNodeFirst) {
  ClusterConfig cfg;
  cfg.scheduler.strategy = PlacementStrategy::kBinPack;
  Cluster c(cfg);
  c.add_nodes("node", 2, {16, 32768});
  c.create_pod(worker("p0"));
  c.sim().run();
  c.create_pod(worker("p1"));
  c.sim().run();
  EXPECT_EQ(c.pods().get("p0").node_name, c.pods().get("p1").node_name);
}

TEST(KubeScheduler, SpreadUsesBothNodes) {
  ClusterConfig cfg;
  cfg.scheduler.strategy = PlacementStrategy::kSpread;
  cfg.scheduler.affinity_weight = 0.0;
  Cluster c(cfg);
  c.add_nodes("node", 2, {16, 32768});
  c.create_pod(worker("p0"));
  c.sim().run();
  c.create_pod(worker("p1"));
  c.sim().run();
  EXPECT_NE(c.pods().get("p0").node_name, c.pods().get("p1").node_name);
}

TEST(KubeScheduler, AffinityColocatesJobPods) {
  ClusterConfig cfg;
  cfg.scheduler.strategy = PlacementStrategy::kSpread;  // fights affinity
  cfg.scheduler.affinity_weight = 100.0;                // affinity must win
  Cluster c(cfg);
  c.add_nodes("node", 2, {16, 32768});
  for (int i = 0; i < 4; ++i) {
    Pod p = worker("j1-w" + std::to_string(i));
    p.meta.labels["job"] = "j1";
    p.affinity_key = "job";
    p.affinity_value = "j1";
    c.create_pod(std::move(p));
    c.sim().run();
  }
  const std::string first = c.pods().get("j1-w0").node_name;
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(c.pods().get("j1-w" + std::to_string(i)).node_name, first);
  }
}

TEST(KubeScheduler, UsedOnCountsBoundPods) {
  Cluster c;
  c.add_nodes("node", 1, {16, 32768});
  c.create_pod(worker("p0", 4));
  c.sim().run();
  EXPECT_EQ(c.scheduler().used_on("node-0").cpus, 4);
  EXPECT_EQ(c.scheduler().used_on("node-1").cpus, 0);
}

TEST(KubeScheduler, PickNodeEmptyWhenNothingFits) {
  Cluster c;
  c.add_nodes("node", 1, {2, 32768});
  Pod p = worker("p0", 8);
  EXPECT_EQ(c.scheduler().pick_node(p), "");
}

TEST(KubeScheduler, ScheduledCountAccumulates) {
  Cluster c;
  c.add_nodes("node", 1, {16, 32768});
  c.create_pod(worker("p0"));
  c.create_pod(worker("p1"));
  c.sim().run();
  EXPECT_EQ(c.scheduler().scheduled_count(), 2);
}

}  // namespace
}  // namespace ehpc::k8s
