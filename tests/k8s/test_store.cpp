#include "k8s/store.hpp"

#include <gtest/gtest.h>

#include "k8s/api.hpp"

namespace ehpc::k8s {
namespace {

Pod make_pod(const std::string& name) {
  Pod p;
  p.meta.name = name;
  return p;
}

TEST(ObjectStore, AddAssignsIncreasingVersions) {
  ObjectStore<Pod> store;
  const Pod& a = store.add(make_pod("a"));
  const Pod& b = store.add(make_pod("b"));
  EXPECT_LT(a.meta.resource_version, b.meta.resource_version);
  EXPECT_EQ(store.size(), 2u);
}

TEST(ObjectStore, AddRejectsDuplicatesAndEmptyNames) {
  ObjectStore<Pod> store;
  store.add(make_pod("a"));
  EXPECT_THROW(store.add(make_pod("a")), PreconditionError);
  EXPECT_THROW(store.add(make_pod("")), PreconditionError);
}

TEST(ObjectStore, MutateBumpsVersionAndNotifies) {
  ObjectStore<Pod> store;
  store.add(make_pod("a"));
  const auto v1 = store.get("a").meta.resource_version;
  int events = 0;
  store.watch([&](WatchEvent e, const Pod&) {
    if (e == WatchEvent::kModified) ++events;
  });
  store.mutate("a", [](Pod& p) { p.phase = PodPhase::kRunning; });
  EXPECT_GT(store.get("a").meta.resource_version, v1);
  EXPECT_EQ(store.get("a").phase, PodPhase::kRunning);
  EXPECT_EQ(events, 1);
}

TEST(ObjectStore, RemoveNotifiesWithFinalState) {
  ObjectStore<Pod> store;
  store.add(make_pod("a"));
  std::string deleted;
  store.watch([&](WatchEvent e, const Pod& p) {
    if (e == WatchEvent::kDeleted) deleted = p.meta.name;
  });
  EXPECT_TRUE(store.remove("a"));
  EXPECT_EQ(deleted, "a");
  EXPECT_FALSE(store.remove("a"));
  EXPECT_FALSE(store.contains("a"));
}

TEST(ObjectStore, WatchersFireInRegistrationOrder) {
  ObjectStore<Pod> store;
  std::vector<int> order;
  store.watch([&](WatchEvent, const Pod&) { order.push_back(1); });
  store.watch([&](WatchEvent, const Pod&) { order.push_back(2); });
  store.add(make_pod("a"));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ObjectStore, ListIsNameOrdered) {
  ObjectStore<Pod> store;
  store.add(make_pod("b"));
  store.add(make_pod("a"));
  auto all = store.list();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->meta.name, "a");
  EXPECT_EQ(all[1]->meta.name, "b");
}

TEST(ObjectStore, ListWhereFilters) {
  ObjectStore<Pod> store;
  store.add(make_pod("a"));
  Pod b = make_pod("b");
  b.phase = PodPhase::kRunning;
  store.add(std::move(b));
  auto running = store.list_where(
      [](const Pod& p) { return p.phase == PodPhase::kRunning; });
  ASSERT_EQ(running.size(), 1u);
  EXPECT_EQ(running[0]->meta.name, "b");
}

TEST(ObjectStore, GetThrowsFindReturnsNull) {
  ObjectStore<Pod> store;
  EXPECT_THROW(store.get("missing"), PreconditionError);
  EXPECT_EQ(store.find("missing"), nullptr);
}

TEST(MatchesLabels, SubsetSemantics) {
  std::map<std::string, std::string> labels{{"job", "j1"}, {"role", "worker"}};
  EXPECT_TRUE(matches_labels(labels, {{"job", "j1"}}));
  EXPECT_TRUE(matches_labels(labels, {}));
  EXPECT_FALSE(matches_labels(labels, {{"job", "j2"}}));
  EXPECT_FALSE(matches_labels(labels, {{"missing", "x"}}));
}

TEST(Resources, ArithmeticAndFit) {
  Resources a{4, 1024};
  Resources b{2, 512};
  EXPECT_EQ((a + b).cpus, 6);
  EXPECT_EQ((a - b).memory_mib, 512);
  EXPECT_TRUE(b.fits_within(a));
  const Resources too_many_cpus{5, 0};
  const Resources too_much_memory{0, 2048};
  EXPECT_FALSE(too_many_cpus.fits_within(a));
  EXPECT_FALSE(too_much_memory.fits_within(a));
}

}  // namespace
}  // namespace ehpc::k8s
