// Batched watch delivery: the coalescing window, its edge cases, and the
// view-vs-watcher consistency contract (views are synchronous and exact
// mid-window; watchers see the coalesced replay at flush()).

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "k8s/api.hpp"
#include "k8s/store.hpp"

namespace ehpc::k8s {
namespace {

Pod make_pod(const std::string& name, PodPhase phase = PodPhase::kPending) {
  Pod p;
  p.meta.name = name;
  p.phase = phase;
  return p;
}

/// A store in batched mode with a manual flush trigger, plus a recording
/// watcher capturing (event, name, phase) tuples in delivery order.
struct Fixture {
  ObjectStore<Pod> store;
  int flush_requests = 0;
  std::vector<std::tuple<WatchEvent, std::string, PodPhase>> seen;

  Fixture() {
    store.enable_batched_delivery([this] { ++flush_requests; });
    store.watch([this](WatchEvent e, const Pod& p) {
      seen.emplace_back(e, p.meta.name, p.phase);
    });
  }
};

TEST(BatchedStore, DeliveryDeferredUntilFlushAndRequestedOncePerWindow) {
  Fixture f;
  f.store.add(make_pod("a"));
  f.store.add(make_pod("b"));
  f.store.mutate("a", [](Pod& p) { p.phase = PodPhase::kRunning; });
  EXPECT_EQ(f.flush_requests, 1);  // only the window's first event asks
  EXPECT_TRUE(f.seen.empty());
  EXPECT_EQ(f.store.pending_events(), 3u);

  f.store.flush();
  ASSERT_EQ(f.seen.size(), 3u);
  EXPECT_EQ(f.store.pending_events(), 0u);

  // Next window requests a flush again.
  f.store.mutate("b", [](Pod& p) { p.phase = PodPhase::kRunning; });
  EXPECT_EQ(f.flush_requests, 2);
}

TEST(BatchedStore, ModifiedRunCoalescesToFinalStateAtFirstPosition) {
  Fixture f;
  f.store.add(make_pod("a"));
  f.store.add(make_pod("b"));
  f.store.flush();
  f.seen.clear();

  // Run on "a" (3 events), interleaved single event on "b", then one more on
  // "a": the whole "a" run folds into its first queue position.
  f.store.mutate("a", [](Pod& p) { p.phase = PodPhase::kScheduled; });
  f.store.mutate("a", [](Pod& p) { p.phase = PodPhase::kRunning; });
  f.store.mutate("b", [](Pod& p) { p.phase = PodPhase::kScheduled; });
  f.store.mutate("a", [](Pod& p) { p.phase = PodPhase::kSucceeded; });
  EXPECT_EQ(f.store.pending_events(), 2u);

  f.store.flush();
  ASSERT_EQ(f.seen.size(), 2u);
  EXPECT_EQ(f.seen[0], std::make_tuple(WatchEvent::kModified, std::string("a"),
                                       PodPhase::kSucceeded));
  EXPECT_EQ(f.seen[1], std::make_tuple(WatchEvent::kModified, std::string("b"),
                                       PodPhase::kScheduled));
}

TEST(BatchedStore, AddAndDeleteInOneWindowBothDelivered) {
  Fixture f;
  f.store.add(make_pod("a"));
  f.store.mutate("a", [](Pod& p) { p.phase = PodPhase::kTerminating; });
  f.store.remove("a");
  EXPECT_FALSE(f.store.contains("a"));

  f.store.flush();
  ASSERT_EQ(f.seen.size(), 3u);
  EXPECT_EQ(std::get<0>(f.seen[0]), WatchEvent::kAdded);
  EXPECT_EQ(std::get<0>(f.seen[1]), WatchEvent::kModified);
  // The Deleted snapshot is the final image even though the object is gone.
  EXPECT_EQ(f.seen[2], std::make_tuple(WatchEvent::kDeleted, std::string("a"),
                                       PodPhase::kTerminating));
}

TEST(BatchedStore, LifecycleEdgesEndModifiedRuns) {
  Fixture f;
  f.store.add(make_pod("a"));
  f.store.flush();
  f.seen.clear();

  // Modified / Deleted / Added / Modified: nothing coalesces across the
  // delete+re-add edge pair, and the final Modified starts a fresh run.
  f.store.mutate("a", [](Pod& p) { p.phase = PodPhase::kRunning; });
  f.store.remove("a");
  f.store.add(make_pod("a"));
  f.store.mutate("a", [](Pod& p) { p.phase = PodPhase::kScheduled; });

  f.store.flush();
  ASSERT_EQ(f.seen.size(), 4u);
  EXPECT_EQ(std::get<0>(f.seen[0]), WatchEvent::kModified);
  EXPECT_EQ(std::get<0>(f.seen[1]), WatchEvent::kDeleted);
  EXPECT_EQ(std::get<0>(f.seen[2]), WatchEvent::kAdded);
  EXPECT_EQ(f.seen[3], std::make_tuple(WatchEvent::kModified, std::string("a"),
                                       PodPhase::kScheduled));
}

TEST(BatchedStore, MidWindowWatcherSeesOnlyLaterEvents) {
  Fixture f;
  f.store.mutate(f.store.add(make_pod("early")).meta.name,
                 [](Pod& p) { p.phase = PodPhase::kRunning; });

  std::vector<std::string> late_seen;
  f.store.watch([&](WatchEvent, const Pod& p) {
    late_seen.push_back(p.meta.name);
  });
  // A further fold into "early"'s pre-registration run stays invisible to
  // the new watcher; a fresh object is visible.
  f.store.mutate("early", [](Pod& p) { p.phase = PodPhase::kSucceeded; });
  f.store.add(make_pod("late"));

  f.store.flush();
  EXPECT_EQ(late_seen, std::vector<std::string>{"late"});
  // The original watcher saw everything (Added+coalesced Modified, Added).
  ASSERT_EQ(f.seen.size(), 3u);

  // After the flush the registration cutoff resets: the late watcher is a
  // full participant in the next window.
  f.seen.clear();
  late_seen.clear();
  f.store.mutate("early", [](Pod& p) { p.phase = PodPhase::kFailed; });
  f.store.flush();
  EXPECT_EQ(late_seen, std::vector<std::string>{"early"});
}

TEST(BatchedStore, EventsEnqueuedMidFlushDrainInSameFlush) {
  Fixture f;
  f.store.add(make_pod("a"));
  // A reactive watcher: on "a" turning Running, bind "b" (two more events).
  f.store.watch([&](WatchEvent e, const Pod& p) {
    if (e == WatchEvent::kModified && p.meta.name == "a" &&
        p.phase == PodPhase::kRunning && !f.store.contains("b")) {
      f.store.add(make_pod("b"));
      f.store.mutate("b", [](Pod& q) { q.phase = PodPhase::kScheduled; });
    }
  });
  f.store.flush();
  f.seen.clear();

  f.store.mutate("a", [](Pod& p) { p.phase = PodPhase::kRunning; });
  ASSERT_EQ(f.flush_requests, 2);
  f.store.flush();

  // One flush delivered the trigger plus both reactive events, appended in
  // order (no coalescing into already-delivered positions).
  ASSERT_EQ(f.seen.size(), 3u);
  EXPECT_EQ(std::get<1>(f.seen[0]), "a");
  EXPECT_EQ(std::get<0>(f.seen[1]), WatchEvent::kAdded);
  EXPECT_EQ(std::get<1>(f.seen[1]), "b");
  EXPECT_EQ(std::get<0>(f.seen[2]), WatchEvent::kModified);
  EXPECT_EQ(std::get<1>(f.seen[2]), "b");
  EXPECT_EQ(f.store.pending_events(), 0u);
  // The mid-flush enqueue must not have scheduled a second flush...
  EXPECT_EQ(f.flush_requests, 2);
  // ...but the *next* window does request one.
  f.store.mutate("a", [](Pod& p) { p.phase = PodPhase::kSucceeded; });
  EXPECT_EQ(f.flush_requests, 3);
}

TEST(BatchedStore, ViewsStayExactMidWindow) {
  Fixture f;
  int running_pods = 0;
  f.store.attach_view([&](WatchEvent, const Pod* before, const Pod* after) {
    if (before && before->phase == PodPhase::kRunning) --running_pods;
    if (after && after->phase == PodPhase::kRunning) ++running_pods;
  });
  f.store.add(make_pod("a", PodPhase::kRunning));
  f.store.add(make_pod("b", PodPhase::kRunning));
  f.store.mutate("a", [](Pod& p) { p.phase = PodPhase::kSucceeded; });
  // The view already reflects all three mutations; no watcher has run yet.
  EXPECT_EQ(running_pods, 1);
  EXPECT_TRUE(f.seen.empty());
  f.store.flush();
  EXPECT_EQ(running_pods, 1);
}

TEST(BatchedStore, FlushOnEmptyQueueIsNoOp) {
  Fixture f;
  int batches = 0;
  f.store.observe_batches([&] { ++batches; });
  f.store.flush();
  EXPECT_EQ(batches, 0);
  EXPECT_TRUE(f.seen.empty());
}

TEST(BatchedStore, BatchObserverFiresOncePerFlush) {
  Fixture f;
  int batches = 0;
  f.store.observe_batches([&] { ++batches; });
  f.store.add(make_pod("a"));
  f.store.add(make_pod("b"));
  f.store.mutate("a", [](Pod& p) { p.phase = PodPhase::kRunning; });
  EXPECT_EQ(batches, 0);
  f.store.flush();
  EXPECT_EQ(batches, 1);
  f.store.mutate("b", [](Pod& p) { p.phase = PodPhase::kRunning; });
  f.store.flush();
  EXPECT_EQ(batches, 2);
}

}  // namespace
}  // namespace ehpc::k8s
