// ClusterIndex property battery: drive the node/pod stores through a long
// randomized mutation sequence and, after every operation, check each
// indexed query against a brute-force reference computed from the stores —
// including `best_node` against a literal reimplementation of the historical
// O(nodes × pods) placement scan whose semantics the index must match bit
// for bit.

#include "k8s/views.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "k8s/api.hpp"
#include "k8s/store.hpp"

namespace ehpc::k8s {
namespace {

bool claims_resources(const Pod& pod) {
  return pod.phase != PodPhase::kSucceeded && pod.phase != PodPhase::kFailed;
}

/// The historical scheduler scan, verbatim: walk every node in name order,
/// recompute its allocation from every pod, score, keep the first strict
/// maximum.
std::string reference_best_node(const ObjectStore<Node>& nodes,
                                const ObjectStore<Pod>& pods, const Pod& pod,
                                bool prefer_packed, double affinity_weight) {
  std::string best;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const Node* node : nodes.list()) {
    if (!node->ready) continue;
    Resources used;
    for (const Pod* p : pods.list()) {
      if (p->node_name == node->meta.name && claims_resources(*p)) {
        used = used + p->request;
      }
    }
    if (!(used + pod.request).fits_within(node->capacity)) continue;
    const double ratio =
        node->capacity.cpus > 0
            ? static_cast<double>(used.cpus) / node->capacity.cpus
            : 0.0;
    double score = prefer_packed ? ratio : -ratio;
    if (!pod.affinity_key.empty()) {
      int count = 0;
      for (const Pod* p : pods.list()) {
        auto it = p->meta.labels.find(pod.affinity_key);
        if (p->node_name == node->meta.name && it != p->meta.labels.end() &&
            it->second == pod.affinity_value) {
          ++count;
        }
      }
      score += affinity_weight * count /
               std::max(1, node->capacity.cpus);
    }
    if (score > best_score) {
      best_score = score;
      best = node->meta.name;
    }
  }
  return best;
}

struct Battery {
  ObjectStore<Node> nodes;
  ObjectStore<Pod> pods;

  void check(const ClusterIndex& index) const {
    int total = 0, used = 0, bound = 0;
    for (const Node* node : nodes.list()) {
      if (node->ready) total += node->capacity.cpus;
    }
    for (const Pod* pod : pods.list()) {
      if (!claims_resources(*pod)) continue;
      used += pod->request.cpus;
      if (!pod->node_name.empty()) bound += pod->request.cpus;
    }
    ASSERT_EQ(index.total_cpus(), total);
    ASSERT_EQ(index.used_cpus(), used);
    ASSERT_EQ(index.bound_cpus(), bound);

    for (const Node* node : nodes.list()) {
      Resources expect;
      int colocated = 0;
      for (const Pod* pod : pods.list()) {
        if (pod->node_name != node->meta.name) continue;
        if (claims_resources(*pod)) expect = expect + pod->request;
        auto it = pod->meta.labels.find("job");
        if (it != pod->meta.labels.end() && it->second == "job-1") ++colocated;
      }
      const Resources got = index.used_on(node->meta.name);
      ASSERT_EQ(got.cpus, expect.cpus) << node->meta.name;
      ASSERT_EQ(got.memory_mib, expect.memory_mib) << node->meta.name;
      ASSERT_EQ(index.colocated(node->meta.name, "job", "job-1"), colocated)
          << node->meta.name;
    }

    for (const PodPhase phase :
         {PodPhase::kPending, PodPhase::kScheduled, PodPhase::kRunning,
          PodPhase::kSucceeded, PodPhase::kFailed, PodPhase::kTerminating}) {
      std::set<std::string> expect;
      for (const Pod* pod : pods.list()) {
        if (pod->phase == phase) expect.insert(pod->meta.name);
      }
      ASSERT_EQ(index.pods_in_phase(phase), expect) << to_string(phase);
    }

    for (int j = 0; j < 3; ++j) {
      const std::string value = "job-" + std::to_string(j);
      std::set<std::string> expect;
      for (const Pod* pod : pods.list()) {
        auto it = pod->meta.labels.find("job");
        if (it != pod->meta.labels.end() && it->second == value) {
          expect.insert(pod->meta.name);
        }
      }
      ASSERT_EQ(index.pods_with_label("job", value), expect) << value;
    }
  }

  void check_placement(const ClusterIndex& index, Rng& rng) const {
    Pod probe;
    probe.meta.name = "probe";
    probe.request = {static_cast<int>(rng.uniform_int(0, 3)), 256};
    for (const bool with_affinity : {false, true}) {
      if (with_affinity) {
        probe.affinity_key = "job";
        probe.affinity_value = "job-" + std::to_string(rng.uniform_int(0, 2));
      }
      for (const bool packed : {false, true}) {
        ASSERT_EQ(index.best_node(probe, packed, 0.5),
                  reference_best_node(nodes, pods, probe, packed, 0.5))
            << "packed=" << packed << " affinity=" << with_affinity
            << " cpus=" << probe.request.cpus;
      }
    }
  }
};

TEST(ClusterIndex, MatchesBruteForceUnderRandomMutations) {
  Battery b;
  ClusterIndex index(b.nodes, b.pods);
  Rng rng(20250807);
  int pod_counter = 0;

  for (int step = 0; step < 600; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    const auto node_names = b.nodes.list();
    const auto pod_names = b.pods.list();
    switch (op) {
      case 0: {  // add a node
        Node node;
        node.meta.name = "node-" + std::to_string(rng.uniform_int(0, 11));
        if (b.nodes.contains(node.meta.name)) break;
        node.capacity = {static_cast<int>(rng.uniform_int(2, 8)), 4096};
        node.ready = rng.uniform_int(0, 3) > 0;
        b.nodes.add(node);
        break;
      }
      case 1: {  // flip readiness
        if (node_names.empty()) break;
        const std::string name =
            node_names[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(node_names.size()) - 1))]->meta.name;
        b.nodes.mutate(name, [](Node& n) { n.ready = !n.ready; });
        break;
      }
      case 2: {  // remove a node (pods bound to it become orphans)
        if (node_names.empty()) break;
        b.nodes.remove(
            node_names[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(node_names.size()) - 1))]->meta.name);
        break;
      }
      case 3:
      case 4: {  // create a pod, sometimes labeled/affine
        Pod pod;
        pod.meta.name = "pod-" + std::to_string(pod_counter++);
        pod.request = {static_cast<int>(rng.uniform_int(0, 3)), 256};
        if (rng.uniform_int(0, 2) > 0) {
          pod.meta.labels["job"] =
              "job-" + std::to_string(rng.uniform_int(0, 2));
        }
        b.pods.add(pod);
        break;
      }
      case 5:
      case 6: {  // bind a pending pod to a random (possibly absent) node
        if (pod_names.empty()) break;
        const Pod* pod =
            pod_names[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(pod_names.size()) - 1))];
        if (!pod->node_name.empty()) break;
        const std::string target =
            "node-" + std::to_string(rng.uniform_int(0, 11));
        b.pods.mutate(pod->meta.name, [&](Pod& p) {
          p.node_name = target;
          p.phase = PodPhase::kScheduled;
        });
        break;
      }
      case 7: {  // advance a pod's phase
        if (pod_names.empty()) break;
        const std::string name =
            pod_names[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(pod_names.size()) - 1))]->meta.name;
        const auto phase = static_cast<PodPhase>(rng.uniform_int(0, 5));
        b.pods.mutate(name, [&](Pod& p) { p.phase = phase; });
        break;
      }
      case 8: {  // delete a pod
        if (pod_names.empty()) break;
        b.pods.remove(
            pod_names[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(pod_names.size()) - 1))]->meta.name);
        break;
      }
      default: {  // update a node's capacity wholesale
        if (node_names.empty()) break;
        Node node = *node_names[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(node_names.size()) - 1))];
        node.capacity.cpus = static_cast<int>(rng.uniform_int(2, 8));
        b.nodes.update(node);
        break;
      }
    }
    ASSERT_NO_FATAL_FAILURE(b.check(index)) << "step " << step;
    ASSERT_NO_FATAL_FAILURE(b.check_placement(index, rng)) << "step " << step;
  }
  // The battery must actually have exercised placement.
  EXPECT_GT(index.stats().placement_queries, 0);
}

TEST(ClusterIndex, BootstrapsFromNonEmptyStores) {
  Battery b;
  Node node;
  node.meta.name = "node-0";
  node.capacity = {16, 32768};
  node.ready = true;
  b.nodes.add(node);
  Pod pod;
  pod.meta.name = "pod-0";
  pod.request = {4, 1024};
  pod.node_name = "node-0";
  pod.phase = PodPhase::kRunning;
  pod.meta.labels["job"] = "job-1";
  b.pods.add(pod);

  ClusterIndex index(b.nodes, b.pods);
  EXPECT_EQ(index.total_cpus(), 16);
  EXPECT_EQ(index.used_cpus(), 4);
  EXPECT_EQ(index.bound_cpus(), 4);
  EXPECT_EQ(index.used_on("node-0").cpus, 4);
  EXPECT_EQ(index.colocated("node-0", "job", "job-1"), 1);
  b.check(index);
}

TEST(ClusterIndex, PlacementCostIsSubLinearInNodes) {
  // 1 pending pod on N idle nodes: the bucket walk touches one node, not N.
  Battery b;
  for (int i = 0; i < 1000; ++i) {
    Node node;
    node.meta.name = "node-" + std::to_string(i);
    node.capacity = {16, 32768};
    node.ready = true;
    b.nodes.add(node);
  }
  ClusterIndex index(b.nodes, b.pods);
  Pod probe;
  probe.meta.name = "probe";
  probe.request = {1, 256};
  EXPECT_FALSE(index.best_node(probe, true, 0.5).empty());
  EXPECT_EQ(index.stats().placement_queries, 1);
  EXPECT_EQ(index.stats().nodes_examined, 1);
}

}  // namespace
}  // namespace ehpc::k8s
