// Property battery over ContentionNetworkModel: conservation of injected
// traffic in the per-link accounting, exact k-flow sharing arithmetic,
// window-boundary resets, structural oversubscription penalties, and the
// bit-identical flat-equivalence that protects every recorded baseline.

#include "net/network_model.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace ehpc::net {
namespace {

ContentionConfig fattree_config(double oversub, double window_s = 1.0e-3,
                                double per_hop_alpha_s = 0.0) {
  ContentionConfig config{presets::pod_network(),
                          Topology::fat_tree(4, oversub, per_hop_alpha_s)};
  config.window_s = window_s;
  return config;
}

TEST(Contention, UncontendedTransfersAreBitIdenticalToFlat) {
  // oversub <= radix, zero per-hop alpha, one transfer per window: the
  // contention model must reproduce the flat price bit for bit. This is the
  // equivalence that keeps all pre-existing baselines byte-identical.
  ContentionNetworkModel model(fattree_config(/*oversub=*/2.0));
  const FlatNetworkModel flat(presets::pod_network());
  double now = 0.0;
  for (const std::size_t bytes : {1u, 512u, 65536u, 1u << 22}) {
    for (const auto& route : std::vector<std::pair<int, int>>{
             {0, 1}, {0, 5}, {2, 14}, {9, 9}}) {
      EXPECT_EQ(model.begin_transfer(bytes, route.first, route.second, now),
                flat.message_time(bytes, route.first, route.second))
          << bytes << "B " << route.first << "->" << route.second;
      now += 1.0;  // next window: no sharing carries over
    }
  }
}

TEST(Contention, KFlowsOnOneLinkShareExactly) {
  // k same-window transfers into one node: the k-th waits for k-1 extra
  // bandwidth slices, each worth bytes/access_bw — exact arithmetic, not a
  // tolerance check.
  ContentionNetworkModel model(fattree_config(/*oversub=*/1.0));
  const std::size_t bytes = 1 << 20;
  const double slice = static_cast<double>(bytes) /
                       model.config().base.inter_node().bandwidth_Bps;
  const double base = model.config().base.message_time(bytes, 0, 1);
  for (int k = 1; k <= 5; ++k) {
    const double t = model.begin_transfer(bytes, 0, 1, 0.0);
    if (k == 1) {
      EXPECT_EQ(t, base);
    } else {
      EXPECT_DOUBLE_EQ(t, base + static_cast<double>(k - 1) * slice);
    }
  }
}

TEST(Contention, WindowBoundaryResetsSharing) {
  ContentionNetworkModel model(fattree_config(/*oversub=*/1.0,
                                              /*window_s=*/1.0e-3));
  const std::size_t bytes = 1 << 20;
  const double lone = model.begin_transfer(bytes, 0, 1, 0.0);
  EXPECT_GT(model.begin_transfer(bytes, 0, 1, 0.5e-3), lone);  // same window
  // Next window: the link count resets and the price returns to the floor.
  EXPECT_EQ(model.begin_transfer(bytes, 0, 1, 1.5e-3), lone);
  EXPECT_DOUBLE_EQ(model.sharing_at(1.5e-3), 1.0);
}

TEST(Contention, ZeroWindowDisablesSharingButKeepsStructuralPenalty) {
  // window_s = 0: concurrency never stretches anything, but an oversub
  // beyond the radix still makes the core slower than the access link.
  ContentionNetworkModel model(fattree_config(/*oversub=*/8.0,
                                              /*window_s=*/0.0));
  const std::size_t bytes = 1 << 20;
  const double base = model.config().base.message_time(bytes, 0, 5);
  const double slice = static_cast<double>(bytes) /
                       model.config().base.inter_node().bandwidth_Bps;
  for (int i = 0; i < 4; ++i) {
    // Core share = radix/oversub = 0.5 -> bottleneck 2 -> one extra slice,
    // identically for every transfer no matter how many are in flight.
    EXPECT_DOUBLE_EQ(model.begin_transfer(bytes, 0, 5, 0.0), base + slice);
  }
  EXPECT_DOUBLE_EQ(model.sharing_at(0.0), 1.0);
  // Same-rack traffic never crosses the core: flat price.
  EXPECT_EQ(model.begin_transfer(bytes, 0, 1, 0.0), base);
}

TEST(Contention, EstimateIsSideEffectFree) {
  ContentionNetworkModel model(fattree_config(/*oversub=*/8.0));
  const std::size_t bytes = 1 << 18;
  // message_time answers "as if alone" and must not mutate window state.
  const double estimate = model.message_time(bytes, 0, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(model.message_time(bytes, 0, 5), estimate);
  }
  EXPECT_DOUBLE_EQ(model.sharing_at(0.0), 1.0);
  EXPECT_TRUE(model.link_stats().empty());
  // It still prices the structural oversubscription (planners must see it).
  const double slice = static_cast<double>(bytes) /
                       model.config().base.inter_node().bandwidth_Bps;
  EXPECT_DOUBLE_EQ(estimate,
                   model.config().base.message_time(bytes, 0, 5) + slice);
  // And the first real transfer matches the estimate exactly.
  EXPECT_EQ(model.begin_transfer(bytes, 0, 5, 0.0), estimate);
}

TEST(Contention, PerHopAlphaChargesPathLength) {
  const double hop = 2.0e-6;
  ContentionNetworkModel model(
      fattree_config(/*oversub=*/1.0, /*window_s=*/1.0e-3, hop));
  const double base_same = model.config().base.message_time(64, 0, 1);
  const double base_cross = model.config().base.message_time(64, 0, 5);
  EXPECT_DOUBLE_EQ(model.begin_transfer(64, 0, 1, 0.0), base_same + 2.0 * hop);
  EXPECT_DOUBLE_EQ(model.begin_transfer(64, 0, 5, 1.0), base_cross + 4.0 * hop);
}

TEST(Contention, LinkStatsConserveInjectedTraffic) {
  ContentionNetworkModel model(fattree_config(/*oversub=*/2.0));
  double injected = 0.0;
  int transfers = 0;
  double now = 0.0;
  const std::pair<int, int> routes[] = {{0, 1}, {0, 5}, {3, 9}, {8, 2}, {1, 0}};
  for (const std::size_t bytes : {100u, 4096u, 65536u}) {
    for (const auto& [src, dst] : routes) {
      model.begin_transfer(bytes, src, dst, now);
      injected += static_cast<double>(bytes);
      ++transfers;
      now += 2.0e-3;
    }
  }
  // Every transfer crosses exactly one node-up link, so summing the
  // demand over that link kind must recover the injected byte total.
  double up_bytes = 0.0;
  std::int64_t up_transfers = 0;
  double all_bytes = 0.0;
  for (const auto& [link, stats] : model.link_stats()) {
    all_bytes += stats.demand_bytes;
    if ((link >> 32) == 0) {  // kNodeUp
      up_bytes += stats.demand_bytes;
      up_transfers += stats.transfers;
    }
  }
  EXPECT_DOUBLE_EQ(up_bytes, injected);
  EXPECT_EQ(up_transfers, transfers);
  // Each byte crosses at least the two access links of its path.
  EXPECT_GE(all_bytes, 2.0 * injected);
}

TEST(Contention, CollectiveLatencyStretchesWithFabricSharing) {
  ContentionNetworkModel model(fattree_config(/*oversub=*/1.0));
  const double quiet = model.collective_latency(16, 0.0);
  // Quiet fabric: exactly the classic contention-free tree estimate.
  EXPECT_EQ(quiet, FlatNetworkModel(presets::pod_network())
                       .collective_latency(16, 0.0));
  // Saturate one access link with 4 same-window flows: sharing hits 4 and
  // a reduction observed in that window costs 4x the floor.
  for (int i = 0; i < 4; ++i) model.begin_transfer(1 << 20, 0, 1, 0.0);
  EXPECT_DOUBLE_EQ(model.sharing_at(0.0), 4.0);
  EXPECT_DOUBLE_EQ(model.collective_latency(16, 0.0), 4.0 * quiet);
  // The next window is quiet again.
  EXPECT_EQ(model.collective_latency(16, 5.0e-3), quiet);
}

TEST(Contention, OversubscribedCoreStretchesEarlierThanAccessLinks) {
  // With oversub 4 on radix 4 the core share is 1.0, so two cross-rack
  // flows over the shared core contend (k/share = 2) while two same-rack
  // flows into distinct nodes do not.
  ContentionNetworkModel model(fattree_config(/*oversub=*/4.0));
  const std::size_t bytes = 1 << 20;
  const double flat = model.config().base.message_time(bytes, 0, 5);
  const double slice = static_cast<double>(bytes) /
                       model.config().base.inter_node().bandwidth_Bps;
  EXPECT_EQ(model.begin_transfer(bytes, 0, 5, 0.0), flat);
  // Distinct endpoints, same racks: only the core is shared.
  EXPECT_DOUBLE_EQ(model.begin_transfer(bytes, 1, 6, 0.0), flat + slice);
}

}  // namespace
}  // namespace ehpc::net
