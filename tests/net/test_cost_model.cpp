#include "net/cost_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace ehpc::net {
namespace {

TEST(LinkModel, TransferTimeIsAffine) {
  LinkModel link{1.0e-6, 1.0e9};
  EXPECT_DOUBLE_EQ(link.transfer_time(0), 1.0e-6);
  EXPECT_DOUBLE_EQ(link.transfer_time(1'000'000), 1.0e-6 + 1.0e-3);
}

TEST(CostModel, IntraVsInterNode) {
  CostModel m(LinkModel{1.0e-6, 10.0e9}, LinkModel{20.0e-6, 1.0e9}, 1.0e-6);
  const std::size_t bytes = 1 << 20;
  EXPECT_LT(m.message_time(bytes, 0, 0), m.message_time(bytes, 0, 1));
}

TEST(CostModel, SoftwareOverheadAlwaysPresent) {
  CostModel m(LinkModel{0.0, 1.0e9}, LinkModel{0.0, 1.0e9}, 5.0e-6);
  EXPECT_DOUBLE_EQ(m.message_time(0, 0, 0), 5.0e-6);
  EXPECT_DOUBLE_EQ(m.inter_alpha(), 5.0e-6);
}

TEST(CostModel, LargerMessagesCostMore) {
  CostModel m = presets::eks_placement_group();
  EXPECT_LT(m.message_time(1024, 0, 1), m.message_time(1 << 20, 0, 1));
}

TEST(Presets, RelativeLatencyOrdering) {
  // InfiniBand < EKS placement group < generic cloud for inter-node alpha.
  EXPECT_LT(presets::infiniband().inter_node().alpha_s,
            presets::eks_placement_group().inter_node().alpha_s);
  EXPECT_LT(presets::eks_placement_group().inter_node().alpha_s,
            presets::generic_cloud().inter_node().alpha_s);
}

TEST(Presets, BandwidthOrdering) {
  EXPECT_GT(presets::infiniband().inter_node().bandwidth_Bps,
            presets::eks_placement_group().inter_node().bandwidth_Bps);
  EXPECT_GT(presets::eks_placement_group().inter_node().bandwidth_Bps,
            presets::generic_cloud().inter_node().bandwidth_Bps);
}

TEST(Presets, ByNameResolves) {
  EXPECT_NO_THROW(presets::by_name("eks"));
  EXPECT_NO_THROW(presets::by_name("cloud"));
  EXPECT_NO_THROW(presets::by_name("ib"));
  EXPECT_THROW(presets::by_name("bogus"), PreconditionError);
}

}  // namespace
}  // namespace ehpc::net
