// The NetworkModel seam itself: the flat model must be bit-identical to the
// concrete CostModel it wraps (every pre-existing baseline was recorded
// against that math), the factory must parse the scenario-facing kinds, and
// clone() must produce independent contention state.

#include "net/network_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.hpp"

namespace ehpc::net {
namespace {

TEST(FlatNetworkModel, IsBitIdenticalToTheCostModelItWraps) {
  const CostModel base = presets::pod_network();
  const FlatNetworkModel model(base);
  const std::pair<int, int> routes[] = {{0, 0}, {0, 1}, {3, 17}};
  for (const std::size_t bytes : {0u, 1u, 64u, 4096u, 1u << 20}) {
    for (const auto& [src, dst] : routes) {
      EXPECT_EQ(model.message_time(bytes, src, dst),
                base.message_time(bytes, src, dst));
    }
  }
  EXPECT_EQ(model.inter_alpha(), base.inter_alpha());
}

TEST(FlatNetworkModel, BeginTransferIsTheStatelessPrice) {
  FlatNetworkModel model(presets::pod_network());
  const double lone = model.message_time(4096, 0, 1);
  // However many transfers depart in the same instant, a flat model never
  // charges contention.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(model.begin_transfer(4096, 0, 1, 0.0), lone);
  }
}

TEST(NetworkModel, DefaultCollectiveLatencyIsTheClassicTreeFloor) {
  const FlatNetworkModel model(presets::pod_network());
  const double alpha = model.inter_alpha();
  // ceil(log2(max(pes, 2))) * inter_alpha, bit-for-bit: this is the exact
  // expression the runtime used before the seam existed.
  EXPECT_EQ(model.collective_latency(1, 0.0), alpha);
  EXPECT_EQ(model.collective_latency(2, 0.0), alpha);
  EXPECT_EQ(model.collective_latency(5, 0.0), 3.0 * alpha);
  EXPECT_EQ(model.collective_latency(64, 0.0), 6.0 * alpha);
  EXPECT_EQ(model.collective_latency(65, 0.0), 7.0 * alpha);
}

TEST(NetworkModel, DefaultModelIsFlatOverThePodNetwork) {
  const auto model = default_network_model();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), "flat");
  const CostModel pod = presets::pod_network();
  EXPECT_EQ(model->message_time(65536, 0, 1), pod.message_time(65536, 0, 1));
  // Process-wide singleton: configs seeded from it share one instance.
  EXPECT_EQ(default_network_model().get(), model.get());
}

TEST(MakeNetworkModel, BuildsEveryAdvertisedKind) {
  EXPECT_EQ(make_network_model("flat")->name(), "flat");
  EXPECT_EQ(make_network_model("fattree", 2.0)->name(), "fattree");
  EXPECT_EQ(make_network_model("dragonfly", 2.0)->name(), "dragonfly");
}

TEST(MakeNetworkModel, RejectsUnknownKindsAndBadOversub) {
  EXPECT_THROW(make_network_model("torus"), PreconditionError);
  EXPECT_THROW(make_network_model(""), PreconditionError);
  EXPECT_THROW(make_network_model("fattree", 0.0), PreconditionError);
  EXPECT_THROW(make_network_model("fattree", -2.0), PreconditionError);
}

TEST(MakeNetworkModel, DescribeNamesTheTopology) {
  EXPECT_EQ(make_network_model("fattree", 4.0)->describe(),
            "fattree(radix=4,oversub=4)");
  const std::string flat = make_network_model("flat")->describe();
  EXPECT_NE(flat.find("flat("), std::string::npos);
}

TEST(NetworkModel, CloneProducesIndependentContentionState) {
  auto original = make_network_model("fattree", 2.0);
  auto* contended = dynamic_cast<ContentionNetworkModel*>(original.get());
  ASSERT_NE(contended, nullptr);

  auto copy = original->clone();
  auto* copied = dynamic_cast<ContentionNetworkModel*>(copy.get());
  ASSERT_NE(copied, nullptr);

  // Saturate the original; the clone must stay quiet.
  for (int i = 0; i < 6; ++i) contended->begin_transfer(4096, 0, 1, 0.0);
  EXPECT_GT(contended->sharing_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(copied->sharing_at(0.0), 1.0);
  EXPECT_TRUE(copied->link_stats().empty());

  // And vice versa: a clone taken after traffic starts fresh.
  auto late = contended->clone();
  auto* late_c = dynamic_cast<ContentionNetworkModel*>(late.get());
  ASSERT_NE(late_c, nullptr);
  EXPECT_TRUE(late_c->link_stats().empty());
  EXPECT_DOUBLE_EQ(late_c->sharing_at(0.0), 1.0);
}

}  // namespace
}  // namespace ehpc::net
