#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace ehpc::net {
namespace {

TEST(Topology, IntraNodeTrafficNeverTouchesTheFabric) {
  const Topology t = Topology::fat_tree(4, 2.0);
  std::vector<LinkId> path{123};  // stale content must be cleared
  t.path(7, 7, &path);
  EXPECT_TRUE(path.empty());
}

TEST(Topology, FatTreeSameRackCrossesTwoLinks) {
  const Topology t = Topology::fat_tree(4, 2.0);
  std::vector<LinkId> path;
  t.path(0, 3, &path);  // nodes 0..3 share rack 0
  EXPECT_EQ(path.size(), 2u);
  for (const LinkId link : path) {
    EXPECT_DOUBLE_EQ(t.bandwidth_share(link), 1.0);
  }
}

TEST(Topology, FatTreeCrossRackAddsTheCoreLinks) {
  const Topology t = Topology::fat_tree(4, 2.0);
  std::vector<LinkId> path;
  t.path(1, 6, &path);  // rack 0 -> rack 1
  ASSERT_EQ(path.size(), 4u);
  // The two middle links are the racks' core uplink/downlink, whose
  // bandwidth is radix/oversub = 2x the access link.
  EXPECT_DOUBLE_EQ(t.bandwidth_share(path[1]), 2.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_share(path[2]), 2.0);
}

TEST(Topology, DragonflySameGroupUsesTheLocalChannel) {
  const Topology t = Topology::dragonfly(4, 2.0);
  std::vector<LinkId> path;
  t.path(0, 3, &path);
  ASSERT_EQ(path.size(), 3u);
  // The middle link is the group-local all-to-all channel: share = radix.
  EXPECT_DOUBLE_EQ(t.bandwidth_share(path[1]), 4.0);
}

TEST(Topology, DragonflyCrossGroupMatchesFatTreeShape) {
  const Topology t = Topology::dragonfly(4, 8.0);
  std::vector<LinkId> path;
  t.path(0, 5, &path);
  ASSERT_EQ(path.size(), 4u);
  // Global links carry radix/oversub = 0.5 of the access bandwidth: an
  // oversubscription past the radix makes even a lone cross-group transfer
  // slower than the access link.
  EXPECT_DOUBLE_EQ(t.bandwidth_share(path[1]), 0.5);
}

TEST(Topology, GroupOfIsContiguous) {
  const Topology t = Topology::fat_tree(4, 1.0);
  EXPECT_EQ(t.group_of(0), 0);
  EXPECT_EQ(t.group_of(3), 0);
  EXPECT_EQ(t.group_of(4), 1);
  EXPECT_EQ(t.group_of(41), 10);
}

TEST(Topology, PathsAreSymmetricInLinkCountAndDeterministic) {
  const Topology t = Topology::fat_tree(4, 2.0);
  std::vector<LinkId> ab;
  std::vector<LinkId> ba;
  t.path(2, 9, &ab);
  t.path(9, 2, &ba);
  EXPECT_EQ(ab.size(), ba.size());
  std::vector<LinkId> again;
  t.path(2, 9, &again);
  EXPECT_EQ(ab, again);
}

TEST(Topology, DistinctNodePairsShareCoreLinksOfTheirRacks) {
  const Topology t = Topology::fat_tree(4, 2.0);
  std::vector<LinkId> a;
  std::vector<LinkId> b;
  t.path(0, 4, &a);  // rack 0 -> rack 1
  t.path(1, 5, &b);  // rack 0 -> rack 1, different endpoints
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  // Same core uplink/downlink (that is what makes rack uplinks contended),
  // distinct node access links.
  EXPECT_EQ(a[1], b[1]);
  EXPECT_EQ(a[2], b[2]);
  EXPECT_NE(a[0], b[0]);
  EXPECT_NE(a[3], b[3]);
}

TEST(Topology, DescribeNamesShapeAndParameters) {
  EXPECT_EQ(Topology::fat_tree(4, 2.0).describe(), "fattree(radix=4,oversub=2)");
  EXPECT_EQ(Topology::dragonfly(8, 1.5).describe(),
            "dragonfly(radix=8,oversub=1.5)");
}

TEST(Topology, RejectsDegenerateParameters) {
  EXPECT_THROW(Topology::fat_tree(0, 1.0), PreconditionError);
  EXPECT_THROW(Topology::fat_tree(4, 0.0), PreconditionError);
  EXPECT_THROW(Topology::fat_tree(4, 1.0, -1.0), PreconditionError);
}

}  // namespace
}  // namespace ehpc::net
