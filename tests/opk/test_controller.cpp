#include "opk/controller.hpp"

#include <gtest/gtest.h>

namespace ehpc::opk {
namespace {

struct Fixture {
  k8s::Cluster cluster;
  k8s::ObjectStore<CharmJob> jobs;
  CharmJobController controller{cluster, jobs, ControllerConfig{}};

  Fixture() { cluster.add_nodes("node", 4, {16, 32768}); }

  CharmJob make_job(const std::string& name, int replicas) {
    CharmJob job;
    job.meta.name = name;
    job.desired_replicas = replicas;
    job.phase = CharmJobPhase::kLaunching;
    return job;
  }

  int worker_pods(const std::string& job_name, k8s::PodPhase phase) {
    int count = 0;
    for (const k8s::Pod* pod : cluster.pods().list()) {
      auto jt = pod->meta.labels.find("job");
      auto rt = pod->meta.labels.find("role");
      if (jt != pod->meta.labels.end() && jt->second == job_name &&
          rt != pod->meta.labels.end() && rt->second == "worker" &&
          pod->phase == phase) {
        ++count;
      }
    }
    return count;
  }
};

TEST(CharmJobController, CreatesWorkerPodsToDesired) {
  Fixture f;
  f.jobs.add(f.make_job("j1", 8));
  f.cluster.sim().run();
  EXPECT_EQ(f.worker_pods("j1", k8s::PodPhase::kRunning), 8);
  EXPECT_EQ(f.jobs.get("j1").ready_replicas, 8);
}

TEST(CharmJobController, CreatesLauncherPod) {
  Fixture f;
  f.jobs.add(f.make_job("j1", 4));
  f.cluster.sim().run();
  ASSERT_TRUE(f.cluster.pods().contains("j1-launcher"));
  EXPECT_EQ(f.cluster.pods().get("j1-launcher").request.cpus, 0);
}

TEST(CharmJobController, NodelistSortedAndComplete) {
  Fixture f;
  f.jobs.add(f.make_job("j1", 4));
  f.cluster.sim().run();
  const auto& nodelist = f.jobs.get("j1").nodelist;
  ASSERT_EQ(nodelist.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nodelist.begin(), nodelist.end()));
  EXPECT_EQ(nodelist[0], "j1-worker-0");
}

TEST(CharmJobController, WhenReadyFiresAfterAllRunning) {
  Fixture f;
  bool ready = false;
  f.controller.when_ready("j1", [&](const std::string&) { ready = true; });
  f.jobs.add(f.make_job("j1", 8));
  EXPECT_FALSE(ready);
  f.cluster.sim().run();
  EXPECT_TRUE(ready);
}

TEST(CharmJobController, ShrinkDeletesHighestRanks) {
  Fixture f;
  f.jobs.add(f.make_job("j1", 8));
  f.cluster.sim().run();
  f.jobs.mutate("j1", [](CharmJob& j) { j.desired_replicas = 4; });
  f.cluster.sim().run();
  EXPECT_EQ(f.worker_pods("j1", k8s::PodPhase::kRunning), 4);
  EXPECT_TRUE(f.cluster.pods().contains("j1-worker-3"));
  EXPECT_FALSE(f.cluster.pods().contains("j1-worker-7"));
}

TEST(CharmJobController, ExpandAddsPodsAndSignalsReady) {
  Fixture f;
  f.jobs.add(f.make_job("j1", 4));
  f.cluster.sim().run();
  bool expanded = false;
  f.controller.when_ready("j1", [&](const std::string&) { expanded = true; });
  f.jobs.mutate("j1", [](CharmJob& j) { j.desired_replicas = 8; });
  f.cluster.sim().run();
  EXPECT_TRUE(expanded);
  EXPECT_EQ(f.worker_pods("j1", k8s::PodPhase::kRunning), 8);
}

TEST(CharmJobController, CompletedJobTearsDownAllPods) {
  Fixture f;
  f.jobs.add(f.make_job("j1", 8));
  f.cluster.sim().run();
  f.jobs.mutate("j1", [](CharmJob& j) { j.phase = CharmJobPhase::kCompleted; });
  f.cluster.sim().run();
  EXPECT_EQ(f.cluster.used_cpus(), 0);
  EXPECT_FALSE(f.cluster.pods().contains("j1-launcher"));
}

TEST(CharmJobController, TwoJobsCoexist) {
  Fixture f;
  f.jobs.add(f.make_job("j1", 8));
  f.jobs.add(f.make_job("j2", 16));
  f.cluster.sim().run();
  EXPECT_EQ(f.worker_pods("j1", k8s::PodPhase::kRunning), 8);
  EXPECT_EQ(f.worker_pods("j2", k8s::PodPhase::kRunning), 16);
  EXPECT_EQ(f.cluster.used_cpus(), 24);
}

TEST(CharmJobController, PendingWhenClusterFull) {
  Fixture f;
  f.jobs.add(f.make_job("big", 64));
  f.cluster.sim().run();
  f.jobs.add(f.make_job("late", 8));
  f.cluster.sim().run();
  EXPECT_EQ(f.worker_pods("late", k8s::PodPhase::kRunning), 0);
  EXPECT_EQ(f.worker_pods("late", k8s::PodPhase::kPending), 8);
  // Capacity frees: the late job's pods start.
  f.jobs.mutate("big", [](CharmJob& j) { j.phase = CharmJobPhase::kCompleted; });
  f.cluster.sim().run();
  EXPECT_EQ(f.worker_pods("late", k8s::PodPhase::kRunning), 8);
}

TEST(CharmJobController, InvoluntaryWorkerDeletionIsHealed) {
  // A worker rank the job still wants disappears (node-group kill): the
  // pods-watch heal path must re-reconcile and recreate exactly that rank.
  // Regression: the watch used to ignore kDeleted events entirely, so an
  // involuntary deletion silently shrank the job forever.
  Fixture f;
  f.jobs.add(f.make_job("j1", 8));
  f.cluster.sim().run();
  ASSERT_EQ(f.worker_pods("j1", k8s::PodPhase::kRunning), 8);
  f.cluster.delete_pod("j1-worker-2");
  f.cluster.sim().run();
  EXPECT_EQ(f.worker_pods("j1", k8s::PodPhase::kRunning), 8);
  EXPECT_TRUE(f.cluster.pods().contains("j1-worker-2"));
  EXPECT_EQ(f.jobs.get("j1").ready_replicas, 8);
}

TEST(CharmJobController, DeletionBurstAcrossJobsIsHealed) {
  // Several workers of several jobs die at one instant (a correlated
  // domain kill): every missing wanted rank comes back.
  Fixture f;
  f.jobs.add(f.make_job("j1", 8));
  f.jobs.add(f.make_job("j2", 8));
  f.cluster.sim().run();
  for (const char* name :
       {"j1-worker-0", "j1-worker-5", "j2-worker-1", "j2-worker-7"}) {
    f.cluster.delete_pod(name);
  }
  f.cluster.sim().run();
  EXPECT_EQ(f.worker_pods("j1", k8s::PodPhase::kRunning), 8);
  EXPECT_EQ(f.worker_pods("j2", k8s::PodPhase::kRunning), 8);
}

TEST(CharmJobController, CompletedJobDeletionsAreNotHealed) {
  // Teardown deletions of a Completed job must not re-trigger reconcile
  // into recreating pods.
  Fixture f;
  f.jobs.add(f.make_job("j1", 8));
  f.cluster.sim().run();
  f.jobs.mutate("j1", [](CharmJob& j) { j.phase = CharmJobPhase::kCompleted; });
  f.cluster.sim().run();
  EXPECT_EQ(f.worker_pods("j1", k8s::PodPhase::kRunning), 0);
  EXPECT_EQ(f.cluster.used_cpus(), 0);
}

TEST(CharmJobController, PhaseNames) {
  EXPECT_EQ(to_string(CharmJobPhase::kQueued), "Queued");
  EXPECT_EQ(to_string(CharmJobPhase::kResizing), "Resizing");
}

}  // namespace
}  // namespace ehpc::opk
