#include "opk/experiment.hpp"

#include <gtest/gtest.h>

#include "schedsim/calibrate.hpp"
#include "schedsim/simulator.hpp"

namespace ehpc::opk {
namespace {

using elastic::JobClass;
using elastic::PolicyMode;
using schedsim::SubmittedJob;

SubmittedJob job(int id, JobClass cls, int priority, double submit) {
  SubmittedJob j;
  j.spec = elastic::spec_for_class(cls, id, priority);
  j.job_class = cls;
  j.submit_time = submit;
  return j;
}

ExperimentConfig config(PolicyMode mode, double gap = 180.0) {
  ExperimentConfig cfg;
  cfg.policy.mode = mode;
  cfg.policy.rescale_gap_s = gap;
  return cfg;
}

TEST(ClusterExperiment, SingleJobIncludesStartupOverheads) {
  auto workloads = schedsim::analytic_workloads();
  ClusterExperiment exp(config(PolicyMode::kElastic), workloads);
  auto result = exp.run({job(0, JobClass::kMedium, 3, 0.0)});
  ASSERT_EQ(result.jobs.size(), 1u);
  // Unlike the simulator, the response time covers scheduling latency,
  // reconcile latency and pod startup.
  EXPECT_GT(result.jobs[0].start_time, 0.5);
  EXPECT_LT(result.jobs[0].start_time, 30.0);
}

TEST(ClusterExperiment, ActualSlowerThanSimulationForSameMix) {
  auto workloads = schedsim::analytic_workloads();
  const std::vector<SubmittedJob> mix{job(0, JobClass::kMedium, 3, 0.0),
                                      job(1, JobClass::kSmall, 2, 30.0),
                                      job(2, JobClass::kLarge, 4, 60.0)};
  schedsim::SchedSimulator sim(64, config(PolicyMode::kElastic).policy,
                               workloads);
  const auto simulated = sim.run(mix);
  ClusterExperiment exp(config(PolicyMode::kElastic), workloads);
  const auto actual = exp.run(mix);
  EXPECT_GE(actual.metrics.total_time_s, simulated.metrics.total_time_s);
  // But not pathologically so: overheads are seconds, jobs run for minutes.
  EXPECT_LT(actual.metrics.total_time_s,
            simulated.metrics.total_time_s * 1.5);
}

TEST(ClusterExperiment, RescaleBeforePodsReadyIsDeferredNotFatal) {
  // With rescale_gap 0, the policy can rescale a job whose pods are still
  // scheduling (start_time is seconds after the decision on this
  // substrate). The harness must park the target until readiness — it used
  // to trip `exec.started` preconditions — and overlapping handshakes must
  // be able to queue multiple ready-waiters on one job. This mix (back-to-
  // back bursts of short jobs around a big one) reproduces the original
  // crash seen with the amr_rescale scenario at rescale_gap=0.
  auto workloads = schedsim::analytic_workloads();
  // Short jobs: done in ~a minute, so starts/rescales/completions overlap
  // with pod startup of later submissions.
  for (auto& [cls, w] : workloads) w.total_steps = 2000;
  ClusterExperiment exp(config(PolicyMode::kElastic, 0.0), workloads);
  std::vector<SubmittedJob> mix;
  const JobClass classes[] = {JobClass::kXLarge, JobClass::kSmall,
                              JobClass::kLarge, JobClass::kMedium};
  for (int i = 0; i < 12; ++i) {
    mix.push_back(job(i, classes[i % 4], 1 + (i * 3) % 5, 1.0 * i));
  }
  const auto result = exp.run(mix);
  ASSERT_EQ(result.jobs.size(), 12u);
  EXPECT_GT(result.rescale_count, 0);
}

TEST(ClusterExperiment, ElasticRescalesOnCluster) {
  auto workloads = schedsim::analytic_workloads();
  ClusterExperiment exp(config(PolicyMode::kElastic, 0.0), workloads);
  // Two large jobs fill the cluster; job 1 is the unprotected victim for
  // the high-priority xlarge arrival.
  auto result = exp.run({job(0, JobClass::kLarge, 1, 0.0),
                         job(1, JobClass::kLarge, 1, 1.0),
                         job(2, JobClass::kXLarge, 5, 30.0)});
  EXPECT_GE(result.rescale_count, 1);
  EXPECT_EQ(result.jobs.size(), 3u);
}

TEST(ClusterExperiment, PodsAllGoneAfterRun) {
  auto workloads = schedsim::analytic_workloads();
  ClusterExperiment exp(config(PolicyMode::kMoldable), workloads);
  exp.run({job(0, JobClass::kSmall, 1, 0.0), job(1, JobClass::kMedium, 2, 10.0)});
  EXPECT_EQ(exp.cluster().used_cpus(), 0);
}

TEST(ClusterExperiment, AllPoliciesFinishAMix) {
  auto workloads = schedsim::analytic_workloads();
  schedsim::JobMixGenerator gen(31);
  const auto mix = gen.generate(8, 60.0);
  for (auto mode : {PolicyMode::kRigidMin, PolicyMode::kRigidMax,
                    PolicyMode::kMoldable, PolicyMode::kElastic}) {
    ClusterExperiment exp(config(mode), workloads);
    auto result = exp.run(mix);
    EXPECT_EQ(result.jobs.size(), mix.size()) << elastic::to_string(mode);
  }
}

TEST(ClusterExperiment, UtilizationTraceRecorded) {
  auto workloads = schedsim::analytic_workloads();
  ClusterExperiment exp(config(PolicyMode::kElastic), workloads);
  auto result = exp.run({job(0, JobClass::kMedium, 3, 0.0)});
  EXPECT_TRUE(result.trace.has("util"));
  EXPECT_TRUE(result.trace.has("job.0.replicas"));
}

TEST(ClusterExperiment, SingleShot) {
  auto workloads = schedsim::analytic_workloads();
  ClusterExperiment exp(config(PolicyMode::kElastic), workloads);
  exp.run({job(0, JobClass::kSmall, 1, 0.0)});
  EXPECT_THROW(exp.run({job(1, JobClass::kSmall, 1, 0.0)}), PreconditionError);
}

TEST(ClusterExperiment, DeterministicAcrossRuns) {
  auto workloads = schedsim::analytic_workloads();
  schedsim::JobMixGenerator gen(13);
  const auto mix = gen.generate(6, 45.0);
  ClusterExperiment a(config(PolicyMode::kElastic), workloads);
  ClusterExperiment b(config(PolicyMode::kElastic), workloads);
  EXPECT_DOUBLE_EQ(a.run(mix).metrics.total_time_s,
                   b.run(mix).metrics.total_time_s);
}

}  // namespace
}  // namespace ehpc::opk
